package spq

// Benchmarks regenerating the paper's experiments (§6) in testing.B form —
// one benchmark family per figure, plus ablation benches for the design
// choices DESIGN.md calls out. Run all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration performs one full query evaluation (or one
// experiment kernel); reported metrics include feasibility rate and the
// scenario count at feasibility via b.ReportMetric.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/experiments"
	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/spaql"
	"spq/internal/translate"
	"spq/internal/workload"
)

// benchN is the workload scale for benchmarks: small enough to iterate,
// large enough that SAA vs CSA separation is visible.
const benchN = 150

func benchConfig() workload.Config {
	return workload.Config{N: benchN, Seed: 42, MeansM: 500}
}

func benchOptions(seed uint64, fixedZ int) *core.Options {
	return &core.Options{
		Seed:        seed,
		ValidationM: 2000,
		InitialM:    10,
		IncrementM:  10,
		MaxM:        60,
		FixedZ:      fixedZ,
		SolverTime:  10 * time.Second,
		// Bound each evaluation so Naïve benches report its time-limited
		// behaviour (the paper's cutoff protocol) instead of stalling the
		// bench harness.
		TimeLimit: 30 * time.Second,
	}
}

// buildSILP prepares a workload query for direct algorithm benchmarking.
func buildSILP(b *testing.B, in *workload.Instance, qid string) *translate.SILP {
	b.Helper()
	q, ok := in.QueryByID(qid)
	if !ok {
		b.Fatalf("no query %s", qid)
	}
	parsed, err := spaql.Parse(q.SPaQL)
	if err != nil {
		b.Fatal(err)
	}
	silp, err := translate.Build(parsed, in.Table(q.Table), nil)
	if err != nil {
		b.Fatal(err)
	}
	return silp
}

// runMethod executes one evaluation and reports feasibility/scenario-count
// metrics.
func runMethod(b *testing.B, silp *translate.SILP, method experiments.Method, fixedZ int) {
	b.Helper()
	feasible := 0
	totalM := 0
	for i := 0; i < b.N; i++ {
		opts := benchOptions(uint64(i)+1, fixedZ)
		var sol *core.Solution
		var err error
		if method == experiments.MethodNaive {
			sol, err = core.Naive(silp, opts)
		} else {
			sol, err = core.SummarySearch(silp, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		if sol.Feasible {
			feasible++
		}
		totalM += sol.M
	}
	b.ReportMetric(float64(feasible)/float64(b.N), "feasRate")
	b.ReportMetric(float64(totalM)/float64(b.N), "finalM")
}

// --- Figure 4: end-to-end time to feasibility, per workload ---

func BenchmarkFig4GalaxyQ1SummarySearch(b *testing.B) {
	silp := buildSILP(b, workload.Galaxy(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodSummarySearch, 1)
}

func BenchmarkFig4GalaxyQ1Naive(b *testing.B) {
	silp := buildSILP(b, workload.Galaxy(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodNaive, 0)
}

func BenchmarkFig4PortfolioQ1SummarySearch(b *testing.B) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodSummarySearch, 1)
}

func BenchmarkFig4PortfolioQ1Naive(b *testing.B) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodNaive, 0)
}

func BenchmarkFig4TPCHQ1SummarySearch(b *testing.B) {
	silp := buildSILP(b, workload.TPCH(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodSummarySearch, 2)
}

func BenchmarkFig4TPCHQ1Naive(b *testing.B) {
	silp := buildSILP(b, workload.TPCH(benchConfig()), "Q1")
	b.ResetTimer()
	runMethod(b, silp, experiments.MethodNaive, 0)
}

// --- Figure 5: scalability in the number of optimization scenarios M ---

func benchmarkFig5(b *testing.B, method experiments.Method, m int) {
	silp := buildSILP(b, workload.Galaxy(benchConfig()), "Q1")
	b.ResetTimer()
	feasible := 0
	for i := 0; i < b.N; i++ {
		opts := benchOptions(uint64(i)+1, 1)
		opts.InitialM = m
		opts.IncrementM = m
		opts.MaxM = m
		var sol *core.Solution
		var err error
		if method == experiments.MethodNaive {
			sol, err = core.Naive(silp, opts)
		} else {
			sol, err = core.SummarySearch(silp, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		if sol.Feasible {
			feasible++
		}
	}
	b.ReportMetric(float64(feasible)/float64(b.N), "feasRate")
}

func BenchmarkFig5SummarySearchM10(b *testing.B) {
	benchmarkFig5(b, experiments.MethodSummarySearch, 10)
}
func BenchmarkFig5SummarySearchM40(b *testing.B) {
	benchmarkFig5(b, experiments.MethodSummarySearch, 40)
}
func BenchmarkFig5NaiveM10(b *testing.B) { benchmarkFig5(b, experiments.MethodNaive, 10) }
func BenchmarkFig5NaiveM40(b *testing.B) { benchmarkFig5(b, experiments.MethodNaive, 40) }

// --- Figure 6: scalability in the number of summaries Z (Portfolio) ---

func benchmarkFig6(b *testing.B, z int) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOptions(uint64(i)+1, z)
		opts.InitialM = 40
		opts.IncrementM = 40
		opts.MaxM = 40
		if _, err := core.SummarySearch(silp, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Z1(b *testing.B)  { benchmarkFig6(b, 1) }
func BenchmarkFig6Z4(b *testing.B)  { benchmarkFig6(b, 4) }
func BenchmarkFig6Z20(b *testing.B) { benchmarkFig6(b, 20) }
func BenchmarkFig6Z40(b *testing.B) { benchmarkFig6(b, 40) } // Z=M ≡ Naïve shape

// --- Figure 7: scalability in dataset size N (Galaxy) ---

func benchmarkFig7(b *testing.B, n int) {
	cfg := benchConfig()
	cfg.N = n
	silp := buildSILP(b, workload.Galaxy(cfg), "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SummarySearch(silp, benchOptions(uint64(i)+1, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7N150(b *testing.B) { benchmarkFig7(b, 150) }
func BenchmarkFig7N300(b *testing.B) { benchmarkFig7(b, 300) }
func BenchmarkFig7N750(b *testing.B) { benchmarkFig7(b, 750) }

// --- §3.1/§4.1: DILP formulation size and time (SAA Θ(NMK) vs CSA Θ(NZK)) ---

func BenchmarkFormulateSAA(b *testing.B) {
	silp := buildSILP(b, workload.Galaxy(benchConfig()), "Q1")
	src := rng.NewSource(1)
	sets, objSet, err := silp.GenerateSets(src, 0, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, _, err := silp.FormulateSAA(sets, objSet)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(model.NumCoefficients()), "coefficients")
		}
	}
}

func BenchmarkFormulateCSA(b *testing.B) {
	silp := buildSILP(b, workload.Galaxy(benchConfig()), "Q1")
	src := rng.NewSource(1)
	sets, _, err := silp.GenerateSets(src, 0, 100)
	if err != nil {
		b.Fatal(err)
	}
	parts := sets[0].Partition(1, 7)
	sm := sets[0].Summarize(parts[0], silp.ProbCons[0].Direction(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, _, err := silp.FormulateCSA([][]*scenario.Summary{{sm}}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(model.NumCoefficients()), "coefficients")
		}
	}
}

// --- Ablation: tuple-wise vs scenario-wise summarization (§5.5) ---

func benchmarkSummarize(b *testing.B, strat scenario.Strategy) {
	in := workload.Galaxy(benchConfig())
	rel := in.Table("galaxy_Q1")
	src := rng.NewSource(3)
	chosen := make([]int, 40)
	for i := range chosen {
		chosen[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.StreamingSummary(src, rel, "petromag_r", chosen, scenario.Min, nil, strat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizeTupleWise(b *testing.B)    { benchmarkSummarize(b, scenario.TupleWise) }
func BenchmarkSummarizeScenarioWise(b *testing.B) { benchmarkSummarize(b, scenario.ScenarioWise) }

// Parallel variants of the same ablation: both generation orders sharded
// across all CPUs (bit-identical summaries; see scenario.StreamingSummaryP).
func benchmarkSummarizeParallel(b *testing.B, strat scenario.Strategy) {
	in := workload.Galaxy(benchConfig())
	rel := in.Table("galaxy_Q1")
	src := rng.NewSource(3)
	chosen := make([]int, 40)
	for i := range chosen {
		chosen[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.StreamingSummaryP(context.Background(), src, rel, "petromag_r", chosen, scenario.Min, nil, strat, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizeTupleWiseParallel(b *testing.B) {
	benchmarkSummarizeParallel(b, scenario.TupleWise)
}
func BenchmarkSummarizeScenarioWiseParallel(b *testing.B) {
	benchmarkSummarizeParallel(b, scenario.ScenarioWise)
}

// --- Ablation: convergence acceleration (§5.5) ---

func benchmarkAcceleration(b *testing.B, disable bool) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOptions(uint64(i)+1, 1)
		opts.DisableAcceleration = disable
		if _, err := core.SummarySearch(silp, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccelerationOn(b *testing.B)  { benchmarkAcceleration(b, false) }
func BenchmarkAccelerationOff(b *testing.B) { benchmarkAcceleration(b, true) }

// --- Validation throughput (§3.2 streaming validator) ---

func BenchmarkValidation(b *testing.B) {
	db := NewDB()
	db.MeansM = 200
	in := workload.Portfolio(benchConfig())
	rel := in.Table("trades_2day_all")
	if err := db.Register(rel); err != nil {
		b.Fatal(err)
	}
	query := fmt.Sprintf(`SELECT PACKAGE(*) FROM %s SUCH THAT
		SUM(price) <= 1000 AND
		SUM(gain) >= -10 WITH PROBABILITY >= 0.9
		MAXIMIZE EXPECTED SUM(gain)`, rel.Name())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := &core.Options{
			Seed: uint64(i) + 1, ValidationM: 10000,
			InitialM: 10, IncrementM: 10, MaxM: 30, FixedZ: 1,
		}
		if _, err := db.Query(query, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel engine: sequential vs sharded validation (internal/engine) ---

// benchmarkValidateParallel measures the out-of-sample validator alone at
// M̂ = 10000 with the given worker count. The packages validated are
// identical across worker counts (parallel validation is bit-identical), so
// the benchmarks are directly comparable; see DESIGN.md for recorded
// numbers (≥ 2× at 4 workers on a 4-core machine).
func benchmarkValidateParallel(b *testing.B, workers int) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	// A fixed, moderately dense package: every 3rd tuple with 1–3 copies.
	x := make([]float64, silp.N)
	for i := 0; i < silp.N; i += 3 {
		x[i] = float64(1 + i%3)
	}
	opts := &core.Options{ValidationM: 10000, Parallelism: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Validate(context.Background(), silp, x, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(10000*b.N)/b.Elapsed().Seconds(), "scenarios/s")
}

func BenchmarkValidateM10000Workers1(b *testing.B) { benchmarkValidateParallel(b, 1) }
func BenchmarkValidateM10000Workers2(b *testing.B) { benchmarkValidateParallel(b, 2) }
func BenchmarkValidateM10000Workers4(b *testing.B) { benchmarkValidateParallel(b, 4) }
func BenchmarkValidateM10000WorkersAll(b *testing.B) {
	benchmarkValidateParallel(b, -1)
}

// --- Parallel engine: scenario-set generation (translate.GenerateSetsP) ---

func benchmarkGenerateSets(b *testing.B, workers int) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	src := rng.NewSource(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := silp.GenerateSetsP(context.Background(), src, 0, 200, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSetsWorkers1(b *testing.B)   { benchmarkGenerateSets(b, 1) }
func BenchmarkGenerateSetsWorkersAll(b *testing.B) { benchmarkGenerateSets(b, -1) }

// --- Parallel engine: end-to-end SummarySearch with worker pool ---

func benchmarkSummarySearchParallel(b *testing.B, workers int) {
	silp := buildSILP(b, workload.Portfolio(benchConfig()), "Q1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := benchOptions(uint64(i)+1, 1)
		opts.ValidationM = 10000
		opts.Parallelism = workers
		if _, err := core.SummarySearch(silp, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarySearchSequential(b *testing.B) { benchmarkSummarySearchParallel(b, 1) }
func BenchmarkSummarySearchParallel(b *testing.B)   { benchmarkSummarySearchParallel(b, -1) }

// --- End-to-end experiment kernels (used by EXPERIMENTS.md) ---

func BenchmarkExperimentEndToEndKernel(b *testing.B) {
	cfg := experiments.Defaults()
	cfg.WorkloadN = 80
	cfg.Runs = 1
	cfg.ValidationM = 1000
	cfg.MaxM = 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.DataSeed = uint64(i) + 1
		if _, err := experiments.RunEndToEnd(cfg, []string{"portfolio"}, []string{"Q1"}); err != nil {
			b.Fatal(err)
		}
	}
}
