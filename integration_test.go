package spq

import (
	"math"
	"strings"
	"testing"
)

// Integration tests exercising the full public-API pipeline on realistic
// mini-scenarios, including correlated VG functions (Figure 1 semantics).

// figure1DB reproduces the paper's Figure 1 table through the public API:
// trades on three stocks at two horizons, same-stock trades sharing a GBM
// price path per scenario.
func figure1DB(t *testing.T) (*DB, []int, []float64) {
	t.Helper()
	stocks := []struct {
		price float64
		vol   float64
	}{
		{234, 0.3}, {140, 0.2}, {258, 0.5},
	}
	horizons := []int{1, 5}
	n := len(stocks) * len(horizons)
	rel := NewRelation("stock_investments", n)
	price := make([]float64, n)
	group := make([]int, n)
	horizon := make([]int, n)
	for i := 0; i < n; i++ {
		s := i / len(horizons)
		price[i] = stocks[s].price
		group[i] = s
		horizon[i] = horizons[i%len(horizons)]
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	vg := &GroupedVG{
		AttrID: 1,
		Group:  group,
		Eval: func(st *Stream, tuple int) float64 {
			s := group[tuple]
			g := GBM{S0: stocks[s].price, Mu: 0.08, Sigma: stocks[s].vol, Dt: 1.0 / 252}
			path := make([]float64, 5)
			g.Path(st, path)
			return path[horizon[tuple]-1] - stocks[s].price
		},
	}
	if err := rel.AddStoch("gain", vg); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	db.MeansM = 2000
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	return db, group, price
}

func TestFigure1EndToEnd(t *testing.T) {
	db, group, price := figure1DB(t)
	res, err := db.Query(`
		SELECT PACKAGE(*) AS Portfolio FROM stock_investments
		SUCH THAT
			SUM(price) <= 1000 AND
			SUM(gain) >= -10 WITH PROBABILITY >= 0.95
		MAXIMIZE EXPECTED SUM(gain)`, &Options{
		Seed: 7, ValidationM: 5000, InitialM: 30, MaxM: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("Figure 1 query infeasible: surpluses %v", res.Surpluses)
	}
	// Budget.
	total := 0.0
	for id, c := range res.Multiplicities() {
		total += price[id] * float64(c)
		_ = group
	}
	if total > 1000+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
	// The VaR constraint holds with the validated probability.
	if res.Surpluses[0] < 0 {
		t.Fatalf("p-surplus %v < 0 on a feasible result", res.Surpluses[0])
	}
	// Loss tolerance: validated Pr(gain ≥ −10) = 0.95 + surplus ≤ 1.
	if p := 0.95 + res.Surpluses[0]; p > 1+1e-9 {
		t.Fatalf("implied probability %v > 1", p)
	}
}

func TestCorrelatedGainsObservable(t *testing.T) {
	db, group, _ := figure1DB(t)
	rel, _ := db.Table("stock_investments")
	src := NewSource(3)
	// Tuples 0 and 1 are the same stock: their gains must be positively
	// correlated across scenarios; tuples 0 and 2 are different stocks.
	var same, cross float64
	var v0s, v1s, v2s []float64
	for j := 0; j < 2000; j++ {
		v0, _ := rel.Value(src, "gain", 0, j)
		v1, _ := rel.Value(src, "gain", 1, j)
		v2, _ := rel.Value(src, "gain", 2, j)
		v0s, v1s, v2s = append(v0s, v0), append(v1s, v1), append(v2s, v2)
	}
	same = correlation(v0s, v1s)
	cross = correlation(v0s, v2s)
	if group[0] != group[1] {
		t.Fatal("layout changed")
	}
	if same < 0.3 {
		t.Fatalf("same-stock correlation %v too weak", same)
	}
	if math.Abs(cross) > 0.15 {
		t.Fatalf("cross-stock correlation %v should be near zero", cross)
	}
}

func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab/n - (sa/n)*(sb/n)
	return cov / math.Sqrt((saa/n-(sa/n)*(sa/n))*(sbb/n-(sb/n)*(sb/n)))
}

func TestGeneralFormThroughFacade(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT PACKAGE(*) AS P FROM trades SUCH THAT
		COUNT(*) BETWEEN 1 AND 6 AND
		(SELECT COUNT(*) WHERE price >= 60 FROM P) <= 1 AND
		SUM(gain) >= -5 WITH PROBABILITY >= 0.6
		MAXIMIZE EXPECTED SUM(gain)`, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("general-form query infeasible")
	}
	price, _ := res.Rel.Det("price")
	expensive := 0
	for i, x := range res.X {
		if x > 0 && price[i] >= 60 {
			expensive += int(x + 0.5)
		}
	}
	if expensive > 1 {
		t.Fatalf("filtered COUNT violated: %d expensive tuples", expensive)
	}
}

func TestExplainMentionsGeneralForm(t *testing.T) {
	db := testDB(t)
	out, err := db.Explain(`SELECT PACKAGE(*) AS P FROM trades SUCH THAT
		(SELECT SUM(gain) WHERE price >= 60 FROM P) >= -5 WITH PROBABILITY >= 0.8`, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "probabilistic constraints: 1") {
		t.Fatalf("Explain output:\n%s", out)
	}
}
