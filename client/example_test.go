package client_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"spq/client"
	"spq/internal/engine"
)

// ExampleClient submits a stochastic package query to an (in-process) spqd
// and streams its progress to completion. Against a real deployment,
// replace the httptest server with client.New("http://host:8723").
func ExampleClient() {
	// An in-process stand-in for a running spqd.
	eng := engine.New(newStocks(15), &engine.Options{ResultCacheSize: -1})
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	c, err := client.New(srv.URL)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()

	job, err := c.Submit(ctx, client.SubmitRequest{
		Query: `SELECT PACKAGE(*) FROM stocks SUCH THAT
			SUM(price) <= 300 AND
			SUM(gain) >= -5 WITH PROBABILITY >= 0.8
			MAXIMIZE EXPECTED SUM(gain)`,
		Options: &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, MaxM: 60},
	})
	if err != nil {
		panic(err)
	}

	// Stream replays every progress event (iteration, M/Z, best objective)
	// and returns the terminal job.
	iterations := 0
	final, err := c.Stream(ctx, job.ID, func(p client.Progress) { iterations++ })
	if err != nil {
		panic(err)
	}
	fmt.Println("state:", final.State)
	fmt.Println("feasible:", final.Result.Feasible)
	fmt.Println("streamed progress:", iterations > 0)
	// Output:
	// state: succeeded
	// feasible: true
	// streamed progress: true
}
