package client

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"
)

// This file is the v1 wire contract: the JSON types exchanged by the
// /v1/queries endpoints. It is shared by the server (internal/engine
// marshals these) and the Client, so the two can never drift. Everything
// here is plain data — no behaviour beyond Error and the canonical
// SolveSpec.Key rendering.

// Stable error codes of the v1 error envelope. Codes are part of the API
// contract: clients may switch on them; messages are human-readable and may
// change.
const (
	// CodeBadRequest reports a malformed request body or parameters.
	CodeBadRequest = "bad_request"
	// CodeInvalidQuery reports an sPaQL query that fails to parse,
	// references an unknown table, cannot be translated, or is
	// deterministically infeasible.
	CodeInvalidQuery = "invalid_query"
	// CodeUnknownMethod reports an unrecognized evaluation method.
	CodeUnknownMethod = "unknown_method"
	// CodeNotFound reports an unknown route or job id.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed reports an HTTP method the route does not serve.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeOverloaded reports admission rejection because the engine's global
	// capacity (in-flight + queue) is exhausted (HTTP 429); the response
	// carries Retry-After.
	CodeOverloaded = "overloaded"
	// CodeTenantQuota reports admission rejection because the request's
	// tenant hit its own queue-depth quota while the engine still had global
	// capacity (HTTP 429 + Retry-After). Distinguished from CodeOverloaded so
	// a tenant can tell "the fleet is full, back off globally" from "my lane
	// is full, my own traffic is the problem".
	CodeTenantQuota = "tenant_quota"
	// CodeDegradedUnavailable reports that an engine-budgeted (query-class or
	// deadline-derived) evaluation ran out of budget before finding any
	// feasible package, so there was nothing to degrade to (HTTP 429 +
	// Retry-After; retrying when the system is less loaded may succeed).
	CodeDegradedUnavailable = "degraded_unavailable"
	// CodeTimeout reports a query that exceeded its evaluation deadline.
	CodeTimeout = "timeout"
	// CodeCancelled reports a query cancelled by the caller.
	CodeCancelled = "cancelled"
	// CodeInfeasible reports a query whose deterministic constraints are
	// unsatisfiable — a property of the request, not a server fault. It is
	// distinguished from CodeInvalidQuery so that distributed callers (the
	// remote solver dispatching sub-problems) can tell "this sub-problem has
	// no solution" from "this worker is misconfigured" without re-solving.
	CodeInfeasible = "infeasible"
	// CodeInternal reports a server-side evaluation failure (retryable).
	CodeInternal = "internal"
)

// Error is the structured error of the v1 API, delivered inside an
// ErrorEnvelope for HTTP-level failures and inline on failed Jobs. It
// implements the error interface so the Client returns it directly.
type Error struct {
	// Code is one of the stable Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// RetryAfterMS suggests a retry delay for code "overloaded".
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// HTTPStatus is the HTTP status the error travelled with (client-side
	// only; not serialized).
	HTTPStatus int `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("spqd: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope wraps every non-2xx v1 response body.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

// SolveOptions are the typed evaluation options of a v1 request (the
// flat-field bag of the legacy /query body, structured). Zero values take
// the server's defaults; see core.Options for field semantics.
//
// The set covers the full determinism domain of an evaluation: a request
// that pins every field (seeds included) is answered bit-identically by any
// server holding the same relation, which is what lets the remote solver
// dispatch sub-problems to worker daemons and the result cache replicate
// entries between peers.
type SolveOptions struct {
	Seed           uint64  `json:"seed,omitempty"`
	ValidationSeed uint64  `json:"validation_seed,omitempty"`
	ValidationM    int     `json:"validation_m,omitempty"`
	InitialM       int     `json:"initial_m,omitempty"`
	IncrementM     int     `json:"increment_m,omitempty"`
	MaxM           int     `json:"max_m,omitempty"`
	FixedZ         int     `json:"fixed_z,omitempty"`
	IncrementZ     int     `json:"increment_z,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	MaxCSAIters    int     `json:"max_csa_iters,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
	// MaxResidentScenarios bounds materialized scenario matrices: 0 streams
	// block-wise (the default), > 0 materializes while M stays at or under
	// the budget, < 0 always materializes. Streamed and materialized
	// evaluation are bit-identical, so the field trades memory against
	// recompute only and does not join cache keys.
	MaxResidentScenarios int `json:"max_resident_scenarios,omitempty"`
	// DisableAcceleration turns off the monotone-objective summary
	// modification (ablations).
	DisableAcceleration bool `json:"disable_acceleration,omitempty"`
	// TimeLimitMS / SolverTimeMS / SolverNodes / RelGap are the evaluation
	// and per-MILP-solve budgets. When a budget binds, the result depends on
	// it, so sub-problem dispatch forwards them verbatim.
	TimeLimitMS  int64   `json:"time_limit_ms,omitempty"`
	SolverTimeMS int64   `json:"solver_time_ms,omitempty"`
	SolverNodes  int     `json:"solver_nodes,omitempty"`
	RelGap       float64 `json:"rel_gap,omitempty"`
}

// SketchOptions tune the partition-aware SketchRefine pipeline for method
// "sketch". Zero values take the server's defaults.
type SketchOptions struct {
	GroupSize     int    `json:"group_size,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	// Strategy selects the grouping: "" or "kmeans", "hash", "range".
	Strategy string `json:"strategy,omitempty"`
}

// SolveSpec restricts a submission to a sub-problem of the named table: the
// mechanism the remote solver uses to ship one sketch shard (or any other
// relation view) to a worker daemon as an ordinary v1 job. The worker
// rebuilds exactly the coordinator's problem: it selects Subset from the
// base relation (preserving each tuple's substream identity, so stochastic
// behaviour is unchanged), lowers the query over that view, and then applies
// the variable-bound overrides.
type SolveSpec struct {
	// Subset lists base-relation tuple indices, strictly ascending. The
	// query's WHERE clause (if any) is applied on top; for sub-problems
	// derived from an already-filtered view this re-selects every row.
	Subset []int `json:"subset"`
	// VarHi / VarLo, when non-nil, override the translation-derived
	// per-variable multiplicity bounds (length must equal the built
	// problem's variable count). The sketch phase inflates medoid bounds to
	// group capacity; the override carries that mutation across the wire.
	VarHi []float64 `json:"var_hi,omitempty"`
	VarLo []float64 `json:"var_lo,omitempty"`
}

// Key renders the spec canonically (FNV-1a over the subset and the exact
// bit patterns of the bound overrides). It is node-independent — two
// processes holding the same relation derive the same key — so it joins the
// result-cache key and seeds the remote solver's rendezvous hash.
func (s *SolveSpec) Key() string {
	if s == nil {
		return ""
	}
	h := fnv.New64a()
	var buf [8]byte
	mix := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, t := range s.Subset {
		mix(uint64(t))
	}
	mix(0xffffffffffffffff) // domain separator between sections
	for _, v := range s.VarHi {
		mix(math.Float64bits(v))
	}
	mix(0xfffffffffffffffe)
	for _, v := range s.VarLo {
		mix(math.Float64bits(v))
	}
	return fmt.Sprintf("n=%d,hi=%d,lo=%d,h=%016x", len(s.Subset), len(s.VarHi), len(s.VarLo), h.Sum64())
}

// TenantHeader is the HTTP header that names the tenant a request is
// admitted under. It overrides SubmitRequest.Tenant when both are present;
// requests carrying neither run as the default tenant. The tenant label is
// an admission-scheduling concern only: it never affects the evaluation
// result or joins any cache key.
const TenantHeader = "X-Spq-Tenant"

// TraceHeader is the HTTP header that propagates a coordinator's trace
// across a dispatch hop: "<trace-id>/<parent-span-name>". A worker that
// receives it roots its job's span tree under the caller's trace ID, so the
// two sides of a remote solve correlate under one trace.
const TraceHeader = "X-Spq-Trace"

// TraceSpan is one node of a job's span tree, served by
// GET /v1/queries/{id}/trace and embedded in terminal Jobs. It mirrors the
// engine's internal span data exactly: start times are absolute unix
// microseconds (so coordinator and worker spans line up, modulo clock
// skew), durations are microseconds, and TraceID is set on roots only.
type TraceSpan struct {
	TraceID     string            `json:"trace_id,omitempty"`
	Name        string            `json:"name"`
	StartUnixUS int64             `json:"start_us"`
	DurationUS  int64             `json:"duration_us"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*TraceSpan      `json:"children,omitempty"`
}

// Walk visits every span depth-first, parents before children.
func (t *TraceSpan) Walk(fn func(*TraceSpan)) {
	if t == nil {
		return
	}
	fn(t)
	for _, c := range t.Children {
		c.Walk(fn)
	}
}

// Render draws the span tree as an indented text listing with durations
// and attributes (what `spq -trace-tree` prints).
func (t *TraceSpan) Render() string {
	var sb strings.Builder
	if t == nil {
		return ""
	}
	if t.TraceID != "" {
		sb.WriteString("trace " + t.TraceID + "\n")
	}
	t.render(&sb, 0)
	return sb.String()
}

func (t *TraceSpan) render(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(t.Name)
	sb.WriteString("  ")
	if t.DurationUS > 0 {
		sb.WriteString((time.Duration(t.DurationUS) * time.Microsecond).Round(10 * time.Microsecond).String())
	} else {
		sb.WriteString("(running)")
	}
	if t.TraceID != "" && depth > 0 {
		sb.WriteString("  [trace " + t.TraceID + "]")
	}
	keys := make([]string, 0, len(t.Attrs))
	for k := range t.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString("  " + k + "=" + t.Attrs[k])
	}
	sb.WriteByte('\n')
	for _, c := range t.Children {
		c.render(sb, depth+1)
	}
}

// SubmitRequest is the body of POST /v1/queries (and one element of a
// batch submission).
type SubmitRequest struct {
	// Query is the sPaQL text.
	Query string `json:"query"`
	// Method selects the algorithm: "" or "summarysearch" (default),
	// "naive", "sketch", or any solver the server registered (e.g.
	// "remote" on a coordinator daemon).
	Method string `json:"method,omitempty"`
	// TimeoutMS bounds the evaluation in milliseconds (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Options tune the evaluation; nil uses server defaults.
	Options *SolveOptions `json:"options,omitempty"`
	// Sketch tunes the sketch pipeline for method "sketch".
	Sketch *SketchOptions `json:"sketch,omitempty"`
	// Solve, when non-nil, restricts the job to a sub-problem of the
	// query's table (solver-to-solver dispatch). The job's result then
	// carries the raw solution (QueryResult.Raw).
	Solve *SolveSpec `json:"solve,omitempty"`
	// Tenant names the tenant the request is admitted under ("" = default).
	// The TenantHeader, when present, takes precedence. Tenants shape
	// admission scheduling only — the evaluation result is bit-identical
	// whatever the label, and it stays out of every cache key.
	Tenant string `json:"tenant,omitempty"`
	// Class names the query class whose server-side budget (wall time, B&B
	// nodes) bounds the evaluation ("" = no class budget). A binding class
	// budget degrades the result to the anytime best-so-far package
	// (QueryResult.Degraded) instead of failing the job.
	Class string `json:"class,omitempty"`
	// TraceParent, when non-empty, nests the job's span tree under an
	// upstream trace ("<trace-id>/<parent-span-name>"). It travels as the
	// TraceHeader, not in the body, and is observational only: it never
	// affects the result or its cache key.
	TraceParent string `json:"-"`
}

// BatchRequest is the body of POST /v1/queries:batch.
type BatchRequest struct {
	Queries []SubmitRequest `json:"queries"`
}

// BatchItem is one outcome of a batch submission: exactly one of Job and
// Error is set. A rejected item does not abort the rest of the batch.
type BatchItem struct {
	Job   *Job   `json:"job,omitempty"`
	Error *Error `json:"error,omitempty"`
}

// BatchResponse answers POST /v1/queries:batch, one item per submitted
// query, in request order.
type BatchResponse struct {
	Jobs []BatchItem `json:"jobs"`
}

// JobState is the lifecycle state of an async query job.
type JobState string

// The job state machine: queued → running → {succeeded, failed, cancelled}.
// A job answered from the server's result cache may skip running and go
// straight from queued to succeeded.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobCancelled
}

// Progress is one streamed progress event: a snapshot of the anytime
// algorithm after one optimize/validate round (see core.Progress).
type Progress struct {
	// Seq is the job's monotone event sequence number; poll with
	// since=<seq> to receive only newer events.
	Seq int `json:"seq"`
	// Phase labels composite pipelines: "" for a direct solve,
	// "sketch/shard<i>" / "refine" / "fallback" inside method "sketch".
	Phase string `json:"phase,omitempty"`
	// Iteration counts optimize/validate rounds within the phase (1-based).
	Iteration int `json:"iteration"`
	// M and Z are the round's scenario/summary counts (Z is 0 for naive).
	M int `json:"m"`
	Z int `json:"z,omitempty"`
	// Feasible and Objective are the round's validation verdict.
	Feasible  bool    `json:"feasible"`
	Objective float64 `json:"objective"`
	// Improved reports whether this round's package became the incumbent;
	// BestFeasible/BestObjective describe the incumbent after the round.
	Improved      bool    `json:"improved,omitempty"`
	BestFeasible  bool    `json:"best_feasible"`
	BestObjective float64 `json:"best_objective"`
	// PackageSize is Σ multiplicities of the round's candidate package.
	PackageSize float64 `json:"package_size,omitempty"`
	// ElapsedMS is wall-clock time since the solve started.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// PackageTuple is one package member: a base-relation tuple index and its
// multiplicity.
type PackageTuple struct {
	Tuple int `json:"tuple"`
	Count int `json:"count"`
}

// SketchInfo reports what the sketch pipeline did for a method=sketch job.
type SketchInfo struct {
	Groups     int  `json:"groups"`
	Shards     int  `json:"shards"`
	Candidates int  `json:"candidates"`
	FellBack   bool `json:"fell_back"`
}

// SolveIteration is one optimize/validate round of a raw solution's
// history. Status is the integer value of the solver's milp.Status (0
// optimal, 1 feasible, 2 infeasible, 3 unbounded, 4 limit); it is carried
// so budget-cut evaluations stay recognizable across the wire (servers
// refuse to cache them).
type SolveIteration struct {
	M            int     `json:"m"`
	Z            int     `json:"z,omitempty"`
	Status       int     `json:"status"`
	Coefficients int     `json:"coefficients,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`
	LPIters      int     `json:"lp_iters,omitempty"`
	WarmStarts   int     `json:"warm_starts,omitempty"`
	DegenPivots  int     `json:"degen_pivots,omitempty"`
	PresolveRows int     `json:"presolve_rows,omitempty"`
	PresolveCols int     `json:"presolve_cols,omitempty"`
	Feasible     bool    `json:"feasible"`
	Objective    float64 `json:"objective"`
}

// SolveResult is the raw, solver-fidelity solution of a job: exact float64
// multiplicities over the solved view's rows (Go's JSON encoding round-trips
// float64 exactly), plus the validation and accounting fields of
// core.Solution. It is rendered for SolveSpec submissions — the remote
// solver reconstructs a bit-identical core.Solution from it — and it is the
// payload the replicated result cache ships between peers. EpsUpperInf
// stands in for +Inf, which JSON cannot carry.
type SolveResult struct {
	Feasible      bool             `json:"feasible"`
	Objective     float64          `json:"objective"`
	EpsUpper      float64          `json:"eps_upper,omitempty"`
	EpsUpperInf   bool             `json:"eps_upper_inf,omitempty"`
	Surpluses     []float64        `json:"surpluses,omitempty"`
	SurplusCIHalf []float64        `json:"surplus_ci_half,omitempty"`
	M             int              `json:"m"`
	Z             int              `json:"z,omitempty"`
	X             []float64        `json:"x"`
	Iterations    []SolveIteration `json:"iterations,omitempty"`
	MILPSolves    int              `json:"milp_solves,omitempty"`
	MILPNodes     int              `json:"milp_nodes,omitempty"`
	MILPWorkers   int              `json:"milp_workers,omitempty"`
	LPIters       int              `json:"lp_iters,omitempty"`
	WarmStarts    int              `json:"warm_starts,omitempty"`
	DegenPivots   int              `json:"degen_pivots,omitempty"`
	PresolveRows  int              `json:"presolve_rows,omitempty"`
	PresolveCols  int              `json:"presolve_cols,omitempty"`
	TotalMS       int64            `json:"total_ms,omitempty"`
}

// QueryResult is the final result of a succeeded job.
type QueryResult struct {
	Feasible    bool           `json:"feasible"`
	Objective   float64        `json:"objective"`
	EpsUpper    float64        `json:"eps_upper,omitempty"`
	Surpluses   []float64      `json:"surpluses,omitempty"`
	M           int            `json:"m"`
	Z           int            `json:"z,omitempty"`
	Iterations  int            `json:"iterations"`
	PackageSize float64        `json:"package_size"`
	Package     []PackageTuple `json:"package"`
	// PlanCacheHit / ResultCacheHit report the server's caches; a
	// result-cache hit means no solve ran (and no progress was streamed).
	PlanCacheHit   bool        `json:"plan_cache_hit,omitempty"`
	ResultCacheHit bool        `json:"result_cache_hit,omitempty"`
	Sketch         *SketchInfo `json:"sketch,omitempty"`
	// Degraded reports that an engine-applied budget (query-class or
	// deadline-derived) cut the evaluation short and this is the anytime
	// best-so-far feasible package rather than the converged answer. Gap is
	// the achieved validation gap (the best epsilon upper bound observed;
	// omitted when no finite bound was reached). Degraded results are never
	// served from or stored into the result cache.
	Degraded bool    `json:"degraded,omitempty"`
	Gap      float64 `json:"gap,omitempty"`
	// WaitMS is the time the query spent waiting for a solve slot; SolveMS
	// the evaluation wall-clock.
	WaitMS  int64 `json:"wait_ms"`
	SolveMS int64 `json:"solve_ms"`
	// Raw is the solver-fidelity solution, rendered only for SolveSpec
	// submissions (solver-to-solver dispatch needs exact multiplicities;
	// ordinary clients get the compact Package above).
	Raw *SolveResult `json:"raw,omitempty"`
}

// Job is the resource served by GET /v1/queries/{id}: submission echo,
// lifecycle state, latest progress, the best-so-far package, and — once
// terminal — the result or error.
type Job struct {
	ID     string   `json:"id"`
	State  JobState `json:"state"`
	Query  string   `json:"query"`
	Method string   `json:"method,omitempty"`
	// Seq is the job's current sequence number; it advances on every state
	// change and progress event.
	Seq        int        `json:"seq"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Progress is the latest progress event; Events holds the events newer
	// than the poll's since parameter (server-side bounded history).
	Progress *Progress  `json:"progress,omitempty"`
	Events   []Progress `json:"events,omitempty"`
	// BestFeasible/BestObjective/BestPackage expose the incumbent package
	// while the job runs (and after), mapped to base-relation tuples.
	BestFeasible  bool           `json:"best_feasible,omitempty"`
	BestObjective float64        `json:"best_objective,omitempty"`
	BestPackage   []PackageTuple `json:"best_package,omitempty"`
	// Result is set once the job succeeded; Error once it failed or was
	// cancelled.
	Result *QueryResult `json:"result,omitempty"`
	Error  *Error       `json:"error,omitempty"`
	// Trace is the job's rendered span tree, attached once the job is
	// terminal (the live tree is always available at
	// GET /v1/queries/{id}/trace). List responses omit it.
	Trace *TraceSpan `json:"trace,omitempty"`
}

// ListResponse answers GET /v1/queries.
type ListResponse struct {
	Jobs []*Job `json:"jobs"`
}

// StatsJobs is the job-manager slice of GET /stats (the engine serves the
// full payload; these fields ride alongside the cache and admission
// counters).
type StatsJobs struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsEvicted   int64 `json:"jobs_evicted"`
}

// DeltaRequest is the body of POST /v1/tables/{name}/deltas: a batch
// mutation of a registered table. Set patches deterministic-column cells
// (tuple indices key the inner map; JSON renders them as strings), Delete
// removes tuples, Append adds rows at the end (each row must supply every
// deterministic column). The order of application is set → delete → append.
type DeltaRequest struct {
	Set    map[string]map[int]float64 `json:"set,omitempty"`
	Delete []int                      `json:"delete,omitempty"`
	Append []map[string]float64       `json:"append,omitempty"`
}

// DeltaResponse reports what a delta changed: the version bracket and the
// change footprint downstream caches invalidate by.
type DeltaResponse struct {
	Table       string `json:"table"`
	FromVersion uint64 `json:"from_version"`
	Version     uint64 `json:"version"`
	// Cols lists deterministic columns with patched cells; TuplesSet counts
	// the distinct tuples they touched.
	Cols      []string `json:"cols,omitempty"`
	TuplesSet int      `json:"tuples_set,omitempty"`
	Appended  int      `json:"appended,omitempty"`
	Deleted   bool     `json:"deleted,omitempty"`
}
