package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/engine"
	"spq/internal/relation"
	"spq/internal/rng"
)

// catalog is a minimal engine.Catalog over a name → relation map.
type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, bool) {
	rel, ok := c[strings.ToLower(name)]
	return rel, ok
}

// newStocks builds the small tractable stocks table the engine tests use.
func newStocks(n int) catalog {
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		gains[i] = dist.Normal{Mu: 0.5 + float64(i%5)*0.4, Sigma: 0.5 + float64(i%3)*0.5}
	}
	if err := rel.AddDet("price", price); err != nil {
		panic(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		panic(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return catalog{"stocks": rel}
}

const testQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -5 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func testServer(t *testing.T, e *engine.Engine) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func smallOptions() *client.SolveOptions {
	return &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60}
}

// TestClientSubmitStreamParity is the end-to-end acceptance check: a
// SummarySearch query submitted via client.Submit streams at least one
// intermediate progress update (iteration count + best objective) before
// the terminal state is delivered, and the final result matches the
// synchronous Engine.Query path bit-for-bit.
func TestClientSubmitStreamParity(t *testing.T) {
	e := engine.New(newStocks(15), &engine.Options{ResultCacheSize: -1})
	srv := testServer(t, e)
	c, err := client.New(srv.URL, client.WithPollInterval(200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job, err := c.Submit(ctx, client.SubmitRequest{Query: testQuery, Options: smallOptions()})
	if err != nil {
		t.Fatal(err)
	}

	var events []client.Progress
	final, err := c.Stream(ctx, job.ID, func(p client.Progress) {
		events = append(events, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobSucceeded {
		t.Fatalf("state = %q (error %+v)", final.State, final.Error)
	}
	if err := final.Err(); err != nil {
		t.Fatalf("Err() = %v on a succeeded job", err)
	}
	if len(events) == 0 {
		t.Fatal("Stream delivered no progress events before completion")
	}
	for _, ev := range events {
		if ev.Iteration < 1 {
			t.Fatalf("progress event without iteration count: %+v", ev)
		}
	}
	if last := events[len(events)-1]; last.BestObjective != final.Result.Objective {
		t.Fatalf("streamed best objective %v != final objective %v", last.BestObjective, final.Result.Objective)
	}

	// Bit-identical to the synchronous path for the same seed.
	sres, err := e.Query(ctx, engine.Request{
		Query:   testQuery,
		Options: &core.Options{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.Objective != sres.Objective || final.Result.M != sres.M || final.Result.Z != sres.Z {
		t.Fatalf("async (obj=%v M=%d Z=%d) != sync (obj=%v M=%d Z=%d)",
			final.Result.Objective, final.Result.M, final.Result.Z, sres.Objective, sres.M, sres.Z)
	}
	want := sres.Multiplicities()
	if len(final.Result.Package) != len(want) {
		t.Fatalf("package = %v, want %v", final.Result.Package, want)
	}
	for _, pt := range final.Result.Package {
		if want[pt.Tuple] != pt.Count {
			t.Fatalf("package tuple %d count %d, want %d", pt.Tuple, pt.Count, want[pt.Tuple])
		}
	}
}

// TestClientCancel cancels a long-running job through the client.
func TestClientCancel(t *testing.T) {
	e := engine.New(newStocks(40), &engine.Options{Parallelism: 1})
	srv := testServer(t, e)
	c, err := client.New(srv.URL, client.WithPollInterval(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job, err := c.Submit(ctx, client.SubmitRequest{
		Query: `SELECT PACKAGE(*) FROM stocks SUCH THAT
			SUM(price) <= 2000 AND
			SUM(gain) >= 500 WITH PROBABILITY >= 0.99
			MAXIMIZE EXPECTED SUM(gain)`,
		Options: &client.SolveOptions{Seed: 1, ValidationM: 500000, InitialM: 50, IncrementM: 50, MaxM: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobCancelled {
		t.Fatalf("state = %q, want cancelled", final.State)
	}
	var apiErr *client.Error
	if err := final.Err(); !errors.As(err, &apiErr) || apiErr.Code != client.CodeCancelled {
		t.Fatalf("Err() = %v, want code cancelled", err)
	}
}

// TestClientRetries429: the client retries overload rejections with the
// server-suggested backoff and succeeds once capacity frees up.
func TestClientRetries429(t *testing.T) {
	e := engine.New(newStocks(15), nil)
	inner := e.Handler()
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/queries" && attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // force the envelope's ms hint
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(client.ErrorEnvelope{Error: &client.Error{
				Code: client.CodeOverloaded, Message: "synthetic overload", RetryAfterMS: 5,
			}})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := client.New(srv.URL, client.WithRetries(3), client.WithPollInterval(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := c.Run(ctx, client.SubmitRequest{Query: testQuery, Options: smallOptions()})
	if err != nil {
		t.Fatalf("Run failed despite retries: %v", err)
	}
	if job.State != client.JobSucceeded {
		t.Fatalf("state = %q", job.State)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("submit attempts = %d, want 3 (two 429s then success)", got)
	}

	// With retries disabled the synthetic overload surfaces as *Error.
	attempts.Store(0)
	c2, err := client.New(srv.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c2.Submit(ctx, client.SubmitRequest{Query: testQuery, Options: smallOptions()})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Code != client.CodeOverloaded || apiErr.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want overloaded *client.Error", err)
	}
}

// TestClientBatchAndList covers the remaining verbs over the wire.
func TestClientBatchAndList(t *testing.T) {
	e := engine.New(newStocks(15), nil)
	srv := testServer(t, e)
	c, err := client.New(srv.URL, client.WithPollInterval(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	items, err := c.SubmitBatch(ctx, []client.SubmitRequest{
		{Query: testQuery, Options: smallOptions()},
		{Query: "SELECT NONSENSE"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Job == nil || items[1].Error == nil {
		t.Fatalf("batch = %+v", items)
	}
	if items[1].Error.Code != client.CodeInvalidQuery {
		t.Fatalf("batch error code = %q", items[1].Error.Code)
	}
	if _, err := c.Wait(ctx, items[0].Job.ID); err != nil {
		t.Fatal(err)
	}
	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != items[0].Job.ID {
		t.Fatalf("list = %+v", jobs)
	}
	if _, err := c.Get(ctx, "no-such-job"); err == nil {
		t.Fatal("Get of unknown job succeeded")
	}
}
