// Package client is the typed Go client for the spqd v1 HTTP API: the
// versioned, job-oriented query surface of the stochastic package query
// daemon (cmd/spqd).
//
// The v1 API is asynchronous: POST /v1/queries accepts an sPaQL query and
// returns a Job immediately; the job then moves through the state machine
// queued → running → {succeeded, failed, cancelled} while the server's
// anytime algorithm (SummarySearch) streams per-iteration progress events —
// scenario/summary counts, validation verdicts, the best objective so far.
// The client wraps that lifecycle behind four verbs:
//
//   - Submit starts a job and returns its handle.
//   - Wait long-polls until the job is terminal.
//   - Stream is Wait with a callback per progress event.
//   - Cancel aborts a queued or running job server-side.
//
// Run is Submit+Wait in one call. Overload rejections (HTTP 429) are
// retried automatically with the server-suggested backoff. This package
// also defines the v1 wire types (api.go), which the server marshals — the
// contract cannot drift between the two — and it is the transport the
// remote solver (internal/remote) dispatches sub-problems over: a
// SubmitRequest carrying a SolveSpec ships one relation-view sub-problem
// to a worker daemon, whose job answers with the raw solution
// (QueryResult.Raw), bit-identical to solving locally. Failed jobs carry
// stable error codes that survive dispatch hops (a coordinator surfaces a
// worker's code, not a generic "internal").
//
// A minimal session against a running spqd:
//
//	c, err := client.New("http://localhost:8723")
//	if err != nil { ... }
//	job, err := c.Run(ctx, client.SubmitRequest{Query: spaql})
//	if err != nil { ... }
//	if job.State == client.JobSucceeded {
//		fmt.Println(job.Result.Objective, job.Result.Package)
//	}
//
// See ExampleClient for a complete runnable version, and DESIGN.md ("API
// v1") for the endpoint and error-code contract.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to one spqd base URL. It is safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	retries  int
	pollWait time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a 429-rejected request is retried before
// the overload error is returned (default 3; 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithPollInterval sets the long-poll wait the client asks the server for
// while waiting on a job (default 2s; the server caps it at 30s).
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.pollWait = d } }

// New creates a client for the spqd at baseURL (e.g. "http://host:8723").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http(s)", baseURL)
	}
	c := &Client{
		base:     strings.TrimRight(u.String(), "/"),
		hc:       &http.Client{},
		retries:  3,
		pollWait: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// do runs one JSON request/response exchange. HTTP 429 responses are
// retried up to c.retries times, honoring the server's Retry-After;
// anything else non-2xx decodes the error envelope into *Error.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, in, out any) error {
	return c.doHeaders(ctx, method, path, query, nil, in, out)
}

// doHeaders is do with extra request headers (the trace-propagation hook).
func (c *Client) doHeaders(ctx context.Context, method, path string, query url.Values, hdr http.Header, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, u, bytes.NewReader(body))
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, vs := range hdr {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode/100 == 2 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decode response: %w", err)
			}
			return nil
		}
		apiErr := decodeError(resp, data)
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries {
			if err := sleep(ctx, retryDelay(resp, apiErr, attempt)); err != nil {
				return apiErr // context ended while backing off: surface the 429
			}
			continue
		}
		return apiErr
	}
}

// decodeError turns a non-2xx response into *Error, synthesizing one when
// the body is not the envelope (e.g. a proxy in the way).
func decodeError(resp *http.Response, data []byte) *Error {
	var env ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = resp.StatusCode
		return env.Error
	}
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = resp.Status
	}
	code := CodeInternal
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		code = CodeOverloaded
	case http.StatusNotFound:
		code = CodeNotFound
	case http.StatusBadRequest:
		code = CodeBadRequest
	}
	return &Error{Code: code, Message: msg, HTTPStatus: resp.StatusCode}
}

// retryDelay picks the backoff before retrying a 429: the Retry-After
// header, the envelope's retry_after_ms, or an attempt-scaled default.
func retryDelay(resp *http.Response, apiErr *Error, attempt int) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	if apiErr.RetryAfterMS > 0 {
		return time.Duration(apiErr.RetryAfterMS) * time.Millisecond
	}
	return time.Duration(attempt+1) * 250 * time.Millisecond
}

func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit starts one asynchronous query evaluation and returns the queued
// Job. Overload rejections are retried per WithRetries; other submission
// failures (parse errors, unknown methods) return *Error with a stable
// code.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*Job, error) {
	var hdr http.Header
	if req.TraceParent != "" {
		hdr = http.Header{TraceHeader: []string{req.TraceParent}}
	}
	var job Job
	if err := c.doHeaders(ctx, http.MethodPost, "/v1/queries", nil, hdr, req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// SubmitBatch submits several queries in one round trip. Each item
// resolves to a Job or an inline Error; one rejected query does not abort
// the others.
func (c *Client) SubmitBatch(ctx context.Context, reqs []SubmitRequest) ([]BatchItem, error) {
	var out BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/queries:batch", nil, BatchRequest{Queries: reqs}, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Get fetches a job's current state without waiting.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	return c.poll(ctx, id, 0, 0)
}

// List fetches every job the server tracks (active plus bounded history).
func (c *Client) List(ctx context.Context) ([]*Job, error) {
	var out ListResponse
	if err := c.do(ctx, http.MethodGet, "/v1/queries", nil, nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Trace fetches a job's span tree (GET /v1/queries/{id}/trace). It works on
// running jobs too: unfinished spans report a zero duration.
func (c *Client) Trace(ctx context.Context, id string) (*TraceSpan, error) {
	var tr TraceSpan
	if err := c.do(ctx, http.MethodGet, "/v1/queries/"+url.PathEscape(id)+"/trace", nil, nil, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Cancel requests cancellation of a queued or running job and returns its
// (possibly already terminal) state. Cancelling a terminal job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodDelete, "/v1/queries/"+url.PathEscape(id), nil, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// ApplyDelta applies a batch mutation to a registered table
// (POST /v1/tables/{name}/deltas) and returns the change footprint. A
// read-only server rejects it with CodeMethodNotAllowed.
func (c *Client) ApplyDelta(ctx context.Context, table string, req *DeltaRequest) (*DeltaResponse, error) {
	var out DeltaResponse
	if err := c.do(ctx, http.MethodPost, "/v1/tables/"+url.PathEscape(table)+"/deltas", nil, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// poll is one GET with the long-poll and incremental-events parameters.
func (c *Client) poll(ctx context.Context, id string, since int, wait time.Duration) (*Job, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.Itoa(since))
	}
	if wait > 0 {
		q.Set("wait_ms", strconv.FormatInt(wait.Milliseconds(), 10))
	}
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/queries/"+url.PathEscape(id), q, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Stream long-polls the job, invoking fn once per progress event in order,
// until the job reaches a terminal state; it returns the terminal Job. A
// nil fn just waits. Events already emitted before the call are replayed
// from the server's bounded history, so a fast solve still delivers its
// intermediate progress.
func (c *Client) Stream(ctx context.Context, id string, fn func(Progress)) (*Job, error) {
	since := 0
	for {
		job, err := c.poll(ctx, id, since, c.pollWait)
		if err != nil {
			return nil, err
		}
		if fn != nil {
			for _, ev := range job.Events {
				fn(ev)
			}
		}
		if job.State.Terminal() {
			return job, nil
		}
		if job.Seq > since {
			since = job.Seq
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// Wait blocks until the job is terminal and returns it.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	return c.Stream(ctx, id, nil)
}

// Run is Submit followed by Wait: the synchronous convenience call. The
// returned Job is terminal; inspect Job.State and Job.Result / Job.Error.
func (c *Client) Run(ctx context.Context, req SubmitRequest) (*Job, error) {
	job, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, job.ID)
}

// Err converts a terminal job into an error: nil for success, the job's
// inline *Error for failed or cancelled jobs, and a descriptive error for
// non-terminal states.
func (j *Job) Err() error {
	switch {
	case j == nil:
		return errors.New("client: nil job")
	case !j.State.Terminal():
		return fmt.Errorf("client: job %s still %s", j.ID, j.State)
	case j.Error != nil:
		return j.Error
	case j.State == JobSucceeded:
		return nil
	default:
		return fmt.Errorf("client: job %s %s", j.ID, j.State)
	}
}
