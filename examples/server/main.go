// The server example shows the concurrent execution engine serving sPaQL
// query traffic over HTTP: it starts the same engine the spqd daemon runs
// (in-process, on a random local port), then fires a burst of concurrent
// clients at it. The output shows admission waits, plan-cache hits on
// repeated queries, and the /stats counters after the burst.
//
// Run with:
//
//	go run ./examples/server
//
// To run against a standalone daemon instead, start one in another
// terminal (`go run ./cmd/spqd -workload portfolio -n 120`) and point the
// same request bodies at it with curl.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"spq"
	"spq/internal/rng"
	"spq/internal/workload"
)

// queryBody mirrors the engine's POST /query request schema.
type queryBody struct {
	Query       string `json:"query"`
	Seed        uint64 `json:"seed,omitempty"`
	ValidationM int    `json:"validation_m,omitempty"`
	InitialM    int    `json:"initial_m,omitempty"`
	MaxM        int    `json:"max_m,omitempty"`
	FixedZ      int    `json:"fixed_z,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
}

// queryReply mirrors the response schema (the fields this example prints).
type queryReply struct {
	Feasible    bool    `json:"feasible"`
	Objective   float64 `json:"objective"`
	PackageSize float64 `json:"package_size"`
	M           int     `json:"m"`
	Z           int     `json:"z"`
	CacheHit    bool    `json:"cache_hit"`
	WaitMS      int64   `json:"wait_ms"`
	TotalMS     int64   `json:"total_ms"`
	Error       string  `json:"error"`
}

func main() {
	// Load the Portfolio workload and stand up the engine's HTTP API —
	// exactly what `spqd -workload portfolio` serves.
	db := spq.NewDB()
	db.MeansM = 500
	inst := workload.Portfolio(workload.Config{N: 60, Seed: 42, MeansM: 500})
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}
	eng := spq.NewEngine(db, &spq.EngineOptions{
		MaxInFlight:    4,
		DefaultTimeout: 30 * time.Second,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: eng.Handler()}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("spqd-style server on %s\n\n", base)

	// A small query mix over the workload's VaR constraint: two distinct
	// plans, issued repeatedly, so the burst exercises both the solver
	// concurrency and the plan cache.
	queries := []string{
		`SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
			SUM(price) <= 1000 AND
			SUM(gain) >= -20 WITH PROBABILITY >= 0.9
			MAXIMIZE EXPECTED SUM(gain)`,
		`SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
			SUM(price) <= 500 AND
			SUM(gain) >= -5 WITH PROBABILITY >= 0.95
			MAXIMIZE EXPECTED SUM(gain)`,
	}

	// One independent optimization-seed substream per plan, derived with
	// the rng split API; clients issuing the same plan share its seed, so
	// their answers are comparable (the engine is deterministic per seed).
	planSeeds := rng.NewSource(42).Split(len(queries))

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(queryBody{
				Query:       queries[c%len(queries)],
				Seed:        planSeeds[c%len(queries)].Base(),
				ValidationM: 1000,
				InitialM:    10,
				MaxM:        40,
				FixedZ:      1,
				TimeoutMS:   20000,
			})
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			var reply queryReply
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				log.Printf("client %d: HTTP %d: %s", c, resp.StatusCode, reply.Error)
				return
			}
			fmt.Printf("client %d: plan %d feasible=%v objective=%.4f size=%.0f (M=%d, Z=%d) cache_hit=%v wait=%dms total=%dms\n",
				c, c%len(queries), reply.Feasible, reply.Objective, reply.PackageSize,
				reply.M, reply.Z, reply.CacheHit, reply.WaitMS, reply.TotalMS)
		}(c)
	}
	wg.Wait()

	// Engine counters after the burst: expect 8 queries and plan-cache
	// hits for every re-issued query text.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	out, _ := json.MarshalIndent(stats, "", "  ")
	fmt.Printf("\n/stats after burst:\n%s\n", out)
}
