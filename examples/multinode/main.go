// The multinode example runs a three-daemon fleet in one process — one
// coordinator and two workers, the same topology `spqd -workers` deploys
// across machines — and shows the two multi-node mechanisms working:
//
//  1. Remote solving: the coordinator evaluates a sketch query whose shard
//     sub-solves are dispatched to the workers as v1 jobs (the "remote"
//     solver behind the core.Solver seam), and the result is verified
//     bit-identical to solving everything locally.
//  2. Result-cache replication: the workers are peers; a query solved on
//     one is answered by the other from its replicated cache without
//     solving.
//  3. Fleet-wide observability: the dispatched query produces ONE trace —
//     the workers adopt the coordinator's trace ID from the X-Spq-Trace
//     header and their span trees come back grafted under the dispatch
//     spans — and every daemon's /metrics endpoint exports phase-latency
//     histograms that agree with its own counters.
//
// Every node loads the portfolio workload from the same seed — the
// shared-data assumption a real fleet meets the same way. Run with:
//
//	go run ./examples/multinode
//
// See OPERATIONS.md for the corresponding spqd invocations on real hosts.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"strings"
	"time"

	"spq"
	"spq/internal/obs"
	"spq/internal/resultcache"
	"spq/internal/workload"
)

const query = `SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
	SUM(price) <= 600 AND
	SUM(gain) >= -10 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

// newDB loads the shared workload; every fleet member calls it with the
// same configuration, which is what makes their answers interchangeable.
func newDB() *spq.DB {
	db := spq.NewDB()
	db.MeansM = 500
	inst := workload.Portfolio(workload.Config{N: 120, Seed: 42, MeansM: 500})
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// serve starts one daemon on a random local port and returns its base URL.
func serve(eng *spq.Engine) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, eng.Handler())
	return "http://" + ln.Addr().String()
}

func options() *spq.Options {
	return &spq.Options{Seed: 7, ValidationM: 1000, InitialM: 10, IncrementM: 10, MaxM: 40}
}

func request() spq.EngineRequest {
	return spq.EngineRequest{
		Query:   query,
		Method:  "sketch",
		Options: options(),
		Sketch:  &spq.SketchOptions{GroupSize: 8, MaxCandidates: 32, Shards: 2, Seed: 3},
	}
}

func main() {
	fail := func(format string, args ...any) {
		fmt.Printf("FAIL: "+format+"\n", args...)
		os.Exit(1)
	}

	// Two worker daemons, peered with each other so their result caches
	// replicate (mirrors `spqd -peers`).
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	storeA := resultcache.NewReplicating(resultcache.NewMemory(256), []string{urlB}, nil)
	storeB := resultcache.NewReplicating(resultcache.NewMemory(256), []string{urlA}, nil)
	workerA := spq.NewEngine(newDB(), &spq.EngineOptions{ResultCache: storeA})
	workerB := spq.NewEngine(newDB(), &spq.EngineOptions{ResultCache: storeB})
	go http.Serve(lnA, workerA.Handler())
	go http.Serve(lnB, workerB.Handler())
	fmt.Printf("workers up: %s %s\n", urlA, urlB)

	// The coordinator daemon dispatches sketch sub-solves to the workers
	// (mirrors `spqd -workers ... -solver remote`).
	rs, err := spq.NewRemoteSolver(spq.RemoteSolverOptions{
		Workers: []string{urlA, urlB},
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	coordinator := spq.NewEngine(newDB(), &spq.EngineOptions{
		SketchSolver: rs,
		RemoteStats:  rs.Stats,
	})
	coordURL := serve(coordinator)
	fmt.Printf("coordinator up: %s\n", coordURL)

	// A pure-local reference engine computes the answer the fleet must
	// reproduce bit-for-bit.
	local := spq.NewEngine(newDB(), nil)
	ctx := context.Background()

	// --- 1. result-cache replication ---
	// (Run first: once remote dispatch starts, sub-solve entries replicate
	// between the workers too, and this demo wants a quiet wire.)
	simple := spq.EngineRequest{Query: query, Options: options()}
	if _, err := workerA.Query(ctx, simple); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for workerB.Stats().CacheReceived == 0 {
		if time.Now().After(deadline) {
			fail("worker B never received the replicated entry: %+v", storeA.Counters())
		}
		time.Sleep(10 * time.Millisecond)
	}
	hit, err := workerB.Query(ctx, simple)
	if err != nil {
		log.Fatal(err)
	}
	if !hit.ResultCacheHit {
		fail("worker B solved a query worker A already solved")
	}
	fmt.Printf("\ncache replication: worker B answered worker A's query from the replicated cache ✓\n")
	fmt.Printf("  worker A pushed %d, worker B received %d\n",
		storeA.Counters().Replicated, workerB.Stats().CacheReceived)

	// --- 2. remote solving ---
	phases := map[string]int{}
	req := request()
	req.Progress = func(p spq.Progress) { phases[p.Phase]++ }
	start := time.Now()
	distributed, err := coordinator.Query(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := local.Query(ctx, request())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsketch query across the fleet: objective %.6g, package size %.0f (%s)\n",
		distributed.Objective, distributed.PackageSize(), time.Since(start).Round(time.Millisecond))
	for phase, n := range phases {
		fmt.Printf("  progress from %-14s %d events\n", phase+":", n)
	}
	st := rs.Stats()
	fmt.Printf("  remote dispatches: %d (fallbacks %d, failures %d)\n", st.Dispatched, st.Fallbacks, st.Failures)
	if st.Dispatched == 0 {
		fail("no sub-solves were dispatched to the workers")
	}
	if distributed.Objective != reference.Objective ||
		distributed.Feasible != reference.Feasible ||
		!reflect.DeepEqual(distributed.Solution.X, reference.Solution.X) {
		fail("distributed result differs from local (obj %v vs %v)", distributed.Objective, reference.Objective)
	}
	fmt.Println("  distributed ≡ local: bit-identical ✓")

	// --- 3. one trace across the fleet ---
	// The coordinator minted the trace; each dispatch carried its ID to a
	// worker in the X-Spq-Trace header, and the worker's span tree came back
	// grafted under the remote/dispatch span. One trace ID, three daemons.
	tr := distributed.Trace
	if tr == nil {
		fail("coordinator query returned no trace")
	}
	spans := 0
	workersSeen := map[string]bool{}
	grafted := 0
	phaseSpans := map[string]int{}
	tr.Walk(func(d *obs.SpanData) {
		spans++
		phaseSpans[obs.PhaseName(d.Name)]++
		if d.Name != "remote/dispatch" {
			return
		}
		workersSeen[d.Attrs["worker"]] = true
		for _, c := range d.Children {
			if c.Name == "query" {
				grafted++
				if c.TraceID != tr.TraceID {
					fail("worker trace id %q != coordinator %q", c.TraceID, tr.TraceID)
				}
			}
		}
	})
	fmt.Printf("\nfleet trace %s: %d spans, %d dispatches to %d worker(s), %d grafted worker trees\n",
		tr.TraceID, spans, phaseSpans["remote/dispatch"], len(workersSeen), grafted)
	for _, phase := range []string{"sketch/shard", "refine", "solve"} {
		if phaseSpans[phase] == 0 {
			fail("trace has no %s spans: %v", phase, phaseSpans)
		}
	}
	if grafted != phaseSpans["remote/dispatch"] {
		fail("%d dispatches but %d grafted worker trees", phaseSpans["remote/dispatch"], grafted)
	}
	fmt.Printf("  phases observed: sketch/shard ×%d, refine ×%d, solve ×%d — all under one trace ID ✓\n",
		phaseSpans["sketch/shard"], phaseSpans["refine"], phaseSpans["solve"])

	// Every daemon exports /metrics; the phase histograms must agree with
	// the counters the same daemon reports on /stats (shared registry).
	for _, node := range []struct {
		name string
		url  string
		eng  *spq.Engine
	}{{"worker A", urlA, workerA}, {"worker B", urlB, workerB}} {
		solves := scrapeInt(fail, node.url, `spq_phase_latency_seconds_count{phase="solve"}`)
		if want := node.eng.Stats().MilpSolves; solves != want {
			fail("%s: /metrics solve-phase count %d != %d MILP solves on /stats", node.name, solves, want)
		}
		queries := scrapeInt(fail, node.url, `spq_queries_total`)
		if queries != node.eng.Stats().Queries {
			fail("%s: /metrics queries %d != /stats %d", node.name, queries, node.eng.Stats().Queries)
		}
		fmt.Printf("  %s /metrics: %d queries, %d solve-phase observations ≡ /stats ✓\n",
			node.name, queries, solves)
	}
	// The coordinator ran no MILP itself — every solve was dispatched — so
	// its histograms show the sketch phases it drove, not solver time.
	shards := scrapeInt(fail, coordURL, `spq_phase_latency_seconds_count{phase="sketch/shard"}`)
	if shards != int64(phaseSpans["sketch/shard"]) {
		fail("coordinator: /metrics shard-phase count %d != %d shard spans in the trace",
			shards, phaseSpans["sketch/shard"])
	}
	fmt.Printf("  coordinator /metrics: %d sketch/shard observations ≡ trace ✓\n", shards)

	fmt.Println("\nPASS")
}

// scrapeInt fetches a daemon's /metrics and returns one sample's integer
// value, the way a Prometheus scrape would read it.
func scrapeInt(fail func(string, ...any), base, sample string) int64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fail("scrape %s: %v", base, err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				fail("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	fail("no %s sample on %s/metrics", sample, base)
	return 0
}
