// The multinode example runs a three-daemon fleet in one process — one
// coordinator and two workers, the same topology `spqd -workers` deploys
// across machines — and shows the two multi-node mechanisms working:
//
//  1. Remote solving: the coordinator evaluates a sketch query whose shard
//     sub-solves are dispatched to the workers as v1 jobs (the "remote"
//     solver behind the core.Solver seam), and the result is verified
//     bit-identical to solving everything locally.
//  2. Result-cache replication: the workers are peers; a query solved on
//     one is answered by the other from its replicated cache without
//     solving.
//
// Every node loads the portfolio workload from the same seed — the
// shared-data assumption a real fleet meets the same way. Run with:
//
//	go run ./examples/multinode
//
// See OPERATIONS.md for the corresponding spqd invocations on real hosts.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"reflect"
	"time"

	"spq"
	"spq/internal/resultcache"
	"spq/internal/workload"
)

const query = `SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
	SUM(price) <= 600 AND
	SUM(gain) >= -10 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

// newDB loads the shared workload; every fleet member calls it with the
// same configuration, which is what makes their answers interchangeable.
func newDB() *spq.DB {
	db := spq.NewDB()
	db.MeansM = 500
	inst := workload.Portfolio(workload.Config{N: 120, Seed: 42, MeansM: 500})
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

// serve starts one daemon on a random local port and returns its base URL.
func serve(eng *spq.Engine) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, eng.Handler())
	return "http://" + ln.Addr().String()
}

func options() *spq.Options {
	return &spq.Options{Seed: 7, ValidationM: 1000, InitialM: 10, IncrementM: 10, MaxM: 40}
}

func request() spq.EngineRequest {
	return spq.EngineRequest{
		Query:   query,
		Method:  "sketch",
		Options: options(),
		Sketch:  &spq.SketchOptions{GroupSize: 8, MaxCandidates: 32, Shards: 2, Seed: 3},
	}
}

func main() {
	fail := func(format string, args ...any) {
		fmt.Printf("FAIL: "+format+"\n", args...)
		os.Exit(1)
	}

	// Two worker daemons, peered with each other so their result caches
	// replicate (mirrors `spqd -peers`).
	lnA, _ := net.Listen("tcp", "127.0.0.1:0")
	lnB, _ := net.Listen("tcp", "127.0.0.1:0")
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	storeA := resultcache.NewReplicating(resultcache.NewMemory(256), []string{urlB}, nil)
	storeB := resultcache.NewReplicating(resultcache.NewMemory(256), []string{urlA}, nil)
	workerA := spq.NewEngine(newDB(), &spq.EngineOptions{ResultCache: storeA})
	workerB := spq.NewEngine(newDB(), &spq.EngineOptions{ResultCache: storeB})
	go http.Serve(lnA, workerA.Handler())
	go http.Serve(lnB, workerB.Handler())
	fmt.Printf("workers up: %s %s\n", urlA, urlB)

	// The coordinator daemon dispatches sketch sub-solves to the workers
	// (mirrors `spqd -workers ... -solver remote`).
	rs, err := spq.NewRemoteSolver(spq.RemoteSolverOptions{
		Workers: []string{urlA, urlB},
		Logf:    log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	coordinator := spq.NewEngine(newDB(), &spq.EngineOptions{
		SketchSolver: rs,
		RemoteStats:  rs.Stats,
	})
	fmt.Printf("coordinator up: %s\n", serve(coordinator))

	// A pure-local reference engine computes the answer the fleet must
	// reproduce bit-for-bit.
	local := spq.NewEngine(newDB(), nil)
	ctx := context.Background()

	// --- 1. result-cache replication ---
	// (Run first: once remote dispatch starts, sub-solve entries replicate
	// between the workers too, and this demo wants a quiet wire.)
	simple := spq.EngineRequest{Query: query, Options: options()}
	if _, err := workerA.Query(ctx, simple); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for workerB.Stats().CacheReceived == 0 {
		if time.Now().After(deadline) {
			fail("worker B never received the replicated entry: %+v", storeA.Counters())
		}
		time.Sleep(10 * time.Millisecond)
	}
	hit, err := workerB.Query(ctx, simple)
	if err != nil {
		log.Fatal(err)
	}
	if !hit.ResultCacheHit {
		fail("worker B solved a query worker A already solved")
	}
	fmt.Printf("\ncache replication: worker B answered worker A's query from the replicated cache ✓\n")
	fmt.Printf("  worker A pushed %d, worker B received %d\n",
		storeA.Counters().Replicated, workerB.Stats().CacheReceived)

	// --- 2. remote solving ---
	phases := map[string]int{}
	req := request()
	req.Progress = func(p spq.Progress) { phases[p.Phase]++ }
	start := time.Now()
	distributed, err := coordinator.Query(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := local.Query(ctx, request())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsketch query across the fleet: objective %.6g, package size %.0f (%s)\n",
		distributed.Objective, distributed.PackageSize(), time.Since(start).Round(time.Millisecond))
	for phase, n := range phases {
		fmt.Printf("  progress from %-14s %d events\n", phase+":", n)
	}
	st := rs.Stats()
	fmt.Printf("  remote dispatches: %d (fallbacks %d, failures %d)\n", st.Dispatched, st.Fallbacks, st.Failures)
	if st.Dispatched == 0 {
		fail("no sub-solves were dispatched to the workers")
	}
	if distributed.Objective != reference.Objective ||
		distributed.Feasible != reference.Feasible ||
		!reflect.DeepEqual(distributed.Solution.X, reference.Solution.X) {
		fail("distributed result differs from local (obj %v vs %v)", distributed.Objective, reference.Objective)
	}
	fmt.Println("  distributed ≡ local: bit-identical ✓")

	fmt.Println("\nPASS")
}
