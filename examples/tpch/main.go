// The tpch example runs the paper's data-integration workload (§6.1): a
// lineitem-like table whose quantity and revenue columns disagree across D
// integrated sources, queried with a probability objective — maximize the
// chance that total revenue exceeds $1000 while keeping total quantity small
// with high probability. It also demonstrates infeasibility reporting on the
// workload's impossible query (Q8).
//
// Run with:
//
//	go run ./examples/tpch
package main

import (
	"errors"
	"fmt"
	"log"

	"spq"
	"spq/internal/workload"
)

func main() {
	inst := workload.TPCH(workload.Config{N: 200, Seed: 5})
	db := spq.NewDB()
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}

	opts := func(z int) *spq.Options {
		return &spq.Options{
			Seed:        1,
			ValidationM: 3000,
			InitialM:    15,
			MaxM:        60,
			FixedZ:      z,
		}
	}

	// Q1: feasible, exponential source noise, D = 3.
	q1, _ := inst.QueryByID("Q1")
	fmt.Printf("Q1 — %s\n", q1.Description)
	res, err := db.Query(q1.SPaQL, opts(q1.FixedZ))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", res)
	fmt.Printf("  Pr(revenue ≥ 1000) ≈ %.1f%%, Pr(quantity ≤ 15) ≈ %.1f%% (target 90%%)\n\n",
		100*res.Objective, 100*(0.9+res.Surpluses[0]))

	// Q8: infeasible by construction — every integrated source reports
	// quantity above the threshold.
	q8, _ := inst.QueryByID("Q8")
	fmt.Printf("Q8 — %s (expected: INFEASIBLE)\n", q8.Description)
	res8, err := db.Query(q8.SPaQL, opts(q8.FixedZ))
	switch {
	case errors.Is(err, spq.ErrInfeasible):
		fmt.Println("  infeasible (deterministic constraints)")
	case err != nil:
		log.Fatal(err)
	case res8.Feasible:
		log.Fatal("Q8 unexpectedly feasible")
	default:
		fmt.Printf("  declared infeasible after exhausting M=%d scenarios ", res8.M)
		fmt.Printf("(best surplus %.3f < 0)\n", maxSurplus(res8))
	}
}

func maxSurplus(res *spq.Result) float64 {
	if len(res.Surpluses) == 0 {
		return -1
	}
	best := res.Surpluses[0]
	for _, s := range res.Surpluses[1:] {
		if s > best {
			best = s
		}
	}
	return best
}
