// The updates example drives the mutable-relation surface end to end: a
// portfolio table takes in-place price updates while the engine keeps its
// caches warm. It shows the three delta-scoped maintenance behaviors:
//
//   - a delta outside a query's column footprint retains the cached result
//     (no re-solve at all);
//   - a delta touching a read column invalidates the entry but salvages its
//     warm-start state, so the re-solve starts from the previous package,
//     patched summaries, and root LP basis — fewer simplex iterations than
//     a cold solve, bit-identical answer;
//   - every counter involved is visible in the engine stats (the same
//     numbers spqd serves at /stats and /metrics).
//
// Run with:
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"spq"
)

const query = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -2 WITH PROBABILITY >= 0.95
	MAXIMIZE EXPECTED SUM(gain)`

func options() *spq.Options {
	return &spq.Options{Seed: 3, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60}
}

func main() {
	// A small portfolio whose gain variance grows with the mean: the chance
	// constraint binds, so SummarySearch runs real CSA iterations — the
	// state a warm re-solve shortcuts.
	const n = 15
	rel := spq.NewRelation("stocks", n)
	price := make([]float64, n)
	fee := make([]float64, n)
	gains := make([]spq.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		fee[i] = float64(i % 4)
		mu := 0.5 + float64(i%5)*0.4
		gains[i] = spq.Normal{Mu: mu, Sigma: 0.3 + 1.8*mu}
	}
	if err := rel.AddDet("price", price); err != nil {
		log.Fatal(err)
	}
	if err := rel.AddDet("fee", fee); err != nil {
		log.Fatal(err)
	}
	if err := rel.AddStoch("gain", &spq.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		log.Fatal(err)
	}

	db := spq.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}
	eng := spq.NewEngine(db, nil)
	ctx := context.Background()

	// 1. Cold solve. The engine caches the result together with its
	// warm-start state (package, summaries, root basis).
	cold, err := eng.Query(ctx, spq.EngineRequest{Query: query, Options: options()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold solve:    objective %.6g, %d LP iterations, %d MILP solves\n",
		cold.Objective, cold.LPIters, cold.MILPSolves)

	// 2. A delta outside the query's footprint (fee is never read): the
	// cached result is retained — rebased to the new version, zero solving.
	if _, err := eng.ApplyDelta("stocks", &spq.Delta{
		Set: map[string]map[int]float64{"fee": {0: 9, 7: 9}},
	}); err != nil {
		log.Fatal(err)
	}
	retained, err := eng.Query(ctx, spq.EngineRequest{Query: query, Options: options()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fee delta:     result cache hit = %v (footprint miss, no re-solve)\n",
		retained.ResultCacheHit)

	// 3. A price delta on three tuples outside the package: the entry dies,
	// but its warm state seeds the re-solve.
	patch := map[int]float64{}
	for i := n - 1; i >= 0 && len(patch) < 3; i-- {
		if cold.X[i] == 0 {
			patch[i] = price[i] + 500
		}
	}
	if _, err := eng.ApplyDelta("stocks", &spq.Delta{
		Set: map[string]map[int]float64{"price": patch},
	}); err != nil {
		log.Fatal(err)
	}
	warm, err := eng.Query(ctx, spq.EngineRequest{Query: query, Options: options()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("price delta:   warm re-solve = %v, objective %.6g, %d LP iterations, %d MILP solves\n",
		warm.WarmResolve, warm.Objective, warm.LPIters, warm.MILPSolves)

	// 4. Referee: a cold solve of the post-delta relation. The warm re-solve
	// must reach the same answer bit for bit, in strictly less work.
	coldEng := spq.NewEngine(db, &spq.EngineOptions{ResultCacheSize: -1})
	ref, err := coldEng.Query(ctx, spq.EngineRequest{Query: query, Options: options()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold referee:  objective %.6g, %d LP iterations, %d MILP solves\n",
		ref.Objective, ref.LPIters, ref.MILPSolves)

	if math.Float64bits(warm.Objective) != math.Float64bits(ref.Objective) {
		log.Fatalf("warm objective %v != cold %v", warm.Objective, ref.Objective)
	}
	if !warm.WarmResolve || warm.LPIters >= ref.LPIters || warm.MILPSolves >= ref.MILPSolves {
		log.Fatalf("warm re-solve did not beat cold: %d/%d LP iterations, %d/%d MILP solves",
			warm.LPIters, ref.LPIters, warm.MILPSolves, ref.MILPSolves)
	}
	fmt.Printf("\nwarm re-solve is bit-identical to cold at %d/%d the simplex iterations\n",
		warm.LPIters, ref.LPIters)

	st := eng.Stats()
	fmt.Printf("\nengine counters: deltas=%d retained=%d invalidated=%d plans_rebased=%d warm_resolves=%d\n",
		st.DeltasApplied, st.ResultsRetained, st.ResultsInvalidated, st.PlansRebased, st.WarmResolves)
	ds := spq.DeltaStats()
	fmt.Printf("relation counters: cells_patched=%d versions=%d\n", ds.CellsPatched, ds.DeltasApplied)
}
