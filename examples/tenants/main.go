// The tenants example demonstrates (and asserts — it exits non-zero on any
// violation, so CI runs it as the tenant smoke test) the engine's
// multi-tenant serving behaviour:
//
//  1. Weighted-fair admission. Two tenants, gold (weight 3) and bronze
//     (weight 1), flood a one-slot engine with identical cheap queries.
//     While both lanes stay backlogged, the deficit-round-robin scheduler
//     must admit them in a 3:1 ratio — the example measures a steady-state
//     window from /stats and requires the gold share of admissions to land
//     within 10% of the configured 75%.
//
//  2. Deadline-aware degradation. A query made effectively unbounded
//     (epsilon 1e-9, no scenario ceiling) under a tight request deadline
//     must come back degraded=true with a feasible anytime package and its
//     achieved gap — not a timeout error.
//
// Run with:
//
//	go run ./examples/tenants
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"spq"
	"spq/client"
	"spq/internal/workload"
)

const (
	goldWeight   = 3
	bronzeWeight = 1
	goldShare    = float64(goldWeight) / float64(goldWeight+bronzeWeight)
	shareSlack   = 0.10 * goldShare // "within 10%" of the configured share

	workersPerTenant = 8
	warmupAdmissions = 16  // skip the ramp while both lanes fill
	windowAdmissions = 120 // 30 full 3:1 DRR cycles — edge effects < 3%
)

// cheapQuery is the fairness-phase workload: small enough to finish in
// milliseconds, so the measurement window holds hundreds of admissions.
const cheapQuery = `SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
	SUM(price) <= 800 AND
	SUM(gain) >= -10 WITH PROBABILITY >= 0.9
	MAXIMIZE EXPECTED SUM(gain)`

// tenantRow is the slice of /stats this example reads per tenant.
type tenantRow struct {
	Weight   int   `json:"weight"`
	InFlight int   `json:"in_flight"`
	Waiting  int   `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

type statsBody struct {
	Degraded int64                `json:"degraded"`
	Tenants  map[string]tenantRow `json:"tenants"`
}

func getStats(base string) (statsBody, error) {
	var s statsBody
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

func main() {
	// One solve slot makes the weighted-fair schedule directly observable:
	// every admission is a scheduler decision. The result cache is disabled
	// so each request really solves (cache hits bypass admission).
	db := spq.NewDB()
	db.MeansM = 300
	inst := workload.Portfolio(workload.Config{N: 40, Seed: 42, MeansM: 300})
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}
	eng := spq.NewEngine(db, &spq.EngineOptions{
		MaxInFlight:     1,
		MaxQueue:        256,
		MaxJobs:         2048,
		Parallelism:     1,
		ResultCacheSize: -1,
		DefaultTimeout:  30 * time.Second,
		Tenants: []spq.TenantConfig{
			{Name: "gold", Weight: goldWeight},
			{Name: "bronze", Weight: bronzeWeight},
		},
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: eng.Handler()}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("two-tenant engine (gold:%d, bronze:%d) on %s\n\n", goldWeight, bronzeWeight, base)

	// ---- Phase 1: weighted-fair admission under sustained overload ----

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				body, _ := json.Marshal(map[string]any{
					"query":        cheapQuery,
					"seed":         7,
					"validation_m": 200,
					"initial_m":    10,
					"max_m":        20,
					"fixed_z":      1,
					"timeout_ms":   20000,
				})
				for {
					select {
					case <-stop:
						return
					default:
					}
					req, _ := http.NewRequest("POST", base+"/query", bytes.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set(client.TenantHeader, tenant)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						return // listener closed during shutdown
					}
					resp.Body.Close()
				}
			}(tenant)
		}
	}

	// Wait until both lanes are saturated past the ramp, snapshot, then
	// measure a steady-state admission window.
	waitStats := func(what string, cond func(statsBody) bool) statsBody {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			s, err := getStats(base)
			if err == nil && cond(s) {
				return s
			}
			if time.Now().After(deadline) {
				close(stop)
				log.Fatalf("timed out waiting for %s (stats: %+v, err: %v)", what, s, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	admitted := func(s statsBody) int64 { return s.Tenants["gold"].Admitted + s.Tenants["bronze"].Admitted }
	t0 := waitStats("warmup", func(s statsBody) bool {
		return admitted(s) >= warmupAdmissions &&
			s.Tenants["gold"].Waiting > 0 && s.Tenants["bronze"].Waiting > 0
	})
	t1 := waitStats("measurement window", func(s statsBody) bool {
		return admitted(s)-admitted(t0) >= windowAdmissions
	})
	close(stop)
	wg.Wait()

	dGold := t1.Tenants["gold"].Admitted - t0.Tenants["gold"].Admitted
	dBronze := t1.Tenants["bronze"].Admitted - t0.Tenants["bronze"].Admitted
	share := float64(dGold) / float64(dGold+dBronze)
	fmt.Printf("steady-state window: gold %d admissions, bronze %d — gold share %.3f (want %.2f ± %.3f)\n",
		dGold, dBronze, share, goldShare, shareSlack)
	if math.Abs(share-goldShare) > shareSlack {
		log.Fatalf("FAIL: admission share %.3f outside %.2f ± %.3f", share, goldShare, shareSlack)
	}
	if dBronze == 0 {
		log.Fatal("FAIL: bronze tenant starved")
	}

	// ---- Phase 2: deadline-aware degradation through the v1 job API ----

	sub := client.SubmitRequest{
		Query:     cheapQuery,
		TimeoutMS: 800,
		Options: &client.SolveOptions{
			Seed:        7,
			ValidationM: 1000,
			InitialM:    10,
			IncrementM:  10,
			MaxM:        1 << 20,
			Epsilon:     1e-9, // unreachable gap: only the deadline can stop this
		},
	}
	body, _ := json.Marshal(sub)
	req, _ := http.NewRequest("POST", base+"/v1/queries", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.TenantHeader, "gold")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var job client.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("FAIL: submit: HTTP %d", resp.StatusCode)
	}
	for !job.State.Terminal() {
		resp, err := http.Get(base + "/v1/queries/" + job.ID + "?wait_ms=5000")
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	if job.State != client.JobSucceeded || job.Result == nil {
		log.Fatalf("FAIL: deadline-bound job did not degrade gracefully: state=%s error=%+v", job.State, job.Error)
	}
	res := job.Result
	if !res.Degraded || !res.Feasible || len(res.Package) == 0 {
		log.Fatalf("FAIL: want degraded feasible package, got degraded=%v feasible=%v |package|=%d",
			res.Degraded, res.Feasible, len(res.Package))
	}
	fmt.Printf("degraded response: feasible=%v objective=%.4f gap=%.4f |package|=%d solve=%dms\n",
		res.Feasible, res.Objective, res.Gap, len(res.Package), res.SolveMS)

	final, err := getStats(base)
	if err != nil {
		log.Fatal(err)
	}
	if final.Degraded < 1 {
		log.Fatalf("FAIL: /stats degraded = %d, want >= 1", final.Degraded)
	}
	fmt.Printf("\n/stats: degraded=%d gold=%+v bronze=%+v\n", final.Degraded, final.Tenants["gold"], final.Tenants["bronze"])
	fmt.Println("PASS: weighted shares within 10% and degraded responses served")

	srv.Close()
}
