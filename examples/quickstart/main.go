// The quickstart example walks through Figure 1 of the paper: a tiny
// Stock_Investments table with an uncertain Gain attribute, the sPaQL query
// from the introduction, and the resulting investment package.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spq"
)

func main() {
	// The Figure 1 table: six possible trades over three stocks, each with
	// a known current price and an uncertain future gain. Gains of trades
	// on the same stock are correlated: they read the same simulated price
	// path (a geometric Brownian motion per stock).
	stocks := []struct {
		name  string
		price float64
		vol   float64 // annualized volatility
	}{
		{"AAPL", 234, 0.30},
		{"MSFT", 140, 0.22},
		{"TSLA", 258, 0.55},
	}
	horizons := []int{1, 5} // sell in 1 day or in 1 week (5 trading days)

	n := len(stocks) * len(horizons)
	rel := spq.NewRelation("stock_investments", n)

	price := make([]float64, n)
	sellIn := make([]float64, n)
	group := make([]int, n)
	horizon := make([]int, n)
	for i := 0; i < n; i++ {
		s := i / len(horizons)
		h := horizons[i%len(horizons)]
		price[i] = stocks[s].price
		sellIn[i] = float64(h)
		group[i] = s
		horizon[i] = h
	}
	if err := rel.AddDet("price", price); err != nil {
		log.Fatal(err)
	}
	if err := rel.AddDet("sell_in", sellIn); err != nil {
		log.Fatal(err)
	}

	// The VG function: one GBM path per stock per scenario; each trade's
	// gain is the path value at its horizon minus the purchase price.
	const dt = 1.0 / 252
	vg := &spq.GroupedVG{
		AttrID: 1,
		Group:  group,
		Eval: func(st *spq.Stream, tuple int) float64 {
			s := group[tuple]
			g := spq.GBM{S0: stocks[s].price, Mu: 0.08, Sigma: stocks[s].vol, Dt: dt}
			path := make([]float64, 5)
			g.Path(st, path)
			return path[horizon[tuple]-1] - stocks[s].price
		},
	}
	if err := rel.AddStoch("gain", vg); err != nil {
		log.Fatal(err)
	}

	db := spq.NewDB()
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}

	// The paper's introductory query: invest at most $1000, keep the loss
	// under $10 with 95% probability, maximize the expected gain.
	const query = `
		SELECT PACKAGE(*) AS Portfolio FROM stock_investments
		SUCH THAT
			SUM(price) <= 1000 AND
			SUM(gain) >= -10 WITH PROBABILITY >= 0.95
		MAXIMIZE EXPECTED SUM(gain)`

	fmt.Println("query:")
	fmt.Println(query)

	plan, err := db.Explain(query, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Print(plan)

	res, err := db.Query(query, &spq.Options{
		Seed:        7,
		ValidationM: 20000, // out-of-sample validation scenarios
		InitialM:    50,
		MaxM:        400,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresult:", res)
	fmt.Printf("loss < $10 with probability %.1f%% (target 95%%)\n",
		100*(0.95+res.Surpluses[0]))
	fmt.Println("\nportfolio:")
	names := []string{"AAPL", "MSFT", "TSLA"}
	for id, count := range res.Multiplicities() {
		fmt.Printf("  buy %d share(s) of %s, sell in %g day(s) — price $%.0f each\n",
			count, names[group[id]], sellIn[id], price[id])
	}
}
