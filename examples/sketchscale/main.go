// The sketchscale example demonstrates the SketchRefine-style
// divide-and-conquer layer (the paper's §8 scale-up direction): on a larger
// relation, direct SummarySearch solves DILPs over all N tuples, while the
// sketch layer first solves over ⌈N/τ⌉ group representatives and then
// refines over only the selected groups' tuples.
//
// Run with:
//
//	go run ./examples/sketchscale
package main

import (
	"fmt"
	"log"
	"time"

	"spq"
)

func main() {
	const n = 2000
	rel := spq.NewRelation("assets", n)
	price := make([]float64, n)
	sector := make([]float64, n)
	gains := make([]spq.Dist, n)
	for i := 0; i < n; i++ {
		tier := i % 8
		price[i] = 15 + 12*float64(tier)
		sector[i] = float64(i % 5)
		gains[i] = spq.Normal{Mu: 0.1 + 0.25*float64(tier), Sigma: 0.8 + 0.1*float64(tier)}
	}
	if err := rel.AddDet("price", price); err != nil {
		log.Fatal(err)
	}
	if err := rel.AddDet("sector", sector); err != nil {
		log.Fatal(err)
	}
	if err := rel.AddStoch("gain", &spq.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		log.Fatal(err)
	}
	db := spq.NewDB()
	db.MeansM = 500
	if err := db.Register(rel); err != nil {
		log.Fatal(err)
	}

	const query = `SELECT PACKAGE(*) FROM assets SUCH THAT
		SUM(price) <= 600 AND
		SUM(gain) >= -5 WITH PROBABILITY >= 0.85
		MAXIMIZE EXPECTED SUM(gain)`
	opts := &spq.Options{Seed: 3, ValidationM: 3000, InitialM: 15, MaxM: 60, FixedZ: 1}

	fmt.Printf("relation: %d tuples\n\n", n)

	start := time.Now()
	direct, err := db.Query(query, opts)
	if err != nil {
		log.Fatal(err)
	}
	directTime := time.Since(start)
	fmt.Printf("direct SummarySearch:  %s in %v\n", direct, directTime.Round(time.Millisecond))

	start = time.Now()
	sketched, stats, err := db.QuerySketch(query, opts, &spq.SketchOptions{GroupSize: 64, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	sketchTime := time.Since(start)
	fmt.Printf("sketch-refine:         %s in %v\n", sketched, sketchTime.Round(time.Millisecond))

	// Partition-parallel sketch: the medoid solve is split into 4 shard
	// solves that run concurrently (bit-identical for any worker count).
	start = time.Now()
	sharded, sstats, err := db.QuerySketch(query, opts, &spq.SketchOptions{GroupSize: 64, Seed: 3, Shards: 4, Workers: -1})
	if err != nil {
		log.Fatal(err)
	}
	shardedTime := time.Since(start)
	fmt.Printf("sketch-refine (4 shards): %s in %v (%d shard solves)\n",
		sharded, shardedTime.Round(time.Millisecond), sstats.ShardSolves)
	fmt.Printf("\nsketch stats: %d groups, sketch over %d representatives, refine over %d candidates (%.1f%% of N)\n",
		stats.Groups, stats.SketchTuples, stats.Candidates, 100*float64(stats.Candidates)/n)
	fmt.Printf("sketch phase %v, refine phase %v\n",
		stats.SketchTime.Round(time.Millisecond), stats.RefineTime.Round(time.Millisecond))
	if direct.Feasible && sketched.Feasible && direct.Objective > 0 {
		fmt.Printf("objective retention: %.1f%% of the direct solve\n",
			100*sketched.Objective/direct.Objective)
	}
}
