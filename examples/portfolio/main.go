// The portfolio example reproduces the paper's financial workload (§6.1) at
// interactive scale: a synthetic stock universe with GBM price forecasts,
// evaluated across a risk sweep — increasing Value-at-Risk probability p and
// tightening loss thresholds v — comparing SummarySearch with the Naïve SAA
// baseline on each setting.
//
// Run with:
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"time"

	"spq"
	"spq/internal/workload"
)

func main() {
	inst := workload.Portfolio(workload.Config{N: 120, Seed: 2024})
	db := spq.NewDB()
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}
	rel := inst.Table("trades_2day_all")
	fmt.Printf("universe: %d trade tuples over %d stocks (2-day horizon)\n\n", rel.N(), 120)

	sweep := []struct {
		p float64
		v float64
	}{
		{0.80, -25},
		{0.90, -10},
		{0.95, -10},
		{0.95, -1},
	}
	fmt.Printf("%-18s %-14s %10s %10s %12s %8s\n", "risk setting", "method", "feasible", "E[gain]", "Pr(ok)", "time")
	for _, s := range sweep {
		query := fmt.Sprintf(`SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT
			SUM(price) <= 1000 AND
			SUM(gain) >= %g WITH PROBABILITY >= %g
			MAXIMIZE EXPECTED SUM(gain)`, s.v, s.p)
		for _, method := range []string{"SummarySearch", "Naive"} {
			opts := &spq.Options{
				Seed:        9,
				ValidationM: 4000,
				InitialM:    20,
				MaxM:        60,
				FixedZ:      1,
				TimeLimit:   20 * time.Second,
			}
			var res *spq.Result
			var err error
			start := time.Now()
			if method == "Naive" {
				res, err = db.QueryNaive(query, opts)
			} else {
				res, err = db.Query(query, opts)
			}
			elapsed := time.Since(start)
			if err != nil {
				log.Fatalf("%s: %v", method, err)
			}
			feas := "no"
			if res.Feasible {
				feas = "yes"
			}
			prOK := "-"
			if len(res.Surpluses) > 0 {
				prOK = fmt.Sprintf("%.1f%%", 100*(s.p+res.Surpluses[0]))
			}
			fmt.Printf("p=%.2f v=%-8g %-14s %10s %10.3f %12s %8s\n",
				s.p, s.v, method, feas, res.Objective,
				prOK, elapsed.Round(time.Millisecond))
		}
	}

	fmt.Println("\nhigher p / tighter v = harder risk constraints;")
	fmt.Println("SummarySearch stays feasible where the SAA baseline starts missing the target.")
}
