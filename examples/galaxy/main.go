// The galaxy example runs the paper's noisy-sensor workload (§6.1): pick 5
// to 10 sky regions minimizing expected total radiation flux while keeping
// the realized total above/below a threshold with high probability. It
// demonstrates the two objective-constraint interactions of Definition 2 —
// counteracted (Pr(SUM ≥ v), pushing against the minimization) and supported
// (Pr(SUM ≤ v), pushing with it) — and how the ε′ approximation bound
// behaves on each.
//
// Run with:
//
//	go run ./examples/galaxy
package main

import (
	"fmt"
	"log"
	"math"

	"spq"
	"spq/internal/workload"
)

func main() {
	inst := workload.Galaxy(workload.Config{N: 250, Seed: 11})
	db := spq.NewDB()
	for _, rel := range inst.Tables {
		if err := db.Register(rel); err != nil {
			log.Fatal(err)
		}
	}

	for _, qid := range []string{"Q1", "Q3", "Q5"} {
		q, ok := inst.QueryByID(qid)
		if !ok {
			log.Fatalf("no query %s", qid)
		}
		fmt.Printf("%s — %s\n", q.ID, q.Description)
		res, err := db.Query(q.SPaQL, &spq.Options{
			Seed:        3,
			ValidationM: 4000,
			InitialM:    15,
			MaxM:        90,
			FixedZ:      q.FixedZ,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", res)
		if math.IsInf(res.EpsUpper, 1) {
			fmt.Println("  approximation bound: none available (loose value range)")
		} else {
			fmt.Printf("  approximation bound: objective within (1+%.3f)x of optimal\n", res.EpsUpper)
		}
		fmt.Printf("  constraint satisfied with probability %.1f%% (target 90%%)\n\n",
			100*(0.9+res.Surpluses[0]))
	}
}
