// Command spqd is the long-running sPaQL query daemon: it loads one or more
// of the built-in paper workloads (or a CSV table) into an in-memory
// database and serves the concurrent execution engine's HTTP/JSON API —
// the legacy synchronous POST /query plus the versioned async API under
// /v1/queries (see DESIGN.md "API v1" and the spq/client Go client).
//
//	spqd -addr :8723 -workload portfolio,galaxy -n 300
//	curl -s localhost:8723/healthz
//	curl -s localhost:8723/stats
//	curl -s -X POST localhost:8723/v1/queries -d '{
//	  "query": "SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT SUM(price) <= 1000 AND SUM(gain) >= -10 WITH PROBABILITY >= 0.9 MAXIMIZE EXPECTED SUM(gain)",
//	  "options": {"validation_m": 2000, "max_m": 60, "fixed_z": 1}
//	}'
//	curl -s 'localhost:8723/v1/queries/q-1?wait_ms=5000'
//
// Daemons compose into fleets: -workers turns this instance into a
// coordinator that dispatches sketch-shard sub-solves to worker daemons
// (method "remote", or -solver remote to route every sketch sub-problem
// there), and -peers write-through-replicates the result cache between
// load-balanced instances. Fleet members must load identical data
// (identical -workload/-n/-seed/-means), which makes every node's answers
// bit-identical by construction.
//
// OPERATIONS.md is the canonical reference for every flag, the /stats
// field glossary, fleet topologies, and tuning; this comment only sketches
// the surface.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux, served only on -pprof-addr
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"spq"
	"spq/internal/core"
	"spq/internal/engine"
	"spq/internal/obs"
	"spq/internal/relation"
	"spq/internal/remote"
	"spq/internal/resultcache"
	"spq/internal/workload"
)

// config collects every flag; OPERATIONS.md documents them.
type config struct {
	addr      string
	workloads string
	csvPath   string
	n         int
	seed      uint64
	meansM    int

	maxInFlight int
	maxQueue    int
	cacheSize   int
	resultCache int
	timeout     time.Duration
	parallelism int
	maxResident int
	cacheBlocks int
	maxJobs     int
	jobHistory  int

	workers        string
	solver         string
	remoteInflight int
	remoteFallback bool
	peers          string

	logFormat string
	slowQuery time.Duration
	pprofAddr string

	readOnly bool
	deltaLog int

	tenants string
	classes string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8723", "listen address")
	flag.StringVar(&cfg.workloads, "workload", "portfolio", "comma-separated built-in workloads to load: galaxy | portfolio | tpch")
	flag.StringVar(&cfg.csvPath, "csv", "", "CSV file to load as an additional (deterministic) table")
	flag.IntVar(&cfg.n, "n", 300, "workload size (tuples; stocks for portfolio)")
	flag.Uint64Var(&cfg.seed, "seed", 42, "workload data seed (fleet members must match)")
	flag.IntVar(&cfg.meansM, "means", 2000, "scenarios for attribute-mean precomputation")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "max concurrent solves (0 = one per CPU)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "max queries waiting for a solve slot (0 = 4x max-inflight)")
	flag.IntVar(&cfg.cacheSize, "cache", 128, "plan cache capacity in entries (negative disables)")
	flag.IntVar(&cfg.resultCache, "result-cache", 256, "result cache capacity in entries (negative disables)")
	flag.DurationVar(&cfg.timeout, "timeout", 60*time.Second, "default per-query timeout")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "per-query worker count (0 = one per CPU)")
	flag.IntVar(&cfg.maxResident, "max-resident-scenarios", 0, "materialize scenario matrices while M stays at or under this budget (0 = always stream block-wise, negative = always materialize)")
	flag.IntVar(&cfg.cacheBlocks, "colcache-blocks", 0, "out-of-core column block-cache capacity in 2048-value blocks (0 = 256 blocks = 4 MiB)")
	flag.IntVar(&cfg.maxJobs, "max-jobs", 0, "max active async jobs (0 = max-inflight + max-queue)")
	flag.IntVar(&cfg.jobHistory, "job-history", 0, "finished jobs kept pollable (0 = 64, negative disables)")
	flag.StringVar(&cfg.workers, "workers", "", "comma-separated worker spqd base URLs; enables the \"remote\" solver (coordinator mode)")
	flag.StringVar(&cfg.solver, "solver", "", "solver for sketch sub-problems: empty = local summarysearch, \"remote\" = dispatch shards to -workers")
	flag.IntVar(&cfg.remoteInflight, "remote-inflight", 0, "max concurrent remote sub-solve dispatches (0 = 4 per worker)")
	flag.BoolVar(&cfg.remoteFallback, "remote-fallback", true, "re-solve locally when a worker fails (false surfaces the worker error)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated peer spqd base URLs to replicate the result cache with")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log format for structured events: \"text\" or \"json\" (one object per line)")
	flag.DurationVar(&cfg.slowQuery, "slow-query", 0, "log queries slower than this threshold with their full span tree (0 disables)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty disables; bind it privately)")
	flag.BoolVar(&cfg.readOnly, "read-only", false, "reject table mutations (POST /v1/tables/{name}/deltas answers 405); run workers read-only so mutations funnel through the coordinator")
	flag.IntVar(&cfg.deltaLog, "delta-log", 0, "change sets retained per relation for delta-scoped cache invalidation (0 = 64; older versions rebuild wholesale)")
	flag.StringVar(&cfg.tenants, "tenants", "", "weighted-fair admission lanes: \"name:weight[:max_inflight[:max_queue]],...\" inline, or @file.json with a JSON array of tenant objects (empty = single default lane)")
	flag.StringVar(&cfg.classes, "classes", "", "query-class budgets: \"name:time_limit_ms[:solver_nodes],...\" — a binding class budget degrades to the best-so-far package instead of failing")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "spqd:", err)
		os.Exit(1)
	}
}

// loadTenants parses the -tenants flag: "@path" loads a JSON array of
// engine.TenantConfig objects; anything else parses as the inline
// name:weight[:max_inflight[:max_queue]] list.
func loadTenants(s string) ([]engine.TenantConfig, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if !strings.HasPrefix(s, "@") {
		return engine.ParseTenants(s)
	}
	data, err := os.ReadFile(strings.TrimPrefix(s, "@"))
	if err != nil {
		return nil, err
	}
	var out []engine.TenantConfig
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", strings.TrimPrefix(s, "@"), err)
	}
	seen := make(map[string]bool)
	for _, t := range out {
		if t.Name == "" {
			return nil, fmt.Errorf("%s: tenant with empty name", strings.TrimPrefix(s, "@"))
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("%s: duplicate tenant %q", strings.TrimPrefix(s, "@"), t.Name)
		}
		seen[t.Name] = true
		if t.Weight < 1 {
			return nil, fmt.Errorf("%s: tenant %q: weight must be >= 1", strings.TrimPrefix(s, "@"), t.Name)
		}
		if t.MaxInFlight < 0 || t.MaxQueue < 0 {
			return nil, fmt.Errorf("%s: tenant %q: caps must be >= 0", strings.TrimPrefix(s, "@"), t.Name)
		}
	}
	return out, nil
}

// splitURLs parses a comma-separated URL list flag.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// selfWorker best-effort-detects a worker URL that plainly points back at
// this daemon (a loopback/unspecified host with our own listen port).
// Dispatching sub-solves to yourself deadlocks admission — parent queries
// hold solve slots while their shard jobs wait for the same slots — so the
// obvious misconfiguration is refused at startup. Cross-host cycles cannot
// be detected here; OPERATIONS.md documents that topologies must stay one
// level deep.
func selfWorker(workerURL, listenAddr string) bool {
	u, err := url.Parse(workerURL)
	if err != nil {
		return false
	}
	_, ownPort, err := net.SplitHostPort(listenAddr)
	if err != nil {
		return false
	}
	wport := u.Port()
	if wport == "" {
		if u.Scheme == "https" {
			wport = "443"
		} else {
			wport = "80"
		}
	}
	if wport != ownPort {
		return false
	}
	whost := u.Hostname()
	ownHost, _, _ := net.SplitHostPort(listenAddr)
	if whost == "localhost" || whost == "" || whost == ownHost {
		return true
	}
	ip := net.ParseIP(whost)
	return ip != nil && (ip.IsLoopback() || ip.IsUnspecified())
}

func run(cfg config) error {
	db := spq.NewDB()
	db.MeansM = cfg.meansM

	var tables []string
	for _, wname := range strings.Split(cfg.workloads, ",") {
		wname = strings.TrimSpace(wname)
		if wname == "" {
			continue
		}
		wcfg := workload.Config{N: cfg.n, Seed: cfg.seed, MeansM: cfg.meansM}
		var inst *workload.Instance
		switch wname {
		case "galaxy":
			inst = workload.Galaxy(wcfg)
		case "portfolio":
			inst = workload.Portfolio(wcfg)
		case "tpch":
			inst = workload.TPCH(wcfg)
		default:
			return fmt.Errorf("unknown workload %q (want galaxy, portfolio, or tpch)", wname)
		}
		for name, rel := range inst.Tables {
			if err := db.Register(rel); err != nil {
				return err
			}
			tables = append(tables, fmt.Sprintf("%s (%d tuples, %s)", name, rel.N(), wname))
		}
	}
	if cfg.csvPath != "" {
		f, err := os.Open(cfg.csvPath)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(cfg.csvPath), filepath.Ext(cfg.csvPath))
		rel, err := spq.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
		tables = append(tables, fmt.Sprintf("%s (%d tuples, csv)", name, rel.N()))
	}
	if len(tables) == 0 {
		return errors.New("no tables loaded; pass -workload and/or -csv")
	}
	sort.Strings(tables)

	logger, err := obs.NewLogger(os.Stderr, cfg.logFormat)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}

	if cfg.cacheBlocks < 0 {
		return errors.New("-colcache-blocks must be >= 0")
	}
	if cfg.cacheBlocks > 0 {
		relation.ConfigureBlockCache(2048, cfg.cacheBlocks)
	}
	if cfg.deltaLog < 0 {
		return errors.New("-delta-log must be >= 0")
	}
	if cfg.deltaLog > 0 {
		relation.SetDeltaLogCap(cfg.deltaLog)
	}

	tenants, err := loadTenants(cfg.tenants)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	classes, err := engine.ParseClasses(cfg.classes)
	if err != nil {
		return fmt.Errorf("-classes: %w", err)
	}

	eopts := &engine.Options{
		MaxInFlight:          cfg.maxInFlight,
		MaxQueue:             cfg.maxQueue,
		PlanCacheSize:        cfg.cacheSize,
		ResultCacheSize:      cfg.resultCache,
		DefaultTimeout:       cfg.timeout,
		Parallelism:          cfg.parallelism,
		MaxJobs:              cfg.maxJobs,
		MaxResidentScenarios: cfg.maxResident,
		JobHistory:           cfg.jobHistory,
		ReadOnly:             cfg.readOnly,
		Logger:               logger,
		SlowQuery:            cfg.slowQuery,
		Tenants:              tenants,
		Classes:              classes,
	}
	if len(tenants) > 0 {
		parts := make([]string, len(tenants))
		for i, t := range tenants {
			parts[i] = fmt.Sprintf("%s:w%d", t.Name, t.Weight)
		}
		log.Printf("spqd: weighted-fair admission, %d tenant lanes: %s", len(tenants), strings.Join(parts, ", "))
	}

	// Coordinator mode: build the remote solver over the worker pool and
	// register it, so method "remote" resolves and -solver remote can route
	// sketch sub-problems through it.
	if workers := splitURLs(cfg.workers); len(workers) > 0 {
		for _, w := range workers {
			if selfWorker(w, cfg.addr) {
				return fmt.Errorf("-workers %s points at this daemon's own address %s (self-dispatch deadlocks admission; see OPERATIONS.md)", w, cfg.addr)
			}
		}
		rs, err := remote.New(remote.Options{
			Workers:     workers,
			MaxInFlight: cfg.remoteInflight,
			NoFallback:  !cfg.remoteFallback,
			Logf:        log.Printf,
		})
		if err != nil {
			return err
		}
		if err := core.RegisterSolver(rs); err != nil {
			return err
		}
		eopts.RemoteStats = rs.Stats
		log.Printf("spqd: coordinator mode, %d workers: %s", len(workers), strings.Join(workers, ", "))
	} else if cfg.solver == "remote" {
		return errors.New("-solver remote requires -workers")
	}
	if cfg.solver != "" {
		s, err := core.SolverByName(cfg.solver)
		if err != nil {
			return fmt.Errorf("-solver: %w", err)
		}
		eopts.SketchSolver = s
	}

	// Fleet mode: replicate the result cache with the listed peers. The
	// replicating store also mounts the /v1/cache peer endpoint, so list
	// peers symmetrically on every node.
	var repl *resultcache.Replicating
	if peers := splitURLs(cfg.peers); len(peers) > 0 && cfg.resultCache >= 0 {
		size := cfg.resultCache
		if size == 0 {
			size = 256
		}
		repl = resultcache.NewReplicating(resultcache.NewMemory(size), peers, nil)
		defer repl.Close()
		eopts.ResultCache = repl
		log.Printf("spqd: replicating result cache with %d peers: %s", len(peers), strings.Join(peers, ", "))
	}

	eng := spq.NewEngine(db, eopts)

	// pprof stays off the query listener: profiling endpoints reveal memory
	// contents and must never face query traffic. The blank net/http/pprof
	// import registered its handlers on the DefaultServeMux, which only this
	// (optional, separately bound) server exposes.
	if cfg.pprofAddr != "" {
		go func() {
			log.Printf("spqd: pprof listening on %s", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				log.Printf("spqd: pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: logRequests(eng.Handler(), logger),
		// Bound connection-level reads so trickling clients cannot pin
		// goroutines forever. WriteTimeout stays 0: responses legitimately
		// take up to the per-query -timeout, which the engine enforces.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		log.Printf("spqd: listening on %s", cfg.addr)
		for _, t := range tables {
			log.Printf("spqd: table %s", t)
		}
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("spqd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
}

// statusWriter records the status code and response bytes the handler
// actually wrote, so the access log can report them.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests is the access log: method, path, status, bytes, latency —
// one line per request, structured when -log-format json.
func logRequests(next http.Handler, logger *obs.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if logger != nil && logger.JSON() {
			logger.Event("http_request", map[string]any{
				"method":      r.Method,
				"path":        r.URL.Path,
				"status":      sw.status,
				"bytes":       sw.bytes,
				"duration_ms": time.Since(start).Milliseconds(),
			})
			return
		}
		log.Printf("spqd: %s %s %d %dB (%s)", r.Method, r.URL.Path, sw.status, sw.bytes, time.Since(start).Round(time.Millisecond))
	})
}
