// Command spqd is the long-running sPaQL query daemon: it loads one or more
// of the built-in paper workloads (or a CSV table) into an in-memory
// database and serves the concurrent execution engine's HTTP/JSON API.
//
//	spqd -addr :8723 -workload portfolio,galaxy -n 300
//	curl -s localhost:8723/healthz
//	curl -s localhost:8723/stats
//	curl -s -X POST localhost:8723/query -d '{
//	  "query": "SELECT PACKAGE(*) FROM trades_2day_all SUCH THAT SUM(price) <= 1000 AND SUM(gain) >= -10 WITH PROBABILITY >= 0.9 MAXIMIZE EXPECTED SUM(gain)",
//	  "validation_m": 2000, "max_m": 60, "fixed_z": 1
//	}'
//
// Queries run through two surfaces: the legacy synchronous POST /query,
// and the versioned async API — POST /v1/queries submits a job, GET
// /v1/queries/{id} polls it (with ?since/?wait_ms progress streaming),
// DELETE cancels, POST /v1/queries:batch submits many (see DESIGN.md "API
// v1" and the spq/client Go client):
//
//	curl -s -X POST localhost:8723/v1/queries -d '{
//	  "query": "...", "options": {"validation_m": 2000, "max_m": 60}
//	}'
//	curl -s 'localhost:8723/v1/queries/q-1?wait_ms=5000'
//
// Admission control (-max-inflight, -max-queue) bounds concurrent solves
// and -max-jobs the active async jobs; excess load is rejected with HTTP
// 429 (Retry-After set). Every query is bounded by -timeout unless its
// request carries a tighter timeout_ms; -job-history finished jobs stay
// pollable. Identical deterministic requests are answered from a result
// LRU (-result-cache) without solving; "method": "sketch" (with optional
// group_size/shards/max_candidates) selects the partition-parallel
// SketchRefine pipeline. GET /stats reports admission-queue depth, both
// caches, shard counters, and the job-manager counters in one payload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"spq"
	"spq/internal/engine"
	"spq/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8723", "listen address")
		workloads   = flag.String("workload", "portfolio", "comma-separated built-in workloads to load: galaxy | portfolio | tpch")
		csvPath     = flag.String("csv", "", "CSV file to load as an additional (deterministic) table")
		n           = flag.Int("n", 300, "workload size (tuples; stocks for portfolio)")
		seed        = flag.Uint64("seed", 42, "workload data seed")
		meansM      = flag.Int("means", 2000, "scenarios for attribute-mean precomputation")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrent solves (0 = one per CPU)")
		maxQueue    = flag.Int("max-queue", 0, "max queries waiting for a solve slot (0 = 4x max-inflight)")
		cacheSize   = flag.Int("cache", 128, "plan cache capacity in entries (negative disables)")
		resultCache = flag.Int("result-cache", 256, "result cache capacity in entries (negative disables)")
		timeout     = flag.Duration("timeout", 60*time.Second, "default per-query timeout")
		parallelism = flag.Int("parallelism", 0, "per-query worker count (0 = one per CPU)")
		maxJobs     = flag.Int("max-jobs", 0, "max active async jobs (0 = max-inflight + max-queue)")
		jobHistory  = flag.Int("job-history", 0, "finished jobs kept pollable (0 = 64, negative disables)")
	)
	flag.Parse()

	if err := run(*addr, *workloads, *csvPath, *n, *seed, *meansM,
		*maxInFlight, *maxQueue, *cacheSize, *resultCache, *timeout, *parallelism, *maxJobs, *jobHistory); err != nil {
		fmt.Fprintln(os.Stderr, "spqd:", err)
		os.Exit(1)
	}
}

func run(addr, workloads, csvPath string, n int, seed uint64, meansM,
	maxInFlight, maxQueue, cacheSize, resultCache int, timeout time.Duration, parallelism, maxJobs, jobHistory int) error {

	db := spq.NewDB()
	db.MeansM = meansM

	var tables []string
	for _, wname := range strings.Split(workloads, ",") {
		wname = strings.TrimSpace(wname)
		if wname == "" {
			continue
		}
		cfg := workload.Config{N: n, Seed: seed, MeansM: meansM}
		var inst *workload.Instance
		switch wname {
		case "galaxy":
			inst = workload.Galaxy(cfg)
		case "portfolio":
			inst = workload.Portfolio(cfg)
		case "tpch":
			inst = workload.TPCH(cfg)
		default:
			return fmt.Errorf("unknown workload %q (want galaxy, portfolio, or tpch)", wname)
		}
		for name, rel := range inst.Tables {
			if err := db.Register(rel); err != nil {
				return err
			}
			tables = append(tables, fmt.Sprintf("%s (%d tuples, %s)", name, rel.N(), wname))
		}
	}
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(csvPath), filepath.Ext(csvPath))
		rel, err := spq.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
		tables = append(tables, fmt.Sprintf("%s (%d tuples, csv)", name, rel.N()))
	}
	if len(tables) == 0 {
		return errors.New("no tables loaded; pass -workload and/or -csv")
	}
	sort.Strings(tables)

	eng := spq.NewEngine(db, &engine.Options{
		MaxInFlight:     maxInFlight,
		MaxQueue:        maxQueue,
		PlanCacheSize:   cacheSize,
		ResultCacheSize: resultCache,
		DefaultTimeout:  timeout,
		Parallelism:     parallelism,
		MaxJobs:         maxJobs,
		JobHistory:      jobHistory,
	})

	srv := &http.Server{
		Addr:    addr,
		Handler: logRequests(eng.Handler()),
		// Bound connection-level reads so trickling clients cannot pin
		// goroutines forever. WriteTimeout stays 0: responses legitimately
		// take up to the per-query -timeout, which the engine enforces.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		log.Printf("spqd: listening on %s", addr)
		for _, t := range tables {
			log.Printf("spqd: table %s", t)
		}
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("spqd: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("spqd: %s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
