// Command spqbench regenerates the paper's experiments (§6) at configurable
// scale:
//
//	spqbench -experiment fig4                    # end-to-end time to 100% feasibility (Figure 4)
//	spqbench -experiment fig5 -workload galaxy -query Q1   # scenario scaling (Figure 5)
//	spqbench -experiment fig6 -query Q1          # summary scaling on Portfolio (Figure 6)
//	spqbench -experiment fig7 -query Q1          # dataset-size scaling on Galaxy (Figure 7)
//	spqbench -experiment table3                  # the 24 workload queries (Table 3)
//	spqbench -experiment sizes                   # SAA vs CSA DILP sizes (§3.1 vs §4.1)
//	spqbench -phases -workload galaxy -query Q2  # per-phase latency breakdown from trace spans
//
// Absolute numbers differ from the paper (pure-Go solver, synthetic data,
// reduced scale — see EXPERIMENTS.md); the comparisons the paper draws
// (who reaches feasibility, how time scales with M/Z/N, who wins and by
// how much) are what this harness reproduces.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spq"
	"spq/internal/core"
	"spq/internal/engine"
	"spq/internal/experiments"
	"spq/internal/obs"
	"spq/internal/workload"
)

func main() {
	var (
		exp      = flag.String("experiment", "fig4", "fig4 | fig5 | fig6 | fig7 | table3 | sizes")
		wname    = flag.String("workload", "", "workload for fig5/sizes (default galaxy) and fig4 filter")
		query    = flag.String("query", "Q1", "query ID for fig5/fig6/fig7/sizes")
		n        = flag.Int("n", 300, "workload size")
		runs     = flag.Int("runs", 3, "i.i.d. runs per point")
		seed     = flag.Uint64("seed", 42, "base random seed")
		valM     = flag.Int("validation", 3000, "validation scenarios M̂")
		initialM = flag.Int("m", 10, "initial optimization scenarios")
		maxM     = flag.Int("maxm", 80, "maximum optimization scenarios")
		solverS  = flag.Duration("solver-time", 10*time.Second, "per-solve time limit")
		queryCap = flag.Duration("time-limit", 2*time.Minute, "per-evaluation time limit")
		phases   = flag.Bool("phases", false, "run -workload/-query once and print the per-phase latency breakdown from its trace spans")
		method   = flag.String("method", "summarysearch", "evaluation method for -phases: summarysearch | naive | sketch")
	)
	flag.Parse()

	cfg := experiments.Defaults()
	cfg.WorkloadN = *n
	cfg.Runs = *runs
	cfg.DataSeed = *seed
	cfg.ValidationM = *valM
	cfg.InitialM = *initialM
	cfg.IncrementM = *initialM
	cfg.MaxM = *maxM
	cfg.SolverTime = *solverS
	cfg.TimeLimit = *queryCap

	if *phases {
		if err := runPhases(cfg, *wname, *query, *method); err != nil {
			fmt.Fprintln(os.Stderr, "spqbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg, *exp, *wname, *query); err != nil {
		fmt.Fprintln(os.Stderr, "spqbench:", err)
		os.Exit(1)
	}
}

// runPhases evaluates one workload query through the engine and prints the
// per-phase latency table its trace spans add up to. Durations are
// inclusive (a parent covers its children), so the query row is the total
// and nested phases overlap rather than sum to it.
func runPhases(cfg experiments.Config, wname, query, method string) error {
	if wname == "" {
		wname = "galaxy"
	}
	wcfg := workload.Config{N: cfg.WorkloadN, Seed: cfg.DataSeed}
	var inst *workload.Instance
	switch wname {
	case "galaxy":
		inst = workload.Galaxy(wcfg)
	case "portfolio":
		inst = workload.Portfolio(wcfg)
	case "tpch":
		inst = workload.TPCH(wcfg)
	default:
		return fmt.Errorf("unknown workload %q", wname)
	}
	db := spq.NewDB()
	var names []string
	for name := range inst.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := db.Register(inst.Tables[name]); err != nil {
			return err
		}
	}
	q, ok := inst.QueryByID(strings.ToUpper(query))
	if !ok {
		return fmt.Errorf("workload %s has no query %s", wname, query)
	}

	eng := spq.NewEngine(db, &engine.Options{DefaultTimeout: cfg.TimeLimit})
	res, err := eng.Query(context.Background(), engine.Request{
		Query:  q.SPaQL,
		Method: method,
		Options: &core.Options{
			Seed:        cfg.DataSeed,
			ValidationM: cfg.ValidationM,
			InitialM:    cfg.InitialM,
			IncrementM:  cfg.IncrementM,
			MaxM:        cfg.MaxM,
			FixedZ:      q.FixedZ,
			SolverTime:  cfg.SolverTime,
		},
	})
	if err != nil {
		return err
	}
	if res.Trace == nil {
		return fmt.Errorf("engine returned no trace")
	}

	type row struct {
		phase string
		count int
		usec  int64
	}
	agg := map[string]*row{}
	var order []string
	res.Trace.Walk(func(d *obs.SpanData) {
		phase := obs.PhaseName(d.Name)
		r := agg[phase]
		if r == nil {
			r = &row{phase: phase}
			agg[phase] = r
			order = append(order, phase)
		}
		r.count++
		r.usec += d.DurationUS
	})

	fmt.Printf("phase breakdown: %s %s via %s (trace %s, objective %.6g, feasible %v)\n\n",
		wname, q.ID, method, res.Trace.TraceID, res.Objective, res.Feasible)
	fmt.Printf("%-16s %7s %12s %12s %8s\n", "phase", "count", "total(ms)", "mean(ms)", "%query")
	total := res.Trace.DurationUS
	sort.SliceStable(order, func(a, b int) bool { return agg[order[a]].usec > agg[order[b]].usec })
	for _, phase := range order {
		r := agg[phase]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.usec) / float64(total)
		}
		fmt.Printf("%-16s %7d %12.2f %12.2f %7.1f%%\n",
			r.phase, r.count, float64(r.usec)/1000, float64(r.usec)/1000/float64(r.count), pct)
	}
	return nil
}

func run(cfg experiments.Config, exp, wname, query string) error {
	switch exp {
	case "fig4":
		workloads := experiments.WorkloadNames()
		if wname != "" {
			workloads = strings.Split(wname, ",")
		}
		fmt.Printf("Figure 4: end-to-end feasibility (N=%d, runs=%d, M up to %d)\n\n",
			cfg.WorkloadN, cfg.Runs, cfg.MaxM)
		recs, err := experiments.RunEndToEnd(cfg, workloads, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 4: time to feasibility per query", experiments.Aggregate(recs)))
	case "fig5":
		if wname == "" {
			wname = "galaxy"
		}
		ms := []int{10, 20, 40, 80}
		fmt.Printf("Figure 5: scenario scaling on %s %s (N=%d)\n\n", wname, query, cfg.WorkloadN)
		recs, err := experiments.RunScenarioScaling(cfg, wname, query, ms)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 5: time/feasibility/1+eps vs M", experiments.Aggregate(recs)))
	case "fig6":
		m := cfg.MaxM
		zs := []int{1, 2, 4, m / 4, m / 2, m}
		fmt.Printf("Figure 6: summary scaling on portfolio %s (M=%d)\n\n", query, m)
		recs, err := experiments.RunSummaryScaling(cfg, "portfolio", query, m, dedupe(zs))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 6: time/feasibility/1+eps vs Z", experiments.Aggregate(recs)))
	case "fig7":
		ns := []int{cfg.WorkloadN, 2 * cfg.WorkloadN, 3 * cfg.WorkloadN, 5 * cfg.WorkloadN}
		fmt.Printf("Figure 7: dataset-size scaling on galaxy %s\n\n", query)
		recs, err := experiments.RunSizeScaling(cfg, "galaxy", query, ns)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 7: time/feasibility/1+eps vs N", experiments.Aggregate(recs)))
	case "table3":
		out, err := experiments.DescribeWorkloads(cfg, experiments.WorkloadNames())
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "sizes":
		if wname == "" {
			wname = "galaxy"
		}
		recs, err := experiments.RunSizes(cfg, wname, query,
			[]int{10, 50, 100, 500}, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSizes(recs))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if x > 0 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
