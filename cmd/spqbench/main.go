// Command spqbench regenerates the paper's experiments (§6) at configurable
// scale:
//
//	spqbench -experiment fig4                    # end-to-end time to 100% feasibility (Figure 4)
//	spqbench -experiment fig5 -workload galaxy -query Q1   # scenario scaling (Figure 5)
//	spqbench -experiment fig6 -query Q1          # summary scaling on Portfolio (Figure 6)
//	spqbench -experiment fig7 -query Q1          # dataset-size scaling on Galaxy (Figure 7)
//	spqbench -experiment table3                  # the 24 workload queries (Table 3)
//	spqbench -experiment sizes                   # SAA vs CSA DILP sizes (§3.1 vs §4.1)
//
// Absolute numbers differ from the paper (pure-Go solver, synthetic data,
// reduced scale — see EXPERIMENTS.md); the comparisons the paper draws
// (who reaches feasibility, how time scales with M/Z/N, who wins and by
// how much) are what this harness reproduces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spq/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("experiment", "fig4", "fig4 | fig5 | fig6 | fig7 | table3 | sizes")
		wname    = flag.String("workload", "", "workload for fig5/sizes (default galaxy) and fig4 filter")
		query    = flag.String("query", "Q1", "query ID for fig5/fig6/fig7/sizes")
		n        = flag.Int("n", 300, "workload size")
		runs     = flag.Int("runs", 3, "i.i.d. runs per point")
		seed     = flag.Uint64("seed", 42, "base random seed")
		valM     = flag.Int("validation", 3000, "validation scenarios M̂")
		initialM = flag.Int("m", 10, "initial optimization scenarios")
		maxM     = flag.Int("maxm", 80, "maximum optimization scenarios")
		solverS  = flag.Duration("solver-time", 10*time.Second, "per-solve time limit")
		queryCap = flag.Duration("time-limit", 2*time.Minute, "per-evaluation time limit")
	)
	flag.Parse()

	cfg := experiments.Defaults()
	cfg.WorkloadN = *n
	cfg.Runs = *runs
	cfg.DataSeed = *seed
	cfg.ValidationM = *valM
	cfg.InitialM = *initialM
	cfg.IncrementM = *initialM
	cfg.MaxM = *maxM
	cfg.SolverTime = *solverS
	cfg.TimeLimit = *queryCap

	if err := run(cfg, *exp, *wname, *query); err != nil {
		fmt.Fprintln(os.Stderr, "spqbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, exp, wname, query string) error {
	switch exp {
	case "fig4":
		workloads := experiments.WorkloadNames()
		if wname != "" {
			workloads = strings.Split(wname, ",")
		}
		fmt.Printf("Figure 4: end-to-end feasibility (N=%d, runs=%d, M up to %d)\n\n",
			cfg.WorkloadN, cfg.Runs, cfg.MaxM)
		recs, err := experiments.RunEndToEnd(cfg, workloads, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 4: time to feasibility per query", experiments.Aggregate(recs)))
	case "fig5":
		if wname == "" {
			wname = "galaxy"
		}
		ms := []int{10, 20, 40, 80}
		fmt.Printf("Figure 5: scenario scaling on %s %s (N=%d)\n\n", wname, query, cfg.WorkloadN)
		recs, err := experiments.RunScenarioScaling(cfg, wname, query, ms)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 5: time/feasibility/1+eps vs M", experiments.Aggregate(recs)))
	case "fig6":
		m := cfg.MaxM
		zs := []int{1, 2, 4, m / 4, m / 2, m}
		fmt.Printf("Figure 6: summary scaling on portfolio %s (M=%d)\n\n", query, m)
		recs, err := experiments.RunSummaryScaling(cfg, "portfolio", query, m, dedupe(zs))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 6: time/feasibility/1+eps vs Z", experiments.Aggregate(recs)))
	case "fig7":
		ns := []int{cfg.WorkloadN, 2 * cfg.WorkloadN, 3 * cfg.WorkloadN, 5 * cfg.WorkloadN}
		fmt.Printf("Figure 7: dataset-size scaling on galaxy %s\n\n", query)
		recs, err := experiments.RunSizeScaling(cfg, "galaxy", query, ns)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderPoints("Figure 7: time/feasibility/1+eps vs N", experiments.Aggregate(recs)))
	case "table3":
		out, err := experiments.DescribeWorkloads(cfg, experiments.WorkloadNames())
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "sizes":
		if wname == "" {
			wname = "galaxy"
		}
		recs, err := experiments.RunSizes(cfg, wname, query,
			[]int{10, 50, 100, 500}, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSizes(recs))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if x > 0 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
