// Command spq evaluates sPaQL stochastic package queries from the command
// line, against either a CSV file (deterministic columns) or one of the
// built-in paper workloads (galaxy, portfolio, tpch).
//
// Examples:
//
//	spq -workload portfolio -list
//	spq -workload portfolio -paper-query Q1 -n 200
//	spq -workload galaxy -paper-query Q3 -method naive
//	spq -csv trades.csv -query 'SELECT PACKAGE(*) FROM trades SUCH THAT SUM(price) <= 100 MAXIMIZE SUM(price)'
//	spq -workload tpch -paper-query Q1 -explain
//
// With -server the query is not evaluated in-process: it is submitted to a
// running spqd through the v1 async API (spq/client), streaming progress
// (with -trace) and printing the remote result. The spqd must have the
// query's table loaded (e.g. the same -workload). In server mode -method is
// passed through verbatim, so any solver the daemon registered — e.g.
// "remote" on a coordinator — is reachable too:
//
//	spqd -workload portfolio -n 200 &
//	spq -workload portfolio -paper-query Q1 -n 200 -server http://localhost:8723
//
// OPERATIONS.md holds the canonical flag reference for both spq and spqd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spq"
	"spq/client"
	"spq/internal/workload"
)

func main() {
	var (
		queryText  = flag.String("query", "", "sPaQL query text")
		queryFile  = flag.String("query-file", "", "file containing the sPaQL query")
		csvPath    = flag.String("csv", "", "CSV file to load as a (deterministic) table")
		wname      = flag.String("workload", "", "built-in workload: galaxy | portfolio | tpch")
		paperQuery = flag.String("paper-query", "", "run a Table 3 query of the workload (Q1..Q8)")
		list       = flag.Bool("list", false, "list the workload's queries and exit")
		n          = flag.Int("n", 300, "workload size (tuples; stocks for portfolio)")
		seed       = flag.Uint64("seed", 42, "random seed (data and optimization scenarios)")
		method     = flag.String("method", "summarysearch", "evaluation method: summarysearch | naive | sketch (with -server: any method the daemon serves)")
		valM       = flag.Int("validation", 5000, "out-of-sample validation scenarios (M̂)")
		initialM   = flag.Int("m", 20, "initial optimization scenarios (M)")
		maxM       = flag.Int("maxm", 200, "maximum optimization scenarios")
		fixedZ     = flag.Int("z", 0, "fixed number of summaries (0 = auto-escalate)")
		explain    = flag.Bool("explain", false, "print the query plan instead of solving")
		trace      = flag.Bool("trace", false, "print the optimize/validate iteration history")
		showRows   = flag.Int("rows", 10, "package rows to print")
		server     = flag.String("server", "", "submit to a remote spqd at this base URL (v1 async API) instead of solving in-process")
		traceTree  = flag.Bool("trace-tree", false, "print the server-side span tree after the job finishes (requires -server)")
	)
	flag.Parse()

	if err := run(*queryText, *queryFile, *csvPath, *wname, *paperQuery, *list, *n,
		*seed, *method, *valM, *initialM, *maxM, *fixedZ, *explain, *trace, *traceTree, *showRows, *server); err != nil {
		fmt.Fprintln(os.Stderr, "spq:", err)
		os.Exit(1)
	}
}

func run(queryText, queryFile, csvPath, wname, paperQuery string, list bool, n int,
	seed uint64, method string, valM, initialM, maxM, fixedZ int, explain, trace, traceTree bool, showRows int, server string) error {

	db := spq.NewDB()
	var inst *workload.Instance

	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		name := strings.TrimSuffix(filepath.Base(csvPath), filepath.Ext(csvPath))
		rel, err := spq.ReadCSV(name, f)
		if err != nil {
			return err
		}
		if err := db.Register(rel); err != nil {
			return err
		}
		fmt.Printf("loaded %s: %d tuples, columns %v\n", name, rel.N(), rel.DetNames())
	case wname != "":
		cfg := workload.Config{N: n, Seed: seed}
		switch wname {
		case "galaxy":
			inst = workload.Galaxy(cfg)
		case "portfolio":
			inst = workload.Portfolio(cfg)
		case "tpch":
			inst = workload.TPCH(cfg)
		default:
			return fmt.Errorf("unknown workload %q", wname)
		}
		var names []string
		for name := range inst.Tables {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := db.Register(inst.Tables[name]); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("provide -csv or -workload (see -help)")
	}

	if list {
		if inst == nil {
			return fmt.Errorf("-list requires -workload")
		}
		for _, q := range inst.Queries {
			fmt.Printf("%-4s [%s] %s\n     %s\n", q.ID, q.Table, q.Description, oneLine(q.SPaQL))
		}
		return nil
	}

	text := queryText
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		text = string(data)
	}
	if paperQuery != "" {
		if inst == nil {
			return fmt.Errorf("-paper-query requires -workload")
		}
		q, ok := inst.QueryByID(strings.ToUpper(paperQuery))
		if !ok {
			return fmt.Errorf("workload %s has no query %s", wname, paperQuery)
		}
		text = q.SPaQL
		if fixedZ == 0 {
			fixedZ = q.FixedZ
		}
		fmt.Printf("running %s %s: %s\n", wname, q.ID, q.Description)
	}
	if text == "" {
		return fmt.Errorf("no query: provide -query, -query-file or -paper-query")
	}

	if server != "" {
		if explain {
			return fmt.Errorf("-explain is local-only; drop -server")
		}
		return runRemote(server, text, method, seed, valM, initialM, maxM, fixedZ, trace, traceTree, showRows)
	}
	if traceTree {
		return fmt.Errorf("-trace-tree needs -server (the span tree is collected by the daemon)")
	}

	if explain {
		out, err := db.Explain(text, initialM)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	opts := &spq.Options{
		Seed:        seed,
		ValidationM: valM,
		InitialM:    initialM,
		IncrementM:  initialM,
		MaxM:        maxM,
		FixedZ:      fixedZ,
	}
	var res *spq.Result
	var err error
	switch method {
	case "naive":
		res, err = db.QueryNaive(text, opts)
	case "sketch":
		var stats *spq.SketchStats
		res, stats, err = db.QuerySketch(text, opts, nil)
		if err == nil {
			fmt.Printf("sketch: %d groups, %d candidates refined (fallback: %v)\n",
				stats.Groups, stats.Candidates, stats.FellBack)
		}
	case "summarysearch", "":
		res, err = db.Query(text, opts)
	default:
		return fmt.Errorf("unknown method %q (summarysearch | naive | sketch)", method)
	}
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Printf("time: %v, iterations: %d\n", res.TotalTime.Round(1e6), len(res.Iterations))
	for k, surplus := range res.Surpluses {
		fmt.Printf("constraint %d p-surplus: %+.4f\n", k+1, surplus)
	}
	if trace {
		fmt.Println()
		fmt.Print(res.RenderHistory())
	}
	printPackage(res, showRows)
	return nil
}

// runRemote submits the query to a running spqd through the v1 async API
// and renders the remote job: progress events stream as they happen (with
// -trace), then the final package.
func runRemote(server, text, method string, seed uint64, valM, initialM, maxM, fixedZ int, trace, traceTree bool, showRows int) error {
	c, err := client.New(server)
	if err != nil {
		return err
	}
	ctx := context.Background()
	job, err := c.Submit(ctx, client.SubmitRequest{
		Query:  text,
		Method: method,
		Options: &client.SolveOptions{
			Seed:        seed,
			ValidationM: valM,
			InitialM:    initialM,
			IncrementM:  initialM,
			MaxM:        maxM,
			FixedZ:      fixedZ,
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s to %s\n", job.ID, server)
	final, err := c.Stream(ctx, job.ID, func(p client.Progress) {
		if trace {
			phase := p.Phase
			if phase == "" {
				phase = "solve"
			}
			fmt.Printf("  %-14s iter %-3d M=%-5d Z=%-3d feasible=%-5v objective=%.6g best=%.6g (%dms)\n",
				phase, p.Iteration, p.M, p.Z, p.Feasible, p.Objective, p.BestObjective, p.ElapsedMS)
		}
	})
	if err != nil {
		return err
	}
	if err := final.Err(); err != nil {
		return err
	}
	r := final.Result
	status := "INFEASIBLE"
	if r.Feasible {
		status = "feasible"
	}
	fmt.Printf("package: %s, %d distinct tuples, size %.0f, objective %.6g (M=%d", status, len(r.Package), r.PackageSize, r.Objective, r.M)
	if r.Z > 0 {
		fmt.Printf(", Z=%d", r.Z)
	}
	fmt.Println(")")
	fmt.Printf("server: wait %dms, solve %dms, %d iterations", r.WaitMS, r.SolveMS, r.Iterations)
	if r.ResultCacheHit {
		fmt.Print(", result-cache hit")
	} else if r.PlanCacheHit {
		fmt.Print(", plan-cache hit")
	}
	fmt.Println()
	for k, surplus := range r.Surpluses {
		fmt.Printf("constraint %d p-surplus: %+.4f\n", k+1, surplus)
	}
	if traceTree {
		// The terminal job carries the tree, but fetch through the trace
		// endpoint: it works on running and historical jobs alike.
		tr := final.Trace
		if tr == nil {
			tr, err = c.Trace(ctx, job.ID)
			if err != nil {
				return fmt.Errorf("fetch trace: %w", err)
			}
		}
		fmt.Println()
		fmt.Printf("trace %s:\n", tr.TraceID)
		fmt.Print(tr.Render())
	}
	if len(r.Package) == 0 {
		fmt.Println("(empty package)")
		return nil
	}
	fmt.Printf("%-8s %-6s\n", "tuple", "count")
	for i, pt := range r.Package {
		if i >= showRows {
			fmt.Printf("... (%d more rows)\n", len(r.Package)-showRows)
			break
		}
		fmt.Printf("%-8d %-6d\n", pt.Tuple, pt.Count)
	}
	return nil
}

func printPackage(res *spq.Result, limit int) {
	mult := res.Multiplicities()
	if len(mult) == 0 {
		fmt.Println("(empty package)")
		return
	}
	var ids []int
	for id := range mult {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	cols := res.Rel.DetNames()
	fmt.Printf("%-8s %-6s", "tuple", "count")
	for _, c := range cols {
		fmt.Printf(" %12s", c)
	}
	fmt.Println()
	for i, id := range ids {
		if i >= limit {
			fmt.Printf("... (%d more rows)\n", len(ids)-limit)
			break
		}
		// The result relation may be a WHERE view; locate the view row.
		fmt.Printf("%-8d %-6d", id, mult[id])
		for _, c := range cols {
			col, err := res.Rel.Det(c)
			if err != nil {
				continue
			}
			fmt.Printf(" %12.4g", valueForBaseID(res, col, id))
		}
		fmt.Println()
	}
}

// valueForBaseID finds the view-row value whose base index is id.
func valueForBaseID(res *spq.Result, col []float64, id int) float64 {
	for i := range col {
		if res.Rel.OrigIndex(i) == id {
			return col[i]
		}
	}
	return 0
}

func oneLine(s string) string { return strings.Join(strings.Fields(s), " ") }
