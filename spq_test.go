package spq

import (
	"math"
	"strings"
	"testing"
)

// testDB builds a DB with a small trades table.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	db.MeansM = 200
	const n = 12
	rel := NewRelation("trades", n)
	price := make([]float64, n)
	gains := make([]Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(30 + 15*(i%5))
		gains[i] = Normal{Mu: 0.4 + 0.3*float64(i%4), Sigma: 1}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	return db
}

func fastOptions() *Options {
	return &Options{Seed: 1, ValidationM: 800, InitialM: 10, IncrementM: 10, MaxM: 40}
}

const testQuery = `SELECT PACKAGE(*) FROM trades SUCH THAT
	SUM(price) <= 200 AND
	SUM(gain) >= -4 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func TestDBQueryEndToEnd(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(testQuery, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("query infeasible: %+v", res.Solution)
	}
	mult := res.Multiplicities()
	if len(mult) == 0 {
		t.Fatal("empty package under a maximization objective")
	}
	price, _ := res.Rel.Det("price")
	total := 0.0
	for i, c := range mult {
		if c <= 0 {
			t.Fatalf("multiplicity %d for tuple %d", c, i)
		}
		total += price[i] * float64(c)
	}
	if total > 200+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
	if !strings.Contains(res.String(), "feasible") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestDBQueryNaive(t *testing.T) {
	db := testDB(t)
	res, err := db.QueryNaive(testQuery, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("Naive infeasible on easy query")
	}
	if res.Z != 0 {
		t.Fatalf("Naive reported Z=%d", res.Z)
	}
}

func TestQueryAgainstUnknownTable(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT PACKAGE(*) FROM nope SUCH THAT COUNT(*) = 1`, fastOptions()); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestQuerySyntaxError(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`SELECT STUFF`, fastOptions()); err == nil {
		t.Fatal("syntax error accepted")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	db := testDB(t)
	rel := NewRelation("TRADES", 1)
	if err := db.Register(rel); err == nil {
		t.Fatal("duplicate (case-insensitive) registration accepted")
	}
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	db := testDB(t)
	if _, ok := db.Table("TrAdEs"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestReadCSVIntoDB(t *testing.T) {
	db := NewDB()
	db.MeansM = 100
	rel, err := ReadCSV("prices", strings.NewReader("price,qty\n10,1\n20,2\n30,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT PACKAGE(*) FROM prices SUCH THAT
		COUNT(*) BETWEEN 1 AND 2 AND SUM(price) <= 30
		MAXIMIZE SUM(qty)`, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("deterministic CSV query infeasible")
	}
	// Best: tuples with prices 10+20 → qty 3, or price 30 → qty 3.
	if math.Abs(res.Objective-3) > 1e-9 {
		t.Fatalf("objective = %v, want 3", res.Objective)
	}
}

func TestWhereClauseResultMapping(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(`SELECT PACKAGE(*) FROM trades WHERE price >= 60 SUCH THAT
		COUNT(*) BETWEEN 1 AND 3 AND
		SUM(gain) >= -5 WITH PROBABILITY >= 0.5
		MAXIMIZE EXPECTED SUM(gain)`, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("filtered query infeasible")
	}
	base, _ := db.Table("trades")
	basePrice, _ := base.Det("price")
	for idx := range res.Multiplicities() {
		if basePrice[idx] < 60 {
			t.Fatalf("package contains tuple %d with price %v violating WHERE", idx, basePrice[idx])
		}
	}
}

func TestExplain(t *testing.T) {
	db := testDB(t)
	out, err := db.Explain(testQuery, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tuples after WHERE: 12", "probabilistic constraints: 1", "maximize", "SAA DILP size", "CSA DILP size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestParseQueryExported(t *testing.T) {
	q, err := ParseQuery(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "trades" {
		t.Fatalf("table = %q", q.Table)
	}
	if _, err := ParseQuery("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestQuerySketch(t *testing.T) {
	db := NewDB()
	db.MeansM = 200
	const n = 300
	rel := NewRelation("big", n)
	price := make([]float64, n)
	gains := make([]Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(25 + 10*(i%6))
		gains[i] = Normal{Mu: 0.3 + 0.2*float64(i%6), Sigma: 0.7}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	if err := db.Register(rel); err != nil {
		t.Fatal(err)
	}
	res, stats, err := db.QuerySketch(`SELECT PACKAGE(*) FROM big SUCH THAT
		SUM(price) <= 250 AND
		SUM(gain) >= -4 WITH PROBABILITY >= 0.8
		MAXIMIZE EXPECTED SUM(gain)`, fastOptions(), &SketchOptions{GroupSize: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("sketch query infeasible")
	}
	if stats.FellBack {
		t.Fatal("unexpected fallback")
	}
	if stats.Candidates >= n {
		t.Fatalf("no pruning: %d candidates", stats.Candidates)
	}
	total := 0.0
	for id, c := range res.Multiplicities() {
		total += price[id] * float64(c)
	}
	if total > 250+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
}

func TestInfeasibleDeterministicQuerySurfacesError(t *testing.T) {
	db := testDB(t)
	_, err := db.Query(`SELECT PACKAGE(*) FROM trades SUCH THAT
		COUNT(*) >= 3 AND COUNT(*) <= 1 AND
		SUM(gain) >= 0 WITH PROBABILITY >= 0.5`, fastOptions())
	if err == nil {
		t.Fatal("expected ErrInfeasible")
	}
}
