// Package spq is a stochastic package query engine for probabilistic
// databases — a from-scratch Go implementation of "Stochastic Package
// Queries in Probabilistic Databases" (Brucato, Yadav, Abouzied, Haas,
// Meliou; SIGMOD 2020).
//
// A package query selects a bag of tuples (with multiplicities) from a
// relation that jointly satisfies package-level constraints while optimizing
// an objective. This engine extends package queries to *probabilistic* data
// in the Monte Carlo model: uncertain attribute values are random variables
// realized by VG (variable generation) functions, and queries may contain
// expectation constraints, probabilistic ("chance") constraints, and
// expected-value or probability objectives, written in the sPaQL dialect:
//
//	SELECT PACKAGE(*) FROM Stock_Investments
//	SUCH THAT
//	    SUM(price) <= 1000 AND
//	    SUM(gain) >= -10 WITH PROBABILITY >= 0.95
//	MAXIMIZE EXPECTED SUM(gain)
//
// Two evaluation strategies are provided: Naive, the stochastic-programming
// baseline that approximates the stochastic ILP with a scenario-expanded
// deterministic ILP (sample average approximation), and SummarySearch — the
// paper's contribution — which replaces scenario sets with small
// conservative summaries and is typically orders of magnitude faster at
// reaching validation-feasible, near-optimal packages.
//
// Quick start:
//
//	db := spq.NewDB()
//	rel := spq.NewRelation("trades", n)
//	rel.AddDet("price", prices)
//	rel.AddStoch("gain", &spq.IndependentVG{AttrID: 1, Dists: gains})
//	db.Register(rel)
//	result, err := db.Query(querySQL, nil)
//
// For serving many queries — or one query on many cores — the concurrent
// execution engine wraps the same algorithms with a bounded-concurrency
// session layer, an LRU plan cache, per-query timeouts, and parallel
// scenario generation and validation (bit-identical to sequential for any
// worker count):
//
//	eng := spq.NewEngine(db, nil)
//	res, err := eng.Query(ctx, spq.EngineRequest{Query: querySQL})
//
// The same engine backs the cmd/spqd daemon. Besides the legacy
// synchronous POST /query, spqd serves the versioned async API — POST
// /v1/queries submits a job, GET polls it with streamed per-iteration
// progress (fed by the Options.Progress seam of the core algorithms),
// DELETE cancels — with typed options, a structured error envelope with
// stable codes, and GET /healthz + GET /stats. The spq/client package is
// the typed Go client for that surface (Submit, Wait, Stream, Cancel,
// automatic 429 retries); cmd/spq's -server flag rides on it.
//
// Daemons scale out: a coordinator registers a RemoteSolver over a pool of
// worker daemons (spqd -workers) to ship sketch-shard sub-solves across
// machines — bit-identical to solving locally — and load-balanced
// instances replicate their result caches (spqd -peers). See OPERATIONS.md
// for deployment and DESIGN.md "Multi-node scale-out" for the design.
//
// The heavy lifting lives in internal packages (solver, translation,
// algorithms, engine); this package re-exports the types a client needs.
package spq

import (
	"context"
	"fmt"
	"io"
	"strings"

	"spq/client"
	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/engine"
	"spq/internal/relation"
	"spq/internal/remote"
	"spq/internal/rng"
	"spq/internal/sketch"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Re-exported data-model types. A Relation is an in-memory Monte Carlo
// relation: deterministic columns plus stochastic attributes backed by VG
// functions.
type (
	// Relation is a Monte Carlo relation (see internal/relation).
	Relation = relation.Relation
	// VGFunc generates realizations of a stochastic attribute.
	VGFunc = relation.VGFunc
	// IndependentVG realizes each tuple independently from a distribution.
	IndependentVG = relation.IndependentVG
	// GroupedVG realizes correlated tuple groups from a shared experiment.
	GroupedVG = relation.GroupedVG

	// Dist is a samplable distribution for VG functions.
	Dist = dist.Dist
	// Stream is a deterministic random substream.
	Stream = rng.Stream
	// Source derives substreams for scenario coordinates.
	Source = rng.Source

	// Options tune query evaluation (scenario counts, limits, seeds).
	Options = core.Options
	// Solution is the raw algorithm output.
	Solution = core.Solution
	// Query is a parsed sPaQL statement.
	Query = spaql.Query
)

// Distribution constructors re-exported for building VG functions.
type (
	// Normal is the Gaussian distribution.
	Normal = dist.Normal
	// Uniform is the continuous uniform distribution.
	Uniform = dist.Uniform
	// Exponential is the (shifted) exponential distribution.
	Exponential = dist.Exponential
	// Pareto is the Pareto type-I distribution.
	Pareto = dist.Pareto
	// Poisson is the (shifted) Poisson distribution.
	Poisson = dist.Poisson
	// StudentT is Student's t distribution.
	StudentT = dist.StudentT
	// GBM is a geometric Brownian motion price process.
	GBM = dist.GBM
	// Degenerate is a point mass.
	Degenerate = dist.Degenerate
	// Mixture is a finite mixture distribution.
	Mixture = dist.Mixture
	// Shifted offsets another distribution by a constant.
	Shifted = dist.Shifted
)

// NewRelation creates an empty Monte Carlo relation with n tuples.
func NewRelation(name string, n int) *Relation { return relation.New(name, n) }

// ReadCSV loads a relation's deterministic columns from CSV (header row of
// column names, numeric values).
func ReadCSV(name string, r io.Reader) (*Relation, error) { return relation.ReadCSV(name, r) }

// BlockCache is a bounded LRU over fixed-size column blocks, shared by lazy
// columns whose files cannot be memory-mapped.
type BlockCache = relation.BlockCache

// NewBlockCache builds a private block cache holding up to maxBlocks blocks
// of blockVals float64s each, for callers who want per-relation isolation
// instead of the process-wide cache.
func NewBlockCache(blockVals, maxBlocks int) *BlockCache {
	return relation.NewBlockCache(blockVals, maxBlocks)
}

// SpillCSV streams a CSV into per-column files under dir and returns a
// relation whose deterministic columns load lazily from those files — the
// out-of-core path for catalogs too large to hold on the heap. Pass a nil
// cache to share the process-wide block cache (see ConfigureBlockCache).
func SpillCSV(name string, r io.Reader, dir string, cache *BlockCache) (*Relation, error) {
	return relation.SpillCSV(name, r, dir, cache)
}

// OpenColumnDir reopens a relation previously spilled with SpillCSV without
// re-reading the CSV.
func OpenColumnDir(dir string, cache *BlockCache) (*Relation, error) {
	return relation.OpenColumnDir(dir, cache)
}

// ConfigureBlockCache resizes the process-wide block cache that lazy columns
// read through when their files cannot be memory-mapped: capacity is
// maxBlocks blocks of blockVals float64s (the default is 256 × 2048 values =
// 4 MiB). It only affects relations opened afterwards.
func ConfigureBlockCache(blockVals, maxBlocks int) {
	relation.ConfigureBlockCache(blockVals, maxBlocks)
}

// Mutable-relation re-exports (see internal/relation/delta.go): a Delta is a
// batch mutation applied to a base relation with Relation.ApplyDelta; the
// returned ChangeSet records the version transition and footprint that the
// engine's delta-scoped invalidation keys off. Snapshots taken before a delta
// keep serving their frozen version; views that straddle a version boundary
// fail fast with ErrStaleView.
type (
	// Delta is a batch mutation: cell upserts, VG replacements, tuple
	// deletes, and tuple appends, applied atomically as one new version.
	Delta = relation.Delta
	// VGUpdate replaces a stochastic attribute's VG function in a Delta.
	VGUpdate = relation.VGUpdate
	// ChangeSet is the footprint of one or more applied deltas: the columns
	// and tuples touched, and whether membership changed.
	ChangeSet = relation.ChangeSet
	// StaleViewError reports a derived view used across a version boundary.
	StaleViewError = relation.StaleViewError
	// DeltaStatsSnapshot is a snapshot of the package-wide delta counters.
	DeltaStatsSnapshot = relation.DeltaStatsSnapshot
)

// ErrStaleView matches (with errors.Is) any StaleViewError.
var ErrStaleView = relation.ErrStaleView

// DeltaStats snapshots the process-wide delta and partition-maintenance
// counters (cells patched, shards rebuilt vs retained, stale-view errors).
func DeltaStats() DeltaStatsSnapshot { return relation.DeltaStats() }

// SetDeltaLogCap bounds how many change sets each relation retains for
// delta-scoped invalidation (default 64). Older versions fall back to
// wholesale invalidation.
func SetDeltaLogCap(n int) { relation.SetDeltaLogCap(n) }

// NewSource creates a root randomness source for scenario generation.
func NewSource(seed uint64) Source { return rng.NewSource(seed) }

// UniformMixture builds an equal-weight mixture (the data-integration model
// for D equally trusted sources).
func UniformMixture(components ...Dist) Mixture { return dist.UniformMixture(components...) }

// ParseQuery parses sPaQL text into a Query AST without executing it.
func ParseQuery(text string) (*Query, error) { return spaql.Parse(text) }

// ErrInfeasible reports a query whose deterministic constraints are already
// unsatisfiable.
var ErrInfeasible = core.ErrInfeasible

// Partition-aware pipeline re-exports (see internal/relation and
// internal/core): a Partitioning is a first-class, per-version-cached
// shard/group descriptor the sketch layer and the engine plan against; a
// Solver is the seam between problem producers and the algorithms.
type (
	// Partitioning is a cached tuple partitioning (shards → groups →
	// tuples) of one relation version.
	Partitioning = relation.Partitioning
	// PartitionSpec describes how to build a Partitioning.
	PartitionSpec = relation.PartitionSpec
	// PartitionStrategy selects k-means, hash, or range grouping.
	PartitionStrategy = relation.PartitionStrategy
	// Solver is the pluggable solve seam (SummarySearch, Naive, future
	// parallel branch-and-bound).
	Solver = core.Solver
)

// Partition strategies.
const (
	// PartitionKMeans clusters similar tuples (the SketchRefine default).
	PartitionKMeans = relation.PartitionKMeans
	// PartitionHash buckets tuples by a seeded hash of the index.
	PartitionHash = relation.PartitionHash
	// PartitionRange cuts the first feature's value order into runs.
	PartitionRange = relation.PartitionRange
)

// Solvers behind the core.Solver seam.
var (
	// SummarySearchSolver is the paper's algorithm (the default).
	SummarySearchSolver = core.SummarySearchSolver
	// NaiveSolver is the SAA baseline.
	NaiveSolver = core.NaiveSolver
)

// RegisterSolver makes a custom Solver resolvable by name in the engine's
// method dispatch (and anywhere else core.SolverByName is consulted). The
// builtin names are reserved; registering the same name again replaces the
// earlier solver.
func RegisterSolver(s Solver) error { return core.RegisterSolver(s) }

// Multi-node re-exports (see internal/remote): a RemoteSolver ships
// sub-problems to a pool of worker spqd daemons over the v1 API,
// bit-identical to solving locally. OPERATIONS.md documents deployment.
type (
	// RemoteSolverOptions configure NewRemoteSolver (worker URLs, fallback
	// policy, dispatch bounds).
	RemoteSolverOptions = remote.Options
	// RemoteSolver dispatches sub-problems to worker daemons; it implements
	// Solver and is usually registered via RegisterSolver.
	RemoteSolver = remote.Solver
)

// NewRemoteSolver builds a remote Solver over a pool of worker daemon base
// URLs. An empty pool is valid and solves everything locally.
func NewRemoteSolver(o RemoteSolverOptions) (*RemoteSolver, error) { return remote.New(o) }

// Concurrent execution engine re-exports (see internal/engine): a
// bounded-concurrency session layer with a plan cache and per-query
// timeouts, suitable for serving heavy query traffic.
type (
	// Engine is the concurrent query-execution engine.
	Engine = engine.Engine
	// EngineOptions tune concurrency, admission control, and the plan cache.
	EngineOptions = engine.Options
	// EngineRequest describes one engine query.
	EngineRequest = engine.Request
	// EngineResult is the outcome of an engine query.
	EngineResult = engine.Result
	// EngineStats is a snapshot of the engine's counters.
	EngineStats = engine.Stats
	// TenantConfig describes one tenant lane of the engine's weighted-fair
	// admission scheduler (EngineOptions.Tenants).
	TenantConfig = engine.TenantConfig
	// ClassBudget is a per-query-class evaluation budget
	// (EngineOptions.Classes); a binding budget degrades the answer to the
	// anytime best-so-far package instead of failing the query.
	ClassBudget = engine.ClassBudget
)

// Async job API re-exports (the v1 surface; see internal/engine/jobs.go
// and the spq/client package).
type (
	// Progress is one per-iteration report of a running evaluation,
	// delivered through Options.Progress (and streamed by the v1 API).
	Progress = core.Progress
	// Job is an asynchronous engine query: Engine.Submit returns one;
	// poll it with Snapshot/Poll, abort it with Engine.CancelJob.
	Job = engine.Job
	// JobState is a Job's lifecycle state (queued → running → terminal).
	JobState = client.JobState
)

// ErrOverloaded reports an engine query rejected by admission control.
var ErrOverloaded = engine.ErrOverloaded

// ErrTenantQuota reports an engine query rejected by its own tenant's queue
// quota while the engine as a whole still had room.
var ErrTenantQuota = engine.ErrTenantQuota

// ErrDegraded reports an engine-applied budget that bound before any
// feasible package existed; when an incumbent does exist the engine returns
// it with EngineResult.Degraded set instead of this error.
var ErrDegraded = engine.ErrDegraded

// NewEngine creates a concurrent execution engine over the database's
// registered relations. Opts may be nil for defaults (one solve slot and one
// validation worker per CPU, 128-entry plan cache, 60s query timeout).
func NewEngine(db *DB, opts *EngineOptions) *Engine { return engine.New(db, opts) }

// DB is a registry of Monte Carlo relations that evaluates sPaQL queries
// against them. It plays the role of the DBMS layer in the paper's
// architecture (storage, mean precomputation, query entry point).
type DB struct {
	tables map[string]*Relation
	// MeansM is the scenario count used to estimate attribute means that
	// have no closed form, at Register time (default 2000).
	MeansM int
	// MeansSeed seeds the mean-estimation stream.
	MeansSeed uint64
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Relation{}, MeansM: 2000, MeansSeed: 0xea7}
}

// Register adds a relation under its own name and precomputes means for its
// stochastic attributes (the paper's §3.2 precomputation phase).
func (db *DB) Register(rel *Relation) error {
	name := strings.ToLower(rel.Name())
	if _, dup := db.tables[name]; dup {
		return fmt.Errorf("spq: table %q already registered", rel.Name())
	}
	rel.ComputeMeans(rng.NewSource(db.MeansSeed).Derive(uint64(len(db.tables))), db.MeansM)
	db.tables[name] = rel
	return nil
}

// Table returns a registered relation (case-insensitive).
func (db *DB) Table(name string) (*Relation, bool) {
	rel, ok := db.tables[strings.ToLower(name)]
	return rel, ok
}

// Result is the outcome of a query evaluation, tying the algorithm solution
// back to the relation so packages can be rendered.
type Result struct {
	*Solution
	// Query is the parsed statement.
	Query *Query
	// Rel is the relation the multiplicities index (after WHERE filtering).
	Rel *Relation
}

// Multiplicities returns the package as a map from base-relation tuple index
// to copy count.
func (r *Result) Multiplicities() map[int]int {
	out := map[int]int{}
	for i, x := range r.X {
		if x > 0 {
			out[r.Rel.OrigIndex(i)] += int(x + 0.5)
		}
	}
	return out
}

// String renders a summary of the result.
func (r *Result) String() string {
	var sb strings.Builder
	status := "INFEASIBLE"
	if r.Feasible {
		status = "feasible"
	}
	fmt.Fprintf(&sb, "package: %s, %d distinct tuples, size %.0f, objective %.6g (M=%d",
		status, len(r.Multiplicities()), r.PackageSize(), r.Objective, r.M)
	if r.Z > 0 {
		fmt.Fprintf(&sb, ", Z=%d", r.Z)
	}
	sb.WriteString(")")
	return sb.String()
}

// prepare parses, validates, and lowers a query against the registry.
func (db *DB) prepare(text string) (*Query, *translate.SILP, error) {
	q, err := spaql.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	rel, ok := db.Table(q.Table)
	if !ok {
		return nil, nil, fmt.Errorf("spq: unknown table %q", q.Table)
	}
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, nil, err
	}
	return q, silp, nil
}

// Query evaluates an sPaQL query with SummarySearch (the paper's algorithm
// and this engine's default).
func (db *DB) Query(text string, opts *Options) (*Result, error) {
	q, silp, err := db.prepare(text)
	if err != nil {
		return nil, err
	}
	sol, err := core.SummarySearch(silp, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Solution: sol, Query: q, Rel: silp.Rel}, nil
}

// SketchOptions tune the sketch-refine scale-up layer.
type SketchOptions = sketch.Options

// SketchStats report what the sketch layer did (groups, candidates, times).
type SketchStats = sketch.Stats

// QuerySketch evaluates an sPaQL query with the SketchRefine-style
// divide-and-conquer pipeline: cluster tuples into groups (cached on the
// relation per version), solve the query over group representatives (the
// sketch — split across SketchOptions.Shards independent solves, run
// concurrently by SketchOptions.Workers, bit-identical for any worker
// count), then re-solve over the tuples of the selected groups (the
// refine). Intended for relations too large for direct evaluation; see
// internal/sketch.
//
// Partitionings are cached on the (WHERE-filtered) relation per version.
// Queries with no WHERE clause therefore never re-cluster across calls; a
// WHERE-bearing query builds a fresh filtered view — and with it a fresh
// clustering — each call, because DB keeps no plan cache by design. For
// repeated WHERE-bearing sketch queries use the engine (method "sketch"),
// whose plan cache keeps the view, and hence the partitioning, alive.
func (db *DB) QuerySketch(text string, opts *Options, sopts *SketchOptions) (*Result, *SketchStats, error) {
	q, silp, err := db.prepare(text)
	if err != nil {
		return nil, nil, err
	}
	sol, stats, err := sketch.SolveSILP(context.Background(), silp, opts, sopts)
	if err != nil {
		return nil, nil, err
	}
	return &Result{Solution: sol, Query: q, Rel: silp.Rel}, stats, nil
}

// QueryNaive evaluates an sPaQL query with the Naïve SAA baseline
// (Algorithm 1), provided for comparison and experiments.
func (db *DB) QueryNaive(text string, opts *Options) (*Result, error) {
	q, silp, err := db.prepare(text)
	if err != nil {
		return nil, err
	}
	sol, err := core.Naive(silp, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Solution: sol, Query: q, Rel: silp.Rel}, nil
}

// Explain returns the canonicalized SILP description of a query without
// solving it: constraint counts, derived bounds, and the DILP size the SAA
// formulation would have at the given scenario count.
func (db *DB) Explain(text string, m int) (string, error) {
	q, silp, err := db.prepare(text)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "query: %s\n", q.String())
	fmt.Fprintf(&sb, "tuples after WHERE: %d\n", silp.N)
	fmt.Fprintf(&sb, "deterministic/expectation constraints: %d\n", len(silp.DetCons))
	fmt.Fprintf(&sb, "probabilistic constraints: %d\n", len(silp.ProbCons))
	for _, pc := range silp.ProbCons {
		op := "<="
		if pc.Geq {
			op = ">="
		}
		fmt.Fprintf(&sb, "  %s: Pr(SUM(%s) %s %g) >= %g  [summary direction: %s]\n",
			pc.Name, pc.Expr.String(), op, pc.V, pc.P, pc.Direction())
	}
	switch silp.ObjKind {
	case translate.ObjLinear:
		sense := "minimize"
		if silp.Maximize {
			sense = "maximize"
		}
		fmt.Fprintf(&sb, "objective: %s expected linear sum\n", sense)
	case translate.ObjProbability:
		op := "<="
		if silp.ObjGeq {
			op = ">="
		}
		fmt.Fprintf(&sb, "objective: maximize Pr(SUM(%s) %s %g)\n", silp.ObjExpr.String(), op, silp.ObjV)
	default:
		sb.WriteString("objective: none (feasibility)\n")
	}
	if m > 0 && len(silp.ProbCons) > 0 {
		// Θ(NMK) coefficient estimate for the SAA DILP.
		k := len(silp.ProbCons)
		fmt.Fprintf(&sb, "SAA DILP size at M=%d: ~%d coefficients (Θ(NMK))\n", m, silp.N*m*k)
		fmt.Fprintf(&sb, "CSA DILP size at Z=1: ~%d coefficients (Θ(NZK))\n", silp.N*k)
	}
	return sb.String(), nil
}
