package sketch

import (
	"testing"

	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// sketchRelation builds a relation with two value tiers so the sketch can
// prune confidently: cheap low-gain tuples and pricey high-gain tuples.
func sketchRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.New("r", n)
	price := make([]float64, n)
	dists := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		tier := i % 4
		price[i] = 20 + 10*float64(tier)
		dists[i] = dist.Normal{Mu: 0.2 + 0.5*float64(tier), Sigma: 0.6}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: dists}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(9), 300)
	return rel
}

func coreOpts() *core.Options {
	return &core.Options{Seed: 1, ValidationM: 800, InitialM: 10, IncrementM: 10, MaxM: 40, FixedZ: 1}
}

const sketchQuery = `SELECT PACKAGE(*) FROM r SUCH THAT
	SUM(price) <= 200 AND
	SUM(gain) >= -4 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func TestSketchSolveFeasibleAndValid(t *testing.T) {
	rel := sketchRelation(t, 240)
	q := spaql.MustParse(sketchQuery)
	sol, stats, err := Solve(q, rel, coreOpts(), &Options{GroupSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("sketch-refine infeasible: %+v", sol.Surpluses)
	}
	if stats.FellBack {
		t.Fatal("should not have fallen back on an easy instance")
	}
	if stats.Groups < 240/16 {
		t.Fatalf("groups = %d, want ≥ %d", stats.Groups, 240/16)
	}
	if stats.Candidates >= 240 {
		t.Fatalf("refine candidates %d show no pruning", stats.Candidates)
	}
	// Budget holds on the returned package.
	price, _ := rel.Det("price")
	total := 0.0
	for i, x := range sol.X {
		total += price[i] * x
	}
	if total > 200+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
}

func TestSketchSmallInstanceFallsBack(t *testing.T) {
	rel := sketchRelation(t, 30)
	q := spaql.MustParse(sketchQuery)
	sol, stats, err := Solve(q, rel, coreOpts(), &Options{GroupSize: 16, MaxCandidates: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FellBack {
		t.Fatal("small instance should solve directly")
	}
	if !sol.Feasible {
		t.Fatal("direct solve infeasible")
	}
}

func TestSketchQualityCloseToDirect(t *testing.T) {
	rel := sketchRelation(t, 160)
	q := spaql.MustParse(sketchQuery)
	skSol, _, err := Solve(q, rel, coreOpts(), &Options{GroupSize: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Direct SummarySearch for comparison.
	silp, err := buildDirect(q, rel)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.SummarySearch(silp, coreOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !skSol.Feasible || !direct.Feasible {
		t.Fatalf("feasibility: sketch=%v direct=%v", skSol.Feasible, direct.Feasible)
	}
	// Pruning may cost some objective but not be absurd (maximization).
	if skSol.Objective < direct.Objective*0.3 {
		t.Fatalf("sketch objective %v collapsed vs direct %v", skSol.Objective, direct.Objective)
	}
}

func TestSketchInfeasibleQueryReported(t *testing.T) {
	rel := sketchRelation(t, 160)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM r SUCH THAT
		SUM(price) <= 100 AND
		SUM(gain) >= 500 WITH PROBABILITY >= 0.9
		MAXIMIZE EXPECTED SUM(gain)`)
	opts := coreOpts()
	opts.MaxM = 20
	sol, stats, err := Solve(q, rel, opts, &Options{GroupSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		t.Fatal("impossible query reported feasible")
	}
	if !stats.FellBack {
		t.Fatal("infeasible sketch should trigger full-problem fallback")
	}
}

func TestSketchWithWhereClause(t *testing.T) {
	rel := sketchRelation(t, 200)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM r WHERE price <= 35 SUCH THAT
		SUM(price) <= 150 AND
		SUM(gain) >= -4 WITH PROBABILITY >= 0.7
		MAXIMIZE EXPECTED SUM(gain)`)
	sol, _, err := Solve(q, rel, coreOpts(), &Options{GroupSize: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("filtered sketch query infeasible")
	}
	// X indexes the WHERE view (price ≤ 40: tiers 0 and 1 → n/2 tuples).
	if len(sol.X) != 100 {
		t.Fatalf("solution over %d tuples, want 100 (WHERE view)", len(sol.X))
	}
}

// buildDirect lowers the query for a direct (non-sketch) solve.
func buildDirect(q *spaql.Query, rel *relation.Relation) (*translate.SILP, error) {
	return translate.Build(q, rel, nil)
}
