package sketch

import (
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
)

// benchRelation builds a continuous-valued relation at benchmark scale with
// means precomputed once (partitioning is cached per relation version, so
// each iteration re-solves but never re-clusters — the serving-path
// behaviour). Values are continuous rather than tiered: discrete tiers make
// k-means groups value-pure, which hands the branch-and-bound solver
// degenerate symmetric knapsacks and benchmarks the MILP's symmetry
// handling instead of the pipeline.
func benchRelation(n int) *relation.Relation {
	rel := relation.New("r", n)
	price := make([]float64, n)
	dists := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		price[i] = 20 + 30*f
		dists[i] = dist.Normal{Mu: 0.2 + 1.5*f, Sigma: 0.6}
	}
	_ = rel.AddDet("price", price)
	_ = rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: dists})
	rel.ComputeMeans(rng.NewSource(9), 200)
	return rel
}

func benchCoreOpts() *core.Options {
	return &core.Options{
		Seed: 1, ValidationM: 1000, InitialM: 10, IncrementM: 10, MaxM: 30,
		FixedZ: 1, SolverTime: 10 * time.Second,
	}
}

// BenchmarkSketchSharded compares the classic single-solve sketch against
// the partition-parallel pipeline at N = 5000 tuples (τ = 64 → 79 medoids
// per full sketch). "sharded8seq" isolates the effect of splitting the
// medoid solve into 8 smaller solves; "sharded8par" adds the worker-pool
// fan-out (expect parity on a 1-core CI container, speedup with cores).
func BenchmarkSketchSharded(b *testing.B) {
	const n = 5000
	rel := benchRelation(n)
	q := spaql.MustParse(sketchQuery)

	cases := []struct {
		name string
		opts Options
	}{
		{"single", Options{GroupSize: 64, Seed: 2, MaxCandidates: 128}},
		{"sharded8seq", Options{GroupSize: 64, Seed: 2, MaxCandidates: 128, Shards: 8, Workers: 1}},
		{"sharded8par", Options{GroupSize: 64, Seed: 2, MaxCandidates: 128, Shards: 8, Workers: -1}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			var candidates int
			for i := 0; i < b.N; i++ {
				sol, stats, err := Solve(q, rel, benchCoreOpts(), &bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if !sol.Feasible {
					b.Fatal("bench query infeasible")
				}
				candidates = stats.Candidates
			}
			b.ReportMetric(float64(candidates), "candidates")
		})
	}
}
