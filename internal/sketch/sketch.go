// Package sketch implements a SketchRefine-style divide-and-conquer layer
// over the core solvers, the scale-up direction the paper names for very
// large datasets (§6.2.4, §8; SketchRefine is from Brucato et al., VLDB
// 2018).
//
// The relation is partitioned into groups of similar tuples (by default
// seeded k-means on the query-relevant attributes, using attribute means for
// stochastic columns; see relation.PartitionSpec for the hash and range
// alternatives). The SKETCH phase solves the stochastic package query over
// one medoid tuple per group — a problem with ⌈N/τ⌉ variables instead of
// N — producing a per-group allotment. The REFINE phase re-solves the query
// over only the tuples of the groups the sketch selected, a candidate set
// that is typically a small fraction of N.
//
// The sketch phase is a partition-aware pipeline rather than one big medoid
// solve: the partitioning's groups are split into Options.Shards contiguous
// shards, each shard's medoid problem is solved independently (concurrently
// on internal/par when Options.Workers allows), and the per-shard candidate
// sets are merged under MaxCandidates before the single global refine.
// Shard solves are deterministic — shard composition depends only on the
// partitioning, each shard's scenario RNG is derived from
// rng.Source.Split keyed by the shard id, and the merge consumes shards in
// order — so any worker count returns bit-identical packages, and a 1-shard
// run is exactly the classic single-solve sketch. Partitionings are built
// once and cached on the relation per version (relation.Partition), so
// repeated queries and cached engine plans never re-cluster.
//
// This is a pruning variant of SketchRefine: refine re-optimizes the whole
// package over the union of sketched groups in one solve (rather than
// greedily per group), which keeps the stochastic constraints exact at the
// cost of a slightly larger refine problem. DESIGN.md records the
// deviation.
//
// Every sub-problem — shard sketches, the refine, fallbacks — is solved
// through Options.Solver (core.Solver), so the pipeline scales past one
// machine without modification: with the remote solver (internal/remote)
// plugged in, each shard ships to a worker daemon as a v1 job and the
// merged result stays bit-identical to local solving. The engine wires
// this via engine.Options.SketchSolver (spqd -solver remote).
package sketch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"spq/internal/core"
	"spq/internal/obs"
	"spq/internal/par"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Options tune the sketch layer.
type Options struct {
	// GroupSize is the partitioning threshold τ: groups hold at most ~τ
	// tuples (default 64).
	GroupSize int
	// KMeansIters bounds Lloyd iterations (default 12).
	KMeansIters int
	// Seed drives k-means initialization.
	Seed uint64
	// MaxCandidates caps the refine problem size; when the sketch selects
	// more, the groups with the largest allotments win (default 4·τ).
	MaxCandidates int
	// Strategy selects how tuples are grouped (default k-means).
	Strategy relation.PartitionStrategy
	// Shards splits the sketch phase into this many independent medoid
	// solves over contiguous runs of groups (default 1 = the classic single
	// sketch solve). The result is identical for any worker count; shard
	// count changes which candidates the sketch proposes, not the refine
	// semantics.
	Shards int
	// Workers bounds the goroutines running shard solves: 0 or 1 run
	// sequentially, negative uses one worker per available CPU. Results are
	// bit-identical for every value.
	Workers int
	// Solver evaluates the sketch, refine, and fallback sub-problems
	// (default core.SummarySearchSolver).
	Solver core.Solver
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	// Non-positive values (the HTTP layer forwards client numbers
	// unchecked) take the defaults.
	if out.GroupSize <= 0 {
		out.GroupSize = 64
	}
	if out.KMeansIters <= 0 {
		out.KMeansIters = 12
	}
	if out.MaxCandidates <= 0 {
		out.MaxCandidates = 4 * out.GroupSize
	}
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.Solver == nil {
		out.Solver = core.SummarySearchSolver
	}
	return out
}

// Key renders every result-relevant sketch option canonically, after
// defaulting, for the engine's result cache. Workers is excluded (any
// worker count is bit-identical); the solver is included because it
// changes the answer — by its cache-key name (core.SolverCacheKey), so a
// dispatching solver that is bit-identical to a local one (remote) shares
// entries with it across a replicated fleet. Nil receivers key like the
// zero Options.
func (o *Options) Key() string {
	so := o.withDefaults()
	return fmt.Sprintf("tau=%d,iters=%d,seed=%d,cand=%d,strat=%s,shards=%d,solver=%s",
		so.GroupSize, so.KMeansIters, so.Seed, so.MaxCandidates, so.Strategy,
		so.Shards, core.SolverCacheKey(so.Solver))
}

// Stats reports what the sketch pipeline did.
type Stats struct {
	Groups       int
	SketchTuples int
	Candidates   int
	// Shards is the number of shard solves the sketch phase was split into;
	// ShardSolves counts those that ran (== Shards unless the pipeline fell
	// back before sketching), ShardFailures those that found no feasible
	// shard-local sketch (they contribute no candidates).
	Shards        int
	ShardSolves   int
	ShardFailures int
	SketchTime    time.Duration
	RefineTime    time.Duration
	// SketchObj is the best shard sketch objective in the query's sense
	// (largest for MAXIMIZE, smallest for MINIMIZE); with a single shard it
	// is exactly the sketch solve's objective.
	SketchObj float64
	FellBack  bool // sketch failed; solved on the full relation
}

// withPhase returns a copy of opts whose progress reports carry the given
// pipeline phase label, so consumers can tell shard sketches, the refine,
// and fallbacks apart; nil opts or no callback pass through unchanged.
func withPhase(opts *core.Options, phase string) *core.Options {
	if opts == nil || opts.Progress == nil {
		return opts
	}
	out := *opts
	orig := opts.Progress
	out.Progress = func(p core.Progress) {
		p.Phase = phase
		orig(p)
	}
	return &out
}

// featureAttrs picks the clustering features for a query: every
// deterministic column and every stochastic attribute's mean column that
// the query references, in constraint order (objective last), deduplicated.
func featureAttrs(silp *translate.SILP) ([]string, error) {
	seen := map[string]bool{}
	var attrs []string
	collect := func(e spaql.LinExpr) {
		for _, attr := range e.Attrs() {
			if !seen[attr] {
				seen[attr] = true
				attrs = append(attrs, attr)
			}
		}
	}
	for _, c := range silp.Query.Constraints {
		collect(c.Expr)
	}
	if silp.Query.Objective != nil {
		collect(silp.Query.Objective.Expr)
	}
	if len(attrs) == 0 {
		return nil, errors.New("sketch: query references no attributes to cluster on")
	}
	return attrs, nil
}

// allot is one sketched group with its medoid multiplicity.
type allot struct {
	group int
	count float64
}

// shardResult is the outcome of one shard's sketch solve.
type shardResult struct {
	chosen []allot
	obj    float64
	failed bool // no feasible shard-local sketch
}

// Solve evaluates a stochastic package query with the sketch-refine layer.
// The returned solution's X indexes the (WHERE-filtered) relation exactly
// like core.SummarySearch's.
func Solve(q *spaql.Query, rel *relation.Relation, copts *core.Options, sopts *Options) (*core.Solution, *Stats, error) {
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, nil, err
	}
	return SolveSILP(context.Background(), silp, copts, sopts)
}

// SolveSILP runs the partition-aware sketch pipeline on an already-lowered
// problem (the engine calls it with a cached plan's SILP, skipping
// re-translation). Cancellation of ctx aborts the pipeline promptly.
func SolveSILP(ctx context.Context, silp *translate.SILP, copts *core.Options, sopts *Options) (*core.Solution, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	so := sopts.withDefaults()
	view := silp.Rel // WHERE applied
	n := view.N()
	stats := &Stats{}

	if n <= so.MaxCandidates {
		// Small enough to solve directly.
		fctx, fsp := obs.StartSpan(ctx, "fallback")
		sol, err := so.Solver.Solve(fctx, silp, withPhase(copts, "fallback"))
		fsp.End()
		stats.FellBack = true
		stats.Candidates = n
		return sol, stats, err
	}

	attrs, err := featureAttrs(silp)
	if err != nil {
		return nil, nil, err
	}
	partSpan := obs.SpanFromContext(ctx).StartChild("partition")
	part, err := view.Partition(relation.PartitionSpec{
		Strategy:    so.Strategy,
		Features:    attrs,
		GroupSize:   so.GroupSize,
		KMeansIters: so.KMeansIters,
		Seed:        so.Seed,
		Shards:      so.Shards,
	})
	partSpan.End()
	if err != nil {
		return nil, nil, err
	}
	stats.Groups = part.NumGroups()
	stats.SketchTuples = len(part.Medoids)
	stats.Shards = part.NumShards()
	partSpan.SetInt("groups", int64(stats.Groups))

	// Strip the WHERE clause for sub-problems: it is already applied in view,
	// and medoid/candidate views derive from view.
	qNoWhere := *silp.Query
	qNoWhere.Where = nil

	// SKETCH: one independent medoid solve per shard, fanned out on the
	// worker pool. Each shard's scenario RNG comes from Split keyed by the
	// shard id; a single shard keeps the caller's seed untouched, so the
	// 1-shard pipeline is exactly the classic single-solve sketch.
	var baseOpts core.Options
	if copts != nil {
		baseOpts = *copts
	}
	// Divide the CPU budget between the two parallelism levels: when the
	// fan-out itself runs shards concurrently, each shard solve gets a
	// proportionally smaller internal worker pool (scenario generation,
	// validation) instead of multiplying into Workers×Parallelism
	// goroutines. Bit-identical either way, so this only shifts load.
	if workers := par.Workers(so.Workers, stats.Shards); workers > 1 {
		total := baseOpts.Parallelism
		if total < 0 {
			total = runtime.GOMAXPROCS(0)
		}
		if total < 1 {
			total = 1
		}
		if per := total / workers; per > 1 {
			baseOpts.Parallelism = per
		} else {
			baseOpts.Parallelism = 1
		}
	}
	shardSeeds := []uint64{baseOpts.Seed}
	if stats.Shards > 1 {
		srcs := rng.NewSource(baseOpts.Seed).Split(stats.Shards)
		shardSeeds = make([]uint64, stats.Shards)
		for s, src := range srcs {
			shardSeeds[s] = src.Base()
		}
	}

	results := make([]shardResult, stats.Shards)
	sketchStart := time.Now()
	err = par.Ranges(ctx, stats.Shards, so.Workers, func(_, lo, hi int) error {
		for s := lo; s < hi; s++ {
			res, err := solveShard(ctx, view, &qNoWhere, part, s, shardSeeds[s], &baseOpts, so.Solver)
			if err != nil {
				return fmt.Errorf("sketch: sketch phase (shard %d): %w", s, err)
			}
			results[s] = res
		}
		return nil
	})
	stats.SketchTime = time.Since(sketchStart)
	stats.ShardSolves = stats.Shards
	if err != nil {
		return nil, nil, err
	}

	// Merge per-shard candidate sets in shard order (deterministic for any
	// worker count).
	var chosen []allot
	better := math.Max
	stats.SketchObj = math.Inf(-1)
	if !silp.Maximize {
		better = math.Min
		stats.SketchObj = math.Inf(1)
	}
	for _, res := range results {
		if res.failed {
			stats.ShardFailures++
			continue
		}
		chosen = append(chosen, res.chosen...)
		stats.SketchObj = better(stats.SketchObj, res.obj)
	}
	if len(chosen) == 0 {
		// Every shard's sketch failed (or selected nothing): fall back to
		// the full problem.
		stats.FellBack = true
		stats.SketchObj = 0
		refineStart := time.Now()
		fctx, fsp := obs.StartSpan(ctx, "fallback")
		sol, err := so.Solver.Solve(fctx, silp, withPhase(copts, "fallback"))
		fsp.End()
		stats.RefineTime = time.Since(refineStart)
		stats.Candidates = n
		return sol, stats, err
	}

	// Order by allotment descending (simple insertion; few groups).
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j].count > chosen[j-1].count; j-- {
			chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
		}
	}
	inCandidate := make([]bool, n)
	count := 0
	for _, a := range chosen {
		members := part.Groups[a.group]
		if count+len(members) > so.MaxCandidates && count > 0 {
			continue
		}
		for _, t := range members {
			if !inCandidate[t] {
				inCandidate[t] = true
				count++
			}
		}
	}
	stats.Candidates = count

	// REFINE: one global solve over the tuples of the selected groups.
	candRel := view.Select(func(t int) bool { return inCandidate[t] })
	refineStart := time.Now()
	rctx, rsp := obs.StartSpan(ctx, "refine")
	rsp.SetInt("candidates", int64(count))
	refineSILP, err := translate.Build(&qNoWhere, candRel, nil)
	if err != nil {
		rsp.End()
		return nil, nil, err
	}
	refined, err := so.Solver.Solve(rctx, refineSILP, withPhase(copts, "refine"))
	rsp.End()
	stats.RefineTime = time.Since(refineStart)
	if err != nil {
		return nil, nil, err
	}

	// Map the refined solution back to view indexing.
	out := *refined
	out.X = make([]float64, n)
	candRow := 0
	for t := 0; t < n; t++ {
		if inCandidate[t] {
			if refined.X != nil {
				out.X[t] = refined.X[candRow]
			}
			candRow++
		}
	}
	if refined.X == nil {
		out.X = nil
	}
	return &out, stats, nil
}

// solveShard runs the sketch solve for one shard: the query over the
// medoids of the shard's groups, each medoid's multiplicity bound inflated
// to stand for its whole group. A shard whose sketch is infeasible (or
// selects nothing) reports failure and contributes no candidates; any other
// solver error aborts the pipeline.
func solveShard(ctx context.Context, view *relation.Relation, qNoWhere *spaql.Query,
	part *relation.Partitioning, shard int, seed uint64, baseOpts *core.Options, solver core.Solver) (shardResult, error) {

	n := view.N()
	isMedoid := make([]bool, n)
	for _, g := range part.ShardGroups[shard] {
		isMedoid[part.Medoids[g]] = true
	}
	// Medoid rows appear in tuple order, matching the Select view's rows.
	groupOfMedoidRow := make([]int, 0, len(part.ShardGroups[shard]))
	for i := 0; i < n; i++ {
		if isMedoid[i] {
			groupOfMedoidRow = append(groupOfMedoidRow, part.GroupOf[i])
		}
	}
	sketchRel := view.Select(func(t int) bool { return isMedoid[t] })
	sketchSILP, err := translate.Build(qNoWhere, sketchRel, nil)
	if err != nil {
		return shardResult{}, err
	}
	// A medoid stands for its whole group: allow multiplicity up to the
	// group's aggregate capacity.
	for row, g := range groupOfMedoidRow {
		size := float64(len(part.Groups[g]))
		sketchSILP.VarHi[row] = math.Min(sketchSILP.VarHi[row]*size, sketchSILP.VarHi[row]+size*4)
	}
	opts := *baseOpts
	opts.Seed = seed
	sctx, ssp := obs.StartSpan(ctx, fmt.Sprintf("sketch/shard%d", shard))
	sol, err := solver.Solve(sctx, sketchSILP, withPhase(&opts, fmt.Sprintf("sketch/shard%d", shard)))
	if err != nil || !sol.Feasible {
		ssp.SetAttr("outcome", "failed")
		ssp.End()
		if err != nil && !errors.Is(err, core.ErrInfeasible) {
			return shardResult{}, err
		}
		return shardResult{failed: true}, nil
	}
	ssp.End()
	res := shardResult{obj: sol.Objective}
	for row, x := range sol.X {
		if x > 0 {
			res.chosen = append(res.chosen, allot{group: groupOfMedoidRow[row], count: x})
		}
	}
	if len(res.chosen) == 0 {
		res.failed = true
	}
	return res, nil
}
