// Package sketch implements a SketchRefine-style divide-and-conquer layer
// over SummarySearch, the scale-up direction the paper names for very large
// datasets (§6.2.4, §8; SketchRefine is from Brucato et al., VLDB 2018).
//
// The relation is partitioned offline into groups of similar tuples
// (k-means on the query-relevant attributes, using attribute means for
// stochastic columns). The SKETCH phase solves the stochastic package query
// over one medoid tuple per group — a problem with ⌈N/τ⌉ variables instead
// of N — producing a per-group allotment. The REFINE phase re-solves the
// query over only the tuples of the groups the sketch selected, a candidate
// set that is typically a small fraction of N.
//
// This is a pruning variant of SketchRefine: refine re-optimizes the whole
// package over the union of sketched groups in one solve (rather than
// greedily per group), which keeps the stochastic constraints exact at the
// cost of a slightly larger refine problem. DESIGN.md records the
// deviation.
package sketch

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spq/internal/core"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Options tune the sketch layer.
type Options struct {
	// GroupSize is the partitioning threshold τ: groups hold at most ~τ
	// tuples (default 64).
	GroupSize int
	// KMeansIters bounds Lloyd iterations (default 12).
	KMeansIters int
	// Seed drives k-means initialization.
	Seed uint64
	// MaxCandidates caps the refine problem size; when the sketch selects
	// more, the groups with the largest allotments win (default 4·τ).
	MaxCandidates int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.GroupSize == 0 {
		out.GroupSize = 64
	}
	if out.KMeansIters == 0 {
		out.KMeansIters = 12
	}
	if out.MaxCandidates == 0 {
		out.MaxCandidates = 4 * out.GroupSize
	}
	return out
}

// Stats reports what the sketch layer did.
type Stats struct {
	Groups       int
	SketchTuples int
	Candidates   int
	SketchTime   time.Duration
	RefineTime   time.Duration
	SketchObj    float64
	FellBack     bool // sketch failed; solved on the full relation
}

// Partitioning holds a tuple clustering.
type Partitioning struct {
	// Group maps each tuple to its group id.
	Group []int
	// Members lists tuple indices per group.
	Members [][]int
	// Medoids holds the representative tuple per group.
	Medoids []int
}

// Partition clusters the relation's tuples on the given feature columns
// using seeded k-means with k = ⌈N/τ⌉, and picks the tuple nearest each
// centroid as the group representative.
func Partition(features [][]float64, n, tau int, iters int, seed uint64) *Partitioning {
	if n == 0 {
		return &Partitioning{}
	}
	k := (n + tau - 1) / tau
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dims := len(features)
	// Normalize features to [0, 1] so distances are scale-free.
	norm := make([][]float64, dims)
	for d, col := range features {
		lo, hi := col[0], col[0]
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		span := hi - lo
		if span < 1e-12 {
			span = 1
		}
		nc := make([]float64, n)
		for i, v := range col {
			nc[i] = (v - lo) / span
		}
		norm[d] = nc
	}
	dist2 := func(i int, centroid []float64) float64 {
		s := 0.0
		for d := 0; d < dims; d++ {
			diff := norm[d][i] - centroid[d]
			s += diff * diff
		}
		return s
	}
	// Seeded distinct random initialization.
	st := rng.NewStream(rng.Mix(seed, 0x5ce7c4))
	centroids := make([][]float64, k)
	used := map[int]bool{}
	for c := 0; c < k; c++ {
		var pick int
		for {
			pick = st.IntN(n)
			if !used[pick] {
				used[pick] = true
				break
			}
		}
		centroids[c] = make([]float64, dims)
		for d := 0; d < dims; d++ {
			centroids[c][d] = norm[d][pick]
		}
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d := 0; d < dims; d++ {
				centroids[c][d] += norm[d][i]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				pick := st.IntN(n)
				for d := 0; d < dims; d++ {
					centroids[c][d] = norm[d][pick]
				}
				continue
			}
			for d := 0; d < dims; d++ {
				centroids[c][d] /= float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	p := &Partitioning{Group: make([]int, n)}
	members := map[int][]int{}
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	for c := 0; c < k; c++ {
		group := members[c]
		if len(group) == 0 {
			continue
		}
		// Enforce the hard size cap τ: k-means may collapse clusters when
		// many tuples share identical features; oversized clusters are
		// split into τ-sized chunks (members within a cluster are
		// interchangeable for sketching purposes).
		for start := 0; start < len(group); start += tau {
			end := start + tau
			if end > len(group) {
				end = len(group)
			}
			chunk := group[start:end]
			gid := len(p.Members)
			p.Members = append(p.Members, chunk)
			// Medoid: chunk member closest to the centroid.
			best, bestD := chunk[0], math.Inf(1)
			for _, i := range chunk {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = i, d
				}
			}
			p.Medoids = append(p.Medoids, best)
			for _, i := range chunk {
				p.Group[i] = gid
			}
		}
	}
	return p
}

// featureColumns picks the clustering features for a query: every
// deterministic column and every stochastic attribute's mean column that
// the query references.
func featureColumns(silp *translate.SILP) ([][]float64, error) {
	rel := silp.Rel
	seen := map[string]bool{}
	var features [][]float64
	add := func(attr string) error {
		if seen[attr] {
			return nil
		}
		seen[attr] = true
		col, err := rel.Means(attr) // det columns pass through, stoch = means
		if err != nil {
			return err
		}
		features = append(features, col)
		return nil
	}
	collect := func(e spaql.LinExpr) error {
		for _, attr := range e.Attrs() {
			if err := add(attr); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range silp.Query.Constraints {
		if err := collect(c.Expr); err != nil {
			return nil, err
		}
	}
	if silp.Query.Objective != nil {
		if err := collect(silp.Query.Objective.Expr); err != nil {
			return nil, err
		}
	}
	if len(features) == 0 {
		return nil, errors.New("sketch: query references no attributes to cluster on")
	}
	return features, nil
}

// Solve evaluates a stochastic package query with the sketch-refine layer
// around SummarySearch. The returned solution's X indexes the
// (WHERE-filtered) relation exactly like core.SummarySearch's.
func Solve(q *spaql.Query, rel *relation.Relation, copts *core.Options, sopts *Options) (*core.Solution, *Stats, error) {
	so := sopts.withDefaults()
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, nil, err
	}
	view := silp.Rel // WHERE applied
	n := view.N()
	stats := &Stats{}

	if n <= so.MaxCandidates {
		// Small enough to solve directly.
		sol, err := core.SummarySearch(silp, copts)
		stats.FellBack = true
		stats.Candidates = n
		return sol, stats, err
	}

	features, err := featureColumns(silp)
	if err != nil {
		return nil, nil, err
	}
	part := Partition(features, n, so.GroupSize, so.KMeansIters, so.Seed)
	stats.Groups = len(part.Members)
	stats.SketchTuples = len(part.Medoids)

	// SKETCH: solve over the medoids. The medoid view preserves substream
	// identity, so its stochastic behaviour matches the base tuples.
	isMedoid := make([]bool, n)
	for _, m := range part.Medoids {
		isMedoid[m] = true
	}
	groupOfMedoidRow := make([]int, 0, len(part.Medoids))
	for i := 0; i < n; i++ {
		if isMedoid[i] {
			groupOfMedoidRow = append(groupOfMedoidRow, part.Group[i])
		}
	}
	sketchRel := view.Select(func(t int) bool { return isMedoid[t] })
	qNoWhere := *q
	qNoWhere.Where = nil // already applied in view
	sketchStart := time.Now()
	sketchSILP, err := translate.Build(&qNoWhere, sketchRel, nil)
	if err != nil {
		return nil, nil, err
	}
	// A medoid stands for its whole group: allow multiplicity up to the
	// group's aggregate capacity.
	for row, g := range groupOfMedoidRow {
		size := float64(len(part.Members[g]))
		sketchSILP.VarHi[row] = math.Min(sketchSILP.VarHi[row]*size, sketchSILP.VarHi[row]+size*4)
	}
	sketchSol, err := core.SummarySearch(sketchSILP, copts)
	stats.SketchTime = time.Since(sketchStart)
	if err != nil || !sketchSol.Feasible {
		// Sketch failed: fall back to the full problem.
		if err != nil && !errors.Is(err, core.ErrInfeasible) {
			return nil, nil, fmt.Errorf("sketch: sketch phase: %w", err)
		}
		stats.FellBack = true
		refineStart := time.Now()
		sol, err := core.SummarySearch(silp, copts)
		stats.RefineTime = time.Since(refineStart)
		stats.Candidates = n
		return sol, stats, err
	}
	stats.SketchObj = sketchSol.Objective

	// REFINE: solve over the tuples of the groups the sketch used, largest
	// allotments first, capped at MaxCandidates.
	type allot struct {
		group int
		count float64
	}
	var chosen []allot
	for row, x := range sketchSol.X {
		if x > 0 {
			chosen = append(chosen, allot{group: groupOfMedoidRow[row], count: x})
		}
	}
	// Order by allotment descending (simple insertion; few groups).
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j].count > chosen[j-1].count; j-- {
			chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
		}
	}
	inCandidate := make([]bool, n)
	count := 0
	for _, a := range chosen {
		members := part.Members[a.group]
		if count+len(members) > so.MaxCandidates && count > 0 {
			continue
		}
		for _, t := range members {
			if !inCandidate[t] {
				inCandidate[t] = true
				count++
			}
		}
	}
	stats.Candidates = count

	candRel := view.Select(func(t int) bool { return inCandidate[t] })
	refineStart := time.Now()
	refineSILP, err := translate.Build(&qNoWhere, candRel, nil)
	if err != nil {
		return nil, nil, err
	}
	refined, err := core.SummarySearch(refineSILP, copts)
	stats.RefineTime = time.Since(refineStart)
	if err != nil {
		return nil, nil, err
	}

	// Map the refined solution back to view indexing.
	out := *refined
	out.X = make([]float64, n)
	candRow := 0
	for t := 0; t < n; t++ {
		if inCandidate[t] {
			if refined.X != nil {
				out.X[t] = refined.X[candRow]
			}
			candRow++
		}
	}
	if refined.X == nil {
		out.X = nil
	}
	return &out, stats, nil
}
