package sketch

// Determinism guarantees of the partition-parallel pipeline:
//
//  1. for a fixed shard count, every worker count returns bit-identical
//     packages (shard composition, per-shard seeds, and the merge order are
//     all independent of scheduling);
//  2. a 1-shard pipeline reproduces the pre-refactor single-solve
//     sketch.Solve exactly (verified against legacySolve below, a
//     line-for-line transcription of the pre-pipeline implementation).

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// sameSolution compares the result-relevant fields of two solutions exactly
// (bit-level for floats).
func sameSolution(t *testing.T, label string, a, b *core.Solution) {
	t.Helper()
	if a.Feasible != b.Feasible {
		t.Fatalf("%s: feasibility %v vs %v", label, a.Feasible, b.Feasible)
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
		t.Fatalf("%s: objective %v vs %v", label, a.Objective, b.Objective)
	}
	if a.M != b.M || a.Z != b.Z {
		t.Fatalf("%s: (M,Z) = (%d,%d) vs (%d,%d)", label, a.M, a.Z, b.M, b.Z)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: |X| = %d vs %d", label, len(a.X), len(b.X))
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("%s: X[%d] = %v vs %v", label, i, a.X[i], b.X[i])
		}
	}
	if len(a.Surpluses) != len(b.Surpluses) {
		t.Fatalf("%s: |Surpluses| = %d vs %d", label, len(a.Surpluses), len(b.Surpluses))
	}
	for i := range a.Surpluses {
		if math.Float64bits(a.Surpluses[i]) != math.Float64bits(b.Surpluses[i]) {
			t.Fatalf("%s: surplus[%d] = %v vs %v", label, i, a.Surpluses[i], b.Surpluses[i])
		}
	}
}

func TestSketchWorkerCountBitIdentical(t *testing.T) {
	rel := sketchRelation(t, 320)
	q := spaql.MustParse(sketchQuery)
	base := &Options{GroupSize: 16, Seed: 2, Shards: 4, Workers: 1}

	ref, refStats, err := Solve(q, rel, coreOpts(), base)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Shards != 4 {
		t.Fatalf("sketch ran %d shards, want 4", refStats.Shards)
	}
	for _, workers := range []int{2, 8, -1} {
		opts := *base
		opts.Workers = workers
		sol, stats, err := Solve(q, rel, coreOpts(), &opts)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, fmt.Sprintf("workers=%d", workers), sol, ref)
		if stats.Candidates != refStats.Candidates || stats.Groups != refStats.Groups {
			t.Fatalf("workers=%d changed pipeline shape: %+v vs %+v", workers, stats, refStats)
		}
	}
}

func TestSketchOneShardMatchesLegacy(t *testing.T) {
	for _, n := range []int{160, 240} {
		rel := sketchRelation(t, n)
		q := spaql.MustParse(sketchQuery)
		sopts := &Options{GroupSize: 16, Seed: 2}

		got, gotStats, err := Solve(q, rel, coreOpts(), sopts)
		if err != nil {
			t.Fatal(err)
		}
		want, wantStats, err := legacySolve(q, rel, coreOpts(), sopts)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, fmt.Sprintf("n=%d", n), got, want)
		if got.Feasible != want.Feasible || gotStats.Candidates != wantStats.Candidates ||
			gotStats.Groups != wantStats.Groups || gotStats.FellBack != wantStats.FellBack {
			t.Fatalf("n=%d: stats diverged: %+v vs %+v", n, gotStats, wantStats)
		}
	}
}

func TestSketchShardedBudgetHolds(t *testing.T) {
	rel := sketchRelation(t, 320)
	q := spaql.MustParse(sketchQuery)
	sol, stats, err := Solve(q, rel, coreOpts(), &Options{GroupSize: 16, Seed: 2, Shards: 8, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("sharded sketch infeasible: %+v", sol.Surpluses)
	}
	if stats.FellBack {
		t.Fatal("sharded sketch fell back on an easy instance")
	}
	price, _ := rel.Det("price")
	total := 0.0
	for i, x := range sol.X {
		total += price[i] * x
	}
	if total > 200+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
}

// --- Pre-refactor reference implementation ------------------------------
//
// legacySolve and legacyPartition transcribe the pre-pipeline sketch.Solve
// (single medoid solve over all groups, then refine) exactly, so the
// 1-shard pipeline can be checked against the behaviour it must preserve.

type legacyPartitioning struct {
	Group   []int
	Members [][]int
	Medoids []int
}

func legacyPartition(features [][]float64, n, tau, iters int, seed uint64) *legacyPartitioning {
	if n == 0 {
		return &legacyPartitioning{}
	}
	k := (n + tau - 1) / tau
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	dims := len(features)
	norm := make([][]float64, dims)
	for d, col := range features {
		lo, hi := col[0], col[0]
		for _, v := range col {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		span := hi - lo
		if span < 1e-12 {
			span = 1
		}
		nc := make([]float64, n)
		for i, v := range col {
			nc[i] = (v - lo) / span
		}
		norm[d] = nc
	}
	dist2 := func(i int, centroid []float64) float64 {
		s := 0.0
		for d := 0; d < dims; d++ {
			diff := norm[d][i] - centroid[d]
			s += diff * diff
		}
		return s
	}
	st := rng.NewStream(rng.Mix(seed, 0x5ce7c4))
	centroids := make([][]float64, k)
	used := map[int]bool{}
	for c := 0; c < k; c++ {
		var pick int
		for {
			pick = st.IntN(n)
			if !used[pick] {
				used[pick] = true
				break
			}
		}
		centroids[c] = make([]float64, dims)
		for d := 0; d < dims; d++ {
			centroids[c][d] = norm[d][pick]
		}
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d := 0; d < dims; d++ {
				centroids[c][d] += norm[d][i]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				pick := st.IntN(n)
				for d := 0; d < dims; d++ {
					centroids[c][d] = norm[d][pick]
				}
				continue
			}
			for d := 0; d < dims; d++ {
				centroids[c][d] /= float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	p := &legacyPartitioning{Group: make([]int, n)}
	members := map[int][]int{}
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	for c := 0; c < k; c++ {
		group := members[c]
		if len(group) == 0 {
			continue
		}
		for start := 0; start < len(group); start += tau {
			end := start + tau
			if end > len(group) {
				end = len(group)
			}
			chunk := group[start:end]
			gid := len(p.Members)
			p.Members = append(p.Members, chunk)
			best, bestD := chunk[0], math.Inf(1)
			for _, i := range chunk {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = i, d
				}
			}
			p.Medoids = append(p.Medoids, best)
			for _, i := range chunk {
				p.Group[i] = gid
			}
		}
	}
	return p
}

func legacyFeatureColumns(silp *translate.SILP) ([][]float64, error) {
	rel := silp.Rel
	seen := map[string]bool{}
	var features [][]float64
	add := func(attr string) error {
		if seen[attr] {
			return nil
		}
		seen[attr] = true
		col, err := rel.Means(attr)
		if err != nil {
			return err
		}
		features = append(features, col)
		return nil
	}
	collect := func(e spaql.LinExpr) error {
		for _, attr := range e.Attrs() {
			if err := add(attr); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range silp.Query.Constraints {
		if err := collect(c.Expr); err != nil {
			return nil, err
		}
	}
	if silp.Query.Objective != nil {
		if err := collect(silp.Query.Objective.Expr); err != nil {
			return nil, err
		}
	}
	if len(features) == 0 {
		return nil, errors.New("sketch: query references no attributes to cluster on")
	}
	return features, nil
}

func legacySolve(q *spaql.Query, rel *relation.Relation, copts *core.Options, sopts *Options) (*core.Solution, *Stats, error) {
	so := sopts.withDefaults()
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, nil, err
	}
	view := silp.Rel
	n := view.N()
	stats := &Stats{}

	if n <= so.MaxCandidates {
		sol, err := core.SummarySearch(silp, copts)
		stats.FellBack = true
		stats.Candidates = n
		return sol, stats, err
	}

	features, err := legacyFeatureColumns(silp)
	if err != nil {
		return nil, nil, err
	}
	part := legacyPartition(features, n, so.GroupSize, so.KMeansIters, so.Seed)
	stats.Groups = len(part.Members)
	stats.SketchTuples = len(part.Medoids)

	isMedoid := make([]bool, n)
	for _, m := range part.Medoids {
		isMedoid[m] = true
	}
	groupOfMedoidRow := make([]int, 0, len(part.Medoids))
	for i := 0; i < n; i++ {
		if isMedoid[i] {
			groupOfMedoidRow = append(groupOfMedoidRow, part.Group[i])
		}
	}
	sketchRel := view.Select(func(t int) bool { return isMedoid[t] })
	qNoWhere := *q
	qNoWhere.Where = nil
	sketchStart := time.Now()
	sketchSILP, err := translate.Build(&qNoWhere, sketchRel, nil)
	if err != nil {
		return nil, nil, err
	}
	for row, g := range groupOfMedoidRow {
		size := float64(len(part.Members[g]))
		sketchSILP.VarHi[row] = math.Min(sketchSILP.VarHi[row]*size, sketchSILP.VarHi[row]+size*4)
	}
	sketchSol, err := core.SummarySearch(sketchSILP, copts)
	stats.SketchTime = time.Since(sketchStart)
	if err != nil || !sketchSol.Feasible {
		if err != nil && !errors.Is(err, core.ErrInfeasible) {
			return nil, nil, fmt.Errorf("sketch: sketch phase: %w", err)
		}
		stats.FellBack = true
		refineStart := time.Now()
		sol, err := core.SummarySearch(silp, copts)
		stats.RefineTime = time.Since(refineStart)
		stats.Candidates = n
		return sol, stats, err
	}
	stats.SketchObj = sketchSol.Objective

	type allotment struct {
		group int
		count float64
	}
	var chosen []allotment
	for row, x := range sketchSol.X {
		if x > 0 {
			chosen = append(chosen, allotment{group: groupOfMedoidRow[row], count: x})
		}
	}
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j].count > chosen[j-1].count; j-- {
			chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
		}
	}
	inCandidate := make([]bool, n)
	count := 0
	for _, a := range chosen {
		members := part.Members[a.group]
		if count+len(members) > so.MaxCandidates && count > 0 {
			continue
		}
		for _, tup := range members {
			if !inCandidate[tup] {
				inCandidate[tup] = true
				count++
			}
		}
	}
	stats.Candidates = count

	candRel := view.Select(func(t int) bool { return inCandidate[t] })
	refineStart := time.Now()
	refineSILP, err := translate.Build(&qNoWhere, candRel, nil)
	if err != nil {
		return nil, nil, err
	}
	refined, err := core.SummarySearch(refineSILP, copts)
	stats.RefineTime = time.Since(refineStart)
	if err != nil {
		return nil, nil, err
	}

	out := *refined
	out.X = make([]float64, n)
	candRow := 0
	for t := 0; t < n; t++ {
		if inCandidate[t] {
			if refined.X != nil {
				out.X[t] = refined.X[candRow]
			}
			candRow++
		}
	}
	if refined.X == nil {
		out.X = nil
	}
	return &out, stats, nil
}
