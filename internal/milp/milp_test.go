package milp

import (
	"math"
	"testing"
	"time"

	"spq/internal/rng"
)

func solveOK(t *testing.T, m *Model, o *Options) *Result {
	t.Helper()
	res, err := Solve(m, o)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSimpleKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c ≤ 2, binaries → min negated.
	m := NewModel()
	a := m.AddBinary(-10, "a")
	b := m.AddBinary(-6, "b")
	c := m.AddBinary(-4, "c")
	m.AddRow([]int{a, b, c}, []float64{1, 1, 1}, -Inf, 2)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-16)) > 1e-6 {
		t.Fatalf("obj = %v, want -16", res.Obj)
	}
	if math.Round(res.X[a]) != 1 || math.Round(res.X[b]) != 1 || math.Round(res.X[c]) != 0 {
		t.Fatalf("x = %v, want (1,1,0)", res.X)
	}
}

func TestIntegerKnapsackWithMultiplicity(t *testing.T) {
	// Package-style: min cost with coverage, integer multiplicities ≤ 3.
	// min 3x + 5y s.t. 2x + 4y ≥ 10, x,y ∈ {0..3}.
	// Candidates: y=3,x=0 → 15; y=2,x=1 → 13; y=1,x=3 → 14. Optimal 13.
	m := NewModel()
	x := m.AddVar(0, 3, 3, true, "x")
	y := m.AddVar(0, 3, 5, true, "y")
	m.AddRow([]int{x, y}, []float64{2, 4}, 10, Inf)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-13) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 13", res.Status, res.Obj)
	}
}

func TestLPRelaxationGapClosed(t *testing.T) {
	// Classic instance where LP relaxation is fractional:
	// max x+y s.t. 2x + 2y ≤ 3, binaries. LP gives 1.5, ILP gives 1.
	m := NewModel()
	x := m.AddBinary(-1, "x")
	y := m.AddBinary(-1, "y")
	m.AddRow([]int{x, y}, []float64{2, 2}, -Inf, 3)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-1)) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal -1", res.Status, res.Obj)
	}
	if res.Bound > -1.5+1e-6 {
		t.Fatalf("root bound = %v, want -1.5", res.Bound)
	}
}

func TestInfeasibleIntegral(t *testing.T) {
	// 0.5 ≤ x ≤ 0.7 with x integer: LP feasible, no integer point.
	m := NewModel()
	x := m.AddVar(0, 1, 1, true, "x")
	m.AddRow([]int{x}, []float64{1}, 0.5, 0.7)
	res := solveOK(t, m, nil)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 1, 1, true, "x")
	m.AddRow([]int{x}, []float64{1}, 5, Inf)
	res := solveOK(t, m, nil)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedRelaxation(t *testing.T) {
	m := NewModel()
	m.AddVar(0, Inf, -1, false, "x")
	res := solveOK(t, m, nil)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestIndicatorGE(t *testing.T) {
	// y = 1 ⟹ x ≥ 5, minimize x + penalty for y=0.
	// min x + 10(1−y) = x − 10y + 10; x ∈ [0,10].
	// y=1 forces x ≥ 5: obj 5. y=0: obj 10. Optimal: x=5, y=1.
	m := NewModel()
	x := m.AddVar(0, 10, 1, false, "x")
	y := m.AddBinary(-10, "y")
	m.AddIndicatorGE(y, []int{x}, []float64{1}, 5)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-5)) > 1e-6 {
		t.Fatalf("obj = %v, want -5 (x=5, y=1)", res.Obj)
	}
	if math.Round(res.X[y]) != 1 || math.Abs(res.X[x]-5) > 1e-6 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestIndicatorLE(t *testing.T) {
	// y = 1 ⟹ x ≤ 2; maximize x + 4y with x ∈ [0,10].
	// y=1: x=2, value 6. y=0: x=10, value 10. Optimal y=0.
	m := NewModel()
	x := m.AddVar(0, 10, -1, false, "x")
	y := m.AddBinary(-4, "y")
	m.AddIndicatorLE(y, []int{x}, []float64{1}, 2)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-10)) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal -10", res.Status, res.Obj)
	}
}

func TestChanceConstraintShape(t *testing.T) {
	// Miniature SAA: 3 scenarios of a gain coefficient for 2 tuples; require
	// at least 2 of 3 scenarios to satisfy gain ≥ 1; maximize mean gain.
	gains := [][]float64{ // scenario × tuple
		{1.0, -0.5},
		{0.5, 2.0},
		{-1.0, 0.8},
	}
	mean := []float64{(1.0 + 0.5 - 1.0) / 3, (-0.5 + 2.0 + 0.8) / 3}
	m := NewModel()
	x0 := m.AddVar(0, 2, -mean[0], true, "x0")
	x1 := m.AddVar(0, 2, -mean[1], true, "x1")
	ys := make([]int, 3)
	for j := 0; j < 3; j++ {
		ys[j] = m.AddBinary(0, "y")
		m.AddIndicatorGE(ys[j], []int{x0, x1}, gains[j], 1)
	}
	m.AddRow(ys, []float64{1, 1, 1}, 2, Inf) // ⌈pM⌉ = 2
	m.AddRow([]int{x0, x1}, []float64{1, 1}, 1, Inf)
	res := solveOK(t, m, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Verify the chance constraint on the returned package.
	satisfied := 0
	for j := 0; j < 3; j++ {
		if gains[j][0]*res.X[x0]+gains[j][1]*res.X[x1] >= 1-1e-9 {
			satisfied++
		}
	}
	if satisfied < 2 {
		t.Fatalf("only %d scenarios satisfied, want ≥ 2 (x=%v)", satisfied, res.X)
	}
}

func TestIndicatorRequiresFiniteBounds(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, Inf, 1, false, "x")
	y := m.AddBinary(0, "y")
	m.AddIndicatorGE(y, []int{x}, []float64{1}, 5)
	if _, err := Solve(m, nil); err == nil {
		t.Fatal("expected error for indicator over unbounded variable")
	}
}

func TestIndicatorRequiresBinary(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 10, 1, false, "x")
	z := m.AddVar(0, 5, 0, true, "z")
	m.AddIndicatorGE(z, []int{x}, []float64{1}, 5)
	if _, err := Solve(m, nil); err == nil {
		t.Fatal("expected error for non-binary indicator variable")
	}
}

func TestInitialIncumbentUsed(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 5, 1, true, "x")
	m.AddRow([]int{x}, []float64{1}, 2, Inf)
	res := solveOK(t, m, &Options{InitialX: []float64{3}, MaxNodes: 1})
	if res.Status != StatusOptimal && res.Status != StatusFeasible {
		t.Fatalf("status = %v, want a solution", res.Status)
	}
	if res.Obj > 3+1e-9 {
		t.Fatalf("obj = %v, incumbent should be ≤ 3", res.Obj)
	}
}

func TestInfeasibleInitialIncumbentIgnored(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 5, 1, true, "x")
	m.AddRow([]int{x}, []float64{1}, 2, Inf)
	res := solveOK(t, m, &Options{InitialX: []float64{0}}) // violates row
	if res.Status != StatusOptimal || math.Abs(res.Obj-2) > 1e-6 {
		t.Fatalf("status=%v obj=%v, want optimal 2", res.Status, res.Obj)
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A model large enough not to finish instantly, with a seeded incumbent.
	s := rng.NewStream(3)
	m := NewModel()
	const n = 40
	idxs := make([]int, n)
	w := make([]float64, n)
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = 1 + s.Float64()*3
	}
	m.AddRow(idxs, w, -Inf, 20)
	res := solveOK(t, m, &Options{TimeLimit: time.Millisecond, InitialX: x0})
	if res.X == nil {
		t.Fatal("expected an incumbent (the all-zero seed at worst)")
	}
}

func TestGapTermination(t *testing.T) {
	m := NewModel()
	s := rng.NewStream(5)
	const n = 25
	idxs := make([]int, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = 1 + s.Float64()*3
	}
	m.AddRow(idxs, w, -Inf, 12)
	res := solveOK(t, m, &Options{RelGap: 0.5})
	if res.X == nil {
		t.Fatal("gap-based solve returned no solution")
	}
}

// Exhaustive cross-check: random small integer programs vs brute force.
func TestRandomIPAgainstBruteForce(t *testing.T) {
	s := rng.NewStream(11)
	for trial := 0; trial < 50; trial++ {
		n := 2 + s.IntN(3) // 2..4 vars
		ub := 2
		m := NewModel()
		obj := make([]float64, n)
		idxs := make([]int, n)
		for j := 0; j < n; j++ {
			obj[j] = math.Round((s.Float64()*6-3)*10) / 10
			idxs[j] = m.AddVar(0, float64(ub), obj[j], true, "x")
		}
		nrows := 1 + s.IntN(2)
		rows := make([][]float64, nrows)
		rlo := make([]float64, nrows)
		rhi := make([]float64, nrows)
		for r := 0; r < nrows; r++ {
			rows[r] = make([]float64, n)
			for j := 0; j < n; j++ {
				rows[r][j] = math.Round((s.Float64()*4-2)*10) / 10
			}
			if s.IntN(2) == 0 {
				rlo[r], rhi[r] = math.Inf(-1), s.Float64()*4
			} else {
				rlo[r], rhi[r] = -s.Float64()*2, math.Inf(1)
			}
			m.AddRow(idxs, rows[r], rlo[r], rhi[r])
		}
		res, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force over {0..ub}^n.
		bestObj := math.Inf(1)
		found := false
		total := 1
		for j := 0; j < n; j++ {
			total *= ub + 1
		}
		for code := 0; code < total; code++ {
			c := code
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = float64(c % (ub + 1))
				c /= ub + 1
			}
			ok := true
			for r := 0; r < nrows; r++ {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += rows[r][j] * x[j]
				}
				if dot < rlo[r]-1e-9 || dot > rhi[r]+1e-9 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			found = true
			o := 0.0
			for j := 0; j < n; j++ {
				o += obj[j] * x[j]
			}
			if o < bestObj {
				bestObj = o
			}
		}
		switch {
		case found && res.Status == StatusOptimal:
			if math.Abs(res.Obj-bestObj) > 1e-6 {
				t.Fatalf("trial %d: milp obj %v, brute force %v", trial, res.Obj, bestObj)
			}
		case found && res.Status == StatusInfeasible:
			t.Fatalf("trial %d: milp infeasible, brute force found %v", trial, bestObj)
		case !found && res.Status == StatusOptimal:
			t.Fatalf("trial %d: milp optimal %v, brute force infeasible", trial, res.Obj)
		}
	}
}

func TestRandomIndicatorModelsAgainstBruteForce(t *testing.T) {
	s := rng.NewStream(13)
	for trial := 0; trial < 40; trial++ {
		// 2 integer vars in {0..2}, 2 indicator constraints, require ≥1 active.
		m := NewModel()
		x0 := m.AddVar(0, 2, math.Round(s.Float64()*20)/10-1, true, "x0")
		x1 := m.AddVar(0, 2, math.Round(s.Float64()*20)/10-1, true, "x1")
		coefs := make([][]float64, 2)
		rhs := make([]float64, 2)
		ys := make([]int, 2)
		for k := 0; k < 2; k++ {
			coefs[k] = []float64{math.Round((s.Float64()*4 - 2)), math.Round((s.Float64()*4 - 2))}
			rhs[k] = math.Round(s.Float64() * 3)
			ys[k] = m.AddBinary(0, "y")
			m.AddIndicatorGE(ys[k], []int{x0, x1}, coefs[k], rhs[k])
		}
		m.AddRow(ys, []float64{1, 1}, 1, Inf)
		m.AddRow([]int{x0, x1}, []float64{1, 1}, 1, 4) // package nonempty
		res, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force x over {0..2}², checking the disjunction directly.
		bestObj := math.Inf(1)
		found := false
		for a := 0; a <= 2; a++ {
			for b := 0; b <= 2; b++ {
				if a+b < 1 || a+b > 4 {
					continue
				}
				sat := 0
				for k := 0; k < 2; k++ {
					if coefs[k][0]*float64(a)+coefs[k][1]*float64(b) >= rhs[k]-1e-9 {
						sat++
					}
				}
				if sat < 1 {
					continue
				}
				found = true
				o := m.vars[x0].obj*float64(a) + m.vars[x1].obj*float64(b)
				if o < bestObj {
					bestObj = o
				}
			}
		}
		switch {
		case found && res.Status == StatusOptimal:
			if res.Obj > bestObj+1e-6 {
				t.Fatalf("trial %d: milp obj %v worse than brute force %v", trial, res.Obj, bestObj)
			}
		case found && res.Status == StatusInfeasible:
			t.Fatalf("trial %d: milp infeasible, brute force found %v", trial, bestObj)
		case !found && res.Status == StatusOptimal:
			t.Fatalf("trial %d: milp found %v, brute force infeasible", trial, res.Obj)
		}
	}
}

func TestNumCoefficients(t *testing.T) {
	m := NewModel()
	x := m.AddVar(0, 1, 1, true, "x")
	y := m.AddBinary(0, "y")
	m.AddRow([]int{x, y}, []float64{1, 1}, 0, 2)
	m.AddIndicatorGE(y, []int{x}, []float64{2}, 1)
	// Row has 2 coefficients; indicator has 1 term + 1 big-M entry.
	if got := m.NumCoefficients(); got != 4 {
		t.Fatalf("NumCoefficients = %d, want 4", got)
	}
}

func TestGapOnResult(t *testing.T) {
	r := &Result{Obj: 10, Bound: 9, X: []float64{1}}
	if g := r.Gap(); math.Abs(g-0.1) > 1e-12 {
		t.Fatalf("Gap = %v, want 0.1", g)
	}
	empty := &Result{}
	if !math.IsInf(empty.Gap(), 1) {
		t.Fatal("Gap of empty result should be +Inf")
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:    "optimal",
		StatusFeasible:   "feasible",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusLimit:      "limit",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), w)
		}
	}
}
