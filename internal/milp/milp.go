// Package milp implements a branch-and-bound mixed-integer linear
// programming solver over the simplex in internal/lp. Together they stand in
// for the commercial solver (IBM CPLEX 12.6) the paper uses: the package
// supports the exact feature set package-query DILPs need — nonnegative
// integer tuple-multiplicity variables, binary scenario/summary indicator
// variables, range constraints, and indicator ("y = 1 ⟹ linear constraint")
// constraints, which are linearized with per-row derived big-M values.
//
// Minimization is canonical; callers maximize by negating objective
// coefficients.
package milp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spq/internal/lp"
)

// Inf re-exports the LP infinity for bound construction.
var Inf = lp.Inf

// Status reports the disposition of a MILP solve.
type Status int

const (
	// StatusOptimal means the search proved optimality of the incumbent.
	StatusOptimal Status = iota
	// StatusFeasible means a feasible incumbent exists but optimality was
	// not proven before a node/time limit.
	StatusFeasible
	// StatusInfeasible means the search proved no integer-feasible point
	// exists.
	StatusInfeasible
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
	// StatusLimit means a limit was reached with no incumbent found.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	default:
		return fmt.Sprintf("milp.Status(%d)", int(s))
	}
}

// variable describes one decision variable.
type variable struct {
	lo, hi  float64
	obj     float64
	integer bool
	name    string
}

type rowSpec struct {
	idxs   []int
	coefs  []float64
	lo, hi float64
}

// indicator is a constraint of the form: bin = 1 ⟹ Σ coefs·x (ge ? ≥ : ≤) rhs.
type indicator struct {
	bin   int
	idxs  []int
	coefs []float64
	rhs   float64
	ge    bool
}

// Model is a MILP instance under construction.
type Model struct {
	vars       []variable
	rows       []rowSpec
	indicators []indicator
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumRows returns the number of plain rows added so far (indicator rows are
// materialized at solve time and not counted here).
func (m *Model) NumRows() int { return len(m.rows) }

// NumIndicators returns the number of indicator constraints.
func (m *Model) NumIndicators() int { return len(m.indicators) }

// AddVar adds a variable with bounds [lo, hi], objective coefficient obj and
// integrality flag, returning its index.
func (m *Model) AddVar(lo, hi, obj float64, integer bool, name string) int {
	m.vars = append(m.vars, variable{lo: lo, hi: hi, obj: obj, integer: integer, name: name})
	return len(m.vars) - 1
}

// AddBinary adds a {0,1} variable and returns its index.
func (m *Model) AddBinary(obj float64, name string) int {
	return m.AddVar(0, 1, obj, true, name)
}

// VarName returns the name of variable j.
func (m *Model) VarName(j int) string { return m.vars[j].name }

// SetObj overrides the objective coefficient of variable j.
func (m *Model) SetObj(j int, obj float64) { m.vars[j].obj = obj }

// AddRow adds the range constraint lo ≤ Σ coefs·x ≤ hi.
func (m *Model) AddRow(idxs []int, coefs []float64, lo, hi float64) {
	m.rows = append(m.rows, rowSpec{idxs: idxs, coefs: coefs, lo: lo, hi: hi})
}

// AddIndicatorGE adds: bin = 1 ⟹ Σ coefs·x ≥ rhs. The bin variable must be
// binary and all involved variables must have finite bounds (needed to derive
// a valid big-M).
func (m *Model) AddIndicatorGE(bin int, idxs []int, coefs []float64, rhs float64) {
	m.indicators = append(m.indicators, indicator{bin: bin, idxs: idxs, coefs: coefs, rhs: rhs, ge: true})
}

// AddIndicatorLE adds: bin = 1 ⟹ Σ coefs·x ≤ rhs.
func (m *Model) AddIndicatorLE(bin int, idxs []int, coefs []float64, rhs float64) {
	m.indicators = append(m.indicators, indicator{bin: bin, idxs: idxs, coefs: coefs, rhs: rhs, ge: false})
}

// boxMin/boxMax compute the extreme values of Σ coefs·x over the variable
// boxes, used to derive valid big-M constants.
func (m *Model) boxExtremes(idxs []int, coefs []float64) (minV, maxV float64, err error) {
	for k, j := range idxs {
		c := coefs[k]
		if c == 0 {
			continue
		}
		lo, hi := m.vars[j].lo, m.vars[j].hi
		if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
			return 0, 0, fmt.Errorf("milp: indicator over variable %q with infinite bounds", m.vars[j].name)
		}
		if c > 0 {
			minV += c * lo
			maxV += c * hi
		} else {
			minV += c * hi
			maxV += c * lo
		}
	}
	return minV, maxV, nil
}

// build materializes the LP relaxation, expanding indicator constraints into
// big-M rows.
func (m *Model) build() (*lp.Problem, error) {
	p := lp.NewProblem(len(m.vars))
	for j, v := range m.vars {
		p.SetObj(j, v.obj)
		p.SetVarBounds(j, v.lo, v.hi)
	}
	for _, r := range m.rows {
		p.AddRow(r.idxs, r.coefs, r.lo, r.hi)
	}
	for _, ind := range m.indicators {
		if !m.vars[ind.bin].integer || m.vars[ind.bin].lo < 0 || m.vars[ind.bin].hi > 1 {
			return nil, errors.New("milp: indicator variable must be binary")
		}
		minV, maxV, err := m.boxExtremes(ind.idxs, ind.coefs)
		if err != nil {
			return nil, err
		}
		idxs := make([]int, len(ind.idxs), len(ind.idxs)+1)
		coefs := make([]float64, len(ind.coefs), len(ind.coefs)+1)
		copy(idxs, ind.idxs)
		copy(coefs, ind.coefs)
		if ind.ge {
			// a·x − M·b ≥ rhs − M with M ≥ rhs − minbox.
			bigM := ind.rhs - minV
			if bigM < 0 {
				bigM = 0
			}
			bigM = bigM*1.01 + 1 // slack for numerical safety; larger M stays valid
			idxs = append(idxs, ind.bin)
			coefs = append(coefs, -bigM)
			p.AddRow(idxs, coefs, ind.rhs-bigM, lp.Inf)
		} else {
			// a·x + M·b ≤ rhs + M with M ≥ maxbox − rhs.
			bigM := maxV - ind.rhs
			if bigM < 0 {
				bigM = 0
			}
			bigM = bigM*1.01 + 1
			idxs = append(idxs, ind.bin)
			coefs = append(coefs, bigM)
			p.AddRow(idxs, coefs, -lp.Inf, ind.rhs+bigM)
		}
	}
	return p, nil
}

// NumCoefficients reports the coefficient count of the materialized DILP
// (the paper's problem-size measure). Indicator rows count their terms plus
// the big-M entry.
func (m *Model) NumCoefficients() int {
	n := 0
	for _, r := range m.rows {
		for _, c := range r.coefs {
			if c != 0 {
				n++
			}
		}
	}
	for _, ind := range m.indicators {
		for _, c := range ind.coefs {
			if c != 0 {
				n++
			}
		}
		n++ // big-M coefficient on the indicator binary
	}
	return n
}

// Options tune the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means no limit. When the
	// limit expires the best incumbent (if any) is returned, mirroring the
	// paper's four-hour CPLEX cutoff behaviour.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes; 0 means a large default.
	MaxNodes int
	// RelGap stops the search when (incumbent − bound)/|incumbent| falls
	// below this value. 0 means prove optimality (within tolerance).
	RelGap float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// InitialX optionally seeds the incumbent with a known integer-feasible
	// point (e.g. the previous CSA-Solve solution); ignored if infeasible.
	InitialX []float64
	// Cancel, when non-nil, aborts the search as soon as the channel is
	// closed (checked once per node, like the time limit). The best
	// incumbent found so far is returned. It carries context cancellation
	// into the solver without coupling this package to context.Context.
	Cancel <-chan struct{}
	// LP tunes the node LP solves.
	LP lp.Options
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxNodes == 0 {
		out.MaxNodes = 500000
	}
	if out.IntTol == 0 {
		out.IntTol = 1e-6
	}
	return out
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status Status
	// X is the incumbent solution (valid for StatusOptimal/StatusFeasible).
	X []float64
	// Obj is the incumbent objective value.
	Obj float64
	// Bound is the root LP relaxation bound (a valid lower bound for
	// minimization).
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Coefficients is the DILP size that was handed to the LP engine.
	Coefficients int
}

// Gap returns the relative optimality gap of the incumbent versus the root
// bound, or +Inf when no incumbent exists.
func (r *Result) Gap() float64 {
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Abs(r.Obj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	g := (r.Obj - r.Bound) / denom
	if g < 0 {
		return 0
	}
	return g
}

type bbState struct {
	model    *Model
	prob     *lp.Problem
	opts     Options
	deadline time.Time
	hasDL    bool

	lo, hi []float64 // current node bounds (mutated along the DFS)

	incumbent    []float64
	incumbentObj float64
	nodes        int
	err          error
}

// Solve runs branch and bound on the model.
func Solve(m *Model, o *Options) (*Result, error) {
	opts := o.withDefaults()
	prob, err := m.build()
	if err != nil {
		return nil, err
	}
	st := &bbState{
		model:        m,
		prob:         prob,
		opts:         opts,
		incumbentObj: math.Inf(1),
		lo:           make([]float64, len(m.vars)),
		hi:           make([]float64, len(m.vars)),
	}
	if opts.TimeLimit > 0 {
		st.deadline = time.Now().Add(opts.TimeLimit)
		st.hasDL = true
	}
	for j, v := range m.vars {
		st.lo[j] = v.lo
		st.hi[j] = v.hi
	}
	if opts.InitialX != nil {
		if obj, ok := st.checkFeasible(opts.InitialX); ok {
			st.incumbent = append([]float64(nil), opts.InitialX...)
			st.incumbentObj = obj
		}
	}

	rootSol, err := lp.SolveWithBounds(prob, st.lo, st.hi, &opts.LP)
	if err != nil {
		return nil, err
	}
	res := &Result{Bound: rootSol.Obj, Coefficients: m.NumCoefficients()}
	switch rootSol.Status {
	case lp.StatusInfeasible:
		if st.incumbent != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.incumbent, st.incumbentObj
			return res, nil
		}
		res.Status = StatusInfeasible
		return res, nil
	case lp.StatusUnbounded:
		res.Status = StatusUnbounded
		return res, nil
	case lp.StatusIterLimit:
		if st.incumbent != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.incumbent, st.incumbentObj
			return res, nil
		}
		res.Status = StatusLimit
		return res, nil
	}
	// Rounding heuristic on the root relaxation for an early incumbent.
	st.tryRounding(rootSol.X)

	complete := st.dive(rootSol)
	if st.err != nil {
		return nil, st.err
	}
	res.Nodes = st.nodes
	switch {
	case st.incumbent != nil && complete:
		res.Status = StatusOptimal
		res.X, res.Obj = st.incumbent, st.incumbentObj
	case st.incumbent != nil:
		res.Status = StatusFeasible
		res.X, res.Obj = st.incumbent, st.incumbentObj
	case complete:
		res.Status = StatusInfeasible
	default:
		res.Status = StatusLimit
	}
	return res, nil
}

// limitHit reports whether a node or time limit has expired or the solve
// was cancelled.
func (st *bbState) limitHit() bool {
	if st.nodes >= st.opts.MaxNodes {
		return true
	}
	if st.hasDL && time.Now().After(st.deadline) {
		return true
	}
	if st.opts.Cancel != nil {
		select {
		case <-st.opts.Cancel:
			return true
		default:
		}
	}
	return false
}

// gapMet reports whether the incumbent is within the requested relative gap
// of the given bound.
func (st *bbState) gapMet(bound float64) bool {
	if st.incumbent == nil || st.opts.RelGap <= 0 {
		return false
	}
	denom := math.Abs(st.incumbentObj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return (st.incumbentObj-bound)/denom <= st.opts.RelGap
}

// dive explores the subtree rooted at the current bound state, whose LP
// relaxation solution is sol. Returns true if the subtree was fully explored
// (i.e. the result in this subtree is exact).
func (st *bbState) dive(sol *lp.Solution) bool {
	st.nodes++
	if sol.Status == lp.StatusInfeasible {
		return true
	}
	if sol.Status == lp.StatusIterLimit {
		return false // cannot trust this subtree's bound
	}
	if sol.Obj >= st.incumbentObj-1e-9 {
		return true // bound prune
	}
	if st.gapMet(sol.Obj) {
		return true
	}
	branchVar := st.pickBranchVar(sol.X)
	if branchVar < 0 {
		// Integer feasible: new incumbent.
		obj := sol.Obj
		if obj < st.incumbentObj {
			st.incumbent = st.roundedCopy(sol.X)
			st.incumbentObj = obj
		}
		return true
	}
	if st.limitHit() {
		return false
	}
	val := sol.X[branchVar]
	floorV := math.Floor(val)
	ceilV := floorV + 1
	frac := val - floorV

	type branch struct{ loV, hiV float64 }
	// Explore the side nearer the LP value first.
	order := []branch{{st.lo[branchVar], floorV}, {ceilV, st.hi[branchVar]}}
	if frac > 0.5 {
		order[0], order[1] = order[1], order[0]
	}
	complete := true
	for _, b := range order {
		if b.loV > b.hiV {
			continue
		}
		savedLo, savedHi := st.lo[branchVar], st.hi[branchVar]
		st.lo[branchVar], st.hi[branchVar] = b.loV, b.hiV
		childSol, err := lp.SolveWithBounds(st.prob, st.lo, st.hi, &st.opts.LP)
		if err != nil {
			st.err = err
			st.lo[branchVar], st.hi[branchVar] = savedLo, savedHi
			return false
		}
		if !st.dive(childSol) {
			complete = false
		}
		st.lo[branchVar], st.hi[branchVar] = savedLo, savedHi
		if st.err != nil {
			return false
		}
		if st.limitHit() {
			return false
		}
	}
	return complete
}

// pickBranchVar returns the most fractional integer variable, or -1 if the
// point is integer feasible.
func (st *bbState) pickBranchVar(x []float64) int {
	best := -1
	bestScore := math.Inf(1) // |frac − 0.5|: most-fractional branching
	for j, v := range st.model.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if math.Min(f, 1-f) <= st.opts.IntTol {
			continue // effectively integral
		}
		score := math.Abs(f - 0.5)
		if score < bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// roundedCopy snaps near-integer values of integer variables exactly.
func (st *bbState) roundedCopy(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, v := range st.model.vars {
		if v.integer {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// tryRounding rounds the LP relaxation point and installs it as incumbent if
// it is feasible for the full model.
func (st *bbState) tryRounding(x []float64) {
	cand := st.roundedCopy(x)
	for j := range cand {
		if cand[j] < st.lo[j] {
			cand[j] = st.lo[j]
		}
		if cand[j] > st.hi[j] {
			cand[j] = st.hi[j]
		}
	}
	if obj, ok := st.checkFeasible(cand); ok && obj < st.incumbentObj {
		st.incumbent = cand
		st.incumbentObj = obj
	}
}

// checkFeasible verifies a candidate point against all rows, indicator
// constraints, bounds, and integrality; it returns the objective value.
func (st *bbState) checkFeasible(x []float64) (float64, bool) {
	const tol = 1e-6
	if len(x) != len(st.model.vars) {
		return 0, false
	}
	obj := 0.0
	for j, v := range st.model.vars {
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return 0, false
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > tol {
			return 0, false
		}
		obj += v.obj * x[j]
	}
	for _, r := range st.model.rows {
		dot := 0.0
		for k, j := range r.idxs {
			dot += r.coefs[k] * x[j]
		}
		if dot < r.lo-tol || dot > r.hi+tol {
			return 0, false
		}
	}
	for _, ind := range st.model.indicators {
		if math.Round(x[ind.bin]) != 1 {
			continue
		}
		dot := 0.0
		for k, j := range ind.idxs {
			dot += ind.coefs[k] * x[j]
		}
		if ind.ge && dot < ind.rhs-tol {
			return 0, false
		}
		if !ind.ge && dot > ind.rhs+tol {
			return 0, false
		}
	}
	return obj, true
}
