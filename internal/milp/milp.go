// Package milp implements a branch-and-bound mixed-integer linear
// programming solver over the simplex in internal/lp. Together they stand in
// for the commercial solver (IBM CPLEX 12.6) the paper uses: the package
// supports the exact feature set package-query DILPs need — nonnegative
// integer tuple-multiplicity variables, binary scenario/summary indicator
// variables, range constraints, and indicator ("y = 1 ⟹ linear constraint")
// constraints, which are linearized with per-row derived big-M values.
//
// The search itself is an explicit node pool explored by a bounded set of
// workers (Options.Parallelism) rather than a recursive depth-first dive:
// nodes carry immutable bound deltas, workers claim them from deterministic
// synchronization rounds, and the shared incumbent breaks objective ties
// toward the smaller canonical path id, so results are bit-identical for
// every worker count (see search.go). Cancellation (Options.Cancel) and the
// time limit reach into the simplex iteration loop itself via lp.Options, so
// an abort takes effect within one LP iteration, not one LP solve.
//
// Minimization is canonical; callers maximize by negating objective
// coefficients.
package milp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"spq/internal/lp"
)

// Inf re-exports the LP infinity for bound construction.
var Inf = lp.Inf

// Status reports the disposition of a MILP solve.
type Status int

const (
	// StatusOptimal means the search proved optimality of the incumbent.
	StatusOptimal Status = iota
	// StatusFeasible means a feasible incumbent exists but optimality was
	// not proven before a node/time limit.
	StatusFeasible
	// StatusInfeasible means the search proved no integer-feasible point
	// exists.
	StatusInfeasible
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
	// StatusLimit means a limit was reached with no incumbent found.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	default:
		return fmt.Sprintf("milp.Status(%d)", int(s))
	}
}

// variable describes one decision variable.
type variable struct {
	lo, hi  float64
	obj     float64
	integer bool
	name    string
}

type rowSpec struct {
	idxs   []int
	coefs  []float64
	lo, hi float64
}

// indicator is a constraint of the form: bin = 1 ⟹ Σ coefs·x (ge ? ≥ : ≤) rhs.
type indicator struct {
	bin   int
	idxs  []int
	coefs []float64
	rhs   float64
	ge    bool
}

// Model is a MILP instance under construction.
type Model struct {
	vars       []variable
	rows       []rowSpec
	indicators []indicator
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumRows returns the number of plain rows added so far (indicator rows are
// materialized at solve time and not counted here).
func (m *Model) NumRows() int { return len(m.rows) }

// NumIndicators returns the number of indicator constraints.
func (m *Model) NumIndicators() int { return len(m.indicators) }

// AddVar adds a variable with bounds [lo, hi], objective coefficient obj and
// integrality flag, returning its index.
func (m *Model) AddVar(lo, hi, obj float64, integer bool, name string) int {
	m.vars = append(m.vars, variable{lo: lo, hi: hi, obj: obj, integer: integer, name: name})
	return len(m.vars) - 1
}

// AddBinary adds a {0,1} variable and returns its index.
func (m *Model) AddBinary(obj float64, name string) int {
	return m.AddVar(0, 1, obj, true, name)
}

// VarName returns the name of variable j.
func (m *Model) VarName(j int) string { return m.vars[j].name }

// SetObj overrides the objective coefficient of variable j.
func (m *Model) SetObj(j int, obj float64) { m.vars[j].obj = obj }

// AddRow adds the range constraint lo ≤ Σ coefs·x ≤ hi.
func (m *Model) AddRow(idxs []int, coefs []float64, lo, hi float64) {
	m.rows = append(m.rows, rowSpec{idxs: idxs, coefs: coefs, lo: lo, hi: hi})
}

// AddIndicatorGE adds: bin = 1 ⟹ Σ coefs·x ≥ rhs. The bin variable must be
// binary and all involved variables must have finite bounds (needed to derive
// a valid big-M).
func (m *Model) AddIndicatorGE(bin int, idxs []int, coefs []float64, rhs float64) {
	m.indicators = append(m.indicators, indicator{bin: bin, idxs: idxs, coefs: coefs, rhs: rhs, ge: true})
}

// AddIndicatorLE adds: bin = 1 ⟹ Σ coefs·x ≤ rhs.
func (m *Model) AddIndicatorLE(bin int, idxs []int, coefs []float64, rhs float64) {
	m.indicators = append(m.indicators, indicator{bin: bin, idxs: idxs, coefs: coefs, rhs: rhs, ge: false})
}

// boxMin/boxMax compute the extreme values of Σ coefs·x over the variable
// boxes, used to derive valid big-M constants.
func (m *Model) boxExtremes(idxs []int, coefs []float64) (minV, maxV float64, err error) {
	for k, j := range idxs {
		c := coefs[k]
		if c == 0 {
			continue
		}
		lo, hi := m.vars[j].lo, m.vars[j].hi
		if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
			return 0, 0, fmt.Errorf("milp: indicator over variable %q with infinite bounds", m.vars[j].name)
		}
		if c > 0 {
			minV += c * lo
			maxV += c * hi
		} else {
			minV += c * hi
			maxV += c * lo
		}
	}
	return minV, maxV, nil
}

// build materializes the LP relaxation, expanding indicator constraints into
// big-M rows.
func (m *Model) build() (*lp.Problem, error) {
	p := lp.NewProblem(len(m.vars))
	for j, v := range m.vars {
		p.SetObj(j, v.obj)
		p.SetVarBounds(j, v.lo, v.hi)
	}
	for _, r := range m.rows {
		p.AddRow(r.idxs, r.coefs, r.lo, r.hi)
	}
	for _, ind := range m.indicators {
		if !m.vars[ind.bin].integer || m.vars[ind.bin].lo < 0 || m.vars[ind.bin].hi > 1 {
			return nil, errors.New("milp: indicator variable must be binary")
		}
		minV, maxV, err := m.boxExtremes(ind.idxs, ind.coefs)
		if err != nil {
			return nil, err
		}
		idxs := make([]int, len(ind.idxs), len(ind.idxs)+1)
		coefs := make([]float64, len(ind.coefs), len(ind.coefs)+1)
		copy(idxs, ind.idxs)
		copy(coefs, ind.coefs)
		if ind.ge {
			// a·x − M·b ≥ rhs − M with M ≥ rhs − minbox.
			bigM := ind.rhs - minV
			if bigM < 0 {
				bigM = 0
			}
			bigM = bigM*1.01 + 1 // slack for numerical safety; larger M stays valid
			idxs = append(idxs, ind.bin)
			coefs = append(coefs, -bigM)
			p.AddRow(idxs, coefs, ind.rhs-bigM, lp.Inf)
		} else {
			// a·x + M·b ≤ rhs + M with M ≥ maxbox − rhs.
			bigM := maxV - ind.rhs
			if bigM < 0 {
				bigM = 0
			}
			bigM = bigM*1.01 + 1
			idxs = append(idxs, ind.bin)
			coefs = append(coefs, bigM)
			p.AddRow(idxs, coefs, -lp.Inf, ind.rhs+bigM)
		}
	}
	return p, nil
}

// NumCoefficients reports the coefficient count of the materialized DILP
// (the paper's problem-size measure). Indicator rows count their terms plus
// the big-M entry.
func (m *Model) NumCoefficients() int {
	n := 0
	for _, r := range m.rows {
		for _, c := range r.coefs {
			if c != 0 {
				n++
			}
		}
	}
	for _, ind := range m.indicators {
		for _, c := range ind.coefs {
			if c != 0 {
				n++
			}
		}
		n++ // big-M coefficient on the indicator binary
	}
	return n
}

// Options tune the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock search time; 0 means no limit. When the
	// limit expires the best incumbent (if any) is returned, mirroring the
	// paper's four-hour CPLEX cutoff behaviour.
	TimeLimit time.Duration
	// MaxNodes bounds the number of explored nodes; 0 means a large default.
	MaxNodes int
	// RelGap stops the search when (incumbent − bound)/|incumbent| falls
	// below this value. 0 means prove optimality (within tolerance).
	RelGap float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// InitialX optionally seeds the incumbent with a known integer-feasible
	// point (e.g. the previous CSA-Solve solution); ignored if infeasible.
	InitialX []float64
	// Cancel, when non-nil, aborts the search as soon as the channel is
	// closed. The best incumbent found so far is returned. It carries
	// context cancellation into the solver without coupling this package to
	// context.Context, and is forwarded into every node LP solve so a
	// cancellation takes effect within one simplex iteration even when a
	// single LP solve is long.
	Cancel <-chan struct{}
	// Parallelism is the number of workers exploring branch-and-bound nodes
	// concurrently. 0 or 1 explore sequentially; a negative value uses one
	// worker per available CPU. Results are bit-identical for every value:
	// nodes are processed in deterministic synchronization rounds against a
	// round-start incumbent snapshot, and equal-objective incumbents are
	// resolved toward the smaller canonical path id.
	Parallelism int
	// RootBasis optionally seeds the root relaxation's simplex from a basis
	// of a previous, structurally similar solve (a delta re-solve of the
	// same CSA formulation). The LP layer rejects a basis whose shape does
	// not match and falls back to a cold solve, so callers may pass bases
	// across solves without dimension checks.
	RootBasis *lp.Basis
	// WantRootBasis asks for the root relaxation's optimal basis in
	// Result.RootBasis so the caller can warm-start a later re-solve.
	WantRootBasis bool
	// LP tunes the node LP solves.
	LP lp.Options
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxNodes == 0 {
		out.MaxNodes = 500000
	}
	if out.IntTol == 0 {
		out.IntTol = 1e-6
	}
	return out
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status Status
	// X is the incumbent solution (valid for StatusOptimal/StatusFeasible).
	X []float64
	// Obj is the incumbent objective value.
	Obj float64
	// Bound is the root LP relaxation bound (a valid lower bound for
	// minimization).
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored (deterministic
	// for a fixed model and options whenever no wall-clock limit hit).
	Nodes int
	// Workers is the resolved branch-and-bound worker bound the search ran
	// with (1 for a sequential solve).
	Workers int
	// Coefficients is the DILP size that was handed to the LP engine.
	Coefficients int
	// LPIters is the total number of simplex iterations across the root
	// relaxation and every node LP solve. Like Nodes it is deterministic for
	// a fixed model and options whenever no wall-clock limit hit; it is
	// observational and never feeds back into the search.
	LPIters int
	// Rounds is the number of synchronization rounds the search ran (0 when
	// the root disposition resolved the tree).
	Rounds int
	// WarmStarts counts node LP solves that were seeded from their parent's
	// optimal basis and accepted the seed (dual-simplex reinstatement instead
	// of phase-1 from the logical basis). Deterministic, like LPIters.
	WarmStarts int
	// DegenPivots counts degenerate (zero-step) simplex pivots across all LP
	// solves — the kernel's stalling indicator.
	DegenPivots int
	// BoundFlips counts dual iterations resolved by a bound flip rather than
	// a basis exchange across all LP solves — each one skipped an eta-file
	// update. Deterministic, like LPIters.
	BoundFlips int
	// PresolveRows and PresolveCols count the constraint rows and variable
	// columns the root presolve eliminated before the search began; node LPs
	// solve the reduced problem.
	PresolveRows int
	PresolveCols int
	// RootBasis is the root relaxation's optimal basis, populated when
	// Options.WantRootBasis is set (nil when the root did not finish with
	// an optimal basis). It seeds Options.RootBasis of a later re-solve.
	RootBasis *lp.Basis
}

// Gap returns the relative optimality gap of the incumbent versus the root
// bound, or +Inf when no incumbent exists.
func (r *Result) Gap() float64 {
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Abs(r.Obj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	g := (r.Obj - r.Bound) / denom
	if g < 0 {
		return 0
	}
	return g
}
