//go:build !race

package milp

// raceEnabled scales latency bounds in parallel_test.go: race
// instrumentation slows the solver's uninterruptible inner blocks by an
// order of magnitude.
const raceEnabled = false
