package milp

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/lp"
	"spq/internal/par"
)

// The branch-and-bound search is an explicit node pool rather than a
// recursive depth-first dive. Nodes are immutable once created: each carries
// one bound delta (the branching variable's new interval) plus a parent
// pointer, so any worker can materialize a node's full bound vectors into
// private scratch space and solve its LP without coordination. This removes
// the old dive's unbounded goroutine-stack growth (one frame per fixed
// binary) and is what makes concurrent exploration possible at all.
//
// The LP kernel is engaged through three throughput levers (see DESIGN.md
// "LP kernel"):
//
//   - the model is presolved once at the root (lp.PresolveProblem, integer
//     aware) and the whole search runs in the reduced space; solutions are
//     postsolved back before they become incumbents;
//   - every child node carries its parent's optimal basis and each node LP
//     is warm-started from it (dual-simplex reinstatement instead of
//     phase 1), with per-worker lp.Scratch reused across node solves;
//   - branch variables are chosen by pseudocosts seeded from
//     most-fractional, learned from realized objective degradations.
//
// Determinism contract: results (Status, X, Obj, Bound, Nodes) are
// bit-identical for every Options.Parallelism value. The search processes the
// frontier in synchronization rounds of at most roundSize nodes. Within a
// round every node's disposition (prune / branch / incumbent candidate) is a
// pure function of the node and the round-start incumbent snapshot — workers
// never read the live incumbent — so the round's outcome is a deterministic
// map over its nodes and worker count only changes the schedule. Candidates
// are merged back in frontier order, with objective ties broken toward the
// smaller canonical path id (down-branch = 0, up-branch = 1, compared
// lexicographically), so simultaneous equal-objective discoveries in one
// round resolve identically no matter which worker got there first. The new
// kernel state stays inside this contract: a node's warm-start basis is its
// parent's optimal basis — itself a pure function of the parent's bounds,
// seed basis and options, by induction on the tree — and the pseudocost
// table mutates only between rounds, folded in frontier merge order, so
// every in-round pickBranchVar reads the same table snapshot regardless of
// which worker runs it.

// roundSize is the number of frontier nodes evaluated per synchronization
// round. It is a fixed constant, NOT derived from Options.Parallelism or
// GOMAXPROCS: round boundaries decide which incumbent snapshot a node is
// pruned against, so they must be identical for every worker count. Larger
// values expose more parallelism per round; smaller values tighten pruning
// (the snapshot lags the live incumbent by at most one round).
const roundSize = 64

// bbNode is one open branch-and-bound subproblem: the parent's bounds
// narrowed by [lo, hi] on branchVar. Nodes are immutable after creation and
// shared across workers without locks (seedBasis is cleared by the
// single-goroutine merge section once the node has been processed, never
// during a round).
type bbNode struct {
	parent    *bbNode
	branchVar int
	lo, hi    float64
	digit     byte // canonical path digit: 0 = down (≤ floor), 1 = up (≥ ceil)
	depth     int32

	// seedBasis is the parent's optimal basis, the node LP's warm start.
	// It is released (nil'd) after the node is processed so deep trees do
	// not retain one snapshot per ancestor.
	seedBasis *lp.Basis
	// parentObj is the parent's (reduced-space) LP objective and frac the
	// branch variable's fractional part at the parent optimum; together
	// they turn this node's LP bound into a pseudocost observation.
	parentObj float64
	frac      float64
}

// pathOf materializes the node's canonical path id (root = empty). Seeded
// incumbents (InitialX, root rounding) use the empty path, so they win
// objective ties against any search-discovered point — the same "strict
// improvement only" rule the sequential dive applied to them.
func pathOf(n *bbNode) []byte {
	if n == nil {
		return nil
	}
	p := make([]byte, n.depth)
	for a := n; a != nil; a = a.parent {
		p[a.depth-1] = a.digit
	}
	return p
}

// incumbent is a best-known integer-feasible point; x == nil means none.
// x lives in the full model space (postsolved), obj includes the presolve
// objective offset.
type incumbent struct {
	x    []float64
	obj  float64
	path []byte
}

// replaces reports whether cand supersedes cur: strictly better objective,
// or an equal objective with a lexicographically smaller canonical path id.
// bytes.Compare orders a prefix before its extensions, which is the right
// ordering here: a prefix corresponds to a shallower (earlier) discovery.
func replaces(cand, cur incumbent) bool {
	if cand.x == nil {
		return false
	}
	if cur.x == nil {
		return true
	}
	if cand.obj != cur.obj {
		return cand.obj < cur.obj
	}
	return bytes.Compare(cand.path, cur.path) < 0
}

// bbScratch is per-worker reusable state: bound materialization buffers plus
// the worker's lp.Scratch, which the simplex reuses across its node solves
// (basis-inverse backing, eta file, pricing vectors).
type bbScratch struct {
	lo, hi []float64
	stamp  []int // stamp[j] == epoch ⟹ var j already overridden this node
	epoch  int
	lp     *lp.Scratch
}

// pseudocosts is the per-variable branching history: average objective
// degradation per unit of fractional distance, kept separately for the down
// and the up branch. It is read (possibly concurrently) during rounds and
// mutated only between rounds, in frontier merge order, so its state at
// round start is deterministic for every worker count.
type pseudocosts struct {
	downSum, upSum []float64
	downCnt, upCnt []int
	gSum           float64 // global fallback for sides with no history yet
	gCnt           int
}

func newPseudocosts(n int) *pseudocosts {
	return &pseudocosts{
		downSum: make([]float64, n),
		upSum:   make([]float64, n),
		downCnt: make([]int, n),
		upCnt:   make([]int, n),
	}
}

func (pc *pseudocosts) observe(j int, up bool, unit float64) {
	if up {
		pc.upSum[j] += unit
		pc.upCnt[j]++
	} else {
		pc.downSum[j] += unit
		pc.downCnt[j]++
	}
	pc.gSum += unit
	pc.gCnt++
}

// rate returns the estimated per-unit degradation of branching variable j in
// the given direction, falling back to the global average when that side has
// no observations yet.
func (pc *pseudocosts) rate(j int, up bool) float64 {
	if up {
		if pc.upCnt[j] > 0 {
			return pc.upSum[j] / float64(pc.upCnt[j])
		}
	} else if pc.downCnt[j] > 0 {
		return pc.downSum[j] / float64(pc.downCnt[j])
	}
	return pc.gSum / float64(pc.gCnt) // gCnt > 0 whenever rate is consulted
}

// bbResult is the disposition of one processed node.
type bbResult struct {
	done     bool      // false when a limit stopped the worker before this node
	complete bool      // subtree fully resolved (pruned/feasible/infeasible/branched)
	children []*bbNode // open subproblems, in preferred exploration order
	cand     incumbent // integer-feasible point found here (x nil if none)
	lpIters  int       // simplex iterations spent on this node's LP solve
	warm     bool      // the node LP accepted its warm-start basis
	degen    int       // degenerate pivots in this node's LP solve
	flips    int       // dual bound flips in this node's LP solve
	hasObs   bool      // a pseudocost observation was realized at this node
	obsVar   int
	obsUp    bool
	obsUnit  float64
	err      error
}

// search carries the state of one Solve invocation. The incumbent, node
// counter and pseudocost table are touched only between rounds
// (single-goroutine sections); workers communicate exclusively through their
// bbResult slots.
type search struct {
	model  *Model
	pr     *lp.Presolved
	red    *lp.Problem // presolved problem; all node LPs solve this
	opts   Options
	lpOpts lp.Options

	deadline time.Time
	hasDL    bool

	rootLo, rootHi []float64 // reduced-space presolved bounds
	redInteger     []bool    // integrality mask in reduced space
	impLo, impHi   []float64 // root-implied bounds per reduced integer var
	objOffset      float64   // reduced obj + objOffset = full obj

	inc        incumbent
	nodes      int
	lpIters    int // total simplex iterations, accumulated between rounds
	warmStarts int
	degen      int
	flips      int
	rounds     int
	workers    int
	pc         *pseudocosts
	scratches  []*bbScratch
}

// Solve runs branch and bound on the model.
func Solve(m *Model, o *Options) (*Result, error) {
	opts := o.withDefaults()
	prob, err := m.build()
	if err != nil {
		return nil, err
	}
	st := &search{
		model: m,
		opts:  opts,
		inc:   incumbent{obj: math.Inf(1)},
	}
	if opts.TimeLimit > 0 {
		st.deadline = time.Now().Add(opts.TimeLimit)
		st.hasDL = true
	}
	// Node LP solves inherit the caller's LP options plus the search's
	// cancellation channel and deadline, so aborts land mid-iteration. A
	// caller-supplied LP.Cancel/LP.Deadline is kept when the search adds
	// none of its own (the deadline merge keeps whichever is earlier).
	st.lpOpts = opts.LP
	if opts.Cancel != nil {
		st.lpOpts.Cancel = opts.Cancel
	}
	if st.hasDL && (st.lpOpts.Deadline.IsZero() || st.deadline.Before(st.lpOpts.Deadline)) {
		st.lpOpts.Deadline = st.deadline
	}
	st.workers = par.Workers(opts.Parallelism, roundSize)
	if opts.InitialX != nil {
		if obj, ok := st.checkFeasible(opts.InitialX); ok {
			st.inc = incumbent{x: append([]float64(nil), opts.InitialX...), obj: obj}
		}
	}

	// Root presolve: reduce once, search the reduced space. The reductions
	// are integrality-aware, so the reduced problem is an equivalent MILP
	// root and every node bound only tightens it further.
	fullLo := make([]float64, len(m.vars))
	fullHi := make([]float64, len(m.vars))
	integer := make([]bool, len(m.vars))
	for j, v := range m.vars {
		fullLo[j], fullHi[j], integer[j] = v.lo, v.hi, v.integer
	}
	st.pr = lp.PresolveProblem(prob, fullLo, fullHi, integer)
	res := &Result{
		Coefficients: m.NumCoefficients(),
		Workers:      st.workers,
		PresolveRows: st.pr.RowsRemoved,
		PresolveCols: st.pr.ColsRemoved,
	}
	if st.pr.Infeasible {
		if st.inc.x != nil {
			res.Status, res.X, res.Obj, res.Bound = StatusFeasible, st.inc.x, st.inc.obj, math.Inf(1)
			return res, nil
		}
		res.Status, res.Bound = StatusInfeasible, math.Inf(1)
		return res, nil
	}
	if st.pr.Unbounded {
		res.Status, res.Bound = StatusUnbounded, math.Inf(-1)
		return res, nil
	}
	st.red = st.pr.Reduced
	st.objOffset = st.pr.ObjOffset
	st.rootLo = st.pr.Lo
	st.rootHi = st.pr.Hi
	nred := st.red.NumVars()
	st.redInteger = make([]bool, nred)
	for j := 0; j < nred; j++ {
		st.redInteger[j] = integer[st.pr.Col(j)]
	}
	st.pc = newPseudocosts(nred)
	// Root-implied bounds per integer variable: every child interval is
	// intersected with these, and an empty intersection drops the child
	// without an LP solve. Computed once against the root activity ranges —
	// node bounds only tighten, so the implication stays valid everywhere.
	act := st.red.NewRowActivity(st.rootLo, st.rootHi)
	st.impLo = make([]float64, nred)
	st.impHi = make([]float64, nred)
	for j := 0; j < nred; j++ {
		if st.redInteger[j] {
			st.impLo[j], st.impHi[j] = st.red.ImpliedVarBounds(act, j, true)
		} else {
			st.impLo[j], st.impHi[j] = math.Inf(-1), math.Inf(1)
		}
	}

	rootOpts := st.lpOpts
	rootOpts.WantBasis = true
	rootOpts.Basis = st.opts.RootBasis
	rootOpts.Scratch = st.scratch(0).lp
	rootSol, err := lp.SolveWithBounds(st.red, st.rootLo, st.rootHi, &rootOpts)
	if err != nil {
		return nil, err
	}
	if rootSol.WarmStarted {
		st.warmStarts++
	}
	if st.opts.WantRootBasis {
		res.RootBasis = rootSol.Basis
	}
	st.nodes = 1
	st.lpIters = rootSol.Iters
	st.degen = rootSol.DegenPivots
	st.flips = rootSol.BoundFlips
	res.Bound = rootSol.Obj + st.objOffset
	res.LPIters = st.lpIters
	res.DegenPivots = st.degen
	res.BoundFlips = st.flips
	switch rootSol.Status {
	case lp.StatusInfeasible:
		if st.inc.x != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.inc.x, st.inc.obj
			return res, nil
		}
		res.Status = StatusInfeasible
		return res, nil
	case lp.StatusUnbounded:
		res.Status = StatusUnbounded
		return res, nil
	case lp.StatusIterLimit, lp.StatusCancelled:
		if st.inc.x != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.inc.x, st.inc.obj
			return res, nil
		}
		res.Status = StatusLimit
		return res, nil
	}
	// Rounding heuristic on the root relaxation for an early incumbent.
	st.tryRounding(rootSol.X)

	complete, err := st.run(rootSol)
	if err != nil {
		return nil, err
	}
	res.Nodes = st.nodes
	res.LPIters = st.lpIters
	res.Rounds = st.rounds
	res.WarmStarts = st.warmStarts
	res.DegenPivots = st.degen
	res.BoundFlips = st.flips
	switch {
	case st.inc.x != nil && complete:
		res.Status = StatusOptimal
		res.X, res.Obj = st.inc.x, st.inc.obj
	case st.inc.x != nil:
		res.Status = StatusFeasible
		res.X, res.Obj = st.inc.x, st.inc.obj
	case complete:
		res.Status = StatusInfeasible
	default:
		res.Status = StatusLimit
	}
	return res, nil
}

// run explores the tree under the already-solved root. It returns whether
// the search space was exhausted (i.e. the incumbent, if any, is exact).
func (st *search) run(rootSol *lp.Solution) (bool, error) {
	rootRes := st.dispose(nil, rootSol, st.inc, st.rootLo, st.rootHi)
	if replaces(rootRes.cand, st.inc) {
		st.inc = rootRes.cand
	}
	complete := rootRes.complete
	frontier := rootRes.children

	for len(frontier) > 0 {
		if st.interrupted() {
			return false, nil
		}
		budget := st.opts.MaxNodes - st.nodes
		if budget <= 0 {
			return false, nil
		}
		k := roundSize
		if k > len(frontier) {
			k = len(frontier)
		}
		if k > budget {
			k = budget
		}
		results := make([]bbResult, k)
		st.processRound(frontier[:k], results)
		st.rounds++

		// Merge in frontier order: deterministic regardless of which worker
		// produced which result. Children are queued ahead of the untouched
		// frontier tail so exploration stays depth-first-shaped. Pseudocost
		// observations fold in here, in the same order, so the table every
		// worker reads next round is schedule-independent.
		next := make([]*bbNode, 0, len(frontier)+k)
		cut := false
		for i := range results {
			r := &results[i]
			st.lpIters += r.lpIters // zero for slots a limit left unwritten
			if r.err != nil {
				return false, r.err
			}
			if !r.done {
				cut = true // a limit stopped the round partway
				continue
			}
			st.nodes++
			if r.warm {
				st.warmStarts++
			}
			st.degen += r.degen
			st.flips += r.flips
			if r.hasObs {
				st.pc.observe(r.obsVar, r.obsUp, r.obsUnit)
			}
			// The node is resolved; release its warm-start snapshot (its
			// children carry their own).
			frontier[i].seedBasis = nil
			if !r.complete {
				complete = false
			}
			if replaces(r.cand, st.inc) {
				st.inc = r.cand
			}
			next = append(next, r.children...)
		}
		if cut {
			return false, nil
		}
		frontier = append(next, frontier[k:]...)
	}
	return complete, nil
}

// processRound evaluates one round of frontier nodes against a fixed
// incumbent snapshot. Workers steal the next unclaimed node from the round's
// shared pool via an atomic cursor; results land in per-node slots.
func (st *search) processRound(round []*bbNode, results []bbResult) {
	snap := st.inc
	workers := st.workers
	if workers > len(round) {
		workers = len(round)
	}
	if workers <= 1 {
		sc := st.scratch(0)
		for i, n := range round {
			if st.interrupted() {
				return
			}
			results[i] = st.process(n, snap, sc)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sc := st.scratch(w)
		wg.Add(1)
		go func(sc *bbScratch) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(round) || st.interrupted() {
					return
				}
				results[i] = st.process(round[i], snap, sc)
			}
		}(sc)
	}
	wg.Wait()
}

// scratch returns worker w's reusable buffers, allocating on first use.
// Called only between rounds / before worker launch.
func (st *search) scratch(w int) *bbScratch {
	for len(st.scratches) <= w {
		st.scratches = append(st.scratches, nil)
	}
	if st.scratches[w] == nil {
		n := st.red.NumVars()
		st.scratches[w] = &bbScratch{
			lo:    make([]float64, n),
			hi:    make([]float64, n),
			stamp: make([]int, n),
			lp:    &lp.Scratch{},
		}
	}
	return st.scratches[w]
}

// process materializes a node's bounds, solves its LP relaxation warm-started
// from the parent basis, and returns its disposition relative to the
// incumbent snapshot.
func (st *search) process(n *bbNode, snap incumbent, sc *bbScratch) bbResult {
	sc.epoch++
	copy(sc.lo, st.rootLo)
	copy(sc.hi, st.rootHi)
	// Walk leaf → root; the first (deepest) override of a variable wins,
	// since branch intervals on one variable nest along a path.
	for a := n; a != nil; a = a.parent {
		if sc.stamp[a.branchVar] != sc.epoch {
			sc.stamp[a.branchVar] = sc.epoch
			sc.lo[a.branchVar], sc.hi[a.branchVar] = a.lo, a.hi
		}
	}
	opts := st.lpOpts
	opts.Basis = n.seedBasis
	opts.WantBasis = true
	opts.Scratch = sc.lp
	sol, err := lp.SolveWithBounds(st.red, sc.lo, sc.hi, &opts)
	if err != nil {
		return bbResult{done: true, err: err}
	}
	out := st.dispose(n, sol, snap, sc.lo, sc.hi)
	out.lpIters = sol.Iters
	out.warm = sol.WarmStarted
	out.degen = sol.DegenPivots
	out.flips = sol.BoundFlips
	// Realized objective degradation → pseudocost observation. Only optimal
	// node solves produce one (a pruned-by-status or limited solve has no
	// trustworthy bound).
	if sol.Status == lp.StatusOptimal {
		dist := n.frac
		if n.digit == 1 {
			dist = 1 - n.frac
		}
		if dist > 1e-9 {
			deg := sol.Obj - n.parentObj
			if deg < 0 {
				deg = 0
			}
			out.hasObs = true
			out.obsVar = n.branchVar
			out.obsUp = n.digit == 1
			out.obsUnit = deg / dist
		}
	}
	return out
}

// dispose classifies a solved node: prune, record an integer-feasible
// candidate, or branch into children. It must depend only on its arguments
// and between-round state (never the live incumbent) to keep rounds
// deterministic.
func (st *search) dispose(n *bbNode, sol *lp.Solution, snap incumbent, lo, hi []float64) bbResult {
	switch sol.Status {
	case lp.StatusInfeasible:
		return bbResult{done: true, complete: true}
	case lp.StatusIterLimit, lp.StatusCancelled, lp.StatusUnbounded:
		// The subtree's bound cannot be trusted: leave it unresolved.
		return bbResult{done: true}
	}
	adjObj := sol.Obj + st.objOffset
	if snap.x != nil && adjObj >= snap.obj-1e-9 {
		return bbResult{done: true, complete: true} // bound prune
	}
	if st.gapMet(snap, adjObj) {
		return bbResult{done: true, complete: true}
	}
	bv := st.pickBranchVar(sol.X)
	if bv < 0 {
		// Integer feasible: candidate incumbent (postsolved to full space).
		return bbResult{done: true, complete: true,
			cand: incumbent{x: st.pr.Postsolve(st.roundedCopy(sol.X)), obj: adjObj, path: pathOf(n)}}
	}
	val := sol.X[bv]
	floorV := math.Floor(val)
	depth := int32(1)
	if n != nil {
		depth = n.depth + 1
	}
	// Child intervals, intersected with the root-implied bounds of the
	// branch variable; an empty intersection proves the child's box holds no
	// row-feasible point and drops it without an LP solve.
	dLo, dHi := lo[bv], floorV
	uLo, uHi := floorV+1, hi[bv]
	if st.impLo[bv] > dLo {
		dLo = st.impLo[bv]
	}
	if st.impHi[bv] < dHi {
		dHi = st.impHi[bv]
	}
	if st.impLo[bv] > uLo {
		uLo = st.impLo[bv]
	}
	if st.impHi[bv] < uHi {
		uHi = st.impHi[bv]
	}
	frac := val - floorV
	down := &bbNode{parent: n, branchVar: bv, lo: dLo, hi: dHi, digit: 0, depth: depth,
		seedBasis: sol.Basis, parentObj: sol.Obj, frac: frac}
	up := &bbNode{parent: n, branchVar: bv, lo: uLo, hi: uHi, digit: 1, depth: depth,
		seedBasis: sol.Basis, parentObj: sol.Obj, frac: frac}
	// Explore the side nearer the LP value first.
	first, second := down, up
	if frac > 0.5 {
		first, second = up, down
	}
	children := make([]*bbNode, 0, 2)
	for _, c := range []*bbNode{first, second} {
		if c.lo <= c.hi {
			children = append(children, c)
		}
	}
	return bbResult{done: true, complete: true, children: children}
}

// interrupted reports whether the search hit its wall-clock limit or was
// cancelled. Safe for concurrent use (reads immutable fields only).
func (st *search) interrupted() bool {
	if st.opts.Cancel != nil {
		select {
		case <-st.opts.Cancel:
			return true
		default:
		}
	}
	return st.hasDL && time.Now().After(st.deadline)
}

// gapMet reports whether the snapshot incumbent is within the requested
// relative gap of the given bound.
func (st *search) gapMet(snap incumbent, bound float64) bool {
	if snap.x == nil || st.opts.RelGap <= 0 {
		return false
	}
	denom := math.Abs(snap.obj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return (snap.obj-bound)/denom <= st.opts.RelGap
}

// pickBranchVar selects the branching variable among fractional integer
// variables of the reduced-space point x, or returns -1 if the point is
// integer feasible. With no pseudocost history yet it picks the most
// fractional variable; once observations exist it maximizes the standard
// pseudocost product score max(pcDown·f, ε)·max(pcUp·(1−f), ε), sides
// without history falling back to the global average. The strict >
// comparison ties toward the lowest index, and the table is only mutated
// between rounds, so the choice is deterministic for every worker count.
func (st *search) pickBranchVar(x []float64) int {
	usePC := st.pc != nil && st.pc.gCnt > 0
	best := -1
	bestScore := math.Inf(-1)
	for j, isInt := range st.redInteger {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if math.Min(f, 1-f) <= st.opts.IntTol {
			continue // effectively integral
		}
		var score float64
		if usePC {
			const eps = 1e-6
			score = math.Max(st.pc.rate(j, false)*f, eps) * math.Max(st.pc.rate(j, true)*(1-f), eps)
		} else {
			score = -math.Abs(f - 0.5) // most-fractional branching
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// roundedCopy snaps near-integer values of integer variables exactly
// (reduced space).
func (st *search) roundedCopy(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, isInt := range st.redInteger {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// tryRounding rounds the root relaxation point (reduced space), clamps it
// into the root box, and installs the postsolved point as incumbent if it is
// feasible for the full model.
func (st *search) tryRounding(x []float64) {
	cand := st.roundedCopy(x)
	for j := range cand {
		if cand[j] < st.rootLo[j] {
			cand[j] = st.rootLo[j]
		}
		if cand[j] > st.rootHi[j] {
			cand[j] = st.rootHi[j]
		}
	}
	full := st.pr.Postsolve(cand)
	if obj, ok := st.checkFeasible(full); ok {
		c := incumbent{x: full, obj: obj}
		if replaces(c, st.inc) {
			st.inc = c
		}
	}
}

// checkFeasible verifies a candidate point against all rows, indicator
// constraints, bounds, and integrality in the full model space; it returns
// the objective value.
func (st *search) checkFeasible(x []float64) (float64, bool) {
	const tol = 1e-6
	if len(x) != len(st.model.vars) {
		return 0, false
	}
	obj := 0.0
	for j, v := range st.model.vars {
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return 0, false
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > tol {
			return 0, false
		}
		obj += v.obj * x[j]
	}
	for _, r := range st.model.rows {
		dot := 0.0
		for k, j := range r.idxs {
			dot += r.coefs[k] * x[j]
		}
		if dot < r.lo-tol || dot > r.hi+tol {
			return 0, false
		}
	}
	for _, ind := range st.model.indicators {
		if math.Round(x[ind.bin]) != 1 {
			continue
		}
		dot := 0.0
		for k, j := range ind.idxs {
			dot += ind.coefs[k] * x[j]
		}
		if ind.ge && dot < ind.rhs-tol {
			return 0, false
		}
		if !ind.ge && dot > ind.rhs+tol {
			return 0, false
		}
	}
	return obj, true
}
