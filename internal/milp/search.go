package milp

import (
	"bytes"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/lp"
	"spq/internal/par"
)

// The branch-and-bound search is an explicit node pool rather than a
// recursive depth-first dive. Nodes are immutable once created: each carries
// one bound delta (the branching variable's new interval) plus a parent
// pointer, so any worker can materialize a node's full bound vectors into
// private scratch space and solve its LP without coordination. This removes
// the old dive's unbounded goroutine-stack growth (one frame per fixed
// binary) and is what makes concurrent exploration possible at all.
//
// Determinism contract: results (Status, X, Obj, Bound, Nodes) are
// bit-identical for every Options.Parallelism value. The search processes the
// frontier in synchronization rounds of at most roundSize nodes. Within a
// round every node's disposition (prune / branch / incumbent candidate) is a
// pure function of the node and the round-start incumbent snapshot — workers
// never read the live incumbent — so the round's outcome is a deterministic
// map over its nodes and worker count only changes the schedule. Candidates
// are merged back in frontier order, with objective ties broken toward the
// smaller canonical path id (down-branch = 0, up-branch = 1, compared
// lexicographically), so simultaneous equal-objective discoveries in one
// round resolve identically no matter which worker got there first.

// roundSize is the number of frontier nodes evaluated per synchronization
// round. It is a fixed constant, NOT derived from Options.Parallelism or
// GOMAXPROCS: round boundaries decide which incumbent snapshot a node is
// pruned against, so they must be identical for every worker count. Larger
// values expose more parallelism per round; smaller values tighten pruning
// (the snapshot lags the live incumbent by at most one round).
const roundSize = 64

// bbNode is one open branch-and-bound subproblem: the parent's bounds
// narrowed by [lo, hi] on branchVar. Nodes are immutable after creation and
// shared across workers without locks.
type bbNode struct {
	parent    *bbNode
	branchVar int
	lo, hi    float64
	digit     byte // canonical path digit: 0 = down (≤ floor), 1 = up (≥ ceil)
	depth     int32
}

// pathOf materializes the node's canonical path id (root = empty). Seeded
// incumbents (InitialX, root rounding) use the empty path, so they win
// objective ties against any search-discovered point — the same "strict
// improvement only" rule the sequential dive applied to them.
func pathOf(n *bbNode) []byte {
	if n == nil {
		return nil
	}
	p := make([]byte, n.depth)
	for a := n; a != nil; a = a.parent {
		p[a.depth-1] = a.digit
	}
	return p
}

// incumbent is a best-known integer-feasible point; x == nil means none.
type incumbent struct {
	x    []float64
	obj  float64
	path []byte
}

// replaces reports whether cand supersedes cur: strictly better objective,
// or an equal objective with a lexicographically smaller canonical path id.
// bytes.Compare orders a prefix before its extensions, which is the right
// ordering here: a prefix corresponds to a shallower (earlier) discovery.
func replaces(cand, cur incumbent) bool {
	if cand.x == nil {
		return false
	}
	if cur.x == nil {
		return true
	}
	if cand.obj != cur.obj {
		return cand.obj < cur.obj
	}
	return bytes.Compare(cand.path, cur.path) < 0
}

// bbScratch is per-worker reusable state for materializing node bounds.
type bbScratch struct {
	lo, hi []float64
	stamp  []int // stamp[j] == epoch ⟹ var j already overridden this node
	epoch  int
}

// bbResult is the disposition of one processed node.
type bbResult struct {
	done     bool      // false when a limit stopped the worker before this node
	complete bool      // subtree fully resolved (pruned/feasible/infeasible/branched)
	children []*bbNode // open subproblems, in preferred exploration order
	cand     incumbent // integer-feasible point found here (x nil if none)
	lpIters  int       // simplex iterations spent on this node's LP solve
	err      error
}

// search carries the state of one Solve invocation. The incumbent and node
// counter are touched only between rounds (single-goroutine sections);
// workers communicate exclusively through their bbResult slots.
type search struct {
	model  *Model
	prob   *lp.Problem
	opts   Options
	lpOpts lp.Options

	deadline time.Time
	hasDL    bool

	rootLo, rootHi []float64

	inc       incumbent
	nodes     int
	lpIters   int // total simplex iterations, accumulated between rounds
	rounds    int
	workers   int
	scratches []*bbScratch
}

// Solve runs branch and bound on the model.
func Solve(m *Model, o *Options) (*Result, error) {
	opts := o.withDefaults()
	prob, err := m.build()
	if err != nil {
		return nil, err
	}
	st := &search{
		model:  m,
		prob:   prob,
		opts:   opts,
		inc:    incumbent{obj: math.Inf(1)},
		rootLo: make([]float64, len(m.vars)),
		rootHi: make([]float64, len(m.vars)),
	}
	for j, v := range m.vars {
		st.rootLo[j] = v.lo
		st.rootHi[j] = v.hi
	}
	if opts.TimeLimit > 0 {
		st.deadline = time.Now().Add(opts.TimeLimit)
		st.hasDL = true
	}
	// Node LP solves inherit the caller's LP options plus the search's
	// cancellation channel and deadline, so aborts land mid-iteration. A
	// caller-supplied LP.Cancel/LP.Deadline is kept when the search adds
	// none of its own (the deadline merge keeps whichever is earlier).
	st.lpOpts = opts.LP
	if opts.Cancel != nil {
		st.lpOpts.Cancel = opts.Cancel
	}
	if st.hasDL && (st.lpOpts.Deadline.IsZero() || st.deadline.Before(st.lpOpts.Deadline)) {
		st.lpOpts.Deadline = st.deadline
	}
	st.workers = par.Workers(opts.Parallelism, roundSize)
	if opts.InitialX != nil {
		if obj, ok := st.checkFeasible(opts.InitialX); ok {
			st.inc = incumbent{x: append([]float64(nil), opts.InitialX...), obj: obj}
		}
	}

	rootSol, err := lp.SolveWithBounds(prob, st.rootLo, st.rootHi, &st.lpOpts)
	if err != nil {
		return nil, err
	}
	st.nodes = 1
	st.lpIters = rootSol.Iters
	res := &Result{Bound: rootSol.Obj, Coefficients: m.NumCoefficients(),
		Workers: st.workers, LPIters: st.lpIters}
	switch rootSol.Status {
	case lp.StatusInfeasible:
		if st.inc.x != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.inc.x, st.inc.obj
			return res, nil
		}
		res.Status = StatusInfeasible
		return res, nil
	case lp.StatusUnbounded:
		res.Status = StatusUnbounded
		return res, nil
	case lp.StatusIterLimit, lp.StatusCancelled:
		if st.inc.x != nil {
			res.Status, res.X, res.Obj = StatusFeasible, st.inc.x, st.inc.obj
			return res, nil
		}
		res.Status = StatusLimit
		return res, nil
	}
	// Rounding heuristic on the root relaxation for an early incumbent.
	st.tryRounding(rootSol.X)

	complete, err := st.run(rootSol)
	if err != nil {
		return nil, err
	}
	res.Nodes = st.nodes
	res.LPIters = st.lpIters
	res.Rounds = st.rounds
	switch {
	case st.inc.x != nil && complete:
		res.Status = StatusOptimal
		res.X, res.Obj = st.inc.x, st.inc.obj
	case st.inc.x != nil:
		res.Status = StatusFeasible
		res.X, res.Obj = st.inc.x, st.inc.obj
	case complete:
		res.Status = StatusInfeasible
	default:
		res.Status = StatusLimit
	}
	return res, nil
}

// run explores the tree under the already-solved root. It returns whether
// the search space was exhausted (i.e. the incumbent, if any, is exact).
func (st *search) run(rootSol *lp.Solution) (bool, error) {
	rootRes := st.dispose(nil, rootSol, st.inc, st.rootLo, st.rootHi)
	if replaces(rootRes.cand, st.inc) {
		st.inc = rootRes.cand
	}
	complete := rootRes.complete
	frontier := rootRes.children

	for len(frontier) > 0 {
		if st.interrupted() {
			return false, nil
		}
		budget := st.opts.MaxNodes - st.nodes
		if budget <= 0 {
			return false, nil
		}
		k := roundSize
		if k > len(frontier) {
			k = len(frontier)
		}
		if k > budget {
			k = budget
		}
		results := make([]bbResult, k)
		st.processRound(frontier[:k], results)
		st.rounds++

		// Merge in frontier order: deterministic regardless of which worker
		// produced which result. Children are queued ahead of the untouched
		// frontier tail so exploration stays depth-first-shaped.
		next := make([]*bbNode, 0, len(frontier)+k)
		cut := false
		for i := range results {
			r := &results[i]
			st.lpIters += r.lpIters // zero for slots a limit left unwritten
			if r.err != nil {
				return false, r.err
			}
			if !r.done {
				cut = true // a limit stopped the round partway
				continue
			}
			st.nodes++
			if !r.complete {
				complete = false
			}
			if replaces(r.cand, st.inc) {
				st.inc = r.cand
			}
			next = append(next, r.children...)
		}
		if cut {
			return false, nil
		}
		frontier = append(next, frontier[k:]...)
	}
	return complete, nil
}

// processRound evaluates one round of frontier nodes against a fixed
// incumbent snapshot. Workers steal the next unclaimed node from the round's
// shared pool via an atomic cursor; results land in per-node slots.
func (st *search) processRound(round []*bbNode, results []bbResult) {
	snap := st.inc
	workers := st.workers
	if workers > len(round) {
		workers = len(round)
	}
	if workers <= 1 {
		sc := st.scratch(0)
		for i, n := range round {
			if st.interrupted() {
				return
			}
			results[i] = st.process(n, snap, sc)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sc := st.scratch(w)
		wg.Add(1)
		go func(sc *bbScratch) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(round) || st.interrupted() {
					return
				}
				results[i] = st.process(round[i], snap, sc)
			}
		}(sc)
	}
	wg.Wait()
}

// scratch returns worker w's reusable bound buffers, allocating on first use.
// Called only between rounds / before worker launch.
func (st *search) scratch(w int) *bbScratch {
	for len(st.scratches) <= w {
		st.scratches = append(st.scratches, nil)
	}
	if st.scratches[w] == nil {
		n := len(st.model.vars)
		st.scratches[w] = &bbScratch{
			lo:    make([]float64, n),
			hi:    make([]float64, n),
			stamp: make([]int, n),
		}
	}
	return st.scratches[w]
}

// process materializes a node's bounds, solves its LP relaxation, and
// returns its disposition relative to the incumbent snapshot.
func (st *search) process(n *bbNode, snap incumbent, sc *bbScratch) bbResult {
	sc.epoch++
	copy(sc.lo, st.rootLo)
	copy(sc.hi, st.rootHi)
	// Walk leaf → root; the first (deepest) override of a variable wins,
	// since branch intervals on one variable nest along a path.
	for a := n; a != nil; a = a.parent {
		if sc.stamp[a.branchVar] != sc.epoch {
			sc.stamp[a.branchVar] = sc.epoch
			sc.lo[a.branchVar], sc.hi[a.branchVar] = a.lo, a.hi
		}
	}
	sol, err := lp.SolveWithBounds(st.prob, sc.lo, sc.hi, &st.lpOpts)
	if err != nil {
		return bbResult{done: true, err: err}
	}
	out := st.dispose(n, sol, snap, sc.lo, sc.hi)
	out.lpIters = sol.Iters
	return out
}

// dispose classifies a solved node: prune, record an integer-feasible
// candidate, or branch into children. It must depend only on its arguments
// (never the live incumbent) to keep rounds deterministic.
func (st *search) dispose(n *bbNode, sol *lp.Solution, snap incumbent, lo, hi []float64) bbResult {
	switch sol.Status {
	case lp.StatusInfeasible:
		return bbResult{done: true, complete: true}
	case lp.StatusIterLimit, lp.StatusCancelled, lp.StatusUnbounded:
		// The subtree's bound cannot be trusted: leave it unresolved.
		return bbResult{done: true}
	}
	if snap.x != nil && sol.Obj >= snap.obj-1e-9 {
		return bbResult{done: true, complete: true} // bound prune
	}
	if st.gapMet(snap, sol.Obj) {
		return bbResult{done: true, complete: true}
	}
	bv := st.pickBranchVar(sol.X)
	if bv < 0 {
		// Integer feasible: candidate incumbent.
		return bbResult{done: true, complete: true,
			cand: incumbent{x: st.roundedCopy(sol.X), obj: sol.Obj, path: pathOf(n)}}
	}
	val := sol.X[bv]
	floorV := math.Floor(val)
	depth := int32(1)
	if n != nil {
		depth = n.depth + 1
	}
	down := &bbNode{parent: n, branchVar: bv, lo: lo[bv], hi: floorV, digit: 0, depth: depth}
	up := &bbNode{parent: n, branchVar: bv, lo: floorV + 1, hi: hi[bv], digit: 1, depth: depth}
	// Explore the side nearer the LP value first.
	first, second := down, up
	if val-floorV > 0.5 {
		first, second = up, down
	}
	children := make([]*bbNode, 0, 2)
	for _, c := range []*bbNode{first, second} {
		if c.lo <= c.hi {
			children = append(children, c)
		}
	}
	return bbResult{done: true, complete: true, children: children}
}

// interrupted reports whether the search hit its wall-clock limit or was
// cancelled. Safe for concurrent use (reads immutable fields only).
func (st *search) interrupted() bool {
	if st.opts.Cancel != nil {
		select {
		case <-st.opts.Cancel:
			return true
		default:
		}
	}
	return st.hasDL && time.Now().After(st.deadline)
}

// gapMet reports whether the snapshot incumbent is within the requested
// relative gap of the given bound.
func (st *search) gapMet(snap incumbent, bound float64) bool {
	if snap.x == nil || st.opts.RelGap <= 0 {
		return false
	}
	denom := math.Abs(snap.obj)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return (snap.obj-bound)/denom <= st.opts.RelGap
}

// pickBranchVar returns the most fractional integer variable, or -1 if the
// point is integer feasible.
func (st *search) pickBranchVar(x []float64) int {
	best := -1
	bestScore := math.Inf(1) // |frac − 0.5|: most-fractional branching
	for j, v := range st.model.vars {
		if !v.integer {
			continue
		}
		f := x[j] - math.Floor(x[j])
		if math.Min(f, 1-f) <= st.opts.IntTol {
			continue // effectively integral
		}
		score := math.Abs(f - 0.5)
		if score < bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// roundedCopy snaps near-integer values of integer variables exactly.
func (st *search) roundedCopy(x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j, v := range st.model.vars {
		if v.integer {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

// tryRounding rounds the root relaxation point and installs it as incumbent
// if it is feasible for the full model.
func (st *search) tryRounding(x []float64) {
	cand := st.roundedCopy(x)
	for j := range cand {
		if cand[j] < st.rootLo[j] {
			cand[j] = st.rootLo[j]
		}
		if cand[j] > st.rootHi[j] {
			cand[j] = st.rootHi[j]
		}
	}
	if obj, ok := st.checkFeasible(cand); ok {
		c := incumbent{x: cand, obj: obj}
		if replaces(c, st.inc) {
			st.inc = c
		}
	}
}

// checkFeasible verifies a candidate point against all rows, indicator
// constraints, bounds, and integrality; it returns the objective value.
func (st *search) checkFeasible(x []float64) (float64, bool) {
	const tol = 1e-6
	if len(x) != len(st.model.vars) {
		return 0, false
	}
	obj := 0.0
	for j, v := range st.model.vars {
		if x[j] < v.lo-tol || x[j] > v.hi+tol {
			return 0, false
		}
		if v.integer && math.Abs(x[j]-math.Round(x[j])) > tol {
			return 0, false
		}
		obj += v.obj * x[j]
	}
	for _, r := range st.model.rows {
		dot := 0.0
		for k, j := range r.idxs {
			dot += r.coefs[k] * x[j]
		}
		if dot < r.lo-tol || dot > r.hi+tol {
			return 0, false
		}
	}
	for _, ind := range st.model.indicators {
		if math.Round(x[ind.bin]) != 1 {
			continue
		}
		dot := 0.0
		for k, j := range ind.idxs {
			dot += ind.coefs[k] * x[j]
		}
		if ind.ge && dot < ind.rhs-tol {
			return 0, false
		}
		if !ind.ge && dot > ind.rhs+tol {
			return 0, false
		}
	}
	return obj, true
}
