//go:build race

package milp

// See race_off_test.go.
const raceEnabled = true
