package milp

import (
	"fmt"
	"math"
	"testing"
	"time"

	"spq/internal/rng"
)

// workerMatrix is the determinism corpus's worker counts: sequential, a
// small pool, and more workers than a round typically holds.
var workerMatrix = []int{1, 2, 8}

// solveWith solves the model with the given worker count and fails the test
// on error.
func solveWith(t *testing.T, m *Model, workers int, base *Options) *Result {
	t.Helper()
	o := Options{}
	if base != nil {
		o = *base
	}
	o.Parallelism = workers
	res, err := Solve(m, &o)
	if err != nil {
		t.Fatalf("Solve(workers=%d): %v", workers, err)
	}
	return res
}

// assertBitIdentical requires the full determinism contract: Status, Obj,
// Bound, Nodes, and every element of X equal exactly (==, not within
// tolerance) across worker counts.
func assertBitIdentical(t *testing.T, tag string, base, got *Result, workers int) {
	t.Helper()
	if got.Status != base.Status {
		t.Fatalf("%s: workers=%d status %v != sequential %v", tag, workers, got.Status, base.Status)
	}
	if got.Obj != base.Obj {
		t.Fatalf("%s: workers=%d obj %v != sequential %v", tag, workers, got.Obj, base.Obj)
	}
	if got.Bound != base.Bound {
		t.Fatalf("%s: workers=%d bound %v != sequential %v", tag, workers, got.Bound, base.Bound)
	}
	if got.Nodes != base.Nodes {
		t.Fatalf("%s: workers=%d nodes %d != sequential %d", tag, workers, got.Nodes, base.Nodes)
	}
	if (got.X == nil) != (base.X == nil) || len(got.X) != len(base.X) {
		t.Fatalf("%s: workers=%d X shape diverged", tag, workers)
	}
	for j := range base.X {
		if got.X[j] != base.X[j] {
			t.Fatalf("%s: workers=%d X[%d] = %v != sequential %v", tag, workers, j, got.X[j], base.X[j])
		}
	}
}

// randomIPModel mirrors the TestRandomIPAgainstBruteForce generator: small
// integer programs with range rows.
func randomIPModel(s *rng.Stream) *Model {
	n := 2 + s.IntN(3)
	m := NewModel()
	idxs := make([]int, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 2, math.Round((s.Float64()*6-3)*10)/10, true, "x")
	}
	nrows := 1 + s.IntN(2)
	for r := 0; r < nrows; r++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = math.Round((s.Float64()*4-2)*10) / 10
		}
		if s.IntN(2) == 0 {
			m.AddRow(idxs, coefs, math.Inf(-1), s.Float64()*4)
		} else {
			m.AddRow(idxs, coefs, -s.Float64()*2, math.Inf(1))
		}
	}
	return m
}

// randomIndicatorModel mirrors the big-M property-test generator: indicator
// constraints under a counting row, the SAA chance-constraint shape.
func randomIndicatorModel(s *rng.Stream) *Model {
	const n, scenarios = 3, 6
	need := 1 + s.IntN(scenarios)
	m := NewModel()
	xs := make([]int, n)
	for j := 0; j < n; j++ {
		xs[j] = m.AddVar(0, 2, -(s.Float64() + 0.1), true, "x")
	}
	ys := make([]int, scenarios)
	ones := make([]float64, scenarios)
	for k := 0; k < scenarios; k++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = s.Float64()*4 - 2
		}
		ys[k] = m.AddBinary(0, "y")
		m.AddIndicatorGE(ys[k], xs, coefs, 0.5)
		ones[k] = 1
	}
	m.AddRow(ys, ones, float64(need), Inf)
	return m
}

// knapsackModel is a branching-heavy complete-search instance.
func knapsackModel(s *rng.Stream, n int, cap float64) *Model {
	m := NewModel()
	idxs := make([]int, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = 1 + s.Float64()*3
	}
	m.AddRow(idxs, w, -Inf, cap)
	return m
}

// TestParallelDeterminismMatrix is the PR's determinism acceptance test: the
// property-test corpus solved with worker counts {1, 2, 8} must be
// bit-identical — Status, Obj, Bound, Nodes, and X compared with == — for
// every instance. CI additionally runs this under -cpu 1,2,4 -race.
func TestParallelDeterminismMatrix(t *testing.T) {
	type instance struct {
		tag   string
		model *Model
		opts  *Options
	}
	var corpus []instance

	s := rng.NewStream(11)
	for trial := 0; trial < 25; trial++ {
		corpus = append(corpus, instance{tag: fmt.Sprintf("ip%d", trial), model: randomIPModel(s)})
	}
	s = rng.NewStream(8)
	for trial := 0; trial < 15; trial++ {
		corpus = append(corpus, instance{tag: fmt.Sprintf("ind%d", trial), model: randomIndicatorModel(s)})
	}
	s = rng.NewStream(5)
	corpus = append(corpus,
		instance{tag: "knap20", model: knapsackModel(s, 20, 10)},
		// RelGap pruning must be deterministic too: it is evaluated against
		// the round-start snapshot, never the live incumbent.
		instance{tag: "knap18gap", model: knapsackModel(s, 18, 9), opts: &Options{RelGap: 0.05}},
		// A node budget binding mid-search is deterministic as long as no
		// wall-clock limit is involved: rounds are cut at exact node counts.
		instance{tag: "knap20nodes", model: knapsackModel(s, 20, 11), opts: &Options{MaxNodes: 50}},
	)

	for _, inst := range corpus {
		base := solveWith(t, inst.model, 1, inst.opts)
		for _, w := range workerMatrix[1:] {
			got := solveWith(t, inst.model, w, inst.opts)
			assertBitIdentical(t, inst.tag, base, got, w)
		}
		// Negative parallelism (one worker per CPU) is part of the contract.
		got := solveWith(t, inst.model, -1, inst.opts)
		assertBitIdentical(t, inst.tag, base, got, -1)
	}
}

// TestDeepTreeNodePool is the recursion-depth regression test: a chain
// instance whose search tree is thousands of levels deep. The old recursive
// dive grew the goroutine stack by one frame per fixed binary; the explicit
// node pool keeps ancestry on the heap. Run with a worker pool under -race
// (the CI milp-race job) this also exercises concurrent node processing on a
// deep frontier.
func TestDeepTreeNodePool(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1500
	}
	m := NewModel()
	idxs := make([]int, n)
	ones := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddBinary(-1, "x") // maximize Σx …
		ones[j] = 1
	}
	// … subject to Σx ≤ n − 0.5: integer optimum n−1. The half-integral
	// right-hand side keeps one binary fractional in every relaxation, and
	// the slack per variable is too loose for root presolve's bound
	// tightening to collapse the instance (implied x_j ≤ n − 0.5 is weaker
	// than the binary box), so the search must dive a chain that fixes one
	// variable per level.
	m.AddRow(idxs, ones, -Inf, float64(n)-0.5)

	res, err := Solve(m, &Options{Parallelism: 4, MaxNodes: 4*n + 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if res.Obj != -float64(n-1) {
		t.Fatalf("obj = %v, want %v", res.Obj, -float64(n-1))
	}
	sum := 0.0
	for _, x := range res.X {
		sum += x
	}
	if sum != float64(n-1) {
		t.Fatalf("Σx = %v, want %d", sum, n-1)
	}
	if res.Nodes < n {
		t.Fatalf("explored %d nodes; expected a chain of depth ≥ %d", res.Nodes, n)
	}
}

// TestKernelCountersPopulated asserts the LP-kernel counters surface through
// Result: a branching-heavy solve must warm-start most of its node LPs from
// parent bases (this is the CI lp-kernel job's hit-rate > 0 assertion), and a
// model with redundant rows and fixed columns must report root-presolve
// reductions. Both are deterministic, so exact reproducibility is asserted too.
func TestKernelCountersPopulated(t *testing.T) {
	s := rng.NewStream(5)
	knap := knapsackModel(s, 20, 10)
	res, err := Solve(knap, &Options{Parallelism: 1})
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("knapsack: %+v err=%v", res, err)
	}
	if res.Nodes > 1 && res.WarmStarts <= 0 {
		t.Fatalf("explored %d nodes but warm-started %d node LPs; want > 0", res.Nodes, res.WarmStarts)
	}
	if res.WarmStarts > res.LPIters+res.Nodes {
		t.Fatalf("WarmStarts = %d implausible vs %d nodes", res.WarmStarts, res.Nodes)
	}
	rep, err := Solve(knap, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmStarts != res.WarmStarts || rep.DegenPivots != res.DegenPivots {
		t.Fatalf("kernel counters not deterministic: (%d,%d) vs (%d,%d)",
			rep.WarmStarts, rep.DegenPivots, res.WarmStarts, res.DegenPivots)
	}

	m := NewModel()
	a := m.AddVar(2, 2, 3, false, "a") // fixed: presolve substitutes it
	b := m.AddBinary(-1, "b")
	m.AddRow([]int{a, b}, []float64{1, 1}, -Inf, 100) // redundant vs boxes
	m.AddRow([]int{a, b}, []float64{1, 1}, -Inf, 2.5)
	pres, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pres.PresolveRows < 1 {
		t.Fatalf("PresolveRows = %d, want ≥ 1 (redundant row)", pres.PresolveRows)
	}
	if pres.PresolveCols < 1 {
		t.Fatalf("PresolveCols = %d, want ≥ 1 (fixed column)", pres.PresolveCols)
	}
	if pres.Status != StatusOptimal || pres.X[a] != 2 {
		t.Fatalf("postsolve broke the fixed var: %+v", pres)
	}
}

// TestCancelDuringRootLP: cancelling while the root LP relaxation is still
// being solved must abort within iterations, not wait for the solve — the
// bug this PR fixes. The model's root LP alone takes hundreds of
// milliseconds.
func TestCancelDuringRootLP(t *testing.T) {
	s := rng.NewStream(17)
	const mrows, n = 150, 300
	m := NewModel()
	idxs := make([]int, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 10, s.Float64()*2-1, false, "x")
	}
	for i := 0; i < mrows; i++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = s.Float64()*2 - 1
		}
		m.AddRow(idxs, coefs, -5+s.Float64(), 5+s.Float64())
	}

	cancel := make(chan struct{})
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := Solve(m, &Options{Cancel: cancel})
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	delay := 50 * time.Millisecond
	if raceEnabled {
		delay = 500 * time.Millisecond
	}
	time.Sleep(delay)
	cancelled := time.Now()
	close(cancel)
	select {
	case err := <-errc:
		t.Fatal(err)
	case res := <-done:
		latency := time.Since(cancelled)
		bound := 100 * time.Millisecond
		if raceEnabled {
			bound = 2 * time.Second
		}
		if latency > bound {
			t.Fatalf("cancellation latency %v (bound %v)", latency, bound)
		}
		if res.Status != StatusLimit {
			t.Fatalf("status = %v, want limit (cancelled before any incumbent)", res.Status)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled solve never returned")
	}
}

// reportKernelMetrics surfaces the LP-kernel work counters as per-op bench
// metrics, so kernel wins (fewer simplex iterations, fewer nodes, warm-start
// coverage) show up in CI bench smoke output rather than only in wall-clock.
func reportKernelMetrics(b *testing.B, lpIters, nodes, warm int64) {
	b.Helper()
	n := float64(b.N)
	b.ReportMetric(float64(lpIters)/n, "lp_iters/op")
	b.ReportMetric(float64(nodes)/n, "nodes/op")
	b.ReportMetric(float64(warm)/n, "warm_hits/op")
}

// BenchmarkSolveParallel measures the parallel branch-and-bound on a
// branching-heavy knapsack at worker counts 1/2/4. On a single-core runner
// the interesting wall-clock number is parity (rounds and scratch reuse
// ≈ free); the speedup row belongs on a multicore host (see DESIGN.md). The
// lp_iters/nodes/warm_hits metrics are host-independent: they are
// deterministic kernel-work counters.
func BenchmarkSolveParallel(b *testing.B) {
	s := rng.NewStream(5)
	model := knapsackModel(s, 26, 13)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var lpIters, nodes, warm int64
			for i := 0; i < b.N; i++ {
				res, err := Solve(model, &Options{Parallelism: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != StatusOptimal {
					b.Fatalf("status = %v", res.Status)
				}
				lpIters += int64(res.LPIters)
				nodes += int64(res.Nodes)
				warm += int64(res.WarmStarts)
			}
			reportKernelMetrics(b, lpIters, nodes, warm)
		})
	}
}

// propertyCorpus rebuilds the determinism corpus's model set (random IPs,
// indicator models, knapsacks) for benchmarking. Kept in sync with
// TestParallelDeterminismMatrix so bench rows describe the same instances the
// correctness suite runs.
func propertyCorpus() []*Model {
	var models []*Model
	s := rng.NewStream(11)
	for trial := 0; trial < 25; trial++ {
		models = append(models, randomIPModel(s))
	}
	s = rng.NewStream(8)
	for trial := 0; trial < 15; trial++ {
		models = append(models, randomIndicatorModel(s))
	}
	s = rng.NewStream(5)
	models = append(models, knapsackModel(s, 20, 10), knapsackModel(s, 18, 9))
	return models
}

// BenchmarkPropertyCorpus solves the whole property-test corpus once per op
// and reports total simplex iterations, branch-and-bound nodes, and
// warm-start hits per op. This is the acceptance benchmark for LP-kernel
// changes: the DESIGN.md "LP kernel" table records its lp_iters/op before and
// after. One op = 42 MILP solves.
func BenchmarkPropertyCorpus(b *testing.B) {
	models := propertyCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	var lpIters, nodes, warm int64
	for i := 0; i < b.N; i++ {
		for _, m := range models {
			res, err := Solve(m, nil)
			if err != nil {
				b.Fatal(err)
			}
			lpIters += int64(res.LPIters)
			nodes += int64(res.Nodes)
			warm += int64(res.WarmStarts)
		}
	}
	reportKernelMetrics(b, lpIters, nodes, warm)
}
