package milp

import (
	"fmt"
	"math"
	"testing"
	"time"

	"spq/internal/rng"
)

// workerMatrix is the determinism corpus's worker counts: sequential, a
// small pool, and more workers than a round typically holds.
var workerMatrix = []int{1, 2, 8}

// solveWith solves the model with the given worker count and fails the test
// on error.
func solveWith(t *testing.T, m *Model, workers int, base *Options) *Result {
	t.Helper()
	o := Options{}
	if base != nil {
		o = *base
	}
	o.Parallelism = workers
	res, err := Solve(m, &o)
	if err != nil {
		t.Fatalf("Solve(workers=%d): %v", workers, err)
	}
	return res
}

// assertBitIdentical requires the full determinism contract: Status, Obj,
// Bound, Nodes, and every element of X equal exactly (==, not within
// tolerance) across worker counts.
func assertBitIdentical(t *testing.T, tag string, base, got *Result, workers int) {
	t.Helper()
	if got.Status != base.Status {
		t.Fatalf("%s: workers=%d status %v != sequential %v", tag, workers, got.Status, base.Status)
	}
	if got.Obj != base.Obj {
		t.Fatalf("%s: workers=%d obj %v != sequential %v", tag, workers, got.Obj, base.Obj)
	}
	if got.Bound != base.Bound {
		t.Fatalf("%s: workers=%d bound %v != sequential %v", tag, workers, got.Bound, base.Bound)
	}
	if got.Nodes != base.Nodes {
		t.Fatalf("%s: workers=%d nodes %d != sequential %d", tag, workers, got.Nodes, base.Nodes)
	}
	if (got.X == nil) != (base.X == nil) || len(got.X) != len(base.X) {
		t.Fatalf("%s: workers=%d X shape diverged", tag, workers)
	}
	for j := range base.X {
		if got.X[j] != base.X[j] {
			t.Fatalf("%s: workers=%d X[%d] = %v != sequential %v", tag, workers, j, got.X[j], base.X[j])
		}
	}
}

// randomIPModel mirrors the TestRandomIPAgainstBruteForce generator: small
// integer programs with range rows.
func randomIPModel(s *rng.Stream) *Model {
	n := 2 + s.IntN(3)
	m := NewModel()
	idxs := make([]int, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 2, math.Round((s.Float64()*6-3)*10)/10, true, "x")
	}
	nrows := 1 + s.IntN(2)
	for r := 0; r < nrows; r++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = math.Round((s.Float64()*4-2)*10) / 10
		}
		if s.IntN(2) == 0 {
			m.AddRow(idxs, coefs, math.Inf(-1), s.Float64()*4)
		} else {
			m.AddRow(idxs, coefs, -s.Float64()*2, math.Inf(1))
		}
	}
	return m
}

// randomIndicatorModel mirrors the big-M property-test generator: indicator
// constraints under a counting row, the SAA chance-constraint shape.
func randomIndicatorModel(s *rng.Stream) *Model {
	const n, scenarios = 3, 6
	need := 1 + s.IntN(scenarios)
	m := NewModel()
	xs := make([]int, n)
	for j := 0; j < n; j++ {
		xs[j] = m.AddVar(0, 2, -(s.Float64() + 0.1), true, "x")
	}
	ys := make([]int, scenarios)
	ones := make([]float64, scenarios)
	for k := 0; k < scenarios; k++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = s.Float64()*4 - 2
		}
		ys[k] = m.AddBinary(0, "y")
		m.AddIndicatorGE(ys[k], xs, coefs, 0.5)
		ones[k] = 1
	}
	m.AddRow(ys, ones, float64(need), Inf)
	return m
}

// knapsackModel is a branching-heavy complete-search instance.
func knapsackModel(s *rng.Stream, n int, cap float64) *Model {
	m := NewModel()
	idxs := make([]int, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = 1 + s.Float64()*3
	}
	m.AddRow(idxs, w, -Inf, cap)
	return m
}

// TestParallelDeterminismMatrix is the PR's determinism acceptance test: the
// property-test corpus solved with worker counts {1, 2, 8} must be
// bit-identical — Status, Obj, Bound, Nodes, and X compared with == — for
// every instance. CI additionally runs this under -cpu 1,2,4 -race.
func TestParallelDeterminismMatrix(t *testing.T) {
	type instance struct {
		tag   string
		model *Model
		opts  *Options
	}
	var corpus []instance

	s := rng.NewStream(11)
	for trial := 0; trial < 25; trial++ {
		corpus = append(corpus, instance{tag: fmt.Sprintf("ip%d", trial), model: randomIPModel(s)})
	}
	s = rng.NewStream(8)
	for trial := 0; trial < 15; trial++ {
		corpus = append(corpus, instance{tag: fmt.Sprintf("ind%d", trial), model: randomIndicatorModel(s)})
	}
	s = rng.NewStream(5)
	corpus = append(corpus,
		instance{tag: "knap20", model: knapsackModel(s, 20, 10)},
		// RelGap pruning must be deterministic too: it is evaluated against
		// the round-start snapshot, never the live incumbent.
		instance{tag: "knap18gap", model: knapsackModel(s, 18, 9), opts: &Options{RelGap: 0.05}},
		// A node budget binding mid-search is deterministic as long as no
		// wall-clock limit is involved: rounds are cut at exact node counts.
		instance{tag: "knap20nodes", model: knapsackModel(s, 20, 11), opts: &Options{MaxNodes: 50}},
	)

	for _, inst := range corpus {
		base := solveWith(t, inst.model, 1, inst.opts)
		for _, w := range workerMatrix[1:] {
			got := solveWith(t, inst.model, w, inst.opts)
			assertBitIdentical(t, inst.tag, base, got, w)
		}
		// Negative parallelism (one worker per CPU) is part of the contract.
		got := solveWith(t, inst.model, -1, inst.opts)
		assertBitIdentical(t, inst.tag, base, got, -1)
	}
}

// TestDeepTreeNodePool is the recursion-depth regression test: a chain
// instance whose search tree is thousands of levels deep. The old recursive
// dive grew the goroutine stack by one frame per fixed binary; the explicit
// node pool keeps ancestry on the heap. Run with a worker pool under -race
// (the CI milp-race job) this also exercises concurrent node processing on a
// deep frontier.
func TestDeepTreeNodePool(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1500
	}
	m := NewModel()
	idxs := make([]int, n)
	ones := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddBinary(-1, "x") // maximize Σx …
		ones[j] = 1
	}
	m.AddRow(idxs, ones, -Inf, 0.5) // … subject to Σx ≤ 0.5: integer optimum 0

	res, err := Solve(m, &Options{Parallelism: 4, MaxNodes: 4*n + 10})
	if err != nil {
		t.Fatal(err)
	}
	// Every LP relaxation puts 0.5 on the first unfixed binary, so the
	// search dives a chain that fixes one variable per level: proving the
	// all-zero optimum requires depth ≈ n.
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	if res.Obj != 0 {
		t.Fatalf("obj = %v, want 0", res.Obj)
	}
	for j, x := range res.X {
		if x != 0 {
			t.Fatalf("X[%d] = %v, want 0", j, x)
		}
	}
	if res.Nodes < n {
		t.Fatalf("explored %d nodes; expected a chain of depth ≥ %d", res.Nodes, n)
	}
}

// TestCancelDuringRootLP: cancelling while the root LP relaxation is still
// being solved must abort within iterations, not wait for the solve — the
// bug this PR fixes. The model's root LP alone takes hundreds of
// milliseconds.
func TestCancelDuringRootLP(t *testing.T) {
	s := rng.NewStream(17)
	const mrows, n = 150, 300
	m := NewModel()
	idxs := make([]int, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 10, s.Float64()*2-1, false, "x")
	}
	for i := 0; i < mrows; i++ {
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = s.Float64()*2 - 1
		}
		m.AddRow(idxs, coefs, -5+s.Float64(), 5+s.Float64())
	}

	cancel := make(chan struct{})
	done := make(chan *Result, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := Solve(m, &Options{Cancel: cancel})
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	delay := 50 * time.Millisecond
	if raceEnabled {
		delay = 500 * time.Millisecond
	}
	time.Sleep(delay)
	cancelled := time.Now()
	close(cancel)
	select {
	case err := <-errc:
		t.Fatal(err)
	case res := <-done:
		latency := time.Since(cancelled)
		bound := 100 * time.Millisecond
		if raceEnabled {
			bound = 2 * time.Second
		}
		if latency > bound {
			t.Fatalf("cancellation latency %v (bound %v)", latency, bound)
		}
		if res.Status != StatusLimit {
			t.Fatalf("status = %v, want limit (cancelled before any incumbent)", res.Status)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled solve never returned")
	}
}

// BenchmarkSolveParallel measures the parallel branch-and-bound on a
// branching-heavy knapsack at worker counts 1/2/4. On a single-core runner
// the interesting number is parity (rounds and scratch reuse ≈ free); the
// speedup row belongs on a multicore host (see DESIGN.md).
func BenchmarkSolveParallel(b *testing.B) {
	s := rng.NewStream(5)
	model := knapsackModel(s, 26, 13)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Solve(model, &Options{Parallelism: w})
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != StatusOptimal {
					b.Fatalf("status = %v", res.Status)
				}
			}
		})
	}
}
