package milp

import (
	"math"
	"testing"

	"spq/internal/rng"
)

// Property tests for the big-M linearization: a valid big-M must never cut
// off an integer point that satisfies the disjunctive semantics, and must
// never admit a point that violates an *active* indicator.

// enumerate reports all integer points x ∈ {0..ub}^n.
func enumerate(n, ub int, visit func(x []float64)) {
	total := 1
	for i := 0; i < n; i++ {
		total *= ub + 1
	}
	for code := 0; code < total; code++ {
		c := code
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			x[j] = float64(c % (ub + 1))
			c /= ub + 1
		}
		visit(x)
	}
}

func TestBigMNeverCutsSatisfyingAssignments(t *testing.T) {
	s := rng.NewStream(5)
	for trial := 0; trial < 60; trial++ {
		n := 2 + s.IntN(2)
		ub := 2
		m := NewModel()
		xs := make([]int, n)
		for j := 0; j < n; j++ {
			xs[j] = m.AddVar(0, float64(ub), 0, true, "x")
		}
		coefs := make([]float64, n)
		for j := range coefs {
			coefs[j] = math.Round((s.Float64()*6 - 3))
		}
		rhs := math.Round(s.Float64()*6 - 3)
		ge := s.IntN(2) == 0
		y := m.AddBinary(-1, "y") // reward activating the indicator
		if ge {
			m.AddIndicatorGE(y, xs, coefs, rhs)
		} else {
			m.AddIndicatorLE(y, xs, coefs, rhs)
		}
		res, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force: does ANY x satisfy the inner constraint? If so, the
		// solver must achieve y=1 (objective −1); otherwise y=0.
		anySat := false
		enumerate(n, ub, func(x []float64) {
			dot := 0.0
			for j := range x {
				dot += coefs[j] * x[j]
			}
			if (ge && dot >= rhs-1e-9) || (!ge && dot <= rhs+1e-9) {
				anySat = true
			}
		})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		gotActive := res.Obj < -0.5
		if anySat && !gotActive {
			t.Fatalf("trial %d: inner constraint satisfiable but big-M blocked y=1 (coefs=%v rhs=%v ge=%v)",
				trial, coefs, rhs, ge)
		}
		if !anySat && gotActive {
			t.Fatalf("trial %d: y=1 accepted though no x satisfies the inner constraint", trial)
		}
		// When active, verify the returned x actually satisfies it.
		if gotActive {
			dot := 0.0
			for j, xv := range xs {
				dot += coefs[j] * res.X[xv]
			}
			if (ge && dot < rhs-1e-6) || (!ge && dot > rhs+1e-6) {
				t.Fatalf("trial %d: active indicator violated: dot=%v rhs=%v ge=%v", trial, dot, rhs, ge)
			}
		}
	}
}

func TestCountingConstraintOverIndicators(t *testing.T) {
	// Σ y_j ≥ ⌈pM⌉ with randomly generated scenario rows: the solver's
	// choice must satisfy at least the required number of inner constraints
	// at the returned x — the exact structure of the SAA chance constraint.
	s := rng.NewStream(8)
	for trial := 0; trial < 30; trial++ {
		const n, scenarios = 3, 6
		need := 1 + s.IntN(scenarios)
		m := NewModel()
		xs := make([]int, n)
		for j := 0; j < n; j++ {
			xs[j] = m.AddVar(0, 2, -(s.Float64() + 0.1), true, "x")
		}
		rows := make([][]float64, scenarios)
		ys := make([]int, scenarios)
		for k := 0; k < scenarios; k++ {
			rows[k] = make([]float64, n)
			for j := range rows[k] {
				rows[k][j] = s.Float64()*4 - 2
			}
			ys[k] = m.AddBinary(0, "y")
			m.AddIndicatorGE(ys[k], xs, rows[k], 0.5)
		}
		ones := make([]float64, scenarios)
		for i := range ones {
			ones[i] = 1
		}
		m.AddRow(ys, ones, float64(need), Inf)
		res, err := Solve(m, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status == StatusInfeasible {
			// Verify by brute force that it truly is.
			feasible := false
			enumerate(n, 2, func(x []float64) {
				sat := 0
				for k := 0; k < scenarios; k++ {
					dot := 0.0
					for j := range x {
						dot += rows[k][j] * x[j]
					}
					if dot >= 0.5-1e-9 {
						sat++
					}
				}
				if sat >= need {
					feasible = true
				}
			})
			if feasible {
				t.Fatalf("trial %d: solver infeasible but brute force found a point", trial)
			}
			continue
		}
		if res.Status != StatusOptimal && res.Status != StatusFeasible {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		sat := 0
		for k := 0; k < scenarios; k++ {
			dot := 0.0
			for j, xv := range xs {
				dot += rows[k][j] * res.X[xv]
			}
			if dot >= 0.5-1e-6 {
				sat++
			}
		}
		if sat < need {
			t.Fatalf("trial %d: returned x satisfies %d scenarios, need %d", trial, sat, need)
		}
	}
}

func TestDeepBranchingInstance(t *testing.T) {
	// An equality-sum instance forcing substantial branching: pick exactly
	// 7 items whose weights sum to an odd target with even/odd weights.
	s := rng.NewStream(12)
	const n = 18
	m := NewModel()
	idxs := make([]int, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = float64(1 + s.IntN(9))
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	m.AddRow(idxs, ones, 7, 7)
	m.AddRow(idxs, w, 30, 34)
	res, err := Solve(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusOptimal {
		count, weight := 0.0, 0.0
		for j := 0; j < n; j++ {
			count += res.X[idxs[j]]
			weight += w[j] * res.X[idxs[j]]
		}
		if math.Abs(count-7) > 1e-6 || weight < 30-1e-6 || weight > 34+1e-6 {
			t.Fatalf("solution violates constraints: count=%v weight=%v", count, weight)
		}
	}
	if res.Nodes < 1 {
		t.Fatal("no branching recorded")
	}
}

func TestMaxNodesTerminates(t *testing.T) {
	s := rng.NewStream(14)
	const n = 30
	m := NewModel()
	idxs := make([]int, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = m.AddVar(0, 1, -(1 + s.Float64()), true, "x")
		w[j] = 1 + s.Float64()*2
	}
	m.AddRow(idxs, w, -Inf, 15)
	res, err := Solve(m, &Options{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 5+2 {
		t.Fatalf("explored %d nodes with MaxNodes=5", res.Nodes)
	}
	if res.Status == StatusOptimal && res.Nodes >= 5 {
		t.Fatalf("claimed optimality at the node limit (nodes=%d)", res.Nodes)
	}
}
