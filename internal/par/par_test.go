package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(4, 2); got != 2 {
		t.Fatalf("Workers(4, n=2) = %d, want 2 (capped at work)", got)
	}
	if got := Workers(-1, 1000); got < 1 {
		t.Fatalf("Workers(-1) = %d, want >= 1", got)
	}
	if got := Workers(3, -1); got != 3 {
		t.Fatalf("Workers(3, n=-1) = %d, want 3 (no cap)", got)
	}
}

func TestRangesCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		n := 101 // prime, so shards are uneven
		hits := make([]int32, n)
		err := Ranges(context.Background(), n, workers, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestRangesPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := Ranges(context.Background(), 10, 4, func(shard, lo, hi int) error {
		if shard >= 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRangesHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Ranges(ctx, 10, 2, func(_, _, _ int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("work ran under a cancelled context")
	}
}

func TestRangesEmpty(t *testing.T) {
	if err := Ranges(context.Background(), 0, 8, func(_, _, _ int) error {
		t.Fatal("called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
