// Package par provides the small worker-pool primitive shared by the
// concurrent execution engine: deterministic sharding of an index range
// across a bounded number of goroutines. Callers shard work so that each
// shard's results are a pure function of its index range (realizations in
// this codebase are pure functions of their scenario/tuple coordinates), so
// any worker count produces bit-identical results to the sequential path.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a parallelism request: 0 and 1 mean sequential,
// negative means one worker per available CPU, and requests are capped at
// the total shardable work n.
func Workers(p, n int) int {
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	if n >= 0 && p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Ranges splits [0, n) into `workers` near-equal contiguous shards and runs
// f(shard, lo, hi) for each, concurrently when workers > 1. It returns the
// first error (by shard order) or the context's error if ctx was cancelled
// before the work started. With workers <= 1 the call runs inline with no
// goroutines, so sequential callers pay nothing.
func Ranges(ctx context.Context, n, workers int, f func(shard, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return f(0, 0, n)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			errs[shard] = f(shard, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
