package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestStreamIndependenceAcrossSeeds(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical 64-bit draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := NewStream(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed = %d, want %d", i, got, first[i])
		}
	}
}

func TestReseedClearsNormalSpare(t *testing.T) {
	s := NewStream(9)
	_ = s.Norm() // caches a spare
	s.Reseed(9)
	a := s.Norm()
	s.Reseed(9)
	b := s.Norm()
	if a != b {
		t.Fatalf("Norm after reseed not deterministic: %v vs %v", a, b)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(3)
	for i := 0; i < 100000; i++ {
		u := s.Float64()
		if u < 0 || u >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", u)
		}
	}
}

func TestOpenFloat64Range(t *testing.T) {
	s := NewStream(4)
	for i := 0; i < 100000; i++ {
		u := s.OpenFloat64()
		if u <= 0 || u >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", u)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewStream(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := NewStream(6)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		z := s.Norm()
		sum += z
		sumsq += z * z
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := NewStream(8)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	s := NewStream(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("IntN(7) value %d count %d far from uniform 10000", v, c)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	NewStream(1).IntN(0)
}

func TestMixDistinctCoordinates(t *testing.T) {
	seen := map[uint64][3]uint64{}
	for a := uint64(0); a < 20; a++ {
		for b := uint64(0); b < 20; b++ {
			for c := uint64(0); c < 20; c++ {
				h := Mix(a, b, c)
				if prev, dup := seen[h]; dup {
					t.Fatalf("Mix collision: %v and %v both hash to %d", prev, [3]uint64{a, b, c}, h)
				}
				seen[h] = [3]uint64{a, b, c}
			}
		}
	}
}

func TestMixOrderSensitivity(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix is order-insensitive; substreams would collide")
	}
	if Mix(1) == Mix(1, 0) {
		t.Fatal("Mix ignores trailing zero words")
	}
}

func TestSourceDeriveIndependence(t *testing.T) {
	src := NewSource(99)
	opt := src.Derive(1)
	val := src.Derive(2)
	if opt.Base() == val.Base() {
		t.Fatal("derived sources share a base seed")
	}
	a := opt.StreamAt(0, 0, 0)
	b := val.StreamAt(0, 0, 0)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams from derived sources coincide")
	}
}

func TestStreamAtMatchesSeedAt(t *testing.T) {
	src := NewSource(123)
	s1 := src.StreamAt(1, 2, 3)
	s2 := NewStream(src.SeedAt(1, 2, 3))
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("StreamAt and SeedAt disagree")
		}
	}
}

// Property: the realized substream value at a coordinate does not depend on
// the order in which other coordinates are visited (order independence is the
// linchpin of tuple-wise vs scenario-wise generation equivalence).
func TestCoordinateValueIsPureFunction(t *testing.T) {
	src := NewSource(7)
	f := func(attr, group, scen uint16) bool {
		a := src.StreamAt(uint64(attr), uint64(group), uint64(scen)).Float64()
		// interleave unrelated draws
		_ = src.StreamAt(uint64(attr)+1, uint64(group), uint64(scen)).Float64()
		b := src.StreamAt(uint64(attr), uint64(group), uint64(scen)).Float64()
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUint32BitBalance(t *testing.T) {
	s := NewStream(13)
	ones := make([]int, 32)
	const n = 20000
	for i := 0; i < n; i++ {
		w := s.Uint32()
		for b := 0; b < 32; b++ {
			if w&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		if c < n*4/10 || c > n*6/10 {
			t.Fatalf("bit %d set in %d/%d draws; generator is biased", b, c, n)
		}
	}
}

func TestSplitSourcesAreIndependentAndDeterministic(t *testing.T) {
	src := NewSource(99)
	a := src.Split(8)
	b := src.Split(8)
	for i := range a {
		// Deterministic: splitting twice yields the same sources.
		if a[i].Base() != b[i].Base() {
			t.Fatalf("Split not deterministic at %d", i)
		}
		// Distinct from each other and from the parent.
		if a[i].Base() == src.Base() {
			t.Fatalf("split source %d equals parent", i)
		}
		for j := i + 1; j < len(a); j++ {
			if a[i].Base() == a[j].Base() {
				t.Fatalf("split sources %d and %d collide", i, j)
			}
		}
	}
	// Streams from different splits should decorrelate: crude check that
	// first draws are not all equal.
	v0 := a[0].StreamAt(0, 0, 0).Float64()
	distinct := false
	for i := 1; i < len(a); i++ {
		if a[i].StreamAt(0, 0, 0).Float64() != v0 {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("split sources produce identical streams")
	}
}
