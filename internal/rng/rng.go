// Package rng provides deterministic, splittable pseudo-random streams for
// Monte Carlo scenario generation.
//
// The Monte Carlo data model (Jampani et al., MCDB) requires that a scenario —
// a joint realization of every random attribute in a relation — be
// reproducible from a single base seed. The paper's SummarySearch algorithm
// additionally requires two different *generation orders* over the same
// scenario set (tuple-wise and scenario-wise summarization, §5.5 of the
// paper), which must observe identical realized values. We achieve both by
// deriving an independent substream for every (seed, attribute, group,
// scenario) coordinate with a SplitMix64-based hash, so the value of random
// variable t_i.A in scenario S_j is a pure function of the coordinates and
// never depends on generation order.
package rng

import "math"

// splitmix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the standard generator for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes an arbitrary number of 64-bit words into a single well-mixed
// 64-bit value. It is used to derive substream seeds from coordinates.
func Mix(words ...uint64) uint64 {
	state := uint64(0x8e2f_19a6_3c5d_71bb)
	for _, w := range words {
		state ^= w
		_ = splitmix64(&state)
		state = state*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15
	}
	return splitmix64(&state)
}

// Stream is a small, fast PCG-XSH-RR 64/32-like generator. Each Stream is an
// independent substream identified by the seed passed to NewStream. The zero
// value is not valid; use NewStream.
type Stream struct {
	state uint64
	inc   uint64
	// cached spare normal variate for the Box-Muller transform
	spare    float64
	hasSpare bool
}

// NewStream returns a stream deterministically derived from seed. Two streams
// created from different seeds are statistically independent for Monte Carlo
// purposes.
func NewStream(seed uint64) *Stream {
	s := &Stream{}
	s.Reseed(seed)
	return s
}

// Reseed resets the stream to the deterministic state implied by seed,
// discarding any cached variates.
func (s *Stream) Reseed(seed uint64) {
	sm := seed
	s.state = splitmix64(&sm)
	s.inc = splitmix64(&sm) | 1 // stream increment must be odd
	s.hasSpare = false
	s.spare = 0
	// Warm up: decorrelates streams whose seeds differ in few bits.
	s.Uint64()
	s.Uint64()
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform variate in the half-open interval [0, 1) with 53
// bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OpenFloat64 returns a uniform variate in the open interval (0, 1), suitable
// for inverse-CDF transforms that evaluate log or reciprocal at the sample.
func (s *Stream) OpenFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return u
		}
	}
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation on 32-bit words is
	// overkill here; modulo bias is negligible for the small n (number of
	// data-integration sources, partition sizes) this library draws.
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard normal variate using the Box-Muller transform with
// spare caching.
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := s.OpenFloat64()
		v := s.Float64()
		r := math.Sqrt(-2 * math.Log(u))
		theta := 2 * math.Pi * v
		z0 := r * math.Cos(theta)
		z1 := r * math.Sin(theta)
		if math.IsInf(z0, 0) || math.IsNaN(z0) {
			continue
		}
		s.spare = z1
		s.hasSpare = true
		return z0
	}
}

// Exp returns a standard (rate 1) exponential variate.
func (s *Stream) Exp() float64 {
	return -math.Log(s.OpenFloat64())
}

// Source derives substreams for the coordinates used by scenario generation.
// It is cheap to copy and safe for concurrent use (it is immutable).
type Source struct {
	base uint64
}

// NewSource returns a Source rooted at the given base seed.
func NewSource(base uint64) Source { return Source{base: base} }

// Base returns the base seed the source was created with.
func (src Source) Base() uint64 { return src.base }

// Derive returns a fresh Source whose streams are independent of src's,
// labeled by the given words. It is used to split, e.g., optimization
// scenarios from validation scenarios.
func (src Source) Derive(words ...uint64) Source {
	all := append([]uint64{src.base}, words...)
	return Source{base: Mix(all...)}
}

// Split returns n sources derived from src, labeled 0..n-1, whose streams
// are mutually independent and independent of src's. It is the substream
// split API for callers that want genuinely independent randomness per
// worker or per concurrent client (e.g. a load generator giving each client
// its own seed) without any shared mutable state. Note that the engine's
// scenario *sharding* deliberately does not use Split: scenario
// realizations are pure functions of their (attr, group, scenario)
// coordinates under a single source, which is what makes parallel
// validation bit-identical to the sequential path.
func (src Source) Split(n int) []Source {
	out := make([]Source, n)
	for i := range out {
		out[i] = src.Derive(0x5b117, uint64(i))
	}
	return out
}

// StreamAt returns the substream for coordinate (attr, group, scenario).
// "group" is the correlation group of the random variable: for independent
// attributes it is the tuple index; for correlated attributes (e.g. all
// trades of one stock sharing a price path) it is the group identifier.
func (src Source) StreamAt(attr, group, scenario uint64) *Stream {
	return NewStream(Mix(src.base, attr, group, scenario))
}

// SeedAt returns the raw substream seed for coordinate (attr, group,
// scenario) so callers can Reseed a scratch Stream and avoid allocation in
// tight generation loops.
func (src Source) SeedAt(attr, group, scenario uint64) uint64 {
	return Mix(src.base, attr, group, scenario)
}
