package spaql

import (
	"math"
	"strings"
	"testing"
)

// paperQuery is the Figure 1 query from the paper.
const paperQuery = `
SELECT PACKAGE(*) AS Portfolio
FROM Stock_Investments
SUCH THAT
  SUM(price) <= 1000 AND
  SUM(Gain) >= -10 WITH PROBABILITY >= 0.95
MAXIMIZE EXPECTED SUM(Gain)`

func TestParsePaperFigure1(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Alias != "Portfolio" || q.Table != "Stock_Investments" {
		t.Fatalf("alias/table = %q/%q", q.Alias, q.Table)
	}
	if len(q.Constraints) != 2 {
		t.Fatalf("got %d constraints, want 2", len(q.Constraints))
	}
	c0 := q.Constraints[0]
	if c0.Agg != AggSum || c0.Op != OpLE || c0.Value != 1000 || c0.Prob != nil {
		t.Fatalf("constraint 0 = %+v", c0)
	}
	if got := c0.Expr.Attrs(); len(got) != 1 || got[0] != "price" {
		t.Fatalf("constraint 0 attrs = %v", got)
	}
	c1 := q.Constraints[1]
	if c1.Prob == nil || c1.Prob.P != 0.95 || c1.Prob.Op != OpGE {
		t.Fatalf("constraint 1 = %+v", c1)
	}
	if c1.Op != OpGE || c1.Value != -10 {
		t.Fatalf("constraint 1 inner = %v %v", c1.Op, c1.Value)
	}
	if q.Objective == nil || q.Objective.Sense != Maximize || q.Objective.Kind != ObjExpected {
		t.Fatalf("objective = %+v", q.Objective)
	}
}

func TestParseGalaxyTemplate(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM Galaxy SUCH THAT
		COUNT(*) BETWEEN 5 AND 10 AND
		SUM(Petromag_r) >= 40 WITH PROBABILITY >= 0.9
		MINIMIZE EXPECTED SUM(Petromag_r)`)
	if err != nil {
		t.Fatal(err)
	}
	c0 := q.Constraints[0]
	if c0.Agg != AggCount || !c0.Between || c0.Lo != 5 || c0.Hi != 10 {
		t.Fatalf("count constraint = %+v", c0)
	}
	if q.Objective.Sense != Minimize {
		t.Fatal("objective sense wrong")
	}
}

func TestParseTPCHTemplateProbabilityObjective(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM Tpch SUCH THAT
		COUNT(*) BETWEEN 1 AND 10 AND
		SUM(Quantity) <= 15 WITH PROBABILITY >= 0.9
		MAXIMIZE PROBABILITY OF SUM(Revenue) >= 1000`)
	if err != nil {
		t.Fatal(err)
	}
	o := q.Objective
	if o.Kind != ObjProbability || o.Op != OpGE || o.Value != 1000 {
		t.Fatalf("objective = %+v", o)
	}
}

func TestParseRepeatAndWhere(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM t REPEAT 2
		WHERE price <= 500 AND (vol > 0.3 OR NOT region = 2)
		SUCH THAT COUNT(*) >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Repeat != 2 {
		t.Fatalf("Repeat = %d", q.Repeat)
	}
	if q.Where == nil {
		t.Fatal("missing WHERE")
	}
	vals := map[string]float64{"price": 400, "vol": 0.1, "region": 2}
	get := func(a string) float64 { return vals[a] }
	if q.Where.Eval(get) {
		t.Fatal("predicate should be false: price ok but vol low and region=2")
	}
	vals["vol"] = 0.5
	if !q.Where.Eval(get) {
		t.Fatal("predicate should be true with high vol")
	}
}

func TestParseLinearExpressions(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM t SUCH THAT SUM(3*a - 2*b + c/4 - 1) >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Constraints[0].Expr
	if len(e.Terms) != 3 {
		t.Fatalf("terms = %+v", e.Terms)
	}
	if e.Terms[0].Coef != 3 || e.Terms[0].Attr != "a" {
		t.Fatalf("term 0 = %+v", e.Terms[0])
	}
	if e.Terms[1].Coef != -2 || e.Terms[1].Attr != "b" {
		t.Fatalf("term 1 = %+v", e.Terms[1])
	}
	if e.Terms[2].Coef != 0.25 || e.Terms[2].Attr != "c" {
		t.Fatalf("term 2 = %+v", e.Terms[2])
	}
	if e.Const != -1 {
		t.Fatalf("const = %v", e.Const)
	}
}

func TestParseLeadingMinusAndAttrTimesNumber(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM t SUCH THAT SUM(-a + b*2) <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Constraints[0].Expr
	if e.Terms[0].Coef != -1 || e.Terms[1].Coef != 2 {
		t.Fatalf("terms = %+v", e.Terms)
	}
}

func TestParseUnicodeComparators(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) ≤ 1000 AND SUM(g) ≥ -10 WITH PROBABILITY ≥ 0.95`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Constraints[0].Op != OpLE || q.Constraints[1].Op != OpGE {
		t.Fatal("unicode comparators misparsed")
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse("SELECT PACKAGE(*) FROM t -- the table\nSUCH THAT COUNT(*) = 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.Constraints[0].Value != 3 {
		t.Fatal("comment broke parsing")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select package(*) from T such that count(*) >= 1 maximize expected sum(G)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseScientificNumbers(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) <= 1.5e3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Constraints[0].Value != 1500 {
		t.Fatalf("value = %v", q.Constraints[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT * FROM t",
		"SELECT PACKAGE(*)",
		"SELECT PACKAGE(*) FROM",
		"SELECT PACKAGE(*) FROM t REPEAT -1",
		"SELECT PACKAGE(*) FROM t REPEAT 1.5",
		"SELECT PACKAGE(*) FROM t SUCH THAT",
		"SELECT PACKAGE(*) FROM t SUCH THAT SUM(a >= 1",
		"SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= 1 WITH PROBABILITY = 0.5",
		"SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) >= 1 WITH PROBABILITY >= 1.5",
		"SELECT PACKAGE(*) FROM t SUCH THAT SUM(a) BETWEEN 5 AND 2",
		"SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) >= 1 trailing",
		"SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF COUNT(*) >= 1",
		"SELECT PACKAGE(*) FROM t SUCH THAT SUM(a/0) >= 1",
		"SELECT PACKAGE(*) FROM t WHERE a @ 3 SUCH THAT COUNT(*) = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		paperQuery,
		`SELECT PACKAGE(*) FROM Galaxy SUCH THAT COUNT(*) BETWEEN 5 AND 10 AND SUM(r) >= 40 WITH PROBABILITY >= 0.9 MINIMIZE EXPECTED SUM(r)`,
		`SELECT PACKAGE(*) FROM T REPEAT 3 WHERE a > 1 SUCH THAT EXPECTED SUM(g) >= 2`,
		`SELECT PACKAGE(*) FROM T SUCH THAT SUM(2*a - b) <= 7 MAXIMIZE PROBABILITY OF SUM(x) >= 100`,
		`SELECT PACKAGE(*) FROM T MINIMIZE COUNT(*)`,
		`SELECT PACKAGE(*) FROM T WHERE NOT (a = 1 OR b < 2) SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(c)`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip unstable:\n  first:  %s\n  second: %s", printed, q2.String())
		}
	}
}

func TestCmpOpCompare(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b float64
		want bool
	}{
		{OpLE, 1, 2, true}, {OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGE, 3, 2, true}, {OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 2, 2, true}, {OpEQ, 1, 2, false},
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Compare(c.a, c.b); got != c.want {
			t.Errorf("%v.Compare(%v, %v) = %v", c.op, c.a, c.b, got)
		}
	}
}

// fakeSchema implements Schema for validation tests.
type fakeSchema struct {
	det   map[string]bool
	stoch map[string]bool
}

func (s fakeSchema) HasAttr(n string) bool      { return s.det[n] || s.stoch[n] }
func (s fakeSchema) IsStochastic(n string) bool { return s.stoch[n] }

var schema = fakeSchema{
	det:   map[string]bool{"price": true, "qty": true},
	stoch: map[string]bool{"gain": true, "flux": true},
}

func TestValidateAccepts(t *testing.T) {
	good := []string{
		`SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) <= 1000 AND SUM(gain) >= -10 WITH PROBABILITY >= 0.95 MAXIMIZE EXPECTED SUM(gain)`,
		`SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) BETWEEN 1 AND 5`,
		`SELECT PACKAGE(*) FROM t WHERE price <= 10 SUCH THAT EXPECTED SUM(flux) <= 3`,
		`SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF SUM(gain) >= 100`,
		`SELECT PACKAGE(*) FROM t MINIMIZE COUNT(*)`,
		`SELECT PACKAGE(*) FROM t SUCH THAT SUM(2*price + qty) <= 50`,
	}
	for _, src := range good {
		q := MustParse(src)
		if err := q.Validate(schema); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", src, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []struct {
		src, wantSub string
	}{
		{`SELECT PACKAGE(*) FROM t SUCH THAT SUM(gain) >= 0`, "EXPECTED or WITH PROBABILITY"},
		{`SELECT PACKAGE(*) FROM t SUCH THAT SUM(nope) >= 0`, "unknown attribute"},
		{`SELECT PACKAGE(*) FROM t WHERE gain > 0 SUCH THAT COUNT(*) = 1`, "stochastic"},
		{`SELECT PACKAGE(*) FROM t WHERE nope > 0 SUCH THAT COUNT(*) = 1`, "unknown"},
		{`SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) <= 10 WITH PROBABILITY >= 0.9`, "vacuous"},
		{`SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(gain) >= 0 WITH PROBABILITY >= 0.9`, "both"},
		{`SELECT PACKAGE(*) FROM t MAXIMIZE SUM(gain)`, "EXPECTED or PROBABILITY"},
		{`SELECT PACKAGE(*) FROM t MAXIMIZE PROBABILITY OF SUM(price) >= 1`, "vacuous"},
	}
	for _, c := range bad {
		q := MustParse(c.src)
		err := q.Validate(schema)
		if err == nil {
			t.Errorf("Validate(%q) = nil, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate(%q) = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestValidateProbabilisticBetweenRejected(t *testing.T) {
	q := &Query{
		Table: "t",
		Constraints: []*Constraint{{
			Agg:     AggSum,
			Expr:    LinExpr{Terms: []Term{{Coef: 1, Attr: "gain"}}},
			Between: true, Lo: 0, Hi: 1,
			Prob: &ProbClause{Op: OpGE, P: 0.9},
		}},
	}
	if err := q.Validate(schema); err == nil {
		t.Fatal("probabilistic BETWEEN accepted")
	}
}

func TestValidateBoundaryProbabilities(t *testing.T) {
	for _, p := range []float64{0, 1} {
		q := &Query{
			Table: "t",
			Constraints: []*Constraint{{
				Agg:  AggSum,
				Expr: LinExpr{Terms: []Term{{Coef: 1, Attr: "gain"}}},
				Op:   OpGE, Value: 0,
				Prob: &ProbClause{Op: OpGE, P: p},
			}},
		}
		if err := q.Validate(schema); err == nil {
			t.Errorf("probability %v accepted, want rejection", p)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not a query")
}

func TestLinExprString(t *testing.T) {
	cases := []struct {
		e    LinExpr
		want string
	}{
		{LinExpr{Terms: []Term{{1, "a"}}}, "a"},
		{LinExpr{Terms: []Term{{-1, "a"}}}, "-a"},
		{LinExpr{Terms: []Term{{2.5, "a"}, {-1, "b"}}, Const: 3}, "2.5 * a - b + 3"},
		{LinExpr{Const: -4}, "-4"},
		{LinExpr{Terms: []Term{{1, "a"}, {1, "b"}}, Const: -1}, "a + b - 1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBoolExprEvalNaNSafe(t *testing.T) {
	// Comparisons involving NaN are false; NOT makes them true.
	cmp := &Cmp{Attr: "a", Op: OpLT, Value: 1}
	get := func(string) float64 { return math.NaN() }
	if cmp.Eval(get) {
		t.Fatal("NaN < 1 should be false")
	}
	if !(&Not{E: cmp}).Eval(get) {
		t.Fatal("NOT (NaN < 1) should be true")
	}
}
