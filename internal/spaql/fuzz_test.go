package spaql

import (
	"reflect"
	"testing"
)

// fuzzSeeds covers every grammar production: aliases, REPEAT, WHERE
// predicates (AND/OR/NOT, parens), plain/expected/probabilistic
// constraints, BETWEEN, PaQL general-form filters, the four objective
// kinds, unicode comparison glyphs, comments, signed and scientific
// numbers, and the historical round-trip traps (negative-zero
// coefficients, division coefficients, constant folding).
var fuzzSeeds = []string{
	`SELECT PACKAGE(*) FROM stocks`,
	`SELECT PACKAGE(*) AS p FROM stocks REPEAT 2`,
	`SELECT PACKAGE(*) FROM stocks WHERE price > 10 AND NOT (sector = 1 OR beta <= 0.5)`,
	`SELECT PACKAGE(*) FROM stocks SUCH THAT SUM(price) <= 300 AND SUM(gain) >= -5 WITH PROBABILITY >= 0.8 MAXIMIZE EXPECTED SUM(gain)`,
	`SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) BETWEEN 2 AND 10 MINIMIZE COUNT(*)`,
	`SELECT PACKAGE(*) FROM t SUCH THAT (SELECT SUM(2 * x + y / 4 - 1) WHERE x > 0 FROM P) >= 7`,
	`SELECT PACKAGE(*) FROM t SUCH THAT EXPECTED SUM(gain) >= 0 MAXIMIZE PROBABILITY OF SUM(gain) >= 5`,
	`SELECT PACKAGE(*) FROM t MINIMIZE (SELECT SUM(cost) WHERE cost > 0 FROM P)`,
	`SELECT PACKAGE(*) FROM t SUCH THAT SUM(price) ≤ 100 AND SUM(gain) ≥ 0.5`,
	"SELECT PACKAGE(*) FROM t -- comment\n SUCH THAT COUNT(*) <= 3",
	`SELECT PACKAGE(*) FROM t SUCH THAT SUM(y - 0 * x) >= 0`,
	`SELECT PACKAGE(*) FROM t SUCH THAT SUM(-x + 1e3 * y) <= 2.5e-2`,
	`SELECT PACKAGE(*) FROM t SUCH THAT SUM(1 + x + 2) >= 0`,
	`SELECT PACKAGE(*) FROM t SUCH THAT COUNT(*) <> 4 WITH PROBABILITY <= 1`,
}

// FuzzParse asserts the parser's two safety properties on arbitrary input:
// it never panics, and any accepted query renders to a canonical form that
// reparses to the identical AST (with a stable canonical rendering).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics and bad round-trips are not
		}
		canonical := q.String()
		q2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical render does not reparse: %v\ninput:  %q\nrender: %q", err, input, canonical)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round-trip AST mismatch\ninput:  %q\nrender: %q\nfirst:  %#v\nsecond: %#v", input, canonical, q, q2)
		}
		if again := q2.String(); again != canonical {
			t.Fatalf("canonical render unstable: %q then %q", canonical, again)
		}
	})
}
