package spaql

import (
	"errors"
	"fmt"
)

// Schema exposes the attribute metadata validation needs; *relation.Relation
// satisfies it.
type Schema interface {
	HasAttr(name string) bool
	IsStochastic(name string) bool
}

// Validate checks the query against a schema: attributes must exist,
// stochastic attributes may appear only under EXPECTED, WITH PROBABILITY or
// PROBABILITY OF forms, WHERE predicates must be deterministic, and clause
// parameters must be sensible. It returns the first error found.
func (q *Query) Validate(s Schema) error {
	if q.Table == "" {
		return errors.New("spaql: query has no table")
	}
	if q.Where != nil {
		for _, attr := range q.Where.Attrs(nil) {
			if !s.HasAttr(attr) {
				return fmt.Errorf("spaql: WHERE references unknown attribute %q", attr)
			}
			if s.IsStochastic(attr) {
				return fmt.Errorf("spaql: WHERE must be deterministic but references stochastic attribute %q", attr)
			}
		}
	}
	for i, c := range q.Constraints {
		if err := validateConstraint(c, s); err != nil {
			return fmt.Errorf("spaql: constraint %d: %w", i+1, err)
		}
	}
	if q.Objective != nil {
		if err := validateObjective(q.Objective, s); err != nil {
			return fmt.Errorf("spaql: objective: %w", err)
		}
	}
	return nil
}

func exprStochastic(e LinExpr, s Schema) (bool, error) {
	stoch := false
	for _, attr := range e.Attrs() {
		if !s.HasAttr(attr) {
			return false, fmt.Errorf("unknown attribute %q", attr)
		}
		if s.IsStochastic(attr) {
			stoch = true
		}
	}
	return stoch, nil
}

// validateFilter checks a per-aggregate selection predicate (PaQL general
// form): it must reference only existing deterministic attributes.
func validateFilter(f BoolExpr, s Schema) error {
	if f == nil {
		return nil
	}
	for _, attr := range f.Attrs(nil) {
		if !s.HasAttr(attr) {
			return fmt.Errorf("aggregate filter references unknown attribute %q", attr)
		}
		if s.IsStochastic(attr) {
			return fmt.Errorf("aggregate filter must be deterministic but references stochastic attribute %q", attr)
		}
	}
	return nil
}

func validateConstraint(c *Constraint, s Schema) error {
	if err := validateFilter(c.Filter, s); err != nil {
		return err
	}
	if c.Agg == AggCount {
		if c.Expected || c.Prob != nil {
			return errors.New("COUNT(*) is deterministic; EXPECTED/WITH PROBABILITY do not apply")
		}
		return nil
	}
	stoch, err := exprStochastic(c.Expr, s)
	if err != nil {
		return err
	}
	if stoch && !c.Expected && c.Prob == nil {
		return fmt.Errorf("constraint on stochastic attribute(s) %v must use EXPECTED or WITH PROBABILITY", c.Expr.Attrs())
	}
	if !stoch && c.Prob != nil {
		return errors.New("WITH PROBABILITY on a deterministic expression is vacuous")
	}
	if c.Expected && c.Prob != nil {
		return errors.New("a constraint cannot be both EXPECTED and probabilistic")
	}
	if c.Prob != nil {
		if c.Between {
			return errors.New("probabilistic BETWEEN constraints are not supported (the inner constraint must be one-sided)")
		}
		if c.Op != OpLE && c.Op != OpGE {
			return errors.New("probabilistic inner constraint must use <= or >=")
		}
		if c.Prob.P <= 0 || c.Prob.P >= 1 {
			return fmt.Errorf("probability threshold %v must be in (0, 1)", c.Prob.P)
		}
	}
	return nil
}

func validateObjective(o *Objective, s Schema) error {
	if err := validateFilter(o.Filter, s); err != nil {
		return err
	}
	if o.Kind == ObjCount {
		return nil
	}
	stoch, err := exprStochastic(o.Expr, s)
	if err != nil {
		return err
	}
	switch o.Kind {
	case ObjDeterministic:
		if stoch {
			return fmt.Errorf("objective over stochastic attribute(s) %v must use EXPECTED or PROBABILITY OF", o.Expr.Attrs())
		}
	case ObjProbability:
		if !stoch {
			return errors.New("PROBABILITY OF over a deterministic expression is vacuous")
		}
		if o.Op != OpLE && o.Op != OpGE {
			return errors.New("PROBABILITY OF inner constraint must use <= or >=")
		}
	}
	return nil
}
