package spaql

import (
	"strings"
	"testing"
)

// Tests for the PaQL general constraint form of Appendix A:
// (SELECT SUM(f(R)) WHERE pred FROM P) ⊙ v.

func TestParseGeneralFormConstraint(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) AS P FROM t SUCH THAT
		(SELECT SUM(price) WHERE qty > 2 FROM P) <= 100`)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Constraints[0]
	if c.Filter == nil {
		t.Fatal("missing filter")
	}
	if c.Agg != AggSum || c.Op != OpLE || c.Value != 100 {
		t.Fatalf("constraint = %+v", c)
	}
	get := func(a string) float64 {
		if a == "qty" {
			return 3
		}
		return 0
	}
	if !c.Filter.Eval(get) {
		t.Fatal("filter should pass qty=3")
	}
}

func TestParseGeneralFormCount(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) AS P FROM t SUCH THAT
		(SELECT COUNT(*) WHERE region = 1 FROM P) BETWEEN 1 AND 3`)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Constraints[0]
	if c.Agg != AggCount || !c.Between || c.Filter == nil {
		t.Fatalf("constraint = %+v", c)
	}
}

func TestParseGeneralFormProbabilistic(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) AS P FROM t SUCH THAT
		(SELECT SUM(gain) WHERE risky = 1 FROM P) >= -5 WITH PROBABILITY >= 0.9`)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Constraints[0]
	if c.Filter == nil || c.Prob == nil {
		t.Fatalf("constraint = %+v", c)
	}
}

func TestParseGeneralFormObjective(t *testing.T) {
	q, err := Parse(`SELECT PACKAGE(*) AS P FROM t
		MAXIMIZE EXPECTED (SELECT SUM(gain) WHERE sector = 2 FROM P)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Objective.Filter == nil || q.Objective.Kind != ObjExpected {
		t.Fatalf("objective = %+v", q.Objective)
	}
}

func TestParseGeneralFormNoFilter(t *testing.T) {
	// The subselect form without WHERE degenerates to the plain aggregate.
	q, err := Parse(`SELECT PACKAGE(*) AS P FROM t SUCH THAT
		(SELECT SUM(price) FROM P) <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Constraints[0].Filter != nil {
		t.Fatal("no-WHERE subselect should have nil filter")
	}
}

func TestGeneralFormRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT PACKAGE(*) AS P FROM t SUCH THAT (SELECT SUM(price) WHERE qty > 2 FROM P) <= 100`,
		`SELECT PACKAGE(*) AS P FROM t SUCH THAT (SELECT SUM(g) WHERE a = 1 FROM P) >= 0 WITH PROBABILITY >= 0.9`,
		`SELECT PACKAGE(*) AS P FROM t MAXIMIZE PROBABILITY OF (SELECT SUM(g) WHERE b < 3 FROM P) >= 10`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("round trip unstable: %s vs %s", printed, q2.String())
		}
	}
}

func TestGeneralFormParseErrors(t *testing.T) {
	bad := []string{
		`SELECT PACKAGE(*) FROM t SUCH THAT (SELECT SUM(a) WHERE FROM P) <= 1`,
		`SELECT PACKAGE(*) FROM t SUCH THAT (SELECT SUM(a) WHERE b > 1 P) <= 1`,
		`SELECT PACKAGE(*) FROM t SUCH THAT (SELECT SUM(a) WHERE b > 1 FROM) <= 1`,
		`SELECT PACKAGE(*) FROM t SUCH THAT (SELECT SUM(a) WHERE b > 1 FROM P <= 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestValidateFilterRejectsStochastic(t *testing.T) {
	q := MustParse(`SELECT PACKAGE(*) AS P FROM t SUCH THAT
		(SELECT SUM(price) WHERE gain > 0 FROM P) <= 100`)
	err := q.Validate(schema)
	if err == nil || !strings.Contains(err.Error(), "stochastic") {
		t.Fatalf("err = %v, want stochastic-filter rejection", err)
	}
}

func TestValidateFilterRejectsUnknown(t *testing.T) {
	q := MustParse(`SELECT PACKAGE(*) AS P FROM t
		MAXIMIZE EXPECTED (SELECT SUM(gain) WHERE nope = 1 FROM P)`)
	err := q.Validate(schema)
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("err = %v, want unknown-attribute rejection", err)
	}
}
