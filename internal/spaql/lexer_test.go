package spaql

import (
	"testing"
	"testing/quick"
)

func TestTokensBasic(t *testing.T) {
	toks, err := Tokens("SELECT PACKAGE(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "PACKAGE", "(", "*", ")", "FROM", "t"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokensOperators(t *testing.T) {
	toks, err := Tokens("<= >= < > = <> != ≤ ≥")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "<", ">", "=", "<>", "<>", "<=", ">="}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, toks[i], want[i], toks)
		}
	}
}

func TestTokensNumbers(t *testing.T) {
	toks, err := Tokens("1 2.5 1e3 1.5E-2 .5")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokensComments(t *testing.T) {
	toks, err := Tokens("a -- comment with SUM(price) <= junk\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0] != "a" || toks[1] != "b" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestTokensRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"@", "#x", "a $ b", "1.2.3e"} {
		if _, err := Tokens(bad); err == nil {
			t.Errorf("Tokens(%q) succeeded", bad)
		}
	}
}

// Property: the lexer never panics and either returns tokens or an error,
// on arbitrary (including invalid UTF-8) input. Parsing likewise.
func TestLexerTotalOnArbitraryInput(t *testing.T) {
	f := func(input string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", input, r)
			}
		}()
		_, _ = Tokens(input)
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLexerTotalOnBytePatterns(t *testing.T) {
	// Adversarial byte patterns: truncated UTF-8, lone continuation bytes,
	// the lead byte of ≤ followed by garbage.
	inputs := []string{
		"\xe2", "\xe2\x89", "\xe2\x89\xff", "\xff\xfe", "a\x80b",
		"SUM(\xe2\x89\xa4)", "≤≥≤≥", "--\xe2",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
}
