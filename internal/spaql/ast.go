// Package spaql implements the sPaQL query language of the paper
// (Appendix A): PaQL package queries extended with EXPECTED and
// probabilistic (WITH PROBABILITY) constraints and objectives. It provides
// a lexer, a recursive-descent parser, an AST with a round-trippable
// printer, and schema validation.
package spaql

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator.
type CmpOp int

const (
	OpLE CmpOp = iota // ≤
	OpGE              // ≥
	OpEQ              // =
	OpLT              // <
	OpGT              // >
	OpNE              // <> / !=
)

func (op CmpOp) String() string {
	switch op {
	case OpLE:
		return "<="
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpLT:
		return "<"
	case OpGT:
		return ">"
	case OpNE:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Compare evaluates `a op b`.
func (op CmpOp) Compare(a, b float64) bool {
	switch op {
	case OpLE:
		return a <= b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	case OpLT:
		return a < b
	case OpGT:
		return a > b
	case OpNE:
		return a != b
	default:
		return false
	}
}

// Term is one linear term coef·attr.
type Term struct {
	Coef float64
	Attr string
}

// LinExpr is a linear function of tuple attributes, f(R) = Σ coef·attr +
// const. A cardinality COUNT(*) is represented by the translation layer as
// the pure-constant expression 1.
type LinExpr struct {
	Terms []Term
	Const float64
}

// Attrs returns the distinct attribute names referenced by the expression.
func (e LinExpr) Attrs() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range e.Terms {
		if !seen[t.Attr] {
			seen[t.Attr] = true
			out = append(out, t.Attr)
		}
	}
	return out
}

func (e LinExpr) String() string {
	if len(e.Terms) == 0 {
		return trimFloat(e.Const)
	}
	var sb strings.Builder
	for i, t := range e.Terms {
		switch {
		case i == 0 && t.Coef == 1:
			sb.WriteString(t.Attr)
		case i == 0 && t.Coef == -1:
			sb.WriteString("-" + t.Attr)
		case i == 0:
			fmt.Fprintf(&sb, "%s * %s", trimFloat(t.Coef), t.Attr)
		case t.Coef == 1:
			sb.WriteString(" + " + t.Attr)
		case t.Coef == -1:
			sb.WriteString(" - " + t.Attr)
		case t.Coef < 0:
			fmt.Fprintf(&sb, " - %s * %s", trimFloat(-t.Coef), t.Attr)
		default:
			fmt.Fprintf(&sb, " + %s * %s", trimFloat(t.Coef), t.Attr)
		}
	}
	if e.Const > 0 {
		fmt.Fprintf(&sb, " + %s", trimFloat(e.Const))
	} else if e.Const < 0 {
		fmt.Fprintf(&sb, " - %s", trimFloat(-e.Const))
	}
	return sb.String()
}

func trimFloat(v float64) string {
	if v == 0 {
		// Fold negative zero: "-0" would not re-lex as a single number
		// token in every term position, and -0 == 0 anywhere it is used.
		return "0"
	}
	return fmt.Sprintf("%g", v)
}

// AggKind distinguishes COUNT(*) from SUM(f(R)).
type AggKind int

const (
	AggSum AggKind = iota
	AggCount
)

// ProbClause is the WITH PROBABILITY ⊙ p suffix of a probabilistic
// constraint.
type ProbClause struct {
	Op CmpOp // OpGE or OpLE (the paper permits both; ≤ is rewritten later)
	P  float64
}

// Constraint is one SUCH THAT conjunct.
type Constraint struct {
	Agg      AggKind
	Expr     LinExpr // meaningful for AggSum
	Expected bool    // EXPECTED SUM(...) — expectation constraint

	// Filter restricts the aggregate to package tuples satisfying the
	// predicate — the PaQL general form
	// (SELECT SUM(f(R)) WHERE pred FROM P) ⊙ v of Appendix A. Nil means no
	// restriction.
	Filter BoolExpr

	// Either a single comparison (Op, Value) or a BETWEEN range.
	Between bool
	Op      CmpOp
	Value   float64
	Lo, Hi  float64

	// Prob is non-nil for probabilistic constraints.
	Prob *ProbClause
}

func (c *Constraint) String() string {
	var sb strings.Builder
	if c.Expected {
		sb.WriteString("EXPECTED ")
	}
	agg := "COUNT(*)"
	if c.Agg == AggSum {
		agg = fmt.Sprintf("SUM(%s)", c.Expr.String())
	}
	if c.Filter != nil {
		fmt.Fprintf(&sb, "(SELECT %s WHERE %s FROM P)", agg, c.Filter)
	} else {
		sb.WriteString(agg)
	}
	if c.Between {
		fmt.Fprintf(&sb, " BETWEEN %s AND %s", trimFloat(c.Lo), trimFloat(c.Hi))
	} else {
		fmt.Fprintf(&sb, " %s %s", c.Op, trimFloat(c.Value))
	}
	if c.Prob != nil {
		fmt.Fprintf(&sb, " WITH PROBABILITY %s %s", c.Prob.Op, trimFloat(c.Prob.P))
	}
	return sb.String()
}

// ObjSense is the optimization direction.
type ObjSense int

const (
	Minimize ObjSense = iota
	Maximize
)

func (s ObjSense) String() string {
	if s == Minimize {
		return "MINIMIZE"
	}
	return "MAXIMIZE"
}

// ObjKind is the objective form.
type ObjKind int

const (
	// ObjDeterministic is MIN/MAXIMIZE SUM(f) over deterministic attributes.
	ObjDeterministic ObjKind = iota
	// ObjExpected is MIN/MAXIMIZE EXPECTED SUM(f).
	ObjExpected
	// ObjProbability is MIN/MAXIMIZE PROBABILITY OF SUM(f) ⊙ v.
	ObjProbability
	// ObjCount is MIN/MAXIMIZE COUNT(*).
	ObjCount
)

// Objective is the optional MAXIMIZE/MINIMIZE clause.
type Objective struct {
	Sense ObjSense
	Kind  ObjKind
	Expr  LinExpr
	// Filter restricts the aggregate to matching package tuples (PaQL
	// general form); nil means no restriction.
	Filter BoolExpr
	// Op and Value define the inner constraint for ObjProbability.
	Op    CmpOp
	Value float64
}

func (o *Objective) String() string {
	var sb strings.Builder
	sb.WriteString(o.Sense.String())
	sb.WriteByte(' ')
	agg := fmt.Sprintf("SUM(%s)", o.Expr.String())
	if o.Kind == ObjCount {
		agg = "COUNT(*)"
	}
	if o.Filter != nil {
		agg = fmt.Sprintf("(SELECT %s WHERE %s FROM P)", agg, o.Filter)
	}
	switch o.Kind {
	case ObjCount, ObjDeterministic:
		sb.WriteString(agg)
	case ObjExpected:
		sb.WriteString("EXPECTED " + agg)
	case ObjProbability:
		fmt.Fprintf(&sb, "PROBABILITY OF %s %s %s", agg, o.Op, trimFloat(o.Value))
	}
	return sb.String()
}

// BoolExpr is a WHERE-clause predicate over deterministic attributes.
type BoolExpr interface {
	// Eval evaluates the predicate with attribute values supplied by get.
	Eval(get func(attr string) float64) bool
	// Attrs appends the referenced attribute names to dst.
	Attrs(dst []string) []string
	String() string
}

// Cmp is attr ⊙ value.
type Cmp struct {
	Attr  string
	Op    CmpOp
	Value float64
}

func (c *Cmp) Eval(get func(string) float64) bool { return c.Op.Compare(get(c.Attr), c.Value) }
func (c *Cmp) Attrs(dst []string) []string        { return append(dst, c.Attr) }
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, trimFloat(c.Value))
}

// And is a conjunction.
type And struct{ L, R BoolExpr }

func (a *And) Eval(get func(string) float64) bool { return a.L.Eval(get) && a.R.Eval(get) }
func (a *And) Attrs(dst []string) []string        { return a.R.Attrs(a.L.Attrs(dst)) }
func (a *And) String() string                     { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is a disjunction.
type Or struct{ L, R BoolExpr }

func (o *Or) Eval(get func(string) float64) bool { return o.L.Eval(get) || o.R.Eval(get) }
func (o *Or) Attrs(dst []string) []string        { return o.R.Attrs(o.L.Attrs(dst)) }
func (o *Or) String() string                     { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is a negation.
type Not struct{ E BoolExpr }

func (n *Not) Eval(get func(string) float64) bool { return !n.E.Eval(get) }
func (n *Not) Attrs(dst []string) []string        { return n.E.Attrs(dst) }
func (n *Not) String() string                     { return fmt.Sprintf("NOT %s", n.E) }

// Query is a parsed sPaQL query.
type Query struct {
	Alias       string // package alias from AS, may be empty
	Table       string
	Repeat      int // REPEAT limit l (max l+1 copies per tuple); -1 if absent
	Where       BoolExpr
	Constraints []*Constraint
	Objective   *Objective
}

// Attrs returns the distinct attribute names the query reads anywhere — the
// WHERE predicate, every constraint's aggregate and filter, and the
// objective's aggregate and filter. This is the query's column footprint:
// a relation delta that touches none of these attributes (and does not change
// membership) cannot change the query's result.
func (q *Query) Attrs() []string {
	var raw []string
	if q.Where != nil {
		raw = q.Where.Attrs(raw)
	}
	for _, c := range q.Constraints {
		raw = append(raw, c.Expr.Attrs()...)
		if c.Filter != nil {
			raw = c.Filter.Attrs(raw)
		}
	}
	if o := q.Objective; o != nil {
		raw = append(raw, o.Expr.Attrs()...)
		if o.Filter != nil {
			raw = o.Filter.Attrs(raw)
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, a := range raw {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// String renders the query in canonical sPaQL; Parse(q.String()) reproduces
// the AST.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT PACKAGE(*)")
	if q.Alias != "" {
		fmt.Fprintf(&sb, " AS %s", q.Alias)
	}
	fmt.Fprintf(&sb, " FROM %s", q.Table)
	if q.Repeat >= 0 {
		fmt.Fprintf(&sb, " REPEAT %d", q.Repeat)
	}
	if q.Where != nil {
		fmt.Fprintf(&sb, " WHERE %s", q.Where)
	}
	if len(q.Constraints) > 0 {
		sb.WriteString(" SUCH THAT ")
		for i, c := range q.Constraints {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(c.String())
		}
	}
	if q.Objective != nil {
		sb.WriteByte(' ')
		sb.WriteString(q.Objective.String())
	}
	return sb.String()
}
