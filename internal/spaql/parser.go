package spaql

import (
	"fmt"
	"math"
)

// Parse parses an sPaQL query string into an AST. The grammar follows
// Figure 8 of the paper (Appendix A):
//
//	query      := SELECT PACKAGE '(' '*' ')' [AS ident] FROM ident
//	              [REPEAT number] [WHERE bool] [SUCH THAT constraint
//	              (AND constraint)*] [objective]
//	constraint := [EXPECTED] agg (cmp number | BETWEEN number AND number)
//	              [WITH PROBABILITY cmp number]
//	agg        := COUNT '(' '*' ')' | SUM '(' linexpr ')'
//	objective  := (MAXIMIZE|MINIMIZE) (EXPECTED agg
//	              | PROBABILITY OF agg cmp number | agg)
//	linexpr    := ['-'] term (('+'|'-') term)*
//	term       := number ['*' ident] | ident ['*' number | '/' number]
//	bool       := boolAnd (OR boolAnd)*
//	boolAnd    := boolAtom (AND boolAtom)*
//	boolAtom   := NOT boolAtom | '(' bool ')' | ident cmp number
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input starting with %q", p.peek().text)
	}
	return q, nil
}

// MustParse parses or panics; for tests and static query literals.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("spaql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", p.errorf("expected identifier, found %q", p.peek().text)
}

// expectNumber parses a number with optional unary minus.
func (p *parser) expectNumber() (float64, error) {
	neg := false
	if p.acceptSymbol("-") {
		neg = true
	} else if p.acceptSymbol("+") {
		// explicit positive sign
	}
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected number, found %q", t.text)
	}
	p.i++
	if neg {
		return -t.num, nil
	}
	return t.num, nil
}

// cmpOps maps symbol text to operators.
var cmpOps = map[string]CmpOp{
	"<=": OpLE, ">=": OpGE, "=": OpEQ, "<": OpLT, ">": OpGT, "<>": OpNE,
}

func (p *parser) expectCmp() (CmpOp, error) {
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.i++
			return op, nil
		}
	}
	return 0, p.errorf("expected comparison operator, found %q", t.text)
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Repeat: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("PACKAGE"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("*"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.Alias = alias
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Table = table
	if p.acceptKeyword("REPEAT") {
		v, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if v < 0 || v != float64(int(v)) {
			return nil, p.errorf("REPEAT limit must be a nonnegative integer, got %v", v)
		}
		q.Repeat = int(v)
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseBool()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKeyword("SUCH") {
		if err := p.expectKeyword("THAT"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			q.Constraints = append(q.Constraints, c)
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if t := p.peek(); t.kind == tokKeyword && (t.text == "MAXIMIZE" || t.text == "MINIMIZE") {
		obj, err := p.parseObjective()
		if err != nil {
			return nil, err
		}
		q.Objective = obj
	}
	return q, nil
}

// parseAggClause parses either a bare aggregate or the PaQL general form
// '(' SELECT agg [WHERE bool] FROM ident ')', returning the optional filter.
func (p *parser) parseAggClause() (AggKind, LinExpr, BoolExpr, error) {
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		// Lookahead for SELECT to distinguish a subselect from other uses.
		if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword && p.toks[p.i+1].text == "SELECT" {
			p.i += 2 // consume '(' SELECT
			agg, expr, err := p.parseAgg()
			if err != nil {
				return 0, LinExpr{}, nil, err
			}
			var filter BoolExpr
			if p.acceptKeyword("WHERE") {
				filter, err = p.parseBool()
				if err != nil {
					return 0, LinExpr{}, nil, err
				}
			}
			if err := p.expectKeyword("FROM"); err != nil {
				return 0, LinExpr{}, nil, err
			}
			if _, err := p.expectIdent(); err != nil { // package alias, e.g. P
				return 0, LinExpr{}, nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return 0, LinExpr{}, nil, err
			}
			return agg, expr, filter, nil
		}
	}
	agg, expr, err := p.parseAgg()
	return agg, expr, nil, err
}

// parseAgg parses COUNT(*) or SUM(linexpr).
func (p *parser) parseAgg() (AggKind, LinExpr, error) {
	if p.acceptKeyword("COUNT") {
		if err := p.expectSymbol("("); err != nil {
			return 0, LinExpr{}, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return 0, LinExpr{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return 0, LinExpr{}, err
		}
		return AggCount, LinExpr{Const: 1}, nil
	}
	if p.acceptKeyword("SUM") {
		if err := p.expectSymbol("("); err != nil {
			return 0, LinExpr{}, err
		}
		e, err := p.parseLinExpr()
		if err != nil {
			return 0, LinExpr{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return 0, LinExpr{}, err
		}
		return AggSum, e, nil
	}
	return 0, LinExpr{}, p.errorf("expected COUNT or SUM, found %q", p.peek().text)
}

func (p *parser) parseConstraint() (*Constraint, error) {
	c := &Constraint{}
	if p.acceptKeyword("EXPECTED") {
		c.Expected = true
	}
	agg, expr, filter, err := p.parseAggClause()
	if err != nil {
		return nil, err
	}
	c.Agg = agg
	c.Expr = expr
	c.Filter = filter
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, p.errorf("BETWEEN bounds inverted: %v > %v", lo, hi)
		}
		c.Between = true
		c.Lo, c.Hi = lo, hi
	} else {
		op, err := p.expectCmp()
		if err != nil {
			return nil, err
		}
		v, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		c.Op = op
		c.Value = v
	}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("PROBABILITY"); err != nil {
			return nil, err
		}
		op, err := p.expectCmp()
		if err != nil {
			return nil, err
		}
		if op != OpGE && op != OpLE {
			return nil, p.errorf("WITH PROBABILITY requires >= or <=")
		}
		pv, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if pv < 0 || pv > 1 {
			return nil, p.errorf("probability %v outside [0, 1]", pv)
		}
		c.Prob = &ProbClause{Op: op, P: pv}
	}
	return c, nil
}

func (p *parser) parseObjective() (*Objective, error) {
	obj := &Objective{}
	switch {
	case p.acceptKeyword("MAXIMIZE"):
		obj.Sense = Maximize
	case p.acceptKeyword("MINIMIZE"):
		obj.Sense = Minimize
	default:
		return nil, p.errorf("expected MAXIMIZE or MINIMIZE")
	}
	switch {
	case p.acceptKeyword("EXPECTED"):
		agg, expr, filter, err := p.parseAggClause()
		if err != nil {
			return nil, err
		}
		obj.Kind = ObjExpected
		if agg == AggCount {
			obj.Kind = ObjCount
		}
		obj.Expr = expr
		obj.Filter = filter
	case p.acceptKeyword("PROBABILITY"):
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		agg, expr, filter, err := p.parseAggClause()
		if err != nil {
			return nil, err
		}
		if agg == AggCount {
			return nil, p.errorf("PROBABILITY OF COUNT(*) is not supported; COUNT is deterministic")
		}
		op, err := p.expectCmp()
		if err != nil {
			return nil, err
		}
		v, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		obj.Kind = ObjProbability
		obj.Expr = expr
		obj.Filter = filter
		obj.Op = op
		obj.Value = v
	default:
		agg, expr, filter, err := p.parseAggClause()
		if err != nil {
			return nil, err
		}
		obj.Kind = ObjDeterministic
		if agg == AggCount {
			obj.Kind = ObjCount
		}
		obj.Expr = expr
		obj.Filter = filter
	}
	return obj, nil
}

// parseLinExpr parses a linear expression: [-] term ((+|-) term)*.
func (p *parser) parseLinExpr() (LinExpr, error) {
	var e LinExpr
	sign := 1.0
	if p.acceptSymbol("-") {
		sign = -1
	}
	if err := p.parseTerm(&e, sign); err != nil {
		return e, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			sign = 1
		case p.acceptSymbol("-"):
			sign = -1
		default:
			return e, nil
		}
		if err := p.parseTerm(&e, sign); err != nil {
			return e, err
		}
	}
}

// parseTerm parses number ['*' ident] | ident ['*' number | '/' number] and
// accumulates into e with the given sign.
func (p *parser) parseTerm(e *LinExpr, sign float64) error {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		coef := sign * t.num
		if p.acceptSymbol("*") {
			attr, err := p.expectIdent()
			if err != nil {
				return err
			}
			e.Terms = append(e.Terms, Term{Coef: coef, Attr: attr})
			return nil
		}
		e.Const += coef
		if math.IsInf(e.Const, 0) || math.IsNaN(e.Const) {
			return p.errorf("constant term overflows")
		}
		return nil
	case tokIdent:
		p.i++
		coef := sign
		if p.acceptSymbol("*") {
			num := p.peek()
			if num.kind != tokNumber {
				return p.errorf("expected number after '*', found %q", num.text)
			}
			p.i++
			coef *= num.num
		} else if p.acceptSymbol("/") {
			num := p.peek()
			if num.kind != tokNumber {
				return p.errorf("expected number after '/', found %q", num.text)
			}
			if num.num == 0 {
				return p.errorf("division by zero in linear expression")
			}
			p.i++
			coef /= num.num
			if math.IsInf(coef, 0) || math.IsNaN(coef) {
				return p.errorf("coefficient overflows")
			}
		}
		e.Terms = append(e.Terms, Term{Coef: coef, Attr: t.text})
		return nil
	default:
		return p.errorf("expected attribute or number, found %q", t.text)
	}
}

// parseBool parses OR-separated conjunctions.
func (p *parser) parseBool() (BoolExpr, error) {
	l, err := p.parseBoolAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseBoolAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseBoolAnd() (BoolExpr, error) {
	l, err := p.parseBoolAtom()
	if err != nil {
		return nil, err
	}
	for {
		// Lookahead: AND here belongs to WHERE only if followed by another
		// atom, not by a constraint keyword — but sPaQL places WHERE before
		// SUCH THAT, so any AND directly inside WHERE is a conjunction.
		if t := p.peek(); t.kind == tokKeyword && t.text == "AND" {
			p.i++
			r, err := p.parseBoolAtom()
			if err != nil {
				return nil, err
			}
			l = &And{L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseBoolAtom() (BoolExpr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseBoolAtom()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	}
	if p.acceptSymbol("(") {
		e, err := p.parseBool()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	attr, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	op, err := p.expectCmp()
	if err != nil {
		return nil, err
	}
	v, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	return &Cmp{Attr: attr, Op: op, Value: v}, nil
}
