package spaql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokSymbol
)

// token is one lexical token with its source position (for error messages).
type token struct {
	kind tokenKind
	text string // keywords upper-cased, symbols canonical
	num  float64
	pos  int
}

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "PACKAGE": true, "AS": true, "FROM": true,
	"REPEAT": true, "WHERE": true, "SUCH": true, "THAT": true,
	"AND": true, "OR": true, "NOT": true, "COUNT": true, "SUM": true,
	"BETWEEN": true, "EXPECTED": true, "WITH": true, "PROBABILITY": true,
	"MAXIMIZE": true, "MINIMIZE": true, "OF": true,
}

// lex tokenizes an sPaQL string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		// Multi-byte comparison glyphs (the paper writes ≤/≥) must be
		// recognized before byte-wise classification: their lead byte 0xE2
		// would otherwise decode as a letter.
		if strings.HasPrefix(input[i:], "≤") {
			toks = append(toks, token{kind: tokSymbol, text: "<=", pos: i})
			i += len("≤")
			continue
		}
		if strings.HasPrefix(input[i:], "≥") {
			toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
			i += len("≥")
			continue
		}
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// SQL-style line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentChar(rune(input[i]))) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' ||
				input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && i > start && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			text := input[start:i]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("spaql: invalid number %q at offset %d", text, start)
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: v, pos: start})
		default:
			start := i
			var sym string
			switch c {
			case '<':
				if i+1 < n && input[i+1] == '=' {
					sym, i = "<=", i+2
				} else if i+1 < n && input[i+1] == '>' {
					sym, i = "<>", i+2
				} else {
					sym, i = "<", i+1
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					sym, i = ">=", i+2
				} else {
					sym, i = ">", i+1
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					sym, i = "<>", i+2
				} else {
					return nil, fmt.Errorf("spaql: unexpected character %q at offset %d", c, start)
				}
			case '=', '(', ')', '*', ',', '+', '-', '/':
				sym, i = string(c), i+1
			default:
				return nil, fmt.Errorf("spaql: unexpected character %q at offset %d", c, start)
			}
			toks = append(toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentChar(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

// Tokens returns the lexed token texts of an sPaQL string; it is exposed for
// tooling and tests (the parser consumes tokens directly).
func Tokens(input string) ([]string, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(toks)-1)
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		out = append(out, t.text)
	}
	return out, nil
}
