package workload

import (
	"fmt"
	"math"
	"sort"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

// tradingDt is one trading day in years.
const tradingDt = 1.0 / 252

// portfolioRow describes one Table 3 Portfolio query.
type portfolioRow struct {
	id       string
	p        float64
	v        float64
	week     bool // 1-week predictions (else 2-day)
	volatile bool // restrict to the 30% most volatile stocks
}

// portfolioRows reproduces Table 3 (Portfolio): objective MAXIMIZE EXPECTED
// SUM(gain) under SUM(price) ≤ 1000, supported by the VaR constraint
// SUM(gain) ≥ v WITH PROBABILITY ≥ p.
var portfolioRows = []portfolioRow{
	{"Q1", 0.90, -10, false, false},
	{"Q2", 0.95, -10, false, false},
	{"Q3", 0.90, -10, false, true},
	{"Q4", 0.95, -10, false, true},
	{"Q5", 0.90, -1, false, true},
	{"Q6", 0.95, -1, false, true},
	{"Q7", 0.90, -10, true, true},
	{"Q8", 0.90, -1, true, true},
}

// Portfolio generates the financial-prediction workload. Config.N is the
// number of stocks; each stock contributes one tuple per sell horizon
// (2 horizons for the 2-day tables, 5 trading days for the 1-week tables),
// and all tuples of one stock share a single GBM price path per scenario,
// reproducing the intra-stock correlation of Figure 1.
func Portfolio(cfg Config) *Instance {
	cfg = cfg.withDefaults()
	in := &Instance{Name: "portfolio", Tables: map[string]*relation.Relation{}}

	bs := baseStream(cfg.Seed, 2)
	nStocks := cfg.N
	price := make([]float64, nStocks)
	volat := make([]float64, nStocks)
	drift := make([]float64, nStocks)
	for s := 0; s < nStocks; s++ {
		price[s] = math.Exp(3.5 + 1.2*bs.Norm()) // lognormal prices ≈ $10–$300
		if price[s] < 5 {
			price[s] = 5
		}
		if price[s] > 900 {
			price[s] = 900
		}
		volat[s] = 0.15 + 0.75*bs.Float64() // annualized volatility
		drift[s] = 0.04 + 0.03*bs.Norm()    // annualized drift
	}
	// The 30% most volatile stocks (descending volatility).
	order := make([]int, nStocks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return volat[order[a]] > volat[order[b]] })
	cut := nStocks * 3 / 10
	if cut < 1 {
		cut = 1
	}
	volatileSet := make(map[int]bool, cut)
	for _, s := range order[:cut] {
		volatileSet[s] = true
	}

	build := func(table string, week bool, volatileOnly bool, attrID uint64) *relation.Relation {
		horizons := []int{1, 2}
		if week {
			horizons = []int{1, 2, 3, 4, 5}
		}
		var stocks []int
		for s := 0; s < nStocks; s++ {
			if volatileOnly && !volatileSet[s] {
				continue
			}
			stocks = append(stocks, s)
		}
		n := len(stocks) * len(horizons)
		rel := relation.New(table, n)
		tPrice := make([]float64, n)
		tHorizon := make([]float64, n)
		tStock := make([]float64, n)
		tVol := make([]float64, n)
		group := make([]int, n)
		horizon := make([]int, n)
		means := make([]float64, n)
		maxH := horizons[len(horizons)-1]
		for k := 0; k < n; k++ {
			s := stocks[k/len(horizons)]
			h := horizons[k%len(horizons)]
			tPrice[k] = price[s]
			tHorizon[k] = float64(h)
			tStock[k] = float64(s)
			tVol[k] = volat[s]
			group[k] = s
			horizon[k] = h
			g := dist.GBM{S0: price[s], Mu: drift[s], Sigma: volat[s], Dt: tradingDt}
			means[k] = g.MeanAt(h) - price[s]
		}
		if err := rel.AddDet("price", tPrice); err != nil {
			panic(err)
		}
		if err := rel.AddDet("sell_in", tHorizon); err != nil {
			panic(err)
		}
		if err := rel.AddDet("stock", tStock); err != nil {
			panic(err)
		}
		if err := rel.AddDet("volatility", tVol); err != nil {
			panic(err)
		}
		// One shared GBM path per (stock, scenario): Eval regenerates the
		// path prefix deterministically from the shared stream.
		vg := &relation.GroupedVG{
			AttrID: attrID,
			Group:  group,
			Means:  means,
			Eval: func(st *rng.Stream, tuple int) float64 {
				s := group[tuple]
				g := dist.GBM{S0: price[s], Mu: drift[s], Sigma: volat[s], Dt: tradingDt}
				path := make([]float64, maxH)
				g.Path(st, path)
				return path[horizon[tuple]-1] - price[s]
			},
		}
		if err := rel.AddStoch("gain", vg); err != nil {
			panic(err)
		}
		rel.ComputeMeans(rng.NewSource(rng.Mix(cfg.Seed, attrID)), cfg.MeansM)
		return rel
	}

	in.Tables["trades_2day_all"] = build("trades_2day_all", false, false, 0x90f1)
	in.Tables["trades_2day_vol"] = build("trades_2day_vol", false, true, 0x90f2)
	in.Tables["trades_week_vol"] = build("trades_week_vol", true, true, 0x90f3)

	for _, row := range portfolioRows {
		table := "trades_2day_all"
		switch {
		case row.week:
			table = "trades_week_vol"
		case row.volatile:
			table = "trades_2day_vol"
		}
		span := "2-day"
		if row.week {
			span = "1-week"
		}
		universe := "all stocks"
		if row.volatile {
			universe = "most volatile 30%"
		}
		in.Queries = append(in.Queries, Query{
			ID:       row.id,
			Table:    table,
			Feasible: true,
			FixedZ:   1,
			Description: fmt.Sprintf("GBM, supported objective, p=%g, v=%g, %s, %s",
				row.p, row.v, span, universe),
			SPaQL: fmt.Sprintf(`SELECT PACKAGE(*) FROM %s SUCH THAT
				SUM(price) <= 1000 AND
				SUM(gain) >= %g WITH PROBABILITY >= %g
				MAXIMIZE EXPECTED SUM(gain)`, table, row.v, row.p),
		})
	}
	return in
}
