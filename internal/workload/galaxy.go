package workload

import (
	"fmt"
	"math"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

// galaxyRow describes one Table 3 Galaxy query: the noise model applied to
// the base telescope reading, the inner-constraint direction, and v.
type galaxyRow struct {
	id        string
	noise     string // "normal", "normal*", "pareto", "pareto*"
	sigma     float64
	supported bool // supported objective: SUM ≤ v; counteracted: SUM ≥ v
	v         float64
}

// galaxyRows reproduces Table 3 (Galaxy): p = 0.9 throughout, objective
// MINIMIZE EXPECTED SUM(petromag_r), COUNT(*) BETWEEN 5 AND 10.
var galaxyRows = []galaxyRow{
	{"Q1", "normal", 2, false, 40},
	{"Q2", "normal*", 3, false, 43},
	{"Q3", "normal", 2, true, 50},
	{"Q4", "normal*", 3, true, 52},
	{"Q5", "pareto", 1, false, 65},
	{"Q6", "pareto*", 1, false, 65},
	{"Q7", "pareto", 1, true, 109},
	{"Q8", "pareto*", 3, true, 90},
}

// Galaxy generates the noisy-sensor workload: each tuple is a sky region
// with a base petromag_r reading (synthetic stand-in for SDSS DR12, drawn
// uniformly from [5, 15]); each query perturbs it with the Table 3 noise
// model. Every query gets its own table because the noise model differs per
// query.
func Galaxy(cfg Config) *Instance {
	cfg = cfg.withDefaults()
	in := &Instance{Name: "galaxy", Tables: map[string]*relation.Relation{}}
	bs := baseStream(cfg.Seed, 1)
	base := make([]float64, cfg.N)
	for i := range base {
		base[i] = 5 + 10*bs.Float64()
	}
	meansSrc := rng.NewSource(rng.Mix(cfg.Seed, 0x3ea5))

	for qi, row := range galaxyRows {
		table := fmt.Sprintf("galaxy_%s", row.id)
		rel := relation.New(table, cfg.N)
		baseCopy := append([]float64(nil), base...)
		if err := rel.AddDet("base_r", baseCopy); err != nil {
			panic(err)
		}
		// Per-tuple random spread for the σ*-style rows: |N(0, σ*)|.
		spread := rng.NewStream(rng.Mix(cfg.Seed, 2, uint64(qi)))
		dists := make([]dist.Dist, cfg.N)
		for i := 0; i < cfg.N; i++ {
			switch row.noise {
			case "normal":
				dists[i] = dist.Normal{Mu: base[i], Sigma: row.sigma}
			case "normal*":
				s := math.Abs(spread.Norm() * row.sigma)
				if s < 0.1 {
					s = 0.1
				}
				dists[i] = dist.Normal{Mu: base[i], Sigma: s}
			case "pareto":
				dists[i] = dist.Shifted{Off: base[i], D: dist.Pareto{Sigma: row.sigma, Alpha: 1}}
			case "pareto*":
				s := math.Abs(spread.Norm() * row.sigma)
				if s < 0.1 {
					s = 0.1
				}
				dists[i] = dist.Shifted{Off: base[i], D: dist.Pareto{Sigma: s, Alpha: 1}}
			}
		}
		if err := rel.AddStoch("petromag_r", &relation.IndependentVG{
			AttrID: rng.Mix(0x9a1a, uint64(qi)),
			Dists:  dists,
		}); err != nil {
			panic(err)
		}
		rel.ComputeMeans(meansSrc.Derive(uint64(qi)), cfg.MeansM)
		in.Tables[table] = rel

		op := ">="
		kind := "counteracted"
		if row.supported {
			op = "<="
			kind = "supported"
		}
		in.Queries = append(in.Queries, Query{
			ID:       row.id,
			Table:    table,
			Feasible: true,
			FixedZ:   1,
			Description: fmt.Sprintf("%s noise σ=%g, %s objective, p=0.9, v=%g",
				row.noise, row.sigma, kind, row.v),
			SPaQL: fmt.Sprintf(`SELECT PACKAGE(*) FROM %s SUCH THAT
				COUNT(*) BETWEEN 5 AND 10 AND
				SUM(petromag_r) %s %g WITH PROBABILITY >= 0.9
				MINIMIZE EXPECTED SUM(petromag_r)`, table, op, row.v),
		})
	}
	return in
}
