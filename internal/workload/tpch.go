package workload

import (
	"fmt"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

// tpchRow describes one Table 3 TPC-H query: the per-source noise model
// used for the data-integration uncertainty, the number of integrated
// sources D, p and v.
type tpchRow struct {
	id       string
	noise    string // "exp", "poisson1", "poisson2", "uniform", "studentt"
	d        int
	p        float64
	v        float64
	feasible bool
}

// tpchRows reproduces Table 3 (TPC-H): objective MAXIMIZE PROBABILITY OF
// SUM(revenue) ≥ 1000, constraint COUNT(*) BETWEEN 1 AND 10 and
// SUM(quantity) ≤ v WITH PROBABILITY ≥ p. Q8 is the workload's infeasible
// query.
var tpchRows = []tpchRow{
	{"Q1", "exp", 3, 0.90, 15, true},
	{"Q2", "exp", 10, 0.95, 7, true},
	{"Q3", "poisson2", 3, 0.90, 15, true},
	{"Q4", "poisson1", 10, 0.90, 10, true},
	{"Q5", "uniform", 3, 0.90, 15, true},
	{"Q6", "uniform", 10, 0.95, 7, true},
	{"Q7", "studentt", 3, 0.90, 29, true},
	{"Q8", "studentt", 10, 0.95, 7, false},
}

// noiseDist returns the centered per-source perturbation distribution for a
// Table 3 row (mean-anchored around the original value).
func noiseDist(kind string, s *rng.Stream) dist.Dist {
	switch kind {
	case "exp":
		// Exponential(λ=1) centered: mean 1 subtracted.
		return dist.Exponential{Lambda: 1, Loc: -1}
	case "poisson1":
		return dist.Poisson{Lambda: 1, Loc: -1}
	case "poisson2":
		return dist.Poisson{Lambda: 2, Loc: -2}
	case "uniform":
		return dist.Uniform{Lo: -0.5, Hi: 0.5}
	case "studentt":
		return dist.StudentT{Nu: 2, Loc: 0, Scale: 1}
	default:
		panic("workload: unknown tpch noise " + kind)
	}
}

// TPCH generates the data-integration workload. Each query has its own
// table (Table 3 varies the noise model and D per query). For each tuple and
// each stochastic attribute we materialize D source values — the original
// value plus a centered draw from the row's distribution — and a scenario
// samples one source uniformly at random (a discrete mixture).
func TPCH(cfg Config) *Instance {
	cfg = cfg.withDefaults()
	in := &Instance{Name: "tpch", Tables: map[string]*relation.Relation{}}
	bs := baseStream(cfg.Seed, 3)
	qtyBase := make([]float64, cfg.N)
	revBase := make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		qtyBase[i] = float64(1 + bs.IntN(50))
		revBase[i] = 100 + 1900*bs.Float64()
	}

	for qi, row := range tpchRows {
		table := fmt.Sprintf("tpch_%s", row.id)
		rel := relation.New(table, cfg.N)
		n := cfg.N

		qb := append([]float64(nil), qtyBase...)
		if row.id == "Q8" {
			// Infeasibility calibration: Q8 demands SUM(quantity) ≤ 7 with
			// p = 0.95 while COUNT(*) ≥ 1. With every source value ≥ 8 the
			// constraint holds with probability 0 for every package, so the
			// query is infeasible by construction (Table 3 marks it "No").
			for i := range qb {
				qb[i] = float64(8 + bs.IntN(13))
			}
		}
		if err := rel.AddDet("base_quantity", qb); err != nil {
			panic(err)
		}
		if err := rel.AddDet("base_revenue", append([]float64(nil), revBase...)); err != nil {
			panic(err)
		}

		// Materialize the D integrated source values per tuple. For Q8 the
		// quantity noise is folded positive (|draw|) so every source value
		// stays at or above the ≥8 base, keeping the query infeasible by
		// construction.
		srcStream := rng.NewStream(rng.Mix(cfg.Seed, 4, uint64(qi)))
		makeAttr := func(base []float64, scale float64, nonneg, positiveNoise bool) []dist.Dist {
			dists := make([]dist.Dist, n)
			for i := 0; i < n; i++ {
				nd := noiseDist(row.noise, srcStream)
				variants := make([]dist.Dist, row.d)
				for dsrc := 0; dsrc < row.d; dsrc++ {
					draw := nd.Sample(srcStream)
					if positiveNoise && draw < 0 {
						draw = -draw
					}
					v := base[i] + scale*draw
					if nonneg && v < 0 {
						v = 0
					}
					variants[dsrc] = dist.Degenerate{Value: v}
				}
				dists[i] = dist.UniformMixture(variants...)
			}
			return dists
		}
		if err := rel.AddStoch("quantity", &relation.IndependentVG{
			AttrID: rng.Mix(0x79c4, uint64(qi), 1),
			Dists:  makeAttr(qb, 1, true, row.id == "Q8"),
		}); err != nil {
			panic(err)
		}
		// Revenue noise scales with the value magnitude so integration
		// disagreement is proportional, as in merged sales feeds.
		if err := rel.AddStoch("revenue", &relation.IndependentVG{
			AttrID: rng.Mix(0x79c4, uint64(qi), 2),
			Dists:  makeAttr(revBase, 40, true, false),
		}); err != nil {
			panic(err)
		}
		rel.ComputeMeans(rng.NewSource(rng.Mix(cfg.Seed, 5, uint64(qi))), cfg.MeansM)
		in.Tables[table] = rel

		in.Queries = append(in.Queries, Query{
			ID:       row.id,
			Table:    table,
			Feasible: row.feasible,
			FixedZ:   2,
			Description: fmt.Sprintf("%s noise, D=%d, p=%g, v=%g, independent objective",
				row.noise, row.d, row.p, row.v),
			SPaQL: fmt.Sprintf(`SELECT PACKAGE(*) FROM %s SUCH THAT
				COUNT(*) BETWEEN 1 AND 10 AND
				SUM(quantity) <= %g WITH PROBABILITY >= %g
				MAXIMIZE PROBABILITY OF SUM(revenue) >= 1000`, table, row.v, row.p),
		})
	}
	return in
}
