// Package workload generates the paper's three experimental workloads
// (§6.1, Appendix C, Table 3): Galaxy (noisy telescope readings), Portfolio
// (geometric-Brownian-motion stock forecasts) and TPC-H (data-integration
// uncertainty), each with its eight sPaQL queries.
//
// The original datasets (SDSS DR12 extracts, Yahoo Finance quotes, TPC-H
// dbgen output) are not redistributable/offline-available, so base values
// are produced by seeded synthetic generators with the value ranges the
// paper's query parameters assume; the uncertainty models — the part that
// drives the optimization behaviour — follow Table 3 exactly. See DESIGN.md
// ("Substitutions").
package workload

import (
	"fmt"

	"spq/internal/relation"
	"spq/internal/rng"
)

// Query is one workload query: its sPaQL text, the table it runs against,
// and the paper's metadata for it.
type Query struct {
	// ID is the paper's query name (Q1..Q8).
	ID string
	// Table names the relation in Instance.Tables the query targets.
	Table string
	// SPaQL is the full query text.
	SPaQL string
	// Feasible is the expected feasibility from Table 3.
	Feasible bool
	// FixedZ is the per-workload summary count used in §6.2.1 (1 for Galaxy
	// and Portfolio, 2 for TPC-H).
	FixedZ int
	// Description summarizes the Table 3 row (distribution, p, v, extras).
	Description string
}

// Instance is a generated workload: one or more Monte Carlo relations plus
// the eight queries over them.
type Instance struct {
	Name    string
	Tables  map[string]*relation.Relation
	Queries []Query
}

// Table returns the named relation, panicking on a workload-internal
// inconsistency (unknown table names indicate a bug, not user error).
func (in *Instance) Table(name string) *relation.Relation {
	rel, ok := in.Tables[name]
	if !ok {
		panic(fmt.Sprintf("workload: no table %q in instance %q", name, in.Name))
	}
	return rel
}

// QueryByID returns the query with the given ID (e.g. "Q3").
func (in *Instance) QueryByID(id string) (Query, bool) {
	for _, q := range in.Queries {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// Config controls workload generation.
type Config struct {
	// N is the (base) table size in tuples.
	N int
	// Seed drives the deterministic base-data generator.
	Seed uint64
	// MeansM is the scenario count used to estimate means of attributes
	// with no closed form (default 2000).
	MeansM int
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.MeansM == 0 {
		c.MeansM = 2000
	}
	return c
}

// baseStream returns the deterministic stream used for synthetic base data.
func baseStream(seed uint64, label uint64) *rng.Stream {
	return rng.NewStream(rng.Mix(seed, 0xba5e, label))
}
