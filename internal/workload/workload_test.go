package workload

import (
	"math"
	"strings"
	"testing"

	"spq/internal/core"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

func cfg(n int) Config { return Config{N: n, Seed: 42, MeansM: 300} }

func TestGalaxyStructure(t *testing.T) {
	in := Galaxy(cfg(50))
	if len(in.Queries) != 8 {
		t.Fatalf("got %d queries, want 8", len(in.Queries))
	}
	if len(in.Tables) != 8 {
		t.Fatalf("got %d tables, want 8 (one noise model per query)", len(in.Tables))
	}
	for _, q := range in.Queries {
		rel := in.Table(q.Table)
		if rel.N() != 50 {
			t.Fatalf("%s: N = %d", q.ID, rel.N())
		}
		if !rel.IsStochastic("petromag_r") {
			t.Fatalf("%s: petromag_r not stochastic", q.ID)
		}
		if !q.Feasible {
			t.Fatalf("%s: all Galaxy queries are feasible in Table 3", q.ID)
		}
		if q.FixedZ != 1 {
			t.Fatalf("%s: FixedZ = %d, want 1", q.ID, q.FixedZ)
		}
	}
}

func TestGalaxyQueriesParseAndBuild(t *testing.T) {
	in := Galaxy(cfg(40))
	for _, q := range in.Queries {
		parsed, err := spaql.Parse(q.SPaQL)
		if err != nil {
			t.Fatalf("%s: parse: %v", q.ID, err)
		}
		if _, err := translate.Build(parsed, in.Table(q.Table), nil); err != nil {
			t.Fatalf("%s: build: %v", q.ID, err)
		}
	}
}

func TestGalaxyNoiseModels(t *testing.T) {
	in := Galaxy(cfg(30))
	src := rng.NewSource(7)
	// Pareto noise (Q5) must always push values above the base reading.
	q5 := in.Table("galaxy_Q5")
	base, _ := q5.Det("base_r")
	for j := 0; j < 20; j++ {
		for i := 0; i < q5.N(); i++ {
			v, err := q5.Value(src, "petromag_r", i, j)
			if err != nil {
				t.Fatal(err)
			}
			if v < base[i]+1 { // Pareto(1,1) support is [1, ∞)
				t.Fatalf("Q5 realization %v below base+scale %v", v, base[i]+1)
			}
		}
	}
	// Normal noise (Q1) must straddle the base.
	q1 := in.Table("galaxy_Q1")
	below, above := 0, 0
	for j := 0; j < 50; j++ {
		v, _ := q1.Value(src, "petromag_r", 0, j)
		if v < base[0] {
			below++
		} else {
			above++
		}
	}
	if below == 0 || above == 0 {
		t.Fatalf("Gaussian noise one-sided: %d below, %d above", below, above)
	}
}

func TestGalaxyDeterministicGeneration(t *testing.T) {
	a := Galaxy(cfg(20))
	b := Galaxy(cfg(20))
	ba, _ := a.Table("galaxy_Q1").Det("base_r")
	bb, _ := b.Table("galaxy_Q1").Det("base_r")
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same seed produced different base data")
		}
	}
	diff := Galaxy(Config{N: 20, Seed: 43, MeansM: 300})
	bd, _ := diff.Table("galaxy_Q1").Det("base_r")
	same := true
	for i := range ba {
		if ba[i] != bd[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical base data")
	}
}

func TestPortfolioStructure(t *testing.T) {
	in := Portfolio(cfg(40)) // 40 stocks
	if len(in.Queries) != 8 {
		t.Fatalf("got %d queries", len(in.Queries))
	}
	all := in.Table("trades_2day_all")
	if all.N() != 80 { // 2 horizons per stock
		t.Fatalf("2day_all N = %d, want 80", all.N())
	}
	vol := in.Table("trades_2day_vol")
	if vol.N() != 24 { // 30% of 40 = 12 stocks × 2 horizons
		t.Fatalf("2day_vol N = %d, want 24", vol.N())
	}
	week := in.Table("trades_week_vol")
	if week.N() != 60 { // 12 stocks × 5 horizons
		t.Fatalf("week_vol N = %d, want 60", week.N())
	}
}

func TestPortfolioVolatileSubset(t *testing.T) {
	in := Portfolio(cfg(40))
	allVol, _ := in.Table("trades_2day_all").Det("volatility")
	subsetVol, _ := in.Table("trades_2day_vol").Det("volatility")
	minSubset := math.Inf(1)
	for _, v := range subsetVol {
		minSubset = math.Min(minSubset, v)
	}
	countAbove := 0
	for _, v := range allVol {
		if v > minSubset+1e-12 {
			countAbove++
		}
	}
	// Every stock more volatile than the subset minimum must be in the
	// subset: the subset has 24 tuples, so at most 24 tuples may exceed it.
	if countAbove > len(subsetVol) {
		t.Fatalf("%d tuples exceed the subset minimum volatility %v, subset has %d",
			countAbove, minSubset, len(subsetVol))
	}
}

func TestPortfolioSameStockCorrelation(t *testing.T) {
	in := Portfolio(cfg(20))
	rel := in.Table("trades_2day_all")
	stocks, _ := rel.Det("stock")
	sellIn, _ := rel.Det("sell_in")
	src := rng.NewSource(5)
	// Tuples 0 and 1 are the same stock at horizons 1 and 2: the horizon-2
	// price continues the same path, so gains must be highly correlated.
	if stocks[0] != stocks[1] || sellIn[0] == sellIn[1] {
		t.Fatalf("layout assumption broken: stock %v/%v sell %v/%v", stocks[0], stocks[1], sellIn[0], sellIn[1])
	}
	var sum0, sum1, sum00, sum11, sum01 float64
	const m = 4000
	for j := 0; j < m; j++ {
		g0, _ := rel.Value(src, "gain", 0, j)
		g1, _ := rel.Value(src, "gain", 1, j)
		sum0 += g0
		sum1 += g1
		sum00 += g0 * g0
		sum11 += g1 * g1
		sum01 += g0 * g1
	}
	cov := sum01/m - (sum0/m)*(sum1/m)
	sd0 := math.Sqrt(sum00/m - (sum0/m)*(sum0/m))
	sd1 := math.Sqrt(sum11/m - (sum1/m)*(sum1/m))
	corr := cov / (sd0 * sd1)
	if corr < 0.5 {
		t.Fatalf("same-stock horizon gains correlation = %v, want strong positive", corr)
	}
}

func TestPortfolioGainMeansMatchGBMClosedForm(t *testing.T) {
	in := Portfolio(cfg(10))
	rel := in.Table("trades_2day_all")
	price, _ := rel.Det("price")
	means, err := rel.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	// Means are exact (GroupedVG.Means): small positive drift ⇒ small
	// positive expected gain, magnitude well below price.
	for i, m := range means {
		if math.Abs(m) > price[i]*0.1 {
			t.Fatalf("mean gain %v implausible for price %v at short horizon", m, price[i])
		}
	}
}

func TestPortfolioQueriesParseAndBuild(t *testing.T) {
	in := Portfolio(cfg(20))
	for _, q := range in.Queries {
		parsed, err := spaql.Parse(q.SPaQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if _, err := translate.Build(parsed, in.Table(q.Table), nil); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}
}

func TestTPCHStructure(t *testing.T) {
	in := TPCH(cfg(60))
	if len(in.Queries) != 8 || len(in.Tables) != 8 {
		t.Fatalf("queries=%d tables=%d", len(in.Queries), len(in.Tables))
	}
	for _, q := range in.Queries {
		rel := in.Table(q.Table)
		if !rel.IsStochastic("quantity") || !rel.IsStochastic("revenue") {
			t.Fatalf("%s: missing stochastic attributes", q.ID)
		}
		if q.FixedZ != 2 {
			t.Fatalf("%s: FixedZ = %d, want 2", q.ID, q.FixedZ)
		}
	}
	q8, ok := in.QueryByID("Q8")
	if !ok || q8.Feasible {
		t.Fatal("Q8 must exist and be marked infeasible")
	}
}

func TestTPCHDiscreteSourceValues(t *testing.T) {
	in := TPCH(cfg(30))
	rel := in.Table("tpch_Q1") // D = 3
	src := rng.NewSource(11)
	// Each tuple's quantity can only take D distinct values.
	for i := 0; i < 10; i++ {
		seen := map[float64]bool{}
		for j := 0; j < 200; j++ {
			v, err := rel.Value(src, "quantity", i, j)
			if err != nil {
				t.Fatal(err)
			}
			seen[v] = true
		}
		if len(seen) > 3 {
			t.Fatalf("tuple %d quantity took %d distinct values, want ≤ D=3", i, len(seen))
		}
		if len(seen) < 2 {
			t.Logf("tuple %d: only %d distinct source values (sources may coincide)", i, len(seen))
		}
	}
}

func TestTPCHQ8StructurallyInfeasible(t *testing.T) {
	in := TPCH(cfg(50))
	rel := in.Table("tpch_Q8")
	src := rng.NewSource(13)
	// Every realization of every tuple's quantity must exceed 7, making
	// SUM(quantity) ≤ 7 with COUNT ≥ 1 impossible.
	for i := 0; i < rel.N(); i++ {
		for j := 0; j < 30; j++ {
			v, err := rel.Value(src, "quantity", i, j)
			if err != nil {
				t.Fatal(err)
			}
			if v <= 7 {
				t.Fatalf("tuple %d scenario %d quantity %v ≤ 7; Q8 would be feasible", i, j, v)
			}
		}
	}
}

func TestTPCHQueriesParseAndBuild(t *testing.T) {
	in := TPCH(cfg(40))
	for _, q := range in.Queries {
		parsed, err := spaql.Parse(q.SPaQL)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if !strings.Contains(q.SPaQL, "PROBABILITY OF") {
			t.Fatalf("%s: TPC-H objective must be a probability", q.ID)
		}
		if _, err := translate.Build(parsed, in.Table(q.Table), nil); err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
	}
}

// End-to-end smoke: SummarySearch solves one representative query from each
// workload at small scale.
func TestWorkloadsSolvableBySummarySearch(t *testing.T) {
	opts := &core.Options{Seed: 1, ValidationM: 800, InitialM: 10, IncrementM: 10, MaxM: 40}
	cases := []struct {
		in  *Instance
		qid string
	}{
		{Galaxy(cfg(40)), "Q1"},
		{Portfolio(cfg(30)), "Q1"},
		{TPCH(cfg(40)), "Q1"},
	}
	for _, c := range cases {
		q, ok := c.in.QueryByID(c.qid)
		if !ok {
			t.Fatalf("%s: no %s", c.in.Name, c.qid)
		}
		parsed := spaql.MustParse(q.SPaQL)
		silp, err := translate.Build(parsed, c.in.Table(q.Table), nil)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.in.Name, q.ID, err)
		}
		o := *opts
		o.FixedZ = q.FixedZ
		sol, err := core.SummarySearch(silp, &o)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.in.Name, q.ID, err)
		}
		if !sol.Feasible {
			t.Fatalf("%s/%s: SummarySearch infeasible (surpluses %v)", c.in.Name, q.ID, sol.Surpluses)
		}
	}
}
