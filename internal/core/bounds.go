package core

import (
	"math"

	"spq/internal/spaql"
	"spq/internal/translate"
)

// This file implements the (1+ε)-approximation machinery of §5.4 and
// Appendix B: bounds ω̲ ≤ ω̂ ≤ ω̄ on the optimal validation objective ω̂,
// assembled from
//
//	(A1) bounds s̲ ≤ ŝ_ij ≤ s̄ on realized objective inner-function values,
//	     probed over scenarios of all tuples (the paper's loose global
//	     min/max);
//	(A2) bounds l̲ ≤ Σx̂ ≤ l̄ on the optimal package size, derived from
//	     COUNT constraints and the per-tuple multiplicity bounds;
//	(B1) the constraint-agnostic bounds of Table 1; and
//	(B2) the constraint-specific bounds of Table 2 for probabilistic
//	     constraints whose inner function equals the objective's
//	     (supporting/counteracting, Definition 2).
//
// ε′ then follows from Propositions 2–5 depending on the optimization sense
// and objective sign.

// probeScenarios is the number of scenarios used to estimate the value range
// of the objective inner function across all tuples.
const probeScenarios = 64

// packageSizeBounds derives (A2) from the SILP: COUNT rows are recognized as
// deterministic rows whose coefficients are all exactly 1.
func packageSizeBounds(s *translate.SILP) (lo, hi float64) {
	lo = 0
	hi = 0
	for _, h := range s.VarHi {
		hi += h
	}
	for _, c := range s.DetCons {
		allOnes := true
		for _, a := range c.Coefs {
			if a != 1 {
				allOnes = false
				break
			}
		}
		if !allOnes {
			continue
		}
		if c.Lo > lo {
			lo = c.Lo
		}
		if c.Hi < hi {
			hi = c.Hi
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// probeObjectiveRange estimates s̲, s̄ (A1) by realizing the objective inner
// function for all tuples over a fixed number of validation-stream
// scenarios. For a purely deterministic objective the exact column extremes
// are used. Results are cached on the runner.
func (r *runner) probeObjectiveRange() (sLo, sHi float64) {
	if r.probed {
		return r.sLo, r.sHi
	}
	r.probed = true
	silp := r.silp
	sLo, sHi = math.Inf(1), math.Inf(-1)

	expr := silp.ObjExpr
	if len(expr.Terms) == 0 && silp.ObjKind == translate.ObjLinear {
		// COUNT-style or constant objective: per-tuple value is the constant.
		r.sLo, r.sHi = expr.Const, expr.Const
		if silp.ObjCoefs != nil {
			// Fall back to coefficient extremes when the expression was not
			// retained (deterministic objectives have exact coefficients).
			for _, c := range silp.ObjCoefs {
				sLo = math.Min(sLo, c)
				sHi = math.Max(sHi, c)
			}
			r.sLo, r.sHi = sLo, sHi
		}
		return r.sLo, r.sHi
	}

	stochastic := false
	for _, t := range expr.Terms {
		if silp.Rel.IsStochastic(t.Attr) {
			stochastic = true
			break
		}
	}
	if !stochastic {
		col, err := exprColumnDet(silp, expr)
		if err == nil {
			for _, v := range col {
				sLo = math.Min(sLo, v)
				sHi = math.Max(sHi, v)
			}
			r.sLo, r.sHi = sLo, sHi
			return sLo, sHi
		}
	}
	row := make([]float64, silp.N)
	for j := 0; j < probeScenarios; j++ {
		if err := translate.ExprRealize(r.valSrc, silp.Rel, expr, j, row); err != nil {
			r.sLo, r.sHi = math.Inf(-1), math.Inf(1) // unusable
			return r.sLo, r.sHi
		}
		for _, v := range row {
			sLo = math.Min(sLo, v)
			sHi = math.Max(sHi, v)
		}
	}
	r.sLo, r.sHi = sLo, sHi
	return sLo, sHi
}

// exprColumnDet evaluates a deterministic expression per tuple.
func exprColumnDet(s *translate.SILP, e spaql.LinExpr) ([]float64, error) {
	out := make([]float64, s.N)
	for i := range out {
		out[i] = e.Const
	}
	for _, t := range e.Terms {
		col, err := s.Rel.Det(t.Attr)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] += t.Coef * col[i]
		}
	}
	return out, nil
}

// omegaBounds assembles ω̲ ≤ ω̂ ≤ ω̄ for the validation-optimal objective in
// the query's original sense.
func (r *runner) omegaBounds() (lo, hi float64) {
	silp := r.silp
	if silp.ObjKind == translate.ObjProbability {
		// A probability objective is bounded in [0, 1]; a probabilistic
		// constraint over the same inner function tightens nothing useful.
		return 0, 1
	}
	sLo, sHi := r.probeObjectiveRange()
	lLo, lHi := r.sizeLo, r.sizeHi

	// (B1) Constraint-agnostic Table 1 bounds.
	if sLo >= 0 {
		lo = sLo * lLo
	} else {
		lo = sLo * lHi
	}
	if sHi >= 0 {
		hi = sHi * lHi
	} else {
		hi = sHi * lLo
	}

	// (B2) Constraint-specific Table 2 bounds for constraints whose inner
	// function matches the objective's.
	for _, pc := range silp.ProbCons {
		if !translate.ExprEqual(pc.Expr, silp.ObjExpr) {
			continue
		}
		if pc.Geq {
			// Pr(Σξx ≥ v) ≥ p: satisfied scenarios contribute ≥ v each.
			var partSat float64
			if pc.V >= 0 {
				partSat = pc.P * pc.V
			} else {
				partSat = pc.V
			}
			var partUnsat float64
			switch {
			case sLo >= 0:
				partUnsat = 0
			default:
				partUnsat = (1 - pc.P) * sLo * lHi
			}
			if b := partSat + partUnsat; b > lo {
				lo = b
			}
		} else {
			// Pr(Σξx ≤ v) ≥ p: satisfied scenarios contribute ≤ v each.
			var partSat float64
			if pc.V >= 0 {
				partSat = pc.V
			} else {
				partSat = pc.P * pc.V
			}
			var partUnsat float64
			switch {
			case sHi >= 0:
				partUnsat = (1 - pc.P) * sHi * lHi
			default:
				partUnsat = 0
			}
			if b := partSat + partUnsat; b < hi {
				hi = b
			}
		}
	}
	return lo, hi
}

// epsUpper computes ε′ = the Propositions 2–5 bound guaranteeing
// ω(q) within (1+ε′) of ω̂, given the solution's validation objective in the
// original sense. +Inf when no applicable bound exists.
func (r *runner) epsUpper(objVal float64) float64 {
	lo, hi := r.omegaBounds()
	var eps float64
	if !r.silp.Maximize {
		// Minimization: need ω̲ ≤ ω̂.
		switch {
		case lo > 0 && objVal > 0:
			eps = objVal/lo - 1 // Proposition 2
		case lo < 0 && objVal < 0:
			eps = lo/objVal - 1 // Proposition 3
		case lo == 0 && objVal == 0:
			eps = 0
		default:
			return math.Inf(1)
		}
	} else {
		// Maximization: need ω̂ ≤ ω̄.
		switch {
		case hi > 0 && objVal > 0:
			eps = hi/objVal - 1 // Proposition 4
		case hi < 0 && objVal < 0:
			eps = objVal/hi - 1 // Proposition 5
		case hi == 0 && objVal == 0:
			eps = 0
		default:
			return math.Inf(1)
		}
	}
	if eps < 0 {
		eps = 0
	}
	return eps
}
