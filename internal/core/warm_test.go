package core

import (
	"testing"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// warmQuery has a binding probabilistic constraint on the mutablePortfolio
// workload: the unconstrained optimum piles into the high-mean, high-variance
// stocks and fails validation, so SummarySearch runs real CSA iterations and
// converges to a small conservative package — the warm-start state a delta
// re-solve consumes.
const warmQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -2 WITH PROBABILITY >= 0.95
	MAXIMIZE EXPECTED SUM(gain)`

// mutablePortfolio is portfolioSILP with the relation handle exposed so tests
// can apply deltas between solves, and with gain variance growing with the
// mean so the probabilistic constraint of warmQuery actually binds.
func mutablePortfolio(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		mu := 0.5 + float64(i%5)*0.4
		gains[i] = dist.Normal{Mu: mu, Sigma: 0.3 + 1.8*mu}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return rel
}

func buildSILP(t *testing.T, rel *relation.Relation, query string) *translate.SILP {
	t.Helper()
	silp, err := translate.Build(spaql.MustParse(query), rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return silp
}

// TestWarmResolveMatchesColdAfterDelta pins the delta re-solve contract: a
// warm re-solve from the previous evaluation's package, summaries, and root
// basis converges to the same package — hence a bit-identical validation
// objective — as a cold from-scratch evaluation of the post-delta relation,
// in strictly fewer simplex iterations.
func TestWarmResolveMatchesColdAfterDelta(t *testing.T) {
	const n = 15
	rel := mutablePortfolio(t, n)
	pre := rel.Snapshot()

	opts := smallOptions(3)
	opts.CollectWarm = true
	cold, err := SummarySearch(buildSILP(t, pre, warmQuery), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible {
		t.Fatalf("cold solve infeasible: %+v", cold)
	}
	if cold.Warm == nil {
		t.Fatal("CollectWarm left Solution.Warm nil")
	}

	// Delta: push three non-package tuples far over the budget. The optimum
	// package is untouched, so the warm path must reproduce it exactly.
	price, err := pre.Det("price")
	if err != nil {
		t.Fatal(err)
	}
	patch := map[int]float64{}
	var touched []int
	for i := n - 1; i >= 0 && len(touched) < 3; i-- {
		if cold.X[i] == 0 {
			touched = append(touched, i)
			patch[i] = price[i] + 500
		}
	}
	if len(touched) < 3 {
		t.Fatalf("package covers too much of the relation to perturb around: %v", cold.X)
	}
	if _, err := rel.ApplyDelta(&relation.Delta{Set: map[string]map[int]float64{"price": patch}}); err != nil {
		t.Fatal(err)
	}
	post := rel.Snapshot()

	w := cold.Warm
	w.Touched = touched
	wopts := smallOptions(3)
	wopts.CollectWarm = true
	wopts.Warm = w
	warm, err := SummarySearch(buildSILP(t, post, warmQuery), wopts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmResolve {
		t.Fatalf("warm solve fell back to the cold path: %+v", warm.Iterations)
	}
	if warm.Warm == nil {
		t.Fatal("warm re-solve did not chain its own warm state")
	}

	cold2, err := SummarySearch(buildSILP(t, post, warmQuery), smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if !cold2.Feasible {
		t.Fatalf("post-delta cold solve infeasible: %+v", cold2)
	}
	for i := range cold2.X {
		if warm.X[i] != cold2.X[i] {
			t.Fatalf("tuple %d: warm multiplicity %v, cold %v", i, warm.X[i], cold2.X[i])
		}
	}
	if warm.Objective != cold2.Objective {
		t.Fatalf("objective drifted: warm %v, cold %v", warm.Objective, cold2.Objective)
	}
	if warm.LPIters >= cold2.LPIters {
		t.Fatalf("warm re-solve took %d simplex iterations, cold %d", warm.LPIters, cold2.LPIters)
	}
	if warm.MILPSolves >= cold2.MILPSolves {
		t.Fatalf("warm re-solve ran %d MILP solves, cold %d", warm.MILPSolves, cold2.MILPSolves)
	}
}

// TestWarmShapeMismatchFallsBackCold pins the advisory contract: warm state
// that no longer fits the evaluation (here: a package of the wrong length) is
// ignored, and the cold path produces the normal result.
func TestWarmShapeMismatchFallsBackCold(t *testing.T) {
	silp := portfolioSILP(t, 15, easyQuery)
	opts := smallOptions(1)
	opts.Warm = &WarmStart{X: make([]float64, 3), M: 10, Z: 1}
	sol, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.WarmResolve {
		t.Fatal("mismatched warm state was not rejected")
	}
	if !sol.Feasible {
		t.Fatalf("cold fallback infeasible: %+v", sol)
	}
}
