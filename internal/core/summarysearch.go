package core

import (
	"context"
	"errors"
	"fmt"

	"spq/internal/milp"
	"spq/internal/translate"
)

// ErrInfeasible is returned when the deterministic part of a query (the
// probabilistically-unconstrained problem Q0) already admits no solution.
var ErrInfeasible = errors.New("core: query is infeasible (deterministic constraints unsatisfiable)")

// solveUnconstrained computes x(0), the solution to SAA(Q0, M̂): the query
// devoid of probabilistic constraints, with expectations estimated from the
// precomputed means (Algorithm 2, line 2). It is the least conservative
// starting point (equivalent to α = 0 summaries).
func (r *runner) solveUnconstrained() ([]float64, error) {
	silp := r.silp
	model := milp.NewModel()
	for i := 0; i < silp.N; i++ {
		obj := 0.0
		if silp.ObjKind == translate.ObjLinear {
			obj = silp.ObjCoefs[i]
			if silp.Maximize {
				obj = -obj
			}
		}
		model.AddVar(silp.VarLo[i], silp.VarHi[i], obj, true, fmt.Sprintf("x%d", i))
	}
	for _, c := range silp.DetCons {
		idxs := make([]int, 0, silp.N)
		coefs := make([]float64, 0, silp.N)
		for i, a := range c.Coefs {
			if a != 0 {
				idxs = append(idxs, i)
				coefs = append(coefs, a)
			}
		}
		model.AddRow(idxs, coefs, c.Lo, c.Hi)
	}
	res, err := r.solveMILP("unconstrained", model, r.solverOptions(nil))
	if err != nil {
		return nil, err
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if res.X == nil {
		if res.Status == milp.StatusInfeasible {
			return nil, ErrInfeasible
		}
		return nil, fmt.Errorf("core: unconstrained solve failed: %v", res.Status)
	}
	x := make([]float64, silp.N)
	for i := range x {
		x[i] = res.X[i]
		if x[i] < 0.5 && x[i] > -0.5 {
			x[i] = 0
		}
	}
	return x, nil
}

// SummarySearch evaluates a stochastic package query with Algorithm 2:
// solve the probabilistically-unconstrained problem for x(0), then run
// CSA-Solve with increasing numbers of summaries (Z) and, when CSA-Solve
// cannot reach feasibility, increasing numbers of scenarios (M).
func SummarySearch(silp *translate.SILP, o *Options) (*Solution, error) {
	return SummarySearchCtx(context.Background(), silp, o)
}

// SummarySearchCtx is SummarySearch under a context: cancellation aborts the
// evaluation promptly (scenario generation, validation, and the MILP search
// all observe ctx) and returns ctx's error. A context deadline acts like
// Options.TimeLimit except that expiry is an error rather than a best-effort
// result, which is the behaviour a query server wants.
func SummarySearchCtx(ctx context.Context, silp *translate.SILP, o *Options) (*Solution, error) {
	r := newRunner(ctx, silp, o)

	var iters []Iteration

	// Delta re-solve fast path (Options.Warm): patch the previous accepted
	// formulation and re-solve warm. Any miss — stale shape, unsolvable,
	// validation-infeasible — falls through to the cold loop below.
	if r.opts.Warm != nil {
		sol, err := r.tryWarm(&iters)
		if err != nil {
			return nil, err
		}
		if sol != nil {
			sol.Iterations = iters
			return r.finish(sol), nil
		}
	}

	x0, err := r.solveUnconstrained()
	if err != nil {
		return nil, err
	}

	// A query with no probabilistic component reduces to the deterministic
	// package query: x(0) is the answer.
	if len(silp.ProbCons) == 0 && silp.ObjKind != translate.ObjProbability {
		val, err := r.validate(x0)
		if err != nil {
			return nil, err
		}
		sol := r.finish(r.asSolution(x0, val, 0, 0, iters))
		r.progress(1, 0, 0, val, sol.X, true, sol)
		return sol, nil
	}

	m := r.opts.InitialM
	z := 1
	if r.opts.FixedZ > 0 {
		z = r.opts.FixedZ
	}
	bk, err := r.newBank(m)
	if err != nil {
		return nil, err
	}

	var best *Solution
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		if z > m {
			z = m
		}
		sol, err := r.csaSolve(bk, x0, m, z, &iters)
		if err != nil {
			return nil, err
		}
		if better(silp, sol, best) {
			best = sol
		}
		switch {
		case sol != nil && sol.Feasible && sol.EpsUpper <= r.opts.Epsilon:
			// Feasible and (1+ε)-approximate: done (Alg 2 line 7).
			best.Iterations = iters
			return r.finish(best), nil
		case sol != nil && sol.Feasible && r.opts.FixedZ == 0 && z < m && !r.timeUp():
			// Feasible but not accurate enough: more summaries (line 9).
			z += r.opts.IncrementZ
			continue
		case sol != nil && sol.Feasible:
			// Feasible but Z cannot grow (pinned or at M): best effort.
			best.Iterations = iters
			return r.finish(best), nil
		}
		// Infeasible: more scenarios (line 11).
		if m >= r.opts.MaxM || r.timeUp() {
			break
		}
		grow := r.opts.IncrementM
		if m+grow > r.opts.MaxM {
			grow = r.opts.MaxM - m
		}
		if err := bk.Grow(grow); err != nil {
			return nil, err
		}
		m += grow
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if best == nil {
		best = &Solution{Z: z, EpsUpper: infEps()}
	}
	best.M = m // report the final scenario count reached before giving up
	best.Iterations = iters
	return r.finish(best), nil
}
