package core

import (
	"context"
	"math"
	"testing"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// multiSILP builds a relation with two independent stochastic attributes so
// queries can carry K=2 probabilistic constraints (the paper's experiments
// all have one probabilistic + one deterministic constraint; K>1 exercises
// the per-constraint α vector of CSA-Solve).
func multiSILP(t *testing.T, query string) *translate.SILP {
	t.Helper()
	const n = 14
	rel := relation.New("assets", n)
	cost := make([]float64, n)
	gainD := make([]dist.Dist, n)
	riskD := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		cost[i] = float64(20 + 5*(i%5))
		gainD[i] = dist.Normal{Mu: 0.5 + 0.3*float64(i%4), Sigma: 1}
		riskD[i] = dist.Exponential{Lambda: 1 / (0.5 + 0.1*float64(i%3))}
	}
	if err := rel.AddDet("cost", cost); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gainD}); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("risk", &relation.IndependentVG{AttrID: 2, Dists: riskD}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(5), 300)
	q := spaql.MustParse(query)
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return silp
}

const twoConQuery = `SELECT PACKAGE(*) FROM assets SUCH THAT
	SUM(cost) <= 150 AND
	SUM(gain) >= -3 WITH PROBABILITY >= 0.75 AND
	SUM(risk) <= 12 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func TestTwoProbabilisticConstraintsSummarySearch(t *testing.T) {
	silp := multiSILP(t, twoConQuery)
	if len(silp.ProbCons) != 2 {
		t.Fatalf("got %d prob constraints", len(silp.ProbCons))
	}
	// Directions differ: gain uses Min (≥), risk uses Max (≤).
	if silp.ProbCons[0].Direction() != 0 || silp.ProbCons[1].Direction() != 1 {
		t.Fatalf("directions: %v %v", silp.ProbCons[0].Direction(), silp.ProbCons[1].Direction())
	}
	sol, err := SummarySearch(silp, smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("two-constraint query infeasible: surpluses %v", sol.Surpluses)
	}
	if len(sol.Surpluses) != 2 {
		t.Fatalf("got %d surpluses", len(sol.Surpluses))
	}
	for k, s := range sol.Surpluses {
		if s < 0 {
			t.Fatalf("constraint %d violated: surplus %v", k, s)
		}
	}
}

func TestTwoProbabilisticConstraintsNaive(t *testing.T) {
	silp := multiSILP(t, twoConQuery)
	sol, err := Naive(silp, smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible {
		for _, s := range sol.Surpluses {
			if s < 0 {
				t.Fatalf("feasible flag contradicts surpluses %v", sol.Surpluses)
			}
		}
	}
}

func TestConfidenceIntervalsPopulated(t *testing.T) {
	silp := multiSILP(t, twoConQuery)
	opts := smallOptions(1)
	opts.ValidationM = 4000
	r := newRunner(context.Background(), silp, opts)
	x := make([]float64, silp.N)
	x[0] = 1
	val, err := r.validate(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(val.CIHalf) != 2 {
		t.Fatalf("got %d CI half-widths", len(val.CIHalf))
	}
	for k, h := range val.CIHalf {
		if h < 0 || h > 0.02 {
			t.Fatalf("CI half-width %d = %v implausible for M̂=4000", k, h)
		}
	}
	// The half-width shrinks as M̂ grows (∝ 1/√M̂).
	opts2 := smallOptions(1)
	opts2.ValidationM = 1000
	r2 := newRunner(context.Background(), silp, opts2)
	val2, err := r2.validate(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range val.CIHalf {
		// Fractions at the boundary (0 or 1) give zero width on both.
		if val2.CIHalf[k] == 0 && val.CIHalf[k] == 0 {
			continue
		}
		if val.CIHalf[k] >= val2.CIHalf[k]+1e-12 {
			t.Fatalf("CI did not shrink with larger M̂: %v vs %v", val.CIHalf[k], val2.CIHalf[k])
		}
	}
}

func TestConfidentlyFeasible(t *testing.T) {
	v := &Validation{
		Surpluses: []float64{0.05, 0.01},
		CIHalf:    []float64{0.01, 0.02},
	}
	if v.ConfidentlyFeasible() {
		t.Fatal("surplus 0.01 with CI 0.02 should not be confident")
	}
	v.CIHalf[1] = 0.005
	if !v.ConfidentlyFeasible() {
		t.Fatal("both surpluses clear their CI now")
	}
}

func TestSolutionCarriesCIHalf(t *testing.T) {
	silp := multiSILP(t, twoConQuery)
	sol, err := SummarySearch(silp, smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if sol.X != nil && len(sol.SurplusCIHalf) != len(sol.Surpluses) {
		t.Fatalf("CI half-widths %d != surpluses %d", len(sol.SurplusCIHalf), len(sol.Surpluses))
	}
}

func TestValidationScenariosSharedAcrossRuns(t *testing.T) {
	// Two runners with different optimization seeds but the same validation
	// seed must agree on the validation verdict for the same package.
	silp := multiSILP(t, twoConQuery)
	x := make([]float64, silp.N)
	x[1], x[5] = 2, 1
	o1 := smallOptions(1)
	o2 := smallOptions(99)
	v1, err := newRunner(context.Background(), silp, o1).validate(x)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := newRunner(context.Background(), silp, o2).validate(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := range v1.Surpluses {
		if math.Abs(v1.Surpluses[k]-v2.Surpluses[k]) > 1e-15 {
			t.Fatalf("validation differs across optimization seeds: %v vs %v", v1.Surpluses, v2.Surpluses)
		}
	}
}

func TestMaskedConstraintEndToEnd(t *testing.T) {
	// The probabilistic constraint ranges only over high-cost tuples; a
	// package of low-cost tuples satisfies it vacuously.
	q := `SELECT PACKAGE(*) AS P FROM assets SUCH THAT
		COUNT(*) BETWEEN 1 AND 4 AND
		(SELECT SUM(risk) WHERE cost >= 40 FROM P) <= 0.5 WITH PROBABILITY >= 0.9
		MAXIMIZE EXPECTED SUM(gain)`
	silp := multiSILP(t, q)
	sol, err := SummarySearch(silp, smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("masked-constraint query infeasible: %v", sol.Surpluses)
	}
	// Risk (Exponential) is positive, so any included high-cost tuple
	// violates SUM(risk) ≤ 0.5 with probability ~1: the package must avoid
	// cost ≥ 40 tuples entirely.
	cost, _ := silp.Rel.Det("cost")
	for i, x := range sol.X {
		if x > 0 && cost[i] >= 40 {
			t.Fatalf("package contains high-cost tuple %d (cost %v) that breaks the masked constraint", i, cost[i])
		}
	}
}
