package core

import (
	"fmt"
	"strings"
	"time"
)

// RenderHistory renders the optimize/validate iteration history as an
// aligned text table — the per-iteration view of the algorithm's
// convergence (scenario growth for Naïve; α/Z adaptation for
// SummarySearch).
func (s *Solution) RenderHistory() string {
	if len(s.Iterations) == 0 {
		return "(no iterations recorded)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%4s %6s %4s %-10s %10s %12s %12s %10s  %s\n",
		"#", "M", "Z", "solver", "coeffs", "solve", "validate", "objective", "surpluses")
	for i, it := range s.Iterations {
		status := "-"
		if it.SolveTime > 0 || it.Coefficients > 0 {
			status = it.SolverStatus.String()
		}
		var sp strings.Builder
		for k, r := range it.Surpluses {
			if k > 0 {
				sp.WriteByte(' ')
			}
			fmt.Fprintf(&sp, "%+.3f", r)
		}
		feas := " "
		if it.Feasible {
			feas = "*"
		}
		fmt.Fprintf(&sb, "%3d%s %6d %4d %-10s %10d %12s %12s %10.4g  %s\n",
			i+1, feas, it.M, it.Z, status, it.Coefficients,
			it.SolveTime.Round(time.Microsecond),
			it.ValidateTime.Round(time.Microsecond),
			it.Objective, sp.String())
	}
	sb.WriteString("(* = validation-feasible iteration)\n")
	return sb.String()
}
