package core

import (
	"context"
	"math"

	"spq/internal/obs"
	"spq/internal/par"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Validation is the metadata v̂ computed by the out-of-sample validation of
// §3.2: per-constraint p-surpluses, feasibility, the objective estimate, and
// the ε′ upper bound of §5.4.
type Validation struct {
	Feasible  bool
	Surpluses []float64
	Objective float64 // original sense
	EpsUpper  float64
	// CIHalf holds the 95% normal-approximation half-widths of the
	// per-constraint satisfied-fraction estimates — the simple a-posteriori
	// feasibility analysis the paper points to (wait-and-judge, §7). A
	// solution is confidently feasible when surplus − CIHalf ≥ 0.
	CIHalf []float64
}

// ConfidentlyFeasible reports feasibility with the satisfied-fraction
// confidence interval subtracted: every surplus clears its 95% half-width.
func (v *Validation) ConfidentlyFeasible() bool {
	for k, s := range v.Surpluses {
		if s-v.CIHalf[k] < 0 {
			return false
		}
	}
	return true
}

// Validate checks a package x against the out-of-sample validation protocol
// of §3.2 under the given options, standing alone from any optimize loop. It
// is the entry point the concurrent engine and the benchmarks use; the
// algorithms' internal validation goes through the same code path, so
// parallel and sequential runs are bit-identical.
func Validate(ctx context.Context, silp *translate.SILP, x []float64, o *Options) (*Validation, error) {
	return newRunner(ctx, silp, o).validate(x)
}

// validate checks solution x against M̂ out-of-sample scenarios from the
// validation source. Expectation constraints are feasible by construction
// (the DILP uses the precomputed means, §3.2), so only probabilistic
// constraints are streamed. Only tuples with x_i > 0 are realized, and only
// a running per-scenario score is kept, so memory is Θ(M̂) regardless of N.
//
// The M̂ scenarios are sharded into contiguous ranges across
// Options.Parallelism workers. Every realization is a pure function of its
// (attribute, tuple, scenario) coordinate and each shard accumulates its
// scenarios' scores in the same tuple-major order as the sequential path, so
// the per-scenario scores — and hence the satisfied counts, surpluses, and
// objective — are bit-identical for any worker count.
func (r *runner) validate(x []float64) (*Validation, error) {
	mhat := r.opts.ValidationM
	silp := r.silp
	sp := obs.SpanFromContext(r.ctx).StartChild("validate")
	sp.SetInt("m_hat", int64(mhat))
	defer sp.End()
	val := &Validation{Feasible: true, EpsUpper: math.Inf(1)}

	var pkg []int
	for i, xi := range x {
		if xi > 0 {
			pkg = append(pkg, i)
		}
	}

	workers := par.Workers(r.opts.Parallelism, mhat)
	scores := make([]float64, mhat)
	countSatisfied := func(expr spaql.LinExpr, mask []bool, geq bool, v float64) (int, error) {
		counts := make([]int, workers)
		err := par.Ranges(r.ctx, mhat, workers, func(shard, lo, hi int) error {
			sc := scores[lo:hi]
			for j := range sc {
				sc[j] = 0
			}
			// Tuple-major streaming within the shard: realize each package
			// tuple across the shard's validation scenarios (cheap:
			// |pkg| ≪ N, §3.2). Tuples excluded by a general-form aggregate
			// filter contribute nothing.
			for _, i := range pkg {
				if mask != nil && !mask[i] {
					continue
				}
				if err := r.ctx.Err(); err != nil {
					return err
				}
				for j := lo; j < hi; j++ {
					w, err := translate.ExprValue(r.valSrc, silp.Rel, expr, i, j)
					if err != nil {
						return err
					}
					sc[j-lo] += w * x[i]
				}
			}
			count := 0
			for _, s := range sc {
				if (geq && s >= v) || (!geq && s <= v) {
					count++
				}
			}
			counts[shard] = count
			return nil
		})
		if err != nil {
			return 0, err
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total, nil
	}

	for _, pc := range silp.ProbCons {
		count, err := countSatisfied(pc.Expr, pc.Mask, pc.Geq, pc.V)
		if err != nil {
			return nil, err
		}
		frac := float64(count) / float64(mhat)
		surplus := frac - pc.P
		val.Surpluses = append(val.Surpluses, surplus)
		// 95% normal-approximation half-width of the binomial fraction.
		val.CIHalf = append(val.CIHalf, 1.96*math.Sqrt(frac*(1-frac)/float64(mhat)))
		if surplus < 0 {
			val.Feasible = false
		}
	}

	switch silp.ObjKind {
	case translate.ObjLinear:
		obj := 0.0
		for _, i := range pkg {
			obj += silp.ObjCoefs[i] * x[i]
		}
		val.Objective = obj
	case translate.ObjProbability:
		count, err := countSatisfied(silp.ObjExpr, silp.ObjMask, silp.ObjGeq, silp.ObjV)
		if err != nil {
			return nil, err
		}
		val.Objective = float64(count) / float64(mhat)
	}

	val.EpsUpper = r.epsUpper(val.Objective)
	return val, nil
}
