package core

import (
	"testing"
)

// streamParityQuery exercises WHERE pushdown, a probabilistic constraint,
// and an expected-sum objective in one evaluation.
const streamParityQuery = `SELECT PACKAGE(*) FROM stocks WHERE price <= 80 SUCH THAT
	SUM(price) <= 250 AND
	SUM(gain) >= -4 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

// TestStreamedMatchesMaterialized is the end-to-end bit-parity matrix the
// streaming pipeline must pass: for every worker count, SummarySearch under
// MaxResidentScenarios 0 (always stream), −1 (always materialize, the
// legacy path), and a small positive budget (hybrid: materialized until M
// outgrows it mid-search) must return identical packages, objectives,
// surpluses, and iteration traces.
func TestStreamedMatchesMaterialized(t *testing.T) {
	for _, query := range []string{easyQuery, streamParityQuery} {
		for _, workers := range []int{1, 2, 8, -1} {
			var want *Solution
			for _, budget := range []int{-1, 0, 20} {
				silp := portfolioSILP(t, 14, query)
				opts := smallOptions(11)
				opts.Parallelism = workers
				opts.MaxResidentScenarios = budget
				sol, err := SummarySearch(silp, opts)
				if err != nil {
					t.Fatalf("workers=%d budget=%d: %v", workers, budget, err)
				}
				if budget == -1 {
					want = sol
					continue
				}
				if (sol.X == nil) != (want.X == nil) {
					t.Fatalf("workers=%d budget=%d: X presence differs", workers, budget)
				}
				for i := range want.X {
					if sol.X[i] != want.X[i] {
						t.Fatalf("workers=%d budget=%d: X[%d] = %v, want %v (must be bit-identical)",
							workers, budget, i, sol.X[i], want.X[i])
					}
				}
				if sol.Objective != want.Objective {
					t.Fatalf("workers=%d budget=%d: objective %v, want %v", workers, budget, sol.Objective, want.Objective)
				}
				if sol.M != want.M || sol.Z != want.Z || sol.Feasible != want.Feasible {
					t.Fatalf("workers=%d budget=%d: (M,Z,feasible)=(%d,%d,%v), want (%d,%d,%v)",
						workers, budget, sol.M, sol.Z, sol.Feasible, want.M, want.Z, want.Feasible)
				}
				if len(sol.Surpluses) != len(want.Surpluses) {
					t.Fatalf("workers=%d budget=%d: %d surpluses, want %d", workers, budget, len(sol.Surpluses), len(want.Surpluses))
				}
				for i := range want.Surpluses {
					if sol.Surpluses[i] != want.Surpluses[i] {
						t.Fatalf("workers=%d budget=%d: surplus[%d] = %v, want %v",
							workers, budget, i, sol.Surpluses[i], want.Surpluses[i])
					}
				}
				if len(sol.Iterations) != len(want.Iterations) {
					t.Fatalf("workers=%d budget=%d: %d iterations, want %d",
						workers, budget, len(sol.Iterations), len(want.Iterations))
				}
				for i := range want.Iterations {
					a, b := sol.Iterations[i], want.Iterations[i]
					if a.M != b.M || a.Z != b.Z || a.Feasible != b.Feasible || a.Objective != b.Objective {
						t.Fatalf("workers=%d budget=%d: iteration %d diverged: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
							workers, budget, i, a.M, a.Z, a.Feasible, a.Objective, b.M, b.Z, b.Feasible, b.Objective)
					}
				}
			}
		}
	}
}

// TestHybridBankSwitchesMidSearch pins the hybrid mechanics: a budget below
// MaxM but above InitialM must start materialized and drop to streaming when
// M grows past it, with no effect on the result (covered above); here we
// assert the switch actually happens.
func TestHybridBankSwitches(t *testing.T) {
	silp := portfolioSILP(t, 10, easyQuery)
	r := newRunner(t.Context(), silp, &Options{Seed: 1, ValidationM: 500, InitialM: 10, IncrementM: 10, MaxM: 40, MaxResidentScenarios: 15})
	bk, err := r.newBank(10)
	if err != nil {
		t.Fatal(err)
	}
	if bk.Streamed() {
		t.Fatal("bank should start materialized under a 15-scenario budget at M=10")
	}
	if err := bk.Grow(10); err != nil {
		t.Fatal(err)
	}
	if !bk.Streamed() {
		t.Fatal("bank should switch to streaming once M=20 exceeds the budget")
	}
	if bk.M() != 20 {
		t.Fatalf("M = %d, want 20", bk.M())
	}
}
