package core

import (
	"time"

	"spq/internal/relation"
)

// Progress is one per-iteration progress report of an anytime evaluation.
// SummarySearch and Naïve emit one report per *validated* candidate package
// (each optimize/validate round that produced a package), fed from the same
// state the Iteration history records; the sketch pipeline forwards its
// sub-solves' reports with Phase set. Consumers see the algorithm converge
// while it runs: the engine's job manager turns these into the streamed
// progress of the v1 async API.
//
// All slices and the relation are shared with the running evaluation and
// must be treated as read-only.
type Progress struct {
	// Phase labels the pipeline stage for composite evaluations: "" for a
	// direct SummarySearch/Naïve solve; "sketch/shard<i>", "refine", or
	// "fallback" inside the sketch pipeline.
	Phase string
	// Iteration counts optimize/validate rounds so far in this solve,
	// 1-based and monotone within a Phase.
	Iteration int
	// M and Z are the scenario/summary counts of this round (Z is 0 for
	// Naïve).
	M, Z int
	// Feasible, Objective, EpsUpper, and Surpluses are this round's
	// out-of-sample validation verdict (§3.2).
	Feasible  bool
	Objective float64
	EpsUpper  float64
	Surpluses []float64
	// Maximize is the query's objective sense, so consumers can compare
	// candidates across phases (a sketch pipeline's shards each track
	// their own incumbent; Improved/Best* below are phase-local).
	Maximize bool
	// Improved reports whether this round's candidate became the incumbent;
	// BestFeasible/BestObjective describe the incumbent after this round.
	Improved      bool
	BestFeasible  bool
	BestObjective float64
	// X is this round's candidate package, indexed like Rel; Rel is the
	// relation view the evaluation runs over (Rel.OrigIndex maps rows to
	// base-relation tuples, composing through WHERE filters and sketch
	// medoid views).
	X   []float64
	Rel *relation.Relation
	// Elapsed is the wall-clock time since the evaluation started.
	Elapsed time.Duration
}

// progress emits one report when a callback is installed. val may carry the
// iteration's validation verdict; best is the incumbent after the round.
func (r *runner) progress(iter, m, z int, val *Validation, x []float64, improved bool, best *Solution) {
	if r.opts.Progress == nil {
		return
	}
	p := Progress{
		Iteration: iter,
		M:         m,
		Z:         z,
		Improved:  improved,
		Maximize:  r.silp.Maximize,
		X:         x,
		Rel:       r.silp.Rel,
		Elapsed:   time.Since(r.start),
	}
	if val != nil {
		p.Feasible = val.Feasible
		p.Objective = val.Objective
		p.EpsUpper = val.EpsUpper
		p.Surpluses = val.Surpluses
	}
	if best != nil {
		p.BestFeasible = best.Feasible
		p.BestObjective = best.Objective
	}
	r.opts.Progress(p)
}
