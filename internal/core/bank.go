package core

import (
	"spq/internal/scenario"
	"spq/internal/stream"
	"spq/internal/translate"
)

// objCK addresses the probability objective's scenario population in bank
// calls; 0..K-1 address the probabilistic constraints.
const objCK = -1

// scenarioBank is what CSA-Solve actually consumes from a scenario
// population: its size, greedy selection by score, and α-summarization.
// None of those require materialized N×M matrices — partitioning depends
// only on (M, seed), and scores/summaries fold tuple-wise — so the bank has
// two interchangeable, bit-identical implementations behind one concrete
// type: materialized scenario.Sets (the legacy path, kept as the fast path
// under a MaxResidentScenarios budget and for ablations) and streaming
// cursors that realize values block-wise on demand.
type scenarioBank struct {
	r *runner
	// budget is Options.MaxResidentScenarios: <0 always materialize,
	// 0 always stream, >0 materialize while M ≤ budget.
	budget int
	m      int

	// Materialized state (nil once streaming).
	sets   []*scenario.Set
	objSet *scenario.Set

	// Streaming state (always constructed; cursors are cheap and immutable).
	curs []*stream.ScenarioCursor
	obj  *stream.ScenarioCursor

	streamed bool
}

// newBank creates the scenario population for one SummarySearch evaluation,
// covering absolute scenario IDs [0, m).
func (r *runner) newBank(m int) (*scenarioBank, error) {
	b := &scenarioBank{r: r, budget: r.opts.MaxResidentScenarios, m: m}
	b.curs = make([]*stream.ScenarioCursor, len(r.silp.ProbCons))
	for k := range r.silp.ProbCons {
		b.curs[k] = r.silp.ConsCursor(k, r.optSrc, 0)
	}
	b.obj = r.silp.ObjCursor(r.optSrc, 0)
	b.streamed = b.budget >= 0 && (b.budget == 0 || m > b.budget)
	if !b.streamed {
		sets, objSet, err := r.generateSets(0, m)
		if err != nil {
			return nil, err
		}
		b.sets, b.objSet = sets, objSet
	}
	return b, nil
}

// M returns the number of scenarios in the bank (absolute IDs [0, M)).
func (b *scenarioBank) M() int { return b.m }

// Streamed reports whether the bank currently streams realizations instead
// of holding materialized sets.
func (b *scenarioBank) Streamed() bool { return b.streamed }

// Grow extends the population by grow scenarios. A hybrid bank whose next
// size exceeds the budget drops its materialized sets and streams from then
// on — values are coordinate-pure, so the switch cannot change any result.
func (b *scenarioBank) Grow(grow int) error {
	if !b.streamed && b.budget > 0 && b.m+grow > b.budget {
		b.sets, b.objSet = nil, nil
		b.streamed = true
	}
	if !b.streamed {
		if err := b.r.extendSets(b.sets, b.objSet, grow); err != nil {
			return err
		}
	}
	b.m += grow
	return nil
}

func (b *scenarioBank) set(ck int) *scenario.Set {
	if ck == objCK {
		return b.objSet
	}
	return b.sets[ck]
}

func (b *scenarioBank) cursor(ck int) *stream.ScenarioCursor {
	if ck == objCK {
		return b.obj
	}
	return b.curs[ck]
}

// Pick returns the ⌈α·|part|⌉ most favourable scenarios of part under the
// previous solution x (nil x → the partition's leading scenarios), exactly
// as scenario.Set.GreedyPick orders them.
func (b *scenarioBank) Pick(ck int, part []int, alpha float64, dir scenario.Direction, x []float64) ([]int, error) {
	if !b.streamed {
		return b.set(ck).GreedyPick(part, alpha, dir, x), nil
	}
	var scores map[int]float64
	if x != nil {
		var err error
		scores, err = b.cursor(ck).ScoreMap(b.r.ctx, part, x, b.r.opts.Parallelism)
		if err != nil {
			return nil, err
		}
	}
	return scenario.Pick(part, alpha, dir, scores), nil
}

// Summarize builds the α-summary of the chosen scenario IDs in direction
// dir (accel as in scenario.Set.Summarize), streaming block-wise or folding
// the materialized set — bit-identical either way, for any worker count.
func (b *scenarioBank) Summarize(ck int, chosen []int, dir scenario.Direction, accel []bool) (*scenario.Summary, error) {
	if !b.streamed {
		return b.set(ck).SummarizeP(b.r.ctx, chosen, dir, accel, b.r.opts.Parallelism)
	}
	return b.cursor(ck).Summarize(b.r.ctx, chosen, dir, accel, b.r.opts.Parallelism)
}

// hasObj reports whether the bank carries a probability-objective population.
func (b *scenarioBank) hasObj() bool {
	return b.r.silp.ObjKind == translate.ObjProbability
}
