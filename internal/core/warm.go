package core

import (
	"time"

	"spq/internal/lp"
	"spq/internal/obs"
	"spq/internal/scenario"
	"spq/internal/translate"
)

// WarmStart carries the reusable state of a completed SummarySearch
// evaluation so a re-solve after a small relation delta can start from the
// previous CSA formulation instead of from scratch: the accepted package, the
// α-summaries the accepting MILP was built from, the root relaxation's
// optimal basis, and the (M, Z) the evaluation converged at. The engine
// collects one per cached result (Options.CollectWarm) and, when a delta
// later touches the relation, hands it back with the delta's tuple footprint
// in Touched (see Options.Warm).
//
// A warm start is advisory at every layer: summaries are patched only at the
// touched tuples (bit-identical to re-summarizing, because realizations are
// pure per-coordinate functions), the LP kernel rejects a basis whose shape
// no longer matches, and a warm solve that fails to validate falls back to
// the cold path. It never crosses process boundaries (not serialized).
type WarmStart struct {
	// X is the accepted package of the previous evaluation, used to seed the
	// MILP incumbent.
	X []float64
	// Summaries holds the per-probabilistic-constraint summary groups of the
	// accepting CSA formulation; ObjSummaries the probability-objective
	// summaries (nil otherwise).
	Summaries    [][]*scenario.Summary
	ObjSummaries []*scenario.Summary
	// Basis is the accepting solve's root-relaxation optimal basis.
	Basis *lp.Basis
	// M and Z are the scenario and summary counts the evaluation accepted at.
	M, Z int
	// Touched lists the tuple indices (in the evaluation's relation indexing)
	// a delta changed since the warm state was collected. The warm path
	// re-folds exactly these tuples of every summary. The producer leaves it
	// nil; the caller scheduling the re-solve fills it in.
	Touched []int
}

// tryWarm attempts the delta re-solve fast path: patch the previous accepted
// CSA formulation's summaries at the touched tuples, re-solve the MILP seeded
// with the previous package and root basis, and accept the result if it
// validates feasible within ε. It returns (nil, nil) when the warm state does
// not fit this evaluation or the warm solve does not reach an acceptable
// solution — the caller then runs the cold path from the top.
func (r *runner) tryWarm(iters *[]Iteration) (*Solution, error) {
	w := r.opts.Warm
	silp := r.silp
	if w == nil || len(w.X) != silp.N || len(w.Summaries) != len(silp.ProbCons) {
		return nil, nil
	}
	// Deterministic-only queries have no summaries to reuse, and a
	// probability objective needs its summary group.
	if len(silp.ProbCons) == 0 && silp.ObjKind != translate.ObjProbability {
		return nil, nil
	}
	if silp.ObjKind == translate.ObjProbability && len(w.ObjSummaries) == 0 {
		return nil, nil
	}

	// Patch every summary of the accepting formulation at the touched tuples
	// against the post-delta relation (k×M work instead of N×M).
	sp := obs.SpanFromContext(r.ctx).StartChild("summarize")
	sp.SetAttr("kind", "patch")
	sp.SetInt("z", int64(w.Z))
	sp.SetInt("touched", int64(len(w.Touched)))
	summaries := make([][]*scenario.Summary, len(w.Summaries))
	for ck := range w.Summaries {
		cur := silp.ConsCursor(ck, r.optSrc, 0)
		for _, sm := range w.Summaries[ck] {
			p, err := cur.PatchSummarize(r.ctx, sm, w.Touched)
			if err != nil {
				sp.End()
				return nil, err
			}
			summaries[ck] = append(summaries[ck], p)
		}
	}
	var objSummaries []*scenario.Summary
	if len(w.ObjSummaries) > 0 {
		cur := silp.ObjCursor(r.optSrc, 0)
		for _, sm := range w.ObjSummaries {
			p, err := cur.PatchSummarize(r.ctx, sm, w.Touched)
			if err != nil {
				sp.End()
				return nil, err
			}
			objSummaries = append(objSummaries, p)
		}
	}
	sp.End()

	model, vm, err := silp.FormulateCSA(summaries, objSummaries)
	if err != nil {
		return nil, nil // formulation no longer fits: cold fallback
	}
	opts := r.solverOptions(w.X)
	opts.RootBasis = w.Basis
	opts.WantRootBasis = r.opts.CollectWarm
	solveStart := time.Now()
	res, err := r.solveMILP("csa-warm", model, opts)
	if err != nil {
		return nil, err
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	if res.X == nil {
		return nil, nil
	}
	x := vm.PackageOf(res.X)
	valStart := time.Now()
	val, err := r.validate(x)
	if err != nil {
		return nil, err
	}
	*iters = append(*iters, Iteration{
		M:            w.M,
		Z:            w.Z,
		SolverStatus: res.Status,
		Coefficients: res.Coefficients,
		Nodes:        res.Nodes,
		LPIters:      res.LPIters,
		WarmStarts:   res.WarmStarts,
		DegenPivots:  res.DegenPivots,
		BoundFlips:   res.BoundFlips,
		PresolveRows: res.PresolveRows,
		PresolveCols: res.PresolveCols,
		SolveTime:    valStart.Sub(solveStart),
		ValidateTime: time.Since(valStart),
		Feasible:     val.Feasible,
		Objective:    val.Objective,
		Surpluses:    val.Surpluses,
	})
	if !val.Feasible || val.EpsUpper > r.opts.Epsilon {
		return nil, nil
	}
	sol := r.asSolution(x, val, w.M, w.Z, nil)
	sol.WarmResolve = true
	if r.opts.CollectWarm {
		r.warm = &WarmStart{X: sol.X, Summaries: summaries, ObjSummaries: objSummaries, Basis: res.RootBasis, M: w.M, Z: w.Z}
	}
	r.progress(len(*iters), w.M, w.Z, val, sol.X, true, sol)
	return sol, nil
}

// sameX reports element-wise equality of two packages.
func sameX(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
