package core

import (
	"testing"
	"time"
)

// Tests for time/iteration budget handling — the machinery behind the
// paper's 4-hour cutoff protocol ("when the time limit expires, we
// interrupt CPLEX and get the best solution found so far").

func TestTinyTimeLimitReturnsGracefully(t *testing.T) {
	silp := portfolioSILP(t, 20, easyQuery)
	opts := smallOptions(1)
	opts.TimeLimit = time.Millisecond
	start := time.Now()
	sol, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("nil solution under time pressure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("time-limited run took %v", elapsed)
	}
}

func TestTinyTimeLimitNaive(t *testing.T) {
	silp := portfolioSILP(t, 20, easyQuery)
	opts := smallOptions(1)
	opts.TimeLimit = time.Millisecond
	start := time.Now()
	sol, err := Naive(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("nil solution under time pressure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("time-limited run took %v", elapsed)
	}
}

func TestIterationRecordsPopulated(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	sol, err := SummarySearch(silp, smallOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Iterations) == 0 {
		t.Fatal("no iteration records")
	}
	for i, it := range sol.Iterations {
		if it.M <= 0 {
			t.Fatalf("iteration %d has M=%d", i, it.M)
		}
		if it.Z < 1 {
			t.Fatalf("SummarySearch iteration %d has Z=%d", i, it.Z)
		}
		if len(it.Surpluses) != len(silp.ProbCons) {
			t.Fatalf("iteration %d has %d surpluses", i, len(it.Surpluses))
		}
	}
}

func TestNaiveIterationRecords(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	sol, err := Naive(silp, smallOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Iterations) == 0 {
		t.Fatal("no iteration records")
	}
	for i, it := range sol.Iterations {
		if it.Z != 0 {
			t.Fatalf("Naive iteration %d has Z=%d, want 0", i, it.Z)
		}
		if it.Coefficients <= 0 {
			t.Fatalf("iteration %d missing DILP size", i)
		}
	}
	// Naive DILP sizes grow with M across iterations.
	if len(sol.Iterations) >= 2 {
		first, last := sol.Iterations[0], sol.Iterations[len(sol.Iterations)-1]
		if last.M > first.M && last.Coefficients <= first.Coefficients {
			t.Fatalf("DILP did not grow with M: %d@M=%d vs %d@M=%d",
				first.Coefficients, first.M, last.Coefficients, last.M)
		}
	}
}

func TestMaxCSAItersBoundsWork(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	opts := smallOptions(7)
	opts.MaxCSAIters = 2
	sol, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Per (M, Z) pair at most 2 validations; the run can still escalate M.
	perPair := map[[2]int]int{}
	for _, it := range sol.Iterations {
		perPair[[2]int{it.M, it.Z}]++
	}
	for pair, count := range perPair {
		if count > 2 {
			t.Fatalf("pair %v ran %d CSA iterations, cap was 2", pair, count)
		}
	}
}

func TestZeroOptionsUseDefaults(t *testing.T) {
	opts := (&Options{}).withDefaults()
	if opts.ValidationM != 10000 || opts.InitialM != 20 || opts.MaxM != 1000 {
		t.Fatalf("defaults wrong: %+v", opts)
	}
	if opts.IncrementM != opts.InitialM {
		t.Fatalf("IncrementM default should follow InitialM")
	}
	if !isInf(opts.Epsilon) {
		t.Fatalf("Epsilon default should be +Inf, got %v", opts.Epsilon)
	}
	if opts.SolverTime != 30*time.Second {
		t.Fatalf("SolverTime default = %v", opts.SolverTime)
	}
}

func isInf(f float64) bool { return f > 1e308 }
