// Package core implements the paper's query-evaluation algorithms: the
// Naïve SAA optimize/validate loop (Algorithm 1), SummarySearch
// (Algorithm 2) with CSA-Solve (Algorithm 3), out-of-sample validation
// (§3.2), and the (1+ε)-approximation machinery of §5.4 / Appendix B.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"spq/internal/milp"
	"spq/internal/obs"
	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/translate"
)

// Options configure query evaluation. The defaults mirror the paper's
// experimental setup at reduced scale.
type Options struct {
	// Seed drives the optimization-scenario stream; repeated runs with
	// different seeds reproduce the paper's i.i.d. run protocol.
	Seed uint64
	// ValidationSeed drives the out-of-sample validation stream. It is kept
	// separate so all runs validate against the same scenario population.
	// The zero value selects a fixed internal constant.
	ValidationSeed uint64
	// ValidationM is M̂, the number of out-of-sample validation scenarios
	// (paper: 10⁶–10⁷; default here 10000).
	ValidationM int
	// InitialM is the starting number of optimization scenarios (default 20).
	InitialM int
	// IncrementM is the per-iteration scenario increment m (default ==
	// InitialM).
	IncrementM int
	// MaxM caps the optimization scenarios before declaring failure
	// (paper: 1000).
	MaxM int
	// FixedZ pins the number of summaries (the per-workload Z of §6.2.1);
	// 0 lets SummarySearch escalate Z per Algorithm 2.
	FixedZ int
	// IncrementZ is the Z escalation step z (default 1).
	IncrementZ int
	// Epsilon is the user approximation bound ε (§5.4). +Inf (the default)
	// accepts the first validation-feasible solution, which is the paper's
	// time-to-feasibility protocol.
	Epsilon float64
	// MaxCSAIters caps CSA-Solve iterations per (M, Z) pair (default 25).
	MaxCSAIters int
	// DisableAcceleration turns off the §5.5 monotone-objective summary
	// modification (enabled by default) for ablations.
	DisableAcceleration bool
	// TimeLimit bounds the whole evaluation; 0 means none. Mirrors the
	// paper's 4-hour cutoff.
	TimeLimit time.Duration
	// SolverTime bounds each MILP solve (default 30s).
	SolverTime time.Duration
	// SolverNodes caps branch-and-bound nodes per solve (default 200000).
	SolverNodes int
	// RelGap is the MILP relative optimality gap (default 1e-4).
	RelGap float64
	// MaxResidentScenarios bounds how many optimization scenarios per
	// summarized expression SummarySearch may keep materialized in memory:
	//
	//	 0 (default) — fully streamed: summaries and greedy-selection
	//	   scores fold block-wise over scenario cursors; no N×M matrix is
	//	   ever built and per-query scenario memory is Θ(N) (the summary
	//	   vectors), independent of M.
	//	>0 — hybrid: scenario sets are materialized (the fast path for
	//	   repeated summarization) while M stays within the budget; the
	//	   evaluation drops them and streams once M outgrows it. The
	//	   admission layer uses this to bound per-query memory.
	//	<0 — always materialize (the legacy path, kept for ablations).
	//
	// Streamed and materialized evaluation are bit-identical — realizations
	// are pure functions of their (attribute, tuple, scenario) coordinates —
	// so, like Parallelism, this knob is excluded from Key(). The Naïve SAA
	// baseline always materializes: its formulation consumes whole scenario
	// rows.
	MaxResidentScenarios int
	// Parallelism is the number of worker goroutines used for scenario
	// generation, summarization, out-of-sample validation, and the
	// branch-and-bound MILP search. 0 or 1 run sequentially; a negative
	// value uses one worker per available CPU. Results are bit-identical
	// for every value: realizations are pure functions of their (attribute,
	// tuple, scenario) coordinates, the engine shards work along those
	// coordinates, and the MILP search explores nodes in deterministic
	// rounds with path-id incumbent tie-breaking (see internal/milp).
	Parallelism int
	// Progress, when non-nil, receives one report per validated candidate
	// package while the evaluation runs (see Progress). The callback must be
	// cheap and safe for concurrent use: the sketch pipeline's shard solves
	// invoke it concurrently. It observes the evaluation without influencing
	// it, so it is excluded from Key().
	Progress func(Progress)
	// CollectWarm asks the evaluation to retain the warm-start state of the
	// accepting CSA solve on Solution.Warm so a later delta re-solve can skip
	// straight to a patched formulation. Purely additive (it never changes
	// the solution), so it is excluded from Key().
	CollectWarm bool
	// Warm, when non-nil, attempts the delta re-solve fast path before the
	// cold Algorithm-2 loop: patch the previous accepted formulation's
	// summaries at Warm.Touched, re-solve seeded with the previous package
	// and root basis, and accept if the result validates feasible within ε.
	// A warm solve that does not reach an acceptable solution falls back to
	// the cold path, whose result is bit-identical to an evaluation without
	// Warm. Excluded from Key(); callers caching warm results must account
	// for the weaker identity themselves (the engine marks them
	// non-replicable).
	Warm *WarmStart
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	// Non-positive counts and budgets (possibly from unvalidated client
	// input reaching the HTTP layer) take the defaults: a negative M would
	// reach make() as a negative length.
	if out.ValidationSeed == 0 {
		out.ValidationSeed = 0x5eed0a11da7e
	}
	if out.ValidationM <= 0 {
		out.ValidationM = 10000
	}
	if out.InitialM <= 0 {
		out.InitialM = 20
	}
	if out.IncrementM <= 0 {
		out.IncrementM = out.InitialM
	}
	if out.MaxM <= 0 {
		out.MaxM = 1000
	}
	if out.FixedZ < 0 {
		out.FixedZ = 0
	}
	if out.IncrementZ <= 0 {
		out.IncrementZ = 1
	}
	if out.Epsilon <= 0 {
		out.Epsilon = math.Inf(1)
	}
	if out.MaxCSAIters <= 0 {
		out.MaxCSAIters = 25
	}
	if out.SolverTime <= 0 {
		out.SolverTime = 30 * time.Second
	}
	if out.SolverNodes <= 0 {
		out.SolverNodes = 200000
	}
	if out.RelGap <= 0 {
		out.RelGap = 1e-4
	}
	return out
}

// Key renders every result-relevant option field canonically, after
// defaulting, so two Options values that evaluate identically share one key.
// The engine's result cache builds its keys from it. Parallelism,
// MaxResidentScenarios, and Progress are deliberately excluded: parallel and
// streamed evaluation are bit-identical to sequential materialized
// evaluation for any worker count or residency budget, and the progress
// callback only observes, so none can change a result. Time budgets
// (TimeLimit, SolverTime, SolverNodes) are included: when a budget binds,
// the result depends on it. Nil receivers key like the zero Options.
func (o *Options) Key() string {
	eff := o.withDefaults()
	return fmt.Sprintf("s=%d,vs=%d,vm=%d,im=%d,incm=%d,maxm=%d,z=%d,incz=%d,eps=%g,csa=%d,noacc=%t,tl=%d,st=%d,sn=%d,gap=%g",
		eff.Seed, eff.ValidationSeed, eff.ValidationM, eff.InitialM, eff.IncrementM,
		eff.MaxM, eff.FixedZ, eff.IncrementZ, eff.Epsilon, eff.MaxCSAIters,
		eff.DisableAcceleration, int64(eff.TimeLimit), int64(eff.SolverTime),
		eff.SolverNodes, eff.RelGap)
}

// Iteration records one optimize/validate round for diagnostics and the
// experiment harness.
type Iteration struct {
	M            int
	Z            int // 0 for Naïve
	SolverStatus milp.Status
	Coefficients int
	// Nodes is the branch-and-bound node count of the iteration's MILP
	// solve (0 for iterations that never reached a solve).
	Nodes int
	// LPIters is the total simplex iterations of the iteration's MILP solve
	// (root relaxation plus every node LP).
	LPIters int
	// WarmStarts counts node LPs of the iteration's MILP solve that were
	// reinstated from a parent basis instead of solved from scratch;
	// DegenPivots counts degenerate simplex pivots across those LPs;
	// BoundFlips counts dual iterations resolved by a bound flip (no basis
	// exchange, no eta update).
	WarmStarts  int
	DegenPivots int
	BoundFlips  int
	// PresolveRows and PresolveCols count the rows and columns the MILP
	// root presolve eliminated before the search started.
	PresolveRows int
	PresolveCols int
	SolveTime    time.Duration
	ValidateTime time.Duration
	Feasible     bool
	Objective    float64
	Surpluses    []float64
}

// Solution is the result of evaluating a stochastic package query.
type Solution struct {
	// X holds tuple multiplicities indexed like the (WHERE-filtered)
	// relation; nil when no solution was found.
	X []float64
	// Feasible reports validation feasibility (§3.2).
	Feasible bool
	// Objective is the validation estimate of the objective in the query's
	// original sense (expected sum, or satisfaction probability).
	Objective float64
	// EpsUpper is the ε′ upper bound on the approximation error (§5.4);
	// +Inf when no usable bound exists.
	EpsUpper float64
	// Surpluses holds the per-probabilistic-constraint p-surplus r_k.
	Surpluses []float64
	// SurplusCIHalf holds 95% confidence half-widths on the satisfied
	// fractions behind Surpluses (a-posteriori feasibility confidence).
	SurplusCIHalf []float64
	// M and Z are the final scenario/summary counts.
	M int
	Z int
	// Iterations is the full optimize/validate history.
	Iterations []Iteration
	// TotalTime is the end-to-end wall-clock time.
	TotalTime time.Duration
	// MILPSolves and MILPNodes count the MILP solves the evaluation ran
	// (including the unconstrained x(0) solve) and the branch-and-bound
	// nodes they explored; MILPWorkers is the largest per-solve worker
	// bound used. The engine aggregates them into its /stats counters.
	MILPSolves  int
	MILPNodes   int
	MILPWorkers int
	// LPIters is the total simplex iterations across every MILP solve of
	// the evaluation (observational, like the MILP counters above).
	LPIters int
	// WarmStarts and DegenPivots aggregate the LP kernel's warm-start and
	// degenerate-pivot counts across every MILP solve; PresolveRows and
	// PresolveCols aggregate the root-presolve reductions; BoundFlips the
	// kernel's flip-instead-of-pivot dual iterations. All observational.
	WarmStarts   int
	DegenPivots  int
	BoundFlips   int
	PresolveRows int
	PresolveCols int
	// WarmResolve reports that this solution came from the Options.Warm
	// delta fast path (a patched re-solve of a previous formulation) rather
	// than the cold Algorithm-2 loop.
	WarmResolve bool
	// Warm holds the reusable warm-start state of the accepting solve when
	// Options.CollectWarm was set; nil otherwise. Never serialized: bases
	// and summaries are process-local.
	Warm *WarmStart `json:"-"`
}

// HitLimit reports whether the evaluation was cut short by a wall-clock or
// node budget — the one way a fixed (query, options, seeds) evaluation can
// come out different between runs, since how far a budget lets the search
// get depends on machine load. The engine's result cache refuses to cache
// such best-effort solutions.
func (s *Solution) HitLimit(o *Options) bool {
	if o != nil && o.TimeLimit > 0 && s.TotalTime >= o.TimeLimit {
		return true
	}
	for _, it := range s.Iterations {
		if it.SolverStatus == milp.StatusLimit {
			return true
		}
	}
	return false
}

// PackageSize returns Σ x_i.
func (s *Solution) PackageSize() float64 {
	total := 0.0
	for _, x := range s.X {
		total += x
	}
	return total
}

// runner holds per-evaluation state shared by the algorithms.
type runner struct {
	silp   *translate.SILP
	opts   Options
	ctx    context.Context
	optSrc rng.Source
	valSrc rng.Source

	start    time.Time
	deadline time.Time
	hasDL    bool

	// Cached objective inner-function value range probe for ω bounds.
	probed   bool
	sLo, sHi float64
	sizeLo   float64
	sizeHi   float64

	// MILP accounting across every solve of the evaluation (see
	// Solution.MILPSolves); stamped onto the returned Solution by finish.
	milpSolves   int
	milpNodes    int
	milpWorkers  int
	lpIters      int
	warmStarts   int
	degenPivots  int
	boundFlips   int
	presolveRows int
	presolveCols int

	// warm is the most recent CSA solve's reusable warm-start state, kept
	// only under Options.CollectWarm; finish attaches it to the returned
	// solution when the accepted package is the one it was collected for.
	warm *WarmStart
}

func newRunner(ctx context.Context, silp *translate.SILP, o *Options) *runner {
	if ctx == nil {
		ctx = context.Background()
	}
	opts := o.withDefaults()
	r := &runner{
		silp:   silp,
		opts:   opts,
		ctx:    ctx,
		optSrc: rng.NewSource(opts.Seed).Derive(1),
		valSrc: rng.NewSource(opts.ValidationSeed).Derive(2),
		start:  time.Now(),
	}
	if opts.TimeLimit > 0 {
		r.deadline = r.start.Add(opts.TimeLimit)
		r.hasDL = true
	}
	if dl, ok := ctx.Deadline(); ok && (!r.hasDL || dl.Before(r.deadline)) {
		r.deadline = dl
		r.hasDL = true
	}
	r.sizeLo, r.sizeHi = packageSizeBounds(silp)
	return r
}

func (r *runner) timeUp() bool {
	if r.ctx.Err() != nil {
		return true
	}
	return r.hasDL && time.Now().After(r.deadline)
}

// solverOptions builds per-solve MILP options respecting the remaining
// global budget, optionally seeding the incumbent.
func (r *runner) solverOptions(initial []float64) *milp.Options {
	limit := r.opts.SolverTime
	if r.hasDL {
		if rem := time.Until(r.deadline); rem < limit {
			limit = rem
		}
		if limit <= 0 {
			limit = time.Millisecond
		}
	}
	return &milp.Options{
		TimeLimit:   limit,
		MaxNodes:    r.opts.SolverNodes,
		RelGap:      r.opts.RelGap,
		InitialX:    initial,
		Cancel:      r.ctx.Done(),
		Parallelism: r.opts.Parallelism,
	}
}

// noteSolve accumulates one MILP solve into the runner's accounting.
func (r *runner) noteSolve(res *milp.Result) {
	r.milpSolves++
	r.milpNodes += res.Nodes
	r.lpIters += res.LPIters
	r.warmStarts += res.WarmStarts
	r.degenPivots += res.DegenPivots
	r.boundFlips += res.BoundFlips
	r.presolveRows += res.PresolveRows
	r.presolveCols += res.PresolveCols
	if res.Workers > r.milpWorkers {
		r.milpWorkers = res.Workers
	}
}

// solveMILP runs one MILP solve under a "solve" trace span carrying the
// per-solve LP statistics (simplex iterations, branch-and-bound nodes and
// rounds) and folds the result into the runner's accounting. Tracing is
// observational: on an untraced context the span calls are inert no-ops.
func (r *runner) solveMILP(kind string, model *milp.Model, opts *milp.Options) (*milp.Result, error) {
	sp := obs.SpanFromContext(r.ctx).StartChild("solve")
	sp.SetAttr("kind", kind)
	res, err := milp.Solve(model, opts)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.SetAttr("status", res.Status.String())
	sp.SetInt("nodes", int64(res.Nodes))
	sp.SetInt("rounds", int64(res.Rounds))
	sp.SetInt("lp_iters", int64(res.LPIters))
	sp.SetInt("warm_starts", int64(res.WarmStarts))
	sp.SetInt("degen_pivots", int64(res.DegenPivots))
	sp.SetInt("bound_flips", int64(res.BoundFlips))
	sp.SetInt("presolve_rows", int64(res.PresolveRows))
	sp.SetInt("presolve_cols", int64(res.PresolveCols))
	sp.End()
	r.noteSolve(res)
	return res, nil
}

// generateSets is GenerateSetsP under a "generate" trace span.
func (r *runner) generateSets(first, m int) ([]*scenario.Set, *scenario.Set, error) {
	sp := obs.SpanFromContext(r.ctx).StartChild("generate")
	sp.SetInt("m", int64(m))
	defer sp.End()
	return r.silp.GenerateSetsP(r.ctx, r.optSrc, first, m, r.opts.Parallelism)
}

// extendSets is ExtendSetsP under a "generate" trace span.
func (r *runner) extendSets(sets []*scenario.Set, objSet *scenario.Set, grow int) error {
	sp := obs.SpanFromContext(r.ctx).StartChild("generate")
	sp.SetInt("grow", int64(grow))
	defer sp.End()
	return r.silp.ExtendSetsP(r.ctx, r.optSrc, sets, objSet, grow, r.opts.Parallelism)
}

// finish stamps end-of-evaluation bookkeeping (wall-clock time, MILP
// accounting) onto the solution about to be returned.
func (r *runner) finish(sol *Solution) *Solution {
	sol.TotalTime = time.Since(r.start)
	sol.MILPSolves = r.milpSolves
	sol.MILPNodes = r.milpNodes
	sol.MILPWorkers = r.milpWorkers
	sol.LPIters = r.lpIters
	sol.WarmStarts = r.warmStarts
	sol.DegenPivots = r.degenPivots
	sol.BoundFlips = r.boundFlips
	sol.PresolveRows = r.presolveRows
	sol.PresolveCols = r.presolveCols
	// Attach the collected warm-start state only when the returned package
	// is the one the accepting CSA solve produced (a best-effort solution
	// from an earlier iteration would not match its formulation).
	if r.warm != nil && sol.Feasible && sameX(sol.X, r.warm.X) {
		sol.Warm = r.warm
	}
	return sol
}
