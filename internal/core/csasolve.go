package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"spq/internal/fit"
	"spq/internal/obs"
	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/translate"
)

// alphaObs is one observation (α, p-surplus) for a constraint, the data the
// §5.2 curve fit consumes.
type alphaObs struct {
	alpha   float64
	surplus float64
}

// guessAlpha implements GuessOptimalConservativeness for one constraint:
// find the minimally conservative α with nonnegative predicted surplus.
// grid is the α resolution Z/M; the result is snapped up to the grid and
// kept strictly between the largest infeasible and smallest feasible α seen.
func guessAlpha(history []alphaObs, p, grid float64) float64 {
	aInf := math.Inf(-1) // largest α observed infeasible
	aFea := math.Inf(1)  // smallest α observed feasible
	for _, ob := range history {
		if ob.surplus < 0 {
			if ob.alpha > aInf {
				aInf = ob.alpha
			}
		} else if ob.alpha < aFea {
			aFea = ob.alpha
		}
	}

	var guess float64
	switch {
	case len(history) == 1:
		// Single observation (α=0 from the unconstrained solution): jump by
		// the feasibility deficit — a deeper shortfall warrants a more
		// conservative summary.
		deficit := -history[0].surplus
		if deficit <= 0 {
			return snapAlpha(grid, grid, aInf, aFea)
		}
		guess = math.Min(1, math.Max(grid, deficit+p*deficit))
	default:
		xs := make([]float64, len(history))
		ys := make([]float64, len(history))
		for i, ob := range history {
			xs[i], ys[i] = ob.alpha, ob.surplus
		}
		if f, ok := fit.FitArctan(xs, ys); ok {
			if z, ok := f.Zero(); ok {
				guess = z
			} else if z, ok := fit.ZeroCrossingLinear(xs, ys); ok {
				guess = z
			} else {
				guess = midpointGuess(aInf, aFea)
			}
		} else if z, ok := fit.ZeroCrossingLinear(xs, ys); ok {
			guess = z
		} else {
			guess = midpointGuess(aInf, aFea)
		}
	}
	return snapAlpha(guess, grid, aInf, aFea)
}

// midpointGuess targets between the known infeasible/feasible brackets.
func midpointGuess(aInf, aFea float64) float64 {
	lo := aInf
	if math.IsInf(lo, -1) {
		lo = 0
	}
	hi := aFea
	if math.IsInf(hi, 1) {
		hi = 1
	}
	return (lo + hi) / 2
}

// snapAlpha clamps a raw guess to (aInf, aFea), snaps it up to the grid
// {grid, 2·grid, …, 1}, and nudges off already-resolved values.
func snapAlpha(guess, grid float64, aInf, aFea float64) float64 {
	if guess < grid {
		guess = grid
	}
	if guess > 1 {
		guess = 1
	}
	snapped := math.Ceil(guess/grid-1e-9) * grid
	if snapped > 1 {
		snapped = 1
	}
	// Stay strictly above the largest known-infeasible α.
	if !math.IsInf(aInf, -1) && snapped <= aInf+1e-12 {
		snapped = math.Min(1, aInf+grid)
	}
	// No point exceeding the smallest known-feasible α.
	if !math.IsInf(aFea, 1) && snapped >= aFea-1e-12 {
		if aFea-grid > aInf+1e-12 {
			snapped = aFea - grid
		} else {
			snapped = aFea
		}
	}
	return snapped
}

// csaState carries the evolving state of one CSA-Solve invocation.
type csaState struct {
	alphas    []float64
	histories [][]alphaObs
}

// solutionKey fingerprints (x, α) for Algorithm 3's cycle detection.
func solutionKey(x []float64, alphas []float64) string {
	var sb strings.Builder
	for i, v := range x {
		if v != 0 {
			fmt.Fprintf(&sb, "%d:%g;", i, v)
		}
	}
	sb.WriteByte('|')
	for _, a := range alphas {
		fmt.Fprintf(&sb, "%.6f;", a)
	}
	return sb.String()
}

// csaSolve is Algorithm 3: with M scenarios and Z summaries fixed, search
// for the best (minimally conservative) CSA formulation. It returns the best
// solution found (feasible if any iteration validated feasible) or nil when
// every CSA was unsolvable. Iteration records are appended to *iters.
// The scenario population arrives as a bank: materialized or streamed, the
// selection and summarization arithmetic is identical (see bank.go).
func (r *runner) csaSolve(bk *scenarioBank, x0 []float64, mCount, zCount int, iters *[]Iteration) (*Solution, error) {
	silp := r.silp
	k := len(silp.ProbCons)

	// Shared random partition of the scenario ids (§4.1); deterministic per
	// (seed, M, Z) so re-invocations after growing M are reproducible. The
	// partition depends only on the scenario count, never on realized
	// values, so a streamed bank partitions scenarios it never generated.
	partSeed := rng.Mix(r.opts.Seed, uint64(mCount), uint64(zCount))
	var parts [][]int
	if k > 0 || bk.hasObj() {
		parts = scenario.PartitionIDs(mCount, zCount, partSeed)
	}
	grid := float64(zCount) / float64(mCount)
	if grid > 1 {
		grid = 1
	}

	// Objective summaries for probability objectives: fully conservative
	// (α=1) per partition, so the model's satisfied-summary fraction lower
	// bounds the in-sample probability.
	var objSummaries []*scenario.Summary
	if silp.ObjKind == translate.ObjProbability {
		dir := scenario.Max
		if silp.ObjGeq {
			dir = scenario.Min
		}
		for _, part := range parts {
			sm, err := bk.Summarize(objCK, part, dir, nil)
			if err != nil {
				return nil, err
			}
			objSummaries = append(objSummaries, sm)
		}
	}

	st := &csaState{
		alphas:    make([]float64, k),
		histories: make([][]alphaObs, k),
	}
	seen := map[string]bool{}
	var best *Solution
	x := append([]float64(nil), x0...)
	prevAlphas := make([]float64, k)
	lastFeasible := false

	for q := 0; q < r.opts.MaxCSAIters; q++ {
		key := solutionKey(x, st.alphas)
		if seen[key] {
			return best, nil // cycle: return best from history (Alg 3 line 7)
		}
		seen[key] = true

		valStart := time.Now()
		val, err := r.validate(x)
		if err != nil {
			return nil, err
		}
		iter := Iteration{
			M:            mCount,
			Z:            zCount,
			ValidateTime: time.Since(valStart),
			Feasible:     val.Feasible,
			Objective:    val.Objective,
			Surpluses:    val.Surpluses,
		}
		*iters = append(*iters, iter)
		for ck := 0; ck < k; ck++ {
			st.histories[ck] = append(st.histories[ck], alphaObs{alpha: st.alphas[ck], surplus: val.Surpluses[ck]})
		}
		cand := r.asSolution(x, val, mCount, zCount, nil)
		improved := better(silp, cand, best)
		if improved {
			best = cand
		}
		r.progress(len(*iters), mCount, zCount, val, cand.X, improved, best)
		// Termination: feasible and (1+ε)-approximate. For probability
		// objectives require at least one CSA solve so the objective has
		// actually been optimized (the unconstrained x(0) ignores it).
		if val.Feasible && val.EpsUpper <= r.opts.Epsilon &&
			(silp.ObjKind != translate.ObjProbability || q > 0) {
			return best, nil
		}
		if r.timeUp() {
			return best, nil
		}

		// Choose the next conservativeness vector (§5.2).
		copy(prevAlphas, st.alphas)
		for ck, pc := range silp.ProbCons {
			st.alphas[ck] = guessAlpha(st.histories[ck], pc.P, grid)
		}
		lastFeasible = val.Feasible

		// Build the summaries (§5.3, §5.5) and the reduced DILP.
		sumSpan := obs.SpanFromContext(r.ctx).StartChild("summarize")
		sumSpan.SetInt("z", int64(zCount))
		summaries := make([][]*scenario.Summary, k)
		for ck, pc := range silp.ProbCons {
			dir := pc.Direction()
			var accel []bool
			if !r.opts.DisableAcceleration && lastFeasible && st.alphas[ck] < prevAlphas[ck] {
				accel = make([]bool, silp.N)
				for i, xi := range x {
					accel[i] = xi > 0
				}
			}
			for _, part := range parts {
				chosen, err := bk.Pick(ck, part, st.alphas[ck], dir, x)
				if err != nil {
					sumSpan.End()
					return nil, err
				}
				if len(chosen) == 0 {
					chosen = part[:1]
				}
				sm, err := bk.Summarize(ck, chosen, dir, accel)
				if err != nil {
					sumSpan.End()
					return nil, err
				}
				summaries[ck] = append(summaries[ck], sm)
			}
		}
		sumSpan.End()
		model, vm, err := silp.FormulateCSA(summaries, objSummaries)
		if err != nil {
			return nil, err
		}
		solveStart := time.Now()
		solveOpts := r.solverOptions(nil)
		solveOpts.WantRootBasis = r.opts.CollectWarm
		res, err := r.solveMILP("csa", model, solveOpts)
		if err != nil {
			return nil, fmt.Errorf("core: CSA solve (M=%d, Z=%d): %w", mCount, zCount, err)
		}
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		(*iters)[len(*iters)-1].SolverStatus = res.Status
		(*iters)[len(*iters)-1].Coefficients = res.Coefficients
		(*iters)[len(*iters)-1].Nodes = res.Nodes
		(*iters)[len(*iters)-1].LPIters = res.LPIters
		(*iters)[len(*iters)-1].WarmStarts = res.WarmStarts
		(*iters)[len(*iters)-1].DegenPivots = res.DegenPivots
		(*iters)[len(*iters)-1].BoundFlips = res.BoundFlips
		(*iters)[len(*iters)-1].PresolveRows = res.PresolveRows
		(*iters)[len(*iters)-1].PresolveCols = res.PresolveCols
		(*iters)[len(*iters)-1].SolveTime = time.Since(solveStart)
		if res.X == nil {
			// The conservative problem is unsolvable at these α's: back off
			// toward the grid floor; if already there, give up and let the
			// caller grow M.
			backedOff := false
			for ck := range st.alphas {
				if st.alphas[ck] > grid+1e-12 {
					st.alphas[ck] = math.Max(grid, st.alphas[ck]/2)
					st.alphas[ck] = math.Ceil(st.alphas[ck]/grid-1e-9) * grid
					backedOff = true
				}
			}
			if !backedOff {
				return best, nil
			}
			continue
		}
		x = vm.PackageOf(res.X)
		if r.opts.CollectWarm {
			// Remember this solve's formulation and basis: if x validates
			// feasible next iteration and is the accepted package, finish
			// attaches it as the result's warm-start state.
			r.warm = &WarmStart{
				X:            append([]float64(nil), x...),
				Summaries:    summaries,
				ObjSummaries: objSummaries,
				Basis:        res.RootBasis,
				M:            mCount,
				Z:            zCount,
			}
		}
	}
	return best, nil
}
