package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestParallelValidationBitIdentical asserts the tentpole determinism
// guarantee: sharded validation returns exactly the sequential results for
// any worker count (feasibility, objective, surpluses, CI half-widths).
func TestParallelValidationBitIdentical(t *testing.T) {
	silp := portfolioSILP(t, 20, easyQuery)
	x := make([]float64, silp.N)
	for i := 0; i < silp.N; i += 2 {
		x[i] = float64(1 + i%3)
	}
	opts := smallOptions(3)
	opts.ValidationM = 5003 // odd, so shards are uneven
	seq, err := Validate(context.Background(), silp, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, -1} {
		po := *opts
		po.Parallelism = workers
		par, err := Validate(context.Background(), silp, x, &po)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Feasible != seq.Feasible {
			t.Fatalf("workers=%d: feasible %v, want %v", workers, par.Feasible, seq.Feasible)
		}
		if par.Objective != seq.Objective {
			t.Fatalf("workers=%d: objective %v, want %v (must be bit-identical)", workers, par.Objective, seq.Objective)
		}
		for k := range seq.Surpluses {
			if par.Surpluses[k] != seq.Surpluses[k] {
				t.Fatalf("workers=%d: surplus[%d] %v, want %v", workers, k, par.Surpluses[k], seq.Surpluses[k])
			}
			if par.CIHalf[k] != seq.CIHalf[k] {
				t.Fatalf("workers=%d: CIHalf[%d] %v, want %v", workers, k, par.CIHalf[k], seq.CIHalf[k])
			}
		}
	}
}

// TestParallelSummarySearchBitIdentical runs the full algorithm at several
// worker counts: the parallel engine must not change any answer.
func TestParallelSummarySearchBitIdentical(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	seq, err := SummarySearch(silp, smallOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opts := smallOptions(9)
		opts.Parallelism = workers
		par, err := SummarySearch(silp, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Feasible != seq.Feasible || par.Objective != seq.Objective ||
			par.M != seq.M || par.Z != seq.Z {
			t.Fatalf("workers=%d: (feasible,obj,M,Z)=(%v,%v,%d,%d), want (%v,%v,%d,%d)",
				workers, par.Feasible, par.Objective, par.M, par.Z,
				seq.Feasible, seq.Objective, seq.M, seq.Z)
		}
		for i := range seq.X {
			if par.X[i] != seq.X[i] {
				t.Fatalf("workers=%d: package differs at tuple %d", workers, i)
			}
		}
	}
}

// TestParallelNaiveBitIdentical covers the SAA baseline's parallel scenario
// generation path.
func TestParallelNaiveBitIdentical(t *testing.T) {
	silp := portfolioSILP(t, 10, easyQuery)
	seq, err := Naive(silp, smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOptions(4)
	opts.Parallelism = 4
	par, err := Naive(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Feasible != seq.Feasible || par.Objective != seq.Objective || par.M != seq.M {
		t.Fatalf("parallel Naive diverged: (%v,%v,%d) vs (%v,%v,%d)",
			par.Feasible, par.Objective, par.M, seq.Feasible, seq.Objective, seq.M)
	}
}

// TestSummarySearchCtxCancellation starts a long evaluation and cancels it:
// the evaluation must return promptly with the context's error, even if a
// MILP solve is in flight (the solver polls the cancel channel per node).
func TestSummarySearchCtxCancellation(t *testing.T) {
	silp := portfolioSILP(t, 40, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 2000 AND
		SUM(gain) >= 500 WITH PROBABILITY >= 0.99
		MAXIMIZE EXPECTED SUM(gain)`)
	opts := &Options{
		Seed:        1,
		ValidationM: 200000, // large M̂ so validation alone is slow
		InitialM:    50,
		IncrementM:  50,
		MaxM:        1000,
		Parallelism: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := SummarySearchCtx(ctx, silp, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSummarySearchCtxDeadline covers the deadline path end to end.
func TestSummarySearchCtxDeadline(t *testing.T) {
	silp := portfolioSILP(t, 40, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 2000 AND
		SUM(gain) >= 500 WITH PROBABILITY >= 0.99
		MAXIMIZE EXPECTED SUM(gain)`)
	opts := &Options{
		Seed:        1,
		ValidationM: 200000,
		InitialM:    50,
		IncrementM:  50,
		MaxM:        1000,
		Parallelism: 2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SummarySearchCtx(ctx, silp, opts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline expiry took %v, want prompt return", elapsed)
	}
}
