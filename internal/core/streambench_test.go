package core

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// spillItems streams an n-row CSV (id, price) through SpillCSV without ever
// holding the text in memory, then attaches a constant-state stochastic
// attribute (a single broadcast distribution, so VG memory is O(1) in n).
func spillItems(tb testing.TB, dir string, n int) *relation.Relation {
	tb.Helper()
	pr, pw := io.Pipe()
	go func() {
		fmt.Fprintln(pw, "id,price")
		for i := 0; i < n; i++ {
			fmt.Fprintf(pw, "%d,%d\n", i, 40+7*(i%9))
		}
		pw.Close()
	}()
	rel, err := relation.SpillCSV("items", pr, dir, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{
		AttrID: 1,
		Dists:  []dist.Dist{dist.Normal{Mu: 1, Sigma: 1.5}},
	}); err != nil {
		tb.Fatal(err)
	}
	return rel
}

// streamBenchQuery keeps the solved problem constant-size while the catalog
// grows: WHERE pushdown keeps exactly 1000 of the n tuples before any
// scenario is generated, the objective is deterministic (no mean
// precomputation, which would touch every tuple), and the probabilistic
// constraint streams block-wise.
const streamBenchQuery = `SELECT PACKAGE(*) FROM items WHERE id < 1000 SUCH THAT
	SUM(price) <= 400 AND
	SUM(gain) >= -3 WITH PROBABILITY >= 0.8
	MAXIMIZE SUM(price)`

func solveStreamed(tb testing.TB, rel *relation.Relation, seed uint64) *Solution {
	tb.Helper()
	q := spaql.MustParse(streamBenchQuery)
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sol, err := SummarySearch(silp, &Options{
		Seed:        seed,
		ValidationM: 1000,
		InitialM:    10,
		IncrementM:  10,
		MaxM:        40,
		// MaxResidentScenarios 0: always stream.
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sol
}

// peakHeapDuring samples runtime.MemStats.HeapAlloc while f runs and returns
// the largest observation, starting from a GC-settled baseline.
func peakHeapDuring(f func()) uint64 {
	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	f()
	runtime.ReadMemStats(new(runtime.MemStats)) // flush one final sample point
	close(stop)
	<-done
	return peak.Load()
}

// TestStreamingPeakHeapFlat is the memory-model acceptance check: a streamed
// end-to-end query over an out-of-core relation must keep peak heap within
// 2× (plus a small fixed slack) while the relation grows 100×, because the
// pushdown scan is block-wise, the kept view is O(selected), and scenario
// values are realized block-wise instead of materialized N×M.
func TestStreamingPeakHeapFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1M-tuple out-of-core relation")
	}
	const small, big = 10_000, 1_000_000

	measure := func(n int) (uint64, *Solution) {
		dir := t.TempDir()
		rel := spillItems(t, dir, n)
		var sol *Solution
		peak := peakHeapDuring(func() {
			sol = solveStreamed(t, rel, 7)
		})
		return peak, sol
	}

	// Warm-up evaluation so lazily initialized runtime state (parser tables,
	// pools) does not count against the small baseline.
	{
		dir := t.TempDir()
		solveStreamed(t, spillItems(t, dir, small), 7)
	}

	peakSmall, solSmall := measure(small)
	peakBig, solBig := measure(big)

	// The solved problem is identical (same 1000 kept tuples, same seed), so
	// the answers must match exactly — streamed evaluation is bit-identical
	// regardless of catalog size beyond the WHERE cut.
	if solSmall.Objective != solBig.Objective || solSmall.Feasible != solBig.Feasible {
		t.Fatalf("solutions diverged across catalog sizes: (%v,%v) vs (%v,%v)",
			solSmall.Objective, solSmall.Feasible, solBig.Objective, solBig.Feasible)
	}
	for i := range solSmall.X {
		if solSmall.X[i] != solBig.X[i] {
			t.Fatalf("X[%d] differs across catalog sizes", i)
		}
	}

	const slack = 8 << 20 // fixed allowance for GC timing noise
	if peakBig > 2*peakSmall+slack {
		t.Fatalf("peak heap grew with catalog size: %d bytes at N=%d vs %d bytes at N=%d (limit 2x+%d)",
			peakBig, big, peakSmall, small, slack)
	}
	t.Logf("peak heap: %.1f MiB at N=%d, %.1f MiB at N=%d",
		float64(peakSmall)/(1<<20), small, float64(peakBig)/(1<<20), big)
}

// BenchmarkStreamEndToEnd measures the streamed end-to-end query (spill
// excluded, pushdown + solve included) at growing catalog sizes; run with
// -benchmem to see that allocation stays flat while N grows.
func BenchmarkStreamEndToEnd(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			rel := spillItems(b, dir, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveStreamed(b, rel, 7)
			}
		})
	}
}
