package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// smallOptions keeps test runs fast.
func smallOptions(seed uint64) *Options {
	return &Options{
		Seed:        seed,
		ValidationM: 1500,
		InitialM:    10,
		IncrementM:  10,
		MaxM:        60,
	}
}

// portfolioSILP builds a small tractable portfolio instance: n stocks with
// prices and Normal gains whose mean rises with the index.
func portfolioSILP(t *testing.T, n int, query string) *translate.SILP {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		mu := 0.5 + float64(i%5)*0.4
		sigma := 0.5 + float64(i%3)*0.5
		gains[i] = dist.Normal{Mu: mu, Sigma: sigma}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	q := spaql.MustParse(query)
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return silp
}

const easyQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -5 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func TestNaiveFindsFeasibleSolution(t *testing.T) {
	silp := portfolioSILP(t, 15, easyQuery)
	sol, err := Naive(silp, smallOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("Naive failed to find a feasible solution: %+v", sol)
	}
	if sol.Surpluses[0] < 0 {
		t.Fatalf("surplus = %v, want ≥ 0", sol.Surpluses[0])
	}
	// Budget must hold.
	price, _ := silp.Rel.Det("price")
	total := 0.0
	for i, x := range sol.X {
		total += price[i] * x
	}
	if total > 300+1e-9 {
		t.Fatalf("budget violated: %v", total)
	}
	if len(sol.Iterations) == 0 {
		t.Fatal("no iteration records")
	}
}

func TestSummarySearchFindsFeasibleSolution(t *testing.T) {
	silp := portfolioSILP(t, 15, easyQuery)
	sol, err := SummarySearch(silp, smallOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("SummarySearch failed: %+v", sol)
	}
	if sol.Z < 1 {
		t.Fatalf("Z = %d, want ≥ 1", sol.Z)
	}
	if sol.PackageSize() <= 0 {
		t.Fatal("empty package with a maximization objective")
	}
}

func TestSummarySearchDeterministicGivenSeed(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	a, err := SummarySearch(silp, smallOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SummarySearch(silp, smallOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Feasible != b.Feasible || math.Abs(a.Objective-b.Objective) > 1e-12 {
		t.Fatalf("same seed produced different results: %v vs %v", a.Objective, b.Objective)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different packages")
		}
	}
}

func TestSeedsChangeNaivePath(t *testing.T) {
	silp := portfolioSILP(t, 15, easyQuery)
	a, _ := Naive(silp, smallOptions(1))
	b, _ := Naive(silp, smallOptions(2))
	if a == nil || b == nil {
		t.Fatal("nil solutions")
	}
	// Different optimization scenarios may yield different packages; at
	// minimum the runs must be independent executions that both validate.
	if a.Feasible && b.Feasible {
		return
	}
	t.Fatalf("feasibility: seed1=%v seed2=%v", a.Feasible, b.Feasible)
}

func TestInfeasibleProbabilisticQuery(t *testing.T) {
	// Demand a gain of +1000 with probability 0.95 on a tiny budget:
	// unachievable, both algorithms must report infeasibility after MaxM.
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 100 AND
		SUM(gain) >= 1000 WITH PROBABILITY >= 0.95
		MAXIMIZE EXPECTED SUM(gain)`
	silp := portfolioSILP(t, 10, q)
	opts := smallOptions(3)
	opts.MaxM = 30
	naive, err := Naive(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Feasible {
		t.Fatal("Naive claims feasibility of an impossible query")
	}
	ss, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Feasible {
		t.Fatal("SummarySearch claims feasibility of an impossible query")
	}
}

func TestDeterministicallyInfeasibleQuery(t *testing.T) {
	// COUNT(*) ≥ 5 with COUNT(*) ≤ 2 is unsatisfiable before any sampling.
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) >= 5 AND COUNT(*) <= 2 AND
		SUM(gain) >= 0 WITH PROBABILITY >= 0.5`
	silp := portfolioSILP(t, 8, q)
	_, err := SummarySearch(silp, smallOptions(1))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSummarySearchDeterministicQueryShortCircuit(t *testing.T) {
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 2 AND 4 AND SUM(price) <= 200
		MINIMIZE EXPECTED SUM(gain)`
	silp := portfolioSILP(t, 10, q)
	sol, err := SummarySearch(silp, smallOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatal("deterministic query should be feasible")
	}
	if sol.M != 0 || sol.Z != 0 {
		t.Fatalf("deterministic short-circuit should not consume scenarios (M=%d Z=%d)", sol.M, sol.Z)
	}
	if got := sol.PackageSize(); got < 2 || got > 4 {
		t.Fatalf("package size %v outside COUNT bounds", got)
	}
}

func TestProbabilityObjectiveQuery(t *testing.T) {
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 1 AND 5 AND
		SUM(gain) >= -20 WITH PROBABILITY >= 0.6
		MAXIMIZE PROBABILITY OF SUM(gain) >= 1`
	silp := portfolioSILP(t, 12, q)
	opts := smallOptions(4)
	opts.FixedZ = 2
	sol, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible {
		t.Fatalf("prob-objective query infeasible: %+v", sol)
	}
	if sol.Objective < 0 || sol.Objective > 1 {
		t.Fatalf("probability objective estimate %v outside [0,1]", sol.Objective)
	}
	if sol.PackageSize() < 1 {
		t.Fatal("package empty despite COUNT ≥ 1")
	}
}

func TestValidationSurplusMatchesKnownProbability(t *testing.T) {
	// One tuple with Gain ~ Normal(0, 1): Pr(gain ≥ 0) = 0.5 exactly.
	rel := relation.New("r", 1)
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: []dist.Dist{dist.Normal{Mu: 0, Sigma: 1}}}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(1), 100)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM r SUCH THAT
		COUNT(*) <= 2 AND SUM(gain) >= 0 WITH PROBABILITY >= 0.4`)
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOptions(1)
	opts.ValidationM = 20000
	r := newRunner(context.Background(), silp, opts)
	val, err := r.validate([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// surplus = Pr(gain ≥ 0) − 0.4 ≈ 0.1.
	if math.Abs(val.Surpluses[0]-0.1) > 0.02 {
		t.Fatalf("surplus = %v, want ≈ 0.1", val.Surpluses[0])
	}
	if !val.Feasible {
		t.Fatal("should be feasible")
	}
}

func TestValidationEmptyPackage(t *testing.T) {
	silp := portfolioSILP(t, 5, easyQuery)
	r := newRunner(context.Background(), silp, smallOptions(1))
	val, err := r.validate(make([]float64, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Empty package: score 0 ≥ −5 holds in every scenario.
	if !val.Feasible || val.Surpluses[0] < 0.19 {
		t.Fatalf("empty package validation: %+v", val)
	}
	if val.Objective != 0 {
		t.Fatalf("objective of empty package = %v", val.Objective)
	}
}

func TestGuessAlphaFirstMove(t *testing.T) {
	// Single infeasible observation at α=0 with deficit 0.3.
	a := guessAlpha([]alphaObs{{alpha: 0, surplus: -0.3}}, 0.9, 0.1)
	if a <= 0 || a > 1 {
		t.Fatalf("first guess %v outside (0, 1]", a)
	}
	// Grid snapping: must be a multiple of 0.1.
	if r := math.Mod(a+1e-9, 0.1); r > 2e-9 && r < 0.1-2e-9 {
		t.Fatalf("guess %v not grid aligned", a)
	}
}

func TestGuessAlphaBracketsZero(t *testing.T) {
	// Observations: infeasible at 0 and 0.2, feasible at 0.8 → guess in
	// (0.2, 0.8].
	hist := []alphaObs{
		{alpha: 0, surplus: -0.4},
		{alpha: 0.2, surplus: -0.1},
		{alpha: 0.8, surplus: 0.15},
	}
	a := guessAlpha(hist, 0.9, 0.1)
	if a <= 0.2 || a > 0.8 {
		t.Fatalf("guess %v outside bracket (0.2, 0.8]", a)
	}
}

func TestGuessAlphaAllFeasibleDecreases(t *testing.T) {
	hist := []alphaObs{
		{alpha: 0.6, surplus: 0.2},
		{alpha: 0.4, surplus: 0.1},
	}
	a := guessAlpha(hist, 0.9, 0.1)
	if a >= 0.4 {
		t.Fatalf("guess %v should decrease below smallest feasible 0.4", a)
	}
	if a < 0.1 {
		t.Fatalf("guess %v below grid floor", a)
	}
}

func TestGuessAlphaAvoidsKnownInfeasible(t *testing.T) {
	hist := []alphaObs{
		{alpha: 0, surplus: -0.5},
		{alpha: 0.3, surplus: -0.2},
		{alpha: 0.5, surplus: -0.05},
		{alpha: 1.0, surplus: 0.3},
	}
	a := guessAlpha(hist, 0.9, 0.1)
	if a <= 0.5 {
		t.Fatalf("guess %v must exceed the largest infeasible α 0.5", a)
	}
}

func TestSnapAlphaEdges(t *testing.T) {
	if got := snapAlpha(0.05, 0.1, math.Inf(-1), math.Inf(1)); got != 0.1 {
		t.Fatalf("snap(0.05) = %v, want 0.1 (grid floor)", got)
	}
	if got := snapAlpha(5, 0.1, math.Inf(-1), math.Inf(1)); got != 1 {
		t.Fatalf("snap(5) = %v, want clamp to 1", got)
	}
	// Exactly on a known-infeasible value: bump one grid step.
	if got := snapAlpha(0.3, 0.1, 0.3, math.Inf(1)); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("snap onto infeasible = %v, want 0.4", got)
	}
}

func TestPackageSizeBounds(t *testing.T) {
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 3 AND 8 AND
		SUM(gain) >= 0 WITH PROBABILITY >= 0.5`
	silp := portfolioSILP(t, 10, q)
	lo, hi := packageSizeBounds(silp)
	if lo != 3 || hi != 8 {
		t.Fatalf("size bounds = [%v, %v], want [3, 8]", lo, hi)
	}
}

func TestPackageSizeBoundsDefault(t *testing.T) {
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 100 AND SUM(gain) >= 0 WITH PROBABILITY >= 0.5`
	silp := portfolioSILP(t, 4, q)
	lo, hi := packageSizeBounds(silp)
	if lo != 0 {
		t.Fatalf("lo = %v, want 0", lo)
	}
	wantHi := 0.0
	for _, h := range silp.VarHi {
		wantHi += h
	}
	if hi != wantHi {
		t.Fatalf("hi = %v, want Σ VarHi = %v", hi, wantHi)
	}
}

func TestEpsUpperMaximization(t *testing.T) {
	silp := portfolioSILP(t, 10, easyQuery)
	r := newRunner(context.Background(), silp, smallOptions(1))
	// ω̄ from probing; any positive objective yields finite ε.
	eps := r.epsUpper(5)
	if math.IsInf(eps, 1) || eps < 0 {
		t.Fatalf("epsUpper = %v, want finite nonnegative", eps)
	}
	// A larger objective (closer to the bound) has smaller ε.
	if r.epsUpper(10) >= eps {
		t.Fatalf("epsUpper should shrink as the objective approaches the bound")
	}
}

func TestEpsUpperProbabilityObjectiveBounds(t *testing.T) {
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) <= 3
		MAXIMIZE PROBABILITY OF SUM(gain) >= 0`
	silp := portfolioSILP(t, 6, q)
	r := newRunner(context.Background(), silp, smallOptions(1))
	lo, hi := r.omegaBounds()
	if lo != 0 || hi != 1 {
		t.Fatalf("probability objective bounds = [%v, %v], want [0, 1]", lo, hi)
	}
	if eps := r.epsUpper(0.5); math.Abs(eps-1) > 1e-9 {
		t.Fatalf("epsUpper(0.5) = %v, want (1/0.5)−1 = 1", eps)
	}
}

func TestCounteractingConstraintTightensLowerBound(t *testing.T) {
	// Minimization with counteracting constraint Pr(Σ ≥ v) ≥ p, v ≥ 0,
	// values ≥ 0 (Pareto support): ω̲ ≥ p·v (§5.4).
	rel := relation.New("g", 8)
	ds := make([]dist.Dist, 8)
	for i := range ds {
		ds[i] = dist.Pareto{Sigma: 1, Alpha: 3}
	}
	if err := rel.AddStoch("flux", &relation.IndependentVG{AttrID: 1, Dists: ds}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(3), 300)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM g SUCH THAT
		COUNT(*) BETWEEN 2 AND 5 AND
		SUM(flux) >= 6 WITH PROBABILITY >= 0.9
		MINIMIZE EXPECTED SUM(flux)`)
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := newRunner(context.Background(), silp, smallOptions(1))
	lo, _ := r.omegaBounds()
	if lo < 0.9*6-1e-9 {
		t.Fatalf("lower bound %v, want ≥ p·v = 5.4", lo)
	}
}

func TestBetterOrdering(t *testing.T) {
	silp := portfolioSILP(t, 5, easyQuery) // maximization
	feasLow := &Solution{X: []float64{1}, Feasible: true, Objective: 1}
	feasHigh := &Solution{X: []float64{1}, Feasible: true, Objective: 2}
	infeas := &Solution{X: []float64{1}, Feasible: false, Objective: 99}
	if !better(silp, feasHigh, feasLow) {
		t.Fatal("higher objective should win under maximization")
	}
	if better(silp, feasLow, feasHigh) {
		t.Fatal("lower objective should lose")
	}
	if !better(silp, feasLow, infeas) {
		t.Fatal("feasible should beat infeasible")
	}
	if better(silp, nil, feasLow) {
		t.Fatal("nil never wins")
	}
	if !better(silp, infeas, nil) {
		t.Fatal("anything beats nil")
	}
}

func TestSolutionKeyDistinguishes(t *testing.T) {
	a := solutionKey([]float64{1, 0, 2}, []float64{0.1})
	b := solutionKey([]float64{1, 0, 2}, []float64{0.2})
	c := solutionKey([]float64{1, 1, 2}, []float64{0.1})
	if a == b || a == c || b == c {
		t.Fatal("solution keys collide")
	}
	if a != solutionKey([]float64{1, 0, 2}, []float64{0.1}) {
		t.Fatal("solution key not deterministic")
	}
}

func TestAccelerationAblation(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	on := smallOptions(9)
	off := smallOptions(9)
	off.DisableAcceleration = true
	solOn, err := SummarySearch(silp, on)
	if err != nil {
		t.Fatal(err)
	}
	solOff, err := SummarySearch(silp, off)
	if err != nil {
		t.Fatal(err)
	}
	if !solOn.Feasible || !solOff.Feasible {
		t.Fatalf("feasibility: accel=%v noaccel=%v", solOn.Feasible, solOff.Feasible)
	}
}

func TestFixedZRespected(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	opts := smallOptions(2)
	opts.FixedZ = 3
	sol, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Feasible && sol.Z != 3 {
		t.Fatalf("Z = %d, want pinned 3", sol.Z)
	}
}

func TestSummarySearchUsesFewerScenariosThanNaive(t *testing.T) {
	// The paper's headline behaviour: SummarySearch reaches feasibility
	// with a small M, Naïve needs more (or equal). We assert the weaker,
	// deterministic property that SummarySearch reaches feasibility within
	// the same budget and never uses more scenarios.
	q := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 300 AND
		SUM(gain) >= 0 WITH PROBABILITY >= 0.85
		MAXIMIZE EXPECTED SUM(gain)`
	silp := portfolioSILP(t, 15, q)
	opts := smallOptions(11)
	ss, err := SummarySearch(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive(silp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Feasible {
		t.Fatalf("SummarySearch infeasible: %+v", ss.Surpluses)
	}
	if naive.Feasible && ss.M > naive.M {
		t.Fatalf("SummarySearch used more scenarios (%d) than Naive (%d)", ss.M, naive.M)
	}
}
