package core

import (
	"context"
	"fmt"

	"spq/internal/translate"
)

// Solver is the seam between problem producers (the execution engine, the
// sketch pipeline) and the algorithms that solve a canonical stochastic ILP.
// Implementations must be stateless and safe for concurrent use: one Solver
// value is shared by every shard of a partition-parallel sketch and every
// in-flight engine query. A future parallel branch-and-bound path drops in
// behind this interface without touching its callers.
type Solver interface {
	// Name is the solver's registry name (the engine's "method").
	Name() string
	// Solve evaluates the problem and returns the package. Cancellation of
	// ctx aborts the evaluation promptly and returns ctx's error.
	Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error)
}

type summarySearchSolver struct{}

func (summarySearchSolver) Name() string { return "summarysearch" }
func (summarySearchSolver) Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error) {
	return SummarySearchCtx(ctx, silp, opts)
}

type naiveSolver struct{}

func (naiveSolver) Name() string { return "naive" }
func (naiveSolver) Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error) {
	return NaiveCtx(ctx, silp, opts)
}

// SummarySearchSolver is the MILP-backed CSA path (Algorithm 2 + CSA-Solve),
// the system default.
var SummarySearchSolver Solver = summarySearchSolver{}

// NaiveSolver is the SAA baseline (Algorithm 1).
var NaiveSolver Solver = naiveSolver{}

// SolverByName resolves a method name to a Solver. The empty string selects
// the default (SummarySearch).
func SolverByName(name string) (Solver, error) {
	switch name {
	case "", "summarysearch":
		return SummarySearchSolver, nil
	case "naive":
		return NaiveSolver, nil
	default:
		return nil, fmt.Errorf("core: unknown solver %q", name)
	}
}
