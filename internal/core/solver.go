package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"spq/internal/translate"
)

// Solver is the seam between problem producers (the execution engine, the
// sketch pipeline) and the algorithms that solve a canonical stochastic ILP.
// Implementations must be stateless and safe for concurrent use: one Solver
// value is shared by every shard of a partition-parallel sketch and every
// in-flight engine query. A future parallel branch-and-bound path drops in
// behind this interface without touching its callers.
type Solver interface {
	// Name is the solver's registry name (the engine's "method").
	Name() string
	// Solve evaluates the problem and returns the package. Cancellation of
	// ctx aborts the evaluation promptly and returns ctx's error.
	Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error)
}

type summarySearchSolver struct{}

func (summarySearchSolver) Name() string { return "summarysearch" }
func (summarySearchSolver) Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error) {
	return SummarySearchCtx(ctx, silp, opts)
}

type naiveSolver struct{}

func (naiveSolver) Name() string { return "naive" }
func (naiveSolver) Solve(ctx context.Context, silp *translate.SILP, opts *Options) (*Solution, error) {
	return NaiveCtx(ctx, silp, opts)
}

// SummarySearchSolver is the MILP-backed CSA path (Algorithm 2 + CSA-Solve),
// the system default.
var SummarySearchSolver Solver = summarySearchSolver{}

// NaiveSolver is the SAA baseline (Algorithm 1).
var NaiveSolver Solver = naiveSolver{}

// The process-wide registry of non-builtin solvers (RegisterSolver). A
// coordinator daemon registers its remote solver here at startup so the
// engine's method dispatch resolves "remote" like any builtin.
var (
	solverRegMu sync.RWMutex
	solverReg   = map[string]Solver{}
)

// RegisterSolver makes s resolvable through SolverByName under its
// (lowercased) Name. Builtin names — "summarysearch", "naive", and the
// engine-reserved "sketch" — cannot be taken; registering the same name
// again replaces the earlier solver (a daemon re-configuring its worker
// pool).
func RegisterSolver(s Solver) error {
	if s == nil {
		return fmt.Errorf("core: RegisterSolver(nil)")
	}
	name := strings.ToLower(s.Name())
	switch name {
	case "", "summarysearch", "naive", "sketch":
		return fmt.Errorf("core: cannot register solver under reserved name %q", name)
	}
	solverRegMu.Lock()
	defer solverRegMu.Unlock()
	solverReg[name] = s
	return nil
}

// CacheKeyer is an optional Solver interface. A solver whose results are
// bit-identical to another named solver's — the remote solver dispatching
// an inner method is the canonical case — reports that solver's name here,
// and result-cache keys use it instead of Name(). Heterogeneously
// configured fleet nodes (one solving locally, one dispatching) then derive
// the same cache key for the same computation, which keeps replicated
// entries shareable.
type CacheKeyer interface {
	// CacheKeyName returns the canonical name of the computation the
	// solver performs.
	CacheKeyName() string
}

// SolverCacheKey returns the name a result cache should key s under:
// CacheKeyName when implemented, Name otherwise.
func SolverCacheKey(s Solver) string {
	if ck, ok := s.(CacheKeyer); ok {
		return ck.CacheKeyName()
	}
	return s.Name()
}

// SolverByName resolves a method name to a Solver: the builtins
// (SummarySearch — also the empty string's default — and Naive), then any
// solver added via RegisterSolver.
func SolverByName(name string) (Solver, error) {
	switch strings.ToLower(name) {
	case "", "summarysearch":
		return SummarySearchSolver, nil
	case "naive":
		return NaiveSolver, nil
	}
	solverRegMu.RLock()
	s, ok := solverReg[strings.ToLower(name)]
	solverRegMu.RUnlock()
	if ok {
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown solver %q", name)
}
