package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"spq/internal/translate"
)

// Naive evaluates a stochastic package query with the Algorithm 1
// optimize/validate loop: formulate SAA_{Q,M}, solve, validate against M̂
// out-of-sample scenarios, and grow M until validation succeeds or a limit
// is reached. The returned Solution reports the best package found (possibly
// infeasible) along with the full iteration history.
func Naive(silp *translate.SILP, o *Options) (*Solution, error) {
	return NaiveCtx(context.Background(), silp, o)
}

// NaiveCtx is Naive under a context; cancellation aborts the evaluation
// promptly and returns ctx's error (see SummarySearchCtx).
func NaiveCtx(ctx context.Context, silp *translate.SILP, o *Options) (*Solution, error) {
	r := newRunner(ctx, silp, o)
	sol := &Solution{EpsUpper: infEps()}

	m := r.opts.InitialM
	sets, objSet, err := r.generateSets(0, m)
	if err != nil {
		return nil, err
	}
	var best *Solution
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		model, vm, err := silp.FormulateSAA(sets, objSet)
		if err != nil {
			return nil, err
		}
		solveStart := time.Now()
		res, err := r.solveMILP("saa", model, r.solverOptions(nil))
		if err != nil {
			return nil, fmt.Errorf("core: naive solve with M=%d: %w", m, err)
		}
		if err := r.ctx.Err(); err != nil {
			return nil, err
		}
		iter := Iteration{
			M:            m,
			SolverStatus: res.Status,
			Coefficients: res.Coefficients,
			Nodes:        res.Nodes,
			LPIters:      res.LPIters,
			WarmStarts:   res.WarmStarts,
			DegenPivots:  res.DegenPivots,
			BoundFlips:   res.BoundFlips,
			PresolveRows: res.PresolveRows,
			PresolveCols: res.PresolveCols,
			SolveTime:    time.Since(solveStart),
		}
		if res.X != nil {
			x := vm.PackageOf(res.X)
			valStart := time.Now()
			val, err := r.validate(x)
			if err != nil {
				return nil, err
			}
			iter.ValidateTime = time.Since(valStart)
			iter.Feasible = val.Feasible
			iter.Objective = val.Objective
			iter.Surpluses = val.Surpluses
			sol.Iterations = append(sol.Iterations, iter)
			cand := r.asSolution(x, val, m, 0, sol.Iterations)
			improved := better(silp, cand, best)
			if improved {
				best = cand
			}
			r.progress(len(sol.Iterations), m, 0, val, cand.X, improved, best)
			if val.Feasible {
				return r.finish(best), nil
			}
		} else {
			sol.Iterations = append(sol.Iterations, iter)
		}
		if m >= r.opts.MaxM || r.timeUp() {
			break
		}
		grow := r.opts.IncrementM
		if m+grow > r.opts.MaxM {
			grow = r.opts.MaxM - m
		}
		if err := r.extendSets(sets, objSet, grow); err != nil {
			return nil, err
		}
		m += grow
	}
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	// Failure: report the best (infeasible) attempt, or an empty solution.
	if best == nil {
		best = sol
	}
	best.M = m // report the final scenario count reached before giving up
	return r.finish(best), nil
}

// asSolution packages a validated point into a Solution snapshot.
func (r *runner) asSolution(x []float64, val *Validation, m, z int, iters []Iteration) *Solution {
	return &Solution{
		X:             append([]float64(nil), x...),
		Feasible:      val.Feasible,
		Objective:     val.Objective,
		EpsUpper:      val.EpsUpper,
		Surpluses:     append([]float64(nil), val.Surpluses...),
		SurplusCIHalf: append([]float64(nil), val.CIHalf...),
		M:             m,
		Z:             z,
		Iterations:    iters,
	}
}

// better reports whether a should replace b as the incumbent: feasibility
// first, then objective value in the query's original sense.
func better(silp *translate.SILP, a, b *Solution) bool {
	if a == nil {
		return false
	}
	if b == nil || b.X == nil {
		return true
	}
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if silp.Maximize {
		return a.Objective > b.Objective
	}
	return a.Objective < b.Objective
}

func infEps() float64 { return math.Inf(1) }
