package core

import (
	"strings"
	"testing"
	"time"

	"spq/internal/milp"
)

func TestRenderHistoryEmpty(t *testing.T) {
	s := &Solution{}
	if out := s.RenderHistory(); !strings.Contains(out, "no iterations") {
		t.Fatalf("empty history rendering: %q", out)
	}
}

func TestRenderHistoryColumns(t *testing.T) {
	s := &Solution{Iterations: []Iteration{
		{
			M: 20, Z: 1, SolverStatus: milp.StatusOptimal, Coefficients: 420,
			SolveTime: 12 * time.Millisecond, ValidateTime: 3 * time.Millisecond,
			Feasible: false, Objective: 1.25, Surpluses: []float64{-0.07},
		},
		{
			M: 20, Z: 1, SolverStatus: milp.StatusOptimal, Coefficients: 420,
			SolveTime: 9 * time.Millisecond, ValidateTime: 3 * time.Millisecond,
			Feasible: true, Objective: 1.02, Surpluses: []float64{0.013},
		},
	}}
	out := s.RenderHistory()
	for _, want := range []string{"optimal", "420", "-0.070", "+0.013", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("history missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderHistoryFromRealRun(t *testing.T) {
	silp := portfolioSILP(t, 12, easyQuery)
	sol, err := SummarySearch(silp, smallOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	out := sol.RenderHistory()
	if !strings.Contains(out, "M") || len(out) < 50 {
		t.Fatalf("real history too thin:\n%s", out)
	}
}
