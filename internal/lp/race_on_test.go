//go:build race

package lp

// See race_off_test.go.
const raceEnabled = true
