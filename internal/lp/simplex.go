package lp

import (
	"errors"
	"math"
	"time"
)

// variable status codes. Structural variables are 0..n-1, logical (row)
// variables are n..n+m-1.
const (
	statusAtLower = iota
	statusAtUpper
	statusFree
	statusBasic
)

const (
	pivotTol      = 1e-9 // minimum |pivot element|
	refactorEvery = 100  // pivots between basis refactorizations
)

// Scratch is reusable solver working memory: basis-inverse rows, the eta
// file, pricing and ratio-test vectors, and the refactorization workspace.
// A zero Scratch is ready to use; buffers grow to the largest problem seen
// and are retained across solves. Not safe for concurrent solves — callers
// that solve in parallel (the MILP branch-and-bound) keep one per worker.
type Scratch struct {
	lo, hi     []float64
	status     []byte
	basis, pos []int
	binvBack   []float64
	binvRows   [][]float64
	refacBack  []float64
	refacRows  [][]float64
	xb         []float64
	cost       []float64
	y, w, v    []float64
	rho, cb    []float64
	etaR       []int
	etaOff     []int
	etaWr      []float64
	etaVal     []float64
	etaIdx     []int32
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]float64, n)
	}
	return *buf
}

func growBytes(buf *[]byte, n int) []byte {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]byte, n)
	}
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([]int, n)
	}
	return *buf
}

func growRows(buf *[][]float64, n int) [][]float64 {
	if cap(*buf) >= n {
		*buf = (*buf)[:n]
	} else {
		*buf = make([][]float64, n)
	}
	return *buf
}

// simplex is the working state of one solve. The basis inverse is kept in
// product form: a dense refactorized inverse binv (of the basis at the last
// refactorization) composed with a file of sparse eta transforms, one per
// pivot since. ftran/btran apply the dense part and then stream the etas, so
// a pivot costs O(nnz(eta)) instead of the O(m²) dense rank-1 update, with
// the periodic dense refactorization as the conditioning fallback.
type simplex struct {
	p    *Problem
	opts Options

	n, m  int // structural vars, rows
	total int // n + m

	lo, hi []float64 // bounds for all vars (structural then logical)
	status []byte    // statusAtLower / statusAtUpper / statusFree / statusBasic

	basis []int       // basis[k] = variable basic in position k
	pos   []int       // pos[j] = basis position of var j, or -1
	binv  [][]float64 // dense refactorized basis inverse, m×m
	xb    []float64   // values of basic variables

	cost []float64 // current phase cost for all vars
	y    []float64 // duals c_Bᵀ·B⁻¹
	w    []float64 // ftran scratch
	v    []float64 // rhs scratch
	rho  []float64 // dual-simplex pivot row e_rᵀ·B⁻¹
	cb   []float64 // btran input scratch

	// Eta file: pivot k replaced basis position etaR[k] with a column whose
	// ftran image was w; the eta stores w's pivot entry (etaWr) and its
	// off-pivot nonzeros (etaIdx/etaVal in [etaOff[k], etaOff[k+1])).
	etaR   []int
	etaOff []int
	etaWr  []float64
	etaVal []float64
	etaIdx []int32

	refacBack []float64
	refacRows [][]float64

	iters       int
	sincePivot  int // pivots since last refactorization (= live eta count)
	degenerate  int // consecutive degenerate iterations (for Bland's rule)
	degenTotal  int // total degenerate pivots this solve
	boundFlips  int // dual iterations resolved by a bound flip (no eta)
	blandActive bool

	hasDL bool     // opts.Deadline is set
	sc    *Scratch // caller-owned scratch to hand grown eta buffers back to
}

func newSimplex(p *Problem, varLo, varHi []float64, o *Options) *simplex {
	n, m := p.nvars, len(p.rowLo)
	opts := o.withDefaults(m, n)
	sc := opts.Scratch
	if sc == nil {
		sc = &Scratch{}
	}
	s := &simplex{
		p:      p,
		opts:   opts,
		n:      n,
		m:      m,
		total:  n + m,
		lo:     growFloats(&sc.lo, n+m),
		hi:     growFloats(&sc.hi, n+m),
		status: growBytes(&sc.status, n+m),
		basis:  growInts(&sc.basis, m),
		pos:    growInts(&sc.pos, n+m),
		xb:     growFloats(&sc.xb, m),
		cost:   growFloats(&sc.cost, n+m),
		y:      growFloats(&sc.y, m),
		w:      growFloats(&sc.w, m),
		v:      growFloats(&sc.v, m),
		rho:    growFloats(&sc.rho, m),
		cb:     growFloats(&sc.cb, m),
		sc:     opts.Scratch,
	}
	back := growFloats(&sc.binvBack, m*m)
	s.binv = growRows(&sc.binvRows, m)
	for i := 0; i < m; i++ {
		s.binv[i] = back[i*m : (i+1)*m]
	}
	s.refacBack = growFloats(&sc.refacBack, 2*m*m)
	s.refacRows = growRows(&sc.refacRows, m)
	for i := 0; i < m; i++ {
		s.refacRows[i] = s.refacBack[2*m*i : 2*m*(i+1)]
	}
	s.etaR = sc.etaR[:0]
	s.etaWr = sc.etaWr[:0]
	s.etaVal = sc.etaVal[:0]
	s.etaIdx = sc.etaIdx[:0]
	s.etaOff = append(sc.etaOff[:0], 0)
	s.hasDL = !opts.Deadline.IsZero()
	copy(s.lo, varLo)
	copy(s.hi, varHi)
	for i := 0; i < m; i++ {
		s.lo[n+i] = p.rowLo[i]
		s.hi[n+i] = p.rowHi[i]
	}
	// Basis installation is deferred to solve(): the cold path builds the
	// logical basis, the warm path goes straight to loadBasis — skipping a
	// redundant basis-inverse init and computeXB pass per warm solve.
	return s
}

// releaseScratch hands append-grown eta buffers back to the caller's Scratch
// so the capacity survives into the next solve. The fixed-size buffers were
// registered at newSimplex time.
func (s *simplex) releaseScratch() {
	if s.sc == nil {
		return
	}
	s.sc.etaR = s.etaR
	s.sc.etaWr = s.etaWr
	s.sc.etaVal = s.etaVal
	s.sc.etaIdx = s.etaIdx
	s.sc.etaOff = s.etaOff
}

// resetToLogicalBasis installs the all-logical starting basis: B = −I, so
// the inverse is −I and the eta file is empty.
func (s *simplex) resetToLogicalBasis() {
	for j := 0; j < s.total; j++ {
		s.pos[j] = -1
		s.status[j] = s.initialStatus(j)
	}
	for i := 0; i < s.m; i++ {
		s.basis[i] = s.n + i
		s.pos[s.n+i] = i
		s.status[s.n+i] = statusBasic
		row := s.binv[i]
		for t := range row {
			row[t] = 0
		}
		row[i] = -1 // logical columns have coefficient -1
	}
	s.clearEtas()
	s.sincePivot = 0
	s.degenerate = 0
	s.blandActive = false
	s.computeXB()
}

func (s *simplex) clearEtas() {
	s.etaR = s.etaR[:0]
	s.etaWr = s.etaWr[:0]
	s.etaVal = s.etaVal[:0]
	s.etaIdx = s.etaIdx[:0]
	s.etaOff = s.etaOff[:1] // keep the leading 0
}

func (s *simplex) initialStatus(j int) byte {
	switch {
	case !math.IsInf(s.lo[j], -1):
		return statusAtLower
	case !math.IsInf(s.hi[j], 1):
		return statusAtUpper
	default:
		return statusFree
	}
}

// nbVal returns the value of a nonbasic variable.
func (s *simplex) nbVal(j int) float64 {
	switch s.status[j] {
	case statusAtLower:
		return s.lo[j]
	case statusAtUpper:
		return s.hi[j]
	default:
		return 0
	}
}

// column iterates the sparse column of variable j (logical columns are a
// single -1 entry).
func (s *simplex) column(j int, fn func(row int, coef float64)) {
	if j < s.n {
		for _, e := range s.p.cols[j] {
			fn(e.row, e.coef)
		}
		return
	}
	fn(j-s.n, -1)
}

// appendEta records the pivot at basis position r whose entering column had
// ftran image s.w: B_new = B_old·E where E is the identity with column r
// replaced by w. Only w's nonzero off-pivot entries are stored.
func (s *simplex) appendEta(r int) {
	s.etaR = append(s.etaR, r)
	s.etaWr = append(s.etaWr, s.w[r])
	for i := 0; i < s.m; i++ {
		if i == r || s.w[i] == 0 {
			continue
		}
		s.etaIdx = append(s.etaIdx, int32(i))
		s.etaVal = append(s.etaVal, s.w[i])
	}
	s.etaOff = append(s.etaOff, len(s.etaIdx))
	s.sincePivot++
}

// applyEtasFtran applies the eta inverses oldest→newest to v in place:
// v ← E_k⁻¹···E_1⁻¹·v, completing B⁻¹ = (etas)∘binv.
func (s *simplex) applyEtasFtran(v []float64) {
	for k := 0; k < len(s.etaR); k++ {
		r := s.etaR[k]
		zr := v[r] / s.etaWr[k]
		if zr != 0 {
			for t := s.etaOff[k]; t < s.etaOff[k+1]; t++ {
				v[s.etaIdx[t]] -= s.etaVal[t] * zr
			}
		}
		v[r] = zr
	}
}

// applyEtasBtran applies the transposed eta inverses newest→oldest to v in
// place: vᵀ ← vᵀE_k⁻¹···, the row-vector counterpart of applyEtasFtran.
func (s *simplex) applyEtasBtran(v []float64) {
	for k := len(s.etaR) - 1; k >= 0; k-- {
		r := s.etaR[k]
		acc := v[r]
		for t := s.etaOff[k]; t < s.etaOff[k+1]; t++ {
			acc -= s.etaVal[t] * v[s.etaIdx[t]]
		}
		v[r] = acc / s.etaWr[k]
	}
}

// denseBtran computes out = vᵀ·binv for the refactorized dense part,
// skipping zero entries of v (v is typically sparse: phase-1 costs touch
// only infeasible rows, the dual pivot row is a transformed unit vector).
func (s *simplex) denseBtran(v, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for k := 0; k < s.m; k++ {
		c := v[k]
		if c == 0 {
			continue
		}
		row := s.binv[k]
		for i := 0; i < s.m; i++ {
			out[i] += c * row[i]
		}
	}
}

// computeXB recomputes basic variable values from scratch: x_B = −B⁻¹·N x_N.
func (s *simplex) computeXB() {
	for i := range s.v {
		s.v[i] = 0
	}
	for j := 0; j < s.total; j++ {
		if s.status[j] == statusBasic {
			continue
		}
		val := s.nbVal(j)
		if val == 0 {
			continue
		}
		s.column(j, func(row int, coef float64) {
			s.v[row] += coef * val
		})
	}
	for k := 0; k < s.m; k++ {
		sum := 0.0
		row := s.binv[k]
		for i := 0; i < s.m; i++ {
			sum += row[i] * s.v[i]
		}
		s.xb[k] = sum
	}
	s.applyEtasFtran(s.xb)
	for k := range s.xb {
		s.xb[k] = -s.xb[k]
	}
}

// ftran computes w = B⁻¹·A_j for variable j: sparse column against the dense
// refactorized inverse, then the eta file.
func (s *simplex) ftran(j int) {
	for k := range s.w {
		s.w[k] = 0
	}
	s.column(j, func(row int, coef float64) {
		for k := 0; k < s.m; k++ {
			s.w[k] += coef * s.binv[k][row]
		}
	})
	s.applyEtasFtran(s.w)
}

// btran computes duals y = c_Bᵀ·B⁻¹ for the current phase costs: eta file
// first (newest→oldest), then the dense part.
func (s *simplex) btran() {
	for k := 0; k < s.m; k++ {
		s.cb[k] = s.cost[s.basis[k]]
	}
	s.applyEtasBtran(s.cb)
	s.denseBtran(s.cb, s.y)
}

// btranRow computes rho = e_rᵀ·B⁻¹, the dual-simplex pivot row.
func (s *simplex) btranRow(r int) {
	for k := range s.cb {
		s.cb[k] = 0
	}
	s.cb[r] = 1
	s.applyEtasBtran(s.cb)
	s.denseBtran(s.cb, s.rho)
}

// reducedCost returns d_j = c_j − yᵀA_j for nonbasic j.
func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	if j >= s.n {
		return d + s.y[j-s.n]
	}
	for _, e := range s.p.cols[j] {
		d -= s.y[e.row] * e.coef
	}
	return d
}

// rowCoef returns rhoᵀ·A_j, the pivot-row coefficient of variable j.
func (s *simplex) rowCoef(j int) float64 {
	if j >= s.n {
		return -s.rho[j-s.n]
	}
	a := 0.0
	for _, e := range s.p.cols[j] {
		a += s.rho[e.row] * e.coef
	}
	return a
}

// refactorize rebuilds the dense basis inverse from the basis columns by
// Gauss-Jordan elimination with partial pivoting and empties the eta file.
// On failure (singular basis) the current inverse and eta file are left
// untouched.
func (s *simplex) refactorize() error {
	m := s.m
	b := s.refacRows
	for i := 0; i < m; i++ {
		row := b[i]
		for t := range row {
			row[t] = 0
		}
		row[m+i] = 1
	}
	for k := 0; k < m; k++ {
		s.column(s.basis[k], func(row int, coef float64) {
			b[row][k] += coef
		})
	}
	for col := 0; col < m; col++ {
		piv, pv := -1, 0.0
		for r := col; r < m; r++ {
			if a := math.Abs(b[r][col]); a > pv {
				piv, pv = r, a
			}
		}
		if pv < pivotTol {
			return errors.New("lp: singular basis during refactorization")
		}
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / b[col][col]
		for c := 0; c < 2*m; c++ {
			b[col][c] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := b[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*m; c++ {
				b[r][c] -= f * b[col][c]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], b[i][m:])
	}
	s.clearEtas()
	s.sincePivot = 0
	s.computeXB()
	return nil
}

// interrupted reports whether the solve should stop with StatusCancelled.
// It is called once per iteration in both phases: a non-blocking channel poll
// plus (only when a deadline is set) one time.Now are negligible next to an
// iteration's pricing pass, and keep cancellation latency at one iteration
// rather than one solve.
func (s *simplex) interrupted() bool {
	if s.opts.Cancel != nil {
		select {
		case <-s.opts.Cancel:
			return true
		default:
		}
	}
	return s.hasDL && time.Now().After(s.opts.Deadline)
}

// infeasibility classification of a basic value.
const (
	feaOK = iota
	feaBelow
	feaAbove
)

func (s *simplex) basicFeasibility(k int) int {
	j := s.basis[k]
	if s.xb[k] < s.lo[j]-s.opts.FeasTol {
		return feaBelow
	}
	if s.xb[k] > s.hi[j]+s.opts.FeasTol {
		return feaAbove
	}
	return feaOK
}

func (s *simplex) totalInfeasibility() float64 {
	sum := 0.0
	for k := 0; k < s.m; k++ {
		j := s.basis[k]
		if s.xb[k] < s.lo[j] {
			sum += s.lo[j] - s.xb[k]
		} else if s.xb[k] > s.hi[j] {
			sum += s.xb[k] - s.hi[j]
		}
	}
	return sum
}

// solve reaches a feasible basis — by dual-simplex reinstatement of a
// warm-start basis when Options.Basis is usable, by phase 1 otherwise —
// then runs phase 2 and extracts the solution.
func (s *simplex) solve() (*Solution, error) {
	st := StatusOptimal
	warmed := false
	if s.opts.Basis == nil {
		s.resetToLogicalBasis()
	} else {
		if s.loadBasis(s.opts.Basis) {
			dst, fallback := s.dualReinstate()
			if fallback {
				// Dual reinstatement could not finish (stall, or no entering
				// candidate — which may mean infeasibility, but tolerances
				// make that call unsafe here); restart cold and let phase 1
				// decide.
				s.resetToLogicalBasis()
			} else {
				warmed = true
				st = dst
			}
		} else {
			// loadBasis leaves the solver in an undefined state on failure.
			s.resetToLogicalBasis()
		}
	}
	var err error
	if !warmed {
		st, err = s.phase1()
		if err != nil {
			return nil, err
		}
	}
	if st == StatusOptimal {
		st, err = s.phase2()
		if err != nil {
			return nil, err
		}
	}
	sol := &Solution{
		Status:      st,
		X:           s.extractX(),
		Iters:       s.iters,
		DegenPivots: s.degenTotal,
		BoundFlips:  s.boundFlips,
		WarmStarted: warmed,
	}
	for j := 0; j < s.n; j++ {
		sol.Obj += s.p.obj[j] * sol.X[j]
	}
	if s.opts.WantBasis && st == StatusOptimal {
		sol.Basis = s.snapshotBasis()
	}
	s.releaseScratch()
	return sol, nil
}

func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] == statusBasic {
			x[j] = s.xb[s.pos[j]]
		} else {
			x[j] = s.nbVal(j)
		}
	}
	return x
}

// dualReinstate restores primal feasibility from a warm-started basis with a
// bounded-variable dual simplex: the basis is primal-infeasible only in the
// few rows the changed bounds touched, and each dual pivot drives one
// violated basic to its bound while preserving dual feasibility (the parent
// optimum's reduced-cost signs). When no admissible entering column exists
// the violated row is an infeasibility certificate — every nonbasic sits at
// the bound that already maximizes (resp. minimizes) the row value, so no
// feasible point exists — and the violation is large enough to trust it,
// StatusInfeasible is returned directly (this is the common fate of
// branch-and-bound children and skipping the phase-1 re-proof is a large
// win). It returns fallback=true when it cannot decide — a certificate too
// close to tolerance, a numerically unusable pivot, or a degeneracy stall —
// in which case the caller must reset the basis and run phase 1.
func (s *simplex) dualReinstate() (st Status, fallback bool) {
	for j := 0; j < s.n; j++ {
		s.cost[j] = s.p.obj[j]
	}
	for j := s.n; j < s.total; j++ {
		s.cost[j] = 0
	}
	stall := 0
	for {
		if s.iters >= s.opts.MaxIters {
			return StatusIterLimit, false
		}
		if s.interrupted() {
			return StatusCancelled, false
		}
		// Leaving row: the largest bound violation.
		r, below, viol := -1, false, s.opts.FeasTol
		for k := 0; k < s.m; k++ {
			j := s.basis[k]
			if d := s.lo[j] - s.xb[k]; d > viol {
				r, below, viol = k, true, d
			}
			if d := s.xb[k] - s.hi[j]; d > viol {
				r, below, viol = k, false, d
			}
		}
		if r < 0 {
			return StatusOptimal, false // primal feasible: hand over to phase 2
		}
		s.btran()
		s.btranRow(r)
		enter := s.dualRatioTest(below)
		// Bound-flip fast path: when the cheapest entering candidate is a
		// boxed variable whose full lower↔upper traversal leaves row r still
		// violated on the same side, the eventual dual step must be long
		// enough to carry that variable past its ratio-test breakpoint — its
		// reduced cost would end up with the admissible sign for the opposite
		// bound anyway. Flipping it there now is a complete dual iteration
		// with no basis change: no eta append, no refactor pressure, just an
		// FTRAN to shift x_B by the traversed span. The flipped variable
		// self-excludes from the re-run ratio test (its admissibility sign
		// inverts with its status), so each nonbasic flips at most once per
		// row and the loop terminates.
		leave := s.basis[r]
		for enter >= 0 {
			span := s.hi[enter] - s.lo[enter]
			if s.status[enter] == statusFree || math.IsInf(span, 1) || span < s.opts.FeasTol {
				break
			}
			amt := span
			if s.status[enter] == statusAtUpper {
				amt = -span
			}
			after := s.xb[r] - s.rowCoef(enter)*amt
			still := after < s.lo[leave]-s.opts.FeasTol
			if !below {
				still = after > s.hi[leave]+s.opts.FeasTol
			}
			if !still {
				break
			}
			s.ftran(enter)
			for k := 0; k < s.m; k++ {
				s.xb[k] -= s.w[k] * amt
			}
			if s.status[enter] == statusAtLower {
				s.status[enter] = statusAtUpper
			} else {
				s.status[enter] = statusAtLower
			}
			s.boundFlips++
			s.iters++
			if s.iters >= s.opts.MaxIters {
				return StatusIterLimit, false
			}
			if s.interrupted() {
				return StatusCancelled, false
			}
			if below {
				viol = s.lo[leave] - s.xb[r]
			} else {
				viol = s.xb[r] - s.hi[leave]
			}
			enter = s.dualRatioTest(below)
		}
		if enter < 0 {
			// No admissible entering column. With the violation comfortably
			// above tolerance this is a proof of infeasibility (see the
			// function comment); a marginal violation could be rounding, so
			// hand those to phase 1.
			if viol > 100*s.opts.FeasTol {
				return StatusInfeasible, false
			}
			return 0, true
		}
		if !s.dualPivot(enter, r, below, &stall) {
			return 0, true
		}
	}
}

// dualRatioTest picks the entering variable for the dual pivot on the
// current rho row. below reports the violated side of the leaving basic
// (true: below its lower bound, so the row value must increase). The
// admissible candidates are the nonbasic variables whose allowed movement
// direction reduces the violation: with ∂x_B[r]/∂x_j = −α_j, a variable at
// its lower bound (which may only increase) qualifies when α_j < 0 for a
// below-violation and α_j > 0 for an above-violation, and symmetrically for
// at-upper; free variables qualify for any nonzero α_j. Among candidates the
// classic dual ratio test picks the minimal |d_j/α_j| so every other reduced
// cost keeps its sign after the update d_k ← d_k − t·α_k — dual feasibility
// is preserved. Near-ties prefer the larger |α_j| (numerical stability),
// then the lower index (determinism). Returns −1 if no candidate exists.
func (s *simplex) dualRatioTest(below bool) int {
	best, bestT, bestA := -1, math.Inf(1), 0.0
	for j := 0; j < s.total; j++ {
		switch s.status[j] {
		case statusBasic:
			continue
		case statusAtLower:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.hi[j], 1) {
				continue // fixed variable
			}
		case statusAtUpper:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.lo[j], -1) {
				continue
			}
		}
		a := s.rowCoef(j)
		if math.Abs(a) < pivotTol {
			continue
		}
		ok := false
		switch s.status[j] {
		case statusAtLower:
			ok = (below && a < 0) || (!below && a > 0)
		case statusAtUpper:
			ok = (below && a > 0) || (!below && a < 0)
		case statusFree:
			ok = true
		}
		if !ok {
			continue
		}
		t := math.Abs(s.reducedCost(j) / a)
		aa := math.Abs(a)
		if t < bestT-1e-10 || (t < bestT+1e-10 && aa > bestA) {
			best, bestT, bestA = j, t, aa
		}
	}
	return best
}

// dualPivot performs the basis exchange: the basic at position r leaves to
// its violated bound, enter becomes basic. Returns false to request a
// fallback when the pivot is numerically unusable or the solve is stalling
// in degenerate pivots.
func (s *simplex) dualPivot(enter, r int, below bool, stall *int) bool {
	s.ftran(enter)
	wr := s.w[r]
	if math.Abs(wr) < pivotTol {
		return false
	}
	leave := s.basis[r]
	bnd := s.hi[leave]
	leaveAt := byte(statusAtUpper)
	if below {
		bnd = s.lo[leave]
		leaveAt = statusAtLower
	}
	delta := (s.xb[r] - bnd) / wr
	for k := 0; k < s.m; k++ {
		s.xb[k] -= s.w[k] * delta
	}
	enterVal := s.nbVal(enter) + delta
	s.status[leave] = leaveAt
	s.pos[leave] = -1
	s.basis[r] = enter
	s.pos[enter] = r
	s.status[enter] = statusBasic
	s.xb[r] = enterVal
	s.appendEta(r)
	s.iters++
	if math.Abs(delta) < 1e-12 {
		s.degenTotal++
		*stall++
		if *stall > 5*(s.m+10) {
			return false
		}
	} else {
		*stall = 0
	}
	if s.sincePivot >= refactorEvery {
		if err := s.refactorize(); err != nil {
			// Keep the eta-composed inverse; a later pivot may recondition.
			return true
		}
	}
	return true
}

// phase1 minimizes total bound infeasibility of the basic variables.
// Returns StatusOptimal when a feasible basis is reached.
func (s *simplex) phase1() (Status, error) {
	for {
		if s.iters >= s.opts.MaxIters {
			return StatusIterLimit, nil
		}
		if s.interrupted() {
			return StatusCancelled, nil
		}
		// Phase-1 costs live only on basic variables; clear stale entries
		// from variables that left the basis before reassigning.
		for j := range s.cost {
			s.cost[j] = 0
		}
		infeasible := false
		for k := 0; k < s.m; k++ {
			switch s.basicFeasibility(k) {
			case feaBelow:
				s.cost[s.basis[k]] = -1
				infeasible = true
			case feaAbove:
				s.cost[s.basis[k]] = 1
				infeasible = true
			default:
				s.cost[s.basis[k]] = 0
			}
		}
		if !infeasible {
			for j := range s.cost {
				s.cost[j] = 0
			}
			return StatusOptimal, nil
		}
		s.btran()
		enter, sigma := s.priceForEntering()
		if enter < 0 {
			// No improving direction: infeasibility is at its minimum.
			if s.totalInfeasibility() > 100*s.opts.FeasTol*float64(s.m+1) {
				return StatusInfeasible, nil
			}
			// Residual infeasibility within tolerance: accept.
			for j := range s.cost {
				s.cost[j] = 0
			}
			return StatusOptimal, nil
		}
		if err := s.step(enter, sigma, true); err != nil {
			return 0, err
		}
	}
}

// phase2 minimizes the true objective starting from a feasible basis.
func (s *simplex) phase2() (Status, error) {
	for j := 0; j < s.n; j++ {
		s.cost[j] = s.p.obj[j]
	}
	for j := s.n; j < s.total; j++ {
		s.cost[j] = 0
	}
	for {
		if s.iters >= s.opts.MaxIters {
			return StatusIterLimit, nil
		}
		if s.interrupted() {
			return StatusCancelled, nil
		}
		s.btran()
		enter, sigma := s.priceForEntering()
		if enter < 0 {
			return StatusOptimal, nil
		}
		unbounded, err := s.stepPhase2(enter, sigma)
		if err != nil {
			return 0, err
		}
		if unbounded {
			return StatusUnbounded, nil
		}
	}
}

// priceForEntering scans nonbasic variables for the best improving reduced
// cost and returns the entering variable and its movement direction
// (+1 increase, −1 decrease), or (−1, 0) if none improves.
func (s *simplex) priceForEntering() (int, int) {
	best, bestScore, bestSigma := -1, s.opts.OptTol, 0
	for j := 0; j < s.total; j++ {
		switch s.status[j] {
		case statusBasic:
			continue
		case statusAtLower:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.hi[j], 1) {
				continue // fixed variable
			}
			if d := s.reducedCost(j); d < -bestScore {
				if s.blandActive {
					return j, +1
				}
				best, bestScore, bestSigma = j, -d, +1
			}
		case statusAtUpper:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.lo[j], -1) {
				continue
			}
			if d := s.reducedCost(j); d > bestScore {
				if s.blandActive {
					return j, -1
				}
				best, bestScore, bestSigma = j, d, -1
			}
		case statusFree:
			d := s.reducedCost(j)
			if d < -bestScore {
				if s.blandActive {
					return j, +1
				}
				best, bestScore, bestSigma = j, -d, +1
			} else if d > bestScore {
				if s.blandActive {
					return j, -1
				}
				best, bestScore, bestSigma = j, d, -1
			}
		}
	}
	return best, bestSigma
}

// ratioResult describes the outcome of a ratio test.
type ratioResult struct {
	t       float64 // step length
	leaveK  int     // leaving basis position, or -1 for a bound flip
	leaveAt byte    // status the leaving variable takes (statusAtLower/Upper)
}

// step performs one phase-1 iteration with entering variable `enter` moving
// in direction sigma. Phase 1 allows infeasible basics and blocks them at
// the violated bound (they leave the basis exactly feasible).
func (s *simplex) step(enter, sigma int, phase1 bool) error {
	s.ftran(enter)
	res := s.ratioTest(enter, sigma, phase1)
	if res.t < 0 {
		// An improving infeasibility direction must hit some bound; an
		// unbounded ray here means the basis inverse has degraded.
		return errors.New("lp: unbounded phase-1 ray (numerical failure)")
	}
	s.applyStep(enter, sigma, res)
	return nil
}

// stepPhase2 performs one phase-2 iteration; returns true if the problem is
// unbounded in the entering direction.
func (s *simplex) stepPhase2(enter, sigma int) (bool, error) {
	s.ftran(enter)
	res := s.ratioTest(enter, sigma, false)
	if res.t < 0 {
		return true, nil // no breakpoint: unbounded ray
	}
	s.applyStep(enter, sigma, res)
	return false, nil
}

// ratioTest finds the maximum step t for the entering variable and the
// blocking basic variable (or a bound flip). Returns t = -1 when unbounded.
func (s *simplex) ratioTest(enter, sigma int, phase1 bool) ratioResult {
	res := ratioResult{t: math.Inf(1), leaveK: -1}
	// Bound flip limit for the entering variable itself.
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
		res.t = s.hi[enter] - s.lo[enter]
	}
	bestPiv := 0.0
	for k := 0; k < s.m; k++ {
		rate := -float64(sigma) * s.w[k] // d x_B[k] / dt
		if math.Abs(rate) < pivotTol {
			continue
		}
		j := s.basis[k]
		var limit float64
		var at byte
		switch fk := s.basicFeasibility(k); {
		case fk == feaOK && rate > 0:
			if math.IsInf(s.hi[j], 1) {
				continue
			}
			limit = (s.hi[j] - s.xb[k]) / rate
			at = statusAtUpper
		case fk == feaOK && rate < 0:
			if math.IsInf(s.lo[j], -1) {
				continue
			}
			limit = (s.xb[k] - s.lo[j]) / -rate
			at = statusAtLower
		case fk == feaBelow && rate > 0:
			// Infeasible below: blocks when it reaches its lower bound.
			limit = (s.lo[j] - s.xb[k]) / rate
			at = statusAtLower
		case fk == feaAbove && rate < 0:
			limit = (s.xb[k] - s.hi[j]) / -rate
			at = statusAtUpper
		default:
			// Moving further into infeasibility: does not block in phase 1;
			// in phase 2 all basics are feasible so this case cannot occur.
			continue
		}
		if limit < 0 {
			limit = 0
		}
		// Prefer strictly smaller limits; on near-ties prefer the larger
		// pivot magnitude for numerical stability (Harris-style tie-break).
		if limit < res.t-1e-10 || (limit < res.t+1e-10 && math.Abs(s.w[k]) > bestPiv) {
			res.t = limit
			res.leaveK = k
			res.leaveAt = at
			bestPiv = math.Abs(s.w[k])
		}
	}
	if math.IsInf(res.t, 1) {
		return ratioResult{t: -1}
	}
	return res
}

// applyStep moves the entering variable by t·sigma, updates basic values and
// performs the basis exchange (or bound flip).
func (s *simplex) applyStep(enter, sigma int, res ratioResult) {
	s.iters++
	t := res.t
	if t < 1e-12 {
		s.degenerate++
		s.degenTotal++
		if s.degenerate > 5*(s.m+10) {
			s.blandActive = true
		}
	} else {
		s.degenerate = 0
		s.blandActive = false
	}
	// Update basic values along the direction.
	if t != 0 {
		for k := 0; k < s.m; k++ {
			s.xb[k] -= t * float64(sigma) * s.w[k]
		}
	}
	if res.leaveK < 0 {
		// Bound flip: entering variable moves to its opposite bound.
		if sigma > 0 {
			s.status[enter] = statusAtUpper
		} else {
			s.status[enter] = statusAtLower
		}
		return
	}
	leave := s.basis[res.leaveK]
	enterVal := s.nbVal(enter) + t*float64(sigma)
	s.status[leave] = res.leaveAt
	s.pos[leave] = -1
	s.basis[res.leaveK] = enter
	s.pos[enter] = res.leaveK
	s.status[enter] = statusBasic
	s.xb[res.leaveK] = enterVal
	s.appendEta(res.leaveK)
	if s.sincePivot >= refactorEvery {
		if err := s.refactorize(); err == nil {
			return
		}
		// Singular refactorization should be impossible after a valid
		// pivot; keep the eta-composed inverse as a fallback.
	}
}
