package lp

import (
	"errors"
	"math"
	"time"
)

// variable status codes. Structural variables are 0..n-1, logical (row)
// variables are n..n+m-1.
const (
	statusAtLower = iota
	statusAtUpper
	statusFree
	statusBasic
)

const (
	pivotTol      = 1e-9 // minimum |pivot element|
	refactorEvery = 100  // pivots between basis refactorizations
)

type simplex struct {
	p    *Problem
	opts Options

	n, m  int // structural vars, rows
	total int // n + m

	lo, hi []float64 // bounds for all vars (structural then logical)
	status []byte    // statusAtLower / statusAtUpper / statusFree / statusBasic

	basis []int       // basis[k] = variable basic in position k
	pos   []int       // pos[j] = basis position of var j, or -1
	binv  [][]float64 // dense basis inverse, m×m
	xb    []float64   // values of basic variables

	cost []float64 // current phase cost for all vars
	y    []float64 // duals c_Bᵀ·B⁻¹
	w    []float64 // ftran scratch
	v    []float64 // rhs scratch

	iters       int
	sincePivot  int // pivots since last refactorization
	degenerate  int // consecutive degenerate iterations (for Bland's rule)
	blandActive bool

	hasDL bool // opts.Deadline is set
}

func newSimplex(p *Problem, varLo, varHi []float64, o *Options) *simplex {
	n, m := p.nvars, len(p.rowLo)
	opts := o.withDefaults(m, n)
	s := &simplex{
		p:      p,
		opts:   opts,
		n:      n,
		m:      m,
		total:  n + m,
		lo:     make([]float64, n+m),
		hi:     make([]float64, n+m),
		status: make([]byte, n+m),
		basis:  make([]int, m),
		pos:    make([]int, n+m),
		binv:   make([][]float64, m),
		xb:     make([]float64, m),
		cost:   make([]float64, n+m),
		y:      make([]float64, m),
		w:      make([]float64, m),
		v:      make([]float64, m),
	}
	s.hasDL = !opts.Deadline.IsZero()
	copy(s.lo, varLo)
	copy(s.hi, varHi)
	for i := 0; i < m; i++ {
		s.lo[n+i] = p.rowLo[i]
		s.hi[n+i] = p.rowHi[i]
	}
	for j := 0; j < s.total; j++ {
		s.pos[j] = -1
		s.status[j] = s.initialStatus(j)
	}
	for i := 0; i < m; i++ {
		s.basis[i] = n + i
		s.pos[n+i] = i
		s.status[n+i] = statusBasic
		s.binv[i] = make([]float64, m)
		s.binv[i][i] = -1 // logical columns have coefficient -1
	}
	s.computeXB()
	return s
}

func (s *simplex) initialStatus(j int) byte {
	switch {
	case !math.IsInf(s.lo[j], -1):
		return statusAtLower
	case !math.IsInf(s.hi[j], 1):
		return statusAtUpper
	default:
		return statusFree
	}
}

// nbVal returns the value of a nonbasic variable.
func (s *simplex) nbVal(j int) float64 {
	switch s.status[j] {
	case statusAtLower:
		return s.lo[j]
	case statusAtUpper:
		return s.hi[j]
	default:
		return 0
	}
}

// column iterates the sparse column of variable j (logical columns are a
// single -1 entry).
func (s *simplex) column(j int, fn func(row int, coef float64)) {
	if j < s.n {
		for _, e := range s.p.cols[j] {
			fn(e.row, e.coef)
		}
		return
	}
	fn(j-s.n, -1)
}

// computeXB recomputes basic variable values from scratch: x_B = −B⁻¹·N x_N.
func (s *simplex) computeXB() {
	for i := range s.v {
		s.v[i] = 0
	}
	for j := 0; j < s.total; j++ {
		if s.status[j] == statusBasic {
			continue
		}
		val := s.nbVal(j)
		if val == 0 {
			continue
		}
		s.column(j, func(row int, coef float64) {
			s.v[row] += coef * val
		})
	}
	for k := 0; k < s.m; k++ {
		sum := 0.0
		row := s.binv[k]
		for i := 0; i < s.m; i++ {
			sum += row[i] * s.v[i]
		}
		s.xb[k] = -sum
	}
}

// ftran computes w = B⁻¹·A_j for variable j.
func (s *simplex) ftran(j int) {
	for k := range s.w {
		s.w[k] = 0
	}
	s.column(j, func(row int, coef float64) {
		for k := 0; k < s.m; k++ {
			s.w[k] += coef * s.binv[k][row]
		}
	})
}

// btran computes duals y = c_Bᵀ·B⁻¹ for the current phase costs.
func (s *simplex) btran() {
	for i := range s.y {
		s.y[i] = 0
	}
	for k := 0; k < s.m; k++ {
		cb := s.cost[s.basis[k]]
		if cb == 0 {
			continue
		}
		row := s.binv[k]
		for i := 0; i < s.m; i++ {
			s.y[i] += cb * row[i]
		}
	}
}

// reducedCost returns d_j = c_j − yᵀA_j for nonbasic j.
func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	if j >= s.n {
		return d + s.y[j-s.n]
	}
	for _, e := range s.p.cols[j] {
		d -= s.y[e.row] * e.coef
	}
	return d
}

// refactorize rebuilds B⁻¹ from the basis columns by Gauss-Jordan
// elimination with partial pivoting.
func (s *simplex) refactorize() error {
	m := s.m
	// Build dense B (column k = column of basis[k]) augmented with identity.
	b := make([][]float64, m)
	for i := 0; i < m; i++ {
		b[i] = make([]float64, 2*m)
		b[i][m+i] = 1
	}
	for k := 0; k < m; k++ {
		s.column(s.basis[k], func(row int, coef float64) {
			b[row][k] += coef
		})
	}
	for col := 0; col < m; col++ {
		piv, pv := -1, 0.0
		for r := col; r < m; r++ {
			if a := math.Abs(b[r][col]); a > pv {
				piv, pv = r, a
			}
		}
		if pv < pivotTol {
			return errors.New("lp: singular basis during refactorization")
		}
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / b[col][col]
		for c := 0; c < 2*m; c++ {
			b[col][c] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := b[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*m; c++ {
				b[r][c] -= f * b[col][c]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], b[i][m:])
	}
	s.sincePivot = 0
	s.computeXB()
	return nil
}

// updateBasisInverse applies the rank-1 eta update after variable enters at
// basis position r with ftran vector w (which must be current).
func (s *simplex) updateBasisInverse(r int) {
	wr := s.w[r]
	pivRow := s.binv[r]
	inv := 1 / wr
	for i := 0; i < s.m; i++ {
		pivRow[i] *= inv
	}
	for k := 0; k < s.m; k++ {
		if k == r {
			continue
		}
		f := s.w[k]
		if f == 0 {
			continue
		}
		row := s.binv[k]
		for i := 0; i < s.m; i++ {
			row[i] -= f * pivRow[i]
		}
	}
	s.sincePivot++
}

// interrupted reports whether the solve should stop with StatusCancelled.
// It is called once per iteration in both phases: a non-blocking channel poll
// plus (only when a deadline is set) one time.Now are negligible next to an
// iteration's pricing pass, and keep cancellation latency at one iteration
// rather than one solve.
func (s *simplex) interrupted() bool {
	if s.opts.Cancel != nil {
		select {
		case <-s.opts.Cancel:
			return true
		default:
		}
	}
	return s.hasDL && time.Now().After(s.opts.Deadline)
}

// infeasibility classification of a basic value.
const (
	feaOK = iota
	feaBelow
	feaAbove
)

func (s *simplex) basicFeasibility(k int) int {
	j := s.basis[k]
	if s.xb[k] < s.lo[j]-s.opts.FeasTol {
		return feaBelow
	}
	if s.xb[k] > s.hi[j]+s.opts.FeasTol {
		return feaAbove
	}
	return feaOK
}

func (s *simplex) totalInfeasibility() float64 {
	sum := 0.0
	for k := 0; k < s.m; k++ {
		j := s.basis[k]
		if s.xb[k] < s.lo[j] {
			sum += s.lo[j] - s.xb[k]
		} else if s.xb[k] > s.hi[j] {
			sum += s.xb[k] - s.hi[j]
		}
	}
	return sum
}

// solve runs phase 1 then phase 2 and extracts the solution.
func (s *simplex) solve() (*Solution, error) {
	st, err := s.phase1()
	if err != nil {
		return nil, err
	}
	if st == StatusOptimal {
		st, err = s.phase2()
		if err != nil {
			return nil, err
		}
	}
	sol := &Solution{Status: st, X: s.extractX(), Iters: s.iters}
	for j := 0; j < s.n; j++ {
		sol.Obj += s.p.obj[j] * sol.X[j]
	}
	return sol, nil
}

func (s *simplex) extractX() []float64 {
	x := make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] == statusBasic {
			x[j] = s.xb[s.pos[j]]
		} else {
			x[j] = s.nbVal(j)
		}
	}
	return x
}

// phase1 minimizes total bound infeasibility of the basic variables.
// Returns StatusOptimal when a feasible basis is reached.
func (s *simplex) phase1() (Status, error) {
	for {
		if s.iters >= s.opts.MaxIters {
			return StatusIterLimit, nil
		}
		if s.interrupted() {
			return StatusCancelled, nil
		}
		// Phase-1 costs live only on basic variables; clear stale entries
		// from variables that left the basis before reassigning.
		for j := range s.cost {
			s.cost[j] = 0
		}
		infeasible := false
		for k := 0; k < s.m; k++ {
			switch s.basicFeasibility(k) {
			case feaBelow:
				s.cost[s.basis[k]] = -1
				infeasible = true
			case feaAbove:
				s.cost[s.basis[k]] = 1
				infeasible = true
			default:
				s.cost[s.basis[k]] = 0
			}
		}
		if !infeasible {
			for j := range s.cost {
				s.cost[j] = 0
			}
			return StatusOptimal, nil
		}
		s.btran()
		enter, sigma := s.priceForEntering()
		if enter < 0 {
			// No improving direction: infeasibility is at its minimum.
			if s.totalInfeasibility() > 100*s.opts.FeasTol*float64(s.m+1) {
				return StatusInfeasible, nil
			}
			// Residual infeasibility within tolerance: accept.
			for j := range s.cost {
				s.cost[j] = 0
			}
			return StatusOptimal, nil
		}
		if err := s.step(enter, sigma, true); err != nil {
			return 0, err
		}
	}
}

// phase2 minimizes the true objective starting from a feasible basis.
func (s *simplex) phase2() (Status, error) {
	for j := 0; j < s.n; j++ {
		s.cost[j] = s.p.obj[j]
	}
	for j := s.n; j < s.total; j++ {
		s.cost[j] = 0
	}
	for {
		if s.iters >= s.opts.MaxIters {
			return StatusIterLimit, nil
		}
		if s.interrupted() {
			return StatusCancelled, nil
		}
		s.btran()
		enter, sigma := s.priceForEntering()
		if enter < 0 {
			return StatusOptimal, nil
		}
		unbounded, err := s.stepPhase2(enter, sigma)
		if err != nil {
			return 0, err
		}
		if unbounded {
			return StatusUnbounded, nil
		}
	}
}

// priceForEntering scans nonbasic variables for the best improving reduced
// cost and returns the entering variable and its movement direction
// (+1 increase, −1 decrease), or (−1, 0) if none improves.
func (s *simplex) priceForEntering() (int, int) {
	best, bestScore, bestSigma := -1, s.opts.OptTol, 0
	for j := 0; j < s.total; j++ {
		switch s.status[j] {
		case statusBasic:
			continue
		case statusAtLower:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.hi[j], 1) {
				continue // fixed variable
			}
			if d := s.reducedCost(j); d < -bestScore {
				if s.blandActive {
					return j, +1
				}
				best, bestScore, bestSigma = j, -d, +1
			}
		case statusAtUpper:
			if s.hi[j]-s.lo[j] < s.opts.FeasTol && !math.IsInf(s.lo[j], -1) {
				continue
			}
			if d := s.reducedCost(j); d > bestScore {
				if s.blandActive {
					return j, -1
				}
				best, bestScore, bestSigma = j, d, -1
			}
		case statusFree:
			d := s.reducedCost(j)
			if d < -bestScore {
				if s.blandActive {
					return j, +1
				}
				best, bestScore, bestSigma = j, -d, +1
			} else if d > bestScore {
				if s.blandActive {
					return j, -1
				}
				best, bestScore, bestSigma = j, d, -1
			}
		}
	}
	return best, bestSigma
}

// ratioResult describes the outcome of a ratio test.
type ratioResult struct {
	t       float64 // step length
	leaveK  int     // leaving basis position, or -1 for a bound flip
	leaveAt byte    // status the leaving variable takes (statusAtLower/Upper)
}

// step performs one phase-1 iteration with entering variable `enter` moving
// in direction sigma. Phase 1 allows infeasible basics and blocks them at
// the violated bound (they leave the basis exactly feasible).
func (s *simplex) step(enter, sigma int, phase1 bool) error {
	s.ftran(enter)
	res := s.ratioTest(enter, sigma, phase1)
	if res.t < 0 {
		// An improving infeasibility direction must hit some bound; an
		// unbounded ray here means the basis inverse has degraded.
		return errors.New("lp: unbounded phase-1 ray (numerical failure)")
	}
	s.applyStep(enter, sigma, res)
	return nil
}

// stepPhase2 performs one phase-2 iteration; returns true if the problem is
// unbounded in the entering direction.
func (s *simplex) stepPhase2(enter, sigma int) (bool, error) {
	s.ftran(enter)
	res := s.ratioTest(enter, sigma, false)
	if res.t < 0 {
		return true, nil // no breakpoint: unbounded ray
	}
	s.applyStep(enter, sigma, res)
	return false, nil
}

// ratioTest finds the maximum step t for the entering variable and the
// blocking basic variable (or a bound flip). Returns t = -1 when unbounded.
func (s *simplex) ratioTest(enter, sigma int, phase1 bool) ratioResult {
	res := ratioResult{t: math.Inf(1), leaveK: -1}
	// Bound flip limit for the entering variable itself.
	if !math.IsInf(s.lo[enter], -1) && !math.IsInf(s.hi[enter], 1) {
		res.t = s.hi[enter] - s.lo[enter]
	}
	bestPiv := 0.0
	for k := 0; k < s.m; k++ {
		rate := -float64(sigma) * s.w[k] // d x_B[k] / dt
		if math.Abs(rate) < pivotTol {
			continue
		}
		j := s.basis[k]
		var limit float64
		var at byte
		switch fk := s.basicFeasibility(k); {
		case fk == feaOK && rate > 0:
			if math.IsInf(s.hi[j], 1) {
				continue
			}
			limit = (s.hi[j] - s.xb[k]) / rate
			at = statusAtUpper
		case fk == feaOK && rate < 0:
			if math.IsInf(s.lo[j], -1) {
				continue
			}
			limit = (s.xb[k] - s.lo[j]) / -rate
			at = statusAtLower
		case fk == feaBelow && rate > 0:
			// Infeasible below: blocks when it reaches its lower bound.
			limit = (s.lo[j] - s.xb[k]) / rate
			at = statusAtLower
		case fk == feaAbove && rate < 0:
			limit = (s.xb[k] - s.hi[j]) / -rate
			at = statusAtUpper
		default:
			// Moving further into infeasibility: does not block in phase 1;
			// in phase 2 all basics are feasible so this case cannot occur.
			continue
		}
		if limit < 0 {
			limit = 0
		}
		// Prefer strictly smaller limits; on near-ties prefer the larger
		// pivot magnitude for numerical stability (Harris-style tie-break).
		if limit < res.t-1e-10 || (limit < res.t+1e-10 && math.Abs(s.w[k]) > bestPiv) {
			res.t = limit
			res.leaveK = k
			res.leaveAt = at
			bestPiv = math.Abs(s.w[k])
		}
	}
	if math.IsInf(res.t, 1) {
		return ratioResult{t: -1}
	}
	return res
}

// applyStep moves the entering variable by t·sigma, updates basic values and
// performs the basis exchange (or bound flip).
func (s *simplex) applyStep(enter, sigma int, res ratioResult) {
	s.iters++
	t := res.t
	if t < 1e-12 {
		s.degenerate++
		if s.degenerate > 5*(s.m+10) {
			s.blandActive = true
		}
	} else {
		s.degenerate = 0
		s.blandActive = false
	}
	// Update basic values along the direction.
	if t != 0 {
		for k := 0; k < s.m; k++ {
			s.xb[k] -= t * float64(sigma) * s.w[k]
		}
	}
	if res.leaveK < 0 {
		// Bound flip: entering variable moves to its opposite bound.
		if sigma > 0 {
			s.status[enter] = statusAtUpper
		} else {
			s.status[enter] = statusAtLower
		}
		return
	}
	leave := s.basis[res.leaveK]
	enterVal := s.nbVal(enter) + t*float64(sigma)
	s.status[leave] = res.leaveAt
	s.pos[leave] = -1
	s.basis[res.leaveK] = enter
	s.pos[enter] = res.leaveK
	s.status[enter] = statusBasic
	s.xb[res.leaveK] = enterVal
	s.updateBasisInverse(res.leaveK)
	if s.sincePivot >= refactorEvery {
		if err := s.refactorize(); err == nil {
			return
		}
		// Singular refactorization should be impossible after a valid
		// pivot; keep the eta-updated inverse as a fallback.
	}
}
