package lp

import (
	"math"
	"testing"

	"spq/internal/rng"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantOptimal(t *testing.T, sol *Solution, obj float64, tol float64) {
	t.Helper()
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Obj-obj) > tol {
		t.Fatalf("objective = %v, want %v (x=%v)", sol.Obj, obj, sol.X)
	}
}

func TestTrivialBoxMinimum(t *testing.T) {
	// min x0 + 2 x1 with 1 ≤ x ≤ 5 and no rows: optimum at lower bounds.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 2)
	p.SetVarBounds(0, 1, 5)
	p.SetVarBounds(1, 1, 5)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 3, 1e-9)
}

func TestMaximizeViaNegation(t *testing.T) {
	// max x0 + x1 s.t. x0 + 2 x1 ≤ 4, 3 x0 + x1 ≤ 6, x ≥ 0.
	// Optimum x = (1.6, 1.2), value 2.8.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]int{0, 1}, []float64{1, 2}, -Inf, 4)
	p.AddRow([]int{0, 1}, []float64{3, 1}, -Inf, 6)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -2.8, 1e-8)
	if math.Abs(sol.X[0]-1.6) > 1e-7 || math.Abs(sol.X[1]-1.2) > 1e-7 {
		t.Fatalf("x = %v, want (1.6, 1.2)", sol.X)
	}
}

func TestEqualityRow(t *testing.T) {
	// min x0 + x1 s.t. x0 + x1 = 10, x0 ≤ 4. Optimum 10 with x0 ≤ 4.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetVarBounds(0, 0, 4)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 10, 10)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 10, 1e-8)
	if sol.X[0]+sol.X[1] < 10-1e-7 || sol.X[0]+sol.X[1] > 10+1e-7 {
		t.Fatalf("equality violated: %v", sol.X)
	}
}

func TestGreaterThanRowNeedsPhase1(t *testing.T) {
	// min 2 x0 + 3 x1 s.t. x0 + x1 ≥ 4, x0 ≥ 1. Optimum x = (4, 0) → 8.
	p := NewProblem(2)
	p.SetObj(0, 2)
	p.SetObj(1, 3)
	p.SetVarBounds(0, 1, Inf)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 4, Inf)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 8, 1e-8)
}

func TestRangeRow(t *testing.T) {
	// min x0 s.t. 2 ≤ x0 + x1 ≤ 3, 0 ≤ x1 ≤ 1. Optimum x0 = 1.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetVarBounds(1, 0, 1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 2, 3)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 1, 1e-8)
}

func TestInfeasibleRowBounds(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]int{0}, []float64{1}, -Inf, 1)
	p.AddRow([]int{0}, []float64{1}, 2, Inf)
	sol := solveOrFail(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleVarVsRow(t *testing.T) {
	// x ≤ 1 but row demands 3x ≥ 6.
	p := NewProblem(1)
	p.SetVarBounds(0, 0, 1)
	p.AddRow([]int{0}, []float64{3}, 6, Inf)
	sol := solveOrFail(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x0, x0 free upward.
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.AddRow([]int{0}, []float64{1}, 0, Inf)
	sol := solveOrFail(t, p)
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x0 s.t. x0 + x1 = 1, x1 ∈ [0, 0.25], x0 free: optimum x0 = 0.75.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetVarBounds(0, math.Inf(-1), Inf)
	p.SetVarBounds(1, 0, 0.25)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 1, 1)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 0.75, 1e-8)
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x0 + x1 with x ∈ [-2, 2] and x0 - x1 ≥ 1.
	// Optimum x0 = -1, x1 = -2 → -3.
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetObj(1, 1)
	p.SetVarBounds(0, -2, 2)
	p.SetVarBounds(1, -2, 2)
	p.AddRow([]int{0, 1}, []float64{1, -1}, 1, Inf)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -3, 1e-8)
}

func TestFixedVariable(t *testing.T) {
	// x0 fixed at 2; min x1 s.t. x0 + x1 ≥ 5 → x1 = 3.
	p := NewProblem(2)
	p.SetObj(1, 1)
	p.SetVarBounds(0, 2, 2)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 5, Inf)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 3, 1e-8)
	if sol.X[0] != 2 {
		t.Fatalf("fixed variable moved: %v", sol.X[0])
	}
}

func TestDuplicateIndicesInRow(t *testing.T) {
	// Row written as x0 + x0 ≤ 4 should behave as 2·x0 ≤ 4.
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.SetVarBounds(0, 0, 100)
	p.AddRow([]int{0, 0}, []float64{1, 1}, -Inf, 4)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -2, 1e-8)
}

func TestSolveWithBoundsOverride(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 10)
	// Unrestricted solve uses x0+x1 = 10.
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -10, 1e-8)
	// Branching override: x0 ≤ 3.
	lo := []float64{0, 0}
	hi := []float64{3, Inf}
	sol2, err := SolveWithBounds(p, lo, hi, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, sol2, -10, 1e-8)
	if sol2.X[0] > 3+1e-9 {
		t.Fatalf("override ignored: x0 = %v", sol2.X[0])
	}
	// The problem's own bounds must be untouched.
	if lo, hi := p.VarBounds(0); lo != 0 || !math.IsInf(hi, 1) {
		t.Fatalf("problem bounds mutated: [%v, %v]", lo, hi)
	}
}

func TestBoundOverrideInfeasibleInterval(t *testing.T) {
	p := NewProblem(1)
	sol, err := SolveWithBounds(p, []float64{2}, []float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Multiple redundant constraints through the same vertex.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 2)
	p.AddRow([]int{0, 1}, []float64{2, 2}, -Inf, 4)
	p.AddRow([]int{0, 1}, []float64{1, 2}, -Inf, 3)
	p.AddRow([]int{0, 1}, []float64{2, 1}, -Inf, 3)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -2, 1e-8)
}

func TestKleeMintyStyleLarge(t *testing.T) {
	// A moderately hard instance exercising many pivots. (Klee–Minty costs
	// ~2^n pivots under Dantzig pricing, so keep n modest.)
	const n = 12
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, -math.Pow(2, float64(n-1-j)))
	}
	for i := 0; i < n; i++ {
		idxs := make([]int, 0, i+1)
		coefs := make([]float64, 0, i+1)
		for j := 0; j < i; j++ {
			idxs = append(idxs, j)
			coefs = append(coefs, math.Pow(2, float64(i-j+1)))
		}
		idxs = append(idxs, i)
		coefs = append(coefs, 1)
		p.AddRow(idxs, coefs, -Inf, math.Pow(5, float64(i+1)))
	}
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal value of Klee-Minty is -5^n (x_n = 5^n, others 0).
	want := -math.Pow(5, n)
	if math.Abs(sol.Obj-want)/math.Abs(want) > 1e-6 {
		t.Fatalf("objective = %v, want %v", sol.Obj, want)
	}
}

func TestManyColumnsPackageShape(t *testing.T) {
	// Package-query-shaped LP: 2000 tuple variables, one budget row, one
	// cardinality row. min Σ cost_j x_j with Σ x_j ≥ 50, Σ w_j x_j ≤ 500.
	s := rng.NewStream(42)
	const n = 2000
	p := NewProblem(n)
	idxs := make([]int, n)
	ones := make([]float64, n)
	ws := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = j
		ones[j] = 1
		ws[j] = 1 + 9*s.Float64()
		p.SetObj(j, s.Float64()*10)
		p.SetVarBounds(j, 0, 10)
	}
	p.AddRow(idxs, ones, 50, Inf)
	p.AddRow(idxs, ws, -Inf, 500)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	var count, weight float64
	for j := 0; j < n; j++ {
		count += sol.X[j]
		weight += ws[j] * sol.X[j]
	}
	if count < 50-1e-6 {
		t.Fatalf("cardinality %v < 50", count)
	}
	if weight > 500+1e-6 {
		t.Fatalf("weight %v > 500", weight)
	}
}

func TestNumCoefficients(t *testing.T) {
	p := NewProblem(3)
	p.AddRow([]int{0, 1}, []float64{1, 2}, 0, 1)
	p.AddRow([]int{0, 1, 2}, []float64{1, 2, 3}, 0, 1)
	if got := p.NumCoefficients(); got != 5 {
		t.Fatalf("NumCoefficients = %d, want 5", got)
	}
}

func TestZeroCoefficientsDropped(t *testing.T) {
	p := NewProblem(2)
	p.AddRow([]int{0, 1}, []float64{0, 1}, 0, 1)
	if got := p.NumCoefficients(); got != 1 {
		t.Fatalf("NumCoefficients = %d, want 1", got)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
		Status(42):       "lp.Status(42)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

// bruteForceLP solves min c·x over a small box-and-rows LP by enumerating
// all basic candidate points on a fine grid. Used only to sanity-check the
// simplex on random instances; the grid granularity bounds the comparison
// tolerance.
func bruteForceGrid(c []float64, rows [][]float64, rlo, rhi []float64, lo, hi []float64, steps int) (float64, bool) {
	n := len(c)
	best := math.Inf(1)
	found := false
	var rec func(j int, x []float64)
	rec = func(j int, x []float64) {
		if j == n {
			for r := range rows {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += rows[r][k] * x[k]
				}
				if dot < rlo[r]-1e-9 || dot > rhi[r]+1e-9 {
					return
				}
			}
			obj := 0.0
			for k := 0; k < n; k++ {
				obj += c[k] * x[k]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		for s := 0; s <= steps; s++ {
			x[j] = lo[j] + (hi[j]-lo[j])*float64(s)/float64(steps)
			rec(j+1, x)
		}
	}
	rec(0, make([]float64, n))
	return best, found
}

// Property-style test: on random small LPs the simplex optimum must be no
// worse than any grid point and must satisfy all constraints.
func TestRandomSmallLPsAgainstGrid(t *testing.T) {
	s := rng.NewStream(7)
	for trial := 0; trial < 60; trial++ {
		n := 2 + s.IntN(3)
		m := 1 + s.IntN(3)
		c := make([]float64, n)
		lo := make([]float64, n)
		hi := make([]float64, n)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			c[j] = math.Round((s.Float64()*4-2)*10) / 10
			lo[j] = 0
			hi[j] = float64(1 + s.IntN(4))
			p.SetObj(j, c[j])
			p.SetVarBounds(j, lo[j], hi[j])
		}
		rows := make([][]float64, m)
		rlo := make([]float64, m)
		rhi := make([]float64, m)
		for r := 0; r < m; r++ {
			rows[r] = make([]float64, n)
			idxs := make([]int, n)
			for j := 0; j < n; j++ {
				rows[r][j] = math.Round((s.Float64()*4-2)*10) / 10
				idxs[j] = j
			}
			switch s.IntN(3) {
			case 0:
				rlo[r], rhi[r] = math.Inf(-1), s.Float64()*6
			case 1:
				rlo[r], rhi[r] = -s.Float64()*6, math.Inf(1)
			default:
				mid := s.Float64()*4 - 2
				rlo[r], rhi[r] = mid-2, mid+2
			}
			p.AddRow(idxs, rows[r], rlo[r], rhi[r])
		}
		sol, err := Solve(p, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gridBest, gridFound := bruteForceGrid(c, rows, rlo, rhi, lo, hi, 8)
		switch sol.Status {
		case StatusOptimal:
			// Check feasibility of the simplex solution.
			for r := 0; r < m; r++ {
				dot := 0.0
				for j := 0; j < n; j++ {
					dot += rows[r][j] * sol.X[j]
				}
				if dot < rlo[r]-1e-6 || dot > rhi[r]+1e-6 {
					t.Fatalf("trial %d: solution violates row %d: %v not in [%v,%v]", trial, r, dot, rlo[r], rhi[r])
				}
			}
			for j := 0; j < n; j++ {
				if sol.X[j] < lo[j]-1e-6 || sol.X[j] > hi[j]+1e-6 {
					t.Fatalf("trial %d: x[%d]=%v outside [%v,%v]", trial, j, sol.X[j], lo[j], hi[j])
				}
			}
			if gridFound && sol.Obj > gridBest+1e-6 {
				t.Fatalf("trial %d: simplex obj %v worse than grid point %v", trial, sol.Obj, gridBest)
			}
		case StatusInfeasible:
			if gridFound {
				t.Fatalf("trial %d: simplex says infeasible but grid found %v", trial, gridBest)
			}
		}
	}
}

func TestIterationLimitReported(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObj(j, -1)
		p.SetVarBounds(j, 0, 10)
	}
	p.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, 5, 20)
	sol, err := Solve(p, &Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want iteration-limit (or trivially optimal)", sol.Status)
	}
}
