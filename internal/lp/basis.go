package lp

// Basis is an exported snapshot of a simplex basis: the variable occupying
// each basis position plus the bound status of every structural and logical
// variable. It is the warm-start currency between LP solves — the MILP
// branch-and-bound seeds each child node's solve from its parent's optimal
// basis (Options.Basis) and asks for a fresh snapshot back
// (Options.WantBasis), so a child that differs from its parent by one
// variable bound is reinstated by a handful of dual-simplex pivots instead of
// a full phase-1 run from the logical basis.
//
// A Basis is immutable once created and safe to share across goroutines; the
// branch-and-bound hands one parent snapshot to both children. Statuses are
// packed two bits per variable, so a snapshot costs ≈(n+m)/4 bytes plus one
// int32 per row — cheap enough to hang off every open search node.
//
// Determinism: Basis is part of the solve's determinism domain. A solve is a
// pure function of (Problem, bounds, Options) including Options.Basis — the
// same snapshot always reproduces the same iteration path and the same
// Solution bit-for-bit. Callers that cache or compare solve results must
// treat Basis like any other Options field (the MILP layer's node →
// parent-basis assignment is itself deterministic in the round structure,
// which is how the parallel determinism matrix survives warm starts).
type Basis struct {
	n, m   int
	packed []uint64 // 2-bit status codes, structural vars then logical rows
	basis  []int32  // basis[k] = variable basic at position k
}

// NumVars returns the structural-variable count the snapshot was taken for.
func (b *Basis) NumVars() int { return b.n }

// NumRows returns the row count the snapshot was taken for.
func (b *Basis) NumRows() int { return b.m }

func (b *Basis) statusAt(j int) byte {
	return byte(b.packed[j>>5] >> uint((j&31)*2) & 3)
}

// snapshotBasis captures the solver's current basis and statuses.
func (s *simplex) snapshotBasis() *Basis {
	b := &Basis{
		n:      s.n,
		m:      s.m,
		packed: make([]uint64, (s.total+31)/32),
		basis:  make([]int32, s.m),
	}
	for j := 0; j < s.total; j++ {
		b.packed[j>>5] |= uint64(s.status[j]) << uint((j&31)*2)
	}
	for k, v := range s.basis {
		b.basis[k] = int32(v)
	}
	return b
}

// loadBasis installs a snapshot as the solver's starting basis: statuses and
// basis order are restored, nonbasic statuses are normalized against the
// current (possibly changed) bounds, and the basis inverse is rebuilt by a
// dense refactorization. It reports false — leaving the solver in an
// undefined state the caller must reset — when the snapshot's shape does not
// match the problem, its basic set is inconsistent, or the basis matrix is
// singular under the current problem.
func (s *simplex) loadBasis(b *Basis) bool {
	if b == nil || b.n != s.n || b.m != s.m {
		return false
	}
	basics := 0
	for j := 0; j < s.total; j++ {
		st := b.statusAt(j)
		s.status[j] = st
		s.pos[j] = -1
		if st == statusBasic {
			basics++
		}
	}
	if basics != s.m {
		return false
	}
	for k := 0; k < s.m; k++ {
		j := int(b.basis[k])
		if j < 0 || j >= s.total || s.status[j] != statusBasic || s.pos[j] != -1 {
			return false
		}
		s.basis[k] = j
		s.pos[j] = k
	}
	// Normalize nonbasic statuses against the current bounds: a snapshot
	// taken under different bounds may pin a variable to a bound that no
	// longer exists. Mirrors initialStatus's preference order.
	for j := 0; j < s.total; j++ {
		switch s.status[j] {
		case statusBasic:
			continue
		case statusAtLower:
			if isNegInf(s.lo[j]) {
				s.status[j] = s.initialStatus(j)
			}
		case statusAtUpper:
			if isPosInf(s.hi[j]) {
				s.status[j] = s.initialStatus(j)
			}
		case statusFree:
			if !isNegInf(s.lo[j]) || !isPosInf(s.hi[j]) {
				s.status[j] = s.initialStatus(j)
			}
		}
	}
	if err := s.refactorize(); err != nil {
		return false
	}
	return true
}
