package lp

import (
	"math"
	"testing"
)

func TestPresolveEmptyRowDropped(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, 1)
	p.SetVarBounds(0, 0, 5)
	p.AddRow(nil, nil, -1, 1) // 0·x in [-1, 1]: vacuous
	pr := PresolveProblem(p, nil, nil, nil)
	if pr.Infeasible || pr.Unbounded {
		t.Fatalf("unexpected verdict: %+v", pr)
	}
	if pr.RowsRemoved != 1 {
		t.Fatalf("RowsRemoved = %d, want 1", pr.RowsRemoved)
	}
	if pr.Reduced.NumRows() != 0 {
		t.Fatalf("reduced rows = %d, want 0", pr.Reduced.NumRows())
	}
}

func TestPresolveEmptyRowInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddRow(nil, nil, 1, 2) // 0 ≥ 1: impossible
	pr := PresolveProblem(p, nil, nil, nil)
	if !pr.Infeasible {
		t.Fatal("empty row with positive lower bound must be infeasible")
	}
}

func TestPresolveSingletonRowTightensBound(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1) // maximize x0
	p.SetVarBounds(0, 0, 100)
	p.SetVarBounds(1, 0, 1)
	p.AddRow([]int{0}, []float64{2}, -Inf, 10) // 2·x0 ≤ 10 ⟹ x0 ≤ 5
	pr := PresolveProblem(p, nil, nil, nil)
	if pr.RowsRemoved != 1 {
		t.Fatalf("RowsRemoved = %d, want 1 (singleton absorbed)", pr.RowsRemoved)
	}
	// After the row is absorbed x0 is an empty column with a maximizing
	// objective: presolve fixes it at the tightened upper bound 5.
	if pr.ColsRemoved != 2 {
		t.Fatalf("ColsRemoved = %d, want 2", pr.ColsRemoved)
	}
	x := pr.Postsolve(nil)
	if math.Abs(x[0]-5) > 1e-6 {
		t.Fatalf("x0 fixed at %g, want the tightened bound 5", x[0])
	}
}

func TestPresolveRedundantRowDropped(t *testing.T) {
	p := NewProblem(2)
	p.SetVarBounds(0, 0, 1)
	p.SetVarBounds(1, 0, 1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 10) // x0+x1 ≤ 10: implied by boxes
	p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 1)  // binding
	pr := PresolveProblem(p, nil, nil, nil)
	if pr.RowsRemoved != 1 {
		t.Fatalf("RowsRemoved = %d, want 1 (only the redundant row)", pr.RowsRemoved)
	}
	if pr.Reduced.NumRows() != 1 {
		t.Fatalf("reduced rows = %d, want 1", pr.Reduced.NumRows())
	}
}

func TestPresolveFixedColumnEliminated(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, 3)
	p.SetObj(1, 1)
	p.SetVarBounds(0, 2, 2) // fixed at 2
	p.SetVarBounds(1, 0, 10)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 5, Inf) // 2 + x1 ≥ 5 ⟹ x1 ≥ 3
	pr := PresolveProblem(p, nil, nil, nil)
	// x0 is substituted into the row (x1 ≥ 3), which then becomes a
	// singleton, tightens x1, and leaves x1 an empty minimized column fixed
	// at 3 — the whole LP presolves away.
	if pr.ColsRemoved != 2 {
		t.Fatalf("ColsRemoved = %d, want 2", pr.ColsRemoved)
	}
	if math.Abs(pr.ObjOffset-9) > 1e-6 {
		t.Fatalf("ObjOffset = %g, want 9 (3·2 + 1·3)", pr.ObjOffset)
	}
	sol, err := Solve(pr.Reduced, nil)
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("reduced solve: %v %v", sol, err)
	}
	if math.Abs(sol.Obj+pr.ObjOffset-9) > 1e-6 {
		t.Fatalf("reduced obj %g + offset %g != 9", sol.Obj, pr.ObjOffset)
	}
	x := pr.Postsolve(sol.X)
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("postsolved x = %v, want [2 3]", x)
	}
}

func TestPresolveEmptyColumnFixedByObjSign(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, 1)  // minimized: fix at lower
	p.SetObj(1, -1) // maximized: fix at upper
	p.SetVarBounds(0, -3, 7)
	p.SetVarBounds(1, 0, 4)
	pr := PresolveProblem(p, nil, nil, nil)
	if pr.ColsRemoved != 2 {
		t.Fatalf("ColsRemoved = %d, want 2", pr.ColsRemoved)
	}
	x := pr.Postsolve(nil)
	if x[0] != -3 || x[1] != 4 {
		t.Fatalf("fixed values = %v, want [-3 4]", x)
	}
	if math.Abs(pr.ObjOffset-(-3-4)) > 1e-9 {
		t.Fatalf("ObjOffset = %g, want -7", pr.ObjOffset)
	}
}

func TestPresolveEmptyColumnUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObj(0, -1)
	p.SetVarBounds(0, 0, Inf) // maximize an unbounded empty column
	pr := PresolveProblem(p, nil, nil, nil)
	if !pr.Unbounded {
		t.Fatal("costed empty column without finite improving bound must be Unbounded")
	}
}

func TestPresolveIntegerBoundRounding(t *testing.T) {
	// Multi-entry row so the tightened variable survives into the reduced
	// problem: 2·x0 + x1 ≤ 7 with x1 ≥ 0 implies x0 ≤ 3.5, rounded to 3 for
	// the integer x0.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetVarBounds(0, 0, 10)
	p.SetVarBounds(1, 0, 10)
	p.AddRow([]int{0, 1}, []float64{2, 1}, 0, 7)
	pr := PresolveProblem(p, nil, nil, []bool{true, false})
	if pr.Infeasible {
		t.Fatal("unexpected infeasible")
	}
	r := -1
	for j := 0; j < pr.NumReduced(); j++ {
		if pr.Col(j) == 0 {
			r = j
		}
	}
	if r < 0 {
		t.Fatal("x0 eliminated unexpectedly")
	}
	if pr.Lo[r] != 0 || pr.Hi[r] != 3 {
		t.Fatalf("integer bounds = [%g, %g], want [0, 3]", pr.Lo[r], pr.Hi[r])
	}
}

func TestPresolveBoundCrossInfeasible(t *testing.T) {
	p := NewProblem(2)
	p.SetVarBounds(0, 0, 1)
	p.SetVarBounds(1, 0, 1)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 3, Inf) // x0+x1 ≥ 3 over [0,1]²
	pr := PresolveProblem(p, nil, nil, nil)
	if !pr.Infeasible {
		t.Fatal("activity range [0,2] cannot reach lower bound 3: must be infeasible")
	}
}

// TestPresolveSolveEquivalence solves a batch of random LPs directly and via
// presolve+postsolve and demands matching status and objective.
func TestPresolveSolveEquivalence(t *testing.T) {
	// Deterministic xorshift so the corpus is stable.
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000)/500 - 1 // [-1, 1)
	}
	for trial := 0; trial < 60; trial++ {
		n := 3 + int(math.Abs(next())*5)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObj(j, next())
			lo := math.Floor(next() * 4)
			p.SetVarBounds(j, lo, lo+1+math.Abs(next())*5)
		}
		rows := 1 + trial%4
		for i := 0; i < rows; i++ {
			var idxs []int
			var coefs []float64
			for j := 0; j < n; j++ {
				if next() > 0.2 {
					idxs = append(idxs, j)
					coefs = append(coefs, math.Round(next()*3))
				}
			}
			b := math.Round(next() * 6)
			p.AddRow(idxs, coefs, b-math.Abs(next())*8, b+math.Abs(next())*8)
		}
		direct, err := Solve(p, nil)
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		pr := PresolveProblem(p, nil, nil, nil)
		if pr.Infeasible {
			if direct.Status != StatusInfeasible {
				t.Fatalf("trial %d: presolve says infeasible, direct says %v", trial, direct.Status)
			}
			continue
		}
		if pr.Unbounded {
			if direct.Status != StatusUnbounded {
				t.Fatalf("trial %d: presolve says unbounded, direct says %v", trial, direct.Status)
			}
			continue
		}
		red, err := SolveWithBounds(pr.Reduced, pr.Lo, pr.Hi, nil)
		if err != nil {
			t.Fatalf("trial %d reduced: %v", trial, err)
		}
		if red.Status != direct.Status {
			t.Fatalf("trial %d: reduced status %v != direct %v", trial, red.Status, direct.Status)
		}
		if direct.Status != StatusOptimal {
			continue
		}
		if diff := math.Abs(red.Obj + pr.ObjOffset - direct.Obj); diff > 1e-5 {
			t.Fatalf("trial %d: reduced obj %g + offset %g vs direct %g (diff %g)",
				trial, red.Obj, pr.ObjOffset, direct.Obj, diff)
		}
		x := pr.Postsolve(red.X)
		if len(x) != n {
			t.Fatalf("trial %d: postsolve length %d != %d", trial, len(x), n)
		}
	}
}

func TestImpliedVarBoundsDetectsEmptyInterval(t *testing.T) {
	p := NewProblem(2)
	p.SetVarBounds(0, 0, 1)
	p.SetVarBounds(1, 0, 10)
	p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 3) // x0 + x1 ≤ 3
	lo := []float64{0, 0}
	hi := []float64{1, 10}
	act := p.NewRowActivity(lo, hi)
	// With x0 ∈ [0,1]: x1 ≤ 3. Tightening x1's domain to [5,10] has an empty
	// intersection with the implied interval.
	l, h := p.ImpliedVarBounds(act, 1, false)
	if l > 0+1e-9 || h < 3-1e-6 || h > 3+1e-6 {
		t.Fatalf("implied x1 bounds = [%g, %g], want roughly (-inf valid lo ≤ 0, 3]", l, h)
	}
	// Integer rounding path.
	p2 := NewProblem(2)
	p2.SetVarBounds(0, 0, 1)
	p2.SetVarBounds(1, 0, 10)
	p2.AddRow([]int{0, 1}, []float64{2, 2}, -Inf, 7) // 2x0+2x1 ≤ 7 ⟹ x1 ≤ 3.5 → 3
	act2 := p2.NewRowActivity(lo, hi)
	_, h2 := p2.ImpliedVarBounds(act2, 1, true)
	if h2 != 3 {
		t.Fatalf("integer implied upper = %g, want 3", h2)
	}
}
