// Presolve shrinks an LP before it ever reaches the simplex. The reductions
// are the classic safe set (Andersen & Andersen 1995, §2–4, restricted to
// the ones that never weaken the relaxation):
//
//	empty rows        0 ∈ [lo, hi] ⟹ drop; otherwise infeasible
//	singleton rows    lo ≤ a·x_j ≤ hi ⟹ tighten x_j's bounds, drop the row
//	redundant rows    activity range within [lo, hi] under the bounds ⟹ drop
//	bound tightening  per-entry implied bounds from each row's residual
//	                  activity; integer bounds round inward
//	fixed columns     lo_j = hi_j ⟹ substitute into row bounds, drop
//	empty columns     no rows ⟹ fix at the cost-minimizing finite bound
//
// Reductions run to a fixpoint. The result is a smaller Problem plus a
// postsolve map that restores eliminated variables in solution vectors. All
// reductions are integrality-aware (an `integer` mask rounds tightened
// bounds inward and keeps fixings integral), so the reduced problem is an
// equally valid MILP root: the branch-and-bound in internal/milp presolves
// once at the root and searches entirely in reduced space.
package lp

import "math"

const (
	presolveTol    = 1e-9 // redundancy / feasibility slack
	presolveIntTol = 1e-6 // integrality slack when rounding bounds inward
	presolveMaxPasses = 16
)

func isPosInf(v float64) bool { return math.IsInf(v, 1) }
func isNegInf(v float64) bool { return math.IsInf(v, -1) }

// Presolved is the output of PresolveProblem: the reduced problem, the
// presolved bounds, and the mapping back to the original variable space.
type Presolved struct {
	// Reduced is the presolved problem; nil when Infeasible or Unbounded.
	Reduced *Problem
	// Lo, Hi are the presolved bounds of the reduced problem's variables
	// (tightened relative to the originals). Callers that solve with
	// per-node overrides should start from these.
	Lo, Hi []float64
	// ObjOffset is Σ c_j·v_j over eliminated variables: the constant the
	// reduced problem's objective is missing relative to the original.
	ObjOffset float64
	// RowsRemoved and ColsRemoved count eliminated rows and columns.
	RowsRemoved, ColsRemoved int
	// Infeasible reports that presolve proved the constraints unsatisfiable.
	Infeasible bool
	// Unbounded reports that presolve proved the objective unbounded (a
	// costed empty column with no finite bound in its improving direction).
	Unbounded bool

	n      int       // original variable count
	colMap []int     // reduced index → original index
	fixed  []float64 // original-space values of eliminated variables
	elim   []bool
}

// NumReduced returns the reduced problem's variable count.
func (pr *Presolved) NumReduced() int { return len(pr.colMap) }

// Col maps a reduced variable index to its original index.
func (pr *Presolved) Col(j int) int { return pr.colMap[j] }

// Postsolve expands a reduced-space solution vector to the original space,
// filling eliminated variables with their fixed values.
func (pr *Presolved) Postsolve(x []float64) []float64 {
	out := make([]float64, pr.n)
	for j := range out {
		if pr.elim[j] {
			out[j] = pr.fixed[j]
		}
	}
	for r, j := range pr.colMap {
		out[j] = x[r]
	}
	return out
}

// presolver is the working state of one PresolveProblem run.
type presolver struct {
	p        *Problem
	integer  []bool
	lo, hi   []float64
	rowLo    []float64
	rowHi    []float64
	rowAlive []bool
	colAlive []bool
	// rows is the row-wise adjacency (built once from the column store);
	// entries of eliminated columns are skipped via colAlive.
	rows [][]entry // entry.row reused as the column index here

	fixed      []float64
	elim       []bool
	objOffset  float64
	changed    bool
	infeasible bool
	unbounded  bool
}

// PresolveProblem reduces the problem under the given bounds (nil uses the
// problem's own). integer may be nil (all continuous) or flag, per original
// variable, that only integral values are meaningful — presolve then rounds
// tightened bounds inward, which is valid for the MILP but not for its pure
// LP relaxation. The input problem and bound slices are not mutated.
func PresolveProblem(p *Problem, lo, hi []float64, integer []bool) *Presolved {
	if lo == nil {
		lo = p.varLo
	}
	if hi == nil {
		hi = p.varHi
	}
	n, m := p.nvars, len(p.rowLo)
	ps := &presolver{
		p:        p,
		integer:  integer,
		lo:       append([]float64(nil), lo...),
		hi:       append([]float64(nil), hi...),
		rowLo:    append([]float64(nil), p.rowLo...),
		rowHi:    append([]float64(nil), p.rowHi...),
		rowAlive: make([]bool, m),
		colAlive: make([]bool, n),
		rows:     make([][]entry, m),
		fixed:    make([]float64, n),
		elim:     make([]bool, n),
	}
	for i := range ps.rowAlive {
		ps.rowAlive[i] = true
	}
	for j := range ps.colAlive {
		ps.colAlive[j] = true
	}
	for j, col := range p.cols {
		for _, e := range col {
			ps.rows[e.row] = append(ps.rows[e.row], entry{row: j, coef: e.coef})
		}
	}

	// Initial integrality rounding, then reduction passes to a fixpoint.
	for j := 0; j < n; j++ {
		ps.tighten(j, ps.lo[j], ps.hi[j])
	}
	for pass := 0; pass < presolveMaxPasses && !ps.infeasible && !ps.unbounded; pass++ {
		ps.changed = false
		ps.rowPass()
		if ps.infeasible {
			break
		}
		ps.colPass()
		if !ps.changed {
			break
		}
	}

	out := &Presolved{n: n, fixed: ps.fixed, elim: ps.elim, ObjOffset: ps.objOffset,
		Infeasible: ps.infeasible, Unbounded: ps.unbounded}
	if out.Infeasible || out.Unbounded {
		return out
	}
	// Materialize the reduced problem over surviving rows and columns.
	colMap := make([]int, 0, n)
	redIdx := make([]int, n)
	for j := 0; j < n; j++ {
		redIdx[j] = -1
		if ps.colAlive[j] {
			redIdx[j] = len(colMap)
			colMap = append(colMap, j)
		}
	}
	red := NewProblem(len(colMap))
	rlo := make([]float64, len(colMap))
	rhi := make([]float64, len(colMap))
	for r, j := range colMap {
		red.SetObj(r, p.obj[j])
		rlo[r], rhi[r] = ps.lo[j], ps.hi[j]
		red.SetVarBounds(r, rlo[r], rhi[r])
	}
	kept := 0
	for i := 0; i < m; i++ {
		if !ps.rowAlive[i] {
			continue
		}
		kept++
		var idxs []int
		var coefs []float64
		for _, e := range ps.rows[i] {
			if ps.colAlive[e.row] {
				idxs = append(idxs, redIdx[e.row])
				coefs = append(coefs, e.coef)
			}
		}
		red.AddRow(idxs, coefs, ps.rowLo[i], ps.rowHi[i])
	}
	out.Reduced = red
	out.Lo, out.Hi = rlo, rhi
	out.colMap = colMap
	out.RowsRemoved = m - kept
	out.ColsRemoved = n - len(colMap)
	return out
}

// tighten intersects variable j's working bounds with [lo, hi], rounding
// inward for integer variables. Records a change only on real movement.
func (ps *presolver) tighten(j int, lo, hi float64) {
	if ps.integer != nil && ps.integer[j] {
		if !isNegInf(lo) {
			lo = math.Ceil(lo - presolveIntTol)
		}
		if !isPosInf(hi) {
			hi = math.Floor(hi + presolveIntTol)
		}
	}
	if lo > ps.lo[j]+presolveTol {
		ps.lo[j] = lo
		ps.changed = true
	}
	if hi < ps.hi[j]-presolveTol {
		ps.hi[j] = hi
		ps.changed = true
	}
	if ps.lo[j] > ps.hi[j]+presolveTol {
		ps.infeasible = true
	}
}

// contrib returns the activity range contribution of coefficient a over
// variable j's working bounds.
func (ps *presolver) contrib(j int, a float64) (cmin, cmax float64) {
	if a > 0 {
		return a * ps.lo[j], a * ps.hi[j]
	}
	return a * ps.hi[j], a * ps.lo[j]
}

// rowPass applies the row reductions: empty, singleton, redundancy, and
// per-entry implied-bound tightening.
func (ps *presolver) rowPass() {
	for i := range ps.rows {
		if !ps.rowAlive[i] {
			continue
		}
		nnz := 0
		var sj int
		var sa float64
		for _, e := range ps.rows[i] {
			if ps.colAlive[e.row] {
				nnz++
				sj, sa = e.row, e.coef
			}
		}
		switch nnz {
		case 0:
			if ps.rowLo[i] > presolveTol || ps.rowHi[i] < -presolveTol {
				ps.infeasible = true
				return
			}
			ps.killRow(i)
			continue
		case 1:
			lo, hi := impliedFromRange(ps.rowLo[i], ps.rowHi[i], sa)
			ps.tighten(sj, lo, hi)
			if ps.infeasible {
				return
			}
			ps.killRow(i)
			continue
		}
		// Activity range with infinity counting.
		minSum, maxSum := 0.0, 0.0
		minInf, maxInf := 0, 0
		for _, e := range ps.rows[i] {
			if !ps.colAlive[e.row] {
				continue
			}
			cmin, cmax := ps.contrib(e.row, e.coef)
			if isNegInf(cmin) {
				minInf++
			} else {
				minSum += cmin
			}
			if isPosInf(cmax) {
				maxInf++
			} else {
				maxSum += cmax
			}
		}
		actMin, actMax := minSum, maxSum
		if minInf > 0 {
			actMin = math.Inf(-1)
		}
		if maxInf > 0 {
			actMax = math.Inf(1)
		}
		if actMin > ps.rowHi[i]+presolveTol || actMax < ps.rowLo[i]-presolveTol {
			ps.infeasible = true
			return
		}
		if actMin >= ps.rowLo[i]-presolveTol && actMax <= ps.rowHi[i]+presolveTol {
			ps.killRow(i)
			continue
		}
		// Implied bounds per entry from the row's residual activity.
		for _, e := range ps.rows[i] {
			if !ps.colAlive[e.row] {
				continue
			}
			lo, hi := impliedEntryBounds(ps.rowLo[i], ps.rowHi[i], e.coef,
				residual(minSum, minInf, maxSum, maxInf, ps.contribPair(e)))
			ps.tighten(e.row, lo, hi)
			if ps.infeasible {
				return
			}
		}
	}
}

// contribPair adapts contrib to the (cmin, cmax) pair residual consumes.
func (ps *presolver) contribPair(e entry) [2]float64 {
	cmin, cmax := ps.contrib(e.row, e.coef)
	return [2]float64{cmin, cmax}
}

// residualRange is the activity range of a row excluding one entry.
type residualRange struct {
	min, max float64
}

// residual removes one entry's contribution from an inf-counted activity sum.
func residual(minSum float64, minInf int, maxSum float64, maxInf int, c [2]float64) residualRange {
	var r residualRange
	if isNegInf(c[0]) {
		minInf--
	} else {
		minSum -= c[0]
	}
	if isPosInf(c[1]) {
		maxInf--
	} else {
		maxSum -= c[1]
	}
	r.min, r.max = minSum, maxSum
	if minInf > 0 {
		r.min = math.Inf(-1)
	}
	if maxInf > 0 {
		r.max = math.Inf(1)
	}
	return r
}

// impliedFromRange solves lo ≤ a·x ≤ hi for x (singleton-row bounds).
func impliedFromRange(lo, hi, a float64) (float64, float64) {
	if a > 0 {
		return safeDiv(lo, a), safeDiv(hi, a)
	}
	return safeDiv(hi, a), safeDiv(lo, a)
}

// safeDiv divides preserving infinities (lo/hi are never NaN and a ≠ 0).
func safeDiv(v, a float64) float64 {
	if math.IsInf(v, 0) {
		if (v > 0) == (a > 0) {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	return v / a
}

// impliedEntryBounds derives variable bounds from one row entry given the
// residual activity of the remaining entries:
//
//	rowLo − othersMax ≤ a·x_j ≤ rowHi − othersMin
//
// Unbounded residuals or row sides yield ±Inf (no information). A tiny
// relaxation keeps floating-point rounding from cutting the true optimum.
func impliedEntryBounds(rowLo, rowHi, a float64, oth residualRange) (float64, float64) {
	aLo, aHi := math.Inf(-1), math.Inf(1)
	if !isNegInf(rowLo) && !isPosInf(oth.max) {
		aLo = rowLo - oth.max
	}
	if !isPosInf(rowHi) && !isNegInf(oth.min) {
		aHi = rowHi - oth.min
	}
	lo, hi := impliedFromRange(aLo, aHi, a)
	if !isNegInf(lo) {
		lo -= presolveTol
	}
	if !isPosInf(hi) {
		hi += presolveTol
	}
	return lo, hi
}

// colPass eliminates fixed and empty columns.
func (ps *presolver) colPass() {
	for j := range ps.colAlive {
		if !ps.colAlive[j] {
			continue
		}
		if ps.hi[j]-ps.lo[j] <= presolveTol {
			v := ps.lo[j]
			if ps.integer != nil && ps.integer[j] {
				v = math.Round(v)
			}
			ps.fixColumn(j, v)
			continue
		}
		// Empty column: no surviving row touches it.
		empty := true
		for _, e := range ps.p.cols[j] {
			if ps.rowAlive[e.row] {
				empty = false
				break
			}
		}
		if !empty {
			continue
		}
		c := ps.p.obj[j]
		switch {
		case c > presolveTol:
			if isNegInf(ps.lo[j]) {
				ps.unbounded = true
				return
			}
			ps.fixColumn(j, ps.lo[j])
		case c < -presolveTol:
			if isPosInf(ps.hi[j]) {
				ps.unbounded = true
				return
			}
			ps.fixColumn(j, ps.hi[j])
		default:
			switch {
			case ps.lo[j] <= 0 && ps.hi[j] >= 0:
				ps.fixColumn(j, 0)
			case !isNegInf(ps.lo[j]):
				ps.fixColumn(j, ps.lo[j])
			default:
				ps.fixColumn(j, ps.hi[j])
			}
		}
	}
}

// fixColumn eliminates variable j at value v, substituting its contribution
// into the bounds of every row it appears in.
func (ps *presolver) fixColumn(j int, v float64) {
	for _, e := range ps.p.cols[j] {
		if !ps.rowAlive[e.row] {
			continue
		}
		if !isNegInf(ps.rowLo[e.row]) {
			ps.rowLo[e.row] -= e.coef * v
		}
		if !isPosInf(ps.rowHi[e.row]) {
			ps.rowHi[e.row] -= e.coef * v
		}
	}
	ps.colAlive[j] = false
	ps.elim[j] = true
	ps.fixed[j] = v
	ps.objOffset += ps.p.obj[j] * v
	ps.changed = true
}

func (ps *presolver) killRow(i int) {
	ps.rowAlive[i] = false
	ps.changed = true
}

// RowActivity caches per-row activity ranges (with infinity counting) over a
// fixed bound vector. The MILP search builds one over the presolved root
// bounds and uses ImpliedVarBounds for the per-node incremental tightening
// of the branched variable: O(nnz(column)) per node, no row rescans.
type RowActivity struct {
	lo, hi         []float64
	minSum, maxSum []float64
	minInf, maxInf []int32
}

// NewRowActivity computes the activity ranges of every row under lo/hi.
func (p *Problem) NewRowActivity(lo, hi []float64) *RowActivity {
	m := len(p.rowLo)
	act := &RowActivity{
		lo:     append([]float64(nil), lo...),
		hi:     append([]float64(nil), hi...),
		minSum: make([]float64, m),
		maxSum: make([]float64, m),
		minInf: make([]int32, m),
		maxInf: make([]int32, m),
	}
	for j, col := range p.cols {
		for _, e := range col {
			cmin, cmax := contribRange(e.coef, lo[j], hi[j])
			if isNegInf(cmin) {
				act.minInf[e.row]++
			} else {
				act.minSum[e.row] += cmin
			}
			if isPosInf(cmax) {
				act.maxInf[e.row]++
			} else {
				act.maxSum[e.row] += cmax
			}
		}
	}
	return act
}

func contribRange(a, lo, hi float64) (float64, float64) {
	if a > 0 {
		return a * lo, a * hi
	}
	return a * hi, a * lo
}

// ImpliedVarBounds intersects the implied bounds of variable j across every
// row it appears in, using the activity ranges act was built from (residuals
// must subtract the same contributions that were added). integer rounds the
// result inward. The returned interval may be empty (lo > hi), which proves
// no point satisfying the rows has x_j inside act's bound box — the MILP
// layer prunes such children without an LP solve.
func (p *Problem) ImpliedVarBounds(act *RowActivity, j int, integer bool) (float64, float64) {
	lo, hi := math.Inf(-1), math.Inf(1)
	for _, e := range p.cols[j] {
		i := e.row
		cmin, cmax := contribRange(e.coef, act.lo[j], act.hi[j])
		oth := residual(act.minSum[i], int(act.minInf[i]), act.maxSum[i], int(act.maxInf[i]), [2]float64{cmin, cmax})
		elo, ehi := impliedEntryBounds(p.rowLo[i], p.rowHi[i], e.coef, oth)
		if elo > lo {
			lo = elo
		}
		if ehi < hi {
			hi = ehi
		}
	}
	if integer {
		if !isNegInf(lo) {
			lo = math.Ceil(lo - presolveIntTol)
		}
		if !isPosInf(hi) {
			hi = math.Floor(hi + presolveIntTol)
		}
	}
	return lo, hi
}
