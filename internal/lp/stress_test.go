package lp

import (
	"math"
	"testing"

	"spq/internal/rng"
)

// Stress and regression tests for the simplex beyond the basic suite.

func TestManyEqualityRows(t *testing.T) {
	// A chain of equalities: x0 = 1, x_{i} − x_{i−1} = 1 → x_i = i+1.
	const n = 25
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, 1)
		p.SetVarBounds(j, 0, 100)
	}
	p.AddRow([]int{0}, []float64{1}, 1, 1)
	for i := 1; i < n; i++ {
		p.AddRow([]int{i, i - 1}, []float64{1, -1}, 1, 1)
	}
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	for i := 0; i < n; i++ {
		if math.Abs(sol.X[i]-float64(i+1)) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %d", i, sol.X[i], i+1)
		}
	}
}

func TestRedundantRows(t *testing.T) {
	// The same constraint repeated many times must not confuse phase 1.
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -2)
	for k := 0; k < 30; k++ {
		p.AddRow([]int{0, 1}, []float64{1, 1}, -Inf, 4)
	}
	p.AddRow([]int{0, 1}, []float64{1, 1}, 2, Inf)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -8, 1e-7)
}

func TestWideCoefficientRange(t *testing.T) {
	// Coefficients spanning 8 orders of magnitude (big-M-like rows).
	p := NewProblem(2)
	p.SetObj(0, 1)
	p.SetVarBounds(0, 0, 1e6)
	p.SetVarBounds(1, 0, 1)
	p.AddRow([]int{0, 1}, []float64{1, -1e6}, 0, Inf) // x0 ≥ 1e6·x1
	p.AddRow([]int{1}, []float64{1}, 1, 1)            // x1 = 1
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 1e6, 1)
}

func TestHighlyDegenerateTransportation(t *testing.T) {
	// Transportation-like LP with many ties: 3 sources × 3 sinks.
	p := NewProblem(9)
	cost := []float64{4, 8, 8, 16, 24, 16, 8, 16, 24}
	for j := 0; j < 9; j++ {
		p.SetObj(j, cost[j])
	}
	supply := []float64{10, 10, 10}
	demand := []float64{10, 10, 10}
	for s := 0; s < 3; s++ {
		idxs := []int{3 * s, 3*s + 1, 3*s + 2}
		p.AddRow(idxs, []float64{1, 1, 1}, supply[s], supply[s])
	}
	for d := 0; d < 3; d++ {
		idxs := []int{d, d + 3, d + 6}
		p.AddRow(idxs, []float64{1, 1, 1}, demand[d], demand[d])
	}
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	// Optimal: route cheapest; check total assignment feasibility.
	total := 0.0
	for _, x := range sol.X {
		if x < -1e-9 {
			t.Fatalf("negative flow %v", x)
		}
		total += x
	}
	if math.Abs(total-30) > 1e-6 {
		t.Fatalf("total flow = %v, want 30", total)
	}
	// Lower bound: all flow at min cost 4 would be 120; real optimum higher.
	if sol.Obj < 120-1e-9 {
		t.Fatalf("objective %v below absolute lower bound", sol.Obj)
	}
}

func TestRefactorizationPath(t *testing.T) {
	// Enough pivots to trigger periodic refactorization (every 100 pivots):
	// a randomized assignment-like LP with ~60 rows.
	s := rng.NewStream(21)
	const n, m = 120, 60
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, s.Float64()*10)
		p.SetVarBounds(j, 0, 5)
	}
	for i := 0; i < m; i++ {
		idxs := make([]int, 0, 8)
		coefs := make([]float64, 0, 8)
		for k := 0; k < 8; k++ {
			idxs = append(idxs, s.IntN(n))
			coefs = append(coefs, 0.5+s.Float64())
		}
		p.AddRow(idxs, coefs, 1+s.Float64()*3, Inf)
	}
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v after %d iters", sol.Status, sol.Iters)
	}
	// Verify feasibility independently.
	for i := 0; i < m; i++ {
		// Rows were built with random duplicate indices; recompute through
		// the problem's own storage by re-solving the dot product is not
		// exposed, so check only bounds here and rely on objective sanity.
		_ = i
	}
	for j := 0; j < n; j++ {
		if sol.X[j] < -1e-7 || sol.X[j] > 5+1e-7 {
			t.Fatalf("x[%d] = %v outside [0,5]", j, sol.X[j])
		}
	}
}

func TestLargeColumnCount(t *testing.T) {
	// 20k columns, 3 rows: the package-query shape at moderate scale.
	s := rng.NewStream(33)
	const n = 20000
	p := NewProblem(n)
	idxs := make([]int, n)
	ones := make([]float64, n)
	w := make([]float64, n)
	for j := 0; j < n; j++ {
		idxs[j] = j
		ones[j] = 1
		w[j] = 1 + s.Float64()*9
		p.SetObj(j, s.Float64())
		p.SetVarBounds(j, 0, 3)
	}
	p.AddRow(idxs, ones, 100, Inf)
	p.AddRow(idxs, w, -Inf, 2000)
	p.AddRow(idxs, ones, -Inf, 500)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	count := 0.0
	for _, x := range sol.X {
		count += x
	}
	if count < 100-1e-6 || count > 500+1e-6 {
		t.Fatalf("count %v outside [100, 500]", count)
	}
}

func TestAllVariablesFixed(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObj(j, 1)
		p.SetVarBounds(j, 2, 2)
	}
	p.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, 6, 6)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, 6, 1e-9)
	// Infeasible when the fixed point violates a row.
	p2 := NewProblem(1)
	p2.SetVarBounds(0, 2, 2)
	p2.AddRow([]int{0}, []float64{1}, 5, Inf)
	sol2 := solveOrFail(t, p2)
	if sol2.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol2.Status)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(0)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || sol.Obj != 0 {
		t.Fatalf("empty problem: %v obj %v", sol.Status, sol.Obj)
	}
}

func TestNoRowsBoxOnly(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -3)
	p.SetObj(1, 2)
	p.SetVarBounds(0, -1, 4)
	p.SetVarBounds(1, -2, 5)
	sol := solveOrFail(t, p)
	wantOptimal(t, sol, -3*4+2*(-2), 1e-9)
}
