package lp

import (
	"math"
	"testing"
)

// buildBranchy returns an LP shaped like a branch-and-bound node relaxation:
// a handful of coupling rows over many bounded columns.
func buildBranchy(n int) *Problem {
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObj(j, -float64((j*7)%13+1)) // maximize value
		p.SetVarBounds(j, 0, 3)
	}
	var idxs []int
	var w1, w2 []float64
	for j := 0; j < n; j++ {
		idxs = append(idxs, j)
		w1 = append(w1, float64((j*5)%11+1))
		w2 = append(w2, float64((j*3)%7+1))
	}
	p.AddRow(idxs, w1, -Inf, float64(4*n))
	p.AddRow(idxs, w2, -Inf, float64(3*n))
	return p
}

func TestWarmStartReproducesColdOptimum(t *testing.T) {
	p := buildBranchy(24)
	parent, err := Solve(p, &Options{WantBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent solve: %+v err=%v", parent, err)
	}
	if parent.Basis == nil {
		t.Fatal("WantBasis set but no basis returned")
	}
	if parent.WarmStarted {
		t.Fatal("cold solve must not report WarmStarted")
	}
	// Branch: clamp a fractional-ish variable both ways and compare warm vs
	// cold child solves.
	for branchVar := 0; branchVar < 6; branchVar++ {
		for _, dir := range []string{"down", "up"} {
			lo := append([]float64(nil), p.varLo...)
			hi := append([]float64(nil), p.varHi...)
			if dir == "down" {
				hi[branchVar] = 1
			} else {
				lo[branchVar] = 2
			}
			cold, err := SolveWithBounds(p, lo, hi, nil)
			if err != nil {
				t.Fatalf("cold child: %v", err)
			}
			warm, err := SolveWithBounds(p, lo, hi, &Options{Basis: parent.Basis})
			if err != nil {
				t.Fatalf("warm child: %v", err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("%s[%d]: warm status %v != cold %v", dir, branchVar, warm.Status, cold.Status)
			}
			if cold.Status == StatusOptimal && math.Abs(warm.Obj-cold.Obj) > 1e-6 {
				t.Fatalf("%s[%d]: warm obj %.12g != cold %.12g", dir, branchVar, warm.Obj, cold.Obj)
			}
			if !warm.WarmStarted {
				t.Fatalf("%s[%d]: warm solve did not accept the seed", dir, branchVar)
			}
			if warm.Iters >= cold.Iters && cold.Iters > 2 {
				// Not a hard guarantee, but on this family reinstatement
				// should beat two-phase from the logical basis.
				t.Logf("%s[%d]: warm iters %d ≥ cold %d", dir, branchVar, warm.Iters, cold.Iters)
			}
		}
	}
}

func TestWarmStartDeterministic(t *testing.T) {
	p := buildBranchy(16)
	parent, err := Solve(p, &Options{WantBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent solve: %+v err=%v", parent, err)
	}
	lo := append([]float64(nil), p.varLo...)
	hi := append([]float64(nil), p.varHi...)
	hi[3] = 1
	var first *Solution
	for rep := 0; rep < 3; rep++ {
		sol, err := SolveWithBounds(p, lo, hi, &Options{Basis: parent.Basis, WantBasis: true})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if first == nil {
			first = sol
			continue
		}
		if sol.Status != first.Status || sol.Obj != first.Obj || sol.Iters != first.Iters {
			t.Fatalf("rep %d: (%v, %v, %d) != (%v, %v, %d)",
				rep, sol.Status, sol.Obj, sol.Iters, first.Status, first.Obj, first.Iters)
		}
		for j := range sol.X {
			if sol.X[j] != first.X[j] {
				t.Fatalf("rep %d: X[%d] %v != %v (must be bit-identical)", rep, j, sol.X[j], first.X[j])
			}
		}
	}
}

func TestWarmStartShapeMismatchFallsBack(t *testing.T) {
	p := buildBranchy(16)
	parent, err := Solve(p, &Options{WantBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	other := buildBranchy(8)
	sol, err := Solve(other, &Options{Basis: parent.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if sol.WarmStarted {
		t.Fatal("mismatched basis must fall back to the cold path")
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("fallback solve status %v", sol.Status)
	}
	cold, _ := Solve(other, nil)
	if math.Abs(sol.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("fallback obj %g != cold %g", sol.Obj, cold.Obj)
	}
}

func TestWarmStartInfeasibleChild(t *testing.T) {
	p := NewProblem(2)
	p.SetObj(0, -1)
	p.SetObj(1, -1)
	p.SetVarBounds(0, 0, 4)
	p.SetVarBounds(1, 0, 4)
	p.AddRow([]int{0, 1}, []float64{1, 1}, 5, Inf) // x0 + x1 ≥ 5
	parent, err := Solve(p, &Options{WantBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %+v err=%v", parent, err)
	}
	lo := []float64{0, 0}
	hi := []float64{2, 2} // now x0+x1 ≤ 4 < 5: infeasible
	warm, err := SolveWithBounds(p, lo, hi, &Options{Basis: parent.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusInfeasible {
		t.Fatalf("warm child status %v, want infeasible", warm.Status)
	}
}

func TestScratchReuseMatchesFresh(t *testing.T) {
	p := buildBranchy(20)
	sc := &Scratch{}
	var prev *Solution
	for rep := 0; rep < 4; rep++ {
		sol, err := Solve(p, &Options{Scratch: sc, WantBasis: true})
		if err != nil || sol.Status != StatusOptimal {
			t.Fatalf("rep %d: %+v err=%v", rep, sol, err)
		}
		fresh, err := Solve(p, &Options{WantBasis: true})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Obj != fresh.Obj || sol.Iters != fresh.Iters {
			t.Fatalf("rep %d: scratch solve (%v, %d) != fresh (%v, %d)",
				rep, sol.Obj, sol.Iters, fresh.Obj, fresh.Iters)
		}
		for j := range sol.X {
			if sol.X[j] != fresh.X[j] {
				t.Fatalf("rep %d: X[%d] differs with scratch reuse", rep, j)
			}
		}
		prev = sol
	}
	// Scratch must also be reusable across differently-sized problems.
	small := buildBranchy(5)
	sSol, err := Solve(small, &Options{Scratch: sc})
	if err != nil || sSol.Status != StatusOptimal {
		t.Fatalf("small: %+v err=%v", sSol, err)
	}
	fSol, _ := Solve(small, nil)
	if sSol.Obj != fSol.Obj {
		t.Fatalf("small scratch obj %g != fresh %g", sSol.Obj, fSol.Obj)
	}
	_ = prev
}

func TestDualBoundFlipFastPath(t *testing.T) {
	// Knapsack LP engineered so the warm-started dual reinstatement must
	// traverse small-span candidates before the ratio test finds a pivot that
	// repairs the violated row: max 3(x0+…+x3) + 6·x4 subject to
	// 0.2(x0+…+x3) + x4 ≤ 1.55, x ∈ [0,1]⁵. The parent optimum holds
	// x0..x3 at upper and x4 basic at 0.75; up-branching x4 (lo=1) leaves a
	// 0.25 violation that one candidate's full 0.2-weight traversal cannot
	// close, so the kernel must flip it bound-to-bound (no eta) and move on.
	p := NewProblem(5)
	for j := 0; j < 4; j++ {
		p.SetObj(j, -3)
		p.SetVarBounds(j, 0, 1)
	}
	p.SetObj(4, -6)
	p.SetVarBounds(4, 0, 1)
	p.AddRow([]int{0, 1, 2, 3, 4}, []float64{0.2, 0.2, 0.2, 0.2, 1}, -Inf, 1.55)
	parent, err := Solve(p, &Options{WantBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %+v err=%v", parent, err)
	}
	if parent.BoundFlips != 0 {
		t.Fatalf("cold solve recorded %d bound flips (dual path never ran)", parent.BoundFlips)
	}
	lo := append([]float64(nil), p.varLo...)
	hi := append([]float64(nil), p.varHi...)
	lo[4] = 1 // up-branch on the fractional basic
	cold, err := SolveWithBounds(p, lo, hi, nil)
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("cold child: %+v err=%v", cold, err)
	}
	warm, err := SolveWithBounds(p, lo, hi, &Options{Basis: parent.Basis})
	if err != nil || warm.Status != StatusOptimal {
		t.Fatalf("warm child: %+v err=%v", warm, err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm child did not accept the seed")
	}
	if warm.BoundFlips == 0 {
		t.Fatal("expected at least one bound flip during dual reinstatement")
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-9 {
		t.Fatalf("warm obj %.12g != cold %.12g", warm.Obj, cold.Obj)
	}
	// The fast path must stay deterministic like every other kernel counter.
	rep, err := SolveWithBounds(p, lo, hi, &Options{Basis: parent.Basis})
	if err != nil || rep.BoundFlips != warm.BoundFlips || rep.Iters != warm.Iters {
		t.Fatalf("flip counter unstable: (%d,%d) vs (%d,%d), err=%v",
			rep.BoundFlips, rep.Iters, warm.BoundFlips, warm.Iters, err)
	}
}

func TestDegenPivotCounterMonotone(t *testing.T) {
	// A degenerate transportation-style LP should record at least zero (and
	// usually some) degenerate pivots; the counter must never be negative and
	// must be stable across repeats.
	p := NewProblem(6)
	for j := 0; j < 6; j++ {
		p.SetObj(j, float64(j%3)+1)
		p.SetVarBounds(j, 0, 10)
	}
	p.AddRow([]int{0, 1, 2}, []float64{1, 1, 1}, 5, 5)
	p.AddRow([]int{3, 4, 5}, []float64{1, 1, 1}, 5, 5)
	p.AddRow([]int{0, 3}, []float64{1, 1}, 5, 5)
	p.AddRow([]int{1, 4}, []float64{1, 1}, 0, 0)
	a, err := Solve(p, nil)
	if err != nil || a.Status != StatusOptimal {
		t.Fatalf("%+v err=%v", a, err)
	}
	b, _ := Solve(p, nil)
	if a.DegenPivots < 0 || a.DegenPivots != b.DegenPivots {
		t.Fatalf("DegenPivots unstable: %d vs %d", a.DegenPivots, b.DegenPivots)
	}
}
