//go:build !race

package lp

// raceEnabled reports whether the race detector instruments this test
// binary. Latency bounds in cancel_test.go scale by it: instrumentation
// slows the solver's uninterruptible inner blocks (notably the O(m³) basis
// refactorization between cancellation polls) by an order of magnitude.
const raceEnabled = false
