package lp

import (
	"testing"
	"time"

	"spq/internal/rng"
)

// denseProblem builds a dense random LP sized so a full solve takes hundreds
// of milliseconds (thousands of iterations over dense columns): the shape
// where per-iteration cancellation polling matters. Checking limits only
// between solves — the pre-fix behaviour — would make cancellation wait for
// the whole thing.
func denseProblem(m, n int) *Problem {
	s := rng.NewStream(99)
	p := NewProblem(n)
	idxs := make([]int, n)
	for j := 0; j < n; j++ {
		idxs[j] = j
		p.SetObj(j, s.Float64()*2-1)
		p.SetVarBounds(j, 0, 10)
	}
	coefs := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			coefs[j] = s.Float64()*2 - 1
		}
		p.AddRow(idxs, append([]float64(nil), coefs...), -5+s.Float64(), 5+s.Float64())
	}
	return p
}

// TestCancelMidSolve is the headline regression test for the cancellation
// bug: closing Options.Cancel while the simplex is mid-solve must return
// within about one iteration (sub-millisecond here), not after the remaining
// hundreds of milliseconds of the solve.
func TestCancelMidSolve(t *testing.T) {
	p := denseProblem(200, 400)

	// Baseline: this model's uncancelled solve is the "one long LP solve"
	// the bug hid behind. It must comfortably exceed the latency bound below
	// for the cancellation measurement to mean anything.
	start := time.Now()
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if sol.Status != StatusOptimal {
		t.Fatalf("baseline status = %v", sol.Status)
	}
	if full < 100*time.Millisecond {
		t.Fatalf("baseline solve took %v; too fast for a meaningful cancellation-latency bound", full)
	}

	cancel := make(chan struct{})
	type outcome struct {
		sol     *Solution
		err     error
		latency time.Duration
	}
	done := make(chan outcome, 1)
	var cancelled time.Time
	go func() {
		s, err := Solve(p, &Options{Cancel: cancel})
		done <- outcome{sol: s, err: err, latency: time.Since(cancelled)}
	}()

	time.Sleep(full / 4) // well inside the solve
	cancelled = time.Now()
	close(cancel)

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.sol.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", out.sol.Status)
	}
	// The contract is ~one iteration (~hundreds of microseconds on this
	// model); the bound is generous for loaded CI machines but far below the
	// remaining ~3/4 of the solve. Under the race detector the longest
	// uninterruptible stretch between polls (a basis refactorization) grows
	// by an order of magnitude, so the bound scales with it.
	bound := 100 * time.Millisecond
	if raceEnabled {
		bound = 2 * time.Second
	}
	if out.latency > bound {
		t.Fatalf("cancellation latency %v, want ≲10ms (bound %v)", out.latency, bound)
	}
	if out.sol.Iters == 0 {
		t.Fatal("solve was cancelled before doing any work; cancel landed too early")
	}
}

// TestDeadlineMidSolve: Options.Deadline is polled inside the iteration loop
// too, so a deadline expiring mid-solve stops it promptly with
// StatusCancelled.
func TestDeadlineMidSolve(t *testing.T) {
	p := denseProblem(200, 400)
	start := time.Now()
	sol, err := Solve(p, &Options{Deadline: start.Add(50 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if sol.Status != StatusCancelled {
		t.Fatalf("status = %v after %v, want cancelled", sol.Status, elapsed)
	}
	bound := 500 * time.Millisecond
	if raceEnabled {
		bound = 3 * time.Second
	}
	if elapsed > bound {
		t.Fatalf("deadline overshoot: solve ran %v past a 50ms deadline", elapsed)
	}
}

// TestCancelAlreadyClosed: a pre-closed Cancel channel aborts before the
// first iteration.
func TestCancelAlreadyClosed(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	sol, err := Solve(denseProblem(40, 80), &Options{Cancel: cancel})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", sol.Status)
	}
	if sol.Iters != 0 {
		t.Fatalf("ran %d iterations under a pre-closed cancel", sol.Iters)
	}
}

func TestCancelledStatusString(t *testing.T) {
	if got := StatusCancelled.String(); got != "cancelled" {
		t.Fatalf("StatusCancelled.String() = %q", got)
	}
}
