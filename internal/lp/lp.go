// Package lp implements a revised primal simplex solver for linear programs
// with general variable and row bounds:
//
//	minimize    cᵀx
//	subject to  rowLo ≤ A x ≤ rowHi
//	            varLo ≤   x ≤ varHi
//
// It is the LP substrate under the branch-and-bound MILP solver in
// internal/milp, which together replace the commercial solver (IBM CPLEX)
// used by the paper. The design targets the shape of package-query programs:
// few rows (constraints plus scenario/summary indicators) and many columns
// (one decision variable per tuple), so the solver keeps a dense m×m basis
// inverse with rank-1 eta updates and prices columns in sparse form.
//
// Internally every row i gets a logical variable r_i with bounds
// [rowLo_i, rowHi_i], and the system is A x − r = 0. The initial basis is the
// logical identity; a composite (infeasibility-minimizing) phase 1 drives the
// basics into their bounds, then phase 2 optimizes the true objective.
//
// Solves are cooperatively interruptible: Options.Cancel and
// Options.Deadline are polled once per simplex iteration in both phases,
// and an aborted solve reports StatusCancelled with best-effort values.
// This is the lowest rung of the cancellation ladder — it is what lets a
// daemon-level DELETE land within one LP iteration even when a single
// relaxation runs for seconds (see internal/milp and DESIGN.md "Parallel
// MILP").
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Inf is the bound value representing +infinity. Use -Inf for free lower
// bounds.
var Inf = math.Inf(1)

// Status reports the disposition of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective decreases without bound.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit before convergence.
	StatusIterLimit
	// StatusCancelled means the solve was aborted early by Options.Cancel or
	// the Options.Deadline expiring. The solution's X is the best-effort
	// iterate at the moment of cancellation and its objective bound must not
	// be trusted.
	StatusCancelled
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// entry is a nonzero coefficient in a structural column.
type entry struct {
	row  int
	coef float64
}

// Problem is an LP instance. Build it with NewProblem, SetObj, SetVarBounds
// and AddRow; it may then be solved repeatedly (possibly with per-solve
// variable-bound overrides, which is how branch-and-bound fixes variables)
// without rebuilding.
type Problem struct {
	nvars int
	obj   []float64
	cols  [][]entry
	varLo []float64
	varHi []float64
	rowLo []float64
	rowHi []float64
}

// NewProblem creates a problem with nvars structural variables, each with
// default bounds [0, +Inf) and zero objective coefficient.
func NewProblem(nvars int) *Problem {
	p := &Problem{
		nvars: nvars,
		obj:   make([]float64, nvars),
		cols:  make([][]entry, nvars),
		varLo: make([]float64, nvars),
		varHi: make([]float64, nvars),
	}
	for j := range p.varHi {
		p.varHi[j] = Inf
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rowLo) }

// SetObj sets the objective coefficient of variable j.
func (p *Problem) SetObj(j int, c float64) { p.obj[j] = c }

// Obj returns the objective coefficient of variable j.
func (p *Problem) Obj(j int) float64 { return p.obj[j] }

// SetVarBounds sets the bounds of variable j. lo may be -Inf and hi may be
// Inf.
func (p *Problem) SetVarBounds(j int, lo, hi float64) {
	p.varLo[j] = lo
	p.varHi[j] = hi
}

// VarBounds returns the bounds of variable j.
func (p *Problem) VarBounds(j int) (lo, hi float64) { return p.varLo[j], p.varHi[j] }

// AddRow appends the constraint lo ≤ Σ coefs[k]·x[idxs[k]] ≤ hi and returns
// its row index. Duplicate variable indices within one row are summed.
func (p *Problem) AddRow(idxs []int, coefs []float64, lo, hi float64) int {
	if len(idxs) != len(coefs) {
		panic("lp: AddRow index/coefficient length mismatch")
	}
	row := len(p.rowLo)
	p.rowLo = append(p.rowLo, lo)
	p.rowHi = append(p.rowHi, hi)
	seen := make(map[int]int, len(idxs))
	for k, j := range idxs {
		if j < 0 || j >= p.nvars {
			panic(fmt.Sprintf("lp: AddRow variable index %d out of range", j))
		}
		if coefs[k] == 0 {
			continue
		}
		if pos, dup := seen[j]; dup {
			p.cols[j][pos].coef += coefs[k]
			continue
		}
		p.cols[j] = append(p.cols[j], entry{row: row, coef: coefs[k]})
		seen[j] = len(p.cols[j]) - 1
	}
	return row
}

// NumCoefficients returns the number of stored nonzero structural
// coefficients; it is the paper's DILP "size" measure (Θ(NMK) for SAA vs
// Θ(NZK) for CSA).
func (p *Problem) NumCoefficients() int {
	n := 0
	for _, col := range p.cols {
		n += len(col)
	}
	return n
}

// Options tune the simplex.
type Options struct {
	// MaxIters caps total simplex iterations across both phases.
	// 0 means a default proportional to the problem size.
	MaxIters int
	// FeasTol is the bound-violation tolerance (default 1e-7).
	FeasTol float64
	// OptTol is the reduced-cost optimality tolerance (default 1e-9).
	OptTol float64
	// Cancel, when non-nil, aborts the solve as soon as the channel is
	// closed. It is polled every simplex iteration in both phases, so even a
	// single long solve responds within one iteration rather than running to
	// convergence — the property the MILP layer (and, above it, query
	// cancellation) depends on. A cancelled solve reports StatusCancelled.
	Cancel <-chan struct{}
	// Deadline, when nonzero, bounds the solve in wall-clock time. Like
	// Cancel it is polled inside the iteration loop and expiry reports
	// StatusCancelled (MaxIters remains the deterministic iteration budget;
	// Deadline is the responsive wall-clock one).
	Deadline time.Time
	// Basis, when non-nil, warm-starts the solve from a previous optimal
	// basis (typically the parent node's in branch-and-bound). The solver
	// reinstates primal feasibility under the current bounds with a bounded
	// dual simplex instead of running phase 1 from the logical basis; if the
	// snapshot cannot be installed (shape mismatch, singular basis) or the
	// dual simplex stalls, the solve silently falls back to the cold path.
	// Basis is part of the determinism domain: a solve is a pure function of
	// (Problem, bounds, Options) including Basis, so callers that cache or
	// compare results must treat it like any other Options field.
	Basis *Basis
	// WantBasis asks the solver to attach a basis snapshot of the optimal
	// basis to the Solution (nil unless Status is StatusOptimal).
	WantBasis bool
	// Scratch, when non-nil, lends the solver reusable working memory
	// (basis-inverse rows, eta file, pricing vectors) so repeated solves —
	// branch-and-bound explores thousands of near-identical LPs — stop
	// allocating per solve. A Scratch must not be shared by concurrent
	// solves; the MILP layer keeps one per worker.
	Scratch *Scratch
}

func (o *Options) withDefaults(m, n int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxIters == 0 {
		out.MaxIters = 200*(m+n) + 10000
	}
	if out.FeasTol == 0 {
		out.FeasTol = 1e-7
	}
	if out.OptTol == 0 {
		out.OptTol = 1e-9
	}
	return out
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X holds the structural variable values (valid when Status is
	// StatusOptimal; best-effort otherwise).
	X []float64
	// Obj is cᵀX.
	Obj float64
	// Iters is the number of simplex iterations performed.
	Iters int
	// DegenPivots is the number of degenerate (zero-step) pivots performed —
	// the kernel's stalling indicator.
	DegenPivots int
	// BoundFlips is the number of dual iterations resolved by flipping the
	// entering variable bound-to-bound instead of pivoting — iterations that
	// skipped the eta-file update entirely.
	BoundFlips int
	// WarmStarted reports that the solve was seeded from Options.Basis and
	// the seed was accepted (dual-simplex reinstatement ran instead of
	// phase 1 from the logical basis).
	WarmStarted bool
	// Basis is a snapshot of the optimal basis, present only when
	// Options.WantBasis was set and Status is StatusOptimal.
	Basis *Basis
}

// Solve optimizes the problem with its stored bounds.
func Solve(p *Problem, opts *Options) (*Solution, error) {
	return SolveWithBounds(p, nil, nil, opts)
}

// SolveWithBounds optimizes with variable bounds overridden by varLo/varHi
// (either may be nil to use the problem's own). The problem itself is not
// mutated, so concurrent solves over one Problem with different bound
// vectors are safe.
func SolveWithBounds(p *Problem, varLo, varHi []float64, opts *Options) (*Solution, error) {
	if varLo == nil {
		varLo = p.varLo
	}
	if varHi == nil {
		varHi = p.varHi
	}
	if len(varLo) != p.nvars || len(varHi) != p.nvars {
		return nil, errors.New("lp: bound override length mismatch")
	}
	for j := 0; j < p.nvars; j++ {
		if varLo[j] > varHi[j] {
			return &Solution{Status: StatusInfeasible, X: make([]float64, p.nvars)}, nil
		}
	}
	for i := range p.rowLo {
		if p.rowLo[i] > p.rowHi[i] {
			return &Solution{Status: StatusInfeasible, X: make([]float64, p.nvars)}, nil
		}
	}
	s := newSimplex(p, varLo, varHi, opts)
	return s.solve()
}
