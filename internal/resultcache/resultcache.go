// Package resultcache is the storage seam behind the engine's result cache:
// the LRU of fully evaluated, deterministic query responses that lets
// identical requests skip solving entirely.
//
// The engine used to own the LRU directly; extracting it behind Store
// makes the cache a deployment choice. Memory is the single-node store the
// engine had before. Replicating (replicate.go) wraps it for a fleet:
// locally solved entries are pushed write-through to peer daemons over
// HTTP, so a load balancer can spray identical requests across nodes and
// still hit warm caches everywhere.
//
// Entries are deliberately two-faced. Local holds the engine's in-process
// value — pointers into live plans and relations, cheap to serve, never
// serialized. Wire holds the self-contained replication payload (canonical
// query, options, raw solution) that a peer can validate and materialize
// against its own catalog. A peer-received entry starts Wire-only and
// Remote-flagged; the receiving engine materializes it lazily on first hit
// and never re-replicates it, so pushes cannot echo around the fleet.
// Version invalidation is preserved by construction: every entry names the
// relation and version it was solved against, and the engine revalidates
// (and drops dead entries) on every hit exactly as it did for the
// single-node LRU.
package resultcache

import (
	"container/list"
	"sync"
)

// Entry is one cached result with the validation metadata the engine needs
// to decide whether it is still current.
type Entry struct {
	// Table and Version name the registered relation (and its version
	// counter) the result was computed against. A hit is only served when
	// the local catalog still resolves Table to a relation at Version.
	Table   string
	Version uint64
	// Local is the engine's in-process cached value (opaque to this
	// package); nil for entries received from a peer until the engine
	// materializes them.
	Local any
	// Wire is the self-contained serialized payload a peer can rebuild the
	// result from; nil when the owning engine chose not to render one.
	Wire []byte
	// Remote marks entries that arrived from a peer: they are never pushed
	// back out (replication is one generation deep by design — every node
	// that solves pushes, nobody forwards).
	Remote bool
}

// Store is a keyed result store. Implementations must be safe for
// concurrent use; keys are the engine's canonical result keys (the full
// determinism domain of a request).
type Store interface {
	// Get returns the entry under key, marking it recently used.
	Get(key string) (*Entry, bool)
	// Put stores e under key, evicting least-recently-used entries beyond
	// the store's capacity.
	Put(key string, e *Entry)
	// Drop removes the entry under key only while it is still exactly
	// stale (pointer identity): a validator that saw a dead entry can race
	// with a fresh Put from a concurrent solve, and must not evict the
	// fresh value.
	Drop(key string, stale *Entry)
	// Len reports the number of entries currently stored.
	Len() int
}

// Memory is the in-process LRU store (the engine's original result cache).
// The zero value is not usable; call NewMemory.
type Memory struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *memEntry
	m   map[string]*list.Element
}

type memEntry struct {
	key string
	val *Entry
}

// NewMemory returns an LRU store holding at most capacity entries
// (capacity must be positive).
func NewMemory(capacity int) *Memory {
	return &Memory{
		cap: capacity,
		ll:  list.New(),
		m:   map[string]*list.Element{},
	}
}

// Get implements Store.
func (s *Memory) Get(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*memEntry).val, true
}

// Put implements Store.
func (s *Memory) Put(key string, e *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*memEntry).val = e
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&memEntry{key: key, val: e})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*memEntry).key)
	}
}

// Drop implements Store.
func (s *Memory) Drop(key string, stale *Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok && el.Value.(*memEntry).val == stale {
		s.ll.Remove(el)
		delete(s.m, key)
	}
}

// Len implements Store.
func (s *Memory) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
