package resultcache_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/engine"
	"spq/internal/relation"
	"spq/internal/resultcache"
	"spq/internal/rng"
)

// Unit tests of the Memory LRU plus fleet tests of the Replicating store
// driven through real engines (the external test package exists so the
// fleet tests can import internal/engine without a cycle).

func TestMemoryLRU(t *testing.T) {
	m := resultcache.NewMemory(2)
	e1 := &resultcache.Entry{Table: "a", Version: 1}
	e2 := &resultcache.Entry{Table: "b", Version: 1}
	e3 := &resultcache.Entry{Table: "c", Version: 1}
	m.Put("k1", e1)
	m.Put("k2", e2)
	if got, ok := m.Get("k1"); !ok || got != e1 {
		t.Fatal("k1 missing after put")
	}
	// k1 is now most-recent; inserting k3 must evict k2.
	m.Put("k3", e3)
	if _, ok := m.Get("k2"); ok {
		t.Fatal("k2 survived eviction at capacity 2")
	}
	if _, ok := m.Get("k1"); !ok {
		t.Fatal("recently used k1 evicted")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}

	// Conditional drop: a stale pointer must not evict a fresh entry.
	fresh := &resultcache.Entry{Table: "a", Version: 2}
	m.Put("k1", fresh)
	m.Drop("k1", e1) // e1 is no longer the stored value
	if got, ok := m.Get("k1"); !ok || got != fresh {
		t.Fatal("conditional drop evicted a fresh entry")
	}
	m.Drop("k1", fresh)
	if _, ok := m.Get("k1"); ok {
		t.Fatal("matched drop left the entry behind")
	}
}

// --- fleet helpers ---

type catalog map[string]*relation.Relation

func (c catalog) Table(name string) (*relation.Relation, bool) {
	rel, ok := c[strings.ToLower(name)]
	return rel, ok
}

func newCatalog(t testing.TB, n int) catalog {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		gains[i] = dist.Normal{Mu: 0.5 + float64(i%5)*0.4, Sigma: 0.5 + float64(i%3)*0.5}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return catalog{"stocks": rel}
}

const testQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -5 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func coreOptions() *core.Options {
	return &core.Options{Seed: 1, ValidationM: 1000, InitialM: 10, IncrementM: 10, MaxM: 40}
}

// node is one spqd-shaped fleet member: engine + replicating store + HTTP.
type node struct {
	cat    catalog
	store  *resultcache.Replicating
	engine *engine.Engine
	srv    *httptest.Server
}

// newFleet builds k nodes over identical catalogs, fully peered (every
// node pushes to every other), mirroring `spqd -peers`.
func newFleet(t *testing.T, k, n int) []*node {
	t.Helper()
	nodes := make([]*node, k)
	for i := range nodes {
		nodes[i] = &node{cat: newCatalog(t, n)}
	}
	// Every node needs the others' URLs before its store exists, so bind
	// all listeners first (unstarted servers already own their ports).
	listeners := make([]*httptest.Server, k)
	peerURLs := make([]string, k)
	for i := range nodes {
		listeners[i] = httptest.NewUnstartedServer(nil)
		peerURLs[i] = "http://" + listeners[i].Listener.Addr().String()
	}
	for i, nd := range nodes {
		var peers []string
		for j, u := range peerURLs {
			if j != i {
				peers = append(peers, u)
			}
		}
		nd.store = resultcache.NewReplicating(resultcache.NewMemory(64), peers, nil)
		t.Cleanup(nd.store.Close)
		nd.engine = engine.New(nd.cat, &engine.Options{Parallelism: 1, ResultCache: nd.store})
		listeners[i].Config.Handler = nd.engine.Handler()
		listeners[i].Start()
		t.Cleanup(listeners[i].Close)
		nd.srv = listeners[i]
	}
	return nodes
}

func query(t *testing.T, nd *node) *engine.Result {
	t.Helper()
	res, err := nd.engine.Query(context.Background(), engine.Request{Query: testQuery, Options: coreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// waitReceived polls until the node's engine reports at least want
// replicated entries received.
func waitReceived(t *testing.T, nd *node, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for nd.engine.Stats().CacheReceived < want {
		if time.Now().After(deadline) {
			t.Fatalf("node never received %d replicated entries: %+v", want, nd.store.Counters())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicatedCacheHit: solve on node A, and the identical request on
// node B is a result-cache hit with the bit-identical solution — B never
// solves. Also asserts the push does not echo (B re-replicating A's entry
// back would loop forever in a real fleet).
func TestReplicatedCacheHit(t *testing.T) {
	nodes := newFleet(t, 2, 20)
	a, b := nodes[0], nodes[1]

	resA := query(t, a)
	if resA.ResultCacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	waitReceived(t, b, 1)

	resB := query(t, b)
	if !resB.ResultCacheHit {
		t.Fatal("replicated entry did not serve node B's identical request")
	}
	if resB.Feasible != resA.Feasible || resB.Objective != resA.Objective || !reflect.DeepEqual(resB.X, resA.X) {
		t.Fatalf("replicated result differs:\n got %v obj %v\nwant %v obj %v", resB.X, resB.Objective, resA.X, resA.Objective)
	}
	if got := b.engine.Stats(); got.ResultCacheHits != 1 {
		t.Fatalf("node B stats: %+v, want 1 result-cache hit", got)
	}

	// The hit must not have replicated back: A received nothing.
	time.Sleep(50 * time.Millisecond) // give an erroneous echo time to land
	if got := a.store.Counters().Received; got != 0 {
		t.Fatalf("echo: node A received %d entries for node B's hit", got)
	}
	// Repeat hits on B stay local (no re-materialization cost beyond the
	// first): the promoted entry serves directly.
	if res := query(t, b); !res.ResultCacheHit {
		t.Fatal("promoted entry lost")
	}
}

// TestReplicatedInvalidation: a replicated entry names the relation
// version it was solved against; when the receiving node's data moves on,
// the entry must die at validation, not serve a stale answer.
func TestReplicatedInvalidation(t *testing.T) {
	nodes := newFleet(t, 2, 20)
	a, b := nodes[0], nodes[1]

	query(t, a)
	waitReceived(t, b, 1)

	// Node B's relation changes (recomputed means bump the version).
	b.cat["stocks"].ComputeMeans(rng.NewSource(99), 300)

	resB := query(t, b)
	if resB.ResultCacheHit {
		t.Fatal("stale replicated entry served after the relation version moved")
	}
	if got := b.engine.Stats().ResultCacheHits; got != 0 {
		t.Fatalf("stats count a hit that should not exist: %d", got)
	}
}

// TestReplicationQueueOverflowIsLossy: pushes beyond the queue drop (and
// count) instead of blocking the solve path. Exercised directly against
// the store since overflowing it through real solves would be slow.
func TestReplicationQueueOverflowIsLossy(t *testing.T) {
	// A peer that never answers promptly: an unstarted server address
	// (connection refused) keeps the delivery worker churning on errors.
	dead := httptest.NewUnstartedServer(nil)
	peer := "http://" + dead.Listener.Addr().String()
	dead.Close()

	r := resultcache.NewReplicating(resultcache.NewMemory(4096), []string{peer}, nil)
	defer r.Close()
	for i := 0; i < 4096; i++ {
		r.Put(fmt.Sprintf("k%d", i), &resultcache.Entry{
			Table: "t", Version: 1, Wire: []byte(`{}`),
		})
	}
	c := r.Counters()
	if c.Dropped == 0 && c.PushErrors == 0 {
		t.Fatalf("4096 pushes to a dead peer neither dropped nor errored: %+v", c)
	}
	if r.Len() != 4096 {
		t.Fatalf("local store lost entries under push pressure: %d", r.Len())
	}
}
