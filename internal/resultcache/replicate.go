package resultcache

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the fleet-facing half of the package: Replicating wraps a
// Store and write-through-shares locally solved entries with peer daemons.
//
// The protocol is deliberately minimal — a push-only, best-effort gossip of
// one generation:
//
//	POST /v1/cache   {"entries":[{"key":..,"table":..,"version":..,"payload":..}]}
//	GET  /v1/cache   {"len":..,"replicated":..,"received":..,"push_errors":..,"dropped":..}
//
// Puts of locally computed entries enqueue a push to every configured peer;
// a background worker batches and delivers them off the solve path (a slow
// or dead peer can never block a query). Received entries are stored
// Wire-only and Remote-flagged, so they are never pushed onward (no echo,
// no flooding) and the receiving engine validates them against its own
// catalog — table name and relation version — before first use, exactly
// like a locally cached entry. Consistency needs no protocol: keys encode
// the full determinism domain, so two correct nodes can only ever replicate
// identical values under one key, and a node whose relation moved on simply
// drops the entry at validation time.
const (
	// PeerPath is the route peers push to; the daemon mounts Handler there.
	PeerPath = "/v1/cache"
	// maxPushBody bounds a received replication batch (defensive parity
	// with the engine's request-body cap, scaled for result payloads).
	maxPushBody = 16 << 20
	// pushBatch bounds entries per delivery; pushQueue bounds the backlog
	// (beyond it, pushes are dropped and counted — the cache is an
	// optimization, losing one replication never hurts correctness).
	pushBatch = 32
	pushQueue = 256
)

// wireEntry is one replicated entry on the wire.
type wireEntry struct {
	Key     string          `json:"key"`
	Table   string          `json:"table"`
	Version uint64          `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

type wireBatch struct {
	Entries []wireEntry `json:"entries"`
}

// Counters reports the replication traffic of a Replicating store; the
// engine folds it into GET /stats.
type Counters struct {
	// Replicated counts entries pushed out (per peer); Received counts
	// entries accepted from peers; PushErrors counts failed deliveries
	// (per peer, per batch); Dropped counts local pushes discarded because
	// the queue was full.
	Replicated int64
	Received   int64
	PushErrors int64
	Dropped    int64
}

// Replicating wraps an inner Store with write-through peer replication.
// Create with NewReplicating; Close releases the delivery worker.
type Replicating struct {
	inner Store
	peers []string
	hc    *http.Client

	// closeMu guards queue sends against Close: Put holds it shared while
	// sending, Close holds it exclusively while closing, so a straggler
	// solve goroutine finishing after shutdown drops its push instead of
	// panicking on the closed channel.
	closeMu sync.RWMutex
	closed  bool
	queue   chan wireEntry
	wg      sync.WaitGroup
	once    sync.Once

	replicated atomic.Int64
	received   atomic.Int64
	pushErrors atomic.Int64
	dropped    atomic.Int64
}

// NewReplicating wraps inner, pushing every locally stored entry to the
// peer base URLs (e.g. "http://node2:8723"; PeerPath is appended). An
// empty peer list makes a receive-only node — it serves pushes from peers
// that list it but originates none. hc may be nil (a 5s-timeout client is
// used).
func NewReplicating(inner Store, peers []string, hc *http.Client) *Replicating {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Second}
	}
	r := &Replicating{
		inner: inner,
		peers: append([]string(nil), peers...),
		hc:    hc,
		queue: make(chan wireEntry, pushQueue),
	}
	r.wg.Add(1)
	go r.deliver()
	return r
}

// Close stops the delivery worker after draining queued pushes. Puts
// arriving after Close still store locally; their replication is dropped.
func (r *Replicating) Close() {
	r.once.Do(func() {
		r.closeMu.Lock()
		r.closed = true
		close(r.queue)
		r.closeMu.Unlock()
	})
	r.wg.Wait()
}

// Get implements Store (local lookup only; peers push, we never pull).
func (r *Replicating) Get(key string) (*Entry, bool) { return r.inner.Get(key) }

// Drop implements Store.
func (r *Replicating) Drop(key string, stale *Entry) { r.inner.Drop(key, stale) }

// Len implements Store.
func (r *Replicating) Len() int { return r.inner.Len() }

// Put implements Store: store locally, then enqueue a push of the wire
// payload to every peer. Entries without a payload, Remote-flagged entries
// (received from a peer, or a local materialization of one), and stores on
// a peerless node replicate nothing.
func (r *Replicating) Put(key string, e *Entry) {
	r.inner.Put(key, e)
	if e == nil || e.Remote || len(e.Wire) == 0 || len(r.peers) == 0 {
		return
	}
	r.closeMu.RLock()
	defer r.closeMu.RUnlock()
	if r.closed {
		r.dropped.Add(1)
		return
	}
	select {
	case r.queue <- wireEntry{Key: key, Table: e.Table, Version: e.Version, Payload: e.Wire}:
	default:
		r.dropped.Add(1)
	}
}

// Counters snapshots the replication counters.
func (r *Replicating) Counters() Counters {
	return Counters{
		Replicated: r.replicated.Load(),
		Received:   r.received.Load(),
		PushErrors: r.pushErrors.Load(),
		Dropped:    r.dropped.Load(),
	}
}

// deliver drains the queue, batching adjacent pushes per delivery.
func (r *Replicating) deliver() {
	defer r.wg.Done()
	for we, ok := <-r.queue; ok; we, ok = <-r.queue {
		batch := wireBatch{Entries: []wireEntry{we}}
	drain:
		for len(batch.Entries) < pushBatch {
			select {
			case next, more := <-r.queue:
				if !more {
					break drain
				}
				batch.Entries = append(batch.Entries, next)
			default:
				break drain
			}
		}
		body, err := json.Marshal(batch)
		if err != nil {
			r.pushErrors.Add(1)
			continue
		}
		for _, peer := range r.peers {
			resp, err := r.hc.Post(peer+PeerPath, "application/json", bytes.NewReader(body))
			if err != nil {
				r.pushErrors.Add(1)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				r.pushErrors.Add(1)
				continue
			}
			r.replicated.Add(int64(len(batch.Entries)))
		}
	}
}

// Handler serves the peer endpoint: POST stores pushed entries
// (Wire-only, Remote-flagged), GET reports the store's replication
// counters. Mount it at PeerPath.
func (r *Replicating) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodPost:
			req.Body = http.MaxBytesReader(w, req.Body, maxPushBody)
			var batch wireBatch
			if err := json.NewDecoder(req.Body).Decode(&batch); err != nil {
				http.Error(w, `{"error":{"code":"bad_request","message":"bad cache push body"}}`, http.StatusBadRequest)
				return
			}
			accepted := 0
			for _, we := range batch.Entries {
				if we.Key == "" || we.Table == "" || len(we.Payload) == 0 {
					continue
				}
				r.inner.Put(we.Key, &Entry{
					Table:   we.Table,
					Version: we.Version,
					Wire:    []byte(we.Payload),
					Remote:  true,
				})
				accepted++
			}
			r.received.Add(int64(accepted))
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]int{"accepted": accepted})
		case http.MethodGet:
			c := r.Counters()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]int64{
				"len":         int64(r.Len()),
				"replicated":  c.Replicated,
				"received":    c.Received,
				"push_errors": c.PushErrors,
				"dropped":     c.Dropped,
			})
		default:
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, `{"error":{"code":"method_not_allowed","message":"GET or POST only"}}`, http.StatusMethodNotAllowed)
		}
	})
}
