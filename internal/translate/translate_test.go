package translate

import (
	"math"
	"testing"

	"spq/internal/dist"
	"spq/internal/milp"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/spaql"
)

// portfolioRelation builds a small Stock_Investments-like relation.
func portfolioRelation(t *testing.T, n int) *relation.Relation {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	vol := make([]float64, n)
	for i := range price {
		price[i] = float64(50 + 10*i)
		vol[i] = float64(i%3) / 10
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddDet("vol", vol); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{
		AttrID: 1,
		Dists:  []dist.Dist{dist.Normal{Mu: 1, Sigma: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(999), 100)
	return rel
}

func buildQuery(t *testing.T, src string, rel *relation.Relation) *SILP {
	t.Helper()
	q := spaql.MustParse(src)
	s, err := Build(q, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildPaperQuery(t *testing.T) {
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 200 AND
		SUM(gain) >= -10 WITH PROBABILITY >= 0.95
		MAXIMIZE EXPECTED SUM(gain)`, rel)
	if s.N != 6 {
		t.Fatalf("N = %d", s.N)
	}
	if len(s.DetCons) != 1 || len(s.ProbCons) != 1 {
		t.Fatalf("cons = %d det, %d prob", len(s.DetCons), len(s.ProbCons))
	}
	if !s.Maximize || s.ObjKind != ObjLinear {
		t.Fatalf("objective: max=%v kind=%v", s.Maximize, s.ObjKind)
	}
	// Objective coefficients are the means (exact: Normal(1,2) → 1).
	for i, c := range s.ObjCoefs {
		if c != 1 {
			t.Fatalf("objcoef[%d] = %v, want 1", i, c)
		}
	}
	pc := s.ProbCons[0]
	if !pc.Geq || pc.V != -10 || pc.P != 0.95 {
		t.Fatalf("prob con = %+v", pc)
	}
	if pc.Direction() != scenario.Min {
		t.Fatal("≥ inner constraint should summarize with Min")
	}
}

func TestBuildProbabilityLERewrite(t *testing.T) {
	rel := portfolioRelation(t, 4)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(gain) <= 5 WITH PROBABILITY <= 0.2`, rel)
	pc := s.ProbCons[0]
	// Pr(≤5) ≤ 0.2 ⇔ Pr(≥5) ≥ 0.8 (up to null boundary sets).
	if !pc.Geq || math.Abs(pc.P-0.8) > 1e-12 {
		t.Fatalf("rewritten con = %+v", pc)
	}
	if pc.Direction() != scenario.Min {
		t.Fatal("direction after rewrite should be Min")
	}
}

func TestBuildMinProbObjectiveNormalized(t *testing.T) {
	rel := portfolioRelation(t, 4)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) <= 3
		MINIMIZE PROBABILITY OF SUM(gain) >= 100`, rel)
	if !s.Maximize || s.ObjKind != ObjProbability || s.ObjGeq {
		t.Fatalf("normalized objective: max=%v kind=%v geq=%v", s.Maximize, s.ObjKind, s.ObjGeq)
	}
}

func TestBuildWhereFiltersRelation(t *testing.T) {
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks WHERE price <= 80
		SUCH THAT COUNT(*) >= 1`, rel)
	if s.N != 4 { // prices 50, 60, 70, 80
		t.Fatalf("filtered N = %d, want 4", s.N)
	}
}

func TestBuildWhereEmptyErrors(t *testing.T) {
	rel := portfolioRelation(t, 3)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM stocks WHERE price > 10000 SUCH THAT COUNT(*) >= 1`)
	if _, err := Build(q, rel, nil); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestBuildValidationFailure(t *testing.T) {
	rel := portfolioRelation(t, 3)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM stocks SUCH THAT SUM(gain) >= 0`)
	if _, err := Build(q, rel, nil); err == nil {
		t.Fatal("unvalidated stochastic constraint accepted")
	}
}

func TestDeriveBoundsFromCount(t *testing.T) {
	rel := portfolioRelation(t, 4)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) BETWEEN 2 AND 7`, rel)
	for i, hi := range s.VarHi {
		if hi != 7 {
			t.Fatalf("VarHi[%d] = %v, want 7 (from COUNT ≤ 7)", i, hi)
		}
	}
}

func TestDeriveBoundsFromBudget(t *testing.T) {
	rel := portfolioRelation(t, 4)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT SUM(price) <= 200`, rel)
	// price = 50,60,70,80 → bounds 4,3,2,2.
	want := []float64{4, 3, 2, 2}
	for i, hi := range s.VarHi {
		if hi != want[i] {
			t.Fatalf("VarHi[%d] = %v, want %v", i, hi, want[i])
		}
	}
}

func TestDeriveBoundsFromRepeat(t *testing.T) {
	rel := portfolioRelation(t, 3)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks REPEAT 0 SUCH THAT COUNT(*) >= 1`, rel)
	for i, hi := range s.VarHi {
		if hi != 1 {
			t.Fatalf("VarHi[%d] = %v, want 1 (REPEAT 0 = no duplicates)", i, hi)
		}
	}
}

func TestDeriveBoundsFallback(t *testing.T) {
	rel := portfolioRelation(t, 2)
	q := spaql.MustParse(`SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) >= 1`)
	s, err := Build(q, rel, &Options{MaxCopies: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i, hi := range s.VarHi {
		if hi != 25 {
			t.Fatalf("VarHi[%d] = %v, want fallback 25", i, hi)
		}
	}
}

func TestGenerateSetsShape(t *testing.T) {
	rel := portfolioRelation(t, 5)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(gain) >= -10 WITH PROBABILITY >= 0.9 AND COUNT(*) <= 4`, rel)
	src := rng.NewSource(1)
	sets, objSet, err := s.GenerateSets(src, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if objSet != nil {
		t.Fatal("no probability objective, objSet should be nil")
	}
	if len(sets) != 1 || sets[0].M() != 7 || sets[0].N != 5 {
		t.Fatalf("set shape: %d sets, M=%d N=%d", len(sets), sets[0].M(), sets[0].N)
	}
	// Inner-function values must match direct expression evaluation.
	for j := 0; j < 7; j++ {
		for i := 0; i < 5; i++ {
			want, err := ExprValue(src, rel, s.ProbCons[0].Expr, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if got := sets[0].Value(i, j); got != want {
				t.Fatalf("set[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestExtendSets(t *testing.T) {
	rel := portfolioRelation(t, 3)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(gain) >= 0 WITH PROBABILITY >= 0.9 AND COUNT(*) <= 2
		MAXIMIZE PROBABILITY OF SUM(gain) >= 1`, rel)
	src := rng.NewSource(2)
	sets, objSet, err := s.GenerateSets(src, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if objSet == nil {
		t.Fatal("probability objective should produce an objective set")
	}
	if err := s.ExtendSets(src, sets, objSet, 2); err != nil {
		t.Fatal(err)
	}
	if sets[0].M() != 5 || objSet.M() != 5 {
		t.Fatalf("extended sizes: %d, %d", sets[0].M(), objSet.M())
	}
	// Extension must equal direct generation at the same absolute indices.
	direct, directObj, _ := s.GenerateSets(src, 3, 2)
	for i := 0; i < 3; i++ {
		if sets[0].Value(i, 3) != direct[0].Value(i, 0) {
			t.Fatal("extended constraint set differs from direct generation")
		}
		if objSet.Value(i, 3) != directObj.Value(i, 0) {
			t.Fatal("extended objective set differs from direct generation")
		}
	}
}

func TestFormulateSAASizeComplexity(t *testing.T) {
	rel := portfolioRelation(t, 10)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 1 AND 5 AND
		SUM(gain) >= -10 WITH PROBABILITY >= 0.9`, rel)
	src := rng.NewSource(3)
	for _, M := range []int{5, 10, 20} {
		sets, _, err := s.GenerateSets(src, 0, M)
		if err != nil {
			t.Fatal(err)
		}
		model, vm, err := s.FormulateSAA(sets, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(vm.ConsY[0]) != M {
			t.Fatalf("M=%d: %d indicators", M, len(vm.ConsY[0]))
		}
		// Θ(NM): coefficient count must grow linearly with M.
		coefs := model.NumCoefficients()
		// N count-row coefs + M·(N+1 bigM) + M ones ≈ N + M(N+2).
		want := 10 + M*(10+2)
		if coefs != want {
			t.Fatalf("M=%d: coefficients = %d, want %d", M, coefs, want)
		}
	}
}

func TestFormulateCSASizeIndependentOfM(t *testing.T) {
	rel := portfolioRelation(t, 10)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 1 AND 5 AND
		SUM(gain) >= -10 WITH PROBABILITY >= 0.9`, rel)
	src := rng.NewSource(4)
	var sizes []int
	for _, M := range []int{10, 40} {
		sets, _, err := s.GenerateSets(src, 0, M)
		if err != nil {
			t.Fatal(err)
		}
		parts := sets[0].Partition(1, 7)
		chosen := sets[0].GreedyPick(parts[0], 0.5, scenario.Min, nil)
		sm := sets[0].Summarize(chosen, scenario.Min, nil)
		model, vm, err := s.FormulateCSA([][]*scenario.Summary{{sm}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(vm.ConsY[0]) != 1 {
			t.Fatalf("want 1 summary indicator, got %d", len(vm.ConsY[0]))
		}
		sizes = append(sizes, model.NumCoefficients())
	}
	if sizes[0] != sizes[1] {
		t.Fatalf("CSA size depends on M: %v", sizes)
	}
}

func TestSAAEndToEndSolve(t *testing.T) {
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 200 AND
		SUM(gain) >= -3 WITH PROBABILITY >= 0.6
		MAXIMIZE EXPECTED SUM(gain)`, rel)
	src := rng.NewSource(5)
	sets, _, err := s.GenerateSets(src, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	model, vm, err := s.FormulateSAA(sets, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := milp.Solve(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal && res.Status != milp.StatusFeasible {
		t.Fatalf("status = %v", res.Status)
	}
	pkg := vm.PackageOf(res.X)
	// Check the chance constraint holds on the optimization scenarios.
	need := int(math.Ceil(0.6 * 10))
	if got := sets[0].SatisfiedBy(pkg, allIdx(10), true, -3); got < need {
		t.Fatalf("package satisfies %d/10 scenarios, want ≥ %d", got, need)
	}
	// Budget constraint.
	price, _ := rel.Det("price")
	total := 0.0
	for i, x := range pkg {
		total += price[i] * x
	}
	if total > 200+1e-6 {
		t.Fatalf("budget violated: %v", total)
	}
}

func TestCSAMoreConservativeThanSAA(t *testing.T) {
	// A solution feasible for a CSA with α=1 must satisfy ALL scenarios of
	// the summarized set.
	rel := portfolioRelation(t, 5)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 1 AND 3 AND
		SUM(gain) >= -5 WITH PROBABILITY >= 0.7`, rel)
	src := rng.NewSource(6)
	sets, _, err := s.GenerateSets(src, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	parts := sets[0].Partition(1, 3)
	chosen := sets[0].GreedyPick(parts[0], 1.0, scenario.Min, nil)
	sm := sets[0].Summarize(chosen, scenario.Min, nil)
	model, vm, err := s.FormulateCSA([][]*scenario.Summary{{sm}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := milp.Solve(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Skipf("CSA infeasible on this draw (acceptable): %v", res.Status)
	}
	pkg := vm.PackageOf(res.X)
	if got := sets[0].SatisfiedBy(pkg, allIdx(8), true, -5); got != 8 {
		t.Fatalf("1.0-summary solution satisfies %d/8 scenarios, want all", got)
	}
}

func TestProbabilityObjectiveSAA(t *testing.T) {
	rel := portfolioRelation(t, 5)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		COUNT(*) BETWEEN 1 AND 3
		MAXIMIZE PROBABILITY OF SUM(gain) >= 0`, rel)
	src := rng.NewSource(7)
	sets, objSet, err := s.GenerateSets(src, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	model, vm, err := s.FormulateSAA(sets, objSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.ObjY) != 12 || vm.ObjDenom != 12 {
		t.Fatalf("objective indicators: %d, denom %v", len(vm.ObjY), vm.ObjDenom)
	}
	res, err := milp.Solve(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Objective = −fraction satisfied; must be in [−1, 0].
	if res.Obj < -1-1e-9 || res.Obj > 1e-9 {
		t.Fatalf("objective %v outside [-1, 0]", res.Obj)
	}
}

func TestFormulateSAAMismatchedSets(t *testing.T) {
	rel := portfolioRelation(t, 3)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(gain) >= 0 WITH PROBABILITY >= 0.9 AND COUNT(*) <= 2`, rel)
	if _, _, err := s.FormulateSAA(nil, nil); err == nil {
		t.Fatal("expected error for missing scenario sets")
	}
}

func TestFormulateCSAMissingObjSummaries(t *testing.T) {
	rel := portfolioRelation(t, 3)
	s := buildQuery(t, `SELECT PACKAGE(*) FROM stocks SUCH THAT COUNT(*) <= 2
		MAXIMIZE PROBABILITY OF SUM(gain) >= 1`, rel)
	if _, _, err := s.FormulateCSA([][]*scenario.Summary{}, nil); err == nil {
		t.Fatal("expected error for missing objective summaries")
	}
}

func TestPackageOfRounds(t *testing.T) {
	vm := &VarMap{X: []int{0, 1, 2}}
	pkg := vm.PackageOf([]float64{0.9999999, 2.0000001, 0})
	if pkg[0] != 1 || pkg[1] != 2 || pkg[2] != 0 {
		t.Fatalf("pkg = %v", pkg)
	}
}

func allIdx(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}
