package translate

import (
	"math"
	"testing"

	"spq/internal/milp"
	"spq/internal/rng"
	"spq/internal/spaql"
)

// Tests for general-form (filtered) aggregates flowing through translation.

func TestFilteredDeterministicConstraintMasksCoefficients(t *testing.T) {
	rel := portfolioRelation(t, 6) // vol = i%3 / 10
	s := buildQuery(t, `SELECT PACKAGE(*) AS P FROM stocks SUCH THAT
		(SELECT SUM(price) WHERE vol >= 0.2 FROM P) <= 100`, rel)
	c := s.DetCons[0]
	vol, _ := rel.Det("vol")
	price, _ := rel.Det("price")
	for i := range c.Coefs {
		want := 0.0
		if vol[i] >= 0.2 {
			want = price[i]
		}
		if c.Coefs[i] != want {
			t.Fatalf("coef[%d] = %v, want %v", i, c.Coefs[i], want)
		}
	}
}

func TestFilteredProbConstraintMask(t *testing.T) {
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) AS P FROM stocks SUCH THAT
		(SELECT SUM(gain) WHERE vol >= 0.2 FROM P) >= -5 WITH PROBABILITY >= 0.9`, rel)
	pc := s.ProbCons[0]
	if pc.Mask == nil {
		t.Fatal("mask not built")
	}
	vol, _ := rel.Det("vol")
	for i, m := range pc.Mask {
		if m != (vol[i] >= 0.2) {
			t.Fatalf("mask[%d] = %v for vol %v", i, m, vol[i])
		}
	}
	if !pc.Included(2) || pc.Included(0) {
		t.Fatalf("Included wrong: vol=%v", vol)
	}
	// Generated scenario rows must be zero at masked-out tuples.
	sets, _, err := s.GenerateSets(rng.NewSource(1), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for i := range pc.Mask {
			v := sets[0].Value(i, j)
			if !pc.Mask[i] && v != 0 {
				t.Fatalf("masked tuple %d has nonzero scenario value %v", i, v)
			}
			if pc.Mask[i] && v == 0 {
				t.Fatalf("unmasked tuple %d unexpectedly zero", i)
			}
		}
	}
}

func TestFilteredObjective(t *testing.T) {
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) AS P FROM stocks SUCH THAT COUNT(*) <= 3
		MAXIMIZE EXPECTED (SELECT SUM(gain) WHERE vol >= 0.2 FROM P)`, rel)
	vol, _ := rel.Det("vol")
	for i, c := range s.ObjCoefs {
		if vol[i] < 0.2 && c != 0 {
			t.Fatalf("objective coef %d = %v for filtered-out tuple", i, c)
		}
		if vol[i] >= 0.2 && c == 0 {
			t.Fatalf("objective coef %d zero for included tuple", i)
		}
	}
}

func TestFilteredCountConstraintSolvesCorrectly(t *testing.T) {
	// COUNT of high-volatility tuples ≤ 1, but total count must be 3:
	// the solver must take at most 1 high-vol tuple.
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) AS P FROM stocks REPEAT 0 SUCH THAT
		COUNT(*) = 3 AND
		(SELECT COUNT(*) WHERE vol >= 0.2 FROM P) <= 1
		MAXIMIZE EXPECTED SUM(gain)`, rel)
	sets, objSet, err := s.GenerateSets(rng.NewSource(2), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, vm, err := s.FormulateSAA(sets, objSet)
	if err != nil {
		t.Fatal(err)
	}
	res, err := milp.Solve(model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	pkg := vm.PackageOf(res.X)
	vol, _ := rel.Det("vol")
	total, highVol := 0.0, 0.0
	for i, x := range pkg {
		total += x
		if vol[i] >= 0.2 {
			highVol += x
		}
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("total count = %v, want 3", total)
	}
	if highVol > 1+1e-9 {
		t.Fatalf("high-volatility count = %v, want ≤ 1", highVol)
	}
}

func TestFilterOverWhereFilteredRelation(t *testing.T) {
	// The aggregate filter is evaluated on the relation AFTER the query
	// WHERE clause removed tuples.
	rel := portfolioRelation(t, 6)
	s := buildQuery(t, `SELECT PACKAGE(*) AS P FROM stocks WHERE price >= 70 SUCH THAT
		(SELECT SUM(gain) WHERE vol >= 0.2 FROM P) >= 0 WITH PROBABILITY >= 0.5`, rel)
	if s.N != 4 { // prices 70,80,90,100
		t.Fatalf("N = %d", s.N)
	}
	if len(s.ProbCons[0].Mask) != 4 {
		t.Fatalf("mask length %d, want view length 4", len(s.ProbCons[0].Mask))
	}
}

func TestExprEqualHelper(t *testing.T) {
	a := spaql.LinExpr{Terms: []spaql.Term{{Coef: 2, Attr: "x"}, {Coef: 1, Attr: "y"}}}
	b := spaql.LinExpr{Terms: []spaql.Term{{Coef: 1, Attr: "y"}, {Coef: 2, Attr: "x"}}}
	if !ExprEqual(a, b) {
		t.Fatal("order should not matter")
	}
	c := spaql.LinExpr{Terms: []spaql.Term{{Coef: 1, Attr: "x"}, {Coef: 1, Attr: "x"}, {Coef: 1, Attr: "y"}}}
	if !ExprEqual(a, c) {
		t.Fatal("duplicate terms should combine")
	}
	d := spaql.LinExpr{Terms: []spaql.Term{{Coef: 2, Attr: "x"}}}
	if ExprEqual(a, d) {
		t.Fatal("different attrs should differ")
	}
	e := spaql.LinExpr{Terms: a.Terms, Const: 1}
	if ExprEqual(a, e) {
		t.Fatal("different consts should differ")
	}
	zero := spaql.LinExpr{Terms: []spaql.Term{{Coef: 0, Attr: "z"}, {Coef: 2, Attr: "x"}, {Coef: 1, Attr: "y"}}}
	if !ExprEqual(a, zero) {
		t.Fatal("zero-coefficient terms should be ignored")
	}
}
