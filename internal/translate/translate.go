// Package translate lowers a validated sPaQL query over a Monte Carlo
// relation into the canonical stochastic ILP of §2.3 (type SILP), and builds
// the two deterministic approximations the paper studies:
//
//   - FormulateSAA — the sample-average approximation DILP of §3.1, with one
//     indicator variable per scenario per probabilistic constraint and the
//     counting constraint Σy_j ≥ ⌈pM⌉ (size Θ(NMK));
//   - FormulateCSA — the conservative summary approximation of §4.1, with
//     one indicator per summary and Σy_z ≥ ⌈pZ⌉ (size Θ(NZK)).
//
// It also derives finite decision-variable bounds from the query's
// deterministic structure (REPEAT, COUNT, positive-coefficient budget
// constraints), which both solvers need for valid big-M linearization.
package translate

import (
	"context"
	"errors"
	"fmt"
	"math"

	"spq/internal/milp"
	"spq/internal/par"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/scenario"
	"spq/internal/spaql"
	"spq/internal/stream"
)

// LinearCon is a deterministic or expectation constraint in per-tuple
// coefficient form: Lo ≤ Σ Coefs[i]·x_i ≤ Hi.
type LinearCon struct {
	Name  string
	Coefs []float64
	Lo    float64
	Hi    float64
}

// ProbCon is a normalized probabilistic constraint
// Pr(Σ f(t_i)·x_i ⊙ V) ≥ P with ⊙ = ≥ when Geq, ≤ otherwise.
type ProbCon struct {
	Name string
	Expr spaql.LinExpr
	Geq  bool
	V    float64
	P    float64
	// Mask marks the tuples the aggregate ranges over (PaQL general-form
	// filter); nil means all tuples.
	Mask []bool
}

// Included reports whether tuple i participates in the constraint.
func (c *ProbCon) Included(i int) bool { return c.Mask == nil || c.Mask[i] }

// Direction returns the conservative summary direction for the constraint
// (Proposition 1: Min for ≥ inner constraints, Max for ≤).
func (c *ProbCon) Direction() scenario.Direction {
	if c.Geq {
		return scenario.Min
	}
	return scenario.Max
}

// ObjKind describes the canonicalized objective.
type ObjKind int

const (
	// ObjNone is a pure feasibility problem.
	ObjNone ObjKind = iota
	// ObjLinear minimizes/maximizes Σ c_i·x_i with deterministic c_i
	// (expectations already folded into the coefficients, §2.3).
	ObjLinear
	// ObjProbability maximizes Pr(Σ f(t_i)·x_i ⊙ V) (minimization is
	// normalized away by complementing the inner constraint).
	ObjProbability
)

// SILP is the canonical stochastic ILP for a query (§2.3): objective plus
// deterministic/expectation constraints and probabilistic constraints, with
// derived finite variable bounds.
type SILP struct {
	Query *spaql.Query
	// Rel is the relation after applying the WHERE clause.
	Rel *relation.Relation
	N   int

	Maximize bool
	ObjKind  ObjKind
	// ObjCoefs is the per-tuple objective coefficient vector for ObjLinear.
	ObjCoefs []float64
	// ObjExpr/ObjGeq/ObjV define the inner constraint for ObjProbability.
	ObjExpr spaql.LinExpr
	ObjGeq  bool
	ObjV    float64

	// ObjMask marks tuples the objective aggregate ranges over; nil = all.
	ObjMask []bool

	DetCons  []LinearCon
	ProbCons []ProbCon

	// VarLo/VarHi are the derived multiplicity bounds for each tuple.
	VarLo []float64
	VarHi []float64
}

// Options tune the translation.
type Options struct {
	// MaxCopies caps tuple multiplicity when the query itself implies no
	// finite bound; indicator big-M derivation requires finite bounds.
	// Default 1000.
	MaxCopies int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxCopies == 0 {
		out.MaxCopies = 1000
	}
	return out
}

// applyMask zeroes values at tuples excluded by a general-form aggregate
// filter (nil mask = keep everything).
func applyMask(vals []float64, mask []bool) {
	if mask == nil {
		return
	}
	for i := range vals {
		if !mask[i] {
			vals[i] = 0
		}
	}
}

// exprColumn evaluates a linear expression per tuple using deterministic
// columns and (for stochastic attributes) cached means.
func exprColumn(rel *relation.Relation, e spaql.LinExpr) ([]float64, error) {
	out := make([]float64, rel.N())
	for i := range out {
		out[i] = e.Const
	}
	for _, t := range e.Terms {
		col, err := rel.Means(t.Attr)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] += t.Coef * col[i]
		}
	}
	return out, nil
}

// ExprRealize fills out with the realized per-tuple inner-function values
// Σ coef·attr + const for one scenario: stochastic attributes are realized
// under src, deterministic attributes use their column values.
func ExprRealize(src rng.Source, rel *relation.Relation, e spaql.LinExpr, scenarioID int, out []float64) error {
	for i := range out {
		out[i] = e.Const
	}
	buf := make([]float64, rel.N())
	for _, t := range e.Terms {
		if err := rel.Realize(src, t.Attr, scenarioID, buf); err != nil {
			return err
		}
		for i := range out {
			out[i] += t.Coef * buf[i]
		}
	}
	return nil
}

// ExprEqual reports whether two linear expressions denote the same function
// (terms combined and compared attribute-wise). It is used to classify
// probabilistic constraints as supporting/counteracting an objective
// (Definition 2), which requires the same inner random variables.
func ExprEqual(a, b spaql.LinExpr) bool {
	norm := func(e spaql.LinExpr) map[string]float64 {
		m := map[string]float64{}
		for _, t := range e.Terms {
			m[t.Attr] += t.Coef
		}
		for k, v := range m {
			if v == 0 {
				delete(m, k)
			}
		}
		return m
	}
	na, nb := norm(a), norm(b)
	if a.Const != b.Const || len(na) != len(nb) {
		return false
	}
	for k, v := range na {
		if nb[k] != v {
			return false
		}
	}
	return true
}

// ExprValue returns the realized inner-function value for one tuple in one
// scenario.
func ExprValue(src rng.Source, rel *relation.Relation, e spaql.LinExpr, tuple, scenarioID int) (float64, error) {
	v := e.Const
	for _, t := range e.Terms {
		av, err := rel.Value(src, t.Attr, tuple, scenarioID)
		if err != nil {
			return 0, err
		}
		v += t.Coef * av
	}
	return v, nil
}

// Build validates and lowers a query against a relation. Means for
// stochastic attributes referenced by EXPECTED clauses or expectation
// objectives must have been computed (relation.ComputeMeans) beforehand.
func Build(q *spaql.Query, rel *relation.Relation, o *Options) (*SILP, error) {
	opts := o.withDefaults()
	if err := q.Validate(rel); err != nil {
		return nil, err
	}
	if q.Where != nil {
		// Predicate pushdown: scan the referenced deterministic columns
		// block-by-block (no promotion of lazy columns, no scenario
		// generation) and gather only the surviving tuples into the view.
		attrs := q.Where.Attrs(nil)
		kept, err := stream.Filter(rel, attrs, func(get func(string) float64) bool {
			return q.Where.Eval(get)
		}, 0)
		if err != nil {
			return nil, err
		}
		rel = rel.SelectIndices(kept)
	}
	n := rel.N()
	if n == 0 {
		return nil, errors.New("translate: no tuples satisfy the WHERE clause")
	}
	s := &SILP{Query: q, Rel: rel, N: n}

	// filterMask evaluates a PaQL general-form aggregate filter over the
	// (already WHERE-filtered) relation's deterministic columns, block-wise.
	filterMask := func(f spaql.BoolExpr) ([]bool, error) {
		if f == nil {
			return nil, nil
		}
		return stream.MaskOf(rel, f.Attrs(nil), f.Eval, 0)
	}

	for i, c := range q.Constraints {
		name := fmt.Sprintf("c%d", i+1)
		mask, err := filterMask(c.Filter)
		if err != nil {
			return nil, fmt.Errorf("translate: constraint %d filter: %w", i+1, err)
		}
		if c.Prob != nil {
			pc := ProbCon{Name: name, Expr: c.Expr, V: c.Value, Geq: c.Op == spaql.OpGE, P: c.Prob.P, Mask: mask}
			if c.Prob.Op == spaql.OpLE {
				// Pr(inner) ≤ p  ⇔  Pr(¬inner) ≥ 1−p (§2.3).
				pc.Geq = !pc.Geq
				pc.P = 1 - pc.P
			}
			s.ProbCons = append(s.ProbCons, pc)
			continue
		}
		coefs, err := exprColumn(rel, c.Expr)
		if err != nil {
			return nil, fmt.Errorf("translate: constraint %d: %w", i+1, err)
		}
		applyMask(coefs, mask)
		lc := LinearCon{Name: name, Coefs: coefs, Lo: math.Inf(-1), Hi: math.Inf(1)}
		switch {
		case c.Between:
			lc.Lo, lc.Hi = c.Lo, c.Hi
		default:
			switch c.Op {
			case spaql.OpLE, spaql.OpLT:
				lc.Hi = c.Value
			case spaql.OpGE, spaql.OpGT:
				lc.Lo = c.Value
			case spaql.OpEQ:
				lc.Lo, lc.Hi = c.Value, c.Value
			default:
				return nil, fmt.Errorf("translate: constraint %d: operator %v not supported in package constraints", i+1, c.Op)
			}
		}
		s.DetCons = append(s.DetCons, lc)
	}

	if obj := q.Objective; obj != nil {
		s.Maximize = obj.Sense == spaql.Maximize
		mask, err := filterMask(obj.Filter)
		if err != nil {
			return nil, fmt.Errorf("translate: objective filter: %w", err)
		}
		s.ObjMask = mask
		switch obj.Kind {
		case spaql.ObjCount, spaql.ObjDeterministic, spaql.ObjExpected:
			coefs, err := exprColumn(rel, obj.Expr)
			if err != nil {
				return nil, fmt.Errorf("translate: objective: %w", err)
			}
			applyMask(coefs, mask)
			s.ObjKind = ObjLinear
			s.ObjCoefs = coefs
			// Keep the source expression: the approximation-bound machinery
			// (§5.4) probes the inner function's realized value range.
			s.ObjExpr = obj.Expr
		case spaql.ObjProbability:
			s.ObjKind = ObjProbability
			s.ObjExpr = obj.Expr
			s.ObjGeq = obj.Op == spaql.OpGE || obj.Op == spaql.OpGT
			s.ObjV = obj.Value
			if !s.Maximize {
				// min Pr(inner) = 1 − max Pr(¬inner): normalize to a
				// maximization of the complemented inner constraint.
				s.ObjGeq = !s.ObjGeq
				s.Maximize = true
			}
		}
	}

	s.deriveBounds(opts.MaxCopies)
	return s, nil
}

// deriveBounds computes finite per-tuple multiplicity bounds from REPEAT,
// COUNT upper bounds and positive-coefficient ≤-budget constraints.
func (s *SILP) deriveBounds(maxCopies int) {
	n := s.N
	s.VarLo = make([]float64, n)
	s.VarHi = make([]float64, n)
	cap := math.Inf(1)
	if s.Query.Repeat >= 0 {
		// REPEAT l allows l extra duplicates: at most l+1 copies (§2.1).
		cap = float64(s.Query.Repeat + 1)
	}
	for i := range s.VarHi {
		s.VarHi[i] = cap
	}
	for _, c := range s.DetCons {
		if math.IsInf(c.Hi, 1) {
			continue
		}
		// A budget row Σ a_i·x_i ≤ B with all a_i > 0 implies x_i ≤ B/a_i.
		allPos := true
		for _, a := range c.Coefs {
			if a <= 0 {
				allPos = false
				break
			}
		}
		if !allPos || c.Hi < 0 {
			continue
		}
		for i, a := range c.Coefs {
			if b := math.Floor(c.Hi / a); b < s.VarHi[i] {
				s.VarHi[i] = b
			}
		}
	}
	for i := range s.VarHi {
		if math.IsInf(s.VarHi[i], 1) || s.VarHi[i] > float64(maxCopies) {
			s.VarHi[i] = float64(maxCopies)
		}
		if s.VarHi[i] < 0 {
			s.VarHi[i] = 0
		}
	}
}

// VarMap records how model variables map back to the query: X lists the
// tuple-multiplicity variable indices, ConsY the indicator variables per
// probabilistic constraint, ObjY the objective indicator variables, and
// ObjDenom the divisor converting the objective indicator count into a
// probability estimate.
type VarMap struct {
	X        []int
	ConsY    [][]int
	ObjY     []int
	ObjDenom float64
}

// PackageOf extracts the tuple multiplicities from a solver solution.
func (vm *VarMap) PackageOf(x []float64) []float64 {
	out := make([]float64, len(vm.X))
	for i, j := range vm.X {
		out[i] = math.Round(x[j])
	}
	return out
}

// addCommon builds the x variables, the objective, and the deterministic
// rows shared by SAA and CSA formulations.
func (s *SILP) addCommon(m *milp.Model) *VarMap {
	vm := &VarMap{X: make([]int, s.N)}
	for i := 0; i < s.N; i++ {
		obj := 0.0
		if s.ObjKind == ObjLinear {
			obj = s.ObjCoefs[i]
			if s.Maximize {
				obj = -obj
			}
		}
		vm.X[i] = m.AddVar(s.VarLo[i], s.VarHi[i], obj, true, fmt.Sprintf("x%d", i))
	}
	for _, c := range s.DetCons {
		idxs := make([]int, 0, s.N)
		coefs := make([]float64, 0, s.N)
		for i, a := range c.Coefs {
			if a != 0 {
				idxs = append(idxs, vm.X[i])
				coefs = append(coefs, a)
			}
		}
		m.AddRow(idxs, coefs, c.Lo, c.Hi)
	}
	return vm
}

// addIndicator adds one scenario/summary indicator for a probabilistic
// inner constraint over realized values.
func addIndicator(m *milp.Model, vm *VarMap, vals []float64, geq bool, v float64, name string) int {
	y := m.AddBinary(0, name)
	idxs := make([]int, 0, len(vals))
	coefs := make([]float64, 0, len(vals))
	for i, a := range vals {
		if a != 0 {
			idxs = append(idxs, vm.X[i])
			coefs = append(coefs, a)
		}
	}
	if geq {
		m.AddIndicatorGE(y, idxs, coefs, v)
	} else {
		m.AddIndicatorLE(y, idxs, coefs, v)
	}
	return y
}

// FormulateSAA builds the SAA_{Q,M} DILP of §3.1. sets must hold one
// scenario set of realized inner-function values per probabilistic
// constraint (aligned with s.ProbCons); objSet is required iff the objective
// is probabilistic and supplies its inner-function realizations.
func (s *SILP) FormulateSAA(sets []*scenario.Set, objSet *scenario.Set) (*milp.Model, *VarMap, error) {
	if len(sets) != len(s.ProbCons) {
		return nil, nil, fmt.Errorf("translate: got %d scenario sets for %d probabilistic constraints", len(sets), len(s.ProbCons))
	}
	m := milp.NewModel()
	vm := s.addCommon(m)
	for k, pc := range s.ProbCons {
		set := sets[k]
		ys := make([]int, set.M())
		for j := 0; j < set.M(); j++ {
			ys[j] = addIndicator(m, vm, set.Row(j), pc.Geq, pc.V, fmt.Sprintf("y_%s_%d", pc.Name, j))
		}
		need := math.Ceil(pc.P * float64(set.M()))
		ones := make([]float64, len(ys))
		for i := range ones {
			ones[i] = 1
		}
		m.AddRow(ys, ones, need, milp.Inf)
		vm.ConsY = append(vm.ConsY, ys)
	}
	if s.ObjKind == ObjProbability {
		if objSet == nil {
			return nil, nil, errors.New("translate: probability objective requires an objective scenario set")
		}
		vm.ObjDenom = float64(objSet.M())
		for j := 0; j < objSet.M(); j++ {
			// Maximize the satisfied fraction: each indicator contributes
			// −1/M to the canonical minimization objective.
			y := addIndicator(m, vm, objSet.Row(j), s.ObjGeq, s.ObjV, fmt.Sprintf("yobj_%d", j))
			m.SetObj(y, -1/vm.ObjDenom)
			vm.ObjY = append(vm.ObjY, y)
		}
	}
	return m, vm, nil
}

// FormulateCSA builds the CSA_{Q,M,Z} reduced DILP of §4.1: summaries
// replace scenarios. summaries must hold, per probabilistic constraint, the
// Z α-summaries of its partitions; objSummaries (may be nil when the
// objective is not probabilistic) replace the objective scenario set.
func (s *SILP) FormulateCSA(summaries [][]*scenario.Summary, objSummaries []*scenario.Summary) (*milp.Model, *VarMap, error) {
	if len(summaries) != len(s.ProbCons) {
		return nil, nil, fmt.Errorf("translate: got %d summary groups for %d probabilistic constraints", len(summaries), len(s.ProbCons))
	}
	m := milp.NewModel()
	vm := s.addCommon(m)
	for k, pc := range s.ProbCons {
		group := summaries[k]
		if len(group) == 0 {
			return nil, nil, fmt.Errorf("translate: constraint %s has no summaries", pc.Name)
		}
		ys := make([]int, len(group))
		for z, sm := range group {
			ys[z] = addIndicator(m, vm, sm.Values, pc.Geq, pc.V, fmt.Sprintf("y_%s_z%d", pc.Name, z))
		}
		need := math.Ceil(pc.P * float64(len(group)))
		ones := make([]float64, len(ys))
		for i := range ones {
			ones[i] = 1
		}
		m.AddRow(ys, ones, need, milp.Inf)
		vm.ConsY = append(vm.ConsY, ys)
	}
	if s.ObjKind == ObjProbability {
		if len(objSummaries) == 0 {
			return nil, nil, errors.New("translate: probability objective requires objective summaries")
		}
		vm.ObjDenom = float64(len(objSummaries))
		for z, sm := range objSummaries {
			y := addIndicator(m, vm, sm.Values, s.ObjGeq, s.ObjV, fmt.Sprintf("yobj_z%d", z))
			m.SetObj(y, -1/vm.ObjDenom)
			vm.ObjY = append(vm.ObjY, y)
		}
	}
	return m, vm, nil
}

// realizeRows materializes rows for absolute scenario indices
// [first, first+m) of one inner-function expression, sharding scenarios
// across workers. Each row is a pure function of its scenario coordinate, so
// the result is identical for any worker count.
func (s *SILP) realizeRows(ctx context.Context, src rng.Source, e spaql.LinExpr, mask []bool, first, m, workers int) ([][]float64, error) {
	rows := make([][]float64, m)
	err := par.Ranges(ctx, m, workers, func(_, lo, hi int) error {
		for j := lo; j < hi; j++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			row := make([]float64, s.N)
			if err := ExprRealize(src, s.Rel, e, first+j, row); err != nil {
				return err
			}
			applyMask(row, mask)
			rows[j] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// GenerateSets materializes scenario sets of inner-function values for every
// probabilistic constraint (and the probability objective, returned second),
// covering absolute scenario indices [first, first+m).
func (s *SILP) GenerateSets(src rng.Source, first, m int) ([]*scenario.Set, *scenario.Set, error) {
	return s.GenerateSetsP(context.Background(), src, first, m, 1)
}

// GenerateSetsP is GenerateSets with scenario generation sharded across
// workers and cancellation via ctx; results are identical to the sequential
// path for any worker count.
func (s *SILP) GenerateSetsP(ctx context.Context, src rng.Source, first, m, workers int) ([]*scenario.Set, *scenario.Set, error) {
	sets := make([]*scenario.Set, len(s.ProbCons))
	for k, pc := range s.ProbCons {
		rows, err := s.realizeRows(ctx, src, pc.Expr, pc.Mask, first, m, workers)
		if err != nil {
			return nil, nil, err
		}
		set := scenario.FromRows(pc.Name, nil, nil)
		for j, row := range rows {
			set.AppendRow(first+j, row)
		}
		sets[k] = set
	}
	var objSet *scenario.Set
	if s.ObjKind == ObjProbability {
		rows, err := s.realizeRows(ctx, src, s.ObjExpr, s.ObjMask, first, m, workers)
		if err != nil {
			return nil, nil, err
		}
		objSet = scenario.FromRows("objective", nil, nil)
		for j, row := range rows {
			objSet.AppendRow(first+j, row)
		}
	}
	return sets, objSet, nil
}

// cursorFor binds one inner-function expression to a streaming cursor.
func (s *SILP) cursorFor(name string, src rng.Source, e spaql.LinExpr, mask []bool, block int) *stream.ScenarioCursor {
	terms := make([]stream.Term, len(e.Terms))
	for i, t := range e.Terms {
		terms[i] = stream.Term{Coef: t.Coef, Attr: t.Attr}
	}
	return &stream.ScenarioCursor{
		Name:  name,
		Src:   src,
		Rel:   s.Rel,
		Const: e.Const,
		Terms: terms,
		Mask:  mask,
		Block: block,
	}
}

// ConsCursor returns a streaming scenario cursor for probabilistic
// constraint k: realizations are produced block-wise on demand instead of
// materialized into a scenario set, and are bit-identical to the rows
// GenerateSetsP would build (same coordinates, same term order, same mask
// semantics). block ≤ 0 uses the stream default.
func (s *SILP) ConsCursor(k int, src rng.Source, block int) *stream.ScenarioCursor {
	pc := &s.ProbCons[k]
	return s.cursorFor(pc.Name, src, pc.Expr, pc.Mask, block)
}

// ObjCursor returns the streaming cursor for a probability objective's inner
// function, or nil when the objective is not probabilistic.
func (s *SILP) ObjCursor(src rng.Source, block int) *stream.ScenarioCursor {
	if s.ObjKind != ObjProbability {
		return nil
	}
	return s.cursorFor("objective", src, s.ObjExpr, s.ObjMask, block)
}

// ExtendSets appends m more scenarios to previously generated sets.
func (s *SILP) ExtendSets(src rng.Source, sets []*scenario.Set, objSet *scenario.Set, m int) error {
	return s.ExtendSetsP(context.Background(), src, sets, objSet, m, 1)
}

// ExtendSetsP is ExtendSets with scenario generation sharded across workers
// and cancellation via ctx.
func (s *SILP) ExtendSetsP(ctx context.Context, src rng.Source, sets []*scenario.Set, objSet *scenario.Set, m, workers int) error {
	for k, pc := range s.ProbCons {
		set := sets[k]
		first := 0
		if set.M() > 0 {
			first = set.IDs[set.M()-1] + 1
		}
		rows, err := s.realizeRows(ctx, src, pc.Expr, pc.Mask, first, m, workers)
		if err != nil {
			return err
		}
		for j, row := range rows {
			set.AppendRow(first+j, row)
		}
	}
	if objSet != nil {
		first := 0
		if objSet.M() > 0 {
			first = objSet.IDs[objSet.M()-1] + 1
		}
		rows, err := s.realizeRows(ctx, src, s.ObjExpr, s.ObjMask, first, m, workers)
		if err != nil {
			return err
		}
		for j, row := range rows {
			objSet.AppendRow(first+j, row)
		}
	}
	return nil
}
