package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/translate"
)

// degradeOptions is the fault-injection lever: a near-zero Epsilon keeps
// SummarySearch iterating long past its first feasible candidate (the gap
// can never reach 1e-9) and the enormous MaxM removes the scenario ceiling,
// so the only thing that can stop the evaluation is a budget. Any tight
// deadline then has to surface the anytime incumbent, not converge.
func degradeOptions(parallelism int) *core.Options {
	return &core.Options{
		Seed:        1,
		ValidationM: 2000,
		InitialM:    10,
		IncrementM:  10,
		MaxM:        1 << 20,
		Epsilon:     1e-9,
		Parallelism: parallelism,
	}
}

// TestEngineDeadlineDegradation is the fault-injection test: an effectively
// unbounded evaluation under a tight request deadline must come back as a
// degraded feasible package — not a timeout error — at every worker count,
// and the package must re-validate bit-identically under the standalone
// out-of-sample validation protocol (the snapshot check).
func TestEngineDeadlineDegradation(t *testing.T) {
	cat := newCatalog(t, 40)
	for _, workers := range []int{1, 2, 8} {
		e := New(cat, &Options{Parallelism: workers})
		opts := degradeOptions(workers)
		res, err := e.Query(context.Background(), Request{
			Query:   testQuery,
			Timeout: 400 * time.Millisecond,
			Options: opts,
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v, want degraded result", workers, err)
		}
		if !res.Degraded {
			t.Fatalf("workers=%d: result not marked degraded (m=%d, total=%v)", workers, res.M, res.TotalTime)
		}
		if !res.Feasible {
			t.Fatalf("workers=%d: degraded result infeasible", workers)
		}
		if len(res.Multiplicities()) == 0 {
			t.Fatalf("workers=%d: degraded result has an empty package", workers)
		}
		if math.IsInf(res.EpsUpper, 0) || math.IsNaN(res.EpsUpper) {
			t.Fatalf("workers=%d: degraded result has no finite gap: %v", workers, res.EpsUpper)
		}

		// Snapshot validation: rebuild the SILP from the parsed query and
		// the filtered relation the package indexes, and re-run the §3.2
		// out-of-sample validation standalone. The incumbent was adopted
		// from a validation round with these exact options, so feasibility,
		// objective, and surpluses must reproduce exactly.
		silp, err := translate.Build(res.Query, res.Rel, nil)
		if err != nil {
			t.Fatalf("workers=%d: rebuild SILP: %v", workers, err)
		}
		val, err := core.Validate(context.Background(), silp, res.X, degradeOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: re-validate: %v", workers, err)
		}
		if !val.Feasible {
			t.Fatalf("workers=%d: degraded package fails re-validation", workers)
		}
		if val.Objective != res.Objective {
			t.Fatalf("workers=%d: re-validated objective %v != reported %v", workers, val.Objective, res.Objective)
		}
		if len(val.Surpluses) != len(res.Surpluses) {
			t.Fatalf("workers=%d: surplus count %d != %d", workers, len(val.Surpluses), len(res.Surpluses))
		}
		for k := range val.Surpluses {
			if val.Surpluses[k] != res.Surpluses[k] {
				t.Fatalf("workers=%d: surplus %d: %v != %v", workers, k, val.Surpluses[k], res.Surpluses[k])
			}
		}

		// A budget-cut answer reflects load, not the query: it must never
		// be served from the result cache to a later identical request.
		res2, err := e.Query(context.Background(), Request{
			Query:   testQuery,
			Timeout: 400 * time.Millisecond,
			Options: degradeOptions(workers),
		})
		if err != nil {
			t.Fatalf("workers=%d: second query: %v", workers, err)
		}
		if res2.ResultCacheHit {
			t.Fatalf("workers=%d: degraded result was cached", workers)
		}
	}
}

// TestEngineDegradedJobWire drives the same fault through the job manager:
// the v1 wire result must carry degraded=true, a non-empty feasible
// package, and the achieved gap.
func TestEngineDegradedJobWire(t *testing.T) {
	cat := newCatalog(t, 40)
	e := New(cat, &Options{Parallelism: 1})
	j, err := e.Submit(Request{
		Query:   testQuery,
		Timeout: 400 * time.Millisecond,
		Options: degradeOptions(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	wres, apiErr := j.WireResult()
	if apiErr != nil {
		t.Fatalf("job failed: %+v", apiErr)
	}
	if wres == nil {
		t.Fatal("job finished without a result")
	}
	if !wres.Degraded {
		t.Fatalf("wire result not degraded: %+v", wres)
	}
	if !wres.Feasible || len(wres.Package) == 0 {
		t.Fatalf("degraded wire result infeasible or empty: %+v", wres)
	}
	if wres.Gap <= 0 {
		t.Fatalf("degraded wire result has no gap: %+v", wres)
	}
}

// TestEngineTenantLabelDeterminism pins the cache-key purity invariant: the
// tenant label (and the class label, when its budget does not bind) must
// not reach the result key or change the answer. The same deterministic
// query from two tenants is answered from the result cache the second
// time, and a fresh engine queried under the other tenant produces the
// bit-identical package.
func TestEngineTenantLabelDeterminism(t *testing.T) {
	cat := newCatalog(t, 15)
	tenants := []TenantConfig{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}
	classes := map[string]ClassBudget{"batch": {TimeLimit: time.Hour}}

	e1 := New(cat, &Options{Tenants: tenants, Classes: classes})
	ra, err := e1.Query(context.Background(), Request{Query: testQuery, Tenant: "a", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// Same query, different tenant and a non-binding class: must be served
	// from the result cache (labels are not part of the key).
	rb, err := e1.Query(context.Background(), Request{Query: testQuery, Tenant: "b", Class: "batch", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !rb.ResultCacheHit {
		t.Fatal("tenant/class label broke result-cache identity")
	}
	if rb.Objective != ra.Objective {
		t.Fatalf("objective changed across tenants: %v vs %v", rb.Objective, ra.Objective)
	}

	// A fresh engine queried under tenant "b" first: bit-identical package.
	e2 := New(cat, &Options{Tenants: tenants})
	rc, err := e2.Query(context.Background(), Request{Query: testQuery, Tenant: "b", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Objective != ra.Objective {
		t.Fatalf("objective depends on tenant/scheduler state: %v vs %v", rc.Objective, ra.Objective)
	}
	ma, mc := ra.Multiplicities(), rc.Multiplicities()
	if len(ma) != len(mc) {
		t.Fatalf("package size differs: %v vs %v", ma, mc)
	}
	for tuple, count := range ma {
		if mc[tuple] != count {
			t.Fatalf("package differs at tuple %d: %d vs %d", tuple, count, mc[tuple])
		}
	}
}
