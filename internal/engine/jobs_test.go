package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/sketch"
)

// hardRequest builds a query that cannot finish quickly: a near-infeasible
// probabilistic bound over many tuples with a huge validation population.
func hardRequest() Request {
	return Request{
		Query: `SELECT PACKAGE(*) FROM stocks SUCH THAT
			SUM(price) <= 2000 AND
			SUM(gain) >= 500 WITH PROBABILITY >= 0.99
			MAXIMIZE EXPECTED SUM(gain)`,
		Options: &core.Options{Seed: 1, ValidationM: 500000, InitialM: 50, IncrementM: 50, MaxM: 1000},
	}
}

// waitState polls the job until it reaches want (fatal after a deadline).
func waitState(t *testing.T, j *Job, want client.JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if s := j.Snapshot(0); s.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached state %q (now %q)", want, j.Snapshot(0).State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycleParity is the async/sync equivalence check: a submitted
// job must record progress while solving and finish with a result
// bit-identical to the synchronous Engine.Query path for the same seed.
func TestJobLifecycleParity(t *testing.T) {
	cat := newCatalog(t, 15)
	// Result cache off so both paths actually solve.
	e := New(cat, &Options{ResultCacheSize: -1})
	req := Request{Query: testQuery, Options: smallCoreOptions()}

	j, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	res, jerr := j.Result()
	if jerr != nil {
		t.Fatalf("job failed: %v", jerr)
	}

	snap := j.Snapshot(0)
	if snap.State != client.JobSucceeded {
		t.Fatalf("state = %q, want succeeded", snap.State)
	}
	if len(snap.Events) == 0 {
		t.Fatal("job recorded no progress events")
	}
	for _, ev := range snap.Events {
		if ev.Iteration < 1 || ev.M <= 0 {
			t.Fatalf("malformed progress event: %+v", ev)
		}
	}
	last := snap.Events[len(snap.Events)-1]
	if last.BestObjective != res.Objective {
		t.Fatalf("final event best objective %v != result objective %v", last.BestObjective, res.Objective)
	}
	if snap.Result == nil || !snap.Result.Feasible || len(snap.Result.Package) == 0 {
		t.Fatalf("bad wire result: %+v", snap.Result)
	}

	// Synchronous path, same request: must be bit-identical.
	sres, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Objective != res.Objective || sres.M != res.M || sres.Z != res.Z {
		t.Fatalf("async (obj=%v M=%d Z=%d) != sync (obj=%v M=%d Z=%d)",
			res.Objective, res.M, res.Z, sres.Objective, sres.M, sres.Z)
	}
	if len(sres.X) != len(res.X) {
		t.Fatalf("package length diverged: %d vs %d", len(res.X), len(sres.X))
	}
	for i := range sres.X {
		if sres.X[i] != res.X[i] {
			t.Fatalf("package diverged at %d: %v vs %v", i, res.X[i], sres.X[i])
		}
	}
}

// TestJobSketchProgressPhases: a method=sketch job streams phase-labelled
// progress from the pipeline's sub-solves, and the job-level best-so-far
// stays consistent with the final result even though each shard tracks its
// own incumbent.
func TestJobSketchProgressPhases(t *testing.T) {
	cat := newCatalog(t, 60)
	e := New(cat, &Options{ResultCacheSize: -1})
	j, err := e.Submit(Request{
		Query:   testQuery,
		Method:  "sketch",
		Options: smallCoreOptions(),
		Sketch:  &sketch.Options{GroupSize: 8, MaxCandidates: 24, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("sketch job did not finish")
	}
	if _, jerr := j.Result(); jerr != nil {
		t.Fatalf("sketch job failed: %v", jerr)
	}
	snap := j.Snapshot(0)
	phases := map[string]bool{}
	for _, ev := range snap.Events {
		phases[ev.Phase] = true
	}
	if !phases["refine"] && !phases["fallback"] {
		t.Fatalf("no refine/fallback phase in events: %v", phases)
	}
	sawShard := false
	for ph := range phases {
		if strings.HasPrefix(ph, "sketch/shard") {
			sawShard = true
		}
	}
	if !sawShard && !phases["fallback"] {
		t.Fatalf("no shard sketch phase in events: %v", phases)
	}
	// The refine's solution is the job's final result; the cross-phase
	// best must be at least as good (feasibility-first, maximize sense).
	if snap.Result.Feasible && !snap.BestFeasible {
		t.Fatal("feasible result but infeasible job-level best")
	}
	if snap.BestFeasible && snap.BestObjective < snap.Result.Objective {
		t.Fatalf("best objective %v regressed below final %v", snap.BestObjective, snap.Result.Objective)
	}
}

// TestQueryPreCancelledContext: an already-cancelled context never
// evaluates, not even from a warm result cache — the guarantee the job
// manager relies on so a job cancelled while queued cannot "succeed".
func TestQueryPreCancelledContext(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, nil) // result cache on
	req := Request{Query: testQuery, Options: smallCoreOptions()}
	if _, err := e.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm-cache query on cancelled ctx: err = %v, want Canceled", err)
	}
}

// TestJobPanicContainment: a panic inside the evaluation fails the one job
// (code internal) instead of crashing the daemon; the caller's Progress
// callback is chained, not replaced.
func TestJobPanicContainment(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{ResultCacheSize: -1})
	calls := 0
	j, err := e.Submit(Request{
		Query:   testQuery,
		Options: smallCoreOptions(),
		Progress: func(core.Progress) {
			calls++
			panic("synthetic progress panic")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("panicking job did not finish")
	}
	if calls == 0 {
		t.Fatal("user progress callback was not chained")
	}
	snap := j.Snapshot(0)
	if snap.State != client.JobFailed {
		t.Fatalf("state = %q, want failed", snap.State)
	}
	if snap.Error == nil || snap.Error.Code != client.CodeInternal {
		t.Fatalf("error = %+v, want code internal", snap.Error)
	}
	// The engine must still work after the contained panic.
	if _, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()}); err != nil {
		t.Fatalf("engine broken after contained panic: %v", err)
	}
}

// TestJobCancelFreesSlot cancels a running job and checks (a) the state
// machine lands on cancelled, (b) the admission slot is returned so a new
// query gets through an engine with a single slot and no queue.
func TestJobCancelFreesSlot(t *testing.T) {
	cat := newCatalog(t, 40)
	e := New(cat, &Options{MaxInFlight: 1, MaxQueue: -1, Parallelism: 1, MaxJobs: 4})

	j, err := e.Submit(hardRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, client.JobRunning)

	if _, ok := e.CancelJob(j.ID()); !ok {
		t.Fatal("CancelJob did not find the job")
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not finish")
	}
	if s := j.Snapshot(0); s.State != client.JobCancelled {
		t.Fatalf("state = %q, want cancelled", s.State)
	}
	if _, jerr := j.Result(); jerr == nil {
		t.Fatal("cancelled job reported no error")
	}

	// The only solve slot must be free again: with MaxQueue<0 a held slot
	// would reject this query immediately.
	if _, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()}); err != nil {
		t.Fatalf("query after cancel failed: %v", err)
	}
	if got := e.Stats().JobsCancelled; got != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", got)
	}
}

// TestJobCancelMidMILP is the cancellation-latency regression test at the
// job level: a DELETE on a job whose evaluation is deep inside a single long
// LP solve must reach cancelled within iterations of the simplex, not after
// the solve finishes. The query is built so the very first MILP's root LP
// relaxation alone runs for many seconds (a huge unconstrained knapsack:
// one bound flip per tuple, each with a full pricing scan), which made the
// pre-fix behaviour — Cancel polled only between LP solves — flaky-slow by
// construction.
func TestJobCancelMidMILP(t *testing.T) {
	cat := newCatalog(t, 30000)
	e := New(cat, &Options{MaxInFlight: 1, Parallelism: 1, ResultCacheSize: -1})
	j, err := e.Submit(Request{
		// The budget never binds, so the root LP walks all 30k tuples.
		Query: `SELECT PACKAGE(*) FROM stocks SUCH THAT
			SUM(price) <= 2000000000 AND
			SUM(gain) >= 100 WITH PROBABILITY >= 0.95
			MAXIMIZE EXPECTED SUM(gain)`,
		Timeout: 10 * time.Minute,
		Options: &core.Options{Seed: 1, ValidationM: 1000, InitialM: 20, MaxM: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, client.JobRunning)
	// Land well inside the root LP solve (it runs for many seconds; under
	// the race detector, tens of seconds).
	settle := 500 * time.Millisecond
	if raceEnabled {
		settle = 2 * time.Second
	}
	time.Sleep(settle)

	cancelled := time.Now()
	if _, ok := e.CancelJob(j.ID()); !ok {
		t.Fatal("CancelJob did not find the job")
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("cancelled job never finished")
	}
	latency := time.Since(cancelled)
	bound := 3 * time.Second
	if raceEnabled {
		bound = 8 * time.Second
	}
	if latency > bound {
		t.Fatalf("cancel→done latency %v (bound %v): cancellation waited for the LP solve", latency, bound)
	}
	if s := j.Snapshot(0); s.State != client.JobCancelled {
		t.Fatalf("state = %q, want cancelled", s.State)
	}
}

// TestJobHistoryEviction bounds the finished-job history.
func TestJobHistoryEviction(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{JobHistory: 2, ResultCacheSize: -1})

	var ids []string
	for k := 0; k < 4; k++ {
		opts := smallCoreOptions()
		opts.Seed = uint64(k + 1)
		j, err := e.Submit(Request{Query: testQuery, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatal("job did not finish")
		}
		ids = append(ids, j.ID())
	}

	if n := len(e.Jobs()); n != 2 {
		t.Fatalf("tracked jobs = %d, want 2", n)
	}
	if _, ok := e.JobByID(ids[0]); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, ok := e.JobByID(ids[3]); !ok {
		t.Fatal("newest job was evicted")
	}
	st := e.Stats()
	if st.JobsEvicted != 2 || st.JobsSubmitted != 4 || st.JobsCompleted != 4 {
		t.Fatalf("stats = evicted %d submitted %d completed %d, want 2/4/4",
			st.JobsEvicted, st.JobsSubmitted, st.JobsCompleted)
	}
}

// TestSubmitValidation: malformed queries and unknown methods fail at
// submit time, and MaxJobs bounds the active set with ErrOverloaded.
func TestSubmitValidation(t *testing.T) {
	cat := newCatalog(t, 40)
	e := New(cat, &Options{MaxJobs: 1, MaxInFlight: 1, Parallelism: 1})

	if _, err := e.Submit(Request{Query: "SELECT NONSENSE"}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("parse failure err = %v, want ErrBadQuery", err)
	}
	if _, err := e.Submit(Request{Query: testQuery, Method: "quantum"}); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method err = %v, want ErrUnknownMethod", err)
	}

	j, err := e.Submit(hardRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Request{Query: testQuery, Options: smallCoreOptions()}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-MaxJobs submit err = %v, want ErrOverloaded", err)
	}
	e.CancelJob(j.ID())
	<-j.Done()
}
