package engine

import (
	"fmt"
	"net/http"

	"spq/client"
	"spq/internal/core"
	"spq/internal/relation"
)

// This file is the engine's mutation surface: ApplyDelta funnels a batch
// relation mutation through the catalog and reconciles engine state with the
// resulting change set. Invalidation is delta-scoped and mostly lazy — the
// plan cache and result cache revalidate entries by footprint on their next
// lookup (see prepare and resultGet) — so applying a delta is O(delta), not
// O(caches). The eager part is the job history: terminal jobs pin
// relation-sized state (the solved snapshot and package vector) that a
// superseded version has no further use for, so deltas trim it down to the
// rendered wire result.

// warmHint is the warm-start state salvaged from a result-cache entry that a
// delta invalidated: enough to re-seed the same request's re-solve from the
// previous evaluation's package, summaries, and root basis. Advisory and
// node-local, like everything warm-start.
type warmHint struct {
	warm    *core.WarmStart
	table   *relation.Relation // registered base relation
	rel     *relation.Relation // the (possibly WHERE-filtered) view warm.X indexes
	version uint64             // relation version the entry was valid for
}

// maxWarmHints bounds the hint stash: hints are free speed, not correctness,
// so overflow just forgets one.
const maxWarmHints = 64

// stashWarm keeps an invalidated entry's warm-start state for the next
// identical request. Entries solved without CollectWarm carry none.
func (e *Engine) stashWarm(key string, cr *cachedResult) {
	if cr.sol == nil || cr.sol.Warm == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warmHints == nil {
		e.warmHints = map[string]*warmHint{}
	}
	if _, exists := e.warmHints[key]; !exists && len(e.warmHints) >= maxWarmHints {
		for k := range e.warmHints {
			delete(e.warmHints, k)
			break
		}
	}
	e.warmHints[key] = &warmHint{warm: cr.sol.Warm, table: cr.table, rel: cr.rel, version: cr.relVersion}
}

// takeWarm removes and returns the hint stashed under a result key, if any.
func (e *Engine) takeWarm(key string) *warmHint {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.warmHints[key]
	if h != nil {
		delete(e.warmHints, key)
	}
	return h
}

// warmStart resolves a stashed hint against a freshly prepared plan: it
// checks the hint still describes the same relation lineage, computes the
// merged change footprint since the hint's version, and translates the
// touched base tuples into the plan view's index space. Returns nil when the
// hint no longer applies (membership changed, history trimmed, views
// enumerate different tuples) — the query then solves cold.
func (e *Engine) warmStart(hint *warmHint, p *plan) *core.WarmStart {
	rel, ok := e.cat.Table(p.query.Table)
	if !ok || rel != hint.table || rel != p.table {
		return nil
	}
	cs, ok := rel.Changes(hint.version)
	if !ok || cs.MembershipChanged() {
		return nil
	}
	// cs.Tuples index the base relation's current tuple space; OrigIndex maps
	// view indices to original (pre-any-delete) indices. The two coincide
	// only while the base was never compacted by a delete.
	if bn := rel.N(); bn > 0 && rel.OrigIndex(bn-1) != bn-1 {
		return nil
	}
	nv, ov := p.silp.Rel, hint.rel
	n := nv.N()
	if ov.N() != n || len(hint.warm.X) != n {
		return nil
	}
	// The warm X indexes the old view; it transfers only when both views
	// enumerate the same base tuples in the same order.
	for i := 0; i < n; i++ {
		if nv.OrigIndex(i) != ov.OrigIndex(i) {
			return nil
		}
	}
	var touched []int
	if len(cs.Attrs) > 0 {
		// A VG replacement changes a whole stochastic column: every tuple of
		// the view is touched (the patch degenerates to a re-summarize).
		touched = make([]int, n)
		for i := range touched {
			touched[i] = i
		}
	} else if len(cs.Tuples) > 0 {
		changed := make(map[int]bool, len(cs.Tuples))
		for _, t := range cs.Tuples {
			changed[t] = true
		}
		for i := 0; i < n; i++ {
			if changed[nv.OrigIndex(i)] {
				touched = append(touched, i)
			}
		}
	}
	w := *hint.warm
	w.Touched = touched
	return &w
}

// ApplyDelta applies a batch mutation to a registered table and reconciles
// engine state: the job history drops relation-sized state of terminal jobs
// solved against the table (their rendered wire results keep serving polls),
// while the plan and result caches revalidate lazily by footprint on their
// next lookup. Validation failures (unknown table, bad column, out-of-range
// tuple) wrap ErrBadQuery for the HTTP 400 mapping.
func (e *Engine) ApplyDelta(table string, d *relation.Delta) (*relation.ChangeSet, error) {
	if e.opts.ReadOnly {
		return nil, fmt.Errorf("%w: server is read-only", ErrBadQuery)
	}
	rel, ok := e.cat.Table(table)
	if !ok {
		return nil, fmt.Errorf("%w: unknown table %q", ErrBadQuery, table)
	}
	cs, err := rel.Base().ApplyDelta(d)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	e.m.deltasApplied.Inc()
	e.trimJobs(table)
	return cs, nil
}

// trimJobs trims the terminal jobs that solved against the mutated table.
func (e *Engine) trimJobs(table string) {
	for _, j := range e.Jobs() {
		j.trimAfterDelta(table)
	}
}

// handleV1Delta serves POST /v1/tables/{name}/deltas.
func (e *Engine) handleV1Delta(w http.ResponseWriter, r *http.Request) {
	if e.opts.ReadOnly {
		writeError(w, &client.Error{
			Code:       client.CodeMethodNotAllowed,
			Message:    "server is read-only",
			HTTPStatus: http.StatusMethodNotAllowed,
		})
		return
	}
	name := r.PathValue("name")
	if _, ok := e.cat.Table(name); !ok {
		writeError(w, &client.Error{
			Code:       client.CodeNotFound,
			Message:    fmt.Sprintf("unknown table %q", name),
			HTTPStatus: http.StatusNotFound,
		})
		return
	}
	var dr client.DeltaRequest
	if apiErr := decodeBody(w, r, &dr); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if len(dr.Set) == 0 && len(dr.Delete) == 0 && len(dr.Append) == 0 {
		writeError(w, &client.Error{
			Code:       client.CodeBadRequest,
			Message:    "empty delta: provide set, delete, or append",
			HTTPStatus: http.StatusBadRequest,
		})
		return
	}
	cs, err := e.ApplyDelta(name, &relation.Delta{Set: dr.Set, Delete: dr.Delete, Append: dr.Append})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, client.DeltaResponse{
		Table:       name,
		FromVersion: cs.From,
		Version:     cs.To,
		Cols:        cs.Cols,
		TuplesSet:   len(cs.Tuples),
		Appended:    cs.Appended,
		Deleted:     cs.Deleted,
	})
}
