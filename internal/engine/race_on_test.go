//go:build race

package engine

// See race_off_test.go.
const raceEnabled = true
