package engine

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/relation"
	"spq/internal/sketch"
)

// This file serves the versioned async API over the job manager:
//
//	POST   /v1/queries        — submit a query; 202 + the queued Job
//	GET    /v1/queries        — list tracked jobs (active + bounded history)
//	GET    /v1/queries/{id}   — poll one job; ?since=<seq> returns only newer
//	                            progress events, ?wait_ms=<ms> long-polls
//	                            until the job changes or turns terminal
//	DELETE /v1/queries/{id}   — cancel; returns the (possibly already
//	                            terminal) Job
//	POST   /v1/queries:batch  — submit many; per-item job-or-error results
//
// Every non-2xx response body is the structured envelope
// {"error":{"code":...,"message":...}} with the stable codes of the client
// package; 429 responses carry a Retry-After header. The wire types are
// defined in spq/client so the server and the Go client share one contract.

// maxPollWait caps the ?wait_ms long-poll duration.
const maxPollWait = 30 * time.Second

// writeError renders the v1 error envelope, setting Retry-After on 429.
func writeError(w http.ResponseWriter, apiErr *client.Error) {
	status := apiErr.HTTPStatus
	if status == 0 {
		status = http.StatusInternalServerError
	}
	if status == http.StatusTooManyRequests {
		if apiErr.RetryAfterMS <= 0 {
			apiErr.RetryAfterMS = 1000
		}
		secs := (apiErr.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, client.ErrorEnvelope{Error: apiErr})
}

// writeEngineError maps an engine error to the envelope.
func writeEngineError(w http.ResponseWriter, err error) {
	writeError(w, errToWire(err))
}

// methodsHandler dispatches on the HTTP method and envelopes 405s (the
// stock ServeMux writes plain-text bodies, which the v1 contract forbids).
func methodsHandler(handlers map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(handlers))
	for m := range handlers {
		allowed = append(allowed, m)
	}
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := handlers[r.Method]; ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeError(w, &client.Error{
			Code:       client.CodeMethodNotAllowed,
			Message:    "method " + r.Method + " not allowed for " + r.URL.Path,
			HTTPStatus: http.StatusMethodNotAllowed,
		})
	}
}

// engineRequest lowers a typed v1 submission to the engine's request.
func engineRequest(sr *client.SubmitRequest) (Request, *client.Error) {
	req := Request{
		Query:       sr.Query,
		Method:      sr.Method,
		Timeout:     time.Duration(sr.TimeoutMS) * time.Millisecond,
		TraceParent: sr.TraceParent,
		Tenant:      sr.Tenant,
		Class:       sr.Class,
	}
	if o := sr.Options; o != nil {
		req.Options = &core.Options{
			Seed:                 o.Seed,
			ValidationSeed:       o.ValidationSeed,
			ValidationM:          o.ValidationM,
			InitialM:             o.InitialM,
			IncrementM:           o.IncrementM,
			MaxM:                 o.MaxM,
			FixedZ:               o.FixedZ,
			IncrementZ:           o.IncrementZ,
			Epsilon:              o.Epsilon,
			MaxCSAIters:          o.MaxCSAIters,
			Parallelism:          o.Parallelism,
			MaxResidentScenarios: o.MaxResidentScenarios,
			DisableAcceleration:  o.DisableAcceleration,
			TimeLimit:            time.Duration(o.TimeLimitMS) * time.Millisecond,
			SolverTime:           time.Duration(o.SolverTimeMS) * time.Millisecond,
			SolverNodes:          o.SolverNodes,
			RelGap:               o.RelGap,
		}
	}
	req.Solve = sr.Solve
	if s := sr.Sketch; s != nil {
		var strategy relation.PartitionStrategy
		switch strings.ToLower(s.Strategy) {
		case "", "kmeans":
			strategy = relation.PartitionKMeans
		case "hash":
			strategy = relation.PartitionHash
		case "range":
			strategy = relation.PartitionRange
		default:
			return Request{}, &client.Error{
				Code:       client.CodeBadRequest,
				Message:    "unknown sketch strategy " + strconv.Quote(s.Strategy),
				HTTPStatus: http.StatusBadRequest,
			}
		}
		req.Sketch = &sketch.Options{
			GroupSize:     s.GroupSize,
			Shards:        s.Shards,
			MaxCandidates: s.MaxCandidates,
			Seed:          s.Seed,
			Strategy:      strategy,
		}
	}
	return req, nil
}

// decodeBody decodes a bounded JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) *client.Error {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return &client.Error{
			Code:       client.CodeBadRequest,
			Message:    "bad request body: " + err.Error(),
			HTTPStatus: http.StatusBadRequest,
		}
	}
	return nil
}

// submitOne validates and submits one request, mapping failures to wire
// errors (shared by the single and batch submit paths).
func (e *Engine) submitOne(sr *client.SubmitRequest) (*Job, *client.Error) {
	if sr.Query == "" {
		return nil, &client.Error{Code: client.CodeBadRequest, Message: `missing "query"`, HTTPStatus: http.StatusBadRequest}
	}
	req, apiErr := engineRequest(sr)
	if apiErr != nil {
		return nil, apiErr
	}
	j, err := e.Submit(req)
	if err != nil {
		return nil, errToWire(err)
	}
	return j, nil
}

func (e *Engine) handleV1Submit(w http.ResponseWriter, r *http.Request) {
	var sr client.SubmitRequest
	if apiErr := decodeBody(w, r, &sr); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	sr.TraceParent = r.Header.Get(client.TraceHeader)
	if t := r.Header.Get(client.TenantHeader); t != "" {
		sr.Tenant = t // header wins over the body field
	}
	j, apiErr := e.submitOne(&sr)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot(0))
}

func (e *Engine) handleV1List(w http.ResponseWriter, r *http.Request) {
	jobs := e.Jobs()
	out := client.ListResponse{Jobs: make([]*client.Job, 0, len(jobs))}
	for _, j := range jobs {
		snap := j.Snapshot(math.MaxInt) // no event bodies in listings
		snap.Trace = nil                // trace trees neither (GET the job or its /trace)
		out.Jobs = append(out.Jobs, snap)
	}
	writeJSON(w, http.StatusOK, out)
}

func (e *Engine) handleV1Get(w http.ResponseWriter, r *http.Request) {
	j, ok := e.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, &client.Error{Code: client.CodeNotFound, Message: "unknown job " + strconv.Quote(r.PathValue("id")), HTTPStatus: http.StatusNotFound})
		return
	}
	q := r.URL.Query()
	since := 0
	if s := q.Get("since"); s != "" {
		var err error
		if since, err = strconv.Atoi(s); err != nil {
			writeError(w, &client.Error{Code: client.CodeBadRequest, Message: "bad since parameter: " + err.Error(), HTTPStatus: http.StatusBadRequest})
			return
		}
	}
	var waitMS int64
	if s := q.Get("wait_ms"); s != "" {
		var err error
		if waitMS, err = strconv.ParseInt(s, 10, 64); err != nil {
			writeError(w, &client.Error{Code: client.CodeBadRequest, Message: "bad wait_ms parameter: " + err.Error(), HTTPStatus: http.StatusBadRequest})
			return
		}
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxPollWait {
		wait = maxPollWait
	}
	writeJSON(w, http.StatusOK, j.Poll(r.Context(), since, wait))
}

func (e *Engine) handleV1Trace(w http.ResponseWriter, r *http.Request) {
	j, ok := e.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, &client.Error{Code: client.CodeNotFound, Message: "unknown job " + strconv.Quote(r.PathValue("id")), HTTPStatus: http.StatusNotFound})
		return
	}
	writeJSON(w, http.StatusOK, j.TraceData())
}

func (e *Engine) handleV1Cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := e.CancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, &client.Error{Code: client.CodeNotFound, Message: "unknown job " + strconv.Quote(r.PathValue("id")), HTTPStatus: http.StatusNotFound})
		return
	}
	// Give the cancellation a moment to propagate so the common case
	// returns the job already in its terminal state.
	snap := j.Poll(r.Context(), math.MaxInt, 100*time.Millisecond)
	writeJSON(w, http.StatusOK, snap)
}

func (e *Engine) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	var br client.BatchRequest
	if apiErr := decodeBody(w, r, &br); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if len(br.Queries) == 0 {
		writeError(w, &client.Error{Code: client.CodeBadRequest, Message: `missing "queries"`, HTTPStatus: http.StatusBadRequest})
		return
	}
	out := client.BatchResponse{Jobs: make([]client.BatchItem, len(br.Queries))}
	tenant := r.Header.Get(client.TenantHeader)
	for i := range br.Queries {
		if tenant != "" {
			br.Queries[i].Tenant = tenant // header wins over the body field
		}
		j, apiErr := e.submitOne(&br.Queries[i])
		if apiErr != nil {
			out.Jobs[i] = client.BatchItem{Error: apiErr}
			continue
		}
		out.Jobs[i] = client.BatchItem{Job: j.Snapshot(0)}
	}
	writeJSON(w, http.StatusAccepted, out)
}
