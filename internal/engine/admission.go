package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the multi-tenant admission layer: a deficit-round-robin
// weighted-fair scheduler that replaces the engine's former global FIFO
// semaphore. Tenancy is purely an admission-scheduling concern — the tenant
// label never reaches the solver, the result, or any cache key, so a query's
// package is bit-identical whatever tenant submitted it.

// DefaultTenant is the tenant requests run under when they carry no tenant
// label, and the tenant unknown labels fold into (bounding label
// cardinality: a client cannot mint scheduler or metric state by inventing
// tenant names).
const DefaultTenant = "default"

// ErrTenantQuota reports admission rejection because the request's tenant
// hit its own queue-depth quota while the engine still had global capacity.
// It maps to HTTP 429 with the stable code "tenant_quota", distinct from
// ErrOverloaded's "overloaded".
var ErrTenantQuota = errors.New("engine: tenant queue quota exceeded")

// TenantConfig declares one tenant's admission share.
type TenantConfig struct {
	// Name identifies the tenant (the X-Spq-Tenant header value).
	Name string `json:"name"`
	// Weight is the tenant's relative share of solve slots under contention
	// (deficit-round-robin credit per round). Minimum 1; a tenant with
	// weight w is admitted w times per round while backlogged, so two
	// backlogged tenants with weights 3:1 converge to a 3:1 admission ratio.
	Weight int `json:"weight"`
	// MaxInFlight caps the tenant's concurrently running queries
	// (0 = no per-tenant cap; the global capacity still applies). The cap
	// is a ceiling, not a reservation — idle share flows to other tenants.
	MaxInFlight int `json:"max_inflight,omitempty"`
	// MaxQueue caps the tenant's waiting queries (0 = no per-tenant cap;
	// the global queue bound still applies). Beyond it the request is
	// rejected with ErrTenantQuota.
	MaxQueue int `json:"max_queue,omitempty"`
}

// ParseTenants parses the spqd -tenants flag format: a comma-separated list
// of name:weight[:max_inflight[:max_queue]] entries, e.g.
// "acme:3,free:1:2:8". Weights must be >= 1; caps must be >= 0.
func ParseTenants(s string) ([]TenantConfig, error) {
	var out []TenantConfig
	seen := make(map[string]bool)
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("tenant %q: want name:weight[:max_inflight[:max_queue]]", ent)
		}
		tc := TenantConfig{Name: strings.TrimSpace(parts[0])}
		if tc.Name == "" {
			return nil, fmt.Errorf("tenant %q: empty name", ent)
		}
		if seen[tc.Name] {
			return nil, fmt.Errorf("tenant %q: duplicate name", tc.Name)
		}
		seen[tc.Name] = true
		var err error
		if tc.Weight, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil || tc.Weight < 1 {
			return nil, fmt.Errorf("tenant %q: weight must be an integer >= 1", ent)
		}
		if len(parts) > 2 {
			if tc.MaxInFlight, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil || tc.MaxInFlight < 0 {
				return nil, fmt.Errorf("tenant %q: max_inflight must be an integer >= 0", ent)
			}
		}
		if len(parts) > 3 {
			if tc.MaxQueue, err = strconv.Atoi(strings.TrimSpace(parts[3])); err != nil || tc.MaxQueue < 0 {
				return nil, fmt.Errorf("tenant %q: max_queue must be an integer >= 0", ent)
			}
		}
		out = append(out, tc)
	}
	return out, nil
}

// waiter is one queued admission request.
type waiter struct {
	ch       chan struct{} // closed on admission
	admitted bool
}

// tenantState is one tenant's lane in the scheduler.
type tenantState struct {
	cfg      TenantConfig
	deficit  int  // DRR credit; reset when the lane idles
	credited bool // quantum granted for the current service turn
	inflight int
	queue    []*waiter // FIFO within the tenant
	// cumulative counters, exported via Stats (metric vecs hold the
	// authoritative copies; these back the property tests without obs).
	admitted int64
	queued   int64
	rejected int64
}

// fairScheduler is a deficit-round-robin weighted-fair admission scheduler.
//
// Invariants (argued in DESIGN.md "Multi-tenant admission"):
//   - Work conservation: whenever a solve slot is free and any admissible
//     waiter exists, dispatch admits one — idle share always flows to
//     backlogged tenants.
//   - Share bounds: while k tenants stay backlogged and uncapped, tenant i
//     receives weight_i / Σ weight_j of admissions per round, because each
//     full cursor round credits every backlogged lane its weight and drains
//     exactly that much deficit.
//   - Starvation freedom: weights are >= 1, so every backlogged lane is
//     credited at least one admission per round it is visited; rounds
//     complete because each admission consumes a slot or the round ends.
type fairScheduler struct {
	mu       sync.Mutex
	capacity int // concurrent admissions (engine MaxInFlight)
	maxQueue int // global waiting bound (engine MaxQueue)
	inflight int
	waiting  int
	tenants  map[string]*tenantState
	ring     []*tenantState // round-robin order: config order, default lane included
	cursor   int
}

// newFairScheduler builds a scheduler with one lane per configured tenant
// plus the default lane (added if the config does not name it).
func newFairScheduler(capacity, maxQueue int, cfgs []TenantConfig) *fairScheduler {
	s := &fairScheduler{
		capacity: capacity,
		maxQueue: maxQueue,
		tenants:  make(map[string]*tenantState),
	}
	for _, tc := range cfgs {
		if tc.Weight < 1 {
			tc.Weight = 1
		}
		if tc.Name == "" || s.tenants[tc.Name] != nil {
			continue
		}
		ts := &tenantState{cfg: tc}
		s.tenants[tc.Name] = ts
		s.ring = append(s.ring, ts)
	}
	if s.tenants[DefaultTenant] == nil {
		ts := &tenantState{cfg: TenantConfig{Name: DefaultTenant, Weight: 1}}
		s.tenants[DefaultTenant] = ts
		s.ring = append(s.ring, ts)
	}
	return s
}

// lane resolves a tenant label to its scheduler lane, folding unknown
// labels (and "") into the default tenant.
func (s *fairScheduler) lane(tenant string) *tenantState {
	if ts, ok := s.tenants[tenant]; ok {
		return ts
	}
	return s.tenants[DefaultTenant]
}

// Canonical returns the lane name a tenant label resolves to — the value
// metrics and stats are keyed by.
func (s *fairScheduler) Canonical(tenant string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lane(tenant).cfg.Name
}

// Acquire blocks until the request is admitted, the context expires, or the
// request is rejected (ErrOverloaded when global capacity+queue is
// exhausted, ErrTenantQuota when the tenant's own queue quota is). On nil
// return the caller holds one slot and must call Release with the same
// tenant label.
func (s *fairScheduler) Acquire(ctx context.Context, tenant string) error {
	s.mu.Lock()
	ts := s.lane(tenant)
	if s.inflight+s.waiting >= s.capacity+s.maxQueue {
		ts.rejected++
		s.mu.Unlock()
		return ErrOverloaded
	}
	if ts.cfg.MaxQueue > 0 && len(ts.queue) >= ts.cfg.MaxQueue {
		ts.rejected++
		s.mu.Unlock()
		return ErrTenantQuota
	}
	w := &waiter{ch: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	s.waiting++
	ts.queued++
	s.dispatchLocked()
	admitted := w.admitted
	s.mu.Unlock()
	if admitted {
		return nil
	}
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w.admitted {
		// Lost the race: dispatch admitted us as the context expired.
		// Surface the context error but hand the slot straight back.
		s.releaseLocked(ts)
		return ctx.Err()
	}
	for i, q := range ts.queue {
		if q == w {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			break
		}
	}
	s.waiting--
	return ctx.Err()
}

// Release returns one slot and re-dispatches.
func (s *fairScheduler) Release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.releaseLocked(s.lane(tenant))
	s.dispatchLocked()
}

func (s *fairScheduler) releaseLocked(ts *tenantState) {
	s.inflight--
	ts.inflight--
}

// admissible reports whether the lane has a waiter the caps allow to run.
func admissible(ts *tenantState) bool {
	return len(ts.queue) > 0 && (ts.cfg.MaxInFlight == 0 || ts.inflight < ts.cfg.MaxInFlight)
}

// dispatchLocked admits waiters deficit-round-robin until capacity is
// exhausted or no lane is admissible. The cursor parks on a lane for its
// whole service turn: arriving credits the lane its weight once
// (credited), and the cursor only advances when that quantum is spent or
// the lane stops being admissible — so a turn interrupted by a full
// engine resumes where it left off instead of re-crediting, and the
// weight ratio holds even when capacity is smaller than the weights.
// Lanes with empty queues lose their deficit (classic DRR: credit accrues
// only while backlogged, so an idle tenant cannot bank a burst). Lanes at
// their in-flight cap are skipped without credit for the same reason.
func (s *fairScheduler) dispatchLocked() {
	n := len(s.ring)
	if n == 0 {
		return
	}
	// idle counts cursor advances since the last admission; n+1 of them
	// means a full sweep (plus leaving a spent lane) found nothing
	// admissible.
	for idle := 0; s.inflight < s.capacity && idle <= n; {
		ts := s.ring[s.cursor]
		if len(ts.queue) == 0 {
			ts.deficit = 0
			ts.credited = false
			s.advanceLocked()
			idle++
			continue
		}
		if !admissible(ts) {
			s.advanceLocked()
			idle++
			continue
		}
		if !ts.credited {
			ts.deficit += ts.cfg.Weight
			ts.credited = true
		}
		if ts.deficit < 1 {
			// Quantum spent: the next lane's turn.
			s.advanceLocked()
			idle++
			continue
		}
		w := ts.queue[0]
		ts.queue = ts.queue[1:]
		w.admitted = true
		close(w.ch)
		s.waiting--
		s.inflight++
		ts.inflight++
		ts.admitted++
		ts.deficit--
		idle = 0
		if len(ts.queue) == 0 {
			ts.deficit = 0
			ts.credited = false
		}
	}
}

// advanceLocked moves the cursor to the next lane, opening that lane's
// service turn (its quantum will be granted afresh when it is served).
func (s *fairScheduler) advanceLocked() {
	s.cursor = (s.cursor + 1) % len(s.ring)
	s.ring[s.cursor].credited = false
}

// TenantStats is one tenant's /stats row.
type TenantStats struct {
	Weight      int   `json:"weight"`
	MaxInFlight int   `json:"max_inflight,omitempty"`
	MaxQueue    int   `json:"max_queue,omitempty"`
	InFlight    int   `json:"in_flight"`
	Waiting     int   `json:"waiting"`
	Admitted    int64 `json:"admitted"`
	Queued      int64 `json:"queued"`
	Rejected    int64 `json:"rejected"`
	Degraded    int64 `json:"degraded"` // filled by the engine from its metric vec
}

// TenantsSnapshot returns per-tenant admission stats keyed by lane name.
func (s *fairScheduler) TenantsSnapshot() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.ring))
	for _, ts := range s.ring {
		out[ts.cfg.Name] = TenantStats{
			Weight:      ts.cfg.Weight,
			MaxInFlight: ts.cfg.MaxInFlight,
			MaxQueue:    ts.cfg.MaxQueue,
			InFlight:    ts.inflight,
			Waiting:     len(ts.queue),
			Admitted:    ts.admitted,
			Queued:      ts.queued,
			Rejected:    ts.rejected,
		}
	}
	return out
}

// Waiting returns the number of queued (not yet admitted) requests.
func (s *fairScheduler) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// InFlight returns the number of admitted, unreleased requests.
func (s *fairScheduler) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// ClassBudget is a per-query-class evaluation budget. A class budget is
// engine-applied: when it binds, the engine degrades the result to the
// anytime best-so-far package instead of failing the query.
type ClassBudget struct {
	// TimeLimit bounds the evaluation wall clock (0 = none).
	TimeLimit time.Duration `json:"-"`
	// TimeLimitMS is the JSON form of TimeLimit (spqd -classes files).
	TimeLimitMS int64 `json:"time_limit_ms,omitempty"`
	// SolverNodes bounds each MILP solve's branch-and-bound nodes
	// (0 = none).
	SolverNodes int `json:"solver_nodes,omitempty"`
}

// ParseClasses parses the spqd -classes flag format: a comma-separated list
// of name:time_limit_ms[:solver_nodes] entries, e.g.
// "interactive:2000:50000,batch:60000".
func ParseClasses(s string) (map[string]ClassBudget, error) {
	out := make(map[string]ClassBudget)
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("class %q: want name:time_limit_ms[:solver_nodes]", ent)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("class %q: empty name", ent)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("class %q: duplicate name", name)
		}
		ms, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("class %q: time_limit_ms must be an integer >= 0", ent)
		}
		cb := ClassBudget{TimeLimit: time.Duration(ms) * time.Millisecond, TimeLimitMS: ms}
		if len(parts) > 2 {
			if cb.SolverNodes, err = strconv.Atoi(strings.TrimSpace(parts[2])); err != nil || cb.SolverNodes < 0 {
				return nil, fmt.Errorf("class %q: solver_nodes must be an integer >= 0", ent)
			}
		}
		out[name] = cb
	}
	return out, nil
}

// TenantNames returns the configured lane names in ring order (stable for
// rendering).
func (s *fairScheduler) TenantNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.ring))
	for i, ts := range s.ring {
		names[i] = ts.cfg.Name
	}
	sort.Strings(names)
	return names
}
