package engine

import (
	"time"

	"spq/client"
	"spq/internal/obs"
	"spq/internal/relation"
	"spq/internal/resultcache"
	"spq/internal/stream"
)

// engineMetrics is the engine's single set of operational instruments,
// registered by name in one obs.Registry. Both operator surfaces read from
// it — GET /metrics renders the registry, and Stats() (GET /stats) loads
// the same instruments — so the two cannot drift.
type engineMetrics struct {
	reg *obs.Registry

	queries      *obs.Counter
	failures     *obs.Counter
	rejected     *obs.Counter
	planHits     *obs.Counter
	planMisses   *obs.Counter
	resultHits   *obs.Counter
	resultMisses *obs.Counter

	sketchQueries *obs.Counter
	shardSolves   *obs.Counter

	// Delta-maintenance instruments: mutations accepted, cached state
	// retained vs invalidated by footprint, and warm re-solves served.
	deltasApplied      *obs.Counter
	resultsRetained    *obs.Counter
	resultsInvalidated *obs.Counter
	plansRebased       *obs.Counter
	warmResolves       *obs.Counter

	milpSolves     *obs.Counter
	milpNodes      *obs.Counter
	lpIters        *obs.Counter
	lpWarmStarts   *obs.Counter
	lpDegenPivots  *obs.Counter
	lpBoundFlips   *obs.Counter
	presolveRows   *obs.Counter
	presolveCols   *obs.Counter
	milpWorkersMax *obs.Gauge

	// active counts queries holding a solve slot; queued is the engine's
	// total admission commitment (waiting + solving) — the /metrics queue
	// gauge reports the waiting backlog, derived at scrape time exactly
	// like Stats.Queued.
	active *obs.Gauge
	queued *obs.Gauge

	jobsSubmitted *obs.Counter
	jobsCompleted *obs.Counter
	jobsCancelled *obs.Counter
	jobsEvicted   *obs.Counter
	jobsRunning   *obs.Gauge

	// Per-tenant admission counters, labelled by scheduler lane name
	// (unknown tenant labels fold into the default lane before these are
	// touched, so cardinality is bounded by configuration).
	tenantAdmitted *obs.CounterVec
	tenantQueued   *obs.CounterVec
	tenantRejected *obs.CounterVec
	tenantDegraded *obs.CounterVec

	admissionWait *obs.Histogram
	solveLatency  *obs.Histogram
	cancelLatency *obs.Histogram
	// phase records every finished trace span's duration under its bounded
	// phase label (obs.PhaseName): parse, plan, wait, generate, summarize,
	// validate, solve, partition, sketch/shard, refine, fallback,
	// remote/dispatch, and the per-method evaluation spans.
	phase *obs.HistogramVec
}

func newEngineMetrics(e *Engine) *engineMetrics {
	r := obs.NewRegistry()
	m := &engineMetrics{reg: r}

	m.queries = r.NewCounter("spq_queries_total", "Queries accepted for evaluation (including cache hits and failures).")
	m.failures = r.NewCounter("spq_query_failures_total", "Queries that ended in an error (bad query, timeout, cancellation, solver failure).")
	m.rejected = r.NewCounter("spq_queries_rejected_total", "Queries rejected by admission control (HTTP 429).")
	m.planHits = r.NewCounter("spq_plan_cache_hits_total", "Plan cache hits.")
	m.planMisses = r.NewCounter("spq_plan_cache_misses_total", "Plan cache misses.")
	m.resultHits = r.NewCounter("spq_result_cache_hits_total", "Queries answered from the result cache without solving.")
	m.resultMisses = r.NewCounter("spq_result_cache_misses_total", "Result cache lookups that found no valid entry.")
	m.deltasApplied = r.NewCounter("spq_deltas_applied_total", "Relation deltas accepted by the engine's mutation surface.")
	m.resultsRetained = r.NewCounter("spq_results_retained_after_delta_total", "Cached results rebased across a delta whose footprint missed their query.")
	m.resultsInvalidated = r.NewCounter("spq_results_invalidated_after_delta_total", "Cached results dropped because a delta's footprint hit their query.")
	m.plansRebased = r.NewCounter("spq_plans_rebased_after_delta_total", "Cached plans carried across a delta whose footprint missed their query.")
	m.warmResolves = r.NewCounter("spq_warm_resolves_total", "Queries answered by the warm re-solve fast path (patched summaries + seeded basis).")
	m.sketchQueries = r.NewCounter("spq_sketch_queries_total", "Method=sketch evaluations.")
	m.shardSolves = r.NewCounter("spq_sketch_shard_solves_total", "Per-shard sketch solves fanned out by method=sketch queries.")
	m.milpSolves = r.NewCounter("spq_milp_solves_total", "Branch-and-bound MILP solves run by finished queries.")
	m.milpNodes = r.NewCounter("spq_milp_nodes_total", "Branch-and-bound nodes explored by finished queries.")
	m.lpIters = r.NewCounter("spq_lp_iterations_total", "Simplex iterations run by finished queries (root and node LP solves).")
	m.lpWarmStarts = r.NewCounter("spq_lp_warm_starts_total", "Node LPs reinstated from a parent basis by dual simplex instead of solved cold.")
	m.lpDegenPivots = r.NewCounter("spq_lp_degen_pivots_total", "Degenerate simplex pivots (zero step length) across all LP solves.")
	m.lpBoundFlips = r.NewCounter("spq_lp_bound_flips_total", "Dual simplex iterations resolved by a bound flip instead of a basis exchange (eta update skipped).")
	m.presolveRows = r.NewCounter("spq_presolve_rows_total", "Constraint rows eliminated by MILP root presolve.")
	m.presolveCols = r.NewCounter("spq_presolve_cols_total", "Variable columns eliminated by MILP root presolve.")
	m.milpWorkersMax = r.NewGauge("spq_milp_workers_max", "Largest per-solve branch-and-bound worker bound observed.")
	m.active = r.NewGauge("spq_active_queries", "Queries currently holding a solve slot.")
	m.queued = r.NewGauge("spq_admission_commitment", "Total admission commitment: queries waiting for a slot plus queries solving.")
	r.NewGaugeFunc("spq_queued_queries", "Queries waiting for a solve slot (admission backlog).", func() float64 {
		w := m.queued.Value() - m.active.Value()
		if w < 0 {
			w = 0
		}
		return float64(w)
	})
	m.jobsSubmitted = r.NewCounter("spq_jobs_submitted_total", "Async jobs accepted by Submit.")
	m.jobsCompleted = r.NewCounter("spq_jobs_completed_total", "Jobs that reached succeeded or failed.")
	m.jobsCancelled = r.NewCounter("spq_jobs_cancelled_total", "Jobs cancelled by the caller.")
	m.jobsEvicted = r.NewCounter("spq_jobs_evicted_total", "Finished jobs dropped from the bounded history.")
	m.jobsRunning = r.NewGauge("spq_jobs_running", "Jobs currently in the running state.")

	m.tenantAdmitted = r.NewCounterVec("spq_tenant_admitted_total", "Queries admitted to a solve slot, by tenant lane.", "tenant")
	m.tenantQueued = r.NewCounterVec("spq_tenant_queued_total", "Queries that entered the admission queue, by tenant lane.", "tenant")
	m.tenantRejected = r.NewCounterVec("spq_tenant_rejected_total", "Queries rejected by admission control (overloaded or tenant_quota), by tenant lane.", "tenant")
	m.tenantDegraded = r.NewCounterVec("spq_tenant_degraded_total", "Responses degraded to the anytime best-so-far package by an engine-applied budget, by tenant lane.", "tenant")

	m.admissionWait = r.NewHistogram("spq_admission_wait_seconds", "Time queries waited for a solve slot.", nil)
	m.solveLatency = r.NewHistogram("spq_solve_seconds", "Evaluation wall-clock per solved query (cache hits excluded).", nil)
	m.cancelLatency = r.NewHistogram("spq_cancel_latency_seconds", "Time from a cancel request to the job reaching a terminal state.", nil)
	m.phase = r.NewHistogramVec("spq_phase_latency_seconds", "Per-phase latency from trace spans, labelled by phase.", "phase", nil)

	r.NewGaugeFunc("spq_plan_cache_entries", "Plan cache size in entries.", func() float64 {
		e.mu.Lock()
		n := e.plans.len()
		e.mu.Unlock()
		return float64(n)
	})
	r.NewGaugeFunc("spq_result_cache_entries", "Result cache size in entries.", func() float64 {
		if e.results == nil {
			return 0
		}
		return float64(e.results.Len())
	})
	// Streaming-pipeline and out-of-core block-cache instruments read the
	// process-wide counters at scrape time (same snapshot Stats() reports).
	r.NewGaugeFunc("spq_stream_blocks_generated", "Scenario value blocks realized on demand by streaming cursors.", func() float64 { return float64(stream.Counters().BlocksGenerated) })
	r.NewGaugeFunc("spq_stream_values_generated", "Individual scenario values realized by streaming cursors.", func() float64 { return float64(stream.Counters().ValuesGenerated) })
	r.NewGaugeFunc("spq_pushdown_kept_tuples", "Tuples that survived WHERE predicate pushdown before scenario generation.", func() float64 { return float64(stream.Counters().PushdownKept) })
	r.NewGaugeFunc("spq_pushdown_filtered_tuples", "Tuples eliminated by WHERE predicate pushdown before scenario generation.", func() float64 { return float64(stream.Counters().PushdownFiltered) })
	r.NewGaugeFunc("spq_colcache_hits", "Out-of-core column block-cache lookups served from cache.", func() float64 { return float64(relation.CacheStats().Hits) })
	r.NewGaugeFunc("spq_colcache_misses", "Out-of-core column block loads (cache misses).", func() float64 { return float64(relation.CacheStats().Misses) })
	r.NewGaugeFunc("spq_colcache_evictions", "Out-of-core column blocks evicted from the cache.", func() float64 { return float64(relation.CacheStats().Evictions) })
	r.NewGaugeFunc("spq_colcache_resident_bytes", "Bytes of out-of-core column blocks currently cached.", func() float64 { return float64(relation.CacheStats().ResidentBytes) })
	// Delta-maintenance instruments below read the process-wide counters of
	// the relation and summarization layers at scrape time.
	r.NewGaugeFunc("spq_delta_cells_patched", "Deterministic column cells patched by applied deltas.", func() float64 { return float64(relation.DeltaStats().CellsPatched) })
	r.NewGaugeFunc("spq_partitions_retained", "Cached partitionings rebased across a delta untouched (footprint disjoint from the features).", func() float64 { return float64(relation.DeltaStats().PartitionsRetained) })
	r.NewGaugeFunc("spq_partitions_patched", "Cached partitionings patched shard-wise (only affected shards re-clustered).", func() float64 { return float64(relation.DeltaStats().PartitionsPatched) })
	r.NewGaugeFunc("spq_partitions_rebuilt", "Partitionings built from scratch.", func() float64 { return float64(relation.DeltaStats().PartitionsRebuilt) })
	r.NewGaugeFunc("spq_partition_shards_rebuilt", "Shards re-clustered by partitioning patches.", func() float64 { return float64(relation.DeltaStats().ShardsRebuilt) })
	r.NewGaugeFunc("spq_partition_shards_retained", "Shards carried over unchanged by partitioning patches and rebases.", func() float64 { return float64(relation.DeltaStats().ShardsRetained) })
	r.NewGaugeFunc("spq_stale_view_errors", "Reads rejected with ErrStaleView (view or partitioning superseded by a delta).", func() float64 { return float64(relation.DeltaStats().StaleViews) })
	r.NewGaugeFunc("spq_summary_tuples_patched", "Summary tuple folds recomputed by delta patches (the k in kxM).", func() float64 { return float64(stream.Counters().SummaryTuplesPatched) })
	r.NewGaugeFunc("spq_summary_tuples_reused", "Summary tuple folds reused unchanged by delta patches (the N-k in kxM).", func() float64 { return float64(stream.Counters().SummaryTuplesReused) })
	if c, ok := e.results.(interface{ Counters() resultcache.Counters }); ok {
		r.NewGaugeFunc("spq_cache_replicated", "Result-cache entries pushed to peers.", func() float64 { return float64(c.Counters().Replicated) })
		r.NewGaugeFunc("spq_cache_received", "Result-cache entries accepted from peers.", func() float64 { return float64(c.Counters().Received) })
		r.NewGaugeFunc("spq_cache_push_errors", "Failed result-cache peer deliveries.", func() float64 { return float64(c.Counters().PushErrors) })
		r.NewGaugeFunc("spq_cache_repl_dropped", "Result-cache pushes dropped on queue overflow.", func() float64 { return float64(c.Counters().Dropped) })
	}
	if rs := e.opts.RemoteStats; rs != nil {
		r.NewGaugeFunc("spq_remote_dispatched", "Sub-solves dispatched to worker daemons.", func() float64 { return float64(rs().Dispatched) })
		r.NewGaugeFunc("spq_remote_fallbacks", "Sub-solves that fell back to solving locally.", func() float64 { return float64(rs().Fallbacks) })
		r.NewGaugeFunc("spq_remote_failures", "Observed worker dispatch failures (drives backoff).", func() float64 { return float64(rs().Failures) })
		r.NewGaugeFunc("spq_remote_workers_down", "Workers currently in failure backoff.", func() float64 { return float64(rs().WorkersDown) })
	}
	return m
}

// observeSpan is the Trace → metrics bridge: every finished span feeds the
// phase-latency histogram under its bounded phase label.
func (m *engineMetrics) observeSpan(name string, d time.Duration) {
	m.phase.Observe(obs.PhaseName(name), d.Seconds())
}

// newTrace mints a trace whose span completions feed the engine's
// phase-latency histograms. id "" mints a fresh trace ID.
func (e *Engine) newTrace(id, rootName string) *obs.Trace {
	if id == "" {
		id = obs.NewTraceID()
	}
	tr := obs.NewTraceWithID(id, rootName)
	tr.OnSpanEnd(e.m.observeSpan)
	return tr
}

// Metrics returns the engine's instrument registry (the GET /metrics
// source), for callers that want to register their own instruments next to
// the engine's or render the exposition elsewhere.
func (e *Engine) Metrics() *obs.Registry { return e.m.reg }

// wireTrace converts the internal span data to the v1 wire type. The two
// structs are field-for-field identical; the copy keeps the public client
// package free of internal imports.
func wireTrace(d *obs.SpanData) *client.TraceSpan {
	if d == nil {
		return nil
	}
	out := &client.TraceSpan{
		TraceID:     d.TraceID,
		Name:        d.Name,
		StartUnixUS: d.StartUnixUS,
		DurationUS:  d.DurationUS,
		Attrs:       d.Attrs,
	}
	for _, c := range d.Children {
		out.Children = append(out.Children, wireTrace(c))
	}
	return out
}
