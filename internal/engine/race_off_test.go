//go:build !race

package engine

// raceEnabled scales solve-size and latency bounds in jobs_test.go: race
// instrumentation slows the LP inner loops by an order of magnitude.
const raceEnabled = false
