package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/obs"
	"spq/internal/relation"
	"spq/internal/remote"
	"spq/internal/spaql"
)

// This file is the engine's async job manager: the server side of the v1
// API. A Job wraps one Engine.Query call run on its own goroutine, so
// callers can submit work, observe per-iteration progress (fed by the
// core.Progress seam), poll best-so-far packages, and cancel — while the
// existing admission control, caches, and timeouts keep applying unchanged:
// the job's query goes through exactly the same Query path as a synchronous
// call. Wire rendering uses the client package's types, which are the v1
// JSON contract.

// maxJobEvents bounds each job's retained progress history; older events
// are dropped (their seq numbers remain monotone, so pollers notice gaps).
const maxJobEvents = 1024

// Job is one asynchronous query evaluation tracked by the engine. All
// exported access goes through Snapshot/Poll (wire-typed, race-free);
// Done() closes when the job reaches a terminal state.
type Job struct {
	id      string
	query   string
	method  string
	created time.Time
	cancel  context.CancelFunc
	done    chan struct{}
	// trace is the job's span tree, minted at submission (adopting the
	// upstream trace ID when the request carried one) and never nil. It is
	// strictly observational: the evaluation is bit-identical with or
	// without it.
	trace *obs.Trace

	mu       sync.Mutex
	state    client.JobState
	started  time.Time
	finished time.Time
	seq      int
	events   []client.Progress
	bestFeas bool
	bestObj  float64
	bestX    []float64
	bestRel  *relation.Relation
	// bestEps/bestM/bestZ/bestIter describe the adopted incumbent's round:
	// the achieved validation gap and scenario/summary counts. They render
	// the degraded wire result when a deadline salvages the best-so-far.
	bestEps   float64
	bestM     int
	bestZ     int
	bestIter  int
	result    *Result
	wire      *client.QueryResult // rendered once at completion
	wireTr    *client.TraceSpan   // rendered once at completion
	err       *client.Error
	cancelled bool          // CancelJob was called before the job finished
	cancelAt  time.Time     // first CancelJob call (cancel-latency metric)
	changed   chan struct{} // closed+replaced on every update (broadcast)
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the engine-level result and error of a finished job
// (nil, nil if the job is still active). Cancelled jobs report a
// context.Canceled-wrapping error via the wire Error only; here they
// return (nil, non-nil).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.result, nil
}

// bump advances the job's sequence number and wakes every poller. Callers
// hold j.mu.
func (j *Job) bump() {
	j.seq++
	close(j.changed)
	j.changed = make(chan struct{})
}

// Snapshot renders the job as its v1 wire resource. Events with Seq >
// since are included (pass the previous snapshot's Seq to receive only new
// ones; math.MaxInt suppresses events entirely).
//
// The O(N) best-package rendering happens outside the job mutex — the
// solve's progress callback takes that mutex synchronously, so a poller
// must never hold it for relation-sized work. Reading bestX/events after
// unlocking is safe: candidates are freshly allocated per report and the
// event log is append-only (trims copy to a new array).
func (j *Job) Snapshot(since int) *client.Job {
	j.mu.Lock()
	out := &client.Job{
		ID:        j.id,
		State:     j.state,
		Query:     j.query,
		Method:    j.method,
		Seq:       j.seq,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		out.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		out.FinishedAt = &t
	}
	if n := len(j.events); n > 0 {
		ev := j.events[n-1]
		out.Progress = &ev
		for _, e := range j.events {
			if e.Seq > since {
				out.Events = append(out.Events, e)
			}
		}
	}
	bestX, bestRel := j.bestX, j.bestRel
	out.BestFeasible = j.bestFeas
	out.BestObjective = j.bestObj
	out.Result = j.wire
	out.Trace = j.wireTr // rendered once the job is terminal
	out.Error = j.err
	j.mu.Unlock()

	switch {
	case bestX != nil:
		out.BestPackage = packageOf(bestX, bestRel)
	case out.Result != nil:
		// A delta trimmed the job's package vector (trimAfterDelta): the
		// rendered wire result still carries the final package.
		out.BestFeasible = out.Result.Feasible
		out.BestObjective = out.Result.Objective
		out.BestPackage = out.Result.Package
	default:
		out.BestFeasible = false
		out.BestObjective = 0
	}
	return out
}

// trimAfterDelta releases a terminal job's relation-sized state once its
// table was mutated: the full Solution, the package vector, and — most
// importantly — the pinned pre-delta snapshot they reference are dropped, so
// a long job history cannot keep every superseded relation version resident.
// The rendered wire result (OrigIndex-mapped package tuples, objective,
// counters) keeps serving polls and the legacy /query shim unchanged.
func (j *Job) trimAfterDelta(table string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() || j.wire == nil || j.result == nil {
		return
	}
	if j.result.Query == nil || !strings.EqualFold(j.result.Query.Table, table) {
		return
	}
	j.result = nil
	j.bestX = nil
	j.bestRel = nil
}

// WireResult returns the rendered v1 result and error of a finished job
// (nil, nil while the job is active). Unlike Result, it survives
// trimAfterDelta, so it is the accessor response-rendering paths should use.
func (j *Job) WireResult() (*client.QueryResult, *client.Error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil, nil
	}
	return j.wire, j.err
}

// Poll blocks until the job's sequence number exceeds since, the job is
// terminal, the wait elapses, or ctx is done — then returns a snapshot.
// A non-positive wait returns immediately (plain poll).
func (j *Job) Poll(ctx context.Context, since int, wait time.Duration) *client.Job {
	deadline := time.Now().Add(wait)
	for {
		j.mu.Lock()
		ready := j.seq > since || j.state.Terminal()
		ch := j.changed
		j.mu.Unlock()
		remain := time.Until(deadline)
		if ready || wait <= 0 || remain <= 0 {
			return j.Snapshot(since)
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
		case <-timer.C:
		case <-ctx.Done():
		}
		timer.Stop()
		if ctx.Err() != nil {
			return j.Snapshot(since)
		}
	}
}

// packageOf maps a candidate X (indexed like rel) to base-relation
// multiplicities, sorted by tuple index.
func packageOf(x []float64, rel *relation.Relation) []client.PackageTuple {
	mult := map[int]int{}
	for i, v := range x {
		if v > 0 {
			mult[rel.OrigIndex(i)] += int(v + 0.5)
		}
	}
	out := make([]client.PackageTuple, 0, len(mult))
	for t, c := range mult {
		out = append(out, client.PackageTuple{Tuple: t, Count: c})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tuple < out[b].Tuple })
	return out
}

// resultToWire renders an engine Result as the v1 result payload. raw adds
// the solver-fidelity solution (exact multiplicities over the solved view)
// for sub-problem submissions — the remote solver needs bit-exact values,
// not the rounded base-tuple package.
func resultToWire(res *Result, solve time.Duration, raw bool) *client.QueryResult {
	out := &client.QueryResult{
		Feasible:       res.Feasible,
		Objective:      res.Objective,
		Surpluses:      res.Surpluses,
		M:              res.M,
		Z:              res.Z,
		Iterations:     len(res.Iterations),
		PackageSize:    res.PackageSize(),
		Package:        packageOf(res.X, res.Rel),
		PlanCacheHit:   res.CacheHit,
		ResultCacheHit: res.ResultCacheHit,
		WaitMS:         res.Wait.Milliseconds(),
		SolveMS:        solve.Milliseconds(),
	}
	// eps_upper is +Inf when no bound exists; JSON has no Inf, so omit it.
	if !math.IsInf(res.EpsUpper, 0) && !math.IsNaN(res.EpsUpper) {
		out.EpsUpper = res.EpsUpper
	}
	if res.Degraded {
		out.Degraded = true
		out.Gap = out.EpsUpper // the achieved (not converged) validation gap
	}
	if res.Sketch != nil {
		out.Sketch = &client.SketchInfo{
			Groups:     res.Sketch.Groups,
			Shards:     res.Sketch.Shards,
			Candidates: res.Sketch.Candidates,
			FellBack:   res.Sketch.FellBack,
		}
	}
	if raw {
		out.Raw = remote.ToWireSolution(res.Solution)
	}
	return out
}

// errToWire maps an engine/evaluation error to the v1 error contract.
// Deterministic infeasibility gets its own stable code (it is a property of
// the problem, which distributed callers must distinguish from a worker
// fault), and a structured worker error already in the chain — the remote
// solver wraps them with %w — keeps its stable code instead of collapsing
// to "internal", so codes propagate end-to-end through any number of
// dispatch hops.
func errToWire(err error) *client.Error {
	var apiErr *client.Error
	switch {
	case errors.Is(err, ErrTenantQuota):
		// Checked before ErrOverloaded so the finer code wins if both are in
		// a chain: "my lane is full" is actionable per-tenant backpressure,
		// "the fleet is full" calls for global backoff.
		return &client.Error{Code: client.CodeTenantQuota, Message: err.Error(), RetryAfterMS: 1000, HTTPStatus: 429}
	case errors.Is(err, ErrOverloaded):
		return &client.Error{Code: client.CodeOverloaded, Message: err.Error(), RetryAfterMS: 1000, HTTPStatus: 429}
	case errors.Is(err, ErrDegraded):
		return &client.Error{Code: client.CodeDegradedUnavailable, Message: err.Error(), RetryAfterMS: 1000, HTTPStatus: 429}
	case errors.Is(err, context.DeadlineExceeded):
		return &client.Error{Code: client.CodeTimeout, Message: err.Error(), HTTPStatus: 504}
	case errors.Is(err, context.Canceled):
		return &client.Error{Code: client.CodeCancelled, Message: err.Error(), HTTPStatus: 504}
	case errors.Is(err, core.ErrInfeasible):
		// Checked before ErrBadQuery: the engine wraps infeasibility in
		// ErrBadQuery for the HTTP 400 mapping, but the finer code wins.
		return &client.Error{Code: client.CodeInfeasible, Message: err.Error(), HTTPStatus: 400}
	case errors.Is(err, ErrUnknownMethod):
		return &client.Error{Code: client.CodeUnknownMethod, Message: err.Error(), HTTPStatus: 400}
	case errors.Is(err, ErrBadQuery):
		return &client.Error{Code: client.CodeInvalidQuery, Message: err.Error(), HTTPStatus: 400}
	case errors.As(err, &apiErr):
		out := client.Error{
			Code:         apiErr.Code,
			Message:      err.Error(), // the full chain, worker context included
			RetryAfterMS: apiErr.RetryAfterMS,
			HTTPStatus:   apiErr.HTTPStatus,
		}
		if out.HTTPStatus == 0 {
			out.HTTPStatus = 500
		}
		return &out
	default:
		return &client.Error{Code: client.CodeInternal, Message: err.Error(), HTTPStatus: 500}
	}
}

// Submit starts one query evaluation asynchronously and returns its Job.
// The query text and method are validated synchronously (so malformed
// submissions fail fast with ErrBadQuery); admission of the solve itself
// happens inside the job, under the same control as synchronous queries.
// At most Options.MaxJobs jobs may be active at once; beyond that Submit
// fails with ErrOverloaded.
func (e *Engine) Submit(req Request) (*Job, error) {
	if _, err := spaql.Parse(req.Query); err != nil {
		e.m.queries.Inc()
		e.m.failures.Inc()
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	if m := strings.ToLower(req.Method); m != "sketch" {
		if _, err := core.SolverByName(m); err != nil {
			e.m.queries.Inc()
			e.m.failures.Inc()
			return nil, fmt.Errorf("%w %q", ErrUnknownMethod, req.Method)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:      fmt.Sprintf("q-%d", e.jobSeq.Add(1)),
		query:   req.Query,
		method:  strings.ToLower(req.Method),
		created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   client.JobQueued,
		changed: make(chan struct{}),
	}
	tid, parent := obs.ParseTraceParent(req.TraceParent)
	j.trace = e.newTrace(tid, "query")
	j.trace.Root().SetAttr("job", j.id)
	if parent != "" {
		j.trace.Root().SetAttr("parent", parent)
	}

	e.jobsMu.Lock()
	if len(e.jobList)-e.jobFinished >= e.opts.MaxJobs {
		e.jobsMu.Unlock()
		cancel()
		// Mirror Engine.Query's counting for rejected requests, so the
		// queries total still means "requests received" after the legacy
		// shim moved onto this path.
		e.m.queries.Inc()
		e.m.rejected.Inc()
		return nil, ErrOverloaded
	}
	e.jobsByID[j.id] = j
	e.jobList = append(e.jobList, j)
	e.jobsMu.Unlock()
	e.m.jobsSubmitted.Inc()

	go e.runJob(ctx, j, req)
	return j, nil
}

// runJob executes the job's query on the engine and finalizes the job.
func (e *Engine) runJob(ctx context.Context, j *Job, req Request) {
	req.onAdmit = func() {
		e.m.jobsRunning.Add(1)
		j.mu.Lock()
		j.state = client.JobRunning
		j.started = time.Now()
		j.bump()
		j.mu.Unlock()
	}
	userProgress := req.Progress
	req.Progress = func(p core.Progress) {
		j.observe(p)
		if userProgress != nil {
			userProgress(p)
		}
	}

	// The solve runs on this bare goroutine, not under net/http's
	// per-connection recovery: a panic on a poisoned query must fail the
	// one job, not take down the daemon and every other in-flight job.
	var res *Result
	var err error
	var solve time.Duration
	func() {
		defer func() {
			if r := recover(); r != nil {
				res, err = nil, fmt.Errorf("engine: evaluation panicked: %v", r)
				e.m.failures.Inc()
			}
		}()
		// A job cancelled while still queued must not complete from the
		// result cache.
		if err = ctx.Err(); err != nil {
			return
		}
		start := time.Now()
		res, err = e.Query(obs.ContextWithSpan(ctx, j.trace.Root()), req)
		solve = time.Since(start)
	}()

	root := j.trace.Root()
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()

	j.mu.Lock()
	if j.state == client.JobRunning {
		e.m.jobsRunning.Add(-1)
	}
	j.finished = time.Now()
	j.wireTr = wireTrace(j.trace.Data())
	if !j.cancelAt.IsZero() {
		e.m.cancelLatency.Observe(j.finished.Sub(j.cancelAt).Seconds())
	}
	switch {
	case err == nil:
		j.state = client.JobSucceeded
		j.result = res
		j.wire = resultToWire(res, solve, req.Solve != nil)
		// The final package is by definition the best one.
		j.bestFeas = res.Feasible
		j.bestObj = res.Objective
		j.bestX = res.X
		j.bestRel = res.Rel
		e.m.jobsCompleted.Inc()
	case j.cancelled && errors.Is(err, context.Canceled):
		j.state = client.JobCancelled
		j.err = &client.Error{Code: client.CodeCancelled, Message: "job cancelled by caller", HTTPStatus: 504}
		e.m.jobsCancelled.Inc()
	case !j.cancelled && j.bestFeas && j.bestX != nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDegraded)):
		// Deadline-aware degradation, job-manager side: the evaluation died
		// on its deadline, but the progress seam already delivered a
		// validated feasible incumbent (every report is a candidate that
		// passed validation against the pinned snapshot). Serve it as a
		// degraded success instead of failing — the paper's anytime
		// contract: the best package found within the budget.
		j.state = client.JobSucceeded
		size := 0.0
		for _, v := range j.bestX {
			size += v
		}
		w := &client.QueryResult{
			Feasible:    true,
			Degraded:    true,
			Objective:   j.bestObj,
			M:           j.bestM,
			Z:           j.bestZ,
			Iterations:  j.bestIter,
			PackageSize: size,
			Package:     packageOf(j.bestX, j.bestRel),
			SolveMS:     solve.Milliseconds(),
		}
		if !math.IsInf(j.bestEps, 0) && !math.IsNaN(j.bestEps) {
			w.EpsUpper = j.bestEps
			w.Gap = j.bestEps
		}
		j.wire = w
		e.m.jobsCompleted.Inc()
		e.m.tenantDegraded.With(e.sched.Canonical(req.Tenant)).Inc()
	default:
		j.state = client.JobFailed
		j.err = errToWire(err)
		e.m.jobsCompleted.Inc()
	}
	j.bump()
	elapsed := j.finished.Sub(j.created)
	j.mu.Unlock()
	close(j.done)
	j.cancel() // release the context's resources
	e.maybeLogSlow(j.trace, j.query, j.method, elapsed)

	// Bound the finished-job history.
	e.jobsMu.Lock()
	e.jobFinished++
	for e.jobFinished > e.opts.JobHistory {
		evicted := false
		for i, old := range e.jobList {
			old.mu.Lock()
			terminal := old.state.Terminal()
			old.mu.Unlock()
			if terminal {
				e.jobList = append(e.jobList[:i], e.jobList[i+1:]...)
				delete(e.jobsByID, old.id)
				e.jobFinished--
				e.m.jobsEvicted.Inc()
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
	e.jobsMu.Unlock()
}

// observe folds one core progress report into the job's event log and
// best-so-far tracking. Reports may arrive concurrently (sketch shards).
// The report's Improved/Best* fields are phase-local (each sketch shard
// tracks its own incumbent), so the job-level best compares candidates
// itself — feasibility first, then objective in the query's sense — the
// same rule the core solvers apply.
func (j *Job) observe(p core.Progress) {
	// Relation-sized work stays outside the mutex (see Snapshot).
	size := 0.0
	for _, v := range p.X {
		size += v
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if p.X != nil {
		adopt := j.bestX == nil
		if !adopt && p.Feasible != j.bestFeas {
			adopt = p.Feasible
		} else if !adopt && p.Feasible == j.bestFeas {
			if p.Maximize {
				adopt = p.Objective > j.bestObj
			} else {
				adopt = p.Objective < j.bestObj
			}
		}
		if adopt {
			j.bestFeas = p.Feasible
			j.bestObj = p.Objective
			j.bestX = p.X
			j.bestRel = p.Rel
			j.bestEps = p.EpsUpper
			j.bestM = p.M
			j.bestZ = p.Z
			j.bestIter = p.Iteration
		}
	}
	j.bump()
	j.events = append(j.events, client.Progress{
		Seq:           j.seq,
		Phase:         p.Phase,
		Iteration:     p.Iteration,
		M:             p.M,
		Z:             p.Z,
		Feasible:      p.Feasible,
		Objective:     p.Objective,
		Improved:      p.Improved,
		BestFeasible:  p.BestFeasible,
		BestObjective: p.BestObjective,
		PackageSize:   size,
		ElapsedMS:     p.Elapsed.Milliseconds(),
	})
	if len(j.events) > maxJobEvents {
		j.events = append(j.events[:0:0], j.events[len(j.events)-maxJobEvents:]...)
	}
}

// TraceData renders the job's span tree as its v1 wire type (the
// GET /v1/queries/{id}/trace payload). It works on running jobs too:
// unfinished spans report a zero duration.
func (j *Job) TraceData() *client.TraceSpan {
	return wireTrace(j.trace.Data())
}

// JobByID returns a tracked job (active or retained in history).
func (e *Engine) JobByID(id string) (*Job, bool) {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	j, ok := e.jobsByID[id]
	return j, ok
}

// CancelJob requests cancellation of a job. Cancelling a queued job
// withdraws it before it takes a solve slot; cancelling a running job
// aborts the solve through the context plumbing (the MILP search polls it
// per branch-and-bound node) and frees its admission slot. Terminal jobs
// are unaffected (cancel is idempotent). The returned bool reports whether
// the id was known.
func (e *Engine) CancelJob(id string) (*Job, bool) {
	j, ok := e.JobByID(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelled = true
		if j.cancelAt.IsZero() {
			j.cancelAt = time.Now()
		}
	}
	j.mu.Unlock()
	j.cancel()
	return j, true
}

// Jobs lists every tracked job in submission order (active first come
// first, then the bounded finished history interleaved at their original
// positions).
func (e *Engine) Jobs() []*Job {
	e.jobsMu.Lock()
	defer e.jobsMu.Unlock()
	return append([]*Job(nil), e.jobList...)
}
