package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
)

// testCatalog is a minimal Catalog over a name → relation map.
type testCatalog map[string]*relation.Relation

func (c testCatalog) Table(name string) (*relation.Relation, bool) {
	rel, ok := c[strings.ToLower(name)]
	return rel, ok
}

// newCatalog builds a small tractable stocks table with precomputed means.
func newCatalog(t *testing.T, n int) testCatalog {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		gains[i] = dist.Normal{Mu: 0.5 + float64(i%5)*0.4, Sigma: 0.5 + float64(i%3)*0.5}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return testCatalog{"stocks": rel}
}

const testQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -5 WITH PROBABILITY >= 0.8
	MAXIMIZE EXPECTED SUM(gain)`

func smallCoreOptions() *core.Options {
	return &core.Options{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60}
}

func TestEngineQueryAndPlanCache(t *testing.T) {
	cat := newCatalog(t, 15)
	// Result cache off so the repeated query exercises the plan cache (with
	// it on, the identical request would be served without planning at all;
	// that path is covered by the resultcache tests).
	e := New(cat, &Options{ResultCacheSize: -1})

	res, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("query infeasible: %+v", res.Solution)
	}
	if res.CacheHit {
		t.Fatal("first query reported a plan-cache hit")
	}
	if len(res.Multiplicities()) == 0 {
		t.Fatal("empty package")
	}

	// Same query, reformatted: must hit the cache and return the same answer.
	reformatted := strings.Join(strings.Fields(testQuery), "  \n\t ")
	res2, err := e.Query(context.Background(), Request{Query: reformatted, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Fatal("reformatted query missed the plan cache")
	}
	if res2.Objective != res.Objective {
		t.Fatalf("cached plan changed the answer: %v vs %v", res2.Objective, res.Objective)
	}

	st := e.Stats()
	if st.Queries != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats = %+v, want 2 queries, 1 hit, 1 miss", st)
	}
}

// TestEnginePlanCacheCommentDisambiguation guards the cache-key choice:
// two texts that differ only inside a "--" line comment are different
// statements (the comment can swallow a clause), so they must not share a
// plan — while a genuinely equivalent reformatting must.
func TestEnginePlanCacheCommentDisambiguation(t *testing.T) {
	cat := newCatalog(t, 12)
	e := New(cat, nil)
	withObjective := "SELECT PACKAGE(*) FROM stocks SUCH THAT SUM(price) <= 300 -- note\nMAXIMIZE EXPECTED SUM(gain)"
	// Same bytes on one line: the comment swallows MAXIMIZE — no objective.
	withoutObjective := strings.ReplaceAll(withObjective, "\n", " ")

	r1, err := e.Query(context.Background(), Request{Query: withObjective, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Query.Objective == nil {
		t.Fatal("first query lost its objective")
	}
	r2, err := e.Query(context.Background(), Request{Query: withoutObjective, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("comment-swallowed query shared the commented query's plan")
	}
	if r2.Query.Objective != nil {
		t.Fatal("comment-swallowed query kept an objective it does not have")
	}
}

func TestEnginePlanCacheInvalidation(t *testing.T) {
	cat := newCatalog(t, 12)
	e := New(cat, nil)
	if _, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()}); err != nil {
		t.Fatal(err)
	}

	// Mutating the relation bumps its version: the cached plan must die.
	rel, _ := cat.Table("stocks")
	means, err := rel.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.SetMeans("gain", append([]float64(nil), means...)); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("plan survived a relation version bump")
	}
}

func TestEngineAdmissionControl(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{MaxInFlight: 1, MaxQueue: -1, Parallelism: 1})
	// MaxQueue < 0 normalizes to... nothing: -1 means no waiters allowed.

	// Occupy the only solve slot through the scheduler seam (what a running
	// query holds while it solves).
	if err := e.sched.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	defer e.sched.Release("")

	// With the slot held and no queue capacity, a query must be rejected
	// immediately rather than waiting.
	start := time.Now()
	_, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("rejection was not immediate")
	}
	if e.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", e.Stats().Rejected)
	}

	// A query that waits for the slot respects its context deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	e2 := New(cat, &Options{MaxInFlight: 1, MaxQueue: 4, Parallelism: 1})
	if err := e2.sched.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	defer e2.sched.Release("")
	_, err = e2.Query(ctx, Request{Query: testQuery, Options: smallCoreOptions()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query err = %v, want DeadlineExceeded", err)
	}
}

func TestEngineQueryTimeout(t *testing.T) {
	cat := newCatalog(t, 40)
	e := New(cat, &Options{Parallelism: 2})
	hard := `SELECT PACKAGE(*) FROM stocks SUCH THAT
		SUM(price) <= 2000 AND
		SUM(gain) >= 500 WITH PROBABILITY >= 0.99
		MAXIMIZE EXPECTED SUM(gain)`
	_, err := e.Query(context.Background(), Request{
		Query:   hard,
		Timeout: 100 * time.Millisecond,
		Options: &core.Options{Seed: 1, ValidationM: 200000, InitialM: 50, IncrementM: 50, MaxM: 1000},
	})
	// The engine turns the request deadline into a solver budget; with no
	// feasible incumbent by the cutoff the query degrades to ErrDegraded
	// (429) rather than running into the raw context deadline. Accept the
	// context error too: whether the budget or the deadline fires first
	// depends on how long the oversized validation round overruns.
	if !errors.Is(err, ErrDegraded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDegraded or DeadlineExceeded", err)
	}
}

func TestEngineUnknownTableAndMethod(t *testing.T) {
	e := New(newCatalog(t, 10), nil)
	if _, err := e.Query(context.Background(), Request{Query: strings.Replace(testQuery, "stocks", "nope", 1)}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := e.Query(context.Background(), Request{Query: testQuery, Method: "quantum"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestHTTPHandler(t *testing.T) {
	e := New(newCatalog(t, 15), nil)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	// Liveness.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Query.
	body, _ := json.Marshal(QueryRequest{
		Query: testQuery, Seed: 1, ValidationM: 1500, InitialM: 10, MaxM: 60,
	})
	resp, err = http.Post(srv.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qres QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if !qres.Feasible || len(qres.Package) == 0 {
		t.Fatalf("bad query response: %+v", qres)
	}

	// Malformed query.
	resp, err = http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"query": "SELECT NONSENSE"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query status %d, want 400", resp.StatusCode)
	}

	// Stats reflect the traffic.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Queries < 2 {
		t.Fatalf("stats queries = %d, want >= 2", st.Queries)
	}
	// The successful query ran MILP solves through the branch-and-bound
	// search; the node/worker counters must surface that.
	if st.MilpSolves < 1 || st.MilpNodes < 1 {
		t.Fatalf("stats milp solves/nodes = %d/%d, want ≥ 1 each", st.MilpSolves, st.MilpNodes)
	}
	if st.MilpWorkersMax < 1 {
		t.Fatalf("stats milp_workers_max = %d, want ≥ 1", st.MilpWorkersMax)
	}
}

// TestEngineConcurrentQueries hammers one engine from many goroutines; run
// under -race this is the data-race check for the session layer + plan
// cache + parallel validation combination.
func TestEngineConcurrentQueries(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{MaxInFlight: 4, Parallelism: 2})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	objs := make([]float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
			if err != nil {
				errs[g] = err
				return
			}
			objs[g] = res.Objective
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < 8; g++ {
		if objs[g] != objs[0] {
			t.Fatalf("concurrent queries diverged: %v vs %v", objs[g], objs[0])
		}
	}
}
