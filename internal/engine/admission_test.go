package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spq/client"
)

func TestParseTenants(t *testing.T) {
	cfgs, err := ParseTenants("acme:3, free:1:2:8 ,bulk:2:0:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantConfig{
		{Name: "acme", Weight: 3},
		{Name: "free", Weight: 1, MaxInFlight: 2, MaxQueue: 8},
		{Name: "bulk", Weight: 2, MaxInFlight: 0, MaxQueue: 4},
	}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(cfgs), len(want))
	}
	for i := range want {
		if cfgs[i] != want[i] {
			t.Fatalf("tenant %d = %+v, want %+v", i, cfgs[i], want[i])
		}
	}

	for _, bad := range []string{
		"acme",            // missing weight
		"acme:0",          // weight < 1
		"acme:x",          // weight not an integer
		":3",              // empty name
		"a:1,a:2",         // duplicate
		"a:1:-1",          // negative cap
		"a:1:2:-3",        // negative queue cap
		"a:1:2:3:4",       // too many fields
		"acme:3,,free:oo", // bad entry after empty (empty entries are skipped)
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Fatalf("ParseTenants(%q) accepted", bad)
		}
	}

	// Empty and all-whitespace configs are fine: no tenants.
	if cfgs, err := ParseTenants(" , "); err != nil || len(cfgs) != 0 {
		t.Fatalf("empty config: %v, %v", cfgs, err)
	}
}

func TestParseClasses(t *testing.T) {
	classes, err := ParseClasses("interactive:2000:50000, batch:60000")
	if err != nil {
		t.Fatal(err)
	}
	ic, ok := classes["interactive"]
	if !ok || ic.TimeLimit != 2*time.Second || ic.SolverNodes != 50000 {
		t.Fatalf("interactive = %+v", ic)
	}
	bc, ok := classes["batch"]
	if !ok || bc.TimeLimit != time.Minute || bc.SolverNodes != 0 {
		t.Fatalf("batch = %+v", bc)
	}

	for _, bad := range []string{
		"interactive",    // missing budget
		"interactive:-1", // negative time
		"interactive:x",  // not an integer
		":100",           // empty name
		"a:1,a:2",        // duplicate
		"a:100:-5",       // negative node budget
		"a:100:5:9",      // too many fields
	} {
		if _, err := ParseClasses(bad); err == nil {
			t.Fatalf("ParseClasses(%q) accepted", bad)
		}
	}
}

// runSchedulerTrial measures the scheduler's admission order under a full
// backlog: it plugs the capacity (via the default lane), queues `perTenant`
// one-shot waiters per tenant, unplugs, and counts the first `count`
// admissions. Because every waiter is enqueued before the first admission
// and each admitted worker immediately releases its slot (admitting the
// next), the admission sequence is pure DRR — independent of goroutine
// scheduling. Keep count <= perTenant so no lane can drain mid-measurement.
func runSchedulerTrial(t *testing.T, s *fairScheduler, tenants []string, perTenant, count int) map[string]int64 {
	t.Helper()
	if count > perTenant {
		t.Fatalf("count %d > perTenant %d: a lane could drain mid-measurement", count, perTenant)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Plug every slot so all waiters below enqueue before any is admitted.
	capacity := s.capacity
	for i := 0; i < capacity; i++ {
		if err := s.Acquire(ctx, ""); err != nil {
			t.Fatal(err)
		}
	}

	total := len(tenants) * perTenant
	admitted := make(chan string, total)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for w := 0; w < perTenant; w++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				if err := s.Acquire(ctx, tenant); err != nil {
					return // unblocked by the final cancel
				}
				admitted <- tenant
				s.Release(tenant)
			}(tenant)
		}
	}
	waitFor(t, "all waiters queued", func() bool { return s.Waiting() == total })
	for i := 0; i < capacity; i++ {
		s.Release("")
	}

	counts := make(map[string]int64)
	for i := 0; i < count; i++ {
		select {
		case tn := <-admitted:
			counts[tn]++
		case <-ctx.Done():
			t.Fatal("timed out draining admissions (possible starvation or lost wakeup)")
		}
	}
	cancel() // release the waiters beyond count
	wg.Wait()
	return counts
}

// TestFairSchedulerShareBounds is the property test for the DRR scheduler:
// random weight vectors and tenant counts, all lanes kept backlogged, the
// admission counts must converge to the weight proportions, and no tenant
// may starve.
func TestFairSchedulerShareBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 8; trial++ {
		numTenants := 2 + rnd.Intn(4)
		capacity := 1 + rnd.Intn(3)
		var cfgs []TenantConfig
		var tenants []string
		sumW := 0
		for i := 0; i < numTenants; i++ {
			name := fmt.Sprintf("t%d", i)
			w := 1 + rnd.Intn(5)
			sumW += w
			cfgs = append(cfgs, TenantConfig{Name: name, Weight: w})
			tenants = append(tenants, name)
		}
		s := newFairScheduler(capacity, 1<<20, cfgs)
		const trialCount = 400
		counts := runSchedulerTrial(t, s, tenants, trialCount, trialCount)

		for i, name := range tenants {
			share := float64(counts[name]) / float64(trialCount)
			expect := float64(cfgs[i].Weight) / float64(sumW)
			if counts[name] == 0 {
				t.Fatalf("trial %d: tenant %s (weight %d) starved", trial, name, cfgs[i].Weight)
			}
			if diff := share - expect; diff < -0.1 || diff > 0.1 {
				t.Errorf("trial %d: tenant %s share = %.3f, want %.3f ± 0.1 (weights %v, capacity %d)",
					trial, name, share, expect, cfgs, capacity)
			}
		}
	}
}

// TestFairSchedulerStarvationFreedom pits a weight-100 tenant against a
// weight-1 tenant: the light tenant must still be admitted roughly its
// 1/101 share — never zero.
func TestFairSchedulerStarvationFreedom(t *testing.T) {
	s := newFairScheduler(1, 1<<20, []TenantConfig{
		{Name: "heavy", Weight: 100},
		{Name: "light", Weight: 1},
	})
	const trialCount = 1010
	counts := runSchedulerTrial(t, s, []string{"heavy", "light"}, trialCount, trialCount)
	if counts["light"] == 0 {
		t.Fatal("light tenant starved")
	}
	share := float64(counts["light"]) / float64(trialCount)
	if expect := 1.0 / 101.0; share < expect/3 {
		t.Fatalf("light share = %.4f, want >= %.4f", share, expect/3)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairSchedulerWorkConservation checks that free slots never idle while
// admissible waiters exist: with capacity 3 and 8 requests, exactly 3 run
// and every Release promotes a waiter.
func TestFairSchedulerWorkConservation(t *testing.T) {
	s := newFairScheduler(3, 100, []TenantConfig{
		{Name: "a", Weight: 2},
		{Name: "b", Weight: 1},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	admitted := make(chan string, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			if err := s.Acquire(ctx, tenant); err != nil {
				t.Errorf("Acquire(%s): %v", tenant, err)
				return
			}
			admitted <- tenant
		}(tenant)
	}
	waitFor(t, "3 in flight", func() bool { return s.InFlight() == 3 })
	waitFor(t, "5 waiting", func() bool { return s.Waiting() == 5 })

	// Each release must promote exactly one waiter (work conservation).
	for released := 0; released < 5; released++ {
		tenant := <-admitted
		s.Release(tenant)
		want := 5 - released - 1
		waitFor(t, "waiter promoted", func() bool {
			return s.InFlight() == 3 && s.Waiting() == want
		})
	}
	// Drain the rest.
	for i := 0; i < 3; i++ {
		s.Release(<-admitted)
	}
	wg.Wait()
	if s.InFlight() != 0 || s.Waiting() != 0 {
		t.Fatalf("scheduler not drained: inflight=%d waiting=%d", s.InFlight(), s.Waiting())
	}
}

// TestFairSchedulerTenantCaps checks that a per-tenant in-flight cap holds
// while the freed share flows to other tenants (work conservation under
// caps) — even when the capped tenant has the dominant weight.
func TestFairSchedulerTenantCaps(t *testing.T) {
	s := newFairScheduler(4, 100, []TenantConfig{
		{Name: "capped", Weight: 5, MaxInFlight: 1},
		{Name: "other", Weight: 1},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, tenant := range []string{"capped", "other"} {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				if err := s.Acquire(ctx, tenant); err == nil {
					<-ctx.Done() // hold until the test ends
				}
			}(tenant)
		}
	}
	waitFor(t, "capacity filled around the cap", func() bool {
		snap := s.TenantsSnapshot()
		return snap["capped"].InFlight == 1 && snap["other"].InFlight == 3
	})
	cancel()
	wg.Wait()
}

// TestFairSchedulerQuotaVsOverload distinguishes the two rejection errors at
// the scheduler layer: per-tenant queue quota → ErrTenantQuota, global
// capacity+queue exhaustion → ErrOverloaded.
func TestFairSchedulerQuotaVsOverload(t *testing.T) {
	s := newFairScheduler(1, 2, []TenantConfig{
		{Name: "lim", Weight: 1, MaxQueue: 1},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Take the only slot.
	if err := s.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	defer s.Release("")

	// One lim request queues...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Acquire(ctx, "lim") // released by cancel below
	}()
	waitFor(t, "lim waiter queued", func() bool { return s.Waiting() == 1 })

	// ...the second trips lim's own quota while global room remains.
	if err := s.Acquire(ctx, "lim"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("lim over quota: err = %v, want ErrTenantQuota", err)
	}

	// Fill the remaining global queue slot from another tenant, then the
	// next request from anyone is a global overload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Acquire(ctx, "")
	}()
	waitFor(t, "global queue full", func() bool { return s.Waiting() == 2 })
	if err := s.Acquire(ctx, ""); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("global overload: err = %v, want ErrOverloaded", err)
	}

	snap := s.TenantsSnapshot()
	if snap["lim"].Rejected != 1 || snap[DefaultTenant].Rejected != 1 {
		t.Fatalf("rejection counters = %+v", snap)
	}
	cancel()
	wg.Wait()
}

// TestErrToWireAdmissionCodes pins the wire mapping both HTTP surfaces share:
// overloaded, tenant_quota, and degraded_unavailable are distinct stable
// codes, all 429 with a retry hint.
func TestErrToWireAdmissionCodes(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{ErrOverloaded, client.CodeOverloaded},
		{ErrTenantQuota, client.CodeTenantQuota},
		{ErrDegraded, client.CodeDegradedUnavailable},
	}
	for _, c := range cases {
		w := errToWire(c.err)
		if w.Code != c.code {
			t.Errorf("errToWire(%v).Code = %q, want %q", c.err, w.Code, c.code)
		}
		if w.HTTPStatus != http.StatusTooManyRequests {
			t.Errorf("errToWire(%v).HTTPStatus = %d, want 429", c.err, w.HTTPStatus)
		}
		if w.RetryAfterMS <= 0 {
			t.Errorf("errToWire(%v).RetryAfterMS = %d, want > 0", c.err, w.RetryAfterMS)
		}
	}
}

// TestHTTPAdmissionCodes drives both rejection paths over HTTP: a held
// engine with no queue returns code "overloaded", a tenant over its own
// queue quota returns code "tenant_quota", and both carry Retry-After.
func TestHTTPAdmissionCodes(t *testing.T) {
	cat := newCatalog(t, 15)
	postQuery := func(srv *httptest.Server, tenant string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(QueryRequest{Query: testQuery, Seed: 1, ValidationM: 1500, InitialM: 10, MaxM: 60})
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(client.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	decodeErr := func(resp *http.Response) *client.Error {
		t.Helper()
		defer resp.Body.Close()
		var env client.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Error == nil {
			t.Fatal("no error in envelope")
		}
		return env.Error
	}

	// Path 1: global overload (slot held, no queue).
	e := New(cat, &Options{MaxInFlight: 1, MaxQueue: -1, Parallelism: 1})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	if err := e.sched.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	resp := postQuery(srv, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overload response missing Retry-After")
	}
	if apiErr := decodeErr(resp); apiErr.Code != client.CodeOverloaded {
		t.Fatalf("overload code = %q, want %q", apiErr.Code, client.CodeOverloaded)
	}
	e.sched.Release("")

	// Path 2: tenant queue quota (global room remains).
	e2 := New(cat, &Options{
		MaxInFlight: 1, MaxQueue: 8, Parallelism: 1,
		Tenants: []TenantConfig{{Name: "lim", Weight: 1, MaxQueue: 1}},
	})
	srv2 := httptest.NewServer(e2.Handler())
	defer srv2.Close()
	if err := e2.sched.Acquire(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postQuery(srv2, "lim") // queues behind the held slot
		resp.Body.Close()
	}()
	waitFor(t, "lim request queued", func() bool { return e2.sched.Waiting() == 1 })
	resp2 := postQuery(srv2, "lim")
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("quota response missing Retry-After")
	}
	if apiErr := decodeErr(resp2); apiErr.Code != client.CodeTenantQuota {
		t.Fatalf("quota code = %q, want %q", apiErr.Code, client.CodeTenantQuota)
	}
	e2.sched.Release("") // let the queued request run to completion
	wg.Wait()

	st := e2.Stats()
	lim := st.Tenants["lim"]
	if lim.Rejected != 1 || lim.Admitted != 1 {
		t.Fatalf("lim stats = %+v, want 1 rejected, 1 admitted", lim)
	}
}
