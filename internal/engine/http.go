package engine

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/resultcache"
	"spq/internal/sketch"
)

// QueryRequest is the JSON body of the legacy POST /query. It predates the
// typed v1 options (client.SubmitRequest) and is kept byte-compatible: the
// flat field bag still parses exactly as it always did. New clients should
// use /v1/queries.
type QueryRequest struct {
	Query  string `json:"query"`
	Method string `json:"method,omitempty"` // "summarysearch" (default) | "naive" | "sketch"
	// TimeoutMS bounds the evaluation in milliseconds (0 = engine default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Evaluation options; zero values use core defaults.
	Seed        uint64 `json:"seed,omitempty"`
	ValidationM int    `json:"validation_m,omitempty"`
	InitialM    int    `json:"initial_m,omitempty"`
	IncrementM  int    `json:"increment_m,omitempty"`
	MaxM        int    `json:"max_m,omitempty"`
	FixedZ      int    `json:"fixed_z,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`

	// Sketch-pipeline options for method "sketch"; zero values use sketch
	// defaults.
	GroupSize     int    `json:"group_size,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	SketchSeed    uint64 `json:"sketch_seed,omitempty"`
}

// SketchInfo reports what the sketch pipeline did for a method=sketch query.
type SketchInfo struct {
	Groups     int  `json:"groups"`
	Shards     int  `json:"shards"`
	Candidates int  `json:"candidates"`
	FellBack   bool `json:"fell_back"`
}

// PackageTuple is one package member in a QueryResponse.
type PackageTuple struct {
	Tuple int `json:"tuple"` // base-relation tuple index
	Count int `json:"count"` // multiplicity
}

// QueryResponse is the JSON body answering the legacy POST /query.
type QueryResponse struct {
	Feasible    bool           `json:"feasible"`
	Objective   float64        `json:"objective"`
	EpsUpper    float64        `json:"eps_upper,omitempty"`
	Surpluses   []float64      `json:"surpluses,omitempty"`
	M           int            `json:"m"`
	Z           int            `json:"z,omitempty"`
	PackageSize float64        `json:"package_size"`
	Package     []PackageTuple `json:"package"`
	CacheHit    bool           `json:"cache_hit"`
	// ResultCacheHit reports that the whole response was served from the
	// result cache without solving.
	ResultCacheHit bool        `json:"result_cache_hit,omitempty"`
	Sketch         *SketchInfo `json:"sketch,omitempty"`
	// Degraded reports that an engine-applied budget cut the evaluation
	// short and the package is the anytime best-so-far, with Gap its
	// achieved validation gap (omitted when no finite bound was reached).
	Degraded bool    `json:"degraded,omitempty"`
	Gap      float64 `json:"gap,omitempty"`
	WaitMS   int64   `json:"wait_ms"`
	TotalMS  int64   `json:"total_ms"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the engine's HTTP API:
//
//	POST   /query             — legacy synchronous evaluation (a thin shim
//	                            over the job manager; QueryRequest →
//	                            QueryResponse, byte-compatible)
//	POST   /v1/queries        — submit an async job (see httpv1.go)
//	GET    /v1/queries        — list jobs
//	GET    /v1/queries/{id}   — poll a job (progress events, long-poll)
//	DELETE /v1/queries/{id}   — cancel a job
//	POST   /v1/queries:batch  — submit many jobs
//	GET    /v1/queries/{id}/trace — the job's span tree (works while running)
//	GET    /healthz           — liveness probe
//	GET    /stats             — engine + job-manager counters
//	GET    /metrics           — the same instruments in Prometheus text format
//
// Every error — including unknown routes and disallowed methods — is the
// structured JSON envelope with a stable code: admission rejections map to
// 429 (with Retry-After), deadline expiry and cancellation to 504,
// malformed queries to 400, unknown routes/jobs to 404.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", methodsHandler(map[string]http.HandlerFunc{
		http.MethodPost: e.handleQuery,
	}))
	mux.HandleFunc("/v1/queries", methodsHandler(map[string]http.HandlerFunc{
		http.MethodPost: e.handleV1Submit,
		http.MethodGet:  e.handleV1List,
	}))
	mux.HandleFunc("/v1/queries/{id}", methodsHandler(map[string]http.HandlerFunc{
		http.MethodGet:    e.handleV1Get,
		http.MethodDelete: e.handleV1Cancel,
	}))
	mux.HandleFunc("/v1/queries/{id}/trace", methodsHandler(map[string]http.HandlerFunc{
		http.MethodGet: e.handleV1Trace,
	}))
	mux.HandleFunc("/v1/queries:batch", methodsHandler(map[string]http.HandlerFunc{
		http.MethodPost: e.handleV1Batch,
	}))
	mux.HandleFunc("/v1/tables/{name}/deltas", methodsHandler(map[string]http.HandlerFunc{
		http.MethodPost: e.handleV1Delta,
	}))
	mux.HandleFunc("/healthz", methodsHandler(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		},
	}))
	mux.HandleFunc("/stats", methodsHandler(map[string]http.HandlerFunc{
		http.MethodGet: func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, e.Stats())
		},
	}))
	mux.HandleFunc("/metrics", methodsHandler(map[string]http.HandlerFunc{
		http.MethodGet: e.m.reg.Handler().ServeHTTP,
	}))
	// A replicating result cache brings its peer endpoint along (POST
	// receives pushed entries, GET reports replication counters).
	if ph, ok := e.results.(interface{ Handler() http.Handler }); ok {
		mux.Handle(resultcache.PeerPath, ph.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &client.Error{
			Code:       client.CodeNotFound,
			Message:    "no route for " + r.URL.Path,
			HTTPStatus: http.StatusNotFound,
		})
	})
	return mux
}

// maxQueryBody bounds request bodies: everything else the daemon holds is
// capped (solve slots, queue, caches, job history), so the body must be too.
const maxQueryBody = 1 << 20

// handleQuery is the legacy synchronous endpoint, kept as a thin shim over
// the job manager: it submits the request as a job, waits inline for the
// terminal state, and renders the legacy response shape. A client
// disconnect cancels the job (preserving the old request-context
// semantics).
func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr QueryRequest
	if apiErr := decodeBody(w, r, &qr); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if qr.Query == "" {
		writeError(w, &client.Error{Code: client.CodeBadRequest, Message: `missing "query"`, HTTPStatus: http.StatusBadRequest})
		return
	}
	req := Request{
		Query:       qr.Query,
		Method:      qr.Method,
		Timeout:     time.Duration(qr.TimeoutMS) * time.Millisecond,
		TraceParent: r.Header.Get(client.TraceHeader),
		Tenant:      r.Header.Get(client.TenantHeader),
		Options: &core.Options{
			Seed:        qr.Seed,
			ValidationM: qr.ValidationM,
			InitialM:    qr.InitialM,
			IncrementM:  qr.IncrementM,
			MaxM:        qr.MaxM,
			FixedZ:      qr.FixedZ,
			Parallelism: qr.Parallelism,
		},
	}
	if strings.ToLower(qr.Method) == "sketch" {
		req.Sketch = &sketch.Options{
			GroupSize:     qr.GroupSize,
			Shards:        qr.Shards,
			MaxCandidates: qr.MaxCandidates,
			Seed:          qr.SketchSeed,
		}
	}
	start := time.Now()
	j, err := e.Submit(req)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// The client went away: abort the solve and free its slot.
		e.CancelJob(j.ID())
		<-j.Done()
	}
	// Render from the job's wire result, not the engine Result: the wire
	// form survives trimAfterDelta (a delta may land between job completion
	// and this read) and already encodes the package against base-relation
	// tuple indices.
	wres, apiErr := j.WireResult()
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	if wres == nil {
		writeError(w, &client.Error{Code: client.CodeInternal, Message: "job finished without a result", HTTPStatus: http.StatusInternalServerError})
		return
	}

	resp := QueryResponse{
		Feasible:       wres.Feasible,
		Objective:      wres.Objective,
		EpsUpper:       wres.EpsUpper, // already Inf-scrubbed by resultToWire
		Surpluses:      wres.Surpluses,
		M:              wres.M,
		Z:              wres.Z,
		PackageSize:    wres.PackageSize,
		Package:        []PackageTuple{},
		CacheHit:       wres.PlanCacheHit,
		ResultCacheHit: wres.ResultCacheHit,
		Degraded:       wres.Degraded,
		Gap:            wres.Gap,
		WaitMS:         wres.WaitMS,
		TotalMS:        time.Since(start).Milliseconds(),
	}
	if wres.Sketch != nil {
		resp.Sketch = &SketchInfo{
			Groups:     wres.Sketch.Groups,
			Shards:     wres.Sketch.Shards,
			Candidates: wres.Sketch.Candidates,
			FellBack:   wres.Sketch.FellBack,
		}
	}
	for _, pt := range wres.Package {
		resp.Package = append(resp.Package, PackageTuple(pt))
	}
	writeJSON(w, http.StatusOK, resp)
}
