package engine

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"spq/internal/core"
	"spq/internal/sketch"
)

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	Query  string `json:"query"`
	Method string `json:"method,omitempty"` // "summarysearch" (default) | "naive" | "sketch"
	// TimeoutMS bounds the evaluation in milliseconds (0 = engine default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Evaluation options; zero values use core defaults.
	Seed        uint64 `json:"seed,omitempty"`
	ValidationM int    `json:"validation_m,omitempty"`
	InitialM    int    `json:"initial_m,omitempty"`
	IncrementM  int    `json:"increment_m,omitempty"`
	MaxM        int    `json:"max_m,omitempty"`
	FixedZ      int    `json:"fixed_z,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`

	// Sketch-pipeline options for method "sketch"; zero values use sketch
	// defaults.
	GroupSize     int    `json:"group_size,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	MaxCandidates int    `json:"max_candidates,omitempty"`
	SketchSeed    uint64 `json:"sketch_seed,omitempty"`
}

// SketchInfo reports what the sketch pipeline did for a method=sketch query.
type SketchInfo struct {
	Groups     int  `json:"groups"`
	Shards     int  `json:"shards"`
	Candidates int  `json:"candidates"`
	FellBack   bool `json:"fell_back"`
}

// PackageTuple is one package member in a QueryResponse.
type PackageTuple struct {
	Tuple int `json:"tuple"` // base-relation tuple index
	Count int `json:"count"` // multiplicity
}

// QueryResponse is the JSON body answering POST /query.
type QueryResponse struct {
	Feasible    bool           `json:"feasible"`
	Objective   float64        `json:"objective"`
	EpsUpper    float64        `json:"eps_upper,omitempty"`
	Surpluses   []float64      `json:"surpluses,omitempty"`
	M           int            `json:"m"`
	Z           int            `json:"z,omitempty"`
	PackageSize float64        `json:"package_size"`
	Package     []PackageTuple `json:"package"`
	CacheHit    bool           `json:"cache_hit"`
	// ResultCacheHit reports that the whole response was served from the
	// result cache without solving.
	ResultCacheHit bool        `json:"result_cache_hit,omitempty"`
	Sketch         *SketchInfo `json:"sketch,omitempty"`
	WaitMS         int64       `json:"wait_ms"`
	TotalMS        int64       `json:"total_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the engine's HTTP API:
//
//	POST /query   — evaluate an sPaQL query (QueryRequest → QueryResponse)
//	GET  /healthz — liveness probe
//	GET  /stats   — engine counters (admission, cache, solve time)
//
// Admission rejections map to 429, deadline expiry and cancellation to 504,
// malformed queries to 400.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", e.handleQuery)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	return mux
}

// maxQueryBody bounds the /query request body: everything else the daemon
// holds is capped (solve slots, queue, plan cache), so the body must be too.
const maxQueryBody = 1 << 20

func (e *Engine) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
	var qr QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if qr.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"query\""})
		return
	}
	req := Request{
		Query:   qr.Query,
		Method:  qr.Method,
		Timeout: time.Duration(qr.TimeoutMS) * time.Millisecond,
		Options: &core.Options{
			Seed:        qr.Seed,
			ValidationM: qr.ValidationM,
			InitialM:    qr.InitialM,
			IncrementM:  qr.IncrementM,
			MaxM:        qr.MaxM,
			FixedZ:      qr.FixedZ,
			Parallelism: qr.Parallelism,
		},
	}
	if strings.ToLower(qr.Method) == "sketch" {
		req.Sketch = &sketch.Options{
			GroupSize:     qr.GroupSize,
			Shards:        qr.Shards,
			MaxCandidates: qr.MaxCandidates,
			Seed:          qr.SketchSeed,
		}
	}
	start := time.Now()
	res, err := e.Query(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrBadQuery):
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		default:
			// An evaluation failure on a well-formed query is a server
			// fault: 500 tells clients and balancers it is retryable.
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}

	resp := QueryResponse{
		Feasible:       res.Feasible,
		Objective:      res.Objective,
		Surpluses:      res.Surpluses,
		M:              res.M,
		Z:              res.Z,
		PackageSize:    res.PackageSize(),
		Package:        []PackageTuple{},
		CacheHit:       res.CacheHit,
		ResultCacheHit: res.ResultCacheHit,
		WaitMS:         res.Wait.Milliseconds(),
		TotalMS:        time.Since(start).Milliseconds(),
	}
	if res.Sketch != nil {
		resp.Sketch = &SketchInfo{
			Groups:     res.Sketch.Groups,
			Shards:     res.Sketch.Shards,
			Candidates: res.Sketch.Candidates,
			FellBack:   res.Sketch.FellBack,
		}
	}
	// eps_upper is +Inf when no bound exists; JSON has no Inf, so omit it.
	if !math.IsInf(res.EpsUpper, 0) && !math.IsNaN(res.EpsUpper) {
		resp.EpsUpper = res.EpsUpper
	}
	for tuple, count := range res.Multiplicities() {
		resp.Package = append(resp.Package, PackageTuple{Tuple: tuple, Count: count})
	}
	sort.Slice(resp.Package, func(a, b int) bool { return resp.Package[a].Tuple < resp.Package[b].Tuple })
	writeJSON(w, http.StatusOK, resp)
}
