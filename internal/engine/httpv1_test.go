package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spq/client"
)

func v1Server(t *testing.T, e *Engine) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response, wantStatus int) *client.Job {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var job client.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return &job
}

func decodeEnvelope(t *testing.T, resp *http.Response, wantStatus int, wantCode string) *client.Error {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	var env client.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error body is not the envelope: %v", err)
	}
	if env.Error == nil || env.Error.Code != wantCode {
		t.Fatalf("error = %+v, want code %q", env.Error, wantCode)
	}
	return env.Error
}

// TestV1SubmitPollResult drives the happy path over the wire: typed
// submission, long-poll to completion, progress events, result payload.
func TestV1SubmitPollResult(t *testing.T) {
	e := New(newCatalog(t, 15), &Options{ResultCacheSize: -1})
	srv := v1Server(t, e)

	job := decodeJob(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{
		Query:   testQuery,
		Options: &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60},
	}), http.StatusAccepted)
	if job.ID == "" || job.State.Terminal() && job.State != client.JobSucceeded {
		t.Fatalf("bad submit response: %+v", job)
	}

	deadline := time.Now().Add(60 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/queries/%s?wait_ms=1000", srv.URL, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		job = decodeJob(t, resp, http.StatusOK)
	}
	if job.State != client.JobSucceeded {
		t.Fatalf("state = %q (err %+v), want succeeded", job.State, job.Error)
	}
	if job.Result == nil || !job.Result.Feasible || len(job.Result.Package) == 0 {
		t.Fatalf("bad result: %+v", job.Result)
	}
	// since=0 poll returns the full event history even after completion.
	resp, err := http.Get(srv.URL + "/v1/queries/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	job = decodeJob(t, resp, http.StatusOK)
	if len(job.Events) == 0 || job.Events[0].Iteration < 1 {
		t.Fatalf("no usable progress events: %+v", job.Events)
	}
	if len(job.BestPackage) == 0 || job.BestObjective != job.Result.Objective {
		t.Fatalf("best-so-far not exposed: best=%v obj=%v", job.BestPackage, job.BestObjective)
	}

	// The listing shows the job without event bodies.
	resp, err = http.Get(srv.URL + "/v1/queries")
	if err != nil {
		t.Fatal(err)
	}
	var list client.ListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID || len(list.Jobs[0].Events) != 0 {
		t.Fatalf("bad listing: %+v", list.Jobs)
	}
}

// TestV1CancelEndpoint cancels a running job over the wire.
func TestV1CancelEndpoint(t *testing.T) {
	e := New(newCatalog(t, 40), &Options{Parallelism: 1})
	srv := v1Server(t, e)

	job := decodeJob(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{
		Query: hardRequest().Query,
		Options: &client.SolveOptions{
			Seed: 1, ValidationM: 500000, InitialM: 50, IncrementM: 50, MaxM: 1000,
		},
	}), http.StatusAccepted)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/queries/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeJob(t, resp, http.StatusOK)
	deadline := time.Now().Add(30 * time.Second)
	for !got.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never terminal")
		}
		r2, err := http.Get(srv.URL + "/v1/queries/" + job.ID + "?wait_ms=500")
		if err != nil {
			t.Fatal(err)
		}
		got = decodeJob(t, r2, http.StatusOK)
	}
	if got.State != client.JobCancelled {
		t.Fatalf("state = %q, want cancelled", got.State)
	}
	if got.Error == nil || got.Error.Code != client.CodeCancelled {
		t.Fatalf("error = %+v, want code cancelled", got.Error)
	}
}

// TestV1Batch submits a mixed batch: items succeed or fail independently.
func TestV1Batch(t *testing.T) {
	e := New(newCatalog(t, 15), nil)
	srv := v1Server(t, e)

	resp := postJSON(t, srv.URL+"/v1/queries:batch", client.BatchRequest{
		Queries: []client.SubmitRequest{
			{Query: testQuery, Options: &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, MaxM: 60}},
			{Query: "SELECT NONSENSE"},
			{Query: testQuery, Method: "quantum"},
		},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var out client.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("items = %d, want 3", len(out.Jobs))
	}
	if out.Jobs[0].Job == nil || out.Jobs[0].Error != nil {
		t.Fatalf("item 0 = %+v, want job", out.Jobs[0])
	}
	if out.Jobs[1].Error == nil || out.Jobs[1].Error.Code != client.CodeInvalidQuery {
		t.Fatalf("item 1 = %+v, want invalid_query", out.Jobs[1])
	}
	if out.Jobs[2].Error == nil || out.Jobs[2].Error.Code != client.CodeUnknownMethod {
		t.Fatalf("item 2 = %+v, want unknown_method", out.Jobs[2])
	}
}

// TestV1ErrorEnvelope checks that every HTTP failure path answers with the
// structured envelope and its stable code (no ad-hoc text bodies), and
// that 429 carries Retry-After.
func TestV1ErrorEnvelope(t *testing.T) {
	e := New(newCatalog(t, 40), &Options{MaxJobs: 1, MaxInFlight: 1, Parallelism: 1})
	srv := v1Server(t, e)

	// Malformed JSON body.
	resp, err := http.Post(srv.URL+"/v1/queries", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusBadRequest, client.CodeBadRequest)

	// Missing query.
	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{}),
		http.StatusBadRequest, client.CodeBadRequest)

	// Unparsable query.
	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{Query: "SELECT NONSENSE"}),
		http.StatusBadRequest, client.CodeInvalidQuery)

	// Unknown method.
	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{Query: testQuery, Method: "quantum"}),
		http.StatusBadRequest, client.CodeUnknownMethod)

	// Unknown sketch strategy.
	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{
		Query: testQuery, Method: "sketch", Sketch: &client.SketchOptions{Strategy: "voronoi"},
	}), http.StatusBadRequest, client.CodeBadRequest)

	// Unknown route.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, client.CodeNotFound)

	// Unknown job id.
	resp, err = http.Get(srv.URL + "/v1/queries/zzz")
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp, http.StatusNotFound, client.CodeNotFound)

	// Disallowed HTTP method on a known route.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/query", strings.NewReader("{}"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Allow") == "" {
		t.Fatal("405 response missing Allow header")
	}
	decodeEnvelope(t, resp, http.StatusMethodNotAllowed, client.CodeMethodNotAllowed)

	// Overload: one active job allowed; the second submission gets 429
	// with Retry-After.
	job := decodeJob(t, postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{
		Query:   hardRequest().Query,
		Options: &client.SolveOptions{Seed: 1, ValidationM: 500000, InitialM: 50, MaxM: 1000},
	}), http.StatusAccepted)
	resp = postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{Query: testQuery})
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	apiErr := decodeEnvelope(t, resp, http.StatusTooManyRequests, client.CodeOverloaded)
	if apiErr.RetryAfterMS <= 0 {
		t.Fatalf("429 envelope retry_after_ms = %d, want > 0", apiErr.RetryAfterMS)
	}

	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/queries/"+job.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

// TestLegacyShim: the flat pre-v1 request body keeps working through the
// job-manager shim, and the response carries the legacy field set with the
// same values the synchronous engine path computes.
func TestLegacyShim(t *testing.T) {
	e := New(newCatalog(t, 15), &Options{ResultCacheSize: -1})
	srv := v1Server(t, e)

	body := `{"query": ` + fmt.Sprintf("%q", testQuery) + `,
		"seed": 1, "validation_m": 1500, "initial_m": 10, "increment_m": 10, "max_m": 60}`
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	// The legacy field set must survive the shim unchanged.
	for _, key := range []string{"feasible", "objective", "m", "package_size", "package", "cache_hit", "wait_ms", "total_ms"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("legacy response lost field %q (got %v)", key, raw)
		}
	}

	sres, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if got := raw["objective"].(float64); got != sres.Objective {
		t.Fatalf("shim objective %v != sync objective %v", got, sres.Objective)
	}
	if got := int(raw["m"].(float64)); got != sres.M {
		t.Fatalf("shim m %v != sync m %v", got, sres.M)
	}
	if got := len(raw["package"].([]any)); got != len(sres.Multiplicities()) {
		t.Fatalf("shim package size %d != sync %d", got, len(sres.Multiplicities()))
	}

	// Legacy error paths use the envelope now.
	resp2, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(`{"query": "SELECT NONSENSE"}`))
	if err != nil {
		t.Fatal(err)
	}
	decodeEnvelope(t, resp2, http.StatusBadRequest, client.CodeInvalidQuery)

	// Stats report the shim's traffic through the job counters.
	st := e.Stats()
	if st.JobsSubmitted < 1 || st.JobsCompleted < 1 {
		t.Fatalf("job counters missed the shim: %+v", st)
	}
}
