package engine

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"spq/client"
	"spq/internal/obs"
)

// TestQueryTrace: a direct Query with no ambient span mints a trace, returns
// it on the result, and the span tree covers every phase the engine walked
// through — parse, admission wait, plan, and the method span wrapping the
// solve.
func TestQueryTrace(t *testing.T) {
	e := New(newCatalog(t, 15), &Options{ResultCacheSize: -1})
	res, err := e.Query(context.Background(), Request{
		Query:       testQuery,
		Options:     smallCoreOptions(),
		TraceParent: "feedc0de00000001/coordinator-span",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("direct query returned no trace")
	}
	if res.Trace.TraceID != "feedc0de00000001" {
		t.Fatalf("trace id = %q, want the upstream id from TraceParent", res.Trace.TraceID)
	}
	if res.Trace.Name != "query" || res.Trace.Attrs["parent"] != "coordinator-span" {
		t.Fatalf("bad root span: name=%q attrs=%v", res.Trace.Name, res.Trace.Attrs)
	}
	phases := map[string]int{}
	res.Trace.Walk(func(d *obs.SpanData) {
		phases[obs.PhaseName(d.Name)]++
		if d != res.Trace && d.DurationUS < 0 {
			t.Fatalf("span %s has negative duration %d", d.Name, d.DurationUS)
		}
	})
	for _, want := range []string{"query", "parse", "wait", "plan", "summarysearch", "solve", "validate"} {
		if phases[want] == 0 {
			t.Fatalf("phase %q missing from trace (got %v)", want, phases)
		}
	}

	// A caller that already carries a span gets instrumented into the
	// caller's trace instead of minting a fresh one: no Result.Trace.
	tr := obs.NewTrace("outer")
	res2, err := e.Query(obs.ContextWithSpan(context.Background(), tr.Root()), Request{
		Query:   testQuery,
		Options: smallCoreOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("ambient-span query must not mint its own trace")
	}
	tr.Root().End()
	var names []string
	tr.Data().Walk(func(d *obs.SpanData) { names = append(names, obs.PhaseName(d.Name)) })
	if !contains(names, "parse") || !contains(names, "plan") {
		t.Fatalf("engine phases not nested under caller span: %v", names)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// promLine matches one Prometheus text-format sample: name{labels} value.
// The hand-rolled exporter must never emit empty label braces, NaN, or
// malformed floats — this is the no-dependency stand-in for promtext lint.
var promLine = regexp.MustCompile(`^[a-z_]+[a-z0-9_]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (-?[0-9][0-9.e+-]*|\+Inf)$`)

// TestV1TraceEndpointAndMetrics drives the full operator surface over HTTP:
// submit with an upstream trace header, fetch the span tree from
// /v1/queries/{id}/trace, and check /metrics agrees with /stats and emits
// parseable Prometheus text with populated phase histograms.
func TestV1TraceEndpointAndMetrics(t *testing.T) {
	e := New(newCatalog(t, 15), &Options{ResultCacheSize: -1})
	srv := v1Server(t, e)

	body, _ := json.Marshal(client.SubmitRequest{
		Query:   testQuery,
		Options: &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60},
	})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/queries", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.TraceHeader, "feedc0de00000002/remote/dispatch")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp, http.StatusAccepted)

	deadline := time.Now().Add(60 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		r, err := http.Get(srv.URL + "/v1/queries/" + job.ID + "?wait_ms=1000")
		if err != nil {
			t.Fatal(err)
		}
		job = decodeJob(t, r, http.StatusOK)
	}
	if job.State != client.JobSucceeded {
		t.Fatalf("state = %q (%+v)", job.State, job.Error)
	}
	// The terminal job embeds the tree; the endpoint serves the same one.
	if job.Trace == nil || job.Trace.TraceID != "feedc0de00000002" {
		t.Fatalf("terminal job trace = %+v, want upstream trace id", job.Trace)
	}
	r, err := http.Get(srv.URL + "/v1/queries/" + job.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status = %d", r.StatusCode)
	}
	var tr client.TraceSpan
	if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "feedc0de00000002" || tr.Name != "query" {
		t.Fatalf("trace root = %q/%q, want query under the upstream id", tr.TraceID, tr.Name)
	}
	if tr.Attrs["parent"] != "remote/dispatch" || tr.Attrs["job"] != job.ID {
		t.Fatalf("root attrs = %v, want parent and job stamped", tr.Attrs)
	}
	var phases []string
	tr.Walk(func(s *client.TraceSpan) { phases = append(phases, s.Name) })
	for _, want := range []string{"parse", "plan", "summarysearch", "solve", "validate"} {
		if !contains(phases, want) {
			t.Fatalf("phase %q missing from served trace: %v", want, phases)
		}
	}
	if _, err := http.Get(srv.URL + "/v1/queries/nope/trace"); err != nil {
		t.Fatal(err)
	}

	// /metrics: parseable text, phase histograms populated, counters agreeing
	// with /stats (both read the same registry, so they cannot drift).
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable metrics line: %q", line)
		}
	}
	for _, want := range []string{
		`spq_queries_total 1`,
		`spq_jobs_completed_total 1`,
		`spq_phase_latency_seconds_bucket{phase="solve",le="+Inf"}`,
		`spq_phase_latency_seconds_bucket{phase="validate",le="+Inf"}`,
		`spq_solve_seconds_count 1`,
		`spq_admission_wait_seconds_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	stats := e.Stats()
	if stats.Queries != 1 {
		t.Fatalf("stats.Queries = %d, want 1", stats.Queries)
	}
	// The solve-phase histogram count equals the result's iteration count:
	// one "solve" span per MILP solve the search ran.
	solveCount := regexp.MustCompile(`spq_phase_latency_seconds_count\{phase="solve"\} (\d+)`).FindStringSubmatch(text)
	if solveCount == nil {
		t.Fatalf("no solve-phase histogram count in:\n%s", text)
	}
	if want := int64(job.Result.Iterations); atoi(t, solveCount[1]) < want {
		t.Fatalf("solve-phase count %s < %d result iterations", solveCount[1], want)
	}
}

func atoi(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, c := range s {
		v = v*10 + int64(c-'0')
	}
	return v
}
