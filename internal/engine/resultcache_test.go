package engine

import (
	"context"
	"math"
	"sync"
	"testing"

	"spq/internal/sketch"
)

func TestResultCacheHitOnIdenticalRequest(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, nil)

	first, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if first.ResultCacheHit {
		t.Fatal("first query reported a result-cache hit")
	}

	// Identical (query, options, seeds): served from the cache, down to a
	// trivially reformatted query text (the key is the canonical statement).
	second, err := e.Query(context.Background(), Request{Query: "  " + testQuery + "\n", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultCacheHit {
		t.Fatal("identical request missed the result cache")
	}
	if second.CacheHit {
		t.Fatal("result-cache hit claimed a plan-cache hit (no planning ran)")
	}
	if math.Float64bits(second.Objective) != math.Float64bits(first.Objective) {
		t.Fatalf("cached result changed the answer: %v vs %v", second.Objective, first.Objective)
	}
	for i := range first.X {
		if second.X[i] != first.X[i] {
			t.Fatalf("cached package diverged at %d", i)
		}
	}

	st := e.Stats()
	if st.ResultCacheHits != 1 || st.ResultCacheMisses != 1 {
		t.Fatalf("stats = %+v, want 1 result hit, 1 miss", st)
	}
	if st.ResultCacheLen != 1 {
		t.Fatalf("result cache holds %d entries, want 1", st.ResultCacheLen)
	}
}

func TestResultCacheMissOnDifferingOptions(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, nil)

	if _, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()}); err != nil {
		t.Fatal(err)
	}

	// Different optimization seed: a different scenario stream, so a
	// different deterministic evaluation → must not share the entry.
	seeded := smallCoreOptions()
	seeded.Seed = 99
	res, err := e.Query(context.Background(), Request{Query: testQuery, Options: seeded})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCacheHit {
		t.Fatal("request with a different seed hit the result cache")
	}

	// Different validation seed too.
	vseeded := smallCoreOptions()
	vseeded.ValidationSeed = 1234
	res, err = e.Query(context.Background(), Request{Query: testQuery, Options: vseeded})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCacheHit {
		t.Fatal("request with a different validation seed hit the result cache")
	}

	// A different method is a different computation.
	res, err = e.Query(context.Background(), Request{Query: testQuery, Method: "naive", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCacheHit {
		t.Fatal("naive request hit the summarysearch entry")
	}

	// Parallelism is NOT part of the key: parallel evaluation is
	// bit-identical, so a different worker count must share the entry.
	par := smallCoreOptions()
	par.Parallelism = 2
	res, err = e.Query(context.Background(), Request{Query: testQuery, Options: par})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultCacheHit {
		t.Fatal("request differing only in parallelism missed the result cache")
	}

	// The default method and its explicit name are one computation.
	res, err = e.Query(context.Background(), Request{Query: testQuery, Method: "summarysearch", Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultCacheHit {
		t.Fatal("explicit \"summarysearch\" missed the default-method entry")
	}

	if st := e.Stats(); st.ResultCacheHits != 2 || st.ResultCacheMisses != 4 {
		t.Fatalf("stats = %+v, want 2 hits / 4 misses", st)
	}
}

func TestResultCacheInvalidatedByRelationVersion(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, nil)

	if _, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()}); err != nil {
		t.Fatal(err)
	}

	// Bump the relation version (same data, so the solve is comparable):
	// the cached result must die with the version it was computed against.
	rel, _ := cat.Table("stocks")
	means, err := rel.Means("gain")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.SetMeans("gain", append([]float64(nil), means...)); err != nil {
		t.Fatal(err)
	}

	res, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCacheHit {
		t.Fatal("result survived a relation version bump")
	}
	if st := e.Stats(); st.ResultCacheHits != 0 || st.ResultCacheMisses != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses", st)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{ResultCacheSize: -1})
	for i := 0; i < 2; i++ {
		res, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResultCacheHit {
			t.Fatal("disabled result cache produced a hit")
		}
	}
	if st := e.Stats(); st.ResultCacheHits != 0 || st.ResultCacheMisses != 0 || st.ResultCacheLen != 0 {
		t.Fatalf("disabled cache counted: %+v", st)
	}
}

func TestResultCacheSketchMethod(t *testing.T) {
	cat := newCatalog(t, 80)
	e := New(cat, nil)
	req := Request{
		Query:   testQuery,
		Method:  "sketch",
		Options: smallCoreOptions(),
		Sketch:  &sketch.Options{GroupSize: 8, MaxCandidates: 32, Shards: 2, Seed: 5},
	}
	first, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Sketch == nil {
		t.Fatal("sketch query returned no sketch stats")
	}
	second, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultCacheHit {
		t.Fatal("identical sketch request missed the result cache")
	}
	if second.Sketch == nil || second.Sketch.Shards != first.Sketch.Shards {
		t.Fatal("cached sketch result lost its stats")
	}
	// Different shard count proposes different candidates: its own entry.
	other := req
	other.Sketch = &sketch.Options{GroupSize: 8, MaxCandidates: 32, Shards: 1, Seed: 5}
	res, err := e.Query(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResultCacheHit {
		t.Fatal("different shard count shared a result entry")
	}
	st := e.Stats()
	if st.SketchQueries != 2 {
		t.Fatalf("sketch queries = %d, want 2 (cache hit runs no pipeline)", st.SketchQueries)
	}
	if st.ShardSolves != 3 {
		t.Fatalf("shard solves = %d, want 2 + 1", st.ShardSolves)
	}
}

// TestResultCacheConcurrent hammers one cached entry from many goroutines;
// under -race this is the data-race check for the result cache + admission
// combination the acceptance criteria name.
func TestResultCacheConcurrent(t *testing.T) {
	cat := newCatalog(t, 15)
	e := New(cat, &Options{MaxInFlight: 4, Parallelism: 2})

	ref, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 16)
	objs := make([]float64, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := smallCoreOptions()
			if g%4 == 3 {
				opts.Seed = uint64(100 + g) // sprinkle misses between hits
			}
			res, err := e.Query(context.Background(), Request{Query: testQuery, Options: opts})
			if err != nil {
				errs[g] = err
				return
			}
			objs[g] = res.Objective
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 0; g < 16; g++ {
		if g%4 != 3 && objs[g] != ref.Objective {
			t.Fatalf("goroutine %d: cached objective diverged: %v vs %v", g, objs[g], ref.Objective)
		}
	}
	if st := e.Stats(); st.ResultCacheHits < 12 {
		t.Fatalf("result-cache hits = %d, want ≥ 12", st.ResultCacheHits)
	}
}
