package engine

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/dist"
	"spq/internal/relation"
	"spq/internal/rng"
	"spq/internal/translate"
)

// deltaCatalog builds the mutable stocks table the delta tests share: price
// and gain as in newCatalog, but with gain variance growing with the mean so
// deltaQuery's probabilistic constraint binds (the warm re-solve needs real
// CSA iterations to shortcut), plus a "fee" column no query below reads —
// the footprint-miss column retention keys off.
func deltaCatalog(t *testing.T, n int) testCatalog {
	t.Helper()
	rel := relation.New("stocks", n)
	price := make([]float64, n)
	fee := make([]float64, n)
	gains := make([]dist.Dist, n)
	for i := 0; i < n; i++ {
		price[i] = float64(40 + 7*(i%9))
		fee[i] = float64(i % 4)
		mu := 0.5 + float64(i%5)*0.4
		gains[i] = dist.Normal{Mu: mu, Sigma: 0.3 + 1.8*mu}
	}
	if err := rel.AddDet("price", price); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddDet("fee", fee); err != nil {
		t.Fatal(err)
	}
	if err := rel.AddStoch("gain", &relation.IndependentVG{AttrID: 1, Dists: gains}); err != nil {
		t.Fatal(err)
	}
	rel.ComputeMeans(rng.NewSource(7), 200)
	return testCatalog{"stocks": rel}
}

// deltaQuery reads price and gain but never fee.
const deltaQuery = `SELECT PACKAGE(*) FROM stocks SUCH THAT
	SUM(price) <= 300 AND
	SUM(gain) >= -2 WITH PROBABILITY >= 0.95
	MAXIMIZE EXPECTED SUM(gain)`

func deltaCoreOptions() *core.Options {
	return &core.Options{Seed: 3, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60}
}

// TestDeltaResultRetentionAndInvalidation pins the delta-scoped split: a
// delta outside the query's column footprint keeps the cached result alive
// (rebased to the new version, bit-identical answer, no solve), while one
// touching a read column drops it and forces a re-solve.
func TestDeltaResultRetentionAndInvalidation(t *testing.T) {
	cat := deltaCatalog(t, 15)
	e := New(cat, nil)

	first, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Feasible {
		t.Fatalf("query infeasible: %+v", first.Solution)
	}

	// Mutate fee: not in the query footprint, membership unchanged.
	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"fee": {0: 9, 3: 9}},
	}); err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.ResultCacheHit {
		t.Fatal("result was not retained across a footprint-miss delta")
	}
	if math.Float64bits(second.Objective) != math.Float64bits(first.Objective) {
		t.Fatalf("retained result changed the answer: %v vs %v", second.Objective, first.Objective)
	}

	// Mutate price: in the footprint — the entry must die and re-solve.
	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"price": {0: 1000}},
	}); err != nil {
		t.Fatal(err)
	}
	third, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if third.ResultCacheHit {
		t.Fatal("result survived a delta touching a read column")
	}

	st := e.Stats()
	if st.DeltasApplied != 2 {
		t.Fatalf("deltas applied = %d, want 2", st.DeltasApplied)
	}
	if st.ResultsRetained != 1 {
		t.Fatalf("results retained = %d, want 1", st.ResultsRetained)
	}
	if st.ResultsInvalidated != 1 {
		t.Fatalf("results invalidated = %d, want 1", st.ResultsInvalidated)
	}
}

// TestDeltaPlanRebase pins the plan-cache analogue: with the result cache
// off, a footprint-miss delta must not cost a re-translation — the cached
// plan is carried to the new version and reported as a plan-cache hit.
func TestDeltaPlanRebase(t *testing.T) {
	cat := deltaCatalog(t, 15)
	e := New(cat, &Options{ResultCacheSize: -1})

	if _, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"fee": {1: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("plan was not rebased across a footprint-miss delta")
	}
	if st := e.Stats(); st.PlansRebased != 1 {
		t.Fatalf("plans rebased = %d, want 1", st.PlansRebased)
	}

	// A delta touching price must rebuild the plan over the new snapshot.
	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"price": {1: 41}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("plan survived a delta touching a read column")
	}
}

// TestDeltaWarmResolve drives the full warm path end to end: a cached result
// is invalidated by a price delta, its warm-start state is stashed, and the
// re-issued request re-solves warm — same bit-identical objective as a cold
// post-delta solve, reported by the warm_resolves counter.
func TestDeltaWarmResolve(t *testing.T) {
	const n = 15
	cat := deltaCatalog(t, n)
	e := New(cat, nil)

	first, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Feasible {
		t.Fatalf("cold solve infeasible: %+v", first.Solution)
	}

	// Push three non-package tuples far over the budget: the optimum package
	// is untouched, so the warm re-solve converges without falling back.
	patch := map[int]float64{}
	for i := n - 1; i >= 0 && len(patch) < 3; i-- {
		if first.X[i] == 0 {
			patch[i] = 1000
		}
	}
	if len(patch) < 3 {
		t.Fatalf("package covers too much of the relation to perturb around: %v", first.X)
	}
	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"price": patch},
	}); err != nil {
		t.Fatal(err)
	}

	warm, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ResultCacheHit {
		t.Fatal("invalidated entry served a stale result")
	}
	if !warm.WarmResolve {
		t.Fatal("re-issued request fell back to the cold path")
	}
	if st := e.Stats(); st.WarmResolves != 1 || st.ResultsInvalidated != 1 {
		t.Fatalf("stats = %+v, want 1 warm re-solve and 1 invalidation", st)
	}

	// A cold engine over the same (post-delta) relation must agree bit for bit.
	cold := New(cat, &Options{ResultCacheSize: -1})
	ref, err := cold.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warm.Objective) != math.Float64bits(ref.Objective) {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, ref.Objective)
	}
	for i := range ref.X {
		if warm.X[i] != ref.X[i] {
			t.Fatalf("tuple %d: warm multiplicity %v, cold %v", i, warm.X[i], ref.X[i])
		}
	}
}

// TestDeltaTrimsJobHistory pins the eager half of invalidation: a delta
// releases terminal jobs' pinned snapshots and package vectors, while their
// rendered wire results keep serving polls.
func TestDeltaTrimsJobHistory(t *testing.T) {
	cat := deltaCatalog(t, 15)
	e := New(cat, &Options{ResultCacheSize: -1})

	j, err := e.Submit(Request{Query: deltaQuery, Options: deltaCoreOptions()})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if res, err := j.Result(); err != nil || res == nil {
		t.Fatalf("job result = %v, %v", res, err)
	}
	before := j.Snapshot(0)
	if before.Result == nil || len(before.BestPackage) == 0 {
		t.Fatalf("finished job has no package: %+v", before)
	}

	if _, err := e.ApplyDelta("stocks", &relation.Delta{
		Set: map[string]map[int]float64{"fee": {2: 7}},
	}); err != nil {
		t.Fatal(err)
	}

	// The engine-level result (and its pinned snapshot) is gone...
	if res, err := j.Result(); err != nil || res != nil {
		t.Fatalf("trimmed job still pins its result: %v, %v", res, err)
	}
	// ...but the wire rendering still answers polls, package included.
	after := j.Snapshot(0)
	if after.Result == nil {
		t.Fatal("trim dropped the wire result")
	}
	if len(after.BestPackage) != len(before.BestPackage) {
		t.Fatalf("trimmed snapshot lost the package: %d vs %d tuples",
			len(after.BestPackage), len(before.BestPackage))
	}
	if after.BestObjective != before.BestObjective {
		t.Fatalf("trimmed snapshot changed the objective: %v vs %v",
			after.BestObjective, before.BestObjective)
	}
}

// TestConcurrentDeltasDeterministicSnapshots races a mutator applying deltas
// against concurrent queries and pins snapshot isolation: every query result
// must be bit-identical to a from-scratch core re-solve of the exact snapshot
// the engine admitted it against, no matter which version the mutator had
// reached. Run with -race this is the data-race check for the COW delta
// spine + engine combination the acceptance criteria name.
func TestConcurrentDeltasDeterministicSnapshots(t *testing.T) {
	const n = 15
	cat := deltaCatalog(t, n)
	// Result cache off: each query must pin and solve its own snapshot.
	e := New(cat, &Options{ResultCacheSize: -1, MaxInFlight: 4})

	stop := make(chan struct{})
	var mut sync.WaitGroup
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			col := "price"
			if i%2 == 1 {
				col = "fee"
			}
			if _, err := e.ApplyDelta("stocks", &relation.Delta{
				Set: map[string]map[int]float64{col: {i % n: float64(40 + i%60)}},
			}); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const workers, per = 3, 4
	results := make([]*Result, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < per; q++ {
				res, err := e.Query(context.Background(), Request{Query: deltaQuery, Options: deltaCoreOptions()})
				if err != nil {
					t.Error(err)
					return
				}
				results[w*per+q] = res
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	mut.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// res.Rel is the admitted snapshot (no WHERE clause): rebuilding the SILP
	// over it and solving cold must reproduce the result bit for bit.
	for i, res := range results {
		silp, err := translate.Build(res.Query, res.Rel, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.SummarySearch(silp, deltaCoreOptions())
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Objective) != math.Float64bits(ref.Objective) {
			t.Fatalf("query %d: objective %v != snapshot re-solve %v", i, res.Objective, ref.Objective)
		}
		if len(res.X) != len(ref.X) {
			t.Fatalf("query %d: package length %d != %d", i, len(res.X), len(ref.X))
		}
		for j := range ref.X {
			if res.X[j] != ref.X[j] {
				t.Fatalf("query %d tuple %d: multiplicity %v != %v", i, j, res.X[j], ref.X[j])
			}
		}
	}
}

// TestDeltaEndpoint drives POST /v1/tables/{name}/deltas over the wire:
// happy path, unknown table, empty body, and the read-only refusal.
func TestDeltaEndpoint(t *testing.T) {
	cat := deltaCatalog(t, 15)
	e := New(cat, nil)
	srv := v1Server(t, e)

	resp := postJSON(t, srv.URL+"/v1/tables/stocks/deltas", client.DeltaRequest{
		Set: map[string]map[int]float64{"fee": {0: 3, 5: 4}},
	})
	var dr client.DeltaResponse
	decodeInto(t, resp, http.StatusOK, &dr)
	if dr.Table != "stocks" || dr.Version != dr.FromVersion+1 {
		t.Fatalf("bad delta response: %+v", dr)
	}
	if dr.TuplesSet != 2 || len(dr.Cols) != 1 || dr.Cols[0] != "fee" {
		t.Fatalf("bad footprint: %+v", dr)
	}

	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/tables/nope/deltas", client.DeltaRequest{
		Set: map[string]map[int]float64{"fee": {0: 1}},
	}), http.StatusNotFound, client.CodeNotFound)

	decodeEnvelope(t, postJSON(t, srv.URL+"/v1/tables/stocks/deltas", client.DeltaRequest{}),
		http.StatusBadRequest, client.CodeBadRequest)

	ro := New(cat, &Options{ReadOnly: true})
	rosrv := v1Server(t, ro)
	decodeEnvelope(t, postJSON(t, rosrv.URL+"/v1/tables/stocks/deltas", client.DeltaRequest{
		Set: map[string]map[int]float64{"fee": {0: 1}},
	}), http.StatusMethodNotAllowed, client.CodeMethodNotAllowed)
}

func decodeInto(t *testing.T, resp *http.Response, wantStatus int, v any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
