// Package engine is the concurrent query-execution layer of the system: it
// turns the one-shot algorithms of internal/core into a long-lived service.
// It adds four things the single-query path does not have:
//
//   - a bounded-concurrency session layer: at most MaxInFlight queries solve
//     at once, a bounded number more may wait for a slot, and everything
//     beyond that is rejected immediately with ErrOverloaded (admission
//     control for a daemon under heavy traffic);
//   - an LRU plan cache of parsed + translated queries (sPaQL AST and
//     translate.SILP), keyed by the canonical rendering of the parsed
//     statement and invalidated by the registered relation's version
//     counter, so repeated queries skip WHERE filtering, mask evaluation,
//     and bound derivation;
//   - a result cache behind the internal/resultcache.Store seam: evaluation
//     is fully deterministic for fixed (query, method, options, seeds) —
//     parallelism is bit-identical to sequential — so identical requests are
//     served from a response store without solving, or even waiting for a
//     solve slot. The default store is a node-local LRU; a Replicating store
//     write-through-shares entries between peer daemons, and the engine
//     materializes peer-received entries lazily against its own catalog;
//   - per-query timeouts and cancellation via context.Context, carried all
//     the way into scenario generation, validation, and the MILP search.
//
// Methods resolve through the core.Solver seam (SummarySearch, Naive, any
// registered solver such as internal/remote's "remote"), plus "sketch",
// which runs the partition-aware SketchRefine pipeline (internal/sketch)
// against the cached plan: the relation's cached Partitioning shards the
// medoid solve, shards solve concurrently, and one global refine follows.
// With Options.SketchSolver set to a remote solver, those shard sub-solves
// dispatch to worker daemons as v1 jobs — the multi-node deployment.
// Symmetrically, the engine is the worker side of that dispatch: a request
// carrying a client.SolveSpec solves a sub-problem of a registered table
// (subset view + bound overrides) and answers with the raw, bit-exact
// solution.
//
// Query evaluation itself runs with core.Options.Parallelism workers, so one
// query exploits all cores when the server is idle while concurrent queries
// share them under load. Parallel execution is bit-identical to sequential
// (see internal/core and internal/sketch), so the caches and the worker
// pools never change answers.
package engine

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/obs"
	"spq/internal/relation"
	"spq/internal/remote"
	"spq/internal/resultcache"
	"spq/internal/sketch"
	"spq/internal/spaql"
	"spq/internal/stream"
	"spq/internal/translate"
)

// Catalog resolves table names to registered relations. *spq.DB implements
// it.
type Catalog interface {
	Table(name string) (*relation.Relation, bool)
}

// ErrOverloaded is returned (and mapped to HTTP 429) when the engine's
// admission queue is full.
var ErrOverloaded = errors.New("engine: overloaded, admission queue full")

// ErrBadQuery wraps client-side failures — parse errors, unknown tables or
// methods, untranslatable or deterministically infeasible queries — so the
// HTTP layer can map them to 400 while internal evaluation failures map
// to 500.
var ErrBadQuery = errors.New("engine: bad query")

// ErrUnknownMethod wraps ErrBadQuery for unrecognized evaluation methods,
// so the HTTP layer can report the dedicated "unknown_method" error code.
var ErrUnknownMethod = fmt.Errorf("%w: unknown method", ErrBadQuery)

// ErrDegraded is returned when an engine-applied budget (query class or
// request deadline) exhausted the evaluation before any feasible package
// was found — there was nothing to degrade to. It maps to HTTP 429 with the
// stable code "degraded_unavailable" (retrying under less load may
// succeed). Budget cuts that do hold a feasible incumbent return it with
// Result.Degraded set instead of this error.
var ErrDegraded = errors.New("engine: budget exhausted before a feasible package was found")

// Options tune the engine.
type Options struct {
	// MaxInFlight is the number of queries that may solve concurrently
	// (default: one per available CPU).
	MaxInFlight int
	// MaxQueue is the number of additional queries that may wait for a
	// solve slot before new arrivals are rejected with ErrOverloaded
	// (default 4×MaxInFlight; negative allows no waiting at all).
	MaxQueue int
	// PlanCacheSize is the LRU capacity of the plan cache in entries
	// (default 128; 0 uses the default, negative disables caching).
	PlanCacheSize int
	// ResultCacheSize is the LRU capacity of the result cache in entries
	// (default 256; 0 uses the default, negative disables caching).
	// Identical (query, method, options, seeds, timeout) requests against
	// an unchanged relation are answered from it without solving.
	ResultCacheSize int
	// DefaultTimeout bounds each query's evaluation when the request
	// carries no tighter deadline (default 60s).
	DefaultTimeout time.Duration
	// Parallelism is the per-query worker count handed to core.Options
	// when the request does not set one (default: one per available CPU).
	Parallelism int
	// MaxResidentScenarios is the default core.Options.MaxResidentScenarios
	// for requests that do not set one: 0 (the default) streams scenario
	// values block-wise with constant memory, > 0 materializes scenario
	// matrices while M stays at or under the budget, < 0 always
	// materializes. Streamed and materialized evaluation are bit-identical,
	// so this knob trades memory against per-summary recompute cost only.
	MaxResidentScenarios int
	// MaxJobs bounds the async jobs that may be active (queued or running)
	// at once; Submit beyond it fails with ErrOverloaded (default
	// MaxInFlight+MaxQueue, which preserves the synchronous admission
	// behaviour for the legacy /query shim).
	MaxJobs int
	// JobHistory is the number of finished jobs retained for polling after
	// completion (default 64; negative retains none).
	JobHistory int
	// ResultCache, when non-nil, replaces the default in-memory result
	// store (a resultcache.Memory of ResultCacheSize entries). A
	// resultcache.Replicating store shares entries with peer daemons; its
	// peer endpoint is mounted by Handler and its counters join Stats.
	ResultCache resultcache.Store
	// SketchSolver, when non-nil, evaluates method=sketch sub-problems
	// (shard sketches, refine, fallback) in place of the sketch default
	// (core.SummarySearchSolver). Coordinator daemons set the remote solver
	// here to dispatch shards to workers. Per-request sketch options that
	// name a solver explicitly win.
	SketchSolver core.Solver
	// RemoteStats, when non-nil, is snapshotted into the remote_* Stats
	// fields (set by daemons that registered a remote solver).
	RemoteStats func() remote.Stats
	// ReadOnly disables the mutation surface: POST /v1/tables/{name}/deltas
	// answers 405 and Engine.ApplyDelta fails. Workers in a fleet should run
	// read-only so every mutation funnels through the coordinator.
	ReadOnly bool
	// Logger, when non-nil, receives the engine's structured events — today
	// the slow-query log (see SlowQuery).
	Logger *obs.Logger
	// SlowQuery, when > 0, logs every query whose end-to-end evaluation
	// (admission wait included) took at least this long, stamped with its
	// trace ID and the full rendered span tree.
	SlowQuery time.Duration
	// Tenants configures the weighted-fair admission scheduler: one lane per
	// named tenant plus the default lane (weight 1 unless configured).
	// Requests with unknown or empty tenant labels run in the default lane.
	// With no tenants configured every request shares the default lane and
	// admission degenerates to the former global FIFO.
	Tenants []TenantConfig
	// Classes maps query-class names to engine-applied evaluation budgets.
	// A binding class budget degrades the result to the anytime best-so-far
	// package (Result.Degraded) instead of failing the query.
	Classes map[string]ClassBudget
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 4 * out.MaxInFlight
	} else if out.MaxQueue < 0 {
		out.MaxQueue = 0
	}
	if out.PlanCacheSize == 0 {
		out.PlanCacheSize = 128
	}
	if out.ResultCacheSize == 0 {
		out.ResultCacheSize = 256
	}
	if out.DefaultTimeout == 0 {
		out.DefaultTimeout = 60 * time.Second
	}
	if out.Parallelism == 0 {
		out.Parallelism = -1 // core: one worker per CPU
	}
	if out.MaxJobs <= 0 {
		out.MaxJobs = out.MaxInFlight + out.MaxQueue
	}
	if out.JobHistory == 0 {
		out.JobHistory = 64
	} else if out.JobHistory < 0 {
		out.JobHistory = 0
	}
	return out
}

// Request describes one query evaluation.
type Request struct {
	// Query is the sPaQL text.
	Query string
	// Method selects the algorithm: "" or "summarysearch" (the default),
	// "naive" for the SAA baseline, or "sketch" for the partition-aware
	// SketchRefine pipeline.
	Method string
	// Timeout overrides the engine's default per-query timeout when > 0.
	Timeout time.Duration
	// Options tune the evaluation; nil uses core defaults. Parallelism 0
	// inherits the engine's default.
	Options *core.Options
	// Sketch tunes the sketch pipeline when Method is "sketch"; nil uses
	// sketch defaults. Workers 0 inherits the engine's parallelism.
	Sketch *sketch.Options
	// Solve, when non-nil, restricts the evaluation to a sub-problem of the
	// query's table: the subset view named by the spec (base-relation tuple
	// indices), with the spec's variable-bound overrides applied after
	// translation. This is the worker side of remote dispatch
	// (internal/remote submits these); sub-problem plans are built per
	// request (no plan cache — every shard's subset differs) but results
	// are cached with the spec joined into the key.
	Solve *client.SolveSpec
	// Progress, when non-nil, receives per-iteration reports while the
	// solve runs (installed into core.Options; see core.Progress). It never
	// fires for result-cache hits, where no solve runs.
	Progress func(core.Progress)
	// TraceParent, when non-empty, is an obs.TraceParent rendering
	// ("<trace-id>/<span-name>") propagated from an upstream daemon (the
	// X-Spq-Trace header): the evaluation's trace adopts the upstream trace
	// ID so coordinator and worker spans correlate. Like Progress it is
	// purely observational and never joins cache keys.
	TraceParent string
	// Tenant names the admission lane ("" and unknown labels fold into the
	// default tenant). Tenancy shapes scheduling only: it never reaches the
	// solver, the result, or any cache key.
	Tenant string
	// Class names the query class whose Options.Classes budget bounds the
	// evaluation ("" = none). A binding class budget degrades rather than
	// fails (see Result.Degraded). Like Tenant it stays out of cache keys;
	// budget-cut results are never cached, so the keys cannot diverge.
	Class string
	// onAdmit, when non-nil, is called exactly once when the query acquires
	// a solve slot (after any admission wait). The job manager uses it to
	// move jobs from queued to running.
	onAdmit func()
}

// Result is the outcome of an engine query. Cached results are shared
// between requests: treat the Solution as read-only.
type Result struct {
	*core.Solution
	// Query is the parsed statement (from the plan cache on a hit).
	Query *spaql.Query
	// Rel is the WHERE-filtered relation the multiplicities index.
	Rel *relation.Relation
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// ResultCacheHit reports whether the whole result came from the result
	// cache (no solve ran; CacheHit is false in that case).
	ResultCacheHit bool
	// Sketch reports the sketch pipeline's stats for Method "sketch".
	Sketch *sketch.Stats
	// Wait is the time spent in the admission queue before solving.
	Wait time.Duration
	// Degraded reports that an engine-applied budget (query class or the
	// request deadline) cut the evaluation short: the Solution is the
	// anytime best-so-far feasible package, not the converged answer. Its
	// achieved gap is Solution.EpsUpper. Degraded results are never cached.
	Degraded bool
	// Trace is the evaluation's finished span tree, set only when the
	// engine minted the trace itself (a direct Query call with no ambient
	// span). Job submissions expose their trace via the job instead
	// (GET /v1/queries/{id}/trace).
	Trace *obs.SpanData
}

// Multiplicities returns the package as a map from base-relation tuple
// index to copy count.
func (r *Result) Multiplicities() map[int]int {
	out := map[int]int{}
	for i, x := range r.X {
		if x > 0 {
			out[r.Rel.OrigIndex(i)] += int(x + 0.5)
		}
	}
	return out
}

// lruCache is a tiny string-keyed LRU for the plan cache (the result cache
// moved behind internal/resultcache.Store, which synchronizes itself).
// The caller synchronizes access (the engine holds its mutex).
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used; values are *lruEntry
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) drop(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.Remove(el)
		delete(c.m, key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }

// plan is one cached prepared query. The SILP is lowered over an immutable
// snapshot of the table, so a delta applied mid-evaluation cannot mix
// post-delta values into an admitted solve.
type plan struct {
	key        string
	query      *spaql.Query
	silp       *translate.SILP
	table      *relation.Relation // registered base relation the plan was built against
	relVersion uint64
	// attrs is the query's column footprint (spaql.Query.Attrs): a delta
	// whose change set misses it (and changes no membership) retains the
	// plan across versions.
	attrs []string
}

// cachedResult is one result-cache entry's in-process value: a fully
// evaluated, deterministic response plus the relation identity/version it
// is valid for. It rides inside resultcache.Entry.Local; the entry's Wire
// payload is the serialized cacheWire twin a peer daemon can rebuild it
// from.
type cachedResult struct {
	sol        *core.Solution
	sketch     *sketch.Stats
	query      *spaql.Query
	rel        *relation.Relation // WHERE-filtered view the solution indexes
	table      *relation.Relation
	relVersion uint64
}

// cacheWire is the self-contained replication payload of one cached result:
// everything a peer needs to revalidate the entry against its own catalog
// and rebuild the cachedResult (canonical query → plan → relation view; raw
// solution → core.Solution). Float64 fields round-trip exactly through
// JSON, so a replicated hit is bit-identical to a local one.
type cacheWire struct {
	Query  string              `json:"query"`
	Method string              `json:"method"`
	Solve  *client.SolveSpec   `json:"solve,omitempty"`
	Result *client.SolveResult `json:"result"`
	Sketch *sketch.Stats       `json:"sketch,omitempty"`
}

// Stats is a point-in-time snapshot of the engine's counters, served as one
// JSON payload by GET /stats (admission, both caches, sketch sharding; the
// fields are documented in DESIGN.md).
type Stats struct {
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`
	Rejected int64 `json:"rejected"`
	// CacheHits/CacheMisses count the plan cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// ResultCacheHits counts queries answered without solving;
	// ResultCacheMisses counts lookups that found no valid entry (including
	// queries that subsequently failed or were rejected by admission, so it
	// can exceed the number of solves that ran).
	ResultCacheHits   int64 `json:"result_cache_hits"`
	ResultCacheMisses int64 `json:"result_cache_misses"`
	// SketchQueries counts method=sketch evaluations; ShardSolves counts
	// the per-shard sketch solves they fanned out.
	SketchQueries int64 `json:"sketch_queries"`
	ShardSolves   int64 `json:"shard_solves"`
	// Active counts queries currently solving; Queued is the admission-queue
	// depth (queries waiting for a solve slot, not those already solving),
	// bounded by MaxQueue.
	Active int64 `json:"active"`
	Queued int64 `json:"queued"`
	// Degraded counts responses served as the anytime best-so-far package
	// after an engine-applied budget (query class or request deadline)
	// bound, summed over tenants.
	Degraded int64 `json:"degraded"`
	// Tenants is the per-tenant admission ledger of the weighted-fair
	// scheduler, keyed by lane name (unknown labels fold into "default").
	Tenants        map[string]TenantStats `json:"tenants"`
	SolveTimeMS    int64                  `json:"solve_time_ms"`
	MaxInFlight    int                    `json:"max_in_flight"`
	MaxQueue       int                    `json:"max_queue"`
	PlanCacheLen   int                    `json:"plan_cache_len"`
	ResultCacheLen int                    `json:"result_cache_len"`
	// Job-manager counters (the v1 async API; the legacy /query shim also
	// runs through it). JobsRunning is a gauge of jobs currently in the
	// running state; JobsCompleted counts terminal succeeded+failed jobs
	// (cancelled ones count under JobsCancelled); JobsEvicted counts
	// finished jobs dropped from the bounded history.
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsEvicted   int64 `json:"jobs_evicted"`
	// MILP search counters: MilpSolves counts branch-and-bound solves run by
	// finished queries, MilpNodes the nodes they explored, and MilpWorkersMax
	// the largest per-solve worker bound observed (1 = sequential search).
	// Sketch shard sub-solves report only through the refine solution they
	// feed, so these undercount method=sketch traffic.
	MilpSolves     int64 `json:"milp_solves"`
	MilpNodes      int64 `json:"milp_nodes"`
	MilpWorkersMax int64 `json:"milp_workers_max"`
	// LP kernel counters: total simplex iterations, node LPs warm-started
	// from a parent basis, degenerate pivots, and the rows/columns removed
	// by MILP root presolve, summed over the same finished queries.
	LpIters       int64 `json:"lp_iters"`
	LpWarmStarts  int64 `json:"lp_warm_starts"`
	LpDegenPivots int64 `json:"lp_degen_pivots"`
	LpBoundFlips  int64 `json:"lp_bound_flips"`
	PresolveRows  int64 `json:"presolve_rows"`
	PresolveCols  int64 `json:"presolve_cols"`
	// Streaming-pipeline counters (process-wide, not per-engine): scenario
	// value blocks realized on demand, individual values produced, and the
	// tuples kept/removed by WHERE pushdown before any scenario generation.
	StreamBlocks     int64 `json:"stream_blocks"`
	StreamValues     int64 `json:"stream_values"`
	PushdownKept     int64 `json:"pushdown_kept_tuples"`
	PushdownFiltered int64 `json:"pushdown_filtered_tuples"`
	// Out-of-core column block-cache counters (process-wide): lookups served
	// from cache, block loads, evictions, and bytes currently resident.
	ColCacheHits     int64 `json:"colcache_hits"`
	ColCacheMisses   int64 `json:"colcache_misses"`
	ColCacheEvicted  int64 `json:"colcache_evictions"`
	ColCacheResident int64 `json:"colcache_resident_bytes"`
	// Delta-maintenance counters. DeltasApplied counts mutations accepted by
	// the engine's delta surface; ResultsRetained/ResultsInvalidated split
	// the cached results revalidated after a delta by whether the change
	// footprint missed them (retained, served unchanged) or hit them
	// (dropped, possibly leaving a warm-start hint); PlansRebased counts
	// cached plans carried across versions the same way; WarmResolves counts
	// queries answered by the warm re-solve fast path. The relation-level
	// counters (cells patched, partitionings retained/patched/rebuilt, stale
	// view rejections, summary tuples patched/reused) are process-wide.
	DeltasApplied      int64 `json:"deltas_applied"`
	DeltaCells         int64 `json:"delta_cells_patched"`
	ResultsRetained    int64 `json:"results_retained_after_delta"`
	ResultsInvalidated int64 `json:"results_invalidated_after_delta"`
	PlansRebased       int64 `json:"plans_rebased_after_delta"`
	WarmResolves       int64 `json:"warm_resolves"`
	PartsRetained      int64 `json:"partitions_retained"`
	PartsPatched       int64 `json:"partitions_patched"`
	PartsRebuilt       int64 `json:"partitions_rebuilt"`
	ShardsRebuilt      int64 `json:"shards_rebuilt"`
	ShardsRetained     int64 `json:"shards_retained"`
	StaleViews         int64 `json:"stale_views"`
	SummariesPatched   int64 `json:"summary_tuples_patched"`
	SummariesReused    int64 `json:"summary_tuples_reused"`
	// Result-cache replication counters, present only when the engine runs
	// a Replicating store (see internal/resultcache): entries pushed to
	// peers, accepted from peers, failed deliveries, and local pushes
	// dropped on queue overflow.
	CacheReplicated  int64 `json:"cache_replicated,omitempty"`
	CacheReceived    int64 `json:"cache_received,omitempty"`
	CachePushErrors  int64 `json:"cache_push_errors,omitempty"`
	CacheReplDropped int64 `json:"cache_repl_dropped,omitempty"`
	// Remote-solver counters, present only on daemons that registered a
	// worker pool (Options.RemoteStats): sub-solves dispatched to workers,
	// local fallbacks, observed worker failures, and workers currently in
	// failure backoff.
	RemoteDispatched  int64 `json:"remote_dispatched,omitempty"`
	RemoteFallbacks   int64 `json:"remote_fallbacks,omitempty"`
	RemoteFailures    int64 `json:"remote_failures,omitempty"`
	RemoteWorkersDown int64 `json:"remote_workers_down,omitempty"`
}

// Engine is a concurrent sPaQL query-execution engine over a catalog of
// registered relations. It is safe for concurrent use.
type Engine struct {
	cat   Catalog
	opts  Options
	sched *fairScheduler

	// m holds every operational instrument (internal/obs registry handles).
	// Stats() and GET /metrics both read from it.
	m *engineMetrics

	mu    sync.Mutex
	plans *lruCache
	// warmHints holds warm-start state salvaged from result-cache entries a
	// delta invalidated, keyed by result key; bounded (see maxWarmHints).
	warmHints map[string]*warmHint

	// results is nil when result caching is disabled. wantWire reports
	// whether the store replicates (implements Counters), in which case
	// every locally solved entry also gets its serialized wire payload.
	results  resultcache.Store
	wantWire bool

	// Async job manager state (jobs.go). jobList holds every tracked job in
	// submission order; jobFinished counts the terminal ones, bounded by
	// Options.JobHistory via eviction.
	jobsMu      sync.Mutex
	jobsByID    map[string]*Job
	jobList     []*Job
	jobFinished int
	jobSeq      atomic.Int64
}

// New creates an engine over the catalog.
func New(cat Catalog, o *Options) *Engine {
	opts := o.withDefaults()
	e := &Engine{
		cat:      cat,
		opts:     opts,
		sched:    newFairScheduler(opts.MaxInFlight, opts.MaxQueue, opts.Tenants),
		plans:    newLRU(opts.PlanCacheSize),
		jobsByID: map[string]*Job{},
	}
	switch {
	case opts.ResultCache != nil:
		e.results = opts.ResultCache
	case opts.ResultCacheSize > 0:
		e.results = resultcache.NewMemory(opts.ResultCacheSize)
	}
	if e.results != nil {
		_, e.wantWire = e.results.(interface{ Counters() resultcache.Counters })
	}
	e.m = newEngineMetrics(e)
	return e
}

// prepare returns a cached plan for the parsed query, or validates and
// lowers it and caches the result. The cache key is the canonical rendering
// of the *parsed* query (spaql guarantees Parse(q.String()) round-trips), so
// reformatted, comment-bearing, or otherwise trivially different texts share
// a plan exactly when they denote the same statement — a purely textual key
// would conflate e.g. queries that differ only inside a "--" line comment.
// Parsing is cheap; the cache exists to skip the translation (WHERE
// filtering, mask evaluation, bound derivation). A cached plan is dead as
// soon as the table name resolves to a different relation or the relation's
// version counter moved (e.g. re-registered data or recomputed means).
func (e *Engine) prepare(q *spaql.Query, key string) (*plan, bool, error) {
	if p := e.planGet(key); p != nil {
		if rel, ok := e.cat.Table(p.query.Table); ok && rel == p.table {
			if rel.Version() == p.relVersion {
				e.m.planHits.Inc()
				return p, true, nil
			}
			// The relation moved past the plan. Retain it anyway when the
			// merged delta footprint misses the query's columns and changed
			// no membership: re-translating would reproduce the plan
			// bound-for-bound (the pinned snapshot still reads the same
			// values for every column the query touches).
			if cs, have := rel.Changes(p.relVersion); have && !cs.MembershipChanged() && !cs.Touches(p.attrs) {
				np := *p
				np.relVersion = cs.To
				e.planPut(&np)
				e.m.plansRebased.Inc()
				e.m.planHits.Inc()
				return &np, true, nil
			}
		}
		e.planDrop(key)
	}
	e.m.planMisses.Inc()

	rel, ok := e.cat.Table(q.Table)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown table %q", q.Table)
	}
	// Pin an immutable snapshot: concurrent deltas replace the base
	// relation's columns copy-on-write, so the admitted evaluation keeps
	// reading the pre-delta state (substream identity included) end to end.
	snap := rel.Snapshot()
	silp, err := translate.Build(q, snap, nil)
	if err != nil {
		return nil, false, err
	}
	p := &plan{key: key, query: q, silp: silp, table: rel, relVersion: snap.Version(), attrs: q.Attrs()}
	e.planPut(p)
	return p, false, nil
}

func (e *Engine) planGet(key string) *plan {
	if e.opts.PlanCacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.plans.get(key); ok {
		return v.(*plan)
	}
	return nil
}

func (e *Engine) planPut(p *plan) {
	if e.opts.PlanCacheSize < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans.put(p.key, p)
}

func (e *Engine) planDrop(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans.drop(key)
}

// prepareSolve builds the plan for a sub-problem submission
// (client.SolveSpec): the query lowered over the spec's subset view of the
// base relation, with the spec's variable-bound overrides applied after
// translation. The subset selection preserves each tuple's substream
// identity, so the rebuilt problem is row-for-row the problem the
// dispatching coordinator holds, and solving it is bit-identical to the
// coordinator solving locally. Sub-problem plans are never plan-cached —
// each shard's subset is unique — but their results are result-cached (the
// spec joins the key).
func (e *Engine) prepareSolve(q *spaql.Query, spec *client.SolveSpec) (*plan, error) {
	rel, ok := e.cat.Table(q.Table)
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", q.Table)
	}
	snap := rel.Snapshot() // pin: deltas must not shift an admitted sub-solve
	version := snap.Version()
	n := snap.N()
	if len(spec.Subset) == 0 {
		return nil, errors.New("engine: solve spec has an empty subset")
	}
	member := make([]bool, n)
	prev := -1
	for _, t := range spec.Subset {
		if t <= prev || t >= n {
			return nil, fmt.Errorf("engine: solve subset must be strictly ascending base-relation indices below %d", n)
		}
		prev = t
		member[t] = true
	}
	sub := snap.Select(func(t int) bool { return member[t] })
	silp, err := translate.Build(q, sub, nil)
	if err != nil {
		return nil, err
	}
	if spec.VarHi != nil {
		if len(spec.VarHi) != silp.N {
			return nil, fmt.Errorf("engine: solve spec var_hi has %d bounds, problem has %d variables", len(spec.VarHi), silp.N)
		}
		silp.VarHi = append([]float64(nil), spec.VarHi...)
	}
	if spec.VarLo != nil {
		if len(spec.VarLo) != silp.N {
			return nil, fmt.Errorf("engine: solve spec var_lo has %d bounds, problem has %d variables", len(spec.VarLo), silp.N)
		}
		silp.VarLo = append([]float64(nil), spec.VarLo...)
	}
	return &plan{query: q, silp: silp, table: rel, relVersion: version}, nil
}

// resultKey renders the full determinism domain of a request: the canonical
// statement, the method, every result-relevant evaluation option (seeds
// included, parallelism excluded — it is bit-identical), the effective
// timeout (when a budget binds, the result depends on it), the sketch
// options for the sketch method, and the solve spec for sub-problem
// requests. Every part is node-independent, which is what makes the key
// safe to share across a replicated fleet.
func resultKey(qstr, method string, opts *core.Options, timeout time.Duration, sopts *sketch.Options, spec *client.SolveSpec) string {
	key := qstr + "\x1f" + method + "\x1f" + opts.Key() + "\x1f" + fmt.Sprint(int64(timeout))
	if method == "sketch" {
		key += "\x1f" + sopts.Key()
	}
	if spec != nil {
		key += "\x1f" + spec.Key()
	}
	return key
}

// resultGet returns a still-valid cached result, dropping entries whose
// relation changed. The conditional Drop (pointer-matched against the entry
// we validated) guarantees a stale read can never evict a fresh entry
// stored by a concurrent solve. Entries that arrived from a peer daemon
// carry only the wire payload; the first hit materializes them against the
// local catalog and promotes the in-process value. A nil return is counted
// as a miss.
func (e *Engine) resultGet(key string) *cachedResult {
	if e.results == nil {
		return nil
	}
	ent, ok := e.results.Get(key)
	if !ok {
		e.m.resultMisses.Inc()
		return nil
	}
	if rel, live := e.cat.Table(ent.Table); live {
		if cr, isLocal := ent.Local.(*cachedResult); isLocal {
			// The identity check (not just name+version) guards against a
			// different relation re-registered under the same name whose
			// fresh version counter happens to coincide.
			if cr.table == rel {
				if rel.Version() == ent.Version {
					e.m.resultHits.Inc()
					return cr
				}
				// The relation moved past the entry. Retain it when the
				// merged delta footprint misses the query's columns and
				// changed no membership: the solution provably cannot
				// differ, so the entry is rebased to the new version. The
				// rebased entry is marked Remote so it never re-replicates
				// (peers revalidate against their own catalogs). Tuples in
				// the rendered package read from the admitted snapshot,
				// whose query-relevant columns are identical by
				// construction.
				if cs, have := rel.Changes(ent.Version); have && !cs.MembershipChanged() && !cs.Touches(cr.query.Attrs()) {
					e.results.Put(key, &resultcache.Entry{
						Table: ent.Table, Version: cs.To,
						Local: cr, Wire: ent.Wire, Remote: true,
					})
					e.m.resultsRetained.Inc()
					e.m.resultHits.Inc()
					return cr
				}
				// Invalidated for real — but the dying entry may carry the
				// previous evaluation's warm-start state. Stash it so the
				// re-solve of the same request can start from the previous
				// package, summaries, and root basis instead of cold.
				e.stashWarm(key, cr)
				e.m.resultsInvalidated.Inc()
			}
		} else if rel.Version() == ent.Version {
			if cr := e.materialize(ent); cr != nil {
				e.results.Put(key, &resultcache.Entry{
					Table: ent.Table, Version: ent.Version,
					Local: cr, Wire: ent.Wire,
					Remote: true, // a promoted peer entry still never re-replicates
				})
				e.m.resultHits.Inc()
				return cr
			}
		}
	}
	e.results.Drop(key, ent)
	e.m.resultMisses.Inc()
	return nil
}

// materialize rebuilds a peer-replicated entry's in-process value against
// the local catalog: parse the canonical query, prepare its plan (through
// the plan cache for whole-table entries; per-spec for sub-problems), check
// the version still matches, and decode the raw solution onto the plan's
// relation view. Any mismatch — table gone, version moved, malformed
// payload, wrong package length — returns nil and the caller drops the
// entry; replication is best-effort by design.
func (e *Engine) materialize(ent *resultcache.Entry) *cachedResult {
	if len(ent.Wire) == 0 {
		return nil
	}
	var cw cacheWire
	if err := json.Unmarshal(ent.Wire, &cw); err != nil {
		return nil
	}
	q, err := spaql.Parse(cw.Query)
	if err != nil {
		return nil
	}
	var p *plan
	if cw.Solve != nil {
		p, err = e.prepareSolve(q, cw.Solve)
	} else {
		p, _, err = e.prepare(q, q.String())
	}
	if err != nil || p.relVersion != ent.Version {
		return nil
	}
	sol, err := remote.FromWireSolution(cw.Result, p.silp.Rel.N())
	if err != nil {
		return nil
	}
	return &cachedResult{
		sol: sol, sketch: cw.Sketch, query: p.query, rel: p.silp.Rel,
		table: p.table, relVersion: p.relVersion,
	}
}

// resultPut stores one locally solved result. When the store replicates,
// the entry also carries its self-contained wire payload for the peer push.
func (e *Engine) resultPut(key, method string, cr *cachedResult, spec *client.SolveSpec) {
	if e.results == nil {
		return
	}
	ent := &resultcache.Entry{Table: cr.query.Table, Version: cr.relVersion, Local: cr}
	// A warm re-solve was seeded by node-local state (Options.Warm is
	// excluded from the result key), so its accepted (M, Z) is not
	// guaranteed to match what a peer solving the same key cold would reach:
	// the entry stays node-local (Remote entries never replicate).
	if cr.sol != nil && cr.sol.WarmResolve {
		ent.Remote = true
	} else if e.wantWire {
		if wire, err := json.Marshal(cacheWire{
			Query:  cr.query.String(),
			Method: method,
			Solve:  spec,
			Result: remote.ToWireSolution(cr.sol),
			Sketch: cr.sketch,
		}); err == nil {
			ent.Wire = wire
		}
	}
	e.results.Put(key, ent)
}

// Query evaluates one request under admission control: it parses the query,
// serves identical requests from the result cache (no solve slot needed),
// and otherwise waits for a solve slot (rejecting immediately when MaxQueue
// other queries are already waiting), bounds the evaluation by the request
// timeout, and runs the selected method with the engine's parallelism.
//
// Every evaluation is traced. When the context already carries a span (the
// async job manager installs the job's root span), the evaluation's phases
// nest under it; otherwise the engine mints a trace of its own — honoring
// Request.TraceParent's trace ID — and returns the finished tree in
// Result.Trace. Tracing is purely observational: spans never join cache
// keys and never feed solver state, so traced and untraced runs are
// bit-identical.
func (e *Engine) Query(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if obs.SpanFromContext(ctx) != nil {
		return e.query(ctx, req)
	}
	id, parent := obs.ParseTraceParent(req.TraceParent)
	tr := e.newTrace(id, "query")
	root := tr.Root()
	if parent != "" {
		root.SetAttr("parent", parent)
	}
	start := time.Now()
	res, err := e.query(obs.ContextWithSpan(ctx, root), req)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	e.maybeLogSlow(tr, req.Query, req.Method, time.Since(start))
	if res != nil {
		res.Trace = tr.Data()
	}
	return res, err
}

// maybeLogSlow emits the slow-query log event when the evaluation cleared
// the configured threshold: one structured event carrying the trace ID and
// the rendered span tree.
func (e *Engine) maybeLogSlow(tr *obs.Trace, query, method string, d time.Duration) {
	if tr == nil || e.opts.Logger == nil || e.opts.SlowQuery <= 0 || d < e.opts.SlowQuery {
		return
	}
	e.opts.Logger.Event("slow_query", map[string]any{
		"trace_id":    tr.ID(),
		"method":      method,
		"query":       query,
		"duration_ms": d.Milliseconds(),
		"trace":       obs.Render(tr.Data()),
	})
}

// query is Query's body; ctx carries the evaluation's parent span.
func (e *Engine) query(ctx context.Context, req Request) (*Result, error) {
	e.m.queries.Inc()
	sp := obs.SpanFromContext(ctx)

	// An already-cancelled context never evaluates — not even from the
	// result cache (a job cancelled while queued must not succeed).
	if err := ctx.Err(); err != nil {
		e.m.failures.Inc()
		return nil, err
	}

	ps := sp.StartChild("parse")
	q, err := spaql.Parse(req.Query)
	if err != nil {
		ps.SetAttr("error", err.Error())
		ps.End()
		e.m.failures.Inc()
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	qstr := q.String()
	ps.End()

	// method is canonicalized through the solver registry to the cache-key
	// name of the computation: "" and "summarysearch" are the same
	// computation and must share one result entry, and so are "remote" and
	// its (bit-identical) inner method — including across fleet nodes with
	// different solver configurations.
	method := strings.ToLower(req.Method)
	var solver core.Solver
	if method != "sketch" {
		if solver, err = core.SolverByName(method); err != nil {
			e.m.failures.Inc()
			return nil, fmt.Errorf("%w %q", ErrUnknownMethod, req.Method)
		}
		method = core.SolverCacheKey(solver)
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}

	var opts core.Options
	if req.Options != nil {
		opts = *req.Options
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = e.opts.Parallelism
	}
	if opts.MaxResidentScenarios == 0 {
		opts.MaxResidentScenarios = e.opts.MaxResidentScenarios
	}
	if req.Progress != nil {
		opts.Progress = req.Progress
	}
	var sopts *sketch.Options
	if method == "sketch" {
		s := sketch.Options{}
		if req.Sketch != nil {
			s = *req.Sketch
		}
		if s.Workers == 0 {
			s.Workers = opts.Parallelism
		}
		if s.Solver == nil {
			s.Solver = e.opts.SketchSolver
		}
		sopts = &s
	}

	// Identical deterministic requests are answered without solving (and
	// without consuming a solve slot or queue capacity).
	rkey := resultKey(qstr, method, &opts, timeout, sopts, req.Solve)
	sp.SetAttr("method", method)
	if cr := e.resultGet(rkey); cr != nil {
		sp.SetAttr("result_cache", "hit")
		return &Result{Solution: cr.sol, Query: cr.query, Rel: cr.rel, ResultCacheHit: true, Sketch: cr.sketch}, nil
	}

	// Admission control: the deficit-round-robin fair scheduler bounds the
	// total commitment (solving + waiting) by MaxInFlight + MaxQueue
	// globally and by each tenant's own quota. The tenant label folds to
	// its lane name here so metrics and stats stay bounded-cardinality.
	tenant := e.sched.Canonical(req.Tenant)
	e.m.queued.Add(1)
	defer e.m.queued.Add(-1)

	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	enqueued := time.Now()
	ws := sp.StartChild("wait")
	if err := e.sched.Acquire(ctx, tenant); err != nil {
		ws.SetAttr("error", err.Error())
		ws.End()
		if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrTenantQuota) {
			e.m.rejected.Inc()
			e.m.tenantRejected.With(tenant).Inc()
		} else {
			// The request entered the queue and its context expired waiting.
			e.m.tenantQueued.With(tenant).Inc()
			e.m.failures.Inc()
		}
		return nil, err
	}
	ws.End()
	e.m.tenantQueued.With(tenant).Inc()
	defer e.sched.Release(tenant)
	wait := time.Since(enqueued)
	e.m.admissionWait.Observe(wait.Seconds())
	e.m.tenantAdmitted.With(tenant).Inc()
	if req.onAdmit != nil {
		req.onAdmit()
	}

	e.m.active.Add(1)
	defer e.m.active.Add(-1)

	// Deadline-aware degradation: clamp the evaluation's budgets so a
	// too-slow solve returns its anytime best-so-far package instead of
	// dying on the context deadline. The clamps are applied strictly after
	// rkey was rendered from the pristine options, and a clamped (budget-
	// cut) solution is never cached, so deadlines and classes stay out of
	// every cache key and determinism is preserved. Only local anytime
	// solvers are clamped: remote dispatch must keep its budgets verbatim
	// (a jittery wall-clock budget would mint unique worker cache keys),
	// and worker-side sub-problems already run under dispatched budgets.
	engineClamped := false
	if e.clampable(method, solver, sopts, req.Solve) {
		if cb, ok := e.opts.Classes[req.Class]; ok && req.Class != "" {
			if cb.TimeLimit > 0 && (opts.TimeLimit <= 0 || cb.TimeLimit < opts.TimeLimit) {
				opts.TimeLimit = cb.TimeLimit
				engineClamped = true
			}
			if cb.SolverNodes > 0 && (opts.SolverNodes <= 0 || cb.SolverNodes < opts.SolverNodes) {
				opts.SolverNodes = cb.SolverNodes
				engineClamped = true
			}
		}
		if dl, ok := ctx.Deadline(); ok {
			// Leave a margin so the solver's wall-clock budget binds (and
			// returns best-so-far) before the hard context deadline kills
			// the evaluation mid-round.
			rem := time.Until(dl)
			margin := rem / 10
			if margin < 20*time.Millisecond {
				margin = 20 * time.Millisecond
			} else if margin > 2*time.Second {
				margin = 2 * time.Second
			}
			if budget := rem - margin; budget > 0 && (opts.TimeLimit <= 0 || budget < opts.TimeLimit) {
				opts.TimeLimit = budget
				engineClamped = true
			}
		}
	}

	pls := sp.StartChild("plan")
	var p *plan
	var hit bool
	if req.Solve != nil {
		p, err = e.prepareSolve(q, req.Solve)
	} else {
		p, hit, err = e.prepare(q, qstr)
	}
	if err != nil {
		pls.SetAttr("error", err.Error())
		pls.End()
		e.m.failures.Inc()
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	if hit {
		pls.SetAttr("plan_cache", "hit")
	}
	pls.End()

	// Warm re-solve wiring (whole-table core methods only): collect warm
	// state alongside cacheable results, and consume a hint stashed when a
	// delta invalidated this request's previous entry. Both are advisory —
	// neither joins the result key, and a warm solve that fails to validate
	// falls back to the cold path inside core.
	if req.Solve == nil && method != "sketch" {
		opts.CollectWarm = e.results != nil
		if hint := e.takeWarm(rkey); hint != nil {
			if w := e.warmStart(hint, p); w != nil {
				opts.Warm = w
				sp.SetAttr("warm", "hint")
			}
		}
	}

	solveStart := time.Now()
	sctx, ss := obs.StartSpan(ctx, method)
	var sol *core.Solution
	var sstats *sketch.Stats
	if method == "sketch" {
		sol, sstats, err = sketch.SolveSILP(sctx, p.silp, &opts, sopts)
		if sstats != nil {
			e.m.sketchQueries.Inc()
			e.m.shardSolves.Add(int64(sstats.ShardSolves))
			ss.SetInt("shard_solves", int64(sstats.ShardSolves))
		}
	} else {
		sol, err = solver.Solve(sctx, p.silp, &opts)
	}
	if err != nil {
		ss.SetAttr("error", err.Error())
	}
	ss.End()
	e.m.solveLatency.Observe(time.Since(solveStart).Seconds())
	if err != nil {
		e.m.failures.Inc()
		if errors.Is(err, core.ErrInfeasible) {
			// The query's deterministic constraints are unsatisfiable:
			// that is a property of the request, not a server fault.
			return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
		}
		return nil, err
	}

	if sol.WarmResolve {
		e.m.warmResolves.Inc()
	}
	e.m.milpSolves.Add(int64(sol.MILPSolves))
	e.m.milpNodes.Add(int64(sol.MILPNodes))
	e.m.lpIters.Add(int64(sol.LPIters))
	e.m.lpWarmStarts.Add(int64(sol.WarmStarts))
	e.m.lpDegenPivots.Add(int64(sol.DegenPivots))
	e.m.lpBoundFlips.Add(int64(sol.BoundFlips))
	e.m.presolveRows.Add(int64(sol.PresolveRows))
	e.m.presolveCols.Add(int64(sol.PresolveCols))
	e.m.milpWorkersMax.SetMax(int64(sol.MILPWorkers))

	// The solution's X indexes p.silp.Rel for every method: the sketch
	// pipeline maps its refine solution back to the plan's view. A solution
	// cut short by a wall-clock/node budget is best-effort, not
	// deterministic — serving it to future identical requests would pin a
	// load-degraded answer — so it is not cached. (For sketch, the check
	// sees the refine solve's iterations; a budget cut inside a shard solve
	// is not detected.)
	degraded := false
	if sol.HitLimit(&opts) {
		if engineClamped {
			// An engine-applied budget bound: degrade to the anytime
			// best-so-far package when one exists, fail with the dedicated
			// 429 when nothing feasible was found in time.
			if !sol.Feasible {
				sp.SetAttr("degraded", "no_feasible")
				e.m.failures.Inc()
				return nil, ErrDegraded
			}
			degraded = true
			sp.SetAttr("degraded", "true")
			e.m.tenantDegraded.With(tenant).Inc()
		}
	} else {
		e.resultPut(rkey, method, &cachedResult{
			sol: sol, sketch: sstats, query: p.query, rel: p.silp.Rel,
			table: p.table, relVersion: p.relVersion,
		}, req.Solve)
	}
	return &Result{Solution: sol, Query: p.query, Rel: p.silp.Rel, CacheHit: hit, Sketch: sstats, Wait: wait, Degraded: degraded}, nil
}

// clampable reports whether the engine may tighten the request's evaluation
// budgets (class budgets, deadline-derived wall-clock clamps). Only local
// anytime solvers qualify: remote dispatch forwards budgets verbatim into
// worker cache keys, so a per-request jittery clamp would destroy cache
// affinity across the fleet, and sub-problem (SolveSpec) requests already
// run under exactly the budgets their coordinator dispatched.
func (e *Engine) clampable(method string, solver core.Solver, sopts *sketch.Options, spec *client.SolveSpec) bool {
	if spec != nil {
		return false
	}
	if method == "sketch" {
		return sopts.Solver == nil || sopts.Solver == core.SummarySearchSolver || sopts.Solver == core.NaiveSolver
	}
	return solver == core.SummarySearchSolver || solver == core.NaiveSolver
}

// Stats returns a snapshot of the engine's counters. It reads the same
// registry instruments GET /metrics renders, so the two surfaces agree by
// construction.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	planLen := e.plans.len()
	e.mu.Unlock()
	resultLen := 0
	if e.results != nil {
		resultLen = e.results.Len()
	}
	// The queued gauge tracks the engine's total commitment (waiting +
	// solving) for admission; report only the waiting backlog.
	waiting := e.m.queued.Value() - e.m.active.Value()
	if waiting < 0 {
		waiting = 0
	}
	st := Stats{
		Queries:           e.m.queries.Value(),
		Failures:          e.m.failures.Value(),
		Rejected:          e.m.rejected.Value(),
		CacheHits:         e.m.planHits.Value(),
		CacheMisses:       e.m.planMisses.Value(),
		ResultCacheHits:   e.m.resultHits.Value(),
		ResultCacheMisses: e.m.resultMisses.Value(),
		SketchQueries:     e.m.sketchQueries.Value(),
		ShardSolves:       e.m.shardSolves.Value(),
		MilpSolves:        e.m.milpSolves.Value(),
		MilpNodes:         e.m.milpNodes.Value(),
		MilpWorkersMax:    e.m.milpWorkersMax.Value(),
		LpIters:           e.m.lpIters.Value(),
		LpWarmStarts:      e.m.lpWarmStarts.Value(),
		LpDegenPivots:     e.m.lpDegenPivots.Value(),
		LpBoundFlips:      e.m.lpBoundFlips.Value(),
		PresolveRows:      e.m.presolveRows.Value(),
		PresolveCols:      e.m.presolveCols.Value(),
		Active:            e.m.active.Value(),
		Queued:            waiting,
		SolveTimeMS:       int64(e.m.solveLatency.Sum() * 1000),
		MaxInFlight:       e.opts.MaxInFlight,
		MaxQueue:          e.opts.MaxQueue,
		PlanCacheLen:      planLen,
		ResultCacheLen:    resultLen,
		JobsSubmitted:     e.m.jobsSubmitted.Value(),
		JobsRunning:       e.m.jobsRunning.Value(),
		JobsCompleted:     e.m.jobsCompleted.Value(),
		JobsCancelled:     e.m.jobsCancelled.Value(),
		JobsEvicted:       e.m.jobsEvicted.Value(),
	}
	st.Tenants = e.sched.TenantsSnapshot()
	for name, ts := range st.Tenants {
		ts.Degraded = e.m.tenantDegraded.Value(name)
		st.Tenants[name] = ts
		st.Degraded += ts.Degraded
	}
	sc := stream.Counters()
	st.StreamBlocks = sc.BlocksGenerated
	st.StreamValues = sc.ValuesGenerated
	st.PushdownKept = sc.PushdownKept
	st.PushdownFiltered = sc.PushdownFiltered
	cc := relation.CacheStats()
	st.ColCacheHits = cc.Hits
	st.ColCacheMisses = cc.Misses
	st.ColCacheEvicted = cc.Evictions
	st.ColCacheResident = cc.ResidentBytes
	st.DeltasApplied = e.m.deltasApplied.Value()
	st.ResultsRetained = e.m.resultsRetained.Value()
	st.ResultsInvalidated = e.m.resultsInvalidated.Value()
	st.PlansRebased = e.m.plansRebased.Value()
	st.WarmResolves = e.m.warmResolves.Value()
	ds := relation.DeltaStats()
	st.DeltaCells = ds.CellsPatched
	st.PartsRetained = ds.PartitionsRetained
	st.PartsPatched = ds.PartitionsPatched
	st.PartsRebuilt = ds.PartitionsRebuilt
	st.ShardsRebuilt = ds.ShardsRebuilt
	st.ShardsRetained = ds.ShardsRetained
	st.StaleViews = ds.StaleViews
	st.SummariesPatched = sc.SummaryTuplesPatched
	st.SummariesReused = sc.SummaryTuplesReused
	if c, ok := e.results.(interface{ Counters() resultcache.Counters }); ok {
		rc := c.Counters()
		st.CacheReplicated = rc.Replicated
		st.CacheReceived = rc.Received
		st.CachePushErrors = rc.PushErrors
		st.CacheReplDropped = rc.Dropped
	}
	if e.opts.RemoteStats != nil {
		rs := e.opts.RemoteStats()
		st.RemoteDispatched = rs.Dispatched
		st.RemoteFallbacks = rs.Fallbacks
		st.RemoteFailures = rs.Failures
		st.RemoteWorkersDown = int64(rs.WorkersDown)
	}
	return st
}
