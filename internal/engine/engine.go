// Package engine is the concurrent query-execution layer of the system: it
// turns the one-shot algorithms of internal/core into a long-lived service.
// It adds four things the single-query path does not have:
//
//   - a bounded-concurrency session layer: at most MaxInFlight queries solve
//     at once, a bounded number more may wait for a slot, and everything
//     beyond that is rejected immediately with ErrOverloaded (admission
//     control for a daemon under heavy traffic);
//   - an LRU plan cache of parsed + translated queries (sPaQL AST and
//     translate.SILP), keyed by the canonical rendering of the parsed
//     statement and invalidated by the registered relation's version
//     counter, so repeated queries skip WHERE filtering, mask evaluation,
//     and bound derivation;
//   - an LRU result cache: evaluation is fully deterministic for fixed
//     (query, method, options, seeds) — parallelism is bit-identical to
//     sequential — so identical requests are served from a response LRU
//     without solving, or even waiting for a solve slot;
//   - per-query timeouts and cancellation via context.Context, carried all
//     the way into scenario generation, validation, and the MILP search.
//
// Methods resolve through the core.Solver seam (SummarySearch, Naive), plus
// "sketch", which runs the partition-aware SketchRefine pipeline
// (internal/sketch) against the cached plan: the relation's cached
// Partitioning shards the medoid solve, shards solve concurrently, and one
// global refine follows.
//
// Query evaluation itself runs with core.Options.Parallelism workers, so one
// query exploits all cores when the server is idle while concurrent queries
// share them under load. Parallel execution is bit-identical to sequential
// (see internal/core and internal/sketch), so the caches and the worker
// pools never change answers.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/core"
	"spq/internal/relation"
	"spq/internal/sketch"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Catalog resolves table names to registered relations. *spq.DB implements
// it.
type Catalog interface {
	Table(name string) (*relation.Relation, bool)
}

// ErrOverloaded is returned (and mapped to HTTP 429) when the engine's
// admission queue is full.
var ErrOverloaded = errors.New("engine: overloaded, admission queue full")

// ErrBadQuery wraps client-side failures — parse errors, unknown tables or
// methods, untranslatable or deterministically infeasible queries — so the
// HTTP layer can map them to 400 while internal evaluation failures map
// to 500.
var ErrBadQuery = errors.New("engine: bad query")

// ErrUnknownMethod wraps ErrBadQuery for unrecognized evaluation methods,
// so the HTTP layer can report the dedicated "unknown_method" error code.
var ErrUnknownMethod = fmt.Errorf("%w: unknown method", ErrBadQuery)

// Options tune the engine.
type Options struct {
	// MaxInFlight is the number of queries that may solve concurrently
	// (default: one per available CPU).
	MaxInFlight int
	// MaxQueue is the number of additional queries that may wait for a
	// solve slot before new arrivals are rejected with ErrOverloaded
	// (default 4×MaxInFlight; negative allows no waiting at all).
	MaxQueue int
	// PlanCacheSize is the LRU capacity of the plan cache in entries
	// (default 128; 0 uses the default, negative disables caching).
	PlanCacheSize int
	// ResultCacheSize is the LRU capacity of the result cache in entries
	// (default 256; 0 uses the default, negative disables caching).
	// Identical (query, method, options, seeds, timeout) requests against
	// an unchanged relation are answered from it without solving.
	ResultCacheSize int
	// DefaultTimeout bounds each query's evaluation when the request
	// carries no tighter deadline (default 60s).
	DefaultTimeout time.Duration
	// Parallelism is the per-query worker count handed to core.Options
	// when the request does not set one (default: one per available CPU).
	Parallelism int
	// MaxJobs bounds the async jobs that may be active (queued or running)
	// at once; Submit beyond it fails with ErrOverloaded (default
	// MaxInFlight+MaxQueue, which preserves the synchronous admission
	// behaviour for the legacy /query shim).
	MaxJobs int
	// JobHistory is the number of finished jobs retained for polling after
	// completion (default 64; negative retains none).
	JobHistory int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 4 * out.MaxInFlight
	} else if out.MaxQueue < 0 {
		out.MaxQueue = 0
	}
	if out.PlanCacheSize == 0 {
		out.PlanCacheSize = 128
	}
	if out.ResultCacheSize == 0 {
		out.ResultCacheSize = 256
	}
	if out.DefaultTimeout == 0 {
		out.DefaultTimeout = 60 * time.Second
	}
	if out.Parallelism == 0 {
		out.Parallelism = -1 // core: one worker per CPU
	}
	if out.MaxJobs <= 0 {
		out.MaxJobs = out.MaxInFlight + out.MaxQueue
	}
	if out.JobHistory == 0 {
		out.JobHistory = 64
	} else if out.JobHistory < 0 {
		out.JobHistory = 0
	}
	return out
}

// Request describes one query evaluation.
type Request struct {
	// Query is the sPaQL text.
	Query string
	// Method selects the algorithm: "" or "summarysearch" (the default),
	// "naive" for the SAA baseline, or "sketch" for the partition-aware
	// SketchRefine pipeline.
	Method string
	// Timeout overrides the engine's default per-query timeout when > 0.
	Timeout time.Duration
	// Options tune the evaluation; nil uses core defaults. Parallelism 0
	// inherits the engine's default.
	Options *core.Options
	// Sketch tunes the sketch pipeline when Method is "sketch"; nil uses
	// sketch defaults. Workers 0 inherits the engine's parallelism.
	Sketch *sketch.Options
	// Progress, when non-nil, receives per-iteration reports while the
	// solve runs (installed into core.Options; see core.Progress). It never
	// fires for result-cache hits, where no solve runs.
	Progress func(core.Progress)
	// onAdmit, when non-nil, is called exactly once when the query acquires
	// a solve slot (after any admission wait). The job manager uses it to
	// move jobs from queued to running.
	onAdmit func()
}

// Result is the outcome of an engine query. Cached results are shared
// between requests: treat the Solution as read-only.
type Result struct {
	*core.Solution
	// Query is the parsed statement (from the plan cache on a hit).
	Query *spaql.Query
	// Rel is the WHERE-filtered relation the multiplicities index.
	Rel *relation.Relation
	// CacheHit reports whether the plan came from the plan cache.
	CacheHit bool
	// ResultCacheHit reports whether the whole result came from the result
	// cache (no solve ran; CacheHit is false in that case).
	ResultCacheHit bool
	// Sketch reports the sketch pipeline's stats for Method "sketch".
	Sketch *sketch.Stats
	// Wait is the time spent in the admission queue before solving.
	Wait time.Duration
}

// Multiplicities returns the package as a map from base-relation tuple
// index to copy count.
func (r *Result) Multiplicities() map[int]int {
	out := map[int]int{}
	for i, x := range r.X {
		if x > 0 {
			out[r.Rel.OrigIndex(i)] += int(x + 0.5)
		}
	}
	return out
}

// lruCache is a tiny string-keyed LRU shared by the plan and result caches.
// The caller synchronizes access (the engine holds its mutex).
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used; values are *lruEntry
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) drop(key string) {
	if el, ok := c.m[key]; ok {
		c.ll.Remove(el)
		delete(c.m, key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }

// plan is one cached prepared query.
type plan struct {
	key        string
	query      *spaql.Query
	silp       *translate.SILP
	table      *relation.Relation // registered base relation the plan was built against
	relVersion uint64
}

// cachedResult is one result-cache entry: a fully evaluated, deterministic
// response plus the relation identity/version it is valid for.
type cachedResult struct {
	sol        *core.Solution
	sketch     *sketch.Stats
	query      *spaql.Query
	rel        *relation.Relation // WHERE-filtered view the solution indexes
	table      *relation.Relation
	relVersion uint64
}

// Stats is a point-in-time snapshot of the engine's counters, served as one
// JSON payload by GET /stats (admission, both caches, sketch sharding; the
// fields are documented in DESIGN.md).
type Stats struct {
	Queries  int64 `json:"queries"`
	Failures int64 `json:"failures"`
	Rejected int64 `json:"rejected"`
	// CacheHits/CacheMisses count the plan cache.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// ResultCacheHits counts queries answered without solving;
	// ResultCacheMisses counts lookups that found no valid entry (including
	// queries that subsequently failed or were rejected by admission, so it
	// can exceed the number of solves that ran).
	ResultCacheHits   int64 `json:"result_cache_hits"`
	ResultCacheMisses int64 `json:"result_cache_misses"`
	// SketchQueries counts method=sketch evaluations; ShardSolves counts
	// the per-shard sketch solves they fanned out.
	SketchQueries int64 `json:"sketch_queries"`
	ShardSolves   int64 `json:"shard_solves"`
	// Active counts queries currently solving; Queued is the admission-queue
	// depth (queries waiting for a solve slot, not those already solving),
	// bounded by MaxQueue.
	Active         int64 `json:"active"`
	Queued         int64 `json:"queued"`
	SolveTimeMS    int64 `json:"solve_time_ms"`
	MaxInFlight    int   `json:"max_in_flight"`
	MaxQueue       int   `json:"max_queue"`
	PlanCacheLen   int   `json:"plan_cache_len"`
	ResultCacheLen int   `json:"result_cache_len"`
	// Job-manager counters (the v1 async API; the legacy /query shim also
	// runs through it). JobsRunning is a gauge of jobs currently in the
	// running state; JobsCompleted counts terminal succeeded+failed jobs
	// (cancelled ones count under JobsCancelled); JobsEvicted counts
	// finished jobs dropped from the bounded history.
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsRunning   int64 `json:"jobs_running"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsEvicted   int64 `json:"jobs_evicted"`
	// MILP search counters: MilpSolves counts branch-and-bound solves run by
	// finished queries, MilpNodes the nodes they explored, and MilpWorkersMax
	// the largest per-solve worker bound observed (1 = sequential search).
	// Sketch shard sub-solves report only through the refine solution they
	// feed, so these undercount method=sketch traffic.
	MilpSolves     int64 `json:"milp_solves"`
	MilpNodes      int64 `json:"milp_nodes"`
	MilpWorkersMax int64 `json:"milp_workers_max"`
}

// Engine is a concurrent sPaQL query-execution engine over a catalog of
// registered relations. It is safe for concurrent use.
type Engine struct {
	cat  Catalog
	opts Options
	sem  chan struct{}

	queries        atomic.Int64
	failures       atomic.Int64
	rejected       atomic.Int64
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	resultHits     atomic.Int64
	resultMisses   atomic.Int64
	sketchQueries  atomic.Int64
	shardSolves    atomic.Int64
	milpSolves     atomic.Int64
	milpNodes      atomic.Int64
	milpWorkersMax atomic.Int64
	active         atomic.Int64
	queued         atomic.Int64
	solveNanos     atomic.Int64

	mu      sync.Mutex
	plans   *lruCache
	results *lruCache

	// Async job manager state (jobs.go). jobList holds every tracked job in
	// submission order; jobFinished counts the terminal ones, bounded by
	// Options.JobHistory via eviction.
	jobsMu      sync.Mutex
	jobsByID    map[string]*Job
	jobList     []*Job
	jobFinished int
	jobSeq      atomic.Int64

	jobsSubmitted atomic.Int64
	jobsRunning   atomic.Int64
	jobsCompleted atomic.Int64
	jobsCancelled atomic.Int64
	jobsEvicted   atomic.Int64
}

// New creates an engine over the catalog.
func New(cat Catalog, o *Options) *Engine {
	opts := o.withDefaults()
	return &Engine{
		cat:      cat,
		opts:     opts,
		sem:      make(chan struct{}, opts.MaxInFlight),
		plans:    newLRU(opts.PlanCacheSize),
		results:  newLRU(opts.ResultCacheSize),
		jobsByID: map[string]*Job{},
	}
}

// prepare returns a cached plan for the parsed query, or validates and
// lowers it and caches the result. The cache key is the canonical rendering
// of the *parsed* query (spaql guarantees Parse(q.String()) round-trips), so
// reformatted, comment-bearing, or otherwise trivially different texts share
// a plan exactly when they denote the same statement — a purely textual key
// would conflate e.g. queries that differ only inside a "--" line comment.
// Parsing is cheap; the cache exists to skip the translation (WHERE
// filtering, mask evaluation, bound derivation). A cached plan is dead as
// soon as the table name resolves to a different relation or the relation's
// version counter moved (e.g. re-registered data or recomputed means).
func (e *Engine) prepare(q *spaql.Query, key string) (*plan, bool, error) {
	if p := e.planGet(key); p != nil {
		if rel, ok := e.cat.Table(p.query.Table); ok && rel == p.table && rel.Version() == p.relVersion {
			e.cacheHits.Add(1)
			return p, true, nil
		}
		e.planDrop(key)
	}
	e.cacheMisses.Add(1)

	rel, ok := e.cat.Table(q.Table)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown table %q", q.Table)
	}
	version := rel.Version()
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, false, err
	}
	p := &plan{key: key, query: q, silp: silp, table: rel, relVersion: version}
	e.planPut(p)
	return p, false, nil
}

func (e *Engine) planGet(key string) *plan {
	if e.opts.PlanCacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.plans.get(key); ok {
		return v.(*plan)
	}
	return nil
}

func (e *Engine) planPut(p *plan) {
	if e.opts.PlanCacheSize < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans.put(p.key, p)
}

func (e *Engine) planDrop(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plans.drop(key)
}

// resultKey renders the full determinism domain of a request: the canonical
// statement, the method, every result-relevant evaluation option (seeds
// included, parallelism excluded — it is bit-identical), the effective
// timeout (when a budget binds, the result depends on it), and the sketch
// options for the sketch method.
func resultKey(qstr, method string, opts *core.Options, timeout time.Duration, sopts *sketch.Options) string {
	key := qstr + "\x1f" + method + "\x1f" + opts.Key() + "\x1f" + fmt.Sprint(int64(timeout))
	if method == "sketch" {
		key += "\x1f" + sopts.Key()
	}
	return key
}

// resultGet returns a still-valid cached result, dropping entries whose
// relation changed. Lookup, validation, and the drop share one critical
// section so a stale read can never evict a fresh entry stored by a
// concurrent solve. A nil return is counted as a miss.
func (e *Engine) resultGet(key string) *cachedResult {
	if e.opts.ResultCacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	if v, ok := e.results.get(key); ok {
		cr := v.(*cachedResult)
		if rel, live := e.cat.Table(cr.query.Table); live && rel == cr.table && rel.Version() == cr.relVersion {
			e.mu.Unlock()
			e.resultHits.Add(1)
			return cr
		}
		e.results.drop(key)
	}
	e.mu.Unlock()
	e.resultMisses.Add(1)
	return nil
}

func (e *Engine) resultPut(key string, cr *cachedResult) {
	if e.opts.ResultCacheSize < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results.put(key, cr)
}

// Query evaluates one request under admission control: it parses the query,
// serves identical requests from the result cache (no solve slot needed),
// and otherwise waits for a solve slot (rejecting immediately when MaxQueue
// other queries are already waiting), bounds the evaluation by the request
// timeout, and runs the selected method with the engine's parallelism.
func (e *Engine) Query(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.queries.Add(1)

	// An already-cancelled context never evaluates — not even from the
	// result cache (a job cancelled while queued must not succeed).
	if err := ctx.Err(); err != nil {
		e.failures.Add(1)
		return nil, err
	}

	q, err := spaql.Parse(req.Query)
	if err != nil {
		e.failures.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}
	qstr := q.String()

	// method is canonicalized through the solver registry ("" and
	// "summarysearch" are the same computation and must share one result
	// entry).
	method := strings.ToLower(req.Method)
	var solver core.Solver
	if method != "sketch" {
		if solver, err = core.SolverByName(method); err != nil {
			e.failures.Add(1)
			return nil, fmt.Errorf("%w %q", ErrUnknownMethod, req.Method)
		}
		method = solver.Name()
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}

	var opts core.Options
	if req.Options != nil {
		opts = *req.Options
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = e.opts.Parallelism
	}
	if req.Progress != nil {
		opts.Progress = req.Progress
	}
	var sopts *sketch.Options
	if method == "sketch" {
		s := sketch.Options{}
		if req.Sketch != nil {
			s = *req.Sketch
		}
		if s.Workers == 0 {
			s.Workers = opts.Parallelism
		}
		sopts = &s
	}

	// Identical deterministic requests are answered without solving (and
	// without consuming a solve slot or queue capacity).
	rkey := resultKey(qstr, method, &opts, timeout, sopts)
	if cr := e.resultGet(rkey); cr != nil {
		return &Result{Solution: cr.sol, Query: cr.query, Rel: cr.rel, ResultCacheHit: true, Sketch: cr.sketch}, nil
	}

	// Admission control: the total commitment (solving + waiting) may not
	// exceed MaxInFlight + MaxQueue.
	if e.queued.Add(1) > int64(e.opts.MaxInFlight+e.opts.MaxQueue) {
		e.queued.Add(-1)
		e.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer e.queued.Add(-1)

	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	enqueued := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.failures.Add(1)
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	wait := time.Since(enqueued)
	if req.onAdmit != nil {
		req.onAdmit()
	}

	e.active.Add(1)
	defer e.active.Add(-1)

	p, hit, err := e.prepare(q, qstr)
	if err != nil {
		e.failures.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}

	solveStart := time.Now()
	var sol *core.Solution
	var sstats *sketch.Stats
	if method == "sketch" {
		sol, sstats, err = sketch.SolveSILP(ctx, p.silp, &opts, sopts)
		if sstats != nil {
			e.sketchQueries.Add(1)
			e.shardSolves.Add(int64(sstats.ShardSolves))
		}
	} else {
		sol, err = solver.Solve(ctx, p.silp, &opts)
	}
	e.solveNanos.Add(int64(time.Since(solveStart)))
	if err != nil {
		e.failures.Add(1)
		if errors.Is(err, core.ErrInfeasible) {
			// The query's deterministic constraints are unsatisfiable:
			// that is a property of the request, not a server fault.
			return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
		}
		return nil, err
	}

	e.milpSolves.Add(int64(sol.MILPSolves))
	e.milpNodes.Add(int64(sol.MILPNodes))
	for {
		cur := e.milpWorkersMax.Load()
		if int64(sol.MILPWorkers) <= cur || e.milpWorkersMax.CompareAndSwap(cur, int64(sol.MILPWorkers)) {
			break
		}
	}

	// The solution's X indexes p.silp.Rel for every method: the sketch
	// pipeline maps its refine solution back to the plan's view. A solution
	// cut short by a wall-clock/node budget is best-effort, not
	// deterministic — serving it to future identical requests would pin a
	// load-degraded answer — so it is not cached. (For sketch, the check
	// sees the refine solve's iterations; a budget cut inside a shard solve
	// is not detected.)
	if !sol.HitLimit(&opts) {
		e.resultPut(rkey, &cachedResult{
			sol: sol, sketch: sstats, query: p.query, rel: p.silp.Rel,
			table: p.table, relVersion: p.relVersion,
		})
	}
	return &Result{Solution: sol, Query: p.query, Rel: p.silp.Rel, CacheHit: hit, Sketch: sstats, Wait: wait}, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	planLen := e.plans.len()
	resultLen := e.results.len()
	e.mu.Unlock()
	// The queued counter tracks the engine's total commitment (waiting +
	// solving) for admission; report only the waiting backlog.
	waiting := e.queued.Load() - e.active.Load()
	if waiting < 0 {
		waiting = 0
	}
	return Stats{
		Queries:           e.queries.Load(),
		Failures:          e.failures.Load(),
		Rejected:          e.rejected.Load(),
		CacheHits:         e.cacheHits.Load(),
		CacheMisses:       e.cacheMisses.Load(),
		ResultCacheHits:   e.resultHits.Load(),
		ResultCacheMisses: e.resultMisses.Load(),
		SketchQueries:     e.sketchQueries.Load(),
		ShardSolves:       e.shardSolves.Load(),
		MilpSolves:        e.milpSolves.Load(),
		MilpNodes:         e.milpNodes.Load(),
		MilpWorkersMax:    e.milpWorkersMax.Load(),
		Active:            e.active.Load(),
		Queued:            waiting,
		SolveTimeMS:       e.solveNanos.Load() / int64(time.Millisecond),
		MaxInFlight:       e.opts.MaxInFlight,
		MaxQueue:          e.opts.MaxQueue,
		PlanCacheLen:      planLen,
		ResultCacheLen:    resultLen,
		JobsSubmitted:     e.jobsSubmitted.Load(),
		JobsRunning:       e.jobsRunning.Load(),
		JobsCompleted:     e.jobsCompleted.Load(),
		JobsCancelled:     e.jobsCancelled.Load(),
		JobsEvicted:       e.jobsEvicted.Load(),
	}
}
