// Package engine is the concurrent query-execution layer of the system: it
// turns the one-shot algorithms of internal/core into a long-lived service.
// It adds three things the single-query path does not have:
//
//   - a bounded-concurrency session layer: at most MaxInFlight queries solve
//     at once, a bounded number more may wait for a slot, and everything
//     beyond that is rejected immediately with ErrOverloaded (admission
//     control for a daemon under heavy traffic);
//   - an LRU plan cache of parsed + translated queries (sPaQL AST and
//     translate.SILP), keyed by the canonical rendering of the parsed
//     statement and invalidated by the registered relation's version
//     counter, so repeated queries skip WHERE filtering, mask evaluation,
//     and bound derivation;
//   - per-query timeouts and cancellation via context.Context, carried all
//     the way into scenario generation, validation, and the MILP search.
//
// Query evaluation itself runs with core.Options.Parallelism workers, so one
// query exploits all cores when the server is idle while concurrent queries
// share them under load. Parallel execution is bit-identical to sequential
// (see internal/core), so the cache and the worker pool never change
// answers.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spq/internal/core"
	"spq/internal/relation"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Catalog resolves table names to registered relations. *spq.DB implements
// it.
type Catalog interface {
	Table(name string) (*relation.Relation, bool)
}

// ErrOverloaded is returned (and mapped to HTTP 429) when the engine's
// admission queue is full.
var ErrOverloaded = errors.New("engine: overloaded, admission queue full")

// ErrBadQuery wraps client-side failures — parse errors, unknown tables or
// methods, untranslatable or deterministically infeasible queries — so the
// HTTP layer can map them to 400 while internal evaluation failures map
// to 500.
var ErrBadQuery = errors.New("engine: bad query")

// Options tune the engine.
type Options struct {
	// MaxInFlight is the number of queries that may solve concurrently
	// (default: one per available CPU).
	MaxInFlight int
	// MaxQueue is the number of additional queries that may wait for a
	// solve slot before new arrivals are rejected with ErrOverloaded
	// (default 4×MaxInFlight; negative allows no waiting at all).
	MaxQueue int
	// PlanCacheSize is the LRU capacity of the plan cache in entries
	// (default 128; 0 uses the default, negative disables caching).
	PlanCacheSize int
	// DefaultTimeout bounds each query's evaluation when the request
	// carries no tighter deadline (default 60s).
	DefaultTimeout time.Duration
	// Parallelism is the per-query worker count handed to core.Options
	// when the request does not set one (default: one per available CPU).
	Parallelism int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if out.MaxQueue == 0 {
		out.MaxQueue = 4 * out.MaxInFlight
	} else if out.MaxQueue < 0 {
		out.MaxQueue = 0
	}
	if out.PlanCacheSize == 0 {
		out.PlanCacheSize = 128
	}
	if out.DefaultTimeout == 0 {
		out.DefaultTimeout = 60 * time.Second
	}
	if out.Parallelism == 0 {
		out.Parallelism = -1 // core: one worker per CPU
	}
	return out
}

// Request describes one query evaluation.
type Request struct {
	// Query is the sPaQL text.
	Query string
	// Method selects the algorithm: "" or "summarysearch" (the default),
	// or "naive" for the SAA baseline.
	Method string
	// Timeout overrides the engine's default per-query timeout when > 0.
	Timeout time.Duration
	// Options tune the evaluation; nil uses core defaults. Parallelism 0
	// inherits the engine's default.
	Options *core.Options
}

// Result is the outcome of an engine query.
type Result struct {
	*core.Solution
	// Query is the parsed statement (from the plan cache on a hit).
	Query *spaql.Query
	// Rel is the WHERE-filtered relation the multiplicities index.
	Rel *relation.Relation
	// CacheHit reports whether the plan came from the cache.
	CacheHit bool
	// Wait is the time spent in the admission queue before solving.
	Wait time.Duration
}

// Multiplicities returns the package as a map from base-relation tuple
// index to copy count.
func (r *Result) Multiplicities() map[int]int {
	out := map[int]int{}
	for i, x := range r.X {
		if x > 0 {
			out[r.Rel.OrigIndex(i)] += int(x + 0.5)
		}
	}
	return out
}

// plan is one cached prepared query.
type plan struct {
	key        string
	query      *spaql.Query
	silp       *translate.SILP
	table      *relation.Relation // registered base relation the plan was built against
	relVersion uint64
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Queries     int64 `json:"queries"`
	Failures    int64 `json:"failures"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Active counts queries currently solving; Queued counts queries
	// waiting for a solve slot (not those already solving).
	Active       int64 `json:"active"`
	Queued       int64 `json:"queued"`
	SolveTimeMS  int64 `json:"solve_time_ms"`
	MaxInFlight  int   `json:"max_in_flight"`
	PlanCacheLen int   `json:"plan_cache_len"`
}

// Engine is a concurrent sPaQL query-execution engine over a catalog of
// registered relations. It is safe for concurrent use.
type Engine struct {
	cat  Catalog
	opts Options
	sem  chan struct{}

	queries     atomic.Int64
	failures    atomic.Int64
	rejected    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	active      atomic.Int64
	queued      atomic.Int64
	solveNanos  atomic.Int64

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *plan
	plans map[string]*list.Element
}

// New creates an engine over the catalog.
func New(cat Catalog, o *Options) *Engine {
	opts := o.withDefaults()
	return &Engine{
		cat:   cat,
		opts:  opts,
		sem:   make(chan struct{}, opts.MaxInFlight),
		lru:   list.New(),
		plans: map[string]*list.Element{},
	}
}

// prepare returns a cached plan for the query text, or parses, validates,
// and lowers it and caches the result. The cache key is the canonical
// rendering of the *parsed* query (spaql guarantees Parse(q.String())
// round-trips), so reformatted, comment-bearing, or otherwise trivially
// different texts share a plan exactly when they denote the same statement —
// a purely textual key would conflate e.g. queries that differ only inside
// a "--" line comment. Parsing is cheap; the cache exists to skip the
// translation (WHERE filtering, mask evaluation, bound derivation). A
// cached plan is dead as soon as the table name resolves to a different
// relation or the relation's version counter moved (e.g. re-registered data
// or recomputed means).
func (e *Engine) prepare(text string) (*plan, bool, error) {
	q, err := spaql.Parse(text)
	if err != nil {
		return nil, false, err
	}
	key := q.String()

	if p := e.cacheGet(key); p != nil {
		if rel, ok := e.cat.Table(p.query.Table); ok && rel == p.table && rel.Version() == p.relVersion {
			e.cacheHits.Add(1)
			return p, true, nil
		}
		e.cacheDrop(key)
	}
	e.cacheMisses.Add(1)

	rel, ok := e.cat.Table(q.Table)
	if !ok {
		return nil, false, fmt.Errorf("engine: unknown table %q", q.Table)
	}
	version := rel.Version()
	silp, err := translate.Build(q, rel, nil)
	if err != nil {
		return nil, false, err
	}
	p := &plan{key: key, query: q, silp: silp, table: rel, relVersion: version}
	e.cachePut(p)
	return p, false, nil
}

func (e *Engine) cacheGet(key string) *plan {
	if e.opts.PlanCacheSize < 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.plans[key]
	if !ok {
		return nil
	}
	e.lru.MoveToFront(el)
	return el.Value.(*plan)
}

func (e *Engine) cachePut(p *plan) {
	if e.opts.PlanCacheSize < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.plans[p.key]; ok {
		el.Value = p
		e.lru.MoveToFront(el)
		return
	}
	e.plans[p.key] = e.lru.PushFront(p)
	for e.lru.Len() > e.opts.PlanCacheSize {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.plans, oldest.Value.(*plan).key)
	}
}

func (e *Engine) cacheDrop(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.plans[key]; ok {
		e.lru.Remove(el)
		delete(e.plans, key)
	}
}

// Query evaluates one request under admission control: it waits for a solve
// slot (rejecting immediately when MaxQueue other queries are already
// waiting), bounds the evaluation by the request timeout, and runs the
// selected algorithm with the engine's parallelism.
func (e *Engine) Query(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.queries.Add(1)

	// Admission control: the total commitment (solving + waiting) may not
	// exceed MaxInFlight + MaxQueue.
	if e.queued.Add(1) > int64(e.opts.MaxInFlight+e.opts.MaxQueue) {
		e.queued.Add(-1)
		e.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer e.queued.Add(-1)

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = e.opts.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	enqueued := time.Now()
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.failures.Add(1)
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	wait := time.Since(enqueued)

	e.active.Add(1)
	defer e.active.Add(-1)

	p, hit, err := e.prepare(req.Query)
	if err != nil {
		e.failures.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
	}

	var opts core.Options
	if req.Options != nil {
		opts = *req.Options
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = e.opts.Parallelism
	}

	solveStart := time.Now()
	var sol *core.Solution
	switch strings.ToLower(req.Method) {
	case "", "summarysearch":
		sol, err = core.SummarySearchCtx(ctx, p.silp, &opts)
	case "naive":
		sol, err = core.NaiveCtx(ctx, p.silp, &opts)
	default:
		e.failures.Add(1)
		return nil, fmt.Errorf("%w: unknown method %q", ErrBadQuery, req.Method)
	}
	e.solveNanos.Add(int64(time.Since(solveStart)))
	if err != nil {
		e.failures.Add(1)
		if errors.Is(err, core.ErrInfeasible) {
			// The query's deterministic constraints are unsatisfiable:
			// that is a property of the request, not a server fault.
			return nil, fmt.Errorf("%w: %w", ErrBadQuery, err)
		}
		return nil, err
	}
	return &Result{Solution: sol, Query: p.query, Rel: p.silp.Rel, CacheHit: hit, Wait: wait}, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	cacheLen := e.lru.Len()
	e.mu.Unlock()
	// The queued counter tracks the engine's total commitment (waiting +
	// solving) for admission; report only the waiting backlog.
	waiting := e.queued.Load() - e.active.Load()
	if waiting < 0 {
		waiting = 0
	}
	return Stats{
		Queries:      e.queries.Load(),
		Failures:     e.failures.Load(),
		Rejected:     e.rejected.Load(),
		CacheHits:    e.cacheHits.Load(),
		CacheMisses:  e.cacheMisses.Load(),
		Active:       e.active.Load(),
		Queued:       waiting,
		SolveTimeMS:  e.solveNanos.Load() / int64(time.Millisecond),
		MaxInFlight:  e.opts.MaxInFlight,
		PlanCacheLen: cacheLen,
	}
}
