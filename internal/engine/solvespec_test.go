package engine

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"reflect"
	"testing"
	"time"

	"spq/client"
	"spq/internal/core"
	"spq/internal/spaql"
	"spq/internal/translate"
)

// Tests of the worker side of remote dispatch: requests carrying a
// client.SolveSpec solve a sub-problem of a registered table and answer
// with the raw, bit-exact solution.

// TestSolveSpecBitIdentical: a spec-restricted engine query equals solving
// the manually built subset view locally — the property remote dispatch
// rests on.
func TestSolveSpecBitIdentical(t *testing.T) {
	cat := newCatalog(t, 30)
	rel := cat["stocks"]

	var subset []int
	for i := 0; i < 30; i += 2 {
		subset = append(subset, i)
	}
	member := make([]bool, 30)
	for _, i := range subset {
		member[i] = true
	}

	q, err := spaql.Parse(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	silp, err := translate.Build(q, rel.Select(func(i int) bool { return member[i] }), nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallCoreOptions()
	opts.Parallelism = 1
	want, err := core.SummarySearchSolver.Solve(context.Background(), silp, opts)
	if err != nil {
		t.Fatal(err)
	}

	e := New(cat, &Options{Parallelism: 1, ResultCacheSize: -1})
	got, err := e.Query(context.Background(), Request{
		Query:   testQuery,
		Options: opts,
		Solve:   &client.SolveSpec{Subset: subset},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Feasible != want.Feasible || got.Objective != want.Objective || !reflect.DeepEqual(got.X, want.X) {
		t.Fatalf("spec solve differs from manual subset solve:\n got %v obj %v\nwant %v obj %v",
			got.X, got.Objective, want.X, want.Objective)
	}
	if got.Rel.N() != len(subset) {
		t.Fatalf("result view has %d rows, want %d", got.Rel.N(), len(subset))
	}

	// Bound overrides change the problem the same way on both paths.
	silp2, err := translate.Build(q, rel.Select(func(i int) bool { return member[i] }), nil)
	if err != nil {
		t.Fatal(err)
	}
	hi := make([]float64, silp2.N)
	for i := range hi {
		hi[i] = 1
	}
	silp2.VarHi = hi
	want2, err := core.SummarySearchSolver.Solve(context.Background(), silp2, opts)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := e.Query(context.Background(), Request{
		Query:   testQuery,
		Options: opts,
		Solve:   &client.SolveSpec{Subset: subset, VarHi: hi},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got2.Objective != want2.Objective || !reflect.DeepEqual(got2.X, want2.X) {
		t.Fatal("var_hi override not applied equivalently")
	}
}

// TestSolveSpecValidation: malformed specs are client errors (400-mapped),
// not internal failures.
func TestSolveSpecValidation(t *testing.T) {
	e := New(newCatalog(t, 10), &Options{Parallelism: 1})
	cases := []client.SolveSpec{
		{},                     // empty subset
		{Subset: []int{3, 1}},  // not ascending
		{Subset: []int{0, 0}},  // duplicate
		{Subset: []int{0, 99}}, // out of range
		{Subset: []int{0, 1}, VarHi: []float64{1}}, // bounds length mismatch
	}
	for i, spec := range cases {
		spec := spec
		_, err := e.Query(context.Background(), Request{Query: testQuery, Options: smallCoreOptions(), Solve: &spec})
		if !errors.Is(err, ErrBadQuery) {
			t.Fatalf("case %d: err = %v, want ErrBadQuery", i, err)
		}
	}
}

// TestSolveSpecRawOverV1: a spec submission through the HTTP API returns
// the raw solution payload with exact multiplicities, and the result cache
// serves the identical spec request without solving (the spec joins the
// key, so it cannot collide with the whole-table entry).
func TestSolveSpecRawOverV1(t *testing.T) {
	e := New(newCatalog(t, 20), &Options{Parallelism: 1})
	srv := v1Server(t, e)

	subset := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	submit := func() *client.Job {
		resp := postJSON(t, srv.URL+"/v1/queries", client.SubmitRequest{
			Query:   testQuery,
			Options: &client.SolveOptions{Seed: 1, ValidationM: 1500, InitialM: 10, IncrementM: 10, MaxM: 60},
			Solve:   &client.SolveSpec{Subset: subset},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var job client.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := time.Now().Add(30 * time.Second)
		for !job.State.Terminal() {
			if time.Now().After(deadline) {
				t.Fatal("job never finished")
			}
			r, err := http.Get(srv.URL + "/v1/queries/" + job.ID + "?wait_ms=1000")
			if err != nil {
				t.Fatal(err)
			}
			if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
		}
		return &job
	}

	job := submit()
	if job.State != client.JobSucceeded {
		t.Fatalf("job %s: %+v", job.State, job.Error)
	}
	raw := job.Result.Raw
	if raw == nil {
		t.Fatal("spec submission returned no raw solution")
	}
	if len(raw.X) != len(subset) {
		t.Fatalf("raw.X has %d entries, want %d", len(raw.X), len(subset))
	}
	if raw.Feasible != job.Result.Feasible || raw.Objective != job.Result.Objective {
		t.Fatal("raw and compact results disagree")
	}
	if job.Result.ResultCacheHit {
		t.Fatal("first spec solve claims a cache hit")
	}

	job2 := submit()
	if job2.Result == nil || !job2.Result.ResultCacheHit {
		t.Fatal("identical spec request missed the result cache")
	}
	if !reflect.DeepEqual(job2.Result.Raw, raw) {
		t.Fatal("cached raw solution differs")
	}
}
