//go:build unix

package relation

import (
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only. The mapping is never
// unmapped explicitly: lazy relations live for the process, and file-backed
// read-only pages are reclaimable by the OS under memory pressure anyway.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}
