package relation

import (
	"fmt"
	"strings"
	"testing"
)

// spillTestCSV renders a small two-column CSV and the expected column values.
func spillTestCSV(n int) (string, []float64, []float64) {
	var sb strings.Builder
	sb.WriteString("id,price\n")
	ids := make([]float64, n)
	prices := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = float64(i)
		prices[i] = float64((i*37)%101) / 4
		fmt.Fprintf(&sb, "%g,%g\n", ids[i], prices[i])
	}
	return sb.String(), ids, prices
}

func TestSpillCSVMatchesReadCSV(t *testing.T) {
	csvText, ids, prices := spillTestCSV(333)
	inMem, err := ReadCSV("r", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lazy, err := SpillCSV("r", strings.NewReader(csvText), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.N() != inMem.N() || lazy.N() != 333 {
		t.Fatalf("N = %d, want 333", lazy.N())
	}
	if !lazy.IsLazy("price") {
		t.Fatal("spilled column should be lazy before promotion")
	}
	// Block reads must not promote the column.
	blk := make([]float64, 10)
	if err := lazy.DetBlock("price", 100, blk); err != nil {
		t.Fatal(err)
	}
	for i := range blk {
		if blk[i] != prices[100+i] {
			t.Fatalf("DetBlock[%d] = %v, want %v", i, blk[i], prices[100+i])
		}
	}
	if !lazy.IsLazy("price") {
		t.Fatal("DetBlock promoted the lazy column")
	}
	// Promotion reads the whole column once and memoizes it.
	col, err := lazy.Det("id")
	if err != nil {
		t.Fatal(err)
	}
	for i := range col {
		if col[i] != ids[i] {
			t.Fatalf("Det[%d] = %v, want %v", i, col[i], ids[i])
		}
	}
	if lazy.IsLazy("id") {
		t.Fatal("Det should promote the lazy column")
	}

	// Reopening from the manifest must see identical data.
	reopened, err := OpenColumnDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Det("price")
	if err != nil {
		t.Fatal(err)
	}
	want, err := inMem.Det("price")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reopened price[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSelectIndicesGathersLazyColumns(t *testing.T) {
	csvText, _, prices := spillTestCSV(200)
	dir := t.TempDir()
	lazy, err := SpillCSV("r", strings.NewReader(csvText), dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{3, 17, 42, 199}
	view := lazy.SelectIndices(idx)
	if view.N() != len(idx) {
		t.Fatalf("view N = %d, want %d", view.N(), len(idx))
	}
	col, err := view.Det("price")
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range idx {
		if col[i] != prices[orig] {
			t.Fatalf("view price[%d] = %v, want %v (tuple %d)", i, col[i], prices[orig], orig)
		}
	}
}

func TestBlockCacheEvictionAndParity(t *testing.T) {
	// A 4-values × 2-blocks cache forced over a 64-value column must evict,
	// and every read must still return the backing values exactly.
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	cache := NewBlockCache(4, 2)
	src := cache.Wrap(SliceSource(vals))
	before := CacheStats()
	dst := make([]float64, 7)
	for pass := 0; pass < 3; pass++ {
		for off := 0; off+len(dst) <= len(vals); off += 5 {
			if err := src.ReadAt(dst, off); err != nil {
				t.Fatal(err)
			}
			for i := range dst {
				if dst[i] != vals[off+i] {
					t.Fatalf("pass %d off %d: [%d] = %v, want %v", pass, off, i, dst[i], vals[off+i])
				}
			}
		}
	}
	after := CacheStats()
	if after.Misses <= before.Misses {
		t.Fatal("expected cache misses")
	}
	if after.Evictions <= before.Evictions {
		t.Fatal("expected evictions from the 2-block cache")
	}
	if after.ResidentBytes <= 0 {
		t.Fatal("expected resident bytes to be tracked")
	}
}

func TestReadCSVReportsLineNumbers(t *testing.T) {
	// Row 2 of data (file line 3) carries a bad float; the error must name
	// the line so operators can find it in a million-row file.
	bad := "a,b\n1,2\n3,oops\n5,6\n"
	_, err := ReadCSV("r", strings.NewReader(bad))
	if err == nil {
		t.Fatal("malformed CSV accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not name line 3: %v", err)
	}
	// Structurally malformed rows go through csv.ParseError, which also
	// carries the line.
	ragged := "a,b\n1,2\n3\n"
	_, err = ReadCSV("r", strings.NewReader(ragged))
	if err == nil {
		t.Fatal("ragged CSV accepted")
	}
	if !strings.Contains(err.Error(), "3") {
		t.Fatalf("ragged-row error does not locate the row: %v", err)
	}
}

func TestColumnFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/col.col"
	vals := []float64{1, -2.5, 3.25, 0, 1e18}
	if err := WriteColumnFile(path, vals); err != nil {
		t.Fatal(err)
	}
	src, err := OpenColumnFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", src.Len(), len(vals))
	}
	got := make([]float64, len(vals))
	if err := src.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("[%d] = %v, want %v", i, got[i], vals[i])
		}
	}
}
