package relation

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// ColumnSource supplies deterministic column values block-wise for lazy
// (out-of-core) columns. ReadAt fills dst with the values at positions
// [off, off+len(dst)); implementations must be safe for concurrent readers.
type ColumnSource interface {
	// Len returns the number of values in the column.
	Len() int
	// ReadAt fills dst with values [off, off+len(dst)).
	ReadAt(dst []float64, off int) error
}

// Package-level block-cache counters, exported through CacheStats so the
// engine's /metrics and /stats surfaces can report out-of-core residency.
var (
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64
	cacheResident  atomic.Int64 // bytes currently held by caches
)

// CacheStatsSnapshot reports the cumulative behaviour of all block caches.
type CacheStatsSnapshot struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	ResidentBytes int64
}

// CacheStats returns the cumulative block-cache counters.
func CacheStats() CacheStatsSnapshot {
	return CacheStatsSnapshot{
		Hits:          cacheHits.Load(),
		Misses:        cacheMisses.Load(),
		Evictions:     cacheEvictions.Load(),
		ResidentBytes: cacheResident.Load(),
	}
}

// BlockCache is an explicit LRU cache of fixed-size column blocks shared by
// the non-mmap lazy column sources. Its capacity — blockVals values per
// block × maxBlocks blocks × 8 bytes — is the hard bound on the heap the
// out-of-core read path keeps resident, independent of relation size.
type BlockCache struct {
	mu        sync.Mutex
	blockVals int
	maxBlocks int
	lru       *list.List // front = most recently used; values are *cacheEntry
	entries   map[cacheKey]*list.Element
	nextID    uint64
}

type cacheKey struct {
	src   uint64
	block int
}

type cacheEntry struct {
	key  cacheKey
	vals []float64
}

// NewBlockCache creates a cache holding at most maxBlocks blocks of
// blockVals values each.
func NewBlockCache(blockVals, maxBlocks int) *BlockCache {
	if blockVals < 1 {
		blockVals = 1
	}
	if maxBlocks < 1 {
		maxBlocks = 1
	}
	return &BlockCache{
		blockVals: blockVals,
		maxBlocks: maxBlocks,
		lru:       list.New(),
		entries:   map[cacheKey]*list.Element{},
	}
}

// defaultBlockCache backs lazy columns opened without an explicit cache:
// 2048 values × 256 blocks × 8 B = 4 MiB.
var (
	defaultCacheMu    sync.Mutex
	defaultBlockCache = NewBlockCache(2048, 256)
)

// DefaultBlockCache returns the process-wide cache used by OpenColumnDir
// when no explicit cache is given.
func DefaultBlockCache() *BlockCache {
	defaultCacheMu.Lock()
	defer defaultCacheMu.Unlock()
	return defaultBlockCache
}

// ConfigureBlockCache replaces the process-wide default cache (e.g. from a
// daemon flag). Existing sources keep the cache they were opened with.
func ConfigureBlockCache(blockVals, maxBlocks int) {
	defaultCacheMu.Lock()
	defer defaultCacheMu.Unlock()
	defaultBlockCache = NewBlockCache(blockVals, maxBlocks)
}

// Wrap returns a ColumnSource that serves src through the cache.
func (c *BlockCache) Wrap(src ColumnSource) ColumnSource {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	return &cachedSource{inner: src, cache: c, id: id}
}

// block returns the cached block covering values
// [bi*blockVals, (bi+1)*blockVals) of the wrapped source, loading and
// possibly evicting under the cache lock. The returned slice is shared and
// must not be modified.
func (c *BlockCache) block(s *cachedSource, bi int) ([]float64, error) {
	key := cacheKey{src: s.id, block: bi}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		vals := el.Value.(*cacheEntry).vals
		c.mu.Unlock()
		cacheHits.Add(1)
		return vals, nil
	}
	c.mu.Unlock()
	cacheMisses.Add(1)

	lo := bi * c.blockVals
	hi := lo + c.blockVals
	if n := s.inner.Len(); hi > n {
		hi = n
	}
	vals := make([]float64, hi-lo)
	if err := s.inner.ReadAt(vals, lo); err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Raced with another loader; keep the incumbent.
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).vals, nil
	}
	for c.lru.Len() >= c.maxBlocks {
		back := c.lru.Back()
		old := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		cacheEvictions.Add(1)
		cacheResident.Add(-int64(8 * len(old.vals)))
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, vals: vals})
	cacheResident.Add(int64(8 * len(vals)))
	return vals, nil
}

// cachedSource serves ReadAt through the cache's fixed-size blocks.
type cachedSource struct {
	inner ColumnSource
	cache *BlockCache
	id    uint64
}

func (s *cachedSource) Len() int { return s.inner.Len() }

func (s *cachedSource) ReadAt(dst []float64, off int) error {
	if off < 0 || off+len(dst) > s.inner.Len() {
		return fmt.Errorf("relation: cached read [%d,%d) out of range [0,%d)", off, off+len(dst), s.inner.Len())
	}
	bv := s.cache.blockVals
	for len(dst) > 0 {
		bi := off / bv
		vals, err := s.cache.block(s, bi)
		if err != nil {
			return err
		}
		start := off - bi*bv
		n := copy(dst, vals[start:])
		dst = dst[n:]
		off += n
	}
	return nil
}

// sliceSource adapts a resident []float64 to ColumnSource (tests, spill
// round-trips).
type sliceSource []float64

func (s sliceSource) Len() int { return len(s) }

func (s sliceSource) ReadAt(dst []float64, off int) error {
	if off < 0 || off+len(dst) > len(s) {
		return fmt.Errorf("relation: slice read [%d,%d) out of range [0,%d)", off, off+len(dst), len(s))
	}
	copy(dst, s[off:])
	return nil
}

// SliceSource wraps a resident column as a ColumnSource.
func SliceSource(vals []float64) ColumnSource { return sliceSource(vals) }
