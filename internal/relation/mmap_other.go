//go:build !unix

package relation

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; callers fall back to pread
// through the block cache.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("relation: mmap unsupported on this platform")
}
