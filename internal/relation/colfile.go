// Out-of-core column storage: fixed-width binary column files that back
// lazy deterministic columns. A column file is the 8-byte magic "SPQCOL1\n",
// a little-endian uint64 value count, then count little-endian float64
// values. Files open mmap'd where the platform supports it — mapped pages
// are file-backed and never count toward the Go heap — with a pread-based
// fallback served through the block cache elsewhere.
package relation

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

const (
	colMagic      = "SPQCOL1\n"
	colHeaderSize = 16 // magic + uint64 count
)

// WriteColumnFile writes a resident column to path in column-file format.
func WriteColumnFile(path string, vals []float64) error {
	w, err := NewColumnWriter(path)
	if err != nil {
		return err
	}
	for _, v := range vals {
		if err := w.Append(v); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// ColumnWriter streams values into a column file in constant memory; the
// value count in the header is fixed up at Close.
type ColumnWriter struct {
	f     *os.File
	bw    *bufio.Writer
	count uint64
	path  string
}

// NewColumnWriter creates (truncating) a column file at path.
func NewColumnWriter(path string) (*ColumnWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &ColumnWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path}
	var hdr [colHeaderSize]byte
	copy(hdr[:], colMagic)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes one value.
func (w *ColumnWriter) Append(v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	if _, err := w.bw.Write(buf[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of values appended so far.
func (w *ColumnWriter) Count() int { return int(w.count) }

// Close flushes buffered values, writes the final count into the header,
// and closes the file.
func (w *ColumnWriter) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	if _, err := w.f.WriteAt(cnt[:], int64(len(colMagic))); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// fileColumn is the pread fallback ColumnSource when mmap is unavailable;
// OpenColumnFile wraps it in a BlockCache so hot blocks stay resident.
type fileColumn struct {
	f *os.File
	n int
}

func (s *fileColumn) Len() int { return s.n }

func (s *fileColumn) ReadAt(dst []float64, off int) error {
	if off < 0 || off+len(dst) > s.n {
		return fmt.Errorf("relation: column read [%d,%d) out of range [0,%d)", off, off+len(dst), s.n)
	}
	buf := make([]byte, 8*len(dst))
	if _, err := s.f.ReadAt(buf, int64(colHeaderSize+8*off)); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// mmapColumn serves reads straight from a memory-mapped column file. The
// mapping is file-backed: the OS pages values in and out on demand, so a
// 10M-tuple column costs no Go heap at all.
type mmapColumn struct {
	data []byte // full file contents, including header
	n    int
}

func (s *mmapColumn) Len() int { return s.n }

func (s *mmapColumn) ReadAt(dst []float64, off int) error {
	if off < 0 || off+len(dst) > s.n {
		return fmt.Errorf("relation: column read [%d,%d) out of range [0,%d)", off, off+len(dst), s.n)
	}
	base := colHeaderSize + 8*off
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.data[base+8*i:]))
	}
	return nil
}

// openColumnHeader validates the magic and returns the value count.
func openColumnHeader(f *os.File) (int, error) {
	var hdr [colHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("relation: reading column header: %w", err)
	}
	if string(hdr[:len(colMagic)]) != colMagic {
		return 0, fmt.Errorf("relation: %s is not a column file", f.Name())
	}
	n := binary.LittleEndian.Uint64(hdr[len(colMagic):])
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if want := int64(colHeaderSize + 8*n); fi.Size() < want {
		return 0, fmt.Errorf("relation: column file %s truncated: %d bytes, want %d", f.Name(), fi.Size(), want)
	}
	return int(n), nil
}

// OpenColumnFile opens a column file as a lazy ColumnSource: mmap'd where
// available, otherwise pread through cache (nil cache → the process default).
func OpenColumnFile(path string, cache *BlockCache) (ColumnSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	n, err := openColumnHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if data, err := mmapFile(f, colHeaderSize+8*n); err == nil {
		// The mapping outlives the descriptor; the file can be closed.
		f.Close()
		return &mmapColumn{data: data, n: n}, nil
	}
	if cache == nil {
		cache = DefaultBlockCache()
	}
	return cache.Wrap(&fileColumn{f: f, n: n}), nil
}

// manifest describes a spilled relation directory: the relation name, tuple
// count, and the column names in order (column i lives in c<i>.col).
type manifest struct {
	Name    string   `json:"name"`
	N       int      `json:"n"`
	Columns []string `json:"columns"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

func columnPath(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("c%d.col", i)) }

// OpenColumnDir opens a spilled relation directory (see SpillCSV) as a lazy
// relation: every deterministic column is backed by its column file and
// loaded block-wise on demand. nil cache → the process default.
func OpenColumnDir(dir string, cache *BlockCache) (*Relation, error) {
	raw, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("relation: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("relation: parsing manifest: %w", err)
	}
	rel := New(m.Name, m.N)
	for i, name := range m.Columns {
		src, err := OpenColumnFile(columnPath(dir, i), cache)
		if err != nil {
			return nil, err
		}
		if err := rel.AddDetSource(name, src); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
