package relation

import (
	"math"
	"strings"
	"testing"

	"spq/internal/dist"
	"spq/internal/rng"
)

func TestWriteScenarioCSV(t *testing.T) {
	r := New("w", 3)
	if err := r.AddDet("price", []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStoch("gain", &IndependentVG{AttrID: 1, Dists: []dist.Dist{dist.Degenerate{Value: 5}}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteScenarioCSV(&sb, rng.NewSource(1), 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	if lines[0] != "price,gain" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "10,5" || lines[3] != "30,5" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestWriteScenarioCSVReproducible(t *testing.T) {
	r := New("w", 4)
	if err := r.AddStoch("v", &IndependentVG{AttrID: 2, Dists: []dist.Dist{dist.Normal{Sigma: 1}}}); err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(9)
	var a, b strings.Builder
	if err := r.WriteScenarioCSV(&a, src, 7); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteScenarioCSV(&b, src, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same world rendered differently")
	}
	var c strings.Builder
	if err := r.WriteScenarioCSV(&c, src, 8); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different scenarios rendered identically")
	}
}

func TestScenarioCSVRoundTripsThroughReadCSV(t *testing.T) {
	r := New("w", 2)
	if err := r.AddDet("a", []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddStoch("b", &IndependentVG{AttrID: 3, Dists: []dist.Dist{dist.Uniform{Lo: 0, Hi: 1}}}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteScenarioCSV(&sb, rng.NewSource(4), 2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("world", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || !back.HasAttr("b") {
		t.Fatalf("world reload: N=%d attrs=%v", back.N(), back.DetNames())
	}
	// The realized world is fully deterministic once materialized.
	if back.IsStochastic("b") {
		t.Fatal("materialized world should be deterministic")
	}
}

func TestSampleTuple(t *testing.T) {
	r := New("w", 2)
	if err := r.AddStoch("v", &IndependentVG{AttrID: 5, Dists: []dist.Dist{dist.Normal{Mu: 3, Sigma: 1}}}); err != nil {
		t.Fatal(err)
	}
	src := rng.NewSource(6)
	samples, err := r.SampleTuple(src, "v", 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("sample mean = %v, want ~3", mean)
	}
	if _, err := r.SampleTuple(src, "v", 9, 10); err == nil {
		t.Fatal("out-of-range tuple accepted")
	}
	if _, err := r.SampleTuple(src, "zzz", 0, 10); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}
