// Package relation implements the Monte Carlo probabilistic data model of
// MCDB (Jampani et al.) that the paper builds on (§2.2): a relation with
// deterministic columns plus stochastic attributes whose values are produced
// by VG (variable generation) functions. A scenario is a deterministic
// realization of the whole relation, reproducible from a base random seed;
// the deterministic tuple key is the tuple's index, which is stable across
// scenarios.
package relation

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"spq/internal/dist"
	"spq/internal/rng"
)

// VGFunc is a variable generation function for one stochastic attribute.
// Value must be a pure function of (src, tuple, scenario): the same
// coordinates always produce the same realization, regardless of the order
// in which other coordinates are evaluated. This property is what allows
// tuple-wise and scenario-wise summarization (§5.5) to observe identical
// scenario sets.
type VGFunc interface {
	// Value returns the realization of the attribute for the given tuple in
	// the given scenario.
	Value(src rng.Source, tuple, scenario int) float64
	// ExactMean returns the closed-form mean for the tuple's variable, or
	// NaN when no closed form is available (the mean is then estimated by
	// scenario averaging, as in the paper's precomputation phase §3.2).
	ExactMean(tuple int) float64
}

// IndependentVG realizes each tuple's variable independently from its own
// distribution. Dists is indexed by tuple; a single-element slice is
// broadcast to all tuples.
type IndependentVG struct {
	// AttrID namespaces this attribute's substreams; it must differ between
	// attributes of one relation.
	AttrID uint64
	Dists  []dist.Dist
}

func (vg *IndependentVG) distFor(tuple int) dist.Dist {
	if len(vg.Dists) == 1 {
		return vg.Dists[0]
	}
	return vg.Dists[tuple]
}

// Value implements VGFunc.
func (vg *IndependentVG) Value(src rng.Source, tuple, scenario int) float64 {
	s := rng.NewStream(src.SeedAt(vg.AttrID, uint64(tuple), uint64(scenario)))
	return vg.distFor(tuple).Sample(s)
}

// ExactMean implements VGFunc.
func (vg *IndependentVG) ExactMean(tuple int) float64 { return vg.distFor(tuple).Mean() }

// GroupedVG realizes variables that are correlated within groups: all tuples
// with the same Group share one substream per scenario, so their values are
// derived from a common random experiment (e.g. one price path per stock,
// Figure 1 of the paper). Eval receives the shared stream and the tuple
// index and must consume the stream identically for every tuple in a group
// (typically by generating the full group experiment and reading off the
// tuple's part).
type GroupedVG struct {
	AttrID uint64
	Group  []int // group id per tuple
	Eval   func(s *rng.Stream, tuple int) float64
	Means  []float64 // optional exact means per tuple (nil → NaN)
}

// Value implements VGFunc.
func (vg *GroupedVG) Value(src rng.Source, tuple, scenario int) float64 {
	s := rng.NewStream(src.SeedAt(vg.AttrID, uint64(vg.Group[tuple]), uint64(scenario)))
	return vg.Eval(s, tuple)
}

// ExactMean implements VGFunc.
func (vg *GroupedVG) ExactMean(tuple int) float64 {
	if vg.Means == nil {
		return math.NaN()
	}
	return vg.Means[tuple]
}

// remappedVG exposes a subset view of another VG function: tuple i of the
// view is tuple Orig[i] of the base relation, preserving substream identity
// (and hence correlation structure) under selection.
type remappedVG struct {
	inner VGFunc
	orig  []int
}

func (vg *remappedVG) Value(src rng.Source, tuple, scenario int) float64 {
	return vg.inner.Value(src, vg.orig[tuple], scenario)
}

func (vg *remappedVG) ExactMean(tuple int) float64 { return vg.inner.ExactMean(vg.orig[tuple]) }

// stochAttr is a stochastic attribute of a relation.
type stochAttr struct {
	name string
	vg   VGFunc
}

// Relation is a Monte Carlo relation. Deterministic columns are either
// resident ([]float64) or lazy (backed by a ColumnSource, e.g. an mmap'd
// column file); stochastic attributes are always VG-generated on demand.
type Relation struct {
	name string
	n    int

	detNames []string
	detCols  [][]float64
	// detSrcs[i] backs a lazy deterministic column when detCols[i] is nil;
	// lazyMu guards promotion (materializing a lazy column into detCols).
	detSrcs []ColumnSource
	lazyMu  sync.Mutex
	detIdx  map[string]int

	stochs   []stochAttr
	stochIdx map[string]int

	// means caches E(t_i.A) estimates per stochastic attribute (§3.2
	// precomputation); populated by ComputeMeans or exact VG means.
	means map[string][]float64

	// origIdx maps view tuples to base-relation tuples; nil for base
	// relations (identity).
	origIdx []int

	// version counts mutations; atomic because ApplyDelta runs concurrently
	// with readers. The engine's plan and result caches key on it.
	version atomic.Uint64

	// Mutation spine (delta.go). mutMu serializes mutators and snapshot
	// creation; snap memoizes the immutable snapshot of the current
	// version; base links a snapshot back to the mutable relation it
	// shadows (nil otherwise); view marks relations produced by
	// Select/SelectIndices, which reject ApplyDelta. colEpochs records the
	// version at which each column last changed through a delta,
	// memberEpoch the version of the last membership (count/order) change,
	// and wholesaleEpoch the version of the last schema or full-column
	// mutation (nothing older can be delta-maintained). deltaLog keeps a
	// bounded history of change sets for Changes; nextOrig is the
	// original-index high-water mark once deletes/appends start shifting
	// the index space.
	mutMu          sync.Mutex
	snap           *Relation
	base           *Relation
	view           bool
	colEpochs      map[string]uint64
	memberEpoch    uint64
	wholesaleEpoch uint64
	deltaLog       []*ChangeSet
	nextOrig       int

	// parts caches Partitionings by canonical spec, and groupSets the
	// shard-count-independent clustering level, each entry tagged with the
	// version it was built against (see partition.go).
	partMu    sync.Mutex
	parts     map[string]*Partitioning
	groupSets map[string]*groupSet
}

// Version returns a counter incremented by every mutation of the relation.
// Views and snapshots pin the version of the relation they were derived
// from.
func (r *Relation) Version() uint64 { return r.version.Load() }

// bumpWholesale records a whole-relation mutation (schema change or a full
// means recomputation): every delta-scoped consumer must rebuild from
// scratch, so the change-set log restarts here.
func (r *Relation) bumpWholesale() {
	v := r.version.Add(1)
	r.wholesaleEpoch = v
	r.deltaLog = nil
	r.snap = nil
}

// New creates a relation with n tuples and no columns.
func New(name string, n int) *Relation {
	return &Relation{
		name:     name,
		n:        n,
		detIdx:   map[string]int{},
		stochIdx: map[string]int{},
		means:    map[string][]float64{},
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// N returns the number of tuples.
func (r *Relation) N() int { return r.n }

// AddDet adds a deterministic column. The column length must equal N.
func (r *Relation) AddDet(name string, values []float64) error {
	if len(values) != r.n {
		return fmt.Errorf("relation: column %q has %d values, want %d", name, len(values), r.n)
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if r.hasAttr(name) {
		return fmt.Errorf("relation: duplicate attribute %q", name)
	}
	r.detIdx[name] = len(r.detCols)
	r.detNames = append(r.detNames, name)
	r.lazyMu.Lock()
	r.detCols = append(r.detCols, values)
	r.lazyMu.Unlock()
	r.detSrcs = append(r.detSrcs, nil)
	r.bumpWholesale()
	return nil
}

// AddDetSource adds a lazy deterministic column backed by a ColumnSource
// (e.g. an mmap'd column file or a cached file reader). The source length
// must equal N. Values are read block-wise on demand; Det promotes the whole
// column into memory only when a caller needs the resident slice.
func (r *Relation) AddDetSource(name string, src ColumnSource) error {
	if src.Len() != r.n {
		return fmt.Errorf("relation: column %q source has %d values, want %d", name, src.Len(), r.n)
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if r.hasAttr(name) {
		return fmt.Errorf("relation: duplicate attribute %q", name)
	}
	r.detIdx[name] = len(r.detCols)
	r.detNames = append(r.detNames, name)
	r.lazyMu.Lock()
	r.detCols = append(r.detCols, nil)
	r.lazyMu.Unlock()
	r.detSrcs = append(r.detSrcs, src)
	r.bumpWholesale()
	return nil
}

// AddStoch adds a stochastic attribute backed by a VG function.
func (r *Relation) AddStoch(name string, vg VGFunc) error {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	if r.hasAttr(name) {
		return fmt.Errorf("relation: duplicate attribute %q", name)
	}
	r.stochIdx[name] = len(r.stochs)
	r.stochs = append(r.stochs, stochAttr{name: name, vg: vg})
	r.bumpWholesale()
	return nil
}

func (r *Relation) hasAttr(name string) bool {
	_, d := r.detIdx[name]
	_, s := r.stochIdx[name]
	return d || s
}

// HasAttr reports whether the relation has an attribute with this name.
func (r *Relation) HasAttr(name string) bool { return r.hasAttr(name) }

// IsStochastic reports whether name is a stochastic attribute.
func (r *Relation) IsStochastic(name string) bool {
	_, ok := r.stochIdx[name]
	return ok
}

// DetNames returns the deterministic column names in insertion order.
func (r *Relation) DetNames() []string { return append([]string(nil), r.detNames...) }

// StochNames returns the stochastic attribute names in insertion order.
func (r *Relation) StochNames() []string {
	out := make([]string, len(r.stochs))
	for i, s := range r.stochs {
		out[i] = s.name
	}
	return out
}

// Det returns the deterministic column as a resident slice, or an error if
// absent. Lazy columns are promoted (fully materialized) on first call and
// the promotion is memoized; block-wise consumers should prefer DetBlock,
// which never promotes.
func (r *Relation) Det(name string) ([]float64, error) {
	i, ok := r.detIdx[name]
	if !ok {
		return nil, fmt.Errorf("relation: no deterministic column %q", name)
	}
	if r.detCols[i] == nil && r.detSrcs[i] != nil {
		r.lazyMu.Lock()
		defer r.lazyMu.Unlock()
		if r.detCols[i] == nil {
			col := make([]float64, r.n)
			if err := r.detSrcs[i].ReadAt(col, 0); err != nil {
				return nil, fmt.Errorf("relation: promoting column %q: %w", name, err)
			}
			r.detCols[i] = col
		}
	}
	return r.detCols[i], nil
}

// IsLazy reports whether the deterministic column is backed by a
// ColumnSource and has not been promoted to a resident slice.
func (r *Relation) IsLazy(name string) bool {
	i, ok := r.detIdx[name]
	if !ok {
		return false
	}
	r.lazyMu.Lock()
	defer r.lazyMu.Unlock()
	return r.detCols[i] == nil && r.detSrcs[i] != nil
}

// DetBlock fills dst with values [off, off+len(dst)) of a deterministic
// column without promoting lazy columns; it is the block-wise access path
// the streaming pipeline scans with.
func (r *Relation) DetBlock(name string, off int, dst []float64) error {
	i, ok := r.detIdx[name]
	if !ok {
		return fmt.Errorf("relation: no deterministic column %q", name)
	}
	if off < 0 || off+len(dst) > r.n {
		return fmt.Errorf("relation: column %q block [%d,%d) out of range [0,%d)", name, off, off+len(dst), r.n)
	}
	if col := r.detCols[i]; col != nil {
		copy(dst, col[off:off+len(dst)])
		return nil
	}
	return r.detSrcs[i].ReadAt(dst, off)
}

// DetValue returns one value of a deterministic column without promoting a
// lazy column (single-element DetBlock).
func (r *Relation) DetValue(name string, tuple int) (float64, error) {
	i, ok := r.detIdx[name]
	if !ok {
		return 0, fmt.Errorf("relation: no deterministic column %q", name)
	}
	if col := r.detCols[i]; col != nil {
		return col[tuple], nil
	}
	var buf [1]float64
	if err := r.detSrcs[i].ReadAt(buf[:], tuple); err != nil {
		return 0, err
	}
	return buf[0], nil
}

// VG returns the VG function of a stochastic attribute.
func (r *Relation) VG(name string) (VGFunc, error) {
	i, ok := r.stochIdx[name]
	if !ok {
		return nil, fmt.Errorf("relation: no stochastic attribute %q", name)
	}
	return r.stochs[i].vg, nil
}

// Value realizes attribute attr for (tuple, scenario) under source src.
// Deterministic columns ignore the scenario.
func (r *Relation) Value(src rng.Source, attr string, tuple, scenario int) (float64, error) {
	if i, ok := r.detIdx[attr]; ok {
		if col := r.detCols[i]; col != nil {
			return col[tuple], nil
		}
		var buf [1]float64
		if err := r.detSrcs[i].ReadAt(buf[:], tuple); err != nil {
			return 0, err
		}
		return buf[0], nil
	}
	if i, ok := r.stochIdx[attr]; ok {
		return r.stochs[i].vg.Value(src, tuple, scenario), nil
	}
	return 0, fmt.Errorf("relation: no attribute %q", attr)
}

// Realize fills out (length N) with realizations of attr for one scenario.
func (r *Relation) Realize(src rng.Source, attr string, scenario int, out []float64) error {
	if len(out) != r.n {
		return errors.New("relation: output slice length mismatch")
	}
	if i, ok := r.detIdx[attr]; ok {
		if col := r.detCols[i]; col != nil {
			copy(out, col)
			return nil
		}
		return r.detSrcs[i].ReadAt(out, 0)
	}
	i, ok := r.stochIdx[attr]
	if !ok {
		return fmt.Errorf("relation: no attribute %q", attr)
	}
	vg := r.stochs[i].vg
	for t := 0; t < r.n; t++ {
		out[t] = vg.Value(src, t, scenario)
	}
	return nil
}

// ComputeMeans populates the E(t_i.A) cache for every stochastic attribute,
// mirroring the paper's precomputation phase (§3.2): attributes whose VG
// function has a closed-form mean use it; others are estimated by streaming
// averages over sampleM scenarios drawn from src (which should be the
// validation source).
func (r *Relation) ComputeMeans(src rng.Source, sampleM int) {
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	for _, sa := range r.stochs {
		col := make([]float64, r.n)
		exact := true
		for t := 0; t < r.n; t++ {
			m := sa.vg.ExactMean(t)
			if math.IsNaN(m) {
				exact = false
				break
			}
			col[t] = m
		}
		if !exact {
			for t := range col {
				col[t] = 0
			}
			for j := 0; j < sampleM; j++ {
				for t := 0; t < r.n; t++ {
					col[t] += sa.vg.Value(src, t, j)
				}
			}
			inv := 1 / float64(sampleM)
			for t := range col {
				col[t] *= inv
			}
		}
		r.means[sa.name] = col
	}
	r.bumpWholesale()
}

// SetMeans overrides the cached mean column for a stochastic attribute.
func (r *Relation) SetMeans(attr string, means []float64) error {
	if !r.IsStochastic(attr) {
		return fmt.Errorf("relation: %q is not stochastic", attr)
	}
	if len(means) != r.n {
		return errors.New("relation: means length mismatch")
	}
	r.mutMu.Lock()
	defer r.mutMu.Unlock()
	r.means[attr] = means
	r.bumpWholesale()
	return nil
}

// Means returns the mean column for an attribute: the deterministic values
// for deterministic columns, the cached estimate for stochastic attributes.
// ComputeMeans (or SetMeans) must have run for stochastic attributes.
func (r *Relation) Means(attr string) ([]float64, error) {
	if i, ok := r.detIdx[attr]; ok {
		return r.detCols[i], nil
	}
	if _, ok := r.stochIdx[attr]; ok {
		if m, ok := r.means[attr]; ok {
			return m, nil
		}
		return nil, fmt.Errorf("relation: means not computed for %q", attr)
	}
	return nil, fmt.Errorf("relation: no attribute %q", attr)
}

// Select returns a view containing only the tuples for which keep returns
// true (the sPaQL WHERE clause). The view preserves each kept tuple's
// substream identity, so its stochastic behaviour (including cross-tuple
// correlation) is unchanged. OrigIndex reports the mapping.
func (r *Relation) Select(keep func(tuple int) bool) *Relation {
	var orig []int
	for t := 0; t < r.n; t++ {
		if keep(t) {
			orig = append(orig, t)
		}
	}
	return r.SelectIndices(orig)
}

// SelectIndices returns a view containing exactly the tuples at the given
// (ascending) indices. It is the gather step predicate pushdown lands on:
// the caller scans deterministic columns block-wise, decides which tuples
// survive, and the view costs O(len(orig)) — not O(N) — in resident memory
// even when the parent's columns are lazy, because only the kept tuples'
// deterministic values are gathered.
func (r *Relation) SelectIndices(orig []int) *Relation {
	out := New(r.name, len(orig))
	out.view = true
	// Construction below mutates the view; snapshot the parent's version
	// afterwards so Version() reflects the data the view was derived from.
	defer func() { out.version.Store(r.Version()) }()
	// Compose with any existing view mapping so OrigIndex is always
	// relative to the original base relation, even for views of views.
	out.origIdx = make([]int, len(orig))
	for k, t := range orig {
		out.origIdx[k] = r.OrigIndex(t)
	}
	for i, name := range r.detNames {
		col := make([]float64, len(orig))
		if resident := r.detCols[i]; resident != nil {
			for k, t := range orig {
				col[k] = resident[t]
			}
		} else {
			src := r.detSrcs[i]
			var buf [1]float64
			for k, t := range orig {
				// Gather through the source (and its block cache, if any)
				// without promoting the parent column.
				if err := src.ReadAt(buf[:], t); err != nil {
					// Sources backed by local files fail only on truncated
					// or unreadable data; surface that as a zero column
					// would hide corruption, so panic like an OOB index.
					panic(fmt.Sprintf("relation: gathering column %q: %v", name, err))
				}
				col[k] = buf[0]
			}
		}
		_ = out.AddDet(name, col)
	}
	for _, sa := range r.stochs {
		_ = out.AddStoch(sa.name, &remappedVG{inner: sa.vg, orig: append([]int(nil), orig...)})
	}
	for attr, m := range r.means {
		col := make([]float64, len(orig))
		for k, t := range orig {
			col[k] = m[t]
		}
		out.means[attr] = col
	}
	return out
}

// OrigIndex returns the base-relation tuple index for a view tuple; for a
// base relation it is the identity.
func (r *Relation) OrigIndex(tuple int) int {
	if r.origIdx == nil {
		return tuple
	}
	return r.origIdx[tuple]
}
